package tenant

import (
	"fmt"

	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/sched"
)

// AllocationEvent records one tenant's outcome of an arbitration round,
// feeding per-tenant allocation timelines.
type AllocationEvent struct {
	// Now is the virtual time of the round, in cycles.
	Now uint64
	// Tenant is the tenant name.
	Tenant string
	// Demand is what the tenant asked for after SLA refinement.
	Demand int
	// Grant is what the arbiter awarded.
	Grant int
	// Set is the cpuset actually applied.
	Set sched.CPUSet
}

// ArbiterConfig assembles an Arbiter.
type ArbiterConfig struct {
	// Scheduler is the shared OS scheduler of the machine.
	Scheduler *sched.Scheduler
	// ControlPeriod is the arbitration interval in cycles; zero selects
	// 50 ms at the machine clock (the paper's control-loop class).
	ControlPeriod uint64
}

// Arbiter consolidates tenants onto one machine. Every control period it
// collects each tenant's demand (the tenant's own PrT net desire, refined
// by LONC and traffic-budget SLAs), apportions the machine's cores by SLA
// weight with starvation floors, and transfers cores between the tenant
// cgroups — shrink phase first so freed cores are available to growing
// tenants within the same round. The invariant it maintains: tenant
// cpusets are pairwise disjoint and their union never exceeds the machine.
type Arbiter struct {
	sch   *sched.Scheduler
	topo  *numa.Topology
	total int

	tenants  []*Tenant
	period   uint64
	nextEval uint64

	events     []AllocationEvent
	peakDemand int
	// Rounds counts arbitration rounds executed (overhead accounting).
	Rounds uint64

	// bus, when attached, receives a KindGrant event for every
	// AllocationEvent recorded; nil keeps the arbiter dark.
	bus *obs.Bus
}

// NewArbiter creates an empty arbiter over the scheduler's machine.
func NewArbiter(cfg ArbiterConfig) (*Arbiter, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("tenant: Scheduler is required")
	}
	machine := cfg.Scheduler.Machine()
	topo := machine.Topology()
	if cfg.ControlPeriod == 0 {
		cfg.ControlPeriod = topo.SecondsToCycles(50e-3)
	}
	return &Arbiter{
		sch:      cfg.Scheduler,
		topo:     topo,
		total:    topo.TotalCores(),
		period:   cfg.ControlPeriod,
		nextEval: machine.Now() + cfg.ControlPeriod,
	}, nil
}

// SetBus attaches the telemetry bus the arbiter publishes per-tenant
// grant events onto (nil detaches).
func (a *Arbiter) SetBus(b *obs.Bus) { a.bus = b }

// Bus returns the attached telemetry bus, nil when dark.
func (a *Arbiter) Bus() *obs.Bus { return a.bus }

// recordEvent appends one allocation outcome to the timeline and mirrors
// it onto the bus.
func (a *Arbiter) recordEvent(e AllocationEvent) {
	a.events = append(a.events, e)
	if a.bus != nil {
		a.bus.Publish(obs.Event{
			Kind:   obs.KindGrant,
			Now:    e.Now,
			Core:   -1,
			V1:     int64(e.Demand),
			V2:     int64(e.Grant),
			Set:    uint64(e.Set),
			Tenant: e.Tenant,
		})
	}
}

// Tenants returns the arbitrated tenants in add order.
func (a *Arbiter) Tenants() []*Tenant { return a.tenants }

// Events returns the allocation timeline recorded so far: one entry per
// tenant per round in which its demand, grant or cpuset changed, so the
// timeline stays bounded by activity rather than by run length.
func (a *Arbiter) Events() []AllocationEvent { return a.events }

// PeakAggregateDemand returns the largest per-round demand sum seen so
// far — above the machine size means the tenants were contending.
func (a *Arbiter) PeakAggregateDemand() int { return a.peakDemand }

// ControlPeriod returns the arbitration interval in cycles.
func (a *Arbiter) ControlPeriod() uint64 { return a.period }

// Add places a tenant under arbitration. It validates that the aggregate
// starvation floors still fit the machine, then re-places the tenant's
// initial allocation (its SLA floor) on cores no other tenant holds,
// following the tenant's own mode order — the construction-time cpuset the
// mechanism wrote is discarded.
func (a *Arbiter) Add(t *Tenant) error {
	floors := t.SLA.MinCores
	for _, o := range a.tenants {
		if o.Name == t.Name {
			return fmt.Errorf("tenant: duplicate tenant %q", t.Name)
		}
		floors += o.SLA.MinCores
	}
	if floors > a.total {
		return fmt.Errorf("tenant: aggregate MinCores %d exceed machine cores %d", floors, a.total)
	}

	occupied := sched.CPUSet(0)
	for _, o := range a.tenants {
		occupied = occupied.Union(o.CGroup.CPUs())
	}
	set := sched.CPUSet(0)
	for set.Count() < t.SLA.MinCores {
		core, ok := t.nextFree(set, occupied.Union(set))
		if !ok {
			return fmt.Errorf("tenant %s: no free core for starvation floor", t.Name)
		}
		set = set.Add(core)
	}
	t.CGroup.SetCPUs(set)
	t.Mech.Net().SetNAlloc(set.Count())
	t.grant = set.Count()
	t.demand = set.Count()
	t.lastSet = set
	a.tenants = append(a.tenants, t)
	a.recordEvent(AllocationEvent{
		Now:    a.sch.Machine().Now(),
		Tenant: t.Name,
		Demand: t.demand,
		Grant:  t.grant,
		Set:    set,
	})
	return nil
}

// Maybe runs one arbitration round if the control period has elapsed. It
// is cheap to call every scheduler tick.
func (a *Arbiter) Maybe() {
	if a.sch.Machine().Now() < a.nextEval {
		return
	}
	a.Step()
}

// Step runs one arbitration round: collect demands, apportion, transfer.
func (a *Arbiter) Step() {
	machine := a.sch.Machine()
	a.nextEval = machine.Now() + a.period
	a.Rounds++
	if len(a.tenants) == 0 {
		return
	}

	demand := make([]int, len(a.tenants))
	weight := make([]int, len(a.tenants))
	floor := make([]int, len(a.tenants))
	prevDemand := make([]int, len(a.tenants))
	prevGrant := make([]int, len(a.tenants))
	allocated := a.AllocatedTotal()
	sumDemand := 0
	for i, t := range a.tenants {
		prevDemand[i], prevGrant[i] = t.demand, t.grant
		// A tenant whose own control period has not elapsed keeps its
		// previous demand: the arbiter may run faster than a tenant
		// samples, but it must not shorten the tenant's windows.
		if t.Mech.Due() {
			share := 1.0
			if allocated > 0 {
				share = float64(t.CGroup.CPUs().Count()) / float64(allocated)
			}
			demand[i] = t.desire(share)
		} else {
			demand[i] = t.demand
		}
		weight[i] = t.SLA.Weight
		floor[i] = t.SLA.MinCores
		sumDemand += demand[i]
	}
	if sumDemand > a.peakDemand {
		a.peakDemand = sumDemand
	}
	grant := Apportion(demand, weight, floor, a.total)

	// Shrink phase: every over-granted tenant releases down to its grant
	// through its own victim order, freeing cores for the grow phase — the
	// round's core *transfers* between cgroups.
	for i, t := range a.tenants {
		if t.CGroup.CPUs().Count() > grant[i] {
			t.shrinkTo(grant[i])
		}
	}
	occupied := sched.CPUSet(0)
	for _, t := range a.tenants {
		occupied = occupied.Union(t.CGroup.CPUs())
	}
	// Grow phase: under-granted tenants claim free cores in their own
	// mode order (dense packs sockets, sparse spreads).
	for i, t := range a.tenants {
		if t.CGroup.CPUs().Count() < grant[i] {
			occupied = t.growTo(grant[i], occupied)
		}
	}

	now := machine.Now()
	for i, t := range a.tenants {
		set := t.CGroup.CPUs()
		changed := demand[i] != prevDemand[i] || grant[i] != prevGrant[i] || set != t.lastSet
		t.demand = demand[i]
		t.grant = grant[i]
		t.lastSet = set
		if !changed {
			continue
		}
		a.recordEvent(AllocationEvent{
			Now:    now,
			Tenant: t.Name,
			Demand: demand[i],
			Grant:  grant[i],
			Set:    set,
		})
	}
}

// AllocatedTotal returns the number of cores currently held across all
// tenant cgroups.
func (a *Arbiter) AllocatedTotal() int {
	n := 0
	for _, t := range a.tenants {
		n += t.CGroup.CPUs().Count()
	}
	return n
}

// Apportion divides total cores among tenants: tenant i receives at least
// min(floor[i], demand[i]) — its starvation floor, never more than it
// wants — at most demand[i], and spare cores are distributed in proportion
// to weight[i] by largest remainder. When the aggregate demand fits the
// machine every tenant receives exactly its demand (unused cores stay with
// the provider — they are paid for as allocated). The grants always sum to
// at most total; callers must ensure the floors alone fit.
func Apportion(demand, weight, floor []int, total int) []int {
	n := len(demand)
	grant := make([]int, n)
	remaining := total
	for i := 0; i < n; i++ {
		g := floor[i]
		if g > demand[i] {
			g = demand[i]
		}
		if g < 0 {
			g = 0
		}
		grant[i] = g
		remaining -= g
	}
	w := func(i int) int {
		if weight[i] <= 0 {
			return 1
		}
		return weight[i]
	}
	for remaining > 0 {
		// Tenants still below their demand share the remainder by weight.
		sumW := 0
		for i := 0; i < n; i++ {
			if grant[i] < demand[i] {
				sumW += w(i)
			}
		}
		if sumW == 0 {
			break // everyone satisfied; leftover stays with the provider
		}
		type claim struct{ idx, rem int }
		var claims []claim
		gave := 0
		for i := 0; i < n; i++ {
			if grant[i] >= demand[i] {
				continue
			}
			share := remaining * w(i) / sumW
			if max := demand[i] - grant[i]; share > max {
				share = max
			}
			grant[i] += share
			gave += share
			if grant[i] < demand[i] {
				claims = append(claims, claim{idx: i, rem: remaining * w(i) % sumW})
			}
		}
		remaining -= gave
		if gave > 0 {
			continue
		}
		// Fewer spare cores than claimants: hand one core by largest
		// remainder (weight-proportional), ties to the most deprived
		// tenant, then the lowest index — all deterministic.
		best := claim{idx: -1, rem: -1}
		for _, c := range claims {
			deficit := demand[c.idx] - grant[c.idx]
			bestDeficit := -1
			if best.idx >= 0 {
				bestDeficit = demand[best.idx] - grant[best.idx]
			}
			if c.rem > best.rem || (c.rem == best.rem && deficit > bestDeficit) {
				best = c
			}
		}
		if best.idx < 0 {
			break
		}
		grant[best.idx]++
		remaining--
	}
	return grant
}
