// Package tenant consolidates multiple independent databases — each with
// its own cgroup and elastic allocation mechanism — onto one NUMA machine,
// the cloud setting the paper sketches as future work (Section VII): cores
// are paid-for resources governed by service-level agreements, and a
// machine-level Arbiter resolves contention when the tenants' aggregate
// demand exceeds the hardware.
//
// Each Tenant keeps the paper's mechanism intact: its PrT net still
// classifies the tenant's state every control period and asks for one core
// more or less. The difference from the single-tenant setting is that the
// net's desire is no longer applied directly; the Arbiter collects every
// tenant's demand, apportions the machine by SLA weight with starvation
// floors, and transfers cores between the cgroups honoring each tenant's
// allocation-mode placement (dense tenants stay socket-packed, sparse
// tenants stay spread).
package tenant

import (
	"fmt"
	"math"

	"elasticore/internal/elastic"
	"elasticore/internal/numa"
	"elasticore/internal/petrinet"
	"elasticore/internal/sched"
)

// SLA is a tenant's service-level agreement: how much of the machine it is
// entitled to when tenants compete, and the floor below which it must
// never be squeezed.
type SLA struct {
	// Weight is the tenant's proportional share under contention
	// (default 1): above the floors, spare cores are divided in
	// proportion to weight.
	Weight int
	// MinCores is the starvation floor (default 1): the tenant keeps at
	// least this many cores no matter how hard the machine is contended.
	MinCores int
	// TrafficBudgetBytesPerSec, when positive, is an agreed interconnect
	// traffic budget (the paper's Section VII SLA example). Readings above
	// the budget raise the tenant's demand — it needs more cores local to
	// its data — and readings far below it let demand fall.
	TrafficBudgetBytesPerSec float64
}

func (s SLA) withDefaults() SLA {
	if s.Weight <= 0 {
		s.Weight = 1
	}
	if s.MinCores <= 0 {
		s.MinCores = 1
	}
	return s
}

// Config assembles a Tenant.
type Config struct {
	// Name identifies the tenant (cgroup naming, reports).
	Name string
	// Scheduler is the shared OS scheduler of the machine.
	Scheduler *sched.Scheduler
	// CGroup is the tenant's control group; it must already contain the
	// tenant's DBMS PIDs.
	CGroup *sched.CGroup
	// Allocator is the tenant's allocation mode (dense, sparse,
	// adaptive); it decides *where* the tenant's cores live.
	Allocator elastic.Allocator
	// Strategy is the state-transition metric (default CPU load).
	Strategy elastic.Strategy
	// SLA is the tenant's agreement (defaults: weight 1, min 1 core).
	SLA SLA
	// ControlPeriod is the mechanism sampling interval in cycles; zero
	// selects the mechanism default (50 ms at the machine clock).
	ControlPeriod uint64
}

// Tenant is one consolidated database: a cgroup, the elastic mechanism
// steering it, and the SLA the arbiter enforces on its behalf.
type Tenant struct {
	Name string
	SLA  SLA
	// CGroup is the tenant's cpuset-bearing control group.
	CGroup *sched.CGroup
	// Mech is the tenant's own elastic mechanism; under arbitration it is
	// evaluated via DesiredStep and never writes the cgroup itself.
	Mech *elastic.Mechanism

	alloc elastic.Allocator
	topo  *numa.Topology

	// demand and grant are the last arbitration round's values; lastSet
	// is the cpuset of the tenant's last recorded AllocationEvent.
	demand, grant int
	lastSet       sched.CPUSet
}

// New wires a tenant: it builds the mechanism over the tenant's cgroup and
// allocator. The cpuset the mechanism writes at construction is
// provisional — Arbiter.Add immediately re-places the tenant on cores no
// other tenant holds.
func New(cfg Config) (*Tenant, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("tenant: Name is required")
	}
	if cfg.Scheduler == nil || cfg.CGroup == nil {
		return nil, fmt.Errorf("tenant: Scheduler and CGroup are required")
	}
	if cfg.Allocator == nil {
		return nil, fmt.Errorf("tenant: Allocator is required")
	}
	cfg.SLA = cfg.SLA.withDefaults()
	topo := cfg.Scheduler.Machine().Topology()
	if cfg.SLA.MinCores > topo.TotalCores() {
		return nil, fmt.Errorf("tenant %s: MinCores %d exceeds machine cores %d",
			cfg.Name, cfg.SLA.MinCores, topo.TotalCores())
	}
	mech, err := elastic.New(elastic.Config{
		Scheduler:     cfg.Scheduler,
		CGroup:        cfg.CGroup,
		Allocator:     cfg.Allocator,
		Strategy:      cfg.Strategy,
		ControlPeriod: cfg.ControlPeriod,
		InitialCores:  cfg.SLA.MinCores,
	})
	if err != nil {
		return nil, err
	}
	return &Tenant{
		Name:   cfg.Name,
		SLA:    cfg.SLA,
		CGroup: cfg.CGroup,
		Mech:   mech,
		alloc:  cfg.Allocator,
		topo:   topo,
	}, nil
}

// Allocated returns the tenant's current cpuset.
func (t *Tenant) Allocated() sched.CPUSet { return t.CGroup.CPUs() }

// Demand returns the tenant's demand from the last arbitration round.
func (t *Tenant) Demand() int { return t.demand }

// Grant returns the cores the arbiter granted in the last round.
func (t *Tenant) Grant() int { return t.grant }

// desire runs the tenant's control evaluation and refines the net's ±1
// step into the tenant's demand for this round:
//
//  1. The PrT net classifies the window and asks for one core more, one
//     less, or no change (the paper's mechanism, unmodified).
//  2. A LONC estimate (Equation 1) around the current operating point
//     projects where the per-core load band would settle, so a tenant far
//     from its local optimum converges in few rounds instead of one core
//     per period.
//  3. The traffic-budget SLA, when set, overrides toward growth while the
//     tenant's interconnect rate exceeds its budget and toward release
//     when traffic is far below it. Interconnect counters are
//     machine-wide, so the arbiter passes the tenant's share of the
//     allocated cores and the traffic is attributed proportionally — an
//     approximation, but one that keeps a quiet tenant from reacting to
//     its neighbours' traffic.
//
// The result is clamped to [SLA.MinCores, total]: a tenant always demands
// at least its paid-for floor.
func (t *Tenant) desire(share float64) int {
	d := t.Mech.DesiredStep()
	cur := t.CGroup.CPUs().Count()
	demand := d.N

	lonc := t.loncEstimate(d.U, cur)
	switch d.Decision {
	case petrinet.DecisionAllocate:
		if lonc > demand {
			demand = lonc
		}
	case petrinet.DecisionRelease:
		if lonc < demand {
			demand = lonc
		}
	}

	if t.SLA.TrafficBudgetBytesPerSec > 0 {
		s := elastic.TrafficBudgetStrategy{
			BudgetBytesPerSec: t.SLA.TrafficBudgetBytesPerSec,
			ClockHz:           t.topo.ClockHz,
		}
		// Reading is linear in traffic, so scaling the reading equals
		// scaling the attributed traffic.
		r := int(float64(s.Reading(elastic.Sample{Window: d.Window, Allocated: t.CGroup.CPUs().Cores()})) * share)
		floor, ceil := s.Thresholds()
		switch {
		case r > ceil && demand <= cur:
			demand = cur + 1
		case r < floor && demand >= cur && cur > 1:
			demand = cur - 1
		}
	}

	if demand < t.SLA.MinCores {
		demand = t.SLA.MinCores
	}
	if demand > t.topo.TotalCores() {
		demand = t.topo.TotalCores()
	}
	return demand
}

// loncEstimate applies FindLONC (the paper's Equation 1) to an analytic
// model of the tenant around its sampled operating point: the reading u is
// treated as load mass u*cur spread evenly over the allocation, so load at
// n cores is u*cur/n (capped at saturation), and performance saturates
// once the allocation covers the mass. The smallest allocation keeping the
// per-core reading inside the strategy band is the tenant's local-optimum
// demand. Returns cur — the net's ±1 step stands unrefined — when the
// model degenerates (idle window) or when the strategy is not the
// CPU-load strategy: only there is the reading a per-core load average
// that spreads inversely with core count (the HT/IMC ratio and the
// traffic budget read shared-medium quantities that do not).
func (t *Tenant) loncEstimate(u, cur int) int {
	if u <= 0 || cur <= 0 {
		return cur
	}
	if _, ok := t.Mech.Strategy().(elastic.CPULoadStrategy); !ok {
		return cur
	}
	thMin, thMax := t.Mech.Strategy().Thresholds()
	mass := float64(u) * float64(cur)
	n, ok := elastic.FindLONC(func(n int) (float64, float64) {
		un := mass / float64(n)
		if un > 100 {
			un = 100
		}
		perf := math.Min(mass/100, float64(n))
		return un, perf
	}, t.topo.TotalCores(), float64(thMin), float64(thMax))
	if !ok {
		return cur
	}
	return n
}

// shrinkTo releases cores through the tenant's allocator until the cpuset
// holds target cores. Release follows the mode's victim order, so a dense
// tenant retreats into its packed sockets and a sparse tenant stays
// spread.
func (t *Tenant) shrinkTo(target int) {
	cur := t.CGroup.CPUs()
	shrank := false
	for cur.Count() > target {
		core, ok := t.alloc.Victim(cur)
		if !ok {
			break
		}
		cur = cur.Remove(core)
		shrank = true
	}
	if shrank {
		t.CGroup.SetCPUs(cur)
		t.Mech.Net().SetNAlloc(cur.Count())
	}
}

// nextFree picks the tenant's next core outside occupied. A topology-
// aware OccupancyAllocator places it relative to the tenant's own set
// cur — the hop-minimizing transfer path — while the fixed-order modes
// fall back to their sequence scan over the free cores.
func (t *Tenant) nextFree(cur, occupied sched.CPUSet) (numa.CoreID, bool) {
	if oa, ok := t.alloc.(elastic.OccupancyAllocator); ok {
		return oa.NextFree(cur, occupied)
	}
	return t.alloc.Next(occupied)
}

// growTo adds cores through the tenant's allocator until the cpuset holds
// target cores, skipping cores any tenant already occupies. It returns the
// updated occupancy set.
func (t *Tenant) growTo(target int, occupied sched.CPUSet) sched.CPUSet {
	cur := t.CGroup.CPUs()
	grew := false
	for cur.Count() < target {
		core, ok := t.nextFree(cur, occupied)
		if !ok {
			break
		}
		cur = cur.Add(core)
		occupied = occupied.Add(core)
		grew = true
	}
	if grew {
		t.CGroup.SetCPUs(cur)
		t.Mech.Net().SetNAlloc(cur.Count())
	}
	return occupied
}
