package tenant

import (
	"testing"

	"elasticore/internal/elastic"
	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// busyWork keeps a thread 100% busy forever.
type busyWork struct{}

func (busyWork) Run(_ *sched.ExecContext, budget uint64) (uint64, bool, bool) {
	return budget, false, false
}

// finiteWork runs for a fixed number of cycles, then exits.
type finiteWork struct{ remaining uint64 }

func (w *finiteWork) Run(_ *sched.ExecContext, budget uint64) (uint64, bool, bool) {
	if w.remaining <= budget {
		used := w.remaining
		w.remaining = 0
		return used, false, true
	}
	w.remaining -= budget
	return budget, false, false
}

type testBox struct {
	machine *numa.Machine
	sch     *sched.Scheduler
	arb     *Arbiter
}

func newBox(t *testing.T) *testBox {
	t.Helper()
	machine := numa.NewMachine(numa.Opteron8387())
	sch := sched.New(machine, sched.Config{})
	arb, err := NewArbiter(ArbiterConfig{Scheduler: sch, ControlPeriod: sch.Quantum() * 2})
	if err != nil {
		t.Fatal(err)
	}
	return &testBox{machine: machine, sch: sch, arb: arb}
}

// addTenant creates a tenant with its own cgroup and pid and registers it.
func (b *testBox) addTenant(t *testing.T, name string, pid int, mode string, sla SLA) *Tenant {
	t.Helper()
	g := b.sch.NewCGroup(name)
	g.AddPID(pid)
	topo := b.machine.Topology()
	var alloc elastic.Allocator
	switch mode {
	case "sparse":
		alloc = elastic.NewSparse(topo)
	default:
		alloc = elastic.NewDense(topo)
	}
	tn, err := New(Config{
		Name:          name,
		Scheduler:     b.sch,
		CGroup:        g,
		Allocator:     alloc,
		SLA:           sla,
		ControlPeriod: b.sch.Quantum() * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.arb.Add(tn); err != nil {
		t.Fatal(err)
	}
	return tn
}

// checkInvariants asserts the arbitration invariants at the current state.
func (b *testBox) checkInvariants(t *testing.T) {
	t.Helper()
	total := b.machine.Topology().TotalCores()
	var union sched.CPUSet
	sum := 0
	for _, tn := range b.arb.Tenants() {
		set := tn.Allocated()
		if n := set.Count(); n < tn.SLA.MinCores {
			t.Fatalf("tenant %s holds %d cores, SLA floor is %d", tn.Name, n, tn.SLA.MinCores)
		}
		if !union.Intersect(set).IsEmpty() {
			t.Fatalf("tenant %s cpuset %v overlaps another tenant (union %v)", tn.Name, set, union)
		}
		union = union.Union(set)
		sum += set.Count()
	}
	if sum > total {
		t.Fatalf("over-commit: tenants hold %d cores, machine has %d", sum, total)
	}
}

func (b *testBox) run(t *testing.T, ticks int) {
	t.Helper()
	for i := 0; i < ticks; i++ {
		b.sch.Tick()
		b.arb.Maybe()
		b.checkInvariants(t)
	}
}

func TestArbiterAddAssignsDisjointFloors(t *testing.T) {
	b := newBox(t)
	a := b.addTenant(t, "a", 101, "dense", SLA{MinCores: 2})
	c := b.addTenant(t, "c", 102, "sparse", SLA{MinCores: 4})
	d := b.addTenant(t, "d", 103, "dense", SLA{MinCores: 1})
	if got := a.Allocated().Count(); got != 2 {
		t.Errorf("tenant a starts with %d cores, want its floor 2", got)
	}
	if got := c.Allocated().Count(); got != 4 {
		t.Errorf("tenant c starts with %d cores, want its floor 4", got)
	}
	if got := d.Allocated().Count(); got != 1 {
		t.Errorf("tenant d starts with %d cores, want its floor 1", got)
	}
	b.checkInvariants(t)
}

func TestArbiterAddRejectsOverCommittedFloors(t *testing.T) {
	b := newBox(t)
	b.addTenant(t, "big", 101, "dense", SLA{MinCores: 14})
	g := b.sch.NewCGroup("greedy")
	g.AddPID(102)
	tn, err := New(Config{
		Name:      "greedy",
		Scheduler: b.sch,
		CGroup:    g,
		Allocator: elastic.NewDense(b.machine.Topology()),
		SLA:       SLA{MinCores: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.arb.Add(tn); err == nil {
		t.Error("aggregate floors 17 > 16 cores accepted")
	}
}

func TestArbiterRejectsDuplicateTenant(t *testing.T) {
	b := newBox(t)
	b.addTenant(t, "a", 101, "dense", SLA{})
	g := b.sch.NewCGroup("a2")
	g.AddPID(102)
	tn, err := New(Config{
		Name:      "a",
		Scheduler: b.sch,
		CGroup:    g,
		Allocator: elastic.NewDense(b.machine.Topology()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.arb.Add(tn); err == nil {
		t.Error("duplicate tenant name accepted")
	}
}

func TestArbiterNeverOvercommitsUnderContention(t *testing.T) {
	b := newBox(t)
	b.addTenant(t, "a", 101, "dense", SLA{Weight: 2, MinCores: 2})
	b.addTenant(t, "c", 102, "sparse", SLA{Weight: 1, MinCores: 1})
	b.addTenant(t, "d", 103, "dense", SLA{Weight: 1, MinCores: 1})
	// Saturate every tenant so aggregate demand races past the machine.
	for _, pid := range []int{101, 102, 103} {
		for i := 0; i < 16; i++ {
			b.sch.Spawn(pid, "w", busyWork{})
		}
	}
	b.run(t, 200) // checkInvariants every tick
	if got := b.arb.AllocatedTotal(); got != 16 {
		t.Errorf("sustained saturation allocated %d cores in total, want the full 16", got)
	}
	if b.arb.Rounds == 0 {
		t.Error("no arbitration rounds executed")
	}
}

func TestArbiterWeightsFavorGoldTenant(t *testing.T) {
	b := newBox(t)
	gold := b.addTenant(t, "gold", 101, "dense", SLA{Weight: 4, MinCores: 2})
	bronze := b.addTenant(t, "bronze", 102, "dense", SLA{Weight: 1, MinCores: 1})
	for _, pid := range []int{101, 102} {
		for i := 0; i < 20; i++ {
			b.sch.Spawn(pid, "w", busyWork{})
		}
	}
	b.run(t, 300)
	g, br := gold.Allocated().Count(), bronze.Allocated().Count()
	if g <= br {
		t.Errorf("gold (weight 4) holds %d cores, bronze (weight 1) holds %d; want gold ahead", g, br)
	}
	if br < bronze.SLA.MinCores {
		t.Errorf("bronze squeezed below its floor: %d < %d", br, bronze.SLA.MinCores)
	}
	// The grants should reflect the 4:1 split of the 13 cores above the
	// floors: gold 2+10..11, bronze 1+2..3.
	if g < 10 {
		t.Errorf("gold holds %d cores, want a weighted majority (>= 10)", g)
	}
}

func TestArbiterTransfersCoresWhenDemandShifts(t *testing.T) {
	b := newBox(t)
	a := b.addTenant(t, "early", 101, "dense", SLA{})
	c := b.addTenant(t, "late", 102, "dense", SLA{})
	// Tenant "early" is busy for a bounded burst; "late" idles.
	for i := 0; i < 16; i++ {
		b.sch.Spawn(101, "w", &finiteWork{remaining: 100 * b.sch.Quantum()})
	}
	b.run(t, 60)
	if a.Allocated().Count() <= c.Allocated().Count() {
		t.Fatalf("precondition: busy tenant (%d cores) should outgrow idle one (%d)",
			a.Allocated().Count(), c.Allocated().Count())
	}
	// Load shifts: "early" drains while "late" saturates. Its cores must
	// be transferred across the cgroups.
	for i := 0; i < 16; i++ {
		b.sch.Spawn(102, "w", busyWork{})
	}
	b.run(t, 500)
	if c.Allocated().Count() <= a.Allocated().Count() {
		t.Errorf("after the shift, late tenant holds %d cores vs early's %d; cores were not transferred",
			c.Allocated().Count(), a.Allocated().Count())
	}
	if a.Allocated().Count() < 1 {
		t.Error("drained tenant lost its last core")
	}
}

func TestArbiterHonorsPlacementModes(t *testing.T) {
	b := newBox(t)
	dense := b.addTenant(t, "packed", 101, "dense", SLA{Weight: 1, MinCores: 2})
	sparse := b.addTenant(t, "spread", 102, "sparse", SLA{Weight: 1, MinCores: 4})
	for _, pid := range []int{101, 102} {
		for i := 0; i < 12; i++ {
			b.sch.Spawn(pid, "w", busyWork{})
		}
	}
	b.run(t, 200)
	topo := b.machine.Topology()
	dSet, sSet := dense.Allocated(), sparse.Allocated()
	// Dense keeps the tenant socket-packed: it must not span more nodes
	// than its core count strictly requires.
	needed := (dSet.Count() + topo.CoresPerNode - 1) / topo.CoresPerNode
	if got := len(dSet.NodesTouched(topo)); got > needed+1 {
		t.Errorf("dense tenant %v spans %d nodes for %d cores, want <= %d", dSet, got, dSet.Count(), needed+1)
	}
	// Sparse spreads: with >= 3 cores it must span several nodes.
	if sSet.Count() >= 3 && len(sSet.NodesTouched(topo)) < 3 {
		t.Errorf("sparse tenant %v spans %d nodes, want spread", sSet, len(sSet.NodesTouched(topo)))
	}
}

func TestArbiterReleasesWhenAllIdle(t *testing.T) {
	b := newBox(t)
	a := b.addTenant(t, "a", 101, "dense", SLA{MinCores: 2})
	for i := 0; i < 16; i++ {
		b.sch.Spawn(101, "w", &finiteWork{remaining: 60 * b.sch.Quantum()})
	}
	grown := 0
	for i := 0; i < 80; i++ {
		b.sch.Tick()
		b.arb.Maybe()
		b.checkInvariants(t)
		if c := a.Allocated().Count(); c > grown {
			grown = c
		}
	}
	if grown <= 2 {
		t.Fatalf("precondition: expected growth under the burst, peak was %d cores", grown)
	}
	b.run(t, 600)
	if got := a.Allocated().Count(); got != a.SLA.MinCores {
		t.Errorf("idle tenant holds %d cores, want its floor %d", got, a.SLA.MinCores)
	}
}

func TestArbiterEventsTimeline(t *testing.T) {
	b := newBox(t)
	b.addTenant(t, "a", 101, "dense", SLA{})
	for i := 0; i < 8; i++ {
		b.sch.Spawn(101, "w", busyWork{})
	}
	b.run(t, 50)
	events := b.arb.Events()
	if len(events) == 0 {
		t.Fatal("no allocation events recorded")
	}
	var last uint64
	for _, e := range events {
		if e.Now < last {
			t.Error("events out of time order")
		}
		last = e.Now
		if e.Tenant != "a" {
			t.Errorf("unexpected tenant %q in event", e.Tenant)
		}
		if e.Grant != e.Set.Count() {
			t.Errorf("event grant %d != applied set %v", e.Grant, e.Set)
		}
		if e.Demand < 1 || e.Grant < 1 {
			t.Errorf("degenerate event %+v", e)
		}
	}
}

func TestTenantHTIMCStrategySkipsLONCRefinement(t *testing.T) {
	// The LONC estimate models a 0..100 per-core load average; for the
	// HT/IMC strategy (thresholds 100..400 in the milli domain) it must
	// stand aside and leave the net's ±1 stepping intact: the allocation
	// may only move one core per round.
	b := newBox(t)
	g := b.sch.NewCGroup("htimc")
	g.AddPID(101)
	tn, err := New(Config{
		Name:          "htimc",
		Scheduler:     b.sch,
		CGroup:        g,
		Allocator:     elastic.NewDense(b.machine.Topology()),
		Strategy:      elastic.HTIMCStrategy{},
		ControlPeriod: b.sch.Quantum() * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.arb.Add(tn); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		b.sch.Spawn(101, "w", busyWork{})
	}
	prev := tn.Allocated().Count()
	for i := 0; i < 100; i++ {
		b.sch.Tick()
		b.arb.Maybe()
		b.checkInvariants(t)
		cur := tn.Allocated().Count()
		if diff := cur - prev; diff > 1 || diff < -1 {
			t.Fatalf("HT/IMC tenant jumped %d -> %d cores in one round; LONC refinement leaked in", prev, cur)
		}
		prev = cur
	}
}

// remoteTouchWork burns its slice touching blocks homed on a fixed node,
// generating interconnect traffic whenever it runs on another socket.
type remoteTouchWork struct {
	region numa.Region
	i      int
}

func (w *remoteTouchWork) Run(ctx *sched.ExecContext, budget uint64) (uint64, bool, bool) {
	for j := 0; j < 8; j++ {
		ctx.Machine.Access(ctx.Core, numa.Access{
			Block: w.region.Block(w.i % w.region.Blocks),
			Bytes: 4096,
			PID:   ctx.PID,
		})
		w.i++
	}
	return budget, false, false
}

func TestTrafficBudgetSLAIgnoresNeighbourTraffic(t *testing.T) {
	// A nearly idle tenant with a traffic-budget SLA must not ramp up
	// because a neighbour floods the interconnect: machine-wide HT bytes
	// are attributed to tenants proportionally to their core share.
	b := newBox(t)
	quiet := b.addTenant(t, "quiet", 101, "dense", SLA{
		MinCores:                 1,
		TrafficBudgetBytesPerSec: 1e6, // tiny budget: raw machine traffic exceeds it instantly
	})
	b.addTenant(t, "noisy", 102, "sparse", SLA{})
	// The noisy tenant hammers node-3-homed data from everywhere.
	region := b.machine.Memory().AllocOn(64, 3, 102)
	for i := 0; i < 16; i++ {
		b.sch.Spawn(102, "w", &remoteTouchWork{region: region})
	}
	b.run(t, 200)
	if got := quiet.Allocated().Count(); got > 2 {
		t.Errorf("quiet tenant ramped to %d cores on its neighbour's traffic", got)
	}
}

func TestArbiterHonorsSlowerTenantControlPeriod(t *testing.T) {
	// A tenant sampling 4x slower than the arbiter must be evaluated
	// only every 4th round — the arbiter reuses its last demand in
	// between rather than shortening its windows.
	b := newBox(t)
	g := b.sch.NewCGroup("slow")
	g.AddPID(101)
	tn, err := New(Config{
		Name:          "slow",
		Scheduler:     b.sch,
		CGroup:        g,
		Allocator:     elastic.NewDense(b.machine.Topology()),
		ControlPeriod: b.sch.Quantum() * 8, // arbiter runs every 2 quanta
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.arb.Add(tn); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		b.sch.Spawn(101, "w", busyWork{})
	}
	b.run(t, 80)
	rounds, evals := b.arb.Rounds, tn.Mech.TokenFlows
	if evals == 0 {
		t.Fatal("slow tenant never evaluated")
	}
	if evals*3 > rounds {
		t.Errorf("tenant with 4x period evaluated %d times over %d arbitration rounds", evals, rounds)
	}
}

func TestNewTenantValidatesConfig(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	sch := sched.New(machine, sched.Config{})
	g := sch.NewCGroup("g")
	alloc := elastic.NewDense(machine.Topology())
	if _, err := New(Config{Scheduler: sch, CGroup: g, Allocator: alloc}); err == nil {
		t.Error("missing name accepted")
	}
	if _, err := New(Config{Name: "x", CGroup: g, Allocator: alloc}); err == nil {
		t.Error("missing scheduler accepted")
	}
	if _, err := New(Config{Name: "x", Scheduler: sch, CGroup: g}); err == nil {
		t.Error("missing allocator accepted")
	}
	if _, err := New(Config{Name: "x", Scheduler: sch, CGroup: g, Allocator: alloc,
		SLA: SLA{MinCores: 99}}); err == nil {
		t.Error("floor larger than the machine accepted")
	}
}
