package tenant

import "testing"

func TestApportionDemandFits(t *testing.T) {
	grant := Apportion([]int{3, 5, 2}, []int{1, 1, 1}, []int{1, 1, 1}, 16)
	for i, want := range []int{3, 5, 2} {
		if grant[i] != want {
			t.Errorf("grant[%d] = %d, want full demand %d (machine not contended)", i, grant[i], want)
		}
	}
}

func TestApportionLeftoverStaysUnallocated(t *testing.T) {
	grant := Apportion([]int{2, 2}, []int{1, 1}, []int{1, 1}, 16)
	if grant[0]+grant[1] != 4 {
		t.Errorf("grants %v sum to %d, want exactly the demand 4", grant, grant[0]+grant[1])
	}
}

func TestApportionWeightedContention(t *testing.T) {
	// Both want the whole machine; floors 2 and 1; weights 4:1 over the
	// 13 spare cores -> gold 2+11, bronze 1+2 (largest remainder gives the
	// leftover core to the heavier tenant).
	grant := Apportion([]int{16, 16}, []int{4, 1}, []int{2, 1}, 16)
	if grant[0]+grant[1] != 16 {
		t.Fatalf("grants %v do not fill the machine", grant)
	}
	if grant[0] < 12 || grant[1] < 1 {
		t.Errorf("grants %v, want ~4:1 split above the floors", grant)
	}
	if grant[1] < 1 {
		t.Errorf("bronze starved: %v", grant)
	}
}

func TestApportionEqualWeights(t *testing.T) {
	grant := Apportion([]int{16, 16}, []int{1, 1}, []int{1, 1}, 16)
	if grant[0] != 8 || grant[1] != 8 {
		t.Errorf("equal-weight contention grants %v, want 8/8", grant)
	}
}

func TestApportionFloorsAlwaysKept(t *testing.T) {
	grant := Apportion([]int{16, 16, 16, 16}, []int{8, 1, 1, 1}, []int{1, 2, 3, 4}, 16)
	sum := 0
	for i, g := range grant {
		floor := []int{1, 2, 3, 4}[i]
		if g < floor {
			t.Errorf("grant[%d] = %d below floor %d", i, g, floor)
		}
		sum += g
	}
	if sum > 16 {
		t.Errorf("grants %v over-commit (%d > 16)", grant, sum)
	}
}

func TestApportionDemandBelowFloor(t *testing.T) {
	// A tenant demanding less than its floor only receives its demand;
	// the idle reservation is not forced onto it.
	grant := Apportion([]int{1, 16}, []int{1, 1}, []int{4, 1}, 16)
	if grant[0] != 1 {
		t.Errorf("idle tenant granted %d, want its demand 1", grant[0])
	}
	if grant[1] != 15 {
		t.Errorf("busy tenant granted %d, want the remaining 15", grant[1])
	}
}

func TestApportionZeroWeightDefaultsToOne(t *testing.T) {
	grant := Apportion([]int{16, 16}, []int{0, 0}, []int{1, 1}, 16)
	if grant[0] != 8 || grant[1] != 8 {
		t.Errorf("zero weights should behave as 1:1, got %v", grant)
	}
}

func TestApportionSingleSpareCoreGoesToHeaviest(t *testing.T) {
	// Floors soak up 15 of 16 cores; the single spare core must go to the
	// heaviest claimant, deterministically.
	grant := Apportion([]int{16, 16, 16}, []int{1, 5, 2}, []int{5, 5, 5}, 16)
	if grant[1] != 6 {
		t.Errorf("spare core went to %v, want the weight-5 tenant", grant)
	}
	if grant[0] != 5 || grant[2] != 5 {
		t.Errorf("floors disturbed: %v", grant)
	}
}

func TestApportionDeterministic(t *testing.T) {
	a := Apportion([]int{7, 9, 16, 4}, []int{3, 2, 5, 1}, []int{1, 1, 1, 1}, 16)
	for i := 0; i < 50; i++ {
		b := Apportion([]int{7, 9, 16, 4}, []int{3, 2, 5, 1}, []int{1, 1, 1, 1}, 16)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("non-deterministic apportionment: %v vs %v", a, b)
			}
		}
	}
}
