package tenant

import (
	"testing"

	"elasticore/internal/elastic"
	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// placement_test.go covers the topology-aware arbitration path: tenants
// whose allocator is backed by an elastic.Placement must receive
// hop-compact core transfers (NextFree relative to their *own* cores),
// on machines where node index order and hop distance disagree.

// newRingBox builds an arbiter over the four-socket ring, where node 2
// is the diagonal (2 hops) from node 0.
func newRingBox(t *testing.T) *testBox {
	t.Helper()
	machine := numa.NewMachine(numa.FourSocketRing())
	sch := sched.New(machine, sched.Config{})
	arb, err := NewArbiter(ArbiterConfig{Scheduler: sch, ControlPeriod: sch.Quantum() * 2})
	if err != nil {
		t.Fatal(err)
	}
	return &testBox{machine: machine, sch: sch, arb: arb}
}

// addPlacedTenant registers a tenant running a placement-backed
// allocator.
func (b *testBox) addPlacedTenant(t *testing.T, name string, pid int, p elastic.Placement, sla SLA) *Tenant {
	t.Helper()
	g := b.sch.NewCGroup(name)
	g.AddPID(pid)
	tn, err := New(Config{
		Name:          name,
		Scheduler:     b.sch,
		CGroup:        g,
		Allocator:     elastic.NewPlaced(b.machine.Topology(), p),
		SLA:           sla,
		ControlPeriod: b.sch.Quantum() * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.arb.Add(tn); err != nil {
		t.Fatal(err)
	}
	return tn
}

// TestGrowToStaysHopCompact drives growTo directly: a hop-min tenant on
// the ring holding one core on node 1 must grow into its own node first
// and then a one-hop neighbour, skipping the cores a neighbour tenant
// occupies and never reaching a node two hops from home.
func TestGrowToStaysHopCompact(t *testing.T) {
	b := newRingBox(t)
	topo := b.machine.Topology()
	tn := b.addPlacedTenant(t, "near", 100, elastic.HopMin{}, SLA{MinCores: 1})

	// Re-pin the tenant to one core on node 1 and occupy node 3 (the
	// node diagonal to 1) wholesale, as a neighbour tenant would.
	own := sched.NewCPUSet(topo.CoreOf(1, 0))
	tn.CGroup.SetCPUs(own)
	neighbour := sched.NewCPUSet(topo.Cores(3)...)

	occupied := own.Union(neighbour)
	occupied = tn.growTo(4, occupied)

	got := tn.CGroup.CPUs()
	if got.Intersect(neighbour) != 0 {
		t.Fatalf("grow claimed occupied cores: %v", got)
	}
	if got.Count() != 4 {
		t.Fatalf("grew to %d cores, want 4", got.Count())
	}
	// All growth must land on node 1 (own node first: 3 free cores
	// there) and then a 1-hop neighbour — never the diagonal.
	onOwn := got.CoresOnNode(topo, 1)
	if len(onOwn) != topo.CoresPerNode {
		t.Errorf("own node holds %d cores, want it filled first (%d)", len(onOwn), topo.CoresPerNode)
	}
	for _, n := range got.NodesTouched(topo) {
		if n != 1 && topo.Hops(1, n) != 1 {
			t.Errorf("grew onto node %d, %d hops from home node 1", n, topo.Hops(1, n))
		}
	}
}

// TestArbiterTransfersHopAware runs full arbitration rounds: when a
// hop-min tenant's demand rises, the cores it is granted must stay
// mutually close even though the lowest-index free cores sit on a
// distant node.
func TestArbiterTransfersHopAware(t *testing.T) {
	b := newRingBox(t)
	topo := b.machine.Topology()

	// "far" packs node 0 wholesale (floor 4, node-fill starts at node 0);
	// "near" starts with one core.
	far := b.addPlacedTenant(t, "far", 100, elastic.NodeFill{}, SLA{Weight: 1, MinCores: 4})
	near := b.addPlacedTenant(t, "near", 101, elastic.HopMin{}, SLA{Weight: 4, MinCores: 1})

	if got := far.Allocated().NodesTouched(topo); len(got) != 1 || got[0] != 0 {
		t.Fatalf("far tenant placed on %v, want node 0 only", got)
	}

	// Saturate the near tenant so its demand climbs, then run rounds.
	for i := 0; i < 3; i++ {
		b.sch.Spawn(101, "w", busyWork{})
	}
	for i := 0; i < 400; i++ {
		b.sch.Tick()
		b.arb.Maybe()
	}

	got := near.Allocated()
	if got.Count() < 2 {
		t.Fatalf("near tenant never grew: %v", got)
	}
	if got.Intersect(far.Allocated()) != 0 {
		t.Fatalf("tenant cpusets overlap: %v vs %v", got, far.Allocated())
	}
	// Every pair of the near tenant's cores must be within one hop: on
	// the ring a hop-compact allocation spans adjacent nodes only.
	for _, a := range got.Cores() {
		for _, c := range got.Cores() {
			if topo.Hops(topo.NodeOf(a), topo.NodeOf(c)) > 1 {
				t.Errorf("cores %d and %d are %d hops apart in %v",
					a, c, topo.Hops(topo.NodeOf(a), topo.NodeOf(c)), got)
			}
		}
	}
}
