package sched

import (
	"testing"

	"elasticore/internal/numa"
	"elasticore/internal/obs"
)

// obs_test.go guards the scheduler's side of the telemetry contracts:
// attaching a bus must not allocate on the steady-state tick path, must
// not perturb the simulation, and must feed the same stream the
// deprecated single hooks saw.

// spinners pins one busy thread per core, the densest run-slice publish
// load the tick path can see.
func spinners(s *Scheduler, topo *numa.Topology) {
	for c := 0; c < topo.TotalCores(); c++ {
		s.Spawn(1, "spin", RunnerFunc(func(_ *ExecContext, budget uint64) (uint64, bool, bool) {
			return budget, false, false
		}), Pinned(NewCPUSet(numa.CoreID(c))))
	}
}

// TestTickWithBusZeroAlloc extends the zero-alloc guard to a lit bus:
// Event is a flat value copied into the preallocated ring, so publishing
// a run slice per core per quantum allocates nothing.
func TestTickWithBusZeroAlloc(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	s := New(machine, Config{})
	s.SetBus(obs.NewBus(1 << 10))
	spinners(s, machine.Topology())
	for i := 0; i < 32; i++ {
		s.Tick()
	}
	if allocs := testing.AllocsPerRun(200, func() { s.Tick() }); allocs != 0 {
		t.Fatalf("steady-state Tick with bus allocated %v times per run, want 0", allocs)
	}
}

// TestTracedTickMatchesUntraced: a bus is pure observation — two
// identical schedulers, one traced and one dark, end every quantum in
// the same state.
func TestTracedTickMatchesUntraced(t *testing.T) {
	build := func(bus *obs.Bus) (*Scheduler, *numa.Machine) {
		machine := numa.NewMachine(numa.Opteron8387())
		s := New(machine, Config{})
		if bus != nil {
			s.SetBus(bus)
		}
		// A blocking workload on few cores exercises wake migrations and
		// stealing, not just run slices.
		set := NewCPUSet(0, 1, 8, 9)
		for i := 0; i < 12; i++ {
			s.Spawn(1, "worker", RunnerFunc(func(_ *ExecContext, budget uint64) (uint64, bool, bool) {
				return budget / 3, true, false
			}), Pinned(set))
		}
		return s, machine
	}
	bus := obs.NewBus(1 << 14)
	traced, tracedM := build(bus)
	dark, darkM := build(nil)
	for i := 0; i < 64; i++ {
		traced.Tick()
		traced.WakeAll(1)
		dark.Tick()
		dark.WakeAll(1)
	}
	if traced.Stats() != dark.Stats() {
		t.Fatalf("traced stats %+v != untraced %+v", traced.Stats(), dark.Stats())
	}
	if tracedM.Now() != darkM.Now() {
		t.Fatalf("traced clock %d != untraced %d", tracedM.Now(), darkM.Now())
	}
	slices := bus.EventsOfKind(obs.KindRunSlice)
	if len(slices) == 0 {
		t.Fatal("traced run published no run slices")
	}
	migrations := bus.EventsOfKind(obs.KindMigration)
	if len(migrations) != int(traced.Stats().Migrations) {
		t.Fatalf("bus saw %d migrations, stats counted %d", len(migrations), traced.Stats().Migrations)
	}
}

// TestBusSubscribersCoexist: several bus subscribers see the same
// stream — the replace-on-attach clobbering of the deleted single hooks
// cannot recur.
func TestBusSubscribersCoexist(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	s := New(machine, Config{})
	busSlicesA, busSlicesB := 0, 0
	b := s.EnsureBus()
	b.Subscribe(obs.KindRunSlice, func(obs.Event) { busSlicesA++ })
	b.Subscribe(obs.KindRunSlice, func(obs.Event) { busSlicesB++ })
	if s.EnsureBus() != b {
		t.Fatal("EnsureBus replaced an attached bus")
	}
	spinners(s, machine.Topology())
	for i := 0; i < 8; i++ {
		s.Tick()
	}
	if busSlicesA == 0 || busSlicesA != busSlicesB {
		t.Fatalf("bus subscribers saw %d and %d slices — want equal and > 0",
			busSlicesA, busSlicesB)
	}
}
