package sched

import "elasticore/internal/numa"

// TID identifies a kernel thread in the simulation.
type TID int

// State is a thread's scheduling state.
type State int

const (
	// Runnable threads sit on a run queue waiting for a quantum.
	Runnable State = iota
	// Running threads hold a core during the current quantum.
	Running
	// Blocked threads wait for work (an empty task queue); they consume
	// no CPU and are skipped by the balancer.
	Blocked
	// Done threads have finished and are removed at the next tick.
	Done
)

// String implements fmt.Stringer for State.
func (s State) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	}
	return "unknown"
}

// ExecContext is what a Runner sees while executing on a core: the machine
// to charge accesses to and the identity of the executing thread.
type ExecContext struct {
	Machine *numa.Machine
	Core    numa.CoreID
	PID     int
	TID     TID
}

// Access charges one memory access on the executing core and returns its
// cycle cost.
func (ctx *ExecContext) Access(a numa.Access) uint64 {
	if a.PID == 0 {
		a.PID = ctx.PID
	}
	return ctx.Machine.Access(ctx.Core, a).Cycles
}

// AccessRange charges a contiguous run of blocks on the executing core in
// one call (see numa.Machine.AccessRange) and returns its cycle cost.
func (ctx *ExecContext) AccessRange(r numa.RangeAccess) uint64 {
	if r.PID == 0 {
		r.PID = ctx.PID
	}
	return ctx.Machine.AccessRange(ctx.Core, r).Cycles
}

// Runner is the work a thread executes. Run consumes up to budget cycles
// and reports the cycles actually used and the thread's next state:
//
//   - used > 0, done=false, blocked=false: still runnable (requeue)
//   - blocked=true: no work available right now (e.g. empty task queue)
//   - done=true: thread exits
type Runner interface {
	Run(ctx *ExecContext, budget uint64) (used uint64, blocked, done bool)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx *ExecContext, budget uint64) (used uint64, blocked, done bool)

// Run implements Runner.
func (f RunnerFunc) Run(ctx *ExecContext, budget uint64) (uint64, bool, bool) {
	return f(ctx, budget)
}

// Thread is one schedulable entity.
type Thread struct {
	ID   TID
	PID  int    // process the thread belongs to (cgroup membership key)
	Name string // diagnostic label, e.g. "worker3" or "client17"

	runner Runner
	state  State
	core   numa.CoreID // current queue assignment
	// pinned, when non-zero, is a hard affinity mask the balancer must
	// respect (pthread_setaffinity_np / NUMA-aware DBMS pinning).
	pinned CPUSet
	// spawnHint biases initial placement toward a node (fork-local
	// placement); NoNode means none.
	spawnHint numa.NodeID

	spawned uint64 // virtual time of creation, cycles
	exited  uint64 // virtual time of exit, cycles (valid when state == Done)
}

// State returns the thread's scheduling state.
func (t *Thread) State() State { return t.state }

// Core returns the core whose queue currently holds the thread.
func (t *Thread) Core() numa.CoreID { return t.core }

// Pinned returns the thread's hard-affinity mask (zero = none).
func (t *Thread) Pinned() CPUSet { return t.pinned }

// Lifespan returns the creation and exit times in cycles; exit is only
// meaningful once the thread is Done.
func (t *Thread) Lifespan() (spawned, exited uint64) { return t.spawned, t.exited }
