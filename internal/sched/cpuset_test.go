package sched

import (
	"testing"
	"testing/quick"

	"elasticore/internal/numa"
)

func TestCPUSetBasics(t *testing.T) {
	s := NewCPUSet(0, 3, 5)
	if !s.Contains(0) || !s.Contains(3) || !s.Contains(5) {
		t.Error("set missing members")
	}
	if s.Contains(1) {
		t.Error("set contains non-member")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	s = s.Remove(3)
	if s.Contains(3) || s.Count() != 2 {
		t.Error("Remove failed")
	}
}

func TestFullSet(t *testing.T) {
	topo := numa.Opteron8387()
	s := FullSet(topo)
	if s.Count() != topo.TotalCores() {
		t.Errorf("FullSet count = %d, want %d", s.Count(), topo.TotalCores())
	}
	for c := 0; c < topo.TotalCores(); c++ {
		if !s.Contains(numa.CoreID(c)) {
			t.Errorf("FullSet missing core %d", c)
		}
	}
	if s.Contains(numa.CoreID(topo.TotalCores())) {
		t.Error("FullSet contains core beyond machine")
	}
}

func TestCPUSetCoresSorted(t *testing.T) {
	s := NewCPUSet(9, 2, 14, 0)
	cores := s.Cores()
	want := []numa.CoreID{0, 2, 9, 14}
	if len(cores) != len(want) {
		t.Fatalf("Cores = %v, want %v", cores, want)
	}
	for i := range want {
		if cores[i] != want[i] {
			t.Fatalf("Cores = %v, want %v", cores, want)
		}
	}
}

func TestCPUSetNodesTouched(t *testing.T) {
	topo := numa.Opteron8387()
	s := NewCPUSet(0, 1, 13) // node 0 twice, node 3 once
	nodes := s.NodesTouched(topo)
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 3 {
		t.Errorf("NodesTouched = %v, want [0 3]", nodes)
	}
	on0 := s.CoresOnNode(topo, 0)
	if len(on0) != 2 || on0[0] != 0 || on0[1] != 1 {
		t.Errorf("CoresOnNode(0) = %v", on0)
	}
}

func TestCPUSetString(t *testing.T) {
	cases := []struct {
		set  CPUSet
		want string
	}{
		{NewCPUSet(), "(empty)"},
		{NewCPUSet(4), "4"},
		{NewCPUSet(0, 1, 2, 3), "0-3"},
		{NewCPUSet(0, 2, 3, 4, 9), "0,2-4,9"},
	}
	for _, tc := range cases {
		if got := tc.set.String(); got != tc.want {
			t.Errorf("String(%b) = %q, want %q", tc.set, got, tc.want)
		}
	}
}

func TestCPUSetAlgebra(t *testing.T) {
	f := func(a, b uint16) bool {
		sa, sb := CPUSet(a), CPUSet(b)
		inter := sa.Intersect(sb)
		union := sa.Union(sb)
		// |A| + |B| == |A∪B| + |A∩B|
		return sa.Count()+sb.Count() == union.Count()+inter.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddRemoveRoundTrip(t *testing.T) {
	f := func(raw uint16, core uint8) bool {
		s := CPUSet(raw)
		c := numa.CoreID(core % 16)
		return s.Add(c).Remove(c).Add(c).Contains(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
