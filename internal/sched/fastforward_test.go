package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"elasticore/internal/numa"
)

// fastforward_test.go verifies the event-driven scheduler against the
// naive tick loop: both must produce bit-identical Stats, queue states and
// machine counters for arbitrary workloads, and the fast path's hot loop
// must not allocate.

// chaosWork is a deterministic pseudo-random runner: it works, blocks or
// finishes following its own rng stream, and charges real memory accesses
// so the cache and congestion models are exercised too.
type chaosWork struct {
	rng    *rand.Rand
	region numa.Region
	rounds int
}

func (w *chaosWork) Run(ctx *ExecContext, budget uint64) (uint64, bool, bool) {
	w.rounds--
	if w.rounds <= 0 {
		return budget / 2, false, true
	}
	cost := uint64(0)
	for i := 0; i < 4; i++ {
		blk := w.region.Block(w.rng.Intn(w.region.Blocks))
		cost += ctx.Access(numa.Access{Block: blk, Bytes: 64, Write: w.rng.Intn(8) == 0})
	}
	switch w.rng.Intn(4) {
	case 0:
		return cost, true, false // block; woken by the driver below
	case 1:
		return budget, false, false // burn the whole quantum
	default:
		if cost > budget {
			cost = budget
		}
		return cost, false, false
	}
}

// chaosArrivalTicks scripts an open-loop arrival pattern: a seeded
// pseudo-random, sorted list of ticks at which fresh threads enter the
// system mid-run (geometric gaps approximate a discretized Poisson
// stream). Staggered spawns hit the fast path's surplus accounting in a
// way the all-up-front workload never does.
func chaosArrivalTicks(seed int64, n, horizon int) []int {
	rng := rand.New(rand.NewSource(seed ^ 0x09E11007))
	ticks := make([]int, 0, n)
	at := 0
	for len(ticks) < n {
		at += 1 + rng.Intn(2*horizon/n)
		if at >= horizon {
			break
		}
		ticks = append(ticks, at)
	}
	return ticks
}

// runChaos drives one scheduler through a scripted random workload —
// 24 threads present from the start plus an open-loop wave arriving at
// scripted ticks — and returns its observable end state, including how
// many threads completed and each arrival's queue wait (spawn-to-exit
// time minus its own runtime is scheduler-dependent, so lifespans are
// compared directly).
func runChaos(naive bool, seed int64) (Stats, []int, numa.Counters, int, []uint64) {
	machine := numa.NewMachine(numa.Opteron8387())
	s := New(machine, Config{Naive: naive})
	rng := rand.New(rand.NewSource(seed))
	region := machine.Memory().Alloc(64)

	var threads []*Thread
	for i := 0; i < 24; i++ {
		w := &chaosWork{rng: rand.New(rand.NewSource(seed + int64(i))), region: region, rounds: 30 + rng.Intn(40)}
		threads = append(threads, s.Spawn(1+i%3, "chaos", w))
	}
	arrivalTicks := chaosArrivalTicks(seed, 16, 400)
	arrived := 0
	var arrivals []*Thread
	for tick := 0; tick < 400; tick++ {
		for arrived < len(arrivalTicks) && arrivalTicks[arrived] <= tick {
			w := &chaosWork{rng: rand.New(rand.NewSource(seed + 1000 + int64(arrived))), region: region, rounds: 10 + rng.Intn(20)}
			th := s.Spawn(1+arrived%3, "arrival", w)
			threads = append(threads, th)
			arrivals = append(arrivals, th)
			arrived++
		}
		s.Tick()
		// Periodically wake blocked threads, like an engine would.
		if tick%7 == 0 {
			s.WakeAll(1 + tick%3)
		}
		if tick%13 == 0 {
			for _, th := range threads {
				if th.State() == Blocked {
					s.Wake(th)
					break
				}
			}
		}
	}
	// Drain the rest through RunUntil, exercising its fast-forward once
	// every thread is gone.
	s.RunUntil(func() bool { return false }, 200*s.Quantum())
	completed := 0
	for _, th := range threads {
		if _, exited := th.Lifespan(); exited > 0 {
			completed++
		}
	}
	// The open-loop arrivals' spawn/exit stamps are the scheduler-level
	// analogue of per-query queue wait + service time.
	waits := make([]uint64, 0, 2*len(arrivals))
	for _, th := range arrivals {
		spawned, exited := th.Lifespan()
		waits = append(waits, spawned, exited)
	}
	return s.Stats(), s.QueueLengths(), machine.Snapshot(), completed, waits
}

// TestFastForwardMatchesNaive is the scheduler-level equivalence property:
// the same scripted workload — including the open-loop arrival wave —
// under the naive and event-driven paths ends in bit-identical scheduler
// stats, queue lengths, hardware counters, completion counts and
// per-arrival lifespans.
func TestFastForwardMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		nStats, nQueues, nSnap, nDone, nWaits := runChaos(true, seed)
		fStats, fQueues, fSnap, fDone, fWaits := runChaos(false, seed)
		if nStats != fStats {
			t.Errorf("seed %d: stats diverged\nnaive: %+v\nfast:  %+v", seed, nStats, fStats)
		}
		if !reflect.DeepEqual(nQueues, fQueues) {
			t.Errorf("seed %d: queue lengths diverged\nnaive: %v\nfast:  %v", seed, nQueues, fQueues)
		}
		if !reflect.DeepEqual(nSnap, fSnap) {
			t.Errorf("seed %d: machine counters diverged\nnaive: %+v\nfast:  %+v", seed, nSnap, fSnap)
		}
		if nDone != fDone {
			t.Errorf("seed %d: completions diverged: naive %d, fast %d", seed, nDone, fDone)
		}
		if nDone == 0 {
			t.Errorf("seed %d: chaos run completed nothing", seed)
		}
		if !reflect.DeepEqual(nWaits, fWaits) {
			t.Errorf("seed %d: arrival lifespans diverged\nnaive: %v\nfast:  %v", seed, nWaits, fWaits)
		}
	}
}

// TestRunUntilIdleFastForward pins the bulk idle skip: with nothing
// runnable, the fast path must land on exactly the state the naive loop
// reaches tick by tick.
func TestRunUntilIdleFastForward(t *testing.T) {
	build := func(naive bool) (*Scheduler, *numa.Machine) {
		machine := numa.NewMachine(numa.Opteron8387())
		s := New(machine, Config{Naive: naive})
		// One thread that blocks immediately and is never woken.
		s.Spawn(1, "sleeper", RunnerFunc(func(_ *ExecContext, budget uint64) (uint64, bool, bool) {
			return budget / 8, true, false
		}))
		s.Tick()
		return s, machine
	}
	sn, mn := build(true)
	sf, mf := build(false)
	limit := 12345 * sn.Quantum() / 10 // deliberately not quantum-aligned
	if sn.RunUntil(func() bool { return false }, limit) {
		t.Fatal("naive RunUntil satisfied an unsatisfiable predicate")
	}
	if sf.RunUntil(func() bool { return false }, limit) {
		t.Fatal("fast RunUntil satisfied an unsatisfiable predicate")
	}
	if mn.Now() != mf.Now() {
		t.Errorf("Now diverged: naive %d, fast %d", mn.Now(), mf.Now())
	}
	if sn.Stats() != sf.Stats() {
		t.Errorf("stats diverged: naive %+v, fast %+v", sn.Stats(), sf.Stats())
	}
	if !reflect.DeepEqual(mn.Snapshot(), mf.Snapshot()) {
		t.Error("idle counters diverged between naive and fast RunUntil")
	}
}

// TestTickSteadyStateZeroAlloc is the tentpole's allocation regression: a
// steady-state run slice on the fast path must not allocate. One pinned
// spinner per core keeps every queue busy through Tick, runCore and the
// periodic balance pass.
func TestTickSteadyStateZeroAlloc(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	s := New(machine, Config{})
	topo := machine.Topology()
	for c := 0; c < topo.TotalCores(); c++ {
		s.Spawn(1, "spin", RunnerFunc(func(_ *ExecContext, budget uint64) (uint64, bool, bool) {
			return budget, false, false
		}), Pinned(NewCPUSet(numa.CoreID(c))))
	}
	for i := 0; i < 32; i++ {
		s.Tick() // warm the queues, blocked sets and congestion windows
	}
	allocs := testing.AllocsPerRun(200, func() { s.Tick() })
	if allocs != 0 {
		t.Fatalf("steady-state Tick allocated %v times per run, want 0", allocs)
	}
}

// TestWakeAllSteadyStateZeroAlloc guards the blocked-set double buffering:
// block/wake cycles must not allocate once warm.
func TestWakeAllSteadyStateZeroAlloc(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	s := New(machine, Config{})
	for i := 0; i < 8; i++ {
		s.Spawn(1, "blocky", RunnerFunc(func(_ *ExecContext, budget uint64) (uint64, bool, bool) {
			return budget / 4, true, false
		}))
	}
	cycle := func() {
		s.Tick()
		s.WakeAll(1)
	}
	for i := 0; i < 16; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("steady-state tick+WakeAll allocated %v times per run, want 0", allocs)
	}
}
