package sched

import (
	"testing"

	"elasticore/internal/faults"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
)

func newTestSched() *Scheduler {
	return New(numa.NewMachine(numa.Opteron8387()), Config{})
}

// fixedWork runs for a total of cycles and then finishes.
type fixedWork struct{ remaining uint64 }

func (w *fixedWork) Run(_ *ExecContext, budget uint64) (uint64, bool, bool) {
	if w.remaining <= budget {
		used := w.remaining
		w.remaining = 0
		return used, false, true
	}
	w.remaining -= budget
	return budget, false, false
}

func TestThreadRunsToCompletion(t *testing.T) {
	s := newTestSched()
	work := &fixedWork{remaining: 3 * s.Quantum()}
	th := s.Spawn(1, "w", work)
	for i := 0; i < 10 && th.State() != Done; i++ {
		s.Tick()
	}
	if th.State() != Done {
		t.Fatalf("thread state = %v, want done", th.State())
	}
	if work.remaining != 0 {
		t.Errorf("work remaining = %d", work.remaining)
	}
	if s.LiveThreads() != 0 {
		t.Errorf("LiveThreads = %d, want 0", s.LiveThreads())
	}
}

func TestSpawnSpreadsAcrossNodes(t *testing.T) {
	// With all cores allowed, the kernel's spreading policy must land the
	// first NodeCount threads on distinct nodes.
	s := newTestSched()
	topo := s.Machine().Topology()
	seen := make(map[numa.NodeID]bool)
	for i := 0; i < topo.NodeCount; i++ {
		th := s.Spawn(1, "w", &fixedWork{remaining: 100 * s.Quantum()})
		seen[topo.NodeOf(th.Core())] = true
	}
	if len(seen) != topo.NodeCount {
		t.Errorf("first %d threads touched %d nodes, want all %d",
			topo.NodeCount, len(seen), topo.NodeCount)
	}
}

func TestCGroupRestrictsPlacement(t *testing.T) {
	s := newTestSched()
	g := s.NewCGroup("dbms")
	g.AddPID(7)
	g.SetCPUs(NewCPUSet(0, 1))
	for i := 0; i < 6; i++ {
		th := s.Spawn(7, "w", &fixedWork{remaining: 100 * s.Quantum()})
		if c := th.Core(); c != 0 && c != 1 {
			t.Errorf("thread placed on core %d outside cpuset", c)
		}
	}
	// A PID outside the group is unrestricted.
	other := s.Spawn(8, "x", &fixedWork{remaining: 100 * s.Quantum()})
	_ = other // may land anywhere; just must not panic
}

func TestCPUSetShrinkMigratesThreads(t *testing.T) {
	s := newTestSched()
	g := s.NewCGroup("dbms")
	g.AddPID(7)
	g.SetCPUs(FullSet(s.Machine().Topology()))
	var ths []*Thread
	for i := 0; i < 8; i++ {
		ths = append(ths, s.Spawn(7, "w", &fixedWork{remaining: 1000 * s.Quantum()}))
	}
	before := s.Stats().Migrations
	g.SetCPUs(NewCPUSet(0))
	for _, th := range ths {
		if th.State() != Done && th.Core() != 0 {
			t.Errorf("thread on core %d after shrink to {0}", th.Core())
		}
	}
	if s.Stats().Migrations == before {
		t.Error("shrink produced no migration events")
	}
}

func TestBalancerStealsFromBusyCore(t *testing.T) {
	s := newTestSched()
	// Pin spawn placement to core 0 via a one-core group, then widen the
	// set: the balancer must spread the backlog.
	g := s.NewCGroup("g")
	g.AddPID(1)
	g.SetCPUs(NewCPUSet(0))
	for i := 0; i < 8; i++ {
		s.Spawn(1, "w", &fixedWork{remaining: 1000 * s.Quantum()})
	}
	g.SetCPUs(NewCPUSet(0, 1, 2, 3))
	for i := 0; i < 8; i++ {
		s.Tick()
	}
	if s.Stats().StolenTasks == 0 {
		t.Error("balancer stole nothing from an 8-deep queue")
	}
	lens := s.QueueLengths()
	if lens[0] >= 8 {
		t.Errorf("core 0 queue still %d deep after balancing", lens[0])
	}
}

func TestPinnedThreadNeverLeavesMask(t *testing.T) {
	s := newTestSched()
	pin := NewCPUSet(5)
	th := s.Spawn(1, "pinned", &fixedWork{remaining: 50 * s.Quantum()}, Pinned(pin))
	if th.Core() != 5 {
		t.Fatalf("pinned thread placed on core %d, want 5", th.Core())
	}
	// Add load so the balancer is tempted.
	for i := 0; i < 10; i++ {
		s.Spawn(2, "w", &fixedWork{remaining: 50 * s.Quantum()})
	}
	for i := 0; i < 20; i++ {
		s.Tick()
		if th.State() == Done {
			break
		}
		if th.Core() != 5 {
			t.Fatalf("pinned thread migrated to core %d", th.Core())
		}
	}
}

func TestBlockedThreadWakes(t *testing.T) {
	s := newTestSched()
	phase := 0
	r := RunnerFunc(func(_ *ExecContext, budget uint64) (uint64, bool, bool) {
		switch phase {
		case 0:
			phase = 1
			return budget / 2, true, false // block after half a quantum
		default:
			return budget / 4, false, true // finish after wake
		}
	})
	th := s.Spawn(1, "blocky", r)
	s.Tick()
	if th.State() != Blocked {
		t.Fatalf("state = %v, want blocked", th.State())
	}
	// Blocked threads consume no CPU.
	busyBefore := s.Machine().Snapshot().Cores[th.Core()].BusyCycles
	s.Tick()
	if busy := s.Machine().Snapshot().Cores[th.Core()].BusyCycles; busy != busyBefore {
		t.Error("blocked thread consumed CPU")
	}
	s.Wake(th)
	s.Tick()
	if th.State() != Done {
		t.Errorf("state after wake = %v, want done", th.State())
	}
}

func TestWakeAllWakesOnlyPID(t *testing.T) {
	s := newTestSched()
	blockOnce := func() Runner {
		first := true
		return RunnerFunc(func(_ *ExecContext, budget uint64) (uint64, bool, bool) {
			if first {
				first = false
				return 1, true, false
			}
			return 1, false, true
		})
	}
	a := s.Spawn(1, "a", blockOnce())
	b := s.Spawn(2, "b", blockOnce())
	s.Tick()
	if a.State() != Blocked || b.State() != Blocked {
		t.Fatal("threads did not block")
	}
	s.WakeAll(1)
	if a.State() != Runnable {
		t.Error("pid-1 thread not woken")
	}
	if b.State() != Blocked {
		t.Error("pid-2 thread woken by WakeAll(1)")
	}
}

func TestIdleCoresChargeIdle(t *testing.T) {
	s := newTestSched()
	s.Tick()
	snap := s.Machine().Snapshot()
	for c, cc := range snap.Cores {
		if cc.IdleCycles != s.Quantum() {
			t.Errorf("core %d idle = %d, want %d", c, cc.IdleCycles, s.Quantum())
		}
		if cc.BusyCycles != 0 {
			t.Errorf("core %d busy = %d, want 0", c, cc.BusyCycles)
		}
	}
}

func TestCrossNodeStealDropsAffinity(t *testing.T) {
	s := newTestSched()
	g := s.NewCGroup("g")
	g.AddPID(1)
	g.SetCPUs(NewCPUSet(0))
	for i := 0; i < 6; i++ {
		s.Spawn(1, "w", &fixedWork{remaining: 1000 * s.Quantum()})
	}
	g.SetCPUs(NewCPUSet(0, 4, 8, 12)) // one core per node
	for i := 0; i < 12; i++ {
		s.Tick()
	}
	if s.Stats().CrossNodeMigrations == 0 {
		t.Error("no cross-node migrations despite one-core-per-node cpuset")
	}
}

func TestRunUntil(t *testing.T) {
	s := newTestSched()
	th := s.Spawn(1, "w", &fixedWork{remaining: 2 * s.Quantum()})
	ok := s.RunUntil(func() bool { return th.State() == Done }, 100*s.Quantum())
	if !ok {
		t.Error("RunUntil did not reach the predicate")
	}
	if !s.RunUntil(func() bool { return true }, 0) {
		t.Error("RunUntil with satisfied predicate returned false")
	}
	if s.RunUntil(func() bool { return false }, 3*s.Quantum()) {
		t.Error("RunUntil with impossible predicate returned true")
	}
}

func TestMigrationEventsObserved(t *testing.T) {
	s := newTestSched()
	var events []MigrationEvent
	s.EnsureBus().Subscribe(obs.KindMigration, func(e obs.Event) {
		events = append(events, MigrationEvent{
			TID: TID(e.TID), From: numa.CoreID(e.From), To: numa.CoreID(e.Core), Now: e.Now,
		})
	})
	g := s.NewCGroup("g")
	g.AddPID(1)
	g.SetCPUs(NewCPUSet(0))
	for i := 0; i < 5; i++ {
		s.Spawn(1, "w", &fixedWork{remaining: 500 * s.Quantum()})
	}
	g.SetCPUs(NewCPUSet(2, 3))
	if len(events) == 0 {
		t.Fatal("no migration events for displaced threads")
	}
	for _, e := range events {
		if e.To != 2 && e.To != 3 {
			t.Errorf("migration target %d outside new cpuset", e.To)
		}
	}
}

// TestCoreSlowdown: a factor-F core charges F wall cycles per retired
// work cycle; a stalled core freezes its queue without losing threads;
// clearing the factor restores full speed.
func TestCoreSlowdown(t *testing.T) {
	s := newTestSched()
	q := s.Quantum()
	th := s.Spawn(1, "w", &fixedWork{remaining: 4 * q}, Pinned(NewCPUSet(0)))
	if got := s.CoreSlowdown(0); got != 1 {
		t.Fatalf("untouched core reports factor %d", got)
	}

	s.SetCoreSlowdown(0, 4)
	s.Tick() // retires q/4 work in one quantum of wall time
	if th.State() != Runnable {
		t.Fatalf("thread state %v after slowed tick", th.State())
	}
	for i := 0; i < 14; i++ { // 15 slowed quanta < 16 needed
		s.Tick()
	}
	if th.State() == Done {
		t.Fatal("4x-slowed thread finished as if at full speed")
	}

	s.SetCoreSlowdown(0, faults.StallFactor)
	before := s.machine.Now()
	for i := 0; i < 8; i++ {
		s.Tick()
	}
	if th.State() == Done {
		t.Fatal("stalled core retired work")
	}
	if s.machine.Now() != before+8*q {
		t.Fatal("stalled ticks did not advance the clock")
	}
	if s.QueueLengths()[0] != 1 {
		t.Fatal("stalled core lost its queued thread")
	}

	s.SetCoreSlowdown(0, 1)
	if !s.RunUntil(func() bool { return th.State() == Done }, 100*q) {
		t.Fatal("thread did not finish after the stall lifted")
	}
}
