package sched

import (
	"fmt"
	"sort"

	"elasticore/internal/deque"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
)

// Config tunes the scheduler model.
type Config struct {
	// Quantum is the scheduling time slice in cycles. Zero selects 1 ms at
	// the machine's clock.
	Quantum uint64
	// BalancePeriod is how many ticks pass between load-balancing passes.
	// Zero selects 4.
	BalancePeriod int
	// BalanceThreshold is the queue-length imbalance (busiest minus
	// idlest) that triggers a steal. Zero selects 2.
	BalanceThreshold int
	// Naive selects the original fixed-quantum tick loop: every core is
	// walked every quantum (idle or not), each run slice allocates a fresh
	// ExecContext, and WakeAll scans the global thread table. It exists so
	// equivalence tests and the bench harness can verify that the
	// event-driven fast path produces bit-identical Stats, counters and
	// query results; production callers leave it false.
	Naive bool
}

// Stats are the scheduler's own cumulative counters, complementing the
// machine's hardware counters.
type Stats struct {
	// Spawned counts threads ever created.
	Spawned uint64
	// StolenTasks counts threads moved by the load balancer (Fig 13 (d)).
	StolenTasks uint64
	// Migrations counts every reassignment of a thread to a different
	// core, whatever the cause (balancing, cpuset shrink, wake-up move).
	Migrations uint64
	// CrossNodeMigrations counts the subset of migrations that changed
	// NUMA node, losing all cache affinity.
	CrossNodeMigrations uint64
	// TicksRun counts scheduler quanta executed.
	TicksRun uint64
}

// MigrationEvent describes one thread reassignment, feeding the lifespan /
// migration plots (paper Figures 5 and 16).
type MigrationEvent struct {
	TID      TID
	From, To numa.CoreID
	Now      uint64 // cycles
}

// RunSlice describes one executed slice of a thread on a core, feeding the
// tomograph-style traces (paper Figure 6).
type RunSlice struct {
	TID    TID
	Core   numa.CoreID
	Start  uint64 // cycles
	Cycles uint64
}

// blockedSet tracks one process's Blocked threads in ascending-TID order,
// giving WakeAll its wake order without scanning the global thread table.
// The order is kept in a ring deque because the churn is directional:
// WakeAll pushes woken threads to their queues' heads in ascending TID
// order, so they re-block mostly in descending TID order — a front insert
// here — while freshly spawned threads block at the back. Middle inserts
// are the rare case. scratch is the drain buffer, reused so a steady-state
// WakeAll allocates nothing.
type blockedSet struct {
	items   deque.Deque[*Thread]
	scratch []*Thread
}

// Scheduler is the OS CPU scheduler model.
type Scheduler struct {
	machine *numa.Machine
	topo    *numa.Topology
	cfg     Config

	queues  []deque.Deque[*Thread] // per-core FIFO run queues
	queued  int                    // total queued (runnable) threads
	surplus int                    // queues holding >= 2 threads (steal candidates)
	threads map[TID]*Thread
	nextTID TID

	// blocked indexes Blocked threads by owning PID so WakeAll is O(woken)
	// instead of O(all threads * log). It is maintained in both scheduler
	// modes; only WakeAll's lookup strategy differs under Config.Naive.
	blocked map[int]*blockedSet

	groups   map[string]*CGroup
	pidGroup map[int]*CGroup
	rootSet  CPUSet

	stats Stats
	tick  int

	// execCtx is the per-core run-slice scratch reused by the fast path so
	// steady-state execution does not allocate.
	execCtx []ExecContext

	// bus, when attached, receives KindMigration and KindRunSlice events;
	// nil (the default) keeps the hot path dark. The bus is the only
	// observation surface — the pre-bus OnMigrate/OnRunSlice single
	// hooks (replace-on-attach, so a second consumer silently clobbered
	// the first) were deleted once every consumer moved over.
	bus *obs.Bus

	// slow, when non-nil, holds a per-core cycle-cost multiplier for
	// fault injection: factor 1 is a healthy core, factor F makes every
	// unit of work cost F wall cycles, faults.StallFactor freezes the
	// core outright. nil (the default) keeps the hot path free of the
	// division.
	slow []uint64
}

// New creates a scheduler over the machine with the given configuration.
func New(m *numa.Machine, cfg Config) *Scheduler {
	topo := m.Topology()
	if cfg.Quantum == 0 {
		cfg.Quantum = topo.SecondsToCycles(1e-3)
	}
	if cfg.BalancePeriod == 0 {
		cfg.BalancePeriod = 4
	}
	if cfg.BalanceThreshold == 0 {
		cfg.BalanceThreshold = 2
	}
	return &Scheduler{
		machine:  m,
		topo:     topo,
		cfg:      cfg,
		queues:   make([]deque.Deque[*Thread], topo.TotalCores()),
		threads:  make(map[TID]*Thread),
		nextTID:  1,
		blocked:  make(map[int]*blockedSet),
		groups:   make(map[string]*CGroup),
		pidGroup: make(map[int]*CGroup),
		rootSet:  FullSet(topo),
		execCtx:  make([]ExecContext, topo.TotalCores()),
	}
}

// Machine returns the underlying hardware model.
func (s *Scheduler) Machine() *numa.Machine { return s.machine }

// SetBus attaches the telemetry bus the scheduler publishes migration
// and run-slice events onto (nil detaches). Attach once, before
// subscribing consumers: replacing an attached bus orphans its
// subscribers.
func (s *Scheduler) SetBus(b *obs.Bus) { s.bus = b }

// Bus returns the attached telemetry bus, nil when dark.
func (s *Scheduler) Bus() *obs.Bus { return s.bus }

// EnsureBus returns the attached bus, creating and attaching a
// default-capacity one on first use — the idiom trace consumers use so
// several of them share one stream.
func (s *Scheduler) EnsureBus() *obs.Bus {
	if s.bus == nil {
		s.bus = obs.NewBus(0)
	}
	return s.bus
}

// SetCoreSlowdown installs a cycle-cost multiplier on one core: 1
// restores full speed, factor F makes work cost F wall cycles per
// retired cycle, and a factor larger than the quantum (canonically
// faults.StallFactor) freezes the core — threads stay queued but make
// no progress. The per-core table is allocated on first use; an
// untouched scheduler never pays for the feature.
func (s *Scheduler) SetCoreSlowdown(core numa.CoreID, factor uint64) {
	if factor == 0 {
		factor = 1
	}
	if s.slow == nil {
		if factor == 1 {
			return
		}
		s.slow = make([]uint64, s.topo.TotalCores())
		for i := range s.slow {
			s.slow[i] = 1
		}
	}
	s.slow[int(core)] = factor
}

// CoreSlowdown reports the core's live cycle-cost multiplier.
func (s *Scheduler) CoreSlowdown(core numa.CoreID) uint64 {
	if s.slow == nil {
		return 1
	}
	return s.slow[int(core)]
}

// Stats returns a copy of the scheduler counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Quantum returns the time slice in cycles.
func (s *Scheduler) Quantum() uint64 { return s.cfg.Quantum }

// queue mutation helpers: every insert/remove goes through these so the
// fast path's queued/surplus bookkeeping can never drift from the queues.

func (s *Scheduler) pushBack(core numa.CoreID, t *Thread) {
	q := &s.queues[core]
	q.PushBack(t)
	s.queued++
	if q.Len() == 2 {
		s.surplus++
	}
}

func (s *Scheduler) pushFront(core numa.CoreID, t *Thread) {
	q := &s.queues[core]
	q.PushFront(t)
	s.queued++
	if q.Len() == 2 {
		s.surplus++
	}
}

func (s *Scheduler) popFront(core numa.CoreID) *Thread {
	q := &s.queues[core]
	t, ok := q.PopFront()
	if !ok {
		return nil
	}
	s.queued--
	if q.Len() == 1 {
		s.surplus--
	}
	return t
}

func (s *Scheduler) removeAt(core numa.CoreID, i int) *Thread {
	q := &s.queues[core]
	t := q.RemoveAt(i)
	s.queued--
	if q.Len() == 1 {
		s.surplus--
	}
	return t
}

// NewCGroup creates an empty control group whose cpuset is initially the
// full machine.
func (s *Scheduler) NewCGroup(name string) *CGroup {
	if _, dup := s.groups[name]; dup {
		panic(fmt.Sprintf("sched: duplicate cgroup %q", name))
	}
	g := &CGroup{name: name, pids: make(map[int]bool), cpus: s.rootSet, sched: s}
	s.groups[name] = g
	return g
}

// allowedSet computes where a thread may run: its cgroup cpuset intersected
// with any hard pin. An empty intersection falls back to the pin (the
// kernel refuses to starve a pinned thread).
func (s *Scheduler) allowedSet(t *Thread) CPUSet {
	set := s.rootSet
	if g, ok := s.pidGroup[t.PID]; ok {
		set = g.cpus
	}
	if !t.pinned.IsEmpty() {
		if inter := set.Intersect(t.pinned); !inter.IsEmpty() {
			return inter
		}
		return t.pinned
	}
	return set
}

// SpawnOption configures thread creation.
type SpawnOption func(*Thread)

// Pinned gives the thread a hard affinity mask
// (pthread_setaffinity_np-style).
func Pinned(set CPUSet) SpawnOption {
	return func(t *Thread) { t.pinned = set }
}

// NearNode hints the initial placement toward the given node, modelling
// fork-local placement: a child thread starts in its parent's scheduling
// domain, and only the load balancer later spreads it (stealing). It is a
// hint, not an affinity — ignored when the node has no allowed core.
func NearNode(n numa.NodeID) SpawnOption {
	return func(t *Thread) { t.spawnHint = n }
}

// Spawn creates a thread owned by pid running the given work and places it
// following the kernel's spreading policy: the least-loaded allowed core,
// preferring nodes with the least total load, so new threads land far
// apart (Section II-A: "the OS scheduler attempts to leave them on remote
// nodes balancing thus the CPU load").
func (s *Scheduler) Spawn(pid int, name string, r Runner, opts ...SpawnOption) *Thread {
	t := &Thread{
		ID:        s.nextTID,
		PID:       pid,
		Name:      name,
		runner:    r,
		state:     Runnable,
		spawned:   s.machine.Now(),
		spawnHint: numa.NoNode,
	}
	s.nextTID++
	for _, opt := range opts {
		opt(t)
	}
	t.core = s.placementCore(t)
	s.pushBack(t.core, t)
	s.threads[t.ID] = t
	s.stats.Spawned++
	return t
}

// placementCore picks the spawn/wake core for a thread.
func (s *Scheduler) placementCore(t *Thread) numa.CoreID {
	allowed := s.allowedSet(t)
	if t.spawnHint != numa.NoNode {
		// Fork-local placement: least-loaded allowed core on the hinted
		// node; spreading is the balancer's job, not placement's.
		if cores := allowed.CoresOnNode(s.topo, t.spawnHint); len(cores) > 0 {
			best, bestLen := cores[0], s.queues[cores[0]].Len()
			for _, c := range cores[1:] {
				if l := s.queues[c].Len(); l < bestLen {
					best, bestLen = c, l
				}
			}
			return best
		}
	}
	// Node with the least queued threads among allowed cores first.
	bestNode, bestNodeLoad := numa.NodeID(-1), 1<<30
	for n := 0; n < s.topo.NodeCount; n++ {
		cores := allowed.CoresOnNode(s.topo, numa.NodeID(n))
		if len(cores) == 0 {
			continue
		}
		load := 0
		for _, c := range cores {
			load += s.queues[c].Len()
		}
		// Normalize by core count so a node with more allowed cores is
		// not penalized for its capacity.
		norm := load * 16 / len(cores)
		if norm < bestNodeLoad {
			bestNodeLoad, bestNode = norm, numa.NodeID(n)
		}
	}
	best, bestLen := numa.CoreID(-1), 1<<30
	for _, c := range allowed.CoresOnNode(s.topo, bestNode) {
		if l := s.queues[c].Len(); l < bestLen {
			best, bestLen = c, l
		}
	}
	return best
}

// blockThread registers a thread that just entered the Blocked state,
// keeping its PID's set TID-sorted: O(1) at either end, shift-the-shorter-
// side in the middle.
func (s *Scheduler) blockThread(t *Thread) {
	bs := s.blocked[t.PID]
	if bs == nil {
		bs = &blockedSet{}
		s.blocked[t.PID] = bs
	}
	n := bs.items.Len()
	switch {
	case n == 0 || bs.items.At(n-1).ID < t.ID:
		bs.items.PushBack(t)
	case t.ID < bs.items.At(0).ID:
		bs.items.PushFront(t)
	default:
		bs.items.InsertAt(searchBlocked(&bs.items, t.ID), t)
	}
}

// searchBlocked returns the insertion slot for id in the TID-sorted set
// (a closure-free sort.Search).
func searchBlocked(items *deque.Deque[*Thread], id TID) int {
	lo, hi := 0, items.Len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if items.At(mid).ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// unblockThread removes a thread from its PID's blocked set. Absence is
// tolerated: a WakeAll drain detaches the set before waking its members.
func (s *Scheduler) unblockThread(t *Thread) {
	bs := s.blocked[t.PID]
	if bs == nil || bs.items.Len() == 0 {
		return
	}
	i := searchBlocked(&bs.items, t.ID)
	if i < bs.items.Len() && bs.items.At(i) == t {
		bs.items.RemoveAt(i)
	}
}

// Wake moves a Blocked thread back onto a run queue. The kernel prefers
// the thread's previous core whenever it is still allowed (the
// wake-affinity heuristic: wake-ups chase cache residency, and the
// periodic balancer repairs the resulting imbalance by stealing).
func (s *Scheduler) Wake(t *Thread) {
	if t.state != Blocked {
		return
	}
	s.unblockThread(t)
	allowed := s.allowedSet(t)
	target := t.core
	if !allowed.Contains(target) {
		target = s.placementCore(t)
	}
	if target != t.core {
		s.recordMigration(t, target)
	}
	t.state = Runnable
	// Wakeup preemption: a thread that slept goes to the head of the
	// queue (CFS credits sleepers with low vruntime), so short-running
	// coordinator threads are not starved behind CPU-bound workers.
	if s.cfg.Naive {
		// The seed implementation front-inserted with
		// append([]*Thread{t}, queue...): a fresh backing array and a
		// full copy per wake-up. Rebuild the queue the same way, then
		// account the single logical insertion.
		q := &s.queues[target]
		rebuilt := make([]*Thread, 0, q.Len()+1)
		rebuilt = append(rebuilt, t)
		for i := 0; i < q.Len(); i++ {
			rebuilt = append(rebuilt, q.At(i))
		}
		q.Clear()
		for _, th := range rebuilt {
			q.PushBack(th)
		}
		s.queued++
		if q.Len() == 2 {
			s.surplus++
		}
		return
	}
	s.pushFront(target, t)
}

// WakeAll wakes every Blocked thread owned by pid (a task queue became
// non-empty), in ascending TID order.
func (s *Scheduler) WakeAll(pid int) {
	if s.cfg.Naive {
		// Original path: scan the global thread table and sort.
		ids := make([]TID, 0)
		for id, t := range s.threads {
			if t.PID == pid && t.state == Blocked {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			s.Wake(s.threads[id])
		}
		return
	}
	bs := s.blocked[pid]
	if bs == nil || bs.items.Len() == 0 {
		return
	}
	n := bs.items.Len()
	// Drain into the reusable scratch batch first: each Wake's
	// unblockThread then sees an empty set instead of mutating the
	// collection we iterate.
	batch := bs.scratch[:0]
	for i := 0; i < n; i++ {
		batch = append(batch, bs.items.At(i))
	}
	bs.items.Clear()
	for _, t := range batch {
		s.Wake(t)
	}
	for i := range batch {
		batch[i] = nil
	}
	bs.scratch = batch[:0]
}

// recordMigration updates counters and fires the trace hook for a thread
// moving to a different core.
func (s *Scheduler) recordMigration(t *Thread, to numa.CoreID) {
	from := t.core
	s.stats.Migrations++
	if s.topo.NodeOf(from) != s.topo.NodeOf(to) {
		s.stats.CrossNodeMigrations++
	}
	if s.bus != nil {
		s.bus.Publish(obs.Event{
			Kind: obs.KindMigration,
			Now:  s.machine.Now(),
			TID:  int64(t.ID),
			Core: int32(to),
			From: int32(from),
		})
	}
	t.core = to
}

// reconcileGroup re-places every queued thread of the group whose core left
// the cpuset (the cgroup cpuset write path).
func (s *Scheduler) reconcileGroup(g *CGroup) {
	var displaced []*Thread
	for core := range s.queues {
		displaced = displaced[:0]
		for i := 0; i < s.queues[core].Len(); {
			t := s.queues[core].At(i)
			if g.pids[t.PID] && !s.allowedSet(t).Contains(numa.CoreID(core)) {
				s.removeAt(numa.CoreID(core), i)
				displaced = append(displaced, t)
				continue
			}
			i++
		}
		for _, t := range displaced {
			target := s.placementCore(t)
			s.recordMigration(t, target)
			s.pushBack(target, t)
		}
	}
}

// Tick advances the simulation by one quantum: every core with work runs
// the head of its queue (work-conserving within the quantum across its own
// queue), the machine's virtual clock moves forward, and periodically the
// load balancer evens out queue lengths by stealing threads.
//
// The default path is event-driven: cores whose queue is empty while no
// queue anywhere holds a steal candidate are charged their idle quantum in
// bulk instead of walking the steal scan. Config.Naive restores the
// original walk-everything loop; both produce bit-identical results.
func (s *Scheduler) Tick() {
	s.tick++
	s.stats.TicksRun++
	start := s.machine.Now()
	// Advance the clock first: anything that completes inside this
	// quantum is stamped at the quantum's end, never before its start.
	s.machine.AdvanceTime(s.cfg.Quantum)
	if s.cfg.Naive {
		for core := 0; core < s.topo.TotalCores(); core++ {
			s.runCore(numa.CoreID(core), start)
		}
	} else {
		for core := 0; core < s.topo.TotalCores(); core++ {
			c := numa.CoreID(core)
			// An idle core can only acquire work this quantum by
			// stealing, and stealing needs some queue with >= 2
			// threads. Without one, the whole quantum is idle —
			// exactly what runCore would conclude after scanning.
			if s.queues[c].Len() == 0 && s.surplus == 0 {
				s.machine.ChargeIdle(c, s.cfg.Quantum)
				continue
			}
			s.runCore(c, start)
		}
	}
	if s.tick%s.cfg.BalancePeriod == 0 {
		s.balance()
	}
}

// sliceCtx prepares the ExecContext for one run slice. The fast path
// reuses a per-core scratch value; the naive path reproduces the original
// per-slice allocation.
func (s *Scheduler) sliceCtx(core numa.CoreID, t *Thread) *ExecContext {
	if s.cfg.Naive {
		return &ExecContext{Machine: s.machine, Core: core, PID: t.PID, TID: t.ID}
	}
	ctx := &s.execCtx[core]
	ctx.Machine, ctx.Core, ctx.PID, ctx.TID = s.machine, core, t.PID, t.ID
	return ctx
}

// runCore executes up to one quantum of work on a core, rotating through
// its queue if threads block or finish early.
//
// A per-core slowdown factor (SetCoreSlowdown) divides the budget handed
// to the runner and multiplies the wall cycles charged back: the runner
// retires used work-cycles while the clock sees used*factor. The factor
// logic is identical on the fast and naive paths, so injected faults
// preserve the bit-identity contract.
func (s *Scheduler) runCore(core numa.CoreID, start uint64) {
	if s.queues[core].Len() == 0 {
		// Idle balancing: an idling CPU immediately tries to pull work
		// from the busiest queue (Linux idle_balance), trading cache
		// affinity for utilization — the stolen tasks of Fig 13 (d).
		s.idleSteal(core)
	}
	factor := uint64(1)
	if s.slow != nil {
		factor = s.slow[core]
	}
	budget := s.cfg.Quantum
	guard := s.queues[core].Len() + 1 // at most one attempt per queued thread
	for budget > 0 && guard > 0 {
		guard--
		if s.queues[core].Len() == 0 {
			break
		}
		avail := budget
		if factor > 1 {
			// A frozen (or too-slow-to-progress) core keeps its queue
			// intact and idles the rest of the quantum away.
			if avail = budget / factor; avail == 0 {
				break
			}
		}
		t := s.popFront(core)
		if t.state == Done {
			continue
		}
		t.state = Running
		ctx := s.sliceCtx(core, t)
		used, blocked, done := t.runner.Run(ctx, avail)
		if used > avail {
			used = avail
		}
		wall := used * factor // factor <= budget here, so no overflow
		if used > 0 {
			s.machine.ChargeBusy(core, wall)
			if s.bus != nil {
				sliceStart := start + (s.cfg.Quantum - budget)
				s.bus.Publish(obs.Event{
					Kind:  obs.KindRunSlice,
					Now:   sliceStart + wall,
					TID:   int64(t.ID),
					Core:  int32(core),
					Start: sliceStart,
					Dur:   wall,
					Label: t.Name,
				})
			}
		}
		budget -= wall
		switch {
		case done:
			t.state = Done
			t.exited = s.machine.Now() + (s.cfg.Quantum - budget)
			delete(s.threads, t.ID)
		case blocked:
			t.state = Blocked
			s.blockThread(t)
		default:
			t.state = Runnable
			s.pushBack(core, t)
			if used == 0 {
				// A runnable thread that made no progress would spin the
				// core loop forever; treat the rest of the quantum as its
				// slice.
				budget = 0
			}
		}
	}
	if budget > 0 {
		s.machine.ChargeIdle(core, budget)
	}
}

// idleSteal pulls one thread allowed on the idle core from the busiest
// queue with at least two runnable threads.
func (s *Scheduler) idleSteal(core numa.CoreID) {
	busiest, busiestLen := numa.CoreID(-1), 1
	for c := range s.queues {
		if l := s.queues[c].Len(); l > busiestLen {
			busiest, busiestLen = numa.CoreID(c), l
		}
	}
	if busiest < 0 {
		return
	}
	for i := 0; i < s.queues[busiest].Len(); i++ {
		t := s.queues[busiest].At(i)
		if !s.allowedSet(t).Contains(core) {
			continue
		}
		s.removeAt(busiest, i)
		s.stats.StolenTasks++
		if s.topo.NodeOf(busiest) != s.topo.NodeOf(core) {
			s.machine.DropCoreAffinity(core)
		}
		s.recordMigration(t, core)
		s.pushBack(core, t)
		return
	}
}

// balance is the periodic load balancer: it repeatedly moves one thread
// from the busiest queue to the idlest allowed queue while the imbalance
// exceeds the threshold. Every move is a stolen task; moves across nodes
// lose cache affinity (the machine drops the thread's private cache).
func (s *Scheduler) balance() {
	for moved := 0; moved < s.topo.TotalCores(); moved++ {
		busiest, idlest := numa.CoreID(-1), numa.CoreID(-1)
		busiestLen, idlestLen := -1, 1<<30
		for core := range s.queues {
			l := s.queues[core].Len()
			if l > busiestLen {
				busiestLen, busiest = l, numa.CoreID(core)
			}
		}
		if busiestLen < s.cfg.BalanceThreshold {
			return
		}
		// Find a thread on the busiest queue and the best core it may move
		// to.
		var steal *Thread
		stealIdx := -1
		for i := 0; i < s.queues[busiest].Len(); i++ {
			t := s.queues[busiest].At(i)
			allowed := s.allowedSet(t)
			for core := range s.queues {
				c := numa.CoreID(core)
				if c == busiest || !allowed.Contains(c) {
					continue
				}
				if l := s.queues[core].Len(); l < idlestLen {
					idlestLen, idlest = l, c
					steal, stealIdx = t, i
				}
			}
			if steal != nil {
				break
			}
		}
		if steal == nil || busiestLen-idlestLen < s.cfg.BalanceThreshold {
			return
		}
		s.removeAt(busiest, stealIdx)
		s.stats.StolenTasks++
		if s.topo.NodeOf(busiest) != s.topo.NodeOf(idlest) {
			s.machine.DropCoreAffinity(idlest)
		}
		s.recordMigration(steal, idlest)
		s.pushBack(idlest, steal)
	}
}

// RunUntil ticks the scheduler until the predicate returns true or the
// cycle limit is reached, returning whether the predicate was satisfied.
//
// When no thread is runnable anywhere, a tick can change nothing but the
// clock and the idle counters — no runner executes, so no thread can wake,
// spawn or finish. The fast path therefore skips such stretches in one
// bulk step (charging the skipped idle cycles and replicating the
// congestion-window cadence exactly). The predicate must be a pure
// observation of simulation state: no side effects (driving a control
// loop inside a predicate would be skipped with the stretch — use an
// explicit Tick loop for that, as fig16 does) and no direct dependence on
// virtual time. Every in-tree predicate satisfies this.
func (s *Scheduler) RunUntil(pred func() bool, maxCycles uint64) bool {
	deadline := s.machine.Now() + maxCycles
	for !pred() {
		if s.machine.Now() >= deadline {
			return false
		}
		if !s.cfg.Naive && s.queued == 0 {
			remaining := deadline - s.machine.Now()
			n := remaining / s.cfg.Quantum
			if remaining%s.cfg.Quantum != 0 {
				n++
			}
			s.skipIdleTicks(n)
			continue
		}
		s.Tick()
	}
	return true
}

// skipIdleTicks advances the simulation by n fully idle quanta in bulk,
// producing exactly the state n naive Ticks with empty queues would: the
// same TicksRun, tick parity (balance is a no-op on empty queues), idle
// charges and congestion-factor evolution.
func (s *Scheduler) skipIdleTicks(n uint64) {
	if n == 0 {
		return
	}
	s.tick += int(n)
	s.stats.TicksRun += n
	s.machine.AdvanceTimeIdle(s.cfg.Quantum, n)
	idle := n * s.cfg.Quantum
	for core := 0; core < s.topo.TotalCores(); core++ {
		s.machine.ChargeIdle(numa.CoreID(core), idle)
	}
}

// QueueLengths returns the current run-queue length per core (diagnostics
// and tests).
func (s *Scheduler) QueueLengths() []int {
	out := make([]int, len(s.queues))
	for i := range s.queues {
		out[i] = s.queues[i].Len()
	}
	return out
}

// LiveThreads returns the number of threads not yet Done.
func (s *Scheduler) LiveThreads() int { return len(s.threads) }
