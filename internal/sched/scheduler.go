package sched

import (
	"fmt"
	"sort"

	"elasticore/internal/numa"
)

// Config tunes the scheduler model.
type Config struct {
	// Quantum is the scheduling time slice in cycles. Zero selects 1 ms at
	// the machine's clock.
	Quantum uint64
	// BalancePeriod is how many ticks pass between load-balancing passes.
	// Zero selects 4.
	BalancePeriod int
	// BalanceThreshold is the queue-length imbalance (busiest minus
	// idlest) that triggers a steal. Zero selects 2.
	BalanceThreshold int
}

// Stats are the scheduler's own cumulative counters, complementing the
// machine's hardware counters.
type Stats struct {
	// Spawned counts threads ever created.
	Spawned uint64
	// StolenTasks counts threads moved by the load balancer (Fig 13 (d)).
	StolenTasks uint64
	// Migrations counts every reassignment of a thread to a different
	// core, whatever the cause (balancing, cpuset shrink, wake-up move).
	Migrations uint64
	// CrossNodeMigrations counts the subset of migrations that changed
	// NUMA node, losing all cache affinity.
	CrossNodeMigrations uint64
	// TicksRun counts scheduler quanta executed.
	TicksRun uint64
}

// MigrationEvent describes one thread reassignment, feeding the lifespan /
// migration plots (paper Figures 5 and 16).
type MigrationEvent struct {
	TID      TID
	From, To numa.CoreID
	Now      uint64 // cycles
}

// RunSlice describes one executed slice of a thread on a core, feeding the
// tomograph-style traces (paper Figure 6).
type RunSlice struct {
	TID    TID
	Core   numa.CoreID
	Start  uint64 // cycles
	Cycles uint64
}

// Scheduler is the OS CPU scheduler model.
type Scheduler struct {
	machine *numa.Machine
	topo    *numa.Topology
	cfg     Config

	queues  [][]*Thread // per-core FIFO run queues
	threads map[TID]*Thread
	nextTID TID

	groups   map[string]*CGroup
	pidGroup map[int]*CGroup
	rootSet  CPUSet

	stats Stats
	tick  int

	// OnMigrate, if set, observes every thread reassignment.
	OnMigrate func(MigrationEvent)
	// OnRunSlice, if set, observes every executed slice.
	OnRunSlice func(RunSlice)
}

// New creates a scheduler over the machine with the given configuration.
func New(m *numa.Machine, cfg Config) *Scheduler {
	topo := m.Topology()
	if cfg.Quantum == 0 {
		cfg.Quantum = topo.SecondsToCycles(1e-3)
	}
	if cfg.BalancePeriod == 0 {
		cfg.BalancePeriod = 4
	}
	if cfg.BalanceThreshold == 0 {
		cfg.BalanceThreshold = 2
	}
	return &Scheduler{
		machine:  m,
		topo:     topo,
		cfg:      cfg,
		queues:   make([][]*Thread, topo.TotalCores()),
		threads:  make(map[TID]*Thread),
		nextTID:  1,
		groups:   make(map[string]*CGroup),
		pidGroup: make(map[int]*CGroup),
		rootSet:  FullSet(topo),
	}
}

// Machine returns the underlying hardware model.
func (s *Scheduler) Machine() *numa.Machine { return s.machine }

// Stats returns a copy of the scheduler counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Quantum returns the time slice in cycles.
func (s *Scheduler) Quantum() uint64 { return s.cfg.Quantum }

// NewCGroup creates an empty control group whose cpuset is initially the
// full machine.
func (s *Scheduler) NewCGroup(name string) *CGroup {
	if _, dup := s.groups[name]; dup {
		panic(fmt.Sprintf("sched: duplicate cgroup %q", name))
	}
	g := &CGroup{name: name, pids: make(map[int]bool), cpus: s.rootSet, sched: s}
	s.groups[name] = g
	return g
}

// allowedSet computes where a thread may run: its cgroup cpuset intersected
// with any hard pin. An empty intersection falls back to the pin (the
// kernel refuses to starve a pinned thread).
func (s *Scheduler) allowedSet(t *Thread) CPUSet {
	set := s.rootSet
	if g, ok := s.pidGroup[t.PID]; ok {
		set = g.cpus
	}
	if !t.pinned.IsEmpty() {
		if inter := set.Intersect(t.pinned); !inter.IsEmpty() {
			return inter
		}
		return t.pinned
	}
	return set
}

// SpawnOption configures thread creation.
type SpawnOption func(*Thread)

// Pinned gives the thread a hard affinity mask
// (pthread_setaffinity_np-style).
func Pinned(set CPUSet) SpawnOption {
	return func(t *Thread) { t.pinned = set }
}

// NearNode hints the initial placement toward the given node, modelling
// fork-local placement: a child thread starts in its parent's scheduling
// domain, and only the load balancer later spreads it (stealing). It is a
// hint, not an affinity — ignored when the node has no allowed core.
func NearNode(n numa.NodeID) SpawnOption {
	return func(t *Thread) { t.spawnHint = n }
}

// Spawn creates a thread owned by pid running the given work and places it
// following the kernel's spreading policy: the least-loaded allowed core,
// preferring nodes with the least total load, so new threads land far
// apart (Section II-A: "the OS scheduler attempts to leave them on remote
// nodes balancing thus the CPU load").
func (s *Scheduler) Spawn(pid int, name string, r Runner, opts ...SpawnOption) *Thread {
	t := &Thread{
		ID:        s.nextTID,
		PID:       pid,
		Name:      name,
		runner:    r,
		state:     Runnable,
		spawned:   s.machine.Now(),
		spawnHint: numa.NoNode,
	}
	s.nextTID++
	for _, opt := range opts {
		opt(t)
	}
	t.core = s.placementCore(t)
	s.queues[t.core] = append(s.queues[t.core], t)
	s.threads[t.ID] = t
	s.stats.Spawned++
	return t
}

// placementCore picks the spawn/wake core for a thread.
func (s *Scheduler) placementCore(t *Thread) numa.CoreID {
	allowed := s.allowedSet(t)
	if t.spawnHint != numa.NoNode {
		// Fork-local placement: least-loaded allowed core on the hinted
		// node; spreading is the balancer's job, not placement's.
		if cores := allowed.CoresOnNode(s.topo, t.spawnHint); len(cores) > 0 {
			best, bestLen := cores[0], len(s.queues[cores[0]])
			for _, c := range cores[1:] {
				if l := len(s.queues[c]); l < bestLen {
					best, bestLen = c, l
				}
			}
			return best
		}
	}
	// Node with the least queued threads among allowed cores first.
	bestNode, bestNodeLoad := numa.NodeID(-1), 1<<30
	for n := 0; n < s.topo.NodeCount; n++ {
		cores := allowed.CoresOnNode(s.topo, numa.NodeID(n))
		if len(cores) == 0 {
			continue
		}
		load := 0
		for _, c := range cores {
			load += len(s.queues[c])
		}
		// Normalize by core count so a node with more allowed cores is
		// not penalized for its capacity.
		norm := load * 16 / len(cores)
		if norm < bestNodeLoad {
			bestNodeLoad, bestNode = norm, numa.NodeID(n)
		}
	}
	best, bestLen := numa.CoreID(-1), 1<<30
	for _, c := range allowed.CoresOnNode(s.topo, bestNode) {
		if l := len(s.queues[c]); l < bestLen {
			best, bestLen = c, l
		}
	}
	return best
}

// Wake moves a Blocked thread back onto a run queue. The kernel prefers
// the thread's previous core whenever it is still allowed (the
// wake-affinity heuristic: wake-ups chase cache residency, and the
// periodic balancer repairs the resulting imbalance by stealing).
func (s *Scheduler) Wake(t *Thread) {
	if t.state != Blocked {
		return
	}
	allowed := s.allowedSet(t)
	target := t.core
	if !allowed.Contains(target) {
		target = s.placementCore(t)
	}
	if target != t.core {
		s.recordMigration(t, target)
	}
	t.state = Runnable
	// Wakeup preemption: a thread that slept goes to the head of the
	// queue (CFS credits sleepers with low vruntime), so short-running
	// coordinator threads are not starved behind CPU-bound workers.
	s.queues[target] = append([]*Thread{t}, s.queues[target]...)
}

// WakeAll wakes every Blocked thread owned by pid (a task queue became
// non-empty).
func (s *Scheduler) WakeAll(pid int) {
	ids := make([]TID, 0)
	for id, t := range s.threads {
		if t.PID == pid && t.state == Blocked {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s.Wake(s.threads[id])
	}
}

// recordMigration updates counters and fires the trace hook for a thread
// moving to a different core.
func (s *Scheduler) recordMigration(t *Thread, to numa.CoreID) {
	from := t.core
	s.stats.Migrations++
	if s.topo.NodeOf(from) != s.topo.NodeOf(to) {
		s.stats.CrossNodeMigrations++
	}
	if s.OnMigrate != nil {
		s.OnMigrate(MigrationEvent{TID: t.ID, From: from, To: to, Now: s.machine.Now()})
	}
	t.core = to
}

// reconcileGroup re-places every queued thread of the group whose core left
// the cpuset (the cgroup cpuset write path).
func (s *Scheduler) reconcileGroup(g *CGroup) {
	for core := range s.queues {
		q := s.queues[core]
		kept := q[:0]
		var displaced []*Thread
		for _, t := range q {
			if g.pids[t.PID] && !s.allowedSet(t).Contains(numa.CoreID(core)) {
				displaced = append(displaced, t)
				continue
			}
			kept = append(kept, t)
		}
		s.queues[core] = kept
		for _, t := range displaced {
			target := s.placementCore(t)
			s.recordMigration(t, target)
			s.queues[target] = append(s.queues[target], t)
		}
	}
}

// Tick advances the simulation by one quantum: every core runs the head of
// its queue (work-conserving within the quantum across its own queue), the
// machine's virtual clock moves forward, and periodically the load balancer
// evens out queue lengths by stealing threads.
func (s *Scheduler) Tick() {
	s.tick++
	s.stats.TicksRun++
	start := s.machine.Now()
	// Advance the clock first: anything that completes inside this
	// quantum is stamped at the quantum's end, never before its start.
	s.machine.AdvanceTime(s.cfg.Quantum)
	for core := 0; core < s.topo.TotalCores(); core++ {
		s.runCore(numa.CoreID(core), start)
	}
	if s.tick%s.cfg.BalancePeriod == 0 {
		s.balance()
	}
}

// runCore executes up to one quantum of work on a core, rotating through
// its queue if threads block or finish early.
func (s *Scheduler) runCore(core numa.CoreID, start uint64) {
	if len(s.queues[core]) == 0 {
		// Idle balancing: an idling CPU immediately tries to pull work
		// from the busiest queue (Linux idle_balance), trading cache
		// affinity for utilization — the stolen tasks of Fig 13 (d).
		s.idleSteal(core)
	}
	budget := s.cfg.Quantum
	guard := len(s.queues[core]) + 1 // at most one attempt per queued thread
	for budget > 0 && guard > 0 {
		guard--
		q := s.queues[core]
		if len(q) == 0 {
			break
		}
		t := q[0]
		s.queues[core] = q[1:]
		if t.state == Done {
			continue
		}
		t.state = Running
		ctx := &ExecContext{Machine: s.machine, Core: core, PID: t.PID, TID: t.ID}
		used, blocked, done := t.runner.Run(ctx, budget)
		if used > budget {
			used = budget
		}
		if used > 0 {
			s.machine.ChargeBusy(core, used)
			if s.OnRunSlice != nil {
				s.OnRunSlice(RunSlice{TID: t.ID, Core: core, Start: start + (s.cfg.Quantum - budget), Cycles: used})
			}
		}
		budget -= used
		switch {
		case done:
			t.state = Done
			t.exited = s.machine.Now() + (s.cfg.Quantum - budget)
			delete(s.threads, t.ID)
		case blocked:
			t.state = Blocked
		default:
			t.state = Runnable
			s.queues[core] = append(s.queues[core], t)
			if used == 0 {
				// A runnable thread that made no progress would spin the
				// core loop forever; treat the rest of the quantum as its
				// slice.
				budget = 0
			}
		}
	}
	if budget > 0 {
		s.machine.ChargeIdle(core, budget)
	}
}

// idleSteal pulls one thread allowed on the idle core from the busiest
// queue with at least two runnable threads.
func (s *Scheduler) idleSteal(core numa.CoreID) {
	busiest, busiestLen := numa.CoreID(-1), 1
	for c := range s.queues {
		if l := len(s.queues[c]); l > busiestLen {
			busiest, busiestLen = numa.CoreID(c), l
		}
	}
	if busiest < 0 {
		return
	}
	for i, t := range s.queues[busiest] {
		if !s.allowedSet(t).Contains(core) {
			continue
		}
		s.queues[busiest] = append(s.queues[busiest][:i], s.queues[busiest][i+1:]...)
		s.stats.StolenTasks++
		if s.topo.NodeOf(busiest) != s.topo.NodeOf(core) {
			s.machine.DropCoreAffinity(core)
		}
		s.recordMigration(t, core)
		s.queues[core] = append(s.queues[core], t)
		return
	}
}

// balance is the periodic load balancer: it repeatedly moves one thread
// from the busiest queue to the idlest allowed queue while the imbalance
// exceeds the threshold. Every move is a stolen task; moves across nodes
// lose cache affinity (the machine drops the thread's private cache).
func (s *Scheduler) balance() {
	for moved := 0; moved < s.topo.TotalCores(); moved++ {
		busiest, idlest := numa.CoreID(-1), numa.CoreID(-1)
		busiestLen, idlestLen := -1, 1<<30
		for core := range s.queues {
			l := len(s.queues[core])
			if l > busiestLen {
				busiestLen, busiest = l, numa.CoreID(core)
			}
		}
		if busiestLen < s.cfg.BalanceThreshold {
			return
		}
		// Find a thread on the busiest queue and the best core it may move
		// to.
		var steal *Thread
		stealIdx := -1
		for i, t := range s.queues[busiest] {
			allowed := s.allowedSet(t)
			for core := range s.queues {
				c := numa.CoreID(core)
				if c == busiest || !allowed.Contains(c) {
					continue
				}
				if l := len(s.queues[core]); l < idlestLen {
					idlestLen, idlest = l, c
					steal, stealIdx = t, i
				}
			}
			if steal != nil {
				break
			}
		}
		if steal == nil || busiestLen-idlestLen < s.cfg.BalanceThreshold {
			return
		}
		s.queues[busiest] = append(s.queues[busiest][:stealIdx], s.queues[busiest][stealIdx+1:]...)
		s.stats.StolenTasks++
		if s.topo.NodeOf(busiest) != s.topo.NodeOf(idlest) {
			s.machine.DropCoreAffinity(idlest)
		}
		s.recordMigration(steal, idlest)
		s.queues[idlest] = append(s.queues[idlest], steal)
	}
}

// RunUntil ticks the scheduler until the predicate returns true or the
// cycle limit is reached, returning whether the predicate was satisfied.
func (s *Scheduler) RunUntil(pred func() bool, maxCycles uint64) bool {
	deadline := s.machine.Now() + maxCycles
	for !pred() {
		if s.machine.Now() >= deadline {
			return false
		}
		s.Tick()
	}
	return true
}

// QueueLengths returns the current run-queue length per core (diagnostics
// and tests).
func (s *Scheduler) QueueLengths() []int {
	out := make([]int, len(s.queues))
	for i, q := range s.queues {
		out[i] = len(q)
	}
	return out
}

// LiveThreads returns the number of threads not yet Done.
func (s *Scheduler) LiveThreads() int { return len(s.threads) }
