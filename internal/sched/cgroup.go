package sched

import (
	"fmt"
	"sort"
)

// CGroup models the Linux control-group facility the paper's prototype uses
// "to isolate the threads of the DBMS, and their future children, into
// specific hierarchical groups" (Section IV-A): a named set of PIDs bound
// to a cpuset that limits where their threads may run.
type CGroup struct {
	name string
	pids map[int]bool
	cpus CPUSet

	sched *Scheduler
}

// Name returns the group name.
func (g *CGroup) Name() string { return g.name }

// CPUs returns the group's current cpuset.
func (g *CGroup) CPUs() CPUSet { return g.cpus }

// PIDs returns the member process IDs in ascending order.
func (g *CGroup) PIDs() []int {
	out := make([]int, 0, len(g.pids))
	for pid := range g.pids {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// AddPID places a process (and its future threads) under the group.
func (g *CGroup) AddPID(pid int) {
	g.pids[pid] = true
	g.sched.pidGroup[pid] = g
	g.sched.reconcileGroup(g)
}

// SetCPUs replaces the group's cpuset. Threads currently queued on cores
// outside the new set are migrated immediately, exactly like writing a new
// mask to cpuset.cpus.
func (g *CGroup) SetCPUs(s CPUSet) {
	if s.IsEmpty() {
		panic(fmt.Sprintf("sched: cgroup %q cpuset cannot be empty", g.name))
	}
	g.cpus = s
	g.sched.reconcileGroup(g)
}
