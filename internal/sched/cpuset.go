// Package sched is a deterministic model of the operating-system scheduler
// the paper's mechanism steers: per-core run queues, the node-local
// placement policy, periodic load balancing with task stealing and thread
// migration, and the cgroup/cpuset facility through which the elastic
// mechanism hands the OS only a subset of cores (Section III, Figure 1).
//
// The simulation is time-stepped: virtual time advances in fixed scheduler
// quanta; each quantum every allowed core runs the thread at the head of
// its queue, charging cycles and memory accesses to the numa.Machine.
package sched

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"elasticore/internal/numa"
)

// CPUSet is a bitmask of cores, the unit the mechanism hands to the OS
// ("only the black boxes can be accessed by the OS", Figure 12). The zero
// value is the empty set. Machines up to 64 cores are supported.
type CPUSet uint64

// NewCPUSet returns a set containing the given cores.
func NewCPUSet(cores ...numa.CoreID) CPUSet {
	var s CPUSet
	for _, c := range cores {
		s = s.Add(c)
	}
	return s
}

// FullSet returns the set of all cores in the topology.
func FullSet(t *numa.Topology) CPUSet {
	if t.TotalCores() >= 64 {
		panic("sched: CPUSet supports at most 63 cores")
	}
	return CPUSet(1)<<uint(t.TotalCores()) - 1
}

// Add returns the set with core c included.
func (s CPUSet) Add(c numa.CoreID) CPUSet { return s | 1<<uint(c) }

// Remove returns the set with core c excluded.
func (s CPUSet) Remove(c numa.CoreID) CPUSet { return s &^ (1 << uint(c)) }

// Contains reports whether core c is in the set.
func (s CPUSet) Contains(c numa.CoreID) bool { return s&(1<<uint(c)) != 0 }

// Count returns the number of cores in the set.
func (s CPUSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Cores returns the member cores in ascending order.
func (s CPUSet) Cores() []numa.CoreID {
	out := make([]numa.CoreID, 0, s.Count())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, numa.CoreID(bits.TrailingZeros64(v)))
	}
	return out
}

// Intersect returns the intersection of two sets.
func (s CPUSet) Intersect(o CPUSet) CPUSet { return s & o }

// Union returns the union of two sets.
func (s CPUSet) Union(o CPUSet) CPUSet { return s | o }

// IsEmpty reports whether the set has no cores.
func (s CPUSet) IsEmpty() bool { return s == 0 }

// NodesTouched returns the distinct nodes with at least one member core.
func (s CPUSet) NodesTouched(t *numa.Topology) []numa.NodeID {
	seen := make(map[numa.NodeID]bool)
	var out []numa.NodeID
	for _, c := range s.Cores() {
		n := t.NodeOf(c)
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CoresOnNode returns the member cores belonging to node n.
func (s CPUSet) CoresOnNode(t *numa.Topology, n numa.NodeID) []numa.CoreID {
	var out []numa.CoreID
	for _, c := range t.Cores(n) {
		if s.Contains(c) {
			out = append(out, c)
		}
	}
	return out
}

// String renders the set in cpuset-list style, e.g. "0-3,8".
func (s CPUSet) String() string {
	cores := s.Cores()
	if len(cores) == 0 {
		return "(empty)"
	}
	var b strings.Builder
	i := 0
	for i < len(cores) {
		j := i
		for j+1 < len(cores) && cores[j+1] == cores[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if i == j {
			fmt.Fprintf(&b, "%d", cores[i])
		} else {
			fmt.Fprintf(&b, "%d-%d", cores[i], cores[j])
		}
		i = j + 1
	}
	return b.String()
}
