package sched

import (
	"testing"

	"elasticore/internal/numa"
)

// spinWork runs forever, consuming every cycle offered.
type spinWork struct{}

func (spinWork) Run(_ *ExecContext, budget uint64) (uint64, bool, bool) {
	return budget, false, false
}

func TestNearNodeClustersSpawns(t *testing.T) {
	s := newTestSched()
	topo := s.Machine().Topology()
	for i := 0; i < topo.CoresPerNode*2; i++ {
		th := s.Spawn(1, "w", spinWork{}, NearNode(2))
		if got := topo.NodeOf(th.Core()); got != 2 {
			t.Errorf("hinted spawn landed on node %d, want 2", got)
		}
	}
}

func TestNearNodeIgnoredWhenDisallowed(t *testing.T) {
	s := newTestSched()
	g := s.NewCGroup("g")
	g.AddPID(1)
	g.SetCPUs(NewCPUSet(0, 1)) // node 0 only
	th := s.Spawn(1, "w", spinWork{}, NearNode(3))
	if c := th.Core(); c != 0 && c != 1 {
		t.Errorf("spawn landed on core %d outside the cpuset", c)
	}
}

func TestIdleStealSpreadsClusteredThreads(t *testing.T) {
	// Fork-local placement piles threads on one node; within a few ticks
	// idle cores must have stolen work (the Fig 13 (d) behaviour).
	s := newTestSched()
	topo := s.Machine().Topology()
	var threads []*Thread
	for i := 0; i < 12; i++ {
		threads = append(threads, s.Spawn(1, "w", spinWork{}, NearNode(1)))
	}
	for i := 0; i < 6; i++ {
		s.Tick()
	}
	if s.Stats().StolenTasks == 0 {
		t.Fatal("no idle steals despite 12 threads clustered on one node")
	}
	nodes := map[numa.NodeID]bool{}
	for _, th := range threads {
		nodes[topo.NodeOf(th.Core())] = true
	}
	if len(nodes) < 2 {
		t.Errorf("threads still on %d node(s) after balancing", len(nodes))
	}
}

func TestIdleStealRespectsCPUSet(t *testing.T) {
	s := newTestSched()
	g := s.NewCGroup("g")
	g.AddPID(1)
	g.SetCPUs(NewCPUSet(4, 5)) // node 1 only
	for i := 0; i < 8; i++ {
		s.Spawn(1, "w", spinWork{})
	}
	for i := 0; i < 8; i++ {
		s.Tick()
	}
	for id := range s.queues {
		if id == 4 || id == 5 {
			continue
		}
		for i := 0; i < s.queues[id].Len(); i++ {
			if s.queues[id].At(i).PID == 1 {
				t.Fatalf("restricted thread stolen to core %d", id)
			}
		}
	}
}

func TestWakePrefersPreviousCore(t *testing.T) {
	s := newTestSched()
	blockEach := RunnerFunc(func(_ *ExecContext, budget uint64) (uint64, bool, bool) {
		return budget / 4, true, false // work a little, then block
	})
	th := s.Spawn(1, "w", blockEach)
	s.Tick()
	if th.State() != Blocked {
		t.Fatal("thread did not block")
	}
	prev := th.Core()
	// Load up other cores so a placement decision would move it.
	for i := 0; i < 10; i++ {
		s.Spawn(2, "bg", spinWork{})
	}
	s.Wake(th)
	if th.Core() != prev {
		t.Errorf("wake moved thread from %d to %d; wake affinity broken", prev, th.Core())
	}
}

func TestWakePreemptsToQueueHead(t *testing.T) {
	s := newTestSched()
	g := s.NewCGroup("g")
	g.AddPID(1)
	g.SetCPUs(NewCPUSet(0))
	// Fill core 0 with spinners.
	for i := 0; i < 3; i++ {
		s.Spawn(1, "spin", spinWork{})
	}
	blocky := s.Spawn(1, "blocky", RunnerFunc(func(_ *ExecContext, budget uint64) (uint64, bool, bool) {
		return 1, true, false
	}))
	// The queue rotates one full-quantum spinner per tick; blocky reaches
	// the head within a few ticks and then blocks.
	for i := 0; i < 8 && blocky.State() != Blocked; i++ {
		s.Tick()
	}
	if blocky.State() != Blocked {
		t.Fatal("blocky did not block")
	}
	s.Wake(blocky)
	if s.queues[blocky.Core()].At(0) != blocky {
		t.Error("woken thread not at queue head; coordinator threads would starve")
	}
}
