// Package metrics implements the paper's evaluation arithmetic: the
// energy-consumption estimates of Section V-C.3 (Average CPU Power per
// socket plus per-bit HyperTransport transfer energy, after Wang & Lee,
// HotPower'15) and small statistics helpers for the experiment reports.
package metrics

import (
	"math"

	"elasticore/internal/numa"
)

// EnergyModel holds the coefficients of the paper's estimate.
type EnergyModel struct {
	// CPUWattsPerSocket is the processor's Average CPU Power (ACP). The
	// Opteron 8387's ACP is 75 W.
	CPUWattsPerSocket float64
	// HTJoulesPerBit is the interconnect transfer energy per bit.
	HTJoulesPerBit float64
	// IdleFraction is the fraction of ACP drawn by an idle socket (power
	// gating is imperfect); busy time is charged the full ACP.
	IdleFraction float64
}

// DefaultEnergyModel returns the paper-calibrated coefficients.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		CPUWattsPerSocket: 75,
		HTJoulesPerBit:    5e-12,
		IdleFraction:      0.3,
	}
}

// Energy is an estimate split like the paper's Figure 20 bars.
type Energy struct {
	CPUJoules float64
	HTJoules  float64
}

// Total returns CPU + HT joules.
func (e Energy) Total() float64 { return e.CPUJoules + e.HTJoules }

// Estimate computes the energy of a counter window: CPU energy from
// per-socket busy/idle time at ACP, HT energy from transferred bytes.
func (m EnergyModel) Estimate(topo *numa.Topology, w numa.Counters) Energy {
	var e Energy
	perCoreWatts := m.CPUWattsPerSocket / float64(topo.CoresPerNode)
	for _, c := range w.Cores {
		busy := topo.CyclesToSeconds(c.BusyCycles)
		idle := topo.CyclesToSeconds(c.IdleCycles)
		e.CPUJoules += busy*perCoreWatts + idle*perCoreWatts*m.IdleFraction
	}
	e.HTJoules = float64(w.TotalHTBytes()) * 8 * m.HTJoulesPerBit
	return e
}

// Savings returns the relative saving of b versus a in percent
// ((a-b)/a*100); zero when a is zero.
func Savings(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a * 100
}

// GeoMean returns the geometric mean of positive values (the paper
// aggregates per-query savings geometrically). Non-positive inputs are
// skipped.
func GeoMean(vals []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Max returns the maximum (0 for empty input).
func Max(vals []float64) float64 {
	var m float64
	for i, v := range vals {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum (0 for empty input).
func Min(vals []float64) float64 {
	var m float64
	for i, v := range vals {
		if i == 0 || v < m {
			m = v
		}
	}
	return m
}
