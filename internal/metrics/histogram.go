package metrics

import (
	"math"
	"math/bits"
	"sort"
)

// histogram.go implements the latency histogram behind the open-loop
// experiments: log-bucketed (HDR style) so 64-bit cycle counts are
// covered by a fixed array, recording is allocation-free, and two
// histograms merge by bucket addition (per-tenant histograms roll up
// into machine-wide percentiles).

const (
	// histSubBits sets the linear resolution inside each power of two:
	// 2^4 = 16 sub-buckets, bounding the relative quantile error at
	// 1/16 ≈ 6.25%.
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	// histBucketCount covers the full uint64 range: values below
	// histSubCount map exactly, every further octave contributes
	// histSubCount buckets.
	histBucketCount = (64 - histSubBits + 1) * histSubCount
)

// Histogram is a fixed-size log-bucketed value histogram. Values are
// unsigned integers in any unit (the drivers record simulated cycles);
// quantiles come back in the same unit with at most 1/16 relative error,
// clamped to the exactly tracked min and max. The zero value is an empty
// histogram ready for use; Record never allocates.
type Histogram struct {
	counts   [histBucketCount]uint64
	count    uint64
	sum      float64
	min, max uint64
}

// histBucket maps a value to its bucket index: values below histSubCount
// map one-to-one, larger values by (octave, linear sub-bucket).
func histBucket(v uint64) int {
	exp := bits.Len64(v|1) - 1
	if exp < histSubBits {
		return int(v)
	}
	return (exp-histSubBits+1)<<histSubBits | int((v>>(uint(exp)-histSubBits))&(histSubCount-1))
}

// histUpper returns the largest value mapping into bucket i.
func histUpper(i int) uint64 {
	block := i >> histSubBits
	if block == 0 {
		return uint64(i)
	}
	sub := uint64(i & (histSubCount - 1))
	return ((histSubCount + sub + 1) << uint(block-1)) - 1
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.counts[histBucket(v)]++
	h.count++
	h.sum += float64(v)
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-quantile (q in [0, 1]) as the upper bound of the
// bucket holding the rank-⌈q·count⌉ observation, clamped to the exact
// [min, max]. An empty histogram returns 0; a single-sample histogram
// returns that sample exactly.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			v := histUpper(i)
			if v < h.min {
				return h.min
			}
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}

// Quantiles returns the quantile for each q in qs (each in [0, 1]) from
// a single walk over the buckets, agreeing exactly with Quantile per
// entry. Snapshot probes use it so sampling several percentiles does not
// re-scan the bucket array per percentile. The qs need not be sorted; an
// empty histogram returns all zeros.
func (h *Histogram) Quantiles(qs ...float64) []uint64 {
	out := make([]uint64, len(qs))
	if h.count == 0 || len(qs) == 0 {
		return out
	}
	// Rank each quantile, then resolve them in ascending-rank order while
	// cumulating buckets once. idx keeps the caller's order.
	type want struct {
		rank uint64
		pos  int
	}
	wants := make([]want, len(qs))
	for i, q := range qs {
		rank := uint64(math.Ceil(q * float64(h.count)))
		if rank < 1 {
			rank = 1
		}
		if rank > h.count {
			rank = h.count
		}
		wants[i] = want{rank: rank, pos: i}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].rank < wants[j].rank })
	clamp := func(v uint64) uint64 {
		if v < h.min {
			return h.min
		}
		if v > h.max {
			return h.max
		}
		return v
	}
	var cum uint64
	next := 0
	for i := range h.counts {
		cum += h.counts[i]
		for next < len(wants) && cum >= wants[next].rank {
			out[wants[next].pos] = clamp(histUpper(i))
			next++
		}
		if next == len(wants) {
			return out
		}
	}
	for ; next < len(wants); next++ {
		out[wants[next].pos] = h.max
	}
	return out
}

// P50, P90 and P99 are the conventional latency percentiles.
func (h *Histogram) P50() uint64 { return h.Quantile(0.50) }
func (h *Histogram) P90() uint64 { return h.Quantile(0.90) }
func (h *Histogram) P99() uint64 { return h.Quantile(0.99) }

// Merge adds every observation of o into h (bucket-wise, exact).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset empties the histogram in place without allocating.
func (h *Histogram) Reset() {
	h.counts = [histBucketCount]uint64{}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
}
