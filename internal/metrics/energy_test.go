package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"elasticore/internal/numa"
)

func TestEstimateCPUEnergy(t *testing.T) {
	topo := numa.Opteron8387()
	m := DefaultEnergyModel()
	w := numa.Counters{Cores: make([]numa.CoreCounters, topo.TotalCores())}
	// One core busy for one second, everything else idle zero time.
	w.Cores[0].BusyCycles = topo.SecondsToCycles(1)
	e := m.Estimate(topo, w)
	wantCPU := m.CPUWattsPerSocket / float64(topo.CoresPerNode) // 1 s at per-core ACP share
	if math.Abs(e.CPUJoules-wantCPU) > 1e-6 {
		t.Errorf("CPUJoules = %g, want %g", e.CPUJoules, wantCPU)
	}
	if e.HTJoules != 0 {
		t.Errorf("HTJoules = %g, want 0", e.HTJoules)
	}
}

func TestEstimateHTEnergy(t *testing.T) {
	topo := numa.Opteron8387()
	m := DefaultEnergyModel()
	w := numa.Counters{
		Nodes: []numa.NodeCounters{{HTBytesOut: 1e9}},
		Cores: make([]numa.CoreCounters, topo.TotalCores()),
	}
	e := m.Estimate(topo, w)
	want := 1e9 * 8 * m.HTJoulesPerBit
	if math.Abs(e.HTJoules-want) > 1e-9 {
		t.Errorf("HTJoules = %g, want %g", e.HTJoules, want)
	}
}

func TestEnergyMonotoneInTraffic(t *testing.T) {
	topo := numa.Opteron8387()
	m := DefaultEnergyModel()
	f := func(a, b uint32) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		mk := func(bytes uint64) numa.Counters {
			return numa.Counters{
				Nodes: []numa.NodeCounters{{HTBytesOut: bytes}},
				Cores: make([]numa.CoreCounters, topo.TotalCores()),
			}
		}
		return m.Estimate(topo, mk(lo)).HTJoules <= m.Estimate(topo, mk(hi)).HTJoules
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSavings(t *testing.T) {
	if got := Savings(100, 74); math.Abs(got-26) > 1e-9 {
		t.Errorf("Savings(100,74) = %g, want 26", got)
	}
	if got := Savings(0, 5); got != 0 {
		t.Errorf("Savings(0,5) = %g, want 0", got)
	}
	if got := Savings(100, 120); got >= 0 {
		t.Errorf("Savings with regression = %g, want negative", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %g, want 4", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("GeoMean of non-positives = %g, want 0", got)
	}
	// Skips non-positive entries.
	if got := GeoMean([]float64{4, 0}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(4,0) = %g, want 4", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	vals := []float64{3, 1, 2}
	if Mean(vals) != 2 || Min(vals) != 1 || Max(vals) != 3 {
		t.Errorf("Mean/Min/Max = %g/%g/%g", Mean(vals), Min(vals), Max(vals))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-input aggregates not zero")
	}
}

func TestTotal(t *testing.T) {
	e := Energy{CPUJoules: 3, HTJoules: 4}
	if e.Total() != 7 {
		t.Errorf("Total = %g", e.Total())
	}
}
