package metrics

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram not all-zero: count=%d min=%d max=%d mean=%g",
			h.Count(), h.Min(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %d, want 0", q, got)
		}
	}
}

func TestHistogramSingleSampleIsExact(t *testing.T) {
	for _, v := range []uint64{0, 1, 15, 16, 17, 1000, 123456789, 1 << 62} {
		var h Histogram
		h.Record(v)
		for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("single sample %d: Quantile(%g) = %d, want exact", v, q, got)
			}
		}
		if h.Min() != v || h.Max() != v || h.Mean() != float64(v) {
			t.Errorf("single sample %d: min=%d max=%d mean=%g", v, h.Min(), h.Max(), h.Mean())
		}
	}
}

// TestHistogramBucketBoundaries pins the bucketing at the edges of the
// linear region and octave boundaries: exact below histSubCount, and
// bucket-upper rounding (≤ 1/16 relative error) above.
func TestHistogramBucketBoundaries(t *testing.T) {
	// Values below 2*histSubCount map one-to-one: quantiles are exact.
	var h Histogram
	for v := uint64(0); v < 32; v++ {
		h.Record(v)
	}
	if got := h.Quantile(1); got != 31 {
		t.Errorf("linear region Quantile(1) = %d, want 31", got)
	}
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("linear region Quantile(0.5) = %d, want 15", got)
	}

	// 32 and 33 share a bucket whose upper bound is 33; 34 starts the
	// next bucket.
	var b Histogram
	b.Record(32)
	b.Record(34)
	if got := b.Quantile(0.5); got != 33 {
		t.Errorf("boundary Quantile(0.5) = %d, want bucket upper 33", got)
	}
	if got := b.Quantile(1); got != 34 {
		t.Errorf("boundary Quantile(1) = %d, want exact max 34", got)
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	vals := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := uint64(rng.Int63n(1 << 40))
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(q*float64(len(vals))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		exact := float64(vals[rank])
		got := float64(h.Quantile(q))
		if rel := (got - exact) / exact; rel < -1.0/16 || rel > 1.0/16 {
			t.Errorf("Quantile(%g) = %g, exact %g, relative error %g beyond ±1/16", q, got, exact, rel)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for v := uint64(1); v <= 100; v++ {
		if v%2 == 0 {
			a.Record(v * 1000)
		} else {
			b.Record(v * 1000)
		}
		both.Record(v * 1000)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merge: count/min/max = %d/%d/%d, want %d/%d/%d",
			a.Count(), a.Min(), a.Max(), both.Count(), both.Min(), both.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("merge Quantile(%g) = %d, want %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
	// Merging an empty or nil histogram changes nothing.
	before := a.Quantile(0.5)
	var empty Histogram
	a.Merge(&empty)
	a.Merge(nil)
	if a.Quantile(0.5) != before || a.Count() != both.Count() {
		t.Error("merging empty/nil histograms changed state")
	}
}

// TestHistogramMergeCrossMachine is the cluster-tier property: one value
// stream scattered across 16 per-machine histograms (the way the
// Coordinator scatters queries) and rolled up with Merge must agree with
// a single fleet-wide histogram exactly, and with the true sample
// quantiles within the structural ±1/16 relative-error bound — merging
// loses no resolution, however unevenly the stream splits.
func TestHistogramMergeCrossMachine(t *testing.T) {
	const machines = 16
	rng := rand.New(rand.NewSource(77))
	per := make([]Histogram, machines)
	var whole Histogram
	vals := make([]uint64, 0, 30000)
	for i := 0; i < 30000; i++ {
		v := uint64(rng.Int63n(1<<44)) + 1
		// Skewed split: machine m receives ~2x the traffic of machine
		// m+1, like a hot shard — Merge must not care.
		m := 0
		for u := rng.Float64(); u < 0.5 && m < machines-1; u = rng.Float64() {
			m++
		}
		per[m].Record(v)
		whole.Record(v)
		vals = append(vals, v)
	}
	var merged Histogram
	for m := range per {
		merged.Merge(&per[m])
	}
	if merged.Count() != whole.Count() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged count/min/max = %d/%d/%d, want %d/%d/%d",
			merged.Count(), merged.Min(), merged.Max(),
			whole.Count(), whole.Min(), whole.Max())
	}
	// The sums accumulate in different orders, so the means agree only up
	// to float rounding.
	if rel := (merged.Mean() - whole.Mean()) / whole.Mean(); rel < -1e-12 || rel > 1e-12 {
		t.Fatalf("merged mean %g drifted from %g", merged.Mean(), whole.Mean())
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Errorf("merged Quantile(%g) = %d, single histogram says %d",
				q, merged.Quantile(q), whole.Quantile(q))
		}
		rank := int(q*float64(len(vals))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		exact := float64(vals[rank])
		got := float64(merged.Quantile(q))
		if rel := (got - exact) / exact; rel < -1.0/16 || rel > 1.0/16 {
			t.Errorf("merged Quantile(%g) = %g, exact %g, relative error %g beyond ±1/16",
				q, got, exact, rel)
		}
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(12345)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Error("Reset left state behind")
	}
	h.Record(7)
	if h.Quantile(1) != 7 {
		t.Error("histogram unusable after Reset")
	}
}

func TestHistogramRecordDoesNotAllocate(t *testing.T) {
	var h Histogram
	v := uint64(1)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v = v*1664525 + 1013904223
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %v times per call, want 0", allocs)
	}
}

// TestHistogramQuantilesMatchQuantile pins the batch accessor to the
// per-quantile API: for any mix of distributions and any (unsorted,
// duplicated, clamped) quantile list, Quantiles must return exactly what
// Quantile returns per entry — it is the same walk, done once.
func TestHistogramQuantilesMatchQuantile(t *testing.T) {
	distributions := map[string]func(h *Histogram){
		"empty":  func(h *Histogram) {},
		"single": func(h *Histogram) { h.Record(42) },
		"uniform": func(h *Histogram) {
			for v := uint64(1); v <= 5000; v++ {
				h.Record(v)
			}
		},
		"lcg-wide": func(h *Histogram) {
			v := uint64(1)
			for i := 0; i < 4096; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				h.Record(v >> (v % 48))
			}
		},
	}
	qs := []float64{0.99, 0, 0.5, 0.5, 1, 0.9, 0.01, -0.5, 1.5}
	for name, fill := range distributions {
		var h Histogram
		fill(&h)
		got := h.Quantiles(qs...)
		if len(got) != len(qs) {
			t.Fatalf("%s: Quantiles returned %d values for %d inputs", name, len(got), len(qs))
		}
		for i, q := range qs {
			if want := h.Quantile(q); got[i] != want {
				t.Errorf("%s: Quantiles(...)[%d] (q=%g) = %d, want Quantile = %d", name, i, q, got[i], want)
			}
		}
	}
}

// TestHistogramQuantilesEmptyArgs: no quantiles requested, no work done.
func TestHistogramQuantilesEmptyArgs(t *testing.T) {
	var h Histogram
	h.Record(5)
	if got := h.Quantiles(); len(got) != 0 {
		t.Fatalf("Quantiles() = %v, want empty", got)
	}
}
