package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// perfetto.go renders a recorded event window as Chrome trace-event JSON
// (the "JSON Array Format" both chrome://tracing and ui.perfetto.dev
// open). Timestamps are the events' raw simulated-cycle counts — integer,
// deterministic, identical between the fast and naive simulator paths —
// so two runs of the same seed produce byte-identical traces. The viewer
// nominally interprets ts as microseconds; at simulated clock rates one
// "microsecond" on screen is one cycle, which only rescales the axis.
//
// Track layout:
//
//	pid 1 "cores"     one thread track per core: run slices (X) named by
//	                  the running thread, migrations as instants on the
//	                  destination core's track
//	pid 2 "operators" one track per worker thread: operator tasks (X)
//	pid 3 "control"   one track per tenant: PrT transition firings and
//	                  arbiter grants as instants, plus a "cores <tenant>"
//	                  counter (C) tracking the allocation
//	pid 4 "traffic"   admission queue depth and in-flight sessions as
//	                  counters, sheds and query completions as instants
//	pid 10+m "machine m" one lane per fleet machine: coordinator routing
//	                  decisions as instants plus a per-machine queue-depth
//	                  counter, cluster-arbiter rebalances as instants with
//	                  a core-budget counter, retries and failovers on the
//	                  routing lane, and a "faults" lane carrying fault-plan
//	                  transitions and shard re-assignments (heartbeats are
//	                  deliberately not rendered — one instant per beat per
//	                  machine would dwarf every other lane)
//
// Metadata (M) events name exactly the processes and threads that carry
// at least one event, so every declared track is non-empty by
// construction — the property the CI smoke test asserts with jq.

// perfetto process ids, one per track family.
const (
	perfettoPidCores = 1 + iota
	perfettoPidOperators
	perfettoPidControl
	perfettoPidTraffic
)

// perfettoPidMachineBase starts the per-machine pid family: fleet machine
// m renders under pid base+m, leaving the single-machine pids stable.
const perfettoPidMachineBase = 10

// pftEvent builds one trace event. Maps marshal with sorted keys, so the
// output is deterministic; the exporter runs after the simulation, so its
// allocations cannot perturb a hot path.
func pftEvent(ph, name string, pid int, tid, ts int64, fields map[string]any) map[string]any {
	e := map[string]any{"ph": ph, "name": name, "pid": pid, "tid": tid, "ts": ts}
	for k, v := range fields {
		e[k] = v
	}
	return e
}

// tenantLabel names a tenant track; the single-tenant rig publishes "".
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "dbms"
	}
	return tenant
}

// WriteTrace renders the events as Chrome trace-event JSON onto w.
func WriteTrace(w io.Writer, events []Event) error {
	out := make([]map[string]any, 0, len(events)+64)

	type track struct {
		pid  int
		tid  int64
		name string
	}
	tracks := map[[2]int64]track{}
	use := func(pid int, tid int64, name string) {
		key := [2]int64{int64(pid), tid}
		if _, ok := tracks[key]; !ok {
			tracks[key] = track{pid: pid, tid: tid, name: name}
		}
	}
	// Tenant control tracks are numbered in first-seen order — stable
	// because the event stream itself is deterministic.
	tenantTID := map[string]int64{}
	controlTID := func(tenant string) int64 {
		if tid, ok := tenantTID[tenant]; ok {
			return tid
		}
		tid := int64(len(tenantTID))
		tenantTID[tenant] = tid
		return tid
	}

	for _, e := range events {
		switch e.Kind {
		case KindRunSlice:
			name := e.Label
			if name == "" {
				name = fmt.Sprintf("T%d", e.TID)
			}
			use(perfettoPidCores, int64(e.Core), fmt.Sprintf("core %d", e.Core))
			out = append(out, pftEvent("X", name, perfettoPidCores, int64(e.Core), int64(e.Start),
				map[string]any{"dur": e.Dur, "args": map[string]any{"tid": e.TID}}))
		case KindMigration:
			use(perfettoPidCores, int64(e.Core), fmt.Sprintf("core %d", e.Core))
			out = append(out, pftEvent("i", fmt.Sprintf("migrate T%d", e.TID), perfettoPidCores, int64(e.Core), int64(e.Now),
				map[string]any{"s": "t", "args": map[string]any{"from": e.From, "to": e.Core}}))
		case KindTaskDone:
			use(perfettoPidOperators, e.TID, fmt.Sprintf("worker T%d", e.TID))
			args := map[string]any{}
			if e.Tenant != "" {
				args["tenant"] = e.Tenant
			}
			out = append(out, pftEvent("X", e.Label, perfettoPidOperators, e.TID, int64(e.Start),
				map[string]any{"dur": e.Dur, "args": args}))
		case KindTransition:
			label := tenantLabel(e.Tenant)
			tid := controlTID(label)
			use(perfettoPidControl, tid, label)
			out = append(out, pftEvent("i", e.Label, perfettoPidControl, tid, int64(e.Now),
				map[string]any{"s": "t", "args": map[string]any{"u": e.V1, "nalloc": e.V2, "core": e.Core}}))
			out = append(out, pftEvent("C", "cores "+label, perfettoPidControl, tid, int64(e.Now),
				map[string]any{"args": map[string]any{"cores": e.V2}}))
		case KindGrant:
			label := tenantLabel(e.Tenant)
			tid := controlTID(label)
			use(perfettoPidControl, tid, label)
			out = append(out, pftEvent("i", "grant "+label, perfettoPidControl, tid, int64(e.Now),
				map[string]any{"s": "t", "args": map[string]any{"demand": e.V1, "grant": e.V2}}))
			out = append(out, pftEvent("C", "cores "+label, perfettoPidControl, tid, int64(e.Now),
				map[string]any{"args": map[string]any{"cores": e.V2}}))
		case KindAdmit:
			use(perfettoPidTraffic, 0, "admission")
			out = append(out, pftEvent("C", "queue depth", perfettoPidTraffic, 0, int64(e.Now),
				map[string]any{"args": map[string]any{"queued": e.V1, "inflight": e.V2}}))
		case KindShed:
			use(perfettoPidTraffic, 0, "admission")
			out = append(out, pftEvent("i", "shed", perfettoPidTraffic, 0, int64(e.Now),
				map[string]any{"s": "t", "args": map[string]any{"queued": e.V1}}))
		case KindQueryDone:
			use(perfettoPidTraffic, 0, "admission")
			out = append(out, pftEvent("i", "query done", perfettoPidTraffic, 0, int64(e.Now),
				map[string]any{"s": "t", "args": map[string]any{"latency": e.Dur, "service": e.V1}}))
		case KindRoute:
			pid := perfettoPidMachineBase + int(e.Machine)
			use(pid, 0, "routing")
			out = append(out, pftEvent("i", "route "+e.Label, pid, 0, int64(e.Now),
				map[string]any{"s": "t", "args": map[string]any{"shard": e.V2, "queued": e.V1}}))
			out = append(out, pftEvent("C", "queue depth", pid, 0, int64(e.Now),
				map[string]any{"args": map[string]any{"queued": e.V1}}))
		case KindRebalance:
			pid := perfettoPidMachineBase + int(e.Machine)
			use(pid, 1, "rebalance")
			out = append(out, pftEvent("i", "rebalance", pid, 1, int64(e.Now),
				map[string]any{"s": "t", "args": map[string]any{"delta": e.V1, "cores": e.V2, "latency": e.Dur}}))
			out = append(out, pftEvent("C", "core budget", pid, 1, int64(e.Now),
				map[string]any{"args": map[string]any{"cores": e.V2}}))
		case KindFault:
			pid := perfettoPidMachineBase + int(e.Machine)
			use(pid, 2, "faults")
			out = append(out, pftEvent("i", "fault "+e.Label, pid, 2, int64(e.Now),
				map[string]any{"s": "t", "args": map[string]any{"core": e.Core, "v": e.V1, "delay": e.Dur}}))
		case KindRetry:
			pid := perfettoPidMachineBase + int(e.Machine)
			use(pid, 0, "routing")
			out = append(out, pftEvent("i", "retry "+e.Label, pid, 0, int64(e.Now),
				map[string]any{"s": "t", "args": map[string]any{"req": e.V1, "attempt": e.V2}}))
		case KindFailover:
			pid := perfettoPidMachineBase + int(e.Machine)
			use(pid, 0, "routing")
			out = append(out, pftEvent("i", "failover "+e.Label, pid, 0, int64(e.Now),
				map[string]any{"s": "t", "args": map[string]any{"shard": e.V1, "primary": e.V2}}))
		case KindReassign:
			pid := perfettoPidMachineBase + int(e.Machine)
			use(pid, 2, "faults")
			out = append(out, pftEvent("i", "reassign "+e.Label, pid, 2, int64(e.Now),
				map[string]any{"s": "t", "args": map[string]any{"shard": e.V1, "from": e.V2, "transfer": e.Dur}}))
		}
	}

	// Name every used process and thread, in (pid, tid) order.
	keys := make([][2]int64, 0, len(tracks))
	for k := range tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	meta := make([]map[string]any, 0, len(keys)+4)
	seenPid := map[int]bool{}
	pidNames := map[int]string{
		perfettoPidCores:     "cores",
		perfettoPidOperators: "operators",
		perfettoPidControl:   "control",
		perfettoPidTraffic:   "traffic",
	}
	for _, k := range keys {
		t := tracks[k]
		if !seenPid[t.pid] {
			seenPid[t.pid] = true
			name, ok := pidNames[t.pid]
			if !ok {
				name = fmt.Sprintf("machine %d", t.pid-perfettoPidMachineBase)
			}
			meta = append(meta, pftEvent("M", "process_name", t.pid, 0, 0,
				map[string]any{"args": map[string]any{"name": name}}))
		}
		meta = append(meta, pftEvent("M", "thread_name", t.pid, t.tid, 0,
			map[string]any{"args": map[string]any{"name": t.name}}))
	}

	doc := map[string]any{
		"traceEvents":     append(meta, out...),
		"displayTimeUnit": "ns",
		"otherData":       map[string]any{"clock": "simulated-cycles"},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteTrace renders the bus's retained window (see WriteTrace).
func (b *Bus) WriteTrace(w io.Writer) error { return WriteTrace(w, b.Events()) }

// WriteTraceFile renders the events into a file at path.
func WriteTraceFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
