package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// perfettoEvents is a synthetic window covering every kind, the input to
// the schema checks below.
func perfettoEvents() []Event {
	return []Event{
		{Kind: KindRunSlice, Now: 150, TID: 7, Core: 2, Start: 100, Dur: 50, Label: "worker"},
		{Kind: KindMigration, Now: 160, TID: 7, Core: 3, From: 2},
		{Kind: KindTaskDone, Now: 220, TID: 7, Core: -1, Start: 150, Dur: 70, Label: "algebra.subselect", Tenant: "alpha"},
		{Kind: KindTransition, Now: 250, Core: 4, V1: 93, V2: 3, Set: 0b111, Label: "t1-Overload-t5", Tenant: "alpha"},
		{Kind: KindGrant, Now: 260, Core: -1, V1: 4, V2: 3, Set: 0b111, Tenant: "alpha"},
		{Kind: KindAdmit, Now: 300, Core: -1, Dur: 20, V1: 5, V2: 2},
		{Kind: KindShed, Now: 310, Core: -1, V1: 8},
		{Kind: KindQueryDone, Now: 400, Core: -1, Dur: 120, V1: 90},
		{Kind: KindRoute, Now: 410, Core: -1, V1: 3, V2: 5, Label: "keyed", Machine: 1},
		{Kind: KindRebalance, Now: 420, Core: -1, Dur: 5000, V1: 2, V2: 6, Machine: 2},
	}
}

// TestPerfettoMachineLanes: cluster events render on per-machine pids in
// the machine family, and those processes are named "machine N".
func TestPerfettoMachineLanes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, perfettoEvents()); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	names := map[float64]string{} // pid -> process_name
	pids := map[string]float64{}  // event name -> pid
	for _, e := range events {
		pid, _ := e["pid"].(float64)
		name, _ := e["name"].(string)
		if ph, _ := e["ph"].(string); ph == "M" && name == "process_name" {
			args, _ := e["args"].(map[string]any)
			pname, _ := args["name"].(string)
			names[pid] = pname
			continue
		}
		pids[name] = pid
	}
	if got := pids["route keyed"]; got != float64(perfettoPidMachineBase+1) {
		t.Fatalf("route event on pid %v, want %d", got, perfettoPidMachineBase+1)
	}
	if got := pids["rebalance"]; got != float64(perfettoPidMachineBase+2) {
		t.Fatalf("rebalance event on pid %v, want %d", got, perfettoPidMachineBase+2)
	}
	if got := names[float64(perfettoPidMachineBase+1)]; got != "machine 1" {
		t.Fatalf("machine pid named %q, want %q", got, "machine 1")
	}
	if got := names[float64(perfettoPidMachineBase+2)]; got != "machine 2" {
		t.Fatalf("machine pid named %q, want %q", got, "machine 2")
	}
}

// decodeTrace unmarshals exporter output and returns the traceEvents.
func decodeTrace(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	return doc.TraceEvents
}

// TestPerfettoSchema validates the trace-event contract: every event
// carries name/ph/pid/tid/ts, ph is one of the emitted phases, X events
// carry a duration, and every (pid, tid) named by thread_name metadata
// carries at least one real event — the property the CI jq check reruns
// on a live elasticbench trace.
func TestPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, perfettoEvents()); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	if len(events) == 0 {
		t.Fatal("empty traceEvents")
	}
	declared := map[[2]float64]bool{} // thread_name metadata tracks
	carried := map[[2]float64]bool{}  // tracks with >= 1 real event
	phases := map[string]bool{"X": true, "C": true, "i": true, "M": true}
	for i, e := range events {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		if !phases[ph] {
			t.Fatalf("event %d: unknown phase %q", i, ph)
		}
		if name == "" {
			t.Fatalf("event %d: empty name", i)
		}
		for _, field := range []string{"pid", "tid", "ts"} {
			if _, ok := e[field].(float64); !ok {
				t.Fatalf("event %d (%s): missing numeric %s", i, name, field)
			}
		}
		pid, tid := e["pid"].(float64), e["tid"].(float64)
		switch ph {
		case "M":
			if name == "thread_name" {
				declared[[2]float64{pid, tid}] = true
			}
		case "X":
			if _, ok := e["dur"].(float64); !ok {
				t.Fatalf("event %d (%s): X without dur", i, name)
			}
			carried[[2]float64{pid, tid}] = true
		default:
			carried[[2]float64{pid, tid}] = true
		}
	}
	if len(declared) == 0 {
		t.Fatal("no thread_name metadata emitted")
	}
	for track := range declared {
		if !carried[track] {
			t.Errorf("track pid=%v tid=%v declared but empty", track[0], track[1])
		}
	}
	// Every kind produced at least one event: 8 inputs, plus metadata.
	if len(events) < len(perfettoEvents())+3 {
		t.Fatalf("only %d events for %d inputs", len(events), len(perfettoEvents()))
	}
}

// TestPerfettoDeterministic: same events, same bytes — map keys are
// sorted by encoding/json and track numbering follows the stream.
func TestPerfettoDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteTrace(&a, perfettoEvents()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, perfettoEvents()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same events differ")
	}
}

// TestPerfettoBusRoundTrip: exporting through the Bus uses the retained
// ring window.
func TestPerfettoBusRoundTrip(t *testing.T) {
	bus := NewBus(4)
	for _, e := range perfettoEvents() {
		bus.Publish(e)
	}
	var buf bytes.Buffer
	if err := bus.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	real := 0
	for _, e := range events {
		if ph, _ := e["ph"].(string); ph != "M" {
			real++
		}
	}
	// The ring kept the last 4 inputs: shed and querydone (1 event each),
	// route and rebalance (2 each: instant + counter).
	if real != 6 {
		t.Fatalf("exported %d real events from a 4-slot ring, want 6", real)
	}
}
