package obs

import (
	"elasticore/internal/metrics"
	"elasticore/internal/numa"
)

// probe.go samples slow-moving state the event stream does not carry —
// hardware-counter windows, energy, latency quantiles — at control-period
// boundaries, producing the timeline rows behind an experiment's
// "timeline" table.

// ProbeConfig assembles a Probe.
type ProbeConfig struct {
	// Machine supplies the clock and the hardware counters (required).
	Machine *numa.Machine
	// Every is the sampling interval in cycles; zero selects 50 ms at the
	// machine clock (the paper's control-loop class). Rigs pass their
	// mechanism's control period so samples land on control boundaries.
	Every uint64
	// Allocated reports the DBMS's current core count (nil records 0).
	Allocated func() int
	// Reading reports the current strategy reading fed to the PrT net
	// (nil records 0).
	Reading func() int
	// Backlog reports the admission-queue depth (nil records 0).
	Backlog func() int
	// Energy prices each counter window; the zero value selects the
	// paper-calibrated model.
	Energy metrics.EnergyModel
}

// Snapshot is one probe sample. Counter fields are window deltas since
// the previous sample; quantiles are cumulative over the attached
// histogram's lifetime.
type Snapshot struct {
	// Now is the sample's virtual time in cycles.
	Now uint64
	// Allocated is the DBMS core count at the sample.
	Allocated int
	// Load is the strategy reading at the sample.
	Load int
	// Backlog is the admission-queue depth at the sample.
	Backlog int
	// HTBytes and IMCBytes are interconnect and memory-controller traffic
	// in this window.
	HTBytes, IMCBytes uint64
	// EnergyJoules prices this window under the probe's energy model.
	EnergyJoules float64
	// P50 and P99 are latency quantiles in cycles of the attached
	// histogram (zero without one or before the first completion).
	P50, P99 uint64
}

// Probe samples Snapshots on a fixed virtual-time cadence. Call Maybe
// from the simulation loop; it is one clock comparison when not due.
// Sampling only reads simulation state (counter snapshots, cgroup sizes,
// histogram buckets), so a probed run is bit-identical to an unprobed
// one.
type Probe struct {
	cfg     ProbeConfig
	topo    *numa.Topology
	last    numa.Counters
	nextAt  uint64
	latency *metrics.Histogram
	samples []Snapshot
}

// NewProbe wires a probe; the first sample is due one interval from now.
func NewProbe(cfg ProbeConfig) *Probe {
	topo := cfg.Machine.Topology()
	if cfg.Every == 0 {
		cfg.Every = topo.SecondsToCycles(50e-3)
	}
	if cfg.Energy == (metrics.EnergyModel{}) {
		cfg.Energy = metrics.DefaultEnergyModel()
	}
	return &Probe{
		cfg:    cfg,
		topo:   topo,
		last:   cfg.Machine.Snapshot(),
		nextAt: cfg.Machine.Now() + cfg.Every,
	}
}

// SetLatency attaches (or with nil detaches) the histogram whose
// quantiles each sample records — typically the driver's total-latency
// histogram for the running phase.
func (p *Probe) SetLatency(h *metrics.Histogram) { p.latency = h }

// Every returns the sampling interval in cycles.
func (p *Probe) Every() uint64 { return p.cfg.Every }

// NextAt returns the cycle of the next due sample. The parallel fleet
// engine caps decoupled stretches at it so Maybe is never late.
func (p *Probe) NextAt() uint64 { return p.nextAt }

// Maybe samples if the interval has elapsed; cheap to call every tick.
func (p *Probe) Maybe() {
	if p.cfg.Machine.Now() < p.nextAt {
		return
	}
	p.Sample()
}

// Sample records one Snapshot now and schedules the next interval.
func (p *Probe) Sample() {
	machine := p.cfg.Machine
	snap := machine.Snapshot()
	window := snap.Sub(p.last)
	p.last = snap
	p.nextAt = machine.Now() + p.cfg.Every

	s := Snapshot{
		Now:          machine.Now(),
		HTBytes:      window.TotalHTBytes(),
		IMCBytes:     window.TotalIMCBytes(),
		EnergyJoules: p.cfg.Energy.Estimate(p.topo, window).Total(),
	}
	if p.cfg.Allocated != nil {
		s.Allocated = p.cfg.Allocated()
	}
	if p.cfg.Reading != nil {
		s.Load = p.cfg.Reading()
	}
	if p.cfg.Backlog != nil {
		s.Backlog = p.cfg.Backlog()
	}
	if p.latency != nil && p.latency.Count() > 0 {
		q := p.latency.Quantiles(0.50, 0.99)
		s.P50, s.P99 = q[0], q[1]
	}
	p.samples = append(p.samples, s)
}

// Samples returns the timeline recorded so far.
func (p *Probe) Samples() []Snapshot { return p.samples }
