package obs

import (
	"testing"
)

// TestBusFanOut: multiple subscribers to one kind all see every event, in
// subscription order, and kinds are routed independently.
func TestBusFanOut(t *testing.T) {
	b := NewBus(16)
	var order []string
	b.Subscribe(KindMigration, func(e Event) { order = append(order, "first") })
	b.Subscribe(KindMigration, func(e Event) { order = append(order, "second") })
	b.Subscribe(KindRunSlice, func(e Event) { order = append(order, "slice") })

	b.Publish(Event{Kind: KindMigration, TID: 1})
	b.Publish(Event{Kind: KindTaskDone}) // no subscriber: retained, not routed
	b.Publish(Event{Kind: KindRunSlice, TID: 2})

	want := []string{"first", "second", "slice"}
	if len(order) != len(want) {
		t.Fatalf("fan-out calls = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fan-out order = %v, want %v", order, want)
		}
	}
	if b.Total() != 3 || b.Len() != 3 {
		t.Fatalf("Total=%d Len=%d, want 3, 3", b.Total(), b.Len())
	}
}

// TestBusSubscribeAll: an all-kinds subscriber sees every event once.
func TestBusSubscribeAll(t *testing.T) {
	b := NewBus(8)
	n := 0
	b.SubscribeAll(func(e Event) { n++ })
	for k := 0; k < kindCount; k++ {
		b.Publish(Event{Kind: Kind(k)})
	}
	if n != kindCount {
		t.Fatalf("all-subscriber saw %d events, want %d", n, kindCount)
	}
}

// TestBusRingWraps: a full ring overwrites the oldest events, Events
// returns the survivors oldest-first, and Dropped accounts the rest.
func TestBusRingWraps(t *testing.T) {
	b := NewBus(4)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: KindAdmit, V1: int64(i)})
	}
	got := b.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := int64(6 + i); e.V1 != want {
			t.Fatalf("Events()[%d].V1 = %d, want %d (oldest first)", i, e.V1, want)
		}
	}
	if b.Total() != 10 || b.Dropped() != 6 {
		t.Fatalf("Total=%d Dropped=%d, want 10, 6", b.Total(), b.Dropped())
	}
}

// TestBusEventsOfKind filters the retained window without disturbing it.
func TestBusEventsOfKind(t *testing.T) {
	b := NewBus(16)
	b.Publish(Event{Kind: KindShed, V1: 1})
	b.Publish(Event{Kind: KindAdmit})
	b.Publish(Event{Kind: KindShed, V1: 2})
	sheds := b.EventsOfKind(KindShed)
	if len(sheds) != 2 || sheds[0].V1 != 1 || sheds[1].V1 != 2 {
		t.Fatalf("EventsOfKind(KindShed) = %+v, want V1 1 then 2", sheds)
	}
	if b.Len() != 3 {
		t.Fatalf("Len changed to %d after filtered read", b.Len())
	}
}

// TestBusPublishZeroAlloc: the ring is preallocated and Event is a flat
// value, so publishing — with or without subscribers — never allocates.
// This is the bus's half of the hot-path contract; the scheduler-side
// guard lives in internal/sched.
func TestBusPublishZeroAlloc(t *testing.T) {
	dark := NewBus(64)
	e := Event{Kind: KindRunSlice, TID: 7, Core: 3, Start: 100, Dur: 50, Label: "worker"}
	if allocs := testing.AllocsPerRun(500, func() { dark.Publish(e) }); allocs != 0 {
		t.Fatalf("dark Publish allocated %v times per run, want 0", allocs)
	}
	lit := NewBus(64)
	sink := uint64(0)
	lit.Subscribe(KindRunSlice, func(ev Event) { sink += ev.Dur })
	if allocs := testing.AllocsPerRun(500, func() { lit.Publish(e) }); allocs != 0 {
		t.Fatalf("subscribed Publish allocated %v times per run, want 0", allocs)
	}
}

// TestKindStrings: every kind has a stable printable name.
func TestKindStrings(t *testing.T) {
	for k := 0; k < kindCount; k++ {
		if Kind(k).String() == "unknown" {
			t.Fatalf("Kind(%d) has no name", k)
		}
	}
}
