package obs

// DefaultCapacity is the ring size NewBus(0) selects: large enough to
// hold every event of the stock experiments at their default scale.
const DefaultCapacity = 1 << 16

// Bus is a typed event bus with multi-subscriber fan-out and a
// fixed-capacity ring buffer. Producers call Publish; consumers either
// Subscribe (called synchronously, in subscription order, for every
// matching event — including those later overwritten in the ring) or
// read the retained window back with Events.
//
// The bus is single-goroutine like the simulation: no locks. Publish
// never allocates — the ring is preallocated and subscriber lists are
// fixed after setup — so attaching an empty bus keeps the execution hot
// path allocation-free.
type Bus struct {
	ring  []Event
	w     int // next write slot
	n     int // live events (<= len(ring))
	total uint64

	subs [kindCount][]func(Event)

	// View state (see stage.go): a view forwards to parent and owns no
	// ring; while staging it buffers events for ordered replay instead.
	parent  *Bus
	staged  []Event
	marks   []int
	staging bool
}

// NewBus creates a bus retaining up to capacity events; capacity <= 0
// selects DefaultCapacity.
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Bus{ring: make([]Event, capacity)}
}

// Publish appends the event to the ring (overwriting the oldest when
// full) and fans it out to the kind's subscribers in subscription order.
// On a view it forwards to the parent — or, while staging, buffers the
// event for the section driver to replay in deterministic order.
func (b *Bus) Publish(e Event) {
	if b.parent != nil {
		if b.staging {
			b.staged = append(b.staged, e)
			return
		}
		b.parent.Publish(e)
		return
	}
	b.ring[b.w] = e
	b.w++
	if b.w == len(b.ring) {
		b.w = 0
	}
	if b.n < len(b.ring) {
		b.n++
	}
	b.total++
	for _, fn := range b.subs[e.Kind] {
		fn(e)
	}
}

// Subscribe registers fn for every subsequent event of kind k. Multiple
// subscribers coexist; there is no unsubscribe — a consumer that loses
// interest simply ignores its callbacks (subscriptions live as long as
// the rig, matching how traces are used).
func (b *Bus) Subscribe(k Kind, fn func(Event)) {
	if b.parent != nil {
		b.parent.Subscribe(k, fn)
		return
	}
	b.subs[k] = append(b.subs[k], fn)
}

// SubscribeAll registers fn for every subsequent event of any kind.
func (b *Bus) SubscribeAll(fn func(Event)) {
	if b.parent != nil {
		b.parent.SubscribeAll(fn)
		return
	}
	for k := range b.subs {
		b.subs[k] = append(b.subs[k], fn)
	}
}

// Events returns the retained window, oldest first. The slice is a copy;
// the ring is not disturbed.
func (b *Bus) Events() []Event {
	if b.parent != nil {
		return b.parent.Events()
	}
	out := make([]Event, b.n)
	start := b.w - b.n
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.n; i++ {
		out[i] = b.ring[(start+i)%len(b.ring)]
	}
	return out
}

// EventsOfKind returns the retained events of one kind, oldest first.
func (b *Bus) EventsOfKind(k Kind) []Event {
	if b.parent != nil {
		return b.parent.EventsOfKind(k)
	}
	var out []Event
	start := b.w - b.n
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.n; i++ {
		if e := b.ring[(start+i)%len(b.ring)]; e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of retained events.
func (b *Bus) Len() int {
	if b.parent != nil {
		return b.parent.Len()
	}
	return b.n
}

// Cap returns the ring capacity.
func (b *Bus) Cap() int {
	if b.parent != nil {
		return b.parent.Cap()
	}
	return len(b.ring)
}

// Total counts every event ever published.
func (b *Bus) Total() uint64 {
	if b.parent != nil {
		return b.parent.Total()
	}
	return b.total
}

// Dropped counts events overwritten in the ring (published minus
// retained). Subscribers saw them; Events no longer returns them.
func (b *Bus) Dropped() uint64 {
	if b.parent != nil {
		return b.parent.Dropped()
	}
	return b.total - uint64(b.n)
}
