package obs

// stage.go gives the bus a per-producer staging mode, the piece that
// lets the parallel fleet engine keep the bus's strict sequential event
// order while machines tick on concurrent goroutines.
//
// A view (NewView) is a Bus bound to a parent: it owns no ring and no
// subscribers of its own. Outside a parallel section it is transparent —
// Publish forwards to the parent immediately, reads and Subscribe
// delegate — so code holding a view is byte-for-byte equivalent to code
// holding the parent. Inside a parallel section (BeginStage..EndStage)
// Publish appends to a private buffer instead, with Mark recording a
// quantum boundary, and the section's driver replays the buffers into
// the parent afterwards in (quantum, machine) order. The parent's ring
// writes and subscriber fan-out therefore always happen on the driving
// goroutine, in exactly the order a sequential run would have produced.

// NewView returns a staging view of parent. The view publishes through
// to the parent until BeginStage diverts it into its private buffer.
func NewView(parent *Bus) *Bus {
	return &Bus{parent: parent}
}

// Parent returns the bus this view forwards to, or nil for a root bus.
func (b *Bus) Parent() *Bus { return b.parent }

// BeginStage diverts subsequent Publish calls into the view's private
// buffer until EndStage. Only meaningful on a view; the staged events
// are read back with Staged and replayed by the section driver.
func (b *Bus) BeginStage() {
	b.staged = b.staged[:0]
	b.marks = b.marks[:0]
	b.staging = true
}

// Mark records a quantum boundary: events published since the previous
// Mark (or BeginStage) belong to the quantum just completed.
func (b *Bus) Mark() {
	b.marks = append(b.marks, len(b.staged))
}

// Staged returns the events of staged quantum q (0-based, valid up to
// the number of Mark calls). The slice aliases the staging buffer and is
// valid until the next BeginStage.
func (b *Bus) Staged(q int) []Event {
	if q >= len(b.marks) {
		return nil
	}
	lo := 0
	if q > 0 {
		lo = b.marks[q-1]
	}
	return b.staged[lo:b.marks[q]]
}

// EndStage returns the view to passthrough mode. The staged buffer is
// kept for reuse; the caller replays it with Staged before ending.
func (b *Bus) EndStage() {
	b.staging = false
}
