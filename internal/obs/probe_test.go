package obs

import (
	"testing"

	"elasticore/internal/metrics"
	"elasticore/internal/numa"
)

// TestProbeCadence: Maybe samples once per interval, never between, and
// each snapshot reflects the callbacks and the counter window.
func TestProbeCadence(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	cores := 3
	p := NewProbe(ProbeConfig{
		Machine:   machine,
		Every:     1000,
		Allocated: func() int { return cores },
		Reading:   func() int { return 42 },
		Backlog:   func() int { return 7 },
	})

	p.Maybe()
	if len(p.Samples()) != 0 {
		t.Fatal("sampled before the first interval elapsed")
	}
	for i := 0; i < 5; i++ {
		machine.AdvanceTime(500)
		machine.ChargeBusy(0, 500)
		p.Maybe()
		p.Maybe() // second call in the same tick must not double-sample
	}
	samples := p.Samples()
	// 2500 cycles at one sample per 1000: due at 1000 and 2000.
	if len(samples) != 2 {
		t.Fatalf("recorded %d samples over 2500 cycles at interval 1000, want 2", len(samples))
	}
	s := samples[0]
	if s.Now != 1000 || s.Allocated != 3 || s.Load != 42 || s.Backlog != 7 {
		t.Fatalf("sample = %+v, want Now=1000 Allocated=3 Load=42 Backlog=7", s)
	}
	if s.EnergyJoules <= 0 {
		t.Fatalf("busy window priced at %v J, want > 0", s.EnergyJoules)
	}
}

// TestProbeLatencyQuantiles: an attached histogram supplies P50/P99 via
// the batch accessor, matching the per-quantile API exactly.
func TestProbeLatencyQuantiles(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	p := NewProbe(ProbeConfig{Machine: machine, Every: 100})
	var h metrics.Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	p.SetLatency(&h)
	machine.AdvanceTime(100)
	p.Maybe()
	samples := p.Samples()
	if len(samples) != 1 {
		t.Fatalf("recorded %d samples, want 1", len(samples))
	}
	if want := h.Quantile(0.50); samples[0].P50 != want {
		t.Fatalf("P50 = %d, want %d", samples[0].P50, want)
	}
	if want := h.Quantile(0.99); samples[0].P99 != want {
		t.Fatalf("P99 = %d, want %d", samples[0].P99, want)
	}
}
