// Package obs is the simulation's telemetry spine: a typed event bus
// with multi-subscriber fan-out and a fixed-capacity ring buffer, periodic
// Snapshot probes sampled at control-period boundaries, and exporters
// (Chrome/Perfetto trace-event JSON) over the recorded stream.
//
// Every layer of the stack publishes onto one shared Bus — the elastic
// mechanism its control-period transition firings, the tenant arbiter its
// core grants, the scheduler its thread migrations and run slices, the
// engine its per-task operator completions, the open-loop driver its
// admissions, sheds and query completions — so consumers like
// trace.MigrationTrace, trace.Tomograph, elastictop and the Perfetto
// exporter can coexist instead of fighting over single replace-on-attach
// hooks.
//
// Two standing contracts shape the design:
//
//   - Events observe, never perturb. Publishing mutates nothing outside
//     the bus, and every timestamp is an integer simulated-cycle count
//     taken from the machine clock — no host time, no floats — so a
//     traced run is bit-identical to an untraced one, fast path or naive.
//   - Near-zero overhead when dark. Producers keep a nil-checked bus
//     pointer (one predictable branch when tracing is off), the ring is
//     preallocated, Event is a flat value struct (no interface boxing),
//     and Publish with no subscribers allocates nothing.
//
// The bus is deliberately single-goroutine, like the simulation itself:
// no locks, no channels, deterministic fan-out order (subscription order).
package obs

// Kind discriminates the event types carried by the Bus.
type Kind uint8

const (
	// KindMigration is a scheduler thread reassignment (TID moved From ->
	// Core at Now).
	KindMigration Kind = iota
	// KindRunSlice is one executed slice of a thread on a core (TID ran
	// on Core for Dur cycles from Start; Label is the thread name).
	KindRunSlice
	// KindTaskDone is a completed operator task (worker TID ran operator
	// Label from Start for Dur cycles; Tenant names the owning engine
	// under consolidation).
	KindTaskDone
	// KindTransition is one control-period evaluation of a PrT net
	// (Label is the fired transition path, V1 the strategy reading fed to
	// the net, V2 the allocation the step produced — the applied cpuset
	// size after a Step, the desired size under arbitration — Core the
	// core added or removed, -1 when the decision moved no core, and Set
	// the cpuset after the step).
	KindTransition
	// KindGrant is one tenant's outcome of an arbitration round (Tenant
	// asked for V1 cores, was granted V2, holds cpuset Set).
	KindGrant
	// KindAdmit is an open-loop admission: a queued request entered a
	// server session after Dur cycles of queue wait, leaving V1 requests
	// queued and V2 in flight.
	KindAdmit
	// KindShed is an open-loop drop at a full admission queue of depth V1.
	KindShed
	// KindQueryDone is an open-loop query completion: total latency Dur
	// cycles (queue wait plus service), of which V1 cycles were service.
	KindQueryDone
	// KindRoute is a cluster routing decision: the coordinator placed a
	// request on Machine (V1 = its admission-queue depth after the
	// enqueue, V2 = the target shard, -1 for unkeyed requests; Label is
	// the routing kind: "keyed", "any" or "scatter").
	KindRoute
	// KindRebalance is a cluster-arbiter core movement: Machine's budget
	// changed by V1 cores to V2, with Dur cycles of migration latency
	// charged before an increase takes effect.
	KindRebalance
	// KindFault is a fault-plan transition on Machine: Label names the
	// fault ("crash", "recover", "slow", "stall", "link", plus the
	// matching "-end" forms), Core the affected core (-1 for
	// machine-level faults), V1 the slowdown factor or scaled drop
	// probability, Dur the added link delay in cycles.
	KindFault
	// KindRetry is a coordinator re-send after a timeout, refused offer
	// or link drop: request V1, attempt number V2, next target Machine;
	// Label is the reason ("timeout", "down", "drop", "shed").
	KindRetry
	// KindFailover is a keyed request served away from its primary:
	// shard V1's traffic went to Machine instead of primary V2 ("hedge"
	// in Label when the send is a hedged duplicate rather than a
	// primary-down reroute).
	KindFailover
	// KindReassign is a shard re-homing: shard V1 moved to Machine from
	// V2 after Dur cycles of simulated data transfer ("begin" events
	// carry the schedule, "done" the landing; Label distinguishes them).
	KindReassign
	// KindHeartbeat is a fleet liveness beat from Machine, published
	// only when health monitoring is enabled (V1 = 1 while the machine
	// is serving).
	KindHeartbeat

	kindCount = int(KindHeartbeat) + 1
)

// String names the kind for exporters and diagnostics.
func (k Kind) String() string {
	switch k {
	case KindMigration:
		return "migration"
	case KindRunSlice:
		return "runslice"
	case KindTaskDone:
		return "taskdone"
	case KindTransition:
		return "transition"
	case KindGrant:
		return "grant"
	case KindAdmit:
		return "admit"
	case KindShed:
		return "shed"
	case KindQueryDone:
		return "querydone"
	case KindRoute:
		return "route"
	case KindRebalance:
		return "rebalance"
	case KindFault:
		return "fault"
	case KindRetry:
		return "retry"
	case KindFailover:
		return "failover"
	case KindReassign:
		return "reassign"
	case KindHeartbeat:
		return "heartbeat"
	default:
		return "unknown"
	}
}

// Event is the bus's single flat record type. One struct for all kinds —
// rather than an interface — keeps Publish allocation-free: values are
// copied into the preallocated ring, never boxed. Field meaning is
// per-kind (see the Kind constants); unused fields are zero.
type Event struct {
	// Kind discriminates the record.
	Kind Kind
	// Now is the virtual time of the event in cycles (the machine clock
	// at publish; for run slices and tasks the *end* of the activity).
	Now uint64
	// TID is the subject thread (migration, run slice) or worker (task).
	TID int64
	// Core is the core acted on; -1 when the event names no core.
	Core int32
	// From is a migration's origin core.
	From int32
	// Start is the begin cycle of span events (run slice, task).
	Start uint64
	// Dur is the span length in cycles (run slice, task, queue wait,
	// query latency).
	Dur uint64
	// V1 and V2 carry per-kind integer payloads (readings, depths,
	// demands, grants — see the Kind constants).
	V1, V2 int64
	// Set is a cpuset bitmask (transition, grant).
	Set uint64
	// Label is a per-kind name: thread name, operator, transition path.
	Label string
	// Tenant names the owning tenant under consolidation ("" for the
	// single-tenant rig).
	Tenant string
	// Machine is the simulated-fleet machine the event belongs to (route,
	// rebalance); zero for single-machine rigs, which never set it.
	Machine int32
}
