package obs

import (
	"reflect"
	"testing"
)

// TestViewPassthrough: outside a staged section a view is transparent —
// publishes land on the parent immediately, subscribers fire, reads
// delegate.
func TestViewPassthrough(t *testing.T) {
	parent := NewBus(8)
	v := NewView(parent)
	if v.Parent() != parent {
		t.Fatal("view does not report its parent")
	}
	var seen int
	v.Subscribe(KindMigration, func(Event) { seen++ })
	v.Publish(Event{Kind: KindMigration, Now: 1})
	if seen != 1 {
		t.Fatalf("subscriber fired %d times, want 1", seen)
	}
	if parent.Len() != 1 || v.Len() != 1 {
		t.Fatalf("parent retains %d events, view reports %d, want 1/1", parent.Len(), v.Len())
	}
	if !reflect.DeepEqual(v.Events(), parent.Events()) {
		t.Fatal("view reads diverge from parent reads")
	}
}

// TestViewStaging: between BeginStage and EndStage publishes buffer
// per quantum, the parent stays untouched, and the driver can replay the
// staged quanta in order.
func TestViewStaging(t *testing.T) {
	parent := NewBus(8)
	v := NewView(parent)
	v.BeginStage()
	v.Publish(Event{Kind: KindRunSlice, Now: 10})
	v.Publish(Event{Kind: KindRunSlice, Now: 10, Core: 1})
	v.Mark() // quantum 0: two events
	v.Mark() // quantum 1: none
	v.Publish(Event{Kind: KindMigration, Now: 30})
	v.Mark() // quantum 2: one event
	if parent.Len() != 0 {
		t.Fatalf("parent saw %d events during staging, want 0", parent.Len())
	}
	if got := len(v.Staged(0)); got != 2 {
		t.Fatalf("quantum 0 staged %d events, want 2", got)
	}
	if got := len(v.Staged(1)); got != 0 {
		t.Fatalf("quantum 1 staged %d events, want 0", got)
	}
	if got := v.Staged(2); len(got) != 1 || got[0].Kind != KindMigration {
		t.Fatalf("quantum 2 staged %v, want one migration", got)
	}
	if got := v.Staged(3); got != nil {
		t.Fatalf("quantum beyond the marks staged %v, want nil", got)
	}
	for q := 0; q < 3; q++ {
		for _, e := range v.Staged(q) {
			parent.Publish(e)
		}
	}
	v.EndStage()
	if parent.Len() != 3 {
		t.Fatalf("parent retains %d events after replay, want 3", parent.Len())
	}
	v.Publish(Event{Kind: KindRunSlice, Now: 40})
	if parent.Len() != 4 {
		t.Fatal("view did not return to passthrough after EndStage")
	}
	// A second section reuses the buffers from zero.
	v.BeginStage()
	v.Mark()
	if got := len(v.Staged(0)); got != 0 {
		t.Fatalf("stale staged events leaked into a new section: %d", got)
	}
	v.EndStage()
}
