package petrinet

import (
	"strings"
	"testing"
)

func TestExploreSimpleCycle(t *testing.T) {
	// A two-place cycle with one token has exactly two reachable
	// markings and no deadlock.
	n := New()
	a, b := n.AddPlace("A"), n.AddPlace("B")
	carry := func(bd Binding) Token { return Token{"x": bd["x"]} }
	n.AddTransition(&Transition{
		Name: "ab",
		In:   []InArc{{Place: a, Vars: []string{"x"}}},
		Out:  []OutArc{{Place: b, Vars: []string{"x"}, Expr: carry}},
	})
	n.AddTransition(&Transition{
		Name: "ba",
		In:   []InArc{{Place: b, Vars: []string{"x"}}},
		Out:  []OutArc{{Place: a, Vars: []string{"x"}, Expr: carry}},
	})
	n.Put(a, Token{"x": 1})
	res := n.Explore(100)
	if res.States != 2 {
		t.Errorf("states = %d, want 2", res.States)
	}
	if len(res.Deadlocks) != 0 {
		t.Errorf("deadlocks = %v, want none", res.Deadlocks)
	}
	if res.MaxTokensPerPlace != 1 {
		t.Errorf("max tokens = %d, want 1 (1-safe)", res.MaxTokensPerPlace)
	}
	if res.Truncated {
		t.Error("tiny net truncated")
	}
}

func TestExploreDetectsDeadlock(t *testing.T) {
	// A sink transition consumes the token and never produces: the empty
	// marking deadlocks.
	n := New()
	a := n.AddPlace("A")
	n.AddTransition(&Transition{
		Name: "sink",
		In:   []InArc{{Place: a, Vars: []string{"x"}}},
	})
	n.Put(a, Token{"x": 1})
	res := n.Explore(100)
	if len(res.Deadlocks) == 0 {
		t.Error("sink net reported no deadlock")
	}
}

func TestExploreRestoresMarking(t *testing.T) {
	n := New()
	a, b := n.AddPlace("A"), n.AddPlace("B")
	n.AddTransition(&Transition{
		Name: "ab",
		In:   []InArc{{Place: a, Vars: []string{"x"}}},
		Out:  []OutArc{{Place: b, Vars: []string{"x"}, Expr: func(bd Binding) Token { return Token{"x": bd["x"]} }}},
	})
	n.Put(a, Token{"x": 7})
	before := n.MarkingString()
	n.Explore(50)
	if after := n.MarkingString(); after != before {
		t.Errorf("Explore mutated the marking: %q -> %q", before, after)
	}
}

// TestElasticNetFormalProperties machine-checks the elastic net's safety
// over its full operational state space: one control period injects a
// reading and fires to quiescence; exploring from every (u, nalloc)
// combination must stay 1-safe per place, deadlock-free mid-flight, and
// keep nalloc within [1, ntotal].
func TestElasticNetFormalProperties(t *testing.T) {
	nTotal := 4 // small machine keeps the product space exact
	for u := 0; u <= 100; u += 10 {
		for nalloc := 1; nalloc <= nTotal; nalloc++ {
			e := NewElasticNet(10, 70, nTotal)
			e.SetNAlloc(nalloc)
			e.Net().Drain(e.Checks)
			e.Net().Put(e.Checks, Token{"u": u})

			res := e.Net().Explore(1000)
			if res.Truncated {
				t.Fatalf("u=%d nalloc=%d: state space truncated", u, nalloc)
			}
			if res.MaxTokensPerPlace > 1 {
				t.Errorf("u=%d nalloc=%d: net not 1-safe (max %d tokens)", u, nalloc, res.MaxTokensPerPlace)
			}
			// The only legitimate quiescent markings hold the u token in
			// Checks (the environment then injects the next reading).
			for _, d := range res.Deadlocks {
				if !strings.Contains(string(d), "Checks={") {
					t.Errorf("u=%d nalloc=%d: deadlock outside Checks: %s", u, nalloc, d)
				}
			}
		}
	}
}

// TestElasticNetAllocationInvariant fires exhaustive reading sequences
// and confirms Provision's nalloc never leaves [1, ntotal].
func TestElasticNetAllocationInvariant(t *testing.T) {
	e := NewElasticNet(10, 70, 3)
	readings := []int{0, 10, 50, 70, 100}
	var walk func(depth int)
	walk = func(depth int) {
		if depth == 0 {
			return
		}
		for _, u := range readings {
			before := e.NAlloc()
			e.Evaluate(u)
			after := e.NAlloc()
			if after < 1 || after > 3 {
				t.Fatalf("nalloc %d out of [1,3]", after)
			}
			if diff := after - before; diff < -1 || diff > 1 {
				t.Fatalf("allocation jumped by %d; must move one core at a time", diff)
			}
			walk(depth - 1)
		}
	}
	walk(3)
}
