package petrinet

import (
	"fmt"
	"strings"
)

// matrix.go derives the Pre, Post and incidence matrices of a net, the
// representation the paper uses throughout Section III (Figures 8-11):
// A^T = Post - Pre orients the flow relation based on pre-conditions and
// post-conditions.

// Matrix is a places x transitions integer matrix (1 = arc present).
type Matrix struct {
	PlaceNames      []string
	TransitionNames []string
	Cells           [][]int // [place][transition]
}

// SymbolicMatrix carries the arc inscriptions instead of presence counts,
// matching the paper's rendering where cells hold "u" or "na".
type SymbolicMatrix struct {
	PlaceNames      []string
	TransitionNames []string
	Cells           [][]string
}

// Pre returns the pre-condition matrix: Pre[p][t] = 1 iff an arc <p, t>
// exists (place feeds transition).
func (n *Net) Pre() Matrix {
	m := n.emptyMatrix()
	for _, t := range n.transitions {
		for _, arc := range t.In {
			m.Cells[arc.Place.idx][t.idx] = 1
		}
	}
	return m
}

// Post returns the post-condition matrix: Post[p][t] = 1 iff an arc <t, p>
// exists (transition feeds place).
func (n *Net) Post() Matrix {
	m := n.emptyMatrix()
	for _, t := range n.transitions {
		for _, arc := range t.Out {
			m.Cells[arc.Place.idx][t.idx] = 1
		}
	}
	return m
}

// Incidence returns A^T = Post - Pre.
func (n *Net) Incidence() Matrix {
	pre, post := n.Pre(), n.Post()
	m := n.emptyMatrix()
	for p := range m.Cells {
		for t := range m.Cells[p] {
			m.Cells[p][t] = post.Cells[p][t] - pre.Cells[p][t]
		}
	}
	return m
}

// SymbolicPre returns the pre-condition matrix with arc inscriptions.
func (n *Net) SymbolicPre() SymbolicMatrix {
	m := n.emptySymbolic()
	for _, t := range n.transitions {
		for _, arc := range t.In {
			m.Cells[arc.Place.idx][t.idx] = strings.Join(arc.Vars, ",")
		}
	}
	return m
}

// SymbolicPost returns the post-condition matrix with arc inscriptions.
func (n *Net) SymbolicPost() SymbolicMatrix {
	m := n.emptySymbolic()
	for _, t := range n.transitions {
		for _, arc := range t.Out {
			m.Cells[arc.Place.idx][t.idx] = strings.Join(arc.Vars, ",")
		}
	}
	return m
}

func (n *Net) emptyMatrix() Matrix {
	m := Matrix{
		PlaceNames:      make([]string, len(n.places)),
		TransitionNames: make([]string, len(n.transitions)),
		Cells:           make([][]int, len(n.places)),
	}
	for i, p := range n.places {
		m.PlaceNames[i] = p.Name
		m.Cells[i] = make([]int, len(n.transitions))
	}
	for i, t := range n.transitions {
		m.TransitionNames[i] = t.Name
	}
	return m
}

func (n *Net) emptySymbolic() SymbolicMatrix {
	m := SymbolicMatrix{
		PlaceNames:      make([]string, len(n.places)),
		TransitionNames: make([]string, len(n.transitions)),
		Cells:           make([][]string, len(n.places)),
	}
	for i, p := range n.places {
		m.PlaceNames[i] = p.Name
		m.Cells[i] = make([]string, len(n.transitions))
	}
	for i, t := range n.transitions {
		m.TransitionNames[i] = t.Name
	}
	return m
}

// String renders the matrix as an aligned table.
func (m Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "")
	for _, t := range m.TransitionNames {
		fmt.Fprintf(&b, "%6s", t)
	}
	b.WriteByte('\n')
	for p, row := range m.Cells {
		fmt.Fprintf(&b, "%-10s", m.PlaceNames[p])
		for _, v := range row {
			fmt.Fprintf(&b, "%6d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the symbolic matrix as an aligned table.
func (m SymbolicMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "")
	for _, t := range m.TransitionNames {
		fmt.Fprintf(&b, "%10s", t)
	}
	b.WriteByte('\n')
	for p, row := range m.Cells {
		fmt.Fprintf(&b, "%-10s", m.PlaceNames[p])
		for _, v := range row {
			if v == "" {
				v = "."
			}
			fmt.Fprintf(&b, "%10s", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
