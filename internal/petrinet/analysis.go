package petrinet

// analysis.go provides the formal analyses the PrT literature the paper
// cites applies to such models (He '96; Yu et al., COMPSAC '02):
// bounded reachability exploration over a finite token-value domain,
// k-safety checking, and deadlock detection. The elastic net's safety
// properties (tokens conserved, allocation within [1, ntotal], no
// deadlocking marking) are machine-checked in the tests on top of these.

import (
	"fmt"
	"sort"
	"strings"
)

// MarkingKey is a canonical string encoding of a marking, usable as a map
// key during state-space exploration.
type MarkingKey string

// markingKey encodes the current marking deterministically.
func (n *Net) markingKey() MarkingKey {
	var b strings.Builder
	for _, p := range n.places {
		b.WriteString(p.Name)
		b.WriteByte('=')
		toks := n.marking[p]
		parts := make([]string, len(toks))
		for i, tok := range toks {
			parts[i] = tok.String()
		}
		sort.Strings(parts)
		b.WriteString(strings.Join(parts, ","))
		b.WriteByte(';')
	}
	return MarkingKey(b.String())
}

// snapshotMarking copies the full marking.
func (n *Net) snapshotMarking() map[*Place][]Token {
	out := make(map[*Place][]Token, len(n.marking))
	for p, toks := range n.marking {
		cp := make([]Token, len(toks))
		for i, tok := range toks {
			cp[i] = tok.Clone()
		}
		out[p] = cp
	}
	return out
}

// restoreMarking replaces the marking with a snapshot.
func (n *Net) restoreMarking(m map[*Place][]Token) {
	n.marking = make(map[*Place][]Token, len(m))
	for p, toks := range m {
		cp := make([]Token, len(toks))
		for i, tok := range toks {
			cp[i] = tok.Clone()
		}
		n.marking[p] = cp
	}
}

// Reachability summarizes a bounded state-space exploration.
type Reachability struct {
	// States is the number of distinct markings reached.
	States int
	// MaxTokensPerPlace is the bound observed on any single place
	// (k-safety: the net is k-safe iff this is <= k).
	MaxTokensPerPlace int
	// Deadlocks lists markings with no enabled transition.
	Deadlocks []MarkingKey
	// Truncated reports whether the exploration hit the state limit.
	Truncated bool
}

// Explore performs a breadth-first reachability analysis from the current
// marking, firing every enabled transition at every state, up to maxStates
// distinct markings. The net's marking is restored afterwards.
//
// PrT nets over unbounded value domains have infinite state spaces in
// general; Explore is exact for nets whose guards and expressions keep
// token values within a finite domain (the elastic net's nalloc in
// [1, ntotal] and any finite set of injected u readings).
func (n *Net) Explore(maxStates int) Reachability {
	saved := n.snapshotMarking()
	defer n.restoreMarking(saved)

	res := Reachability{}
	seen := map[MarkingKey]bool{}
	queue := []map[*Place][]Token{n.snapshotMarking()}

	for len(queue) > 0 {
		if res.States >= maxStates {
			res.Truncated = true
			break
		}
		cur := queue[0]
		queue = queue[1:]
		n.restoreMarking(cur)
		key := n.markingKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		res.States++
		for _, toks := range cur {
			if len(toks) > res.MaxTokensPerPlace {
				res.MaxTokensPerPlace = len(toks)
			}
		}
		fired := 0
		for _, t := range n.transitions {
			n.restoreMarking(cur)
			if _, ok := n.Enabled(t); !ok {
				continue
			}
			if _, err := n.Fire(t); err != nil {
				continue
			}
			fired++
			queue = append(queue, n.snapshotMarking())
		}
		if fired == 0 {
			res.Deadlocks = append(res.Deadlocks, key)
		}
	}
	return res
}

// String summarizes the analysis.
func (r Reachability) String() string {
	return fmt.Sprintf("reachable states: %d, max tokens/place: %d, deadlocks: %d, truncated: %v",
		r.States, r.MaxTokensPerPlace, len(r.Deadlocks), r.Truncated)
}
