// Package petrinet implements the Predicate/Transition (PrT) net formalism
// the paper builds its abstract model on (Section III): an oriented
// bipartite graph of places and transitions where tokens carry values,
// arcs bind token values to variables, and each transition guards its
// firing with a first-order condition over those variables.
//
// The net structure is the paper's tuple {P, T, F, R, M}: places P,
// transitions T, the flow relation F (input and output arcs), the
// constraining mapping R (guards), and the marking M (token distribution).
// Pre, Post and incidence matrices (Figures 8-11) are derivable from any
// built net.
package petrinet

import (
	"fmt"
	"sort"
	"strings"
)

// Token is a value-carrying token: a small set of named integer fields
// (e.g. {u: 40} in Checks or {nalloc: 3} in Provision).
type Token map[string]int

// Clone returns a deep copy of the token.
func (t Token) Clone() Token {
	out := make(Token, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// String renders the token deterministically, e.g. "{nalloc:3 u:99}".
func (t Token) String() string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, t[k])
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Binding is the variable assignment produced by consuming input tokens.
type Binding map[string]int

// Place is a node of the net holding tokens.
type Place struct {
	Name string
	idx  int
}

// InArc consumes one token from Place when its transition fires, binding
// every field of the token. Vars names the fields the arc inscription
// mentions (for symbolic matrices; binding itself takes all fields).
type InArc struct {
	Place *Place
	Vars  []string
}

// OutArc produces a token on Place when its transition fires. Expr builds
// the token from the binding; Vars names the inscription for display.
type OutArc struct {
	Place *Place
	Vars  []string
	Expr  func(Binding) Token
}

// Transition is a guarded firing rule.
type Transition struct {
	Name string
	// Guard is the constraining mapping R(t): a first-order condition over
	// the binding. A nil guard is always true.
	Guard func(Binding) bool
	// GuardDesc is the human-readable form of the guard, e.g. "u >= 70".
	GuardDesc string
	In        []InArc
	Out       []OutArc
	idx       int
}

// Net is a Predicate/Transition net with its current marking.
type Net struct {
	places      []*Place
	transitions []*Transition
	marking     map[*Place][]Token
}

// New returns an empty net.
func New() *Net {
	return &Net{marking: make(map[*Place][]Token)}
}

// AddPlace creates a place with the given name.
func (n *Net) AddPlace(name string) *Place {
	p := &Place{Name: name, idx: len(n.places)}
	n.places = append(n.places, p)
	return p
}

// AddTransition registers a transition. Arcs must reference places of this
// net.
func (n *Net) AddTransition(t *Transition) *Transition {
	t.idx = len(n.transitions)
	n.transitions = append(n.transitions, t)
	return t
}

// Places returns the places in creation order.
func (n *Net) Places() []*Place { return n.places }

// Transitions returns the transitions in creation order.
func (n *Net) Transitions() []*Transition { return n.transitions }

// Put adds a token to a place.
func (n *Net) Put(p *Place, t Token) {
	n.marking[p] = append(n.marking[p], t.Clone())
}

// Drain removes and returns all tokens from a place.
func (n *Net) Drain(p *Place) []Token {
	out := n.marking[p]
	n.marking[p] = nil
	return out
}

// Tokens returns the tokens currently marking a place (not copied).
func (n *Net) Tokens(p *Place) []Token { return n.marking[p] }

// TokenCount returns how many tokens mark a place. It is the paper's
// function M(p) telling, e.g., how many cores a place represents.
func (n *Net) TokenCount(p *Place) int { return len(n.marking[p]) }

// bind consumes the head token of each input place of t, producing the
// binding, or reports failure if any input place is empty. It does not
// mutate the marking.
func (n *Net) bind(t *Transition) (Binding, bool) {
	b := make(Binding)
	for _, arc := range t.In {
		toks := n.marking[arc.Place]
		if len(toks) == 0 {
			return nil, false
		}
		for k, v := range toks[0] {
			b[k] = v
		}
	}
	return b, true
}

// Enabled reports whether transition t can fire under the current marking
// and, if so, the binding it would fire with.
func (n *Net) Enabled(t *Transition) (Binding, bool) {
	b, ok := n.bind(t)
	if !ok {
		return nil, false
	}
	if t.Guard != nil && !t.Guard(b) {
		return nil, false
	}
	return b, true
}

// Fire fires transition t: consumes one token from every input place,
// produces tokens on the output places. It returns the binding used, or an
// error if the transition is not enabled.
func (n *Net) Fire(t *Transition) (Binding, error) {
	b, ok := n.Enabled(t)
	if !ok {
		return nil, fmt.Errorf("petrinet: transition %s not enabled", t.Name)
	}
	for _, arc := range t.In {
		n.marking[arc.Place] = n.marking[arc.Place][1:]
	}
	for _, arc := range t.Out {
		n.marking[arc.Place] = append(n.marking[arc.Place], arc.Expr(b))
	}
	return b, nil
}

// Step fires the first enabled transition in registration order, returning
// it and its binding, or (nil, nil) when the net is quiescent.
func (n *Net) Step() (*Transition, Binding) {
	for _, t := range n.transitions {
		if b, ok := n.Enabled(t); ok {
			if _, err := n.Fire(t); err == nil {
				return t, b
			}
		}
	}
	return nil, nil
}

// MarkingString renders the full marking deterministically (diagnostics).
func (n *Net) MarkingString() string {
	var b strings.Builder
	for _, p := range n.places {
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%v", p.Name, n.marking[p])
	}
	return b.String()
}
