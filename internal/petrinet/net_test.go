package petrinet

import (
	"testing"
	"testing/quick"
)

// buildSimpleNet returns a two-place net moving a counter token through a
// transition that increments it.
func buildSimpleNet() (*Net, *Place, *Place, *Transition) {
	n := New()
	a := n.AddPlace("A")
	b := n.AddPlace("B")
	t := n.AddTransition(&Transition{
		Name: "inc",
		In:   []InArc{{Place: a, Vars: []string{"x"}}},
		Out: []OutArc{{Place: b, Vars: []string{"x"}, Expr: func(bd Binding) Token {
			return Token{"x": bd["x"] + 1}
		}}},
	})
	return n, a, b, t
}

func TestFireMovesAndTransformsToken(t *testing.T) {
	n, a, b, tr := buildSimpleNet()
	n.Put(a, Token{"x": 41})
	bind, err := n.Fire(tr)
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if bind["x"] != 41 {
		t.Errorf("binding x = %d, want 41", bind["x"])
	}
	if n.TokenCount(a) != 0 {
		t.Error("input place still marked")
	}
	toks := n.Tokens(b)
	if len(toks) != 1 || toks[0]["x"] != 42 {
		t.Errorf("output tokens = %v, want [{x:42}]", toks)
	}
}

func TestFireNotEnabledErrors(t *testing.T) {
	n, _, _, tr := buildSimpleNet()
	if _, err := n.Fire(tr); err == nil {
		t.Error("Fire on empty input place did not error")
	}
	_ = n
}

func TestGuardBlocksFiring(t *testing.T) {
	n := New()
	a := n.AddPlace("A")
	tr := n.AddTransition(&Transition{
		Name:  "gated",
		Guard: func(b Binding) bool { return b["x"] > 10 },
		In:    []InArc{{Place: a, Vars: []string{"x"}}},
	})
	n.Put(a, Token{"x": 5})
	if _, ok := n.Enabled(tr); ok {
		t.Error("guard x>10 enabled with x=5")
	}
	n.Drain(a)
	n.Put(a, Token{"x": 11})
	if _, ok := n.Enabled(tr); !ok {
		t.Error("guard x>10 not enabled with x=11")
	}
}

func TestStepFiresFirstEnabled(t *testing.T) {
	n := New()
	a := n.AddPlace("A")
	fired := ""
	mk := func(name string, guard func(Binding) bool) *Transition {
		return n.AddTransition(&Transition{
			Name:  name,
			Guard: guard,
			In:    []InArc{{Place: a, Vars: []string{"x"}}},
			Out: []OutArc{{Place: a, Vars: []string{"x"}, Expr: func(b Binding) Token {
				fired = name
				return Token{"x": b["x"]}
			}}},
		})
	}
	mk("never", func(Binding) bool { return false })
	mk("yes", nil)
	mk("also", nil)
	n.Put(a, Token{"x": 1})
	tr, _ := n.Step()
	if tr == nil || tr.Name != "yes" || fired != "yes" {
		t.Errorf("Step fired %v, want yes", tr)
	}
}

func TestStepQuiescent(t *testing.T) {
	n, _, _, _ := buildSimpleNet()
	if tr, _ := n.Step(); tr != nil {
		t.Errorf("empty net fired %s", tr.Name)
	}
}

func TestTokenConservationUnderFiring(t *testing.T) {
	// Property: in a net whose transitions have one input and one output
	// arc, the total token count is invariant under any firing sequence.
	f := func(seed uint8, steps uint8) bool {
		n := New()
		places := []*Place{n.AddPlace("p0"), n.AddPlace("p1"), n.AddPlace("p2")}
		for i := range places {
			next := places[(i+1)%len(places)]
			from := places[i]
			n.AddTransition(&Transition{
				Name: "t",
				In:   []InArc{{Place: from, Vars: []string{"x"}}},
				Out:  []OutArc{{Place: next, Vars: []string{"x"}, Expr: func(b Binding) Token { return Token{"x": b["x"]} }}},
			})
		}
		total := int(seed%5) + 1
		for i := 0; i < total; i++ {
			n.Put(places[i%3], Token{"x": i})
		}
		for i := 0; i < int(steps); i++ {
			n.Step()
		}
		got := 0
		for _, p := range places {
			got += n.TokenCount(p)
		}
		return got == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{"u": 99, "nalloc": 3}
	if got := tok.String(); got != "{nalloc:3 u:99}" {
		t.Errorf("String = %q", got)
	}
}

func TestPrePostIncidence(t *testing.T) {
	n, a, b, _ := buildSimpleNet()
	pre, post, inc := n.Pre(), n.Post(), n.Incidence()
	// Pre: arc <A, inc>.
	if pre.Cells[a.idx][0] != 1 || pre.Cells[b.idx][0] != 0 {
		t.Errorf("Pre = %v", pre.Cells)
	}
	// Post: arc <inc, B>.
	if post.Cells[b.idx][0] != 1 || post.Cells[a.idx][0] != 0 {
		t.Errorf("Post = %v", post.Cells)
	}
	// Incidence = Post - Pre.
	if inc.Cells[a.idx][0] != -1 || inc.Cells[b.idx][0] != 1 {
		t.Errorf("Incidence = %v", inc.Cells)
	}
}

func TestMatrixString(t *testing.T) {
	n, _, _, _ := buildSimpleNet()
	s := n.Incidence().String()
	if s == "" {
		t.Error("empty matrix rendering")
	}
}
