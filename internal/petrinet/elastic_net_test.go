package petrinet

import (
	"testing"
	"testing/quick"
)

func newNet() *ElasticNet { return NewElasticNet(10, 70, 16) }

func TestStableSubNet(t *testing.T) {
	// Figure 11: u = 40 with thresholds 10/70 cycles Checks -> Stable ->
	// Checks without touching Provision.
	e := newNet()
	ev := e.Evaluate(40)
	if ev.Decision != DecisionNone {
		t.Errorf("decision = %v, want none", ev.Decision)
	}
	if ev.State != "Stable" {
		t.Errorf("state = %q, want Stable", ev.State)
	}
	if ev.Label != "t2-Stable-t3" {
		t.Errorf("label = %q, want t2-Stable-t3", ev.Label)
	}
	if e.NAlloc() != 1 {
		t.Errorf("nalloc = %d, want unchanged 1", e.NAlloc())
	}
}

func TestOverloadSubNetAllocates(t *testing.T) {
	// Figure 9: u = 99 >= thmax fires t1 then t5, allocating one core.
	e := newNet()
	ev := e.Evaluate(99)
	if ev.Decision != DecisionAllocate {
		t.Errorf("decision = %v, want allocate", ev.Decision)
	}
	if ev.Label != "t1-Overload-t5" {
		t.Errorf("label = %q, want t1-Overload-t5", ev.Label)
	}
	if e.NAlloc() != 2 {
		t.Errorf("nalloc = %d, want 2", e.NAlloc())
	}
}

func TestOverloadBoundedByHardware(t *testing.T) {
	// t6: with all 16 cores allocated, overload cannot allocate more.
	e := newNet()
	e.SetNAlloc(16)
	ev := e.Evaluate(100)
	if ev.Decision != DecisionNone {
		t.Errorf("decision = %v, want none at hardware bound", ev.Decision)
	}
	if ev.Label != "t1-Overload-t6" {
		t.Errorf("label = %q, want t1-Overload-t6", ev.Label)
	}
	if e.NAlloc() != 16 {
		t.Errorf("nalloc = %d, want 16", e.NAlloc())
	}
}

func TestIdleSubNetReleases(t *testing.T) {
	// Figure 10: u = 8 <= thmin with 5 cores fires t0 then t4, releasing
	// one core.
	e := newNet()
	e.SetNAlloc(5)
	ev := e.Evaluate(8)
	if ev.Decision != DecisionRelease {
		t.Errorf("decision = %v, want release", ev.Decision)
	}
	if ev.Label != "t0-Idle-t4" {
		t.Errorf("label = %q, want t0-Idle-t4", ev.Label)
	}
	if e.NAlloc() != 4 {
		t.Errorf("nalloc = %d, want 4", e.NAlloc())
	}
}

func TestIdleBoundedBelowByOneCore(t *testing.T) {
	// t7 bounds the least number of CPUs: nalloc == 1 cannot release.
	e := newNet()
	ev := e.Evaluate(0)
	if ev.Decision != DecisionNone {
		t.Errorf("decision = %v, want none at lower bound", ev.Decision)
	}
	if ev.Label != "t0-Idle-t7" {
		t.Errorf("label = %q, want t0-Idle-t7", ev.Label)
	}
	if e.NAlloc() != 1 {
		t.Errorf("nalloc = %d, want 1", e.NAlloc())
	}
}

func TestThresholdBoundariesInclusive(t *testing.T) {
	// Paper guards: t0 is u <= thmin, t1 is u >= thmax, t2 is strict
	// in-between.
	e := newNet()
	e.SetNAlloc(8)
	if ev := e.Evaluate(10); ev.State != "Idle" {
		t.Errorf("u=10 state = %q, want Idle (u <= 10 fires t0)", ev.State)
	}
	e.SetNAlloc(8)
	if ev := e.Evaluate(70); ev.State != "Overload" {
		t.Errorf("u=70 state = %q, want Overload (u >= 70 fires t1)", ev.State)
	}
	e.SetNAlloc(8)
	if ev := e.Evaluate(11); ev.State != "Stable" {
		t.Errorf("u=11 state = %q, want Stable", ev.State)
	}
	if ev := e.Evaluate(69); ev.State != "Stable" {
		t.Errorf("u=69 state = %q, want Stable", ev.State)
	}
}

func TestNAllocAlwaysWithinBounds(t *testing.T) {
	// Property: any sequence of load readings keeps 1 <= nalloc <= 16.
	f := func(loads []uint8) bool {
		e := newNet()
		for _, l := range loads {
			e.Evaluate(int(l % 101))
			if n := e.NAlloc(); n < 1 || n > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenNeverLost(t *testing.T) {
	// Property: after any evaluation, exactly one token sits in Checks and
	// one in Provision (the net is 1-safe per place in steady state).
	f := func(loads []uint8) bool {
		e := newNet()
		for _, l := range loads {
			e.Evaluate(int(l % 101))
			n := e.Net()
			if n.TokenCount(e.Checks) != 1 || n.TokenCount(e.Provision) != 1 {
				return false
			}
			if n.TokenCount(e.Idle)+n.TokenCount(e.Stable)+n.TokenCount(e.Overload) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRampUpToHardwareBound(t *testing.T) {
	// Sustained overload grows allocation one core per control period up
	// to ntotal, mirroring Figure 7's ramp.
	e := newNet()
	for i := 0; i < 20; i++ {
		e.Evaluate(100)
	}
	if e.NAlloc() != 16 {
		t.Errorf("nalloc after sustained overload = %d, want 16", e.NAlloc())
	}
	// Sustained idleness shrinks back to one.
	for i := 0; i < 20; i++ {
		e.Evaluate(0)
	}
	if e.NAlloc() != 1 {
		t.Errorf("nalloc after sustained idle = %d, want 1", e.NAlloc())
	}
}

func TestOverloadSubNetMatrices(t *testing.T) {
	// Figure 9's incidence structure: t1 consumes from Checks and
	// Provision and feeds Overload; t5 consumes Overload and feeds Checks
	// and Provision.
	e := newNet()
	n := e.Net()
	pre, post := n.Pre(), n.Post()
	idx := func(p *Place) int { return p.idx }
	t1, t5 := e.T[1].idx, e.T[5].idx

	if pre.Cells[idx(e.Checks)][t1] != 1 || pre.Cells[idx(e.Provision)][t1] != 1 {
		t.Error("Pre: t1 must consume Checks and Provision")
	}
	if post.Cells[idx(e.Overload)][t1] != 1 {
		t.Error("Post: t1 must feed Overload")
	}
	if pre.Cells[idx(e.Overload)][t5] != 1 {
		t.Error("Pre: t5 must consume Overload")
	}
	if post.Cells[idx(e.Checks)][t5] != 1 || post.Cells[idx(e.Provision)][t5] != 1 {
		t.Error("Post: t5 must feed Checks and Provision")
	}
	// "The arc Overload-t6 is not set in the Pre matrix" refers to the
	// *fired* arcs in the example; structurally t6 exists as the bound.
	inc := n.Incidence()
	if inc.Cells[idx(e.Checks)][t1] != -1 || inc.Cells[idx(e.Overload)][t1] != 1 {
		t.Error("incidence signs wrong for t1")
	}
}

func TestStableSubNetMatrices(t *testing.T) {
	// Figure 11: t2 moves the token Checks -> Stable, t3 moves it back.
	e := newNet()
	inc := e.Net().Incidence()
	t2, t3 := e.T[2].idx, e.T[3].idx
	if inc.Cells[e.Checks.idx][t2] != -1 || inc.Cells[e.Stable.idx][t2] != 1 {
		t.Error("t2 incidence wrong")
	}
	if inc.Cells[e.Stable.idx][t3] != -1 || inc.Cells[e.Checks.idx][t3] != 1 {
		t.Error("t3 incidence wrong")
	}
	// Stable sub-net never touches Provision.
	if inc.Cells[e.Provision.idx][t2] != 0 || inc.Cells[e.Provision.idx][t3] != 0 {
		t.Error("stable sub-net must not touch Provision")
	}
}

func TestIdleSubNetMatrices(t *testing.T) {
	// Figure 10: t0 consumes Checks+Provision into Idle; t4 returns to
	// Checks+Provision.
	e := newNet()
	pre, post := e.Net().Pre(), e.Net().Post()
	t0, t4, t7 := e.T[0].idx, e.T[4].idx, e.T[7].idx
	if pre.Cells[e.Checks.idx][t0] != 1 || pre.Cells[e.Provision.idx][t0] != 1 {
		t.Error("t0 pre wrong")
	}
	if post.Cells[e.Idle.idx][t0] != 1 {
		t.Error("t0 post wrong")
	}
	for _, tr := range []int{t4, t7} {
		if pre.Cells[e.Idle.idx][tr] != 1 {
			t.Errorf("transition %d must consume Idle", tr)
		}
		if post.Cells[e.Checks.idx][tr] != 1 || post.Cells[e.Provision.idx][tr] != 1 {
			t.Errorf("transition %d must feed Checks and Provision", tr)
		}
	}
}

func TestSymbolicMatrices(t *testing.T) {
	e := newNet()
	sp := e.Net().SymbolicPre()
	if sp.Cells[e.Checks.idx][e.T[1].idx] != "u" {
		t.Errorf("symbolic Pre[Checks][t1] = %q, want u", sp.Cells[e.Checks.idx][e.T[1].idx])
	}
	if sp.Cells[e.Provision.idx][e.T[1].idx] != "nalloc" {
		t.Errorf("symbolic Pre[Provision][t1] = %q, want nalloc", sp.Cells[e.Provision.idx][e.T[1].idx])
	}
	if s := sp.String(); s == "" {
		t.Error("empty symbolic rendering")
	}
}

func TestNewElasticNetValidation(t *testing.T) {
	for _, tc := range []struct{ min, max, n int }{
		{70, 10, 16}, {10, 10, 16}, {10, 70, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewElasticNet(%d,%d,%d) did not panic", tc.min, tc.max, tc.n)
				}
			}()
			NewElasticNet(tc.min, tc.max, tc.n)
		}()
	}
}
