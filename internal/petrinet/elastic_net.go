package petrinet

import "fmt"

// elastic_net.go builds the concrete PrT net of Section III-B: places
// P = {Stable, Idle, Overload, Provision, Checks}, transitions t0..t7,
// and the rule-condition-action pipeline that decides core allocation.
//
// Tokens: Checks carries {u} — the current resource usage (CPU load % or a
// scaled HT/IMC ratio); Provision carries {nalloc} — the number of cores
// currently handed to the OS. The three performance-state places hold the
// in-flight token while a decision path completes.

// Decision is the action produced by one evaluation of the net.
type Decision int

const (
	// DecisionNone: the database is Stable (or at an allocation bound);
	// only monitoring is required.
	DecisionNone Decision = iota
	// DecisionAllocate: the Overload sub-net fired t1 -> t5; hand one more
	// core to the OS.
	DecisionAllocate
	// DecisionRelease: the Idle sub-net fired t0 -> t4; take one core back
	// from the OS.
	DecisionRelease
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecisionAllocate:
		return "allocate"
	case DecisionRelease:
		return "release"
	default:
		return "none"
	}
}

// Evaluation records one pass through the net: the decision, the fired
// path label in the paper's "t1-Overload-t5" style, and the state the
// database was classified into.
type Evaluation struct {
	Decision Decision
	// Label is the fired transition path, e.g. "t2-Stable-t3",
	// "t1-Overload-t5", "t0-Idle-t7".
	Label string
	// State is the performance-state place the token passed through.
	State string
	// U and NAlloc are the token values the evaluation used.
	U, NAlloc int
}

// ElasticNet is the paper's elastic multi-core allocation net.
type ElasticNet struct {
	net *Net

	// Places (exported for matrix inspection and tests).
	Checks, Provision, Idle, Stable, Overload *Place
	// Transitions t0..t7 indexed by number.
	T [8]*Transition

	thMin, thMax int
	nTotal       int
}

// NewElasticNet wires the net for a machine with nTotal cores and the
// given thresholds (the paper's rules of thumb: thmin=10, thmax=70 for CPU
// load). The initial marking is m0(Provision) = {nalloc: 1}: one core
// initially allocated (Section III-B).
func NewElasticNet(thMin, thMax, nTotal int) *ElasticNet {
	if thMin >= thMax {
		panic(fmt.Sprintf("petrinet: thMin (%d) must be below thMax (%d)", thMin, thMax))
	}
	if nTotal < 1 {
		panic("petrinet: nTotal must be at least 1")
	}
	e := &ElasticNet{net: New(), thMin: thMin, thMax: thMax, nTotal: nTotal}
	n := e.net

	e.Checks = n.AddPlace("Checks")
	e.Provision = n.AddPlace("Provision")
	e.Idle = n.AddPlace("Idle")
	e.Stable = n.AddPlace("Stable")
	e.Overload = n.AddPlace("Overload")

	carryBoth := func(b Binding) Token { return Token{"u": b["u"], "nalloc": b["nalloc"]} }
	toChecks := func(b Binding) Token { return Token{"u": b["u"]} }

	// Idle sub-net (Figure 10): low load releases a core, bounded below by
	// one core (t7).
	e.T[0] = n.AddTransition(&Transition{
		Name:      "t0",
		Guard:     func(b Binding) bool { return b["u"] <= thMin },
		GuardDesc: fmt.Sprintf("u <= %d", thMin),
		In:        []InArc{{Place: e.Checks, Vars: []string{"u"}}, {Place: e.Provision, Vars: []string{"nalloc"}}},
		Out:       []OutArc{{Place: e.Idle, Vars: []string{"u", "nalloc"}, Expr: carryBoth}},
	})
	e.T[4] = n.AddTransition(&Transition{
		Name:      "t4",
		Guard:     func(b Binding) bool { return b["nalloc"] > 1 },
		GuardDesc: "nalloc > 1",
		In:        []InArc{{Place: e.Idle, Vars: []string{"u", "nalloc"}}},
		Out: []OutArc{
			{Place: e.Provision, Vars: []string{"nalloc"}, Expr: func(b Binding) Token { return Token{"nalloc": b["nalloc"] - 1} }},
			{Place: e.Checks, Vars: []string{"u"}, Expr: toChecks},
		},
	})
	e.T[7] = n.AddTransition(&Transition{
		Name:      "t7",
		Guard:     func(b Binding) bool { return b["nalloc"] == 1 },
		GuardDesc: "nalloc == 1",
		In:        []InArc{{Place: e.Idle, Vars: []string{"u", "nalloc"}}},
		Out: []OutArc{
			{Place: e.Provision, Vars: []string{"nalloc"}, Expr: func(b Binding) Token { return Token{"nalloc": b["nalloc"]} }},
			{Place: e.Checks, Vars: []string{"u"}, Expr: toChecks},
		},
	})

	// Overload sub-net (Figure 9): high load allocates a core, bounded
	// above by the hardware (t6).
	e.T[1] = n.AddTransition(&Transition{
		Name:      "t1",
		Guard:     func(b Binding) bool { return b["u"] >= thMax },
		GuardDesc: fmt.Sprintf("u >= %d", thMax),
		In:        []InArc{{Place: e.Checks, Vars: []string{"u"}}, {Place: e.Provision, Vars: []string{"nalloc"}}},
		Out:       []OutArc{{Place: e.Overload, Vars: []string{"u", "nalloc"}, Expr: carryBoth}},
	})
	e.T[5] = n.AddTransition(&Transition{
		Name:      "t5",
		Guard:     func(b Binding) bool { return b["nalloc"] < nTotal },
		GuardDesc: fmt.Sprintf("nalloc < %d", nTotal),
		In:        []InArc{{Place: e.Overload, Vars: []string{"u", "nalloc"}}},
		Out: []OutArc{
			{Place: e.Provision, Vars: []string{"nalloc"}, Expr: func(b Binding) Token { return Token{"nalloc": b["nalloc"] + 1} }},
			{Place: e.Checks, Vars: []string{"u"}, Expr: toChecks},
		},
	})
	e.T[6] = n.AddTransition(&Transition{
		Name:      "t6",
		Guard:     func(b Binding) bool { return b["nalloc"] == nTotal },
		GuardDesc: fmt.Sprintf("nalloc == %d", nTotal),
		In:        []InArc{{Place: e.Overload, Vars: []string{"u", "nalloc"}}},
		Out: []OutArc{
			{Place: e.Provision, Vars: []string{"nalloc"}, Expr: func(b Binding) Token { return Token{"nalloc": b["nalloc"]} }},
			{Place: e.Checks, Vars: []string{"u"}, Expr: toChecks},
		},
	})

	// Stable sub-net (Figure 11): load within thresholds, monitoring only.
	e.T[2] = n.AddTransition(&Transition{
		Name:      "t2",
		Guard:     func(b Binding) bool { return b["u"] > thMin && b["u"] < thMax },
		GuardDesc: fmt.Sprintf("%d < u < %d", thMin, thMax),
		In:        []InArc{{Place: e.Checks, Vars: []string{"u"}}},
		Out:       []OutArc{{Place: e.Stable, Vars: []string{"u"}, Expr: toChecks}},
	})
	e.T[3] = n.AddTransition(&Transition{
		Name:      "t3",
		In:        []InArc{{Place: e.Stable, Vars: []string{"u"}}},
		Out:       []OutArc{{Place: e.Checks, Vars: []string{"u"}, Expr: toChecks}},
		GuardDesc: "true",
	})

	// Initial marking: one core allocated by default.
	n.Put(e.Provision, Token{"nalloc": 1})
	return e
}

// Net exposes the underlying PrT net (for matrices and inspection).
func (e *ElasticNet) Net() *Net { return e.net }

// Thresholds returns the configured (thmin, thmax).
func (e *ElasticNet) Thresholds() (min, max int) { return e.thMin, e.thMax }

// NAlloc returns the current number of allocated cores recorded in the
// Provision place.
func (e *ElasticNet) NAlloc() int {
	toks := e.net.Tokens(e.Provision)
	if len(toks) == 0 {
		return 0
	}
	return toks[0]["nalloc"]
}

// SetNAlloc overrides the Provision marking (used when the allocator could
// not honour a decision, keeping net state and reality in sync).
func (e *ElasticNet) SetNAlloc(n int) {
	e.net.Drain(e.Provision)
	e.net.Put(e.Provision, Token{"nalloc": n})
}

// Evaluate runs one control period: it injects the current load reading u
// into Checks and fires transitions until the token returns to Checks,
// producing the allocation decision. This is the rule-condition-action
// pipeline: rule = sub-net, condition = guard, action = decision.
func (e *ElasticNet) Evaluate(u int) Evaluation {
	// Inject the fresh reading, replacing any stale Checks token.
	e.net.Drain(e.Checks)
	e.net.Put(e.Checks, Token{"u": u})

	ev := Evaluation{U: u, NAlloc: e.NAlloc(), Decision: DecisionNone}
	var path []string
	// A complete path is at most two firings (state transition + action).
	for i := 0; i < 2; i++ {
		t, _ := e.net.Step()
		if t == nil {
			break
		}
		path = append(path, t.Name)
		switch t {
		case e.T[0]:
			ev.State = "Idle"
		case e.T[1]:
			ev.State = "Overload"
		case e.T[2]:
			ev.State = "Stable"
		case e.T[4]:
			ev.Decision = DecisionRelease
		case e.T[5]:
			ev.Decision = DecisionAllocate
		}
		// Stop once the token is back in Checks.
		if e.net.TokenCount(e.Checks) > 0 {
			break
		}
	}
	ev.NAlloc = e.NAlloc()
	ev.Label = pathLabel(path, ev.State)
	return ev
}

// pathLabel renders "t0-Idle-t4" style labels matching the paper's
// Figure 7 x-axis.
func pathLabel(path []string, state string) string {
	switch len(path) {
	case 0:
		return "quiescent"
	case 1:
		return path[0] + "-" + state
	default:
		return path[0] + "-" + state + "-" + path[1]
	}
}
