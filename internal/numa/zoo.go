package numa

import (
	"fmt"
	"strconv"
	"strings"
)

// zoo.go is the topology zoo: a family of machine shapes beyond the
// paper's single testbed, so the elastic mechanism's central claim —
// counter-driven allocation keeps the system NUMA-friendly — can be
// exercised where it is known to break down: across interconnect
// geometries with different hop-distance structure. Every constructor
// returns a fully populated, Validate-clean Topology; ParseTopology
// additionally accepts a textual spec so shapes can be defined at the
// command line.

// linkDistances computes the all-pairs hop matrix of an undirected link
// graph by breadth-first search. It panics if the graph is disconnected
// or a link endpoint is out of range — zoo constructors are static data,
// so a bad link set is a programming error, not an input error.
func linkDistances(n int, links [][2]int) [][]int {
	adj := make([][]int, n)
	for _, l := range links {
		if l[0] < 0 || l[0] >= n || l[1] < 0 || l[1] >= n || l[0] == l[1] {
			panic(fmt.Sprintf("numa: bad link %v in %d-node graph", l, n))
		}
		adj[l[0]] = append(adj[l[0]], l[1])
		adj[l[1]] = append(adj[l[1]], l[0])
	}
	dist := make([][]int, n)
	for src := 0; src < n; src++ {
		d := make([]int, n)
		for i := range d {
			d[i] = -1
		}
		d[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if d[w] < 0 {
					d[w] = d[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for i, h := range d {
			if h < 0 {
				panic(fmt.Sprintf("numa: node %d unreachable from %d", i, src))
			}
		}
		dist[src] = d
	}
	return dist
}

// zooBase returns the shared per-node parameters of the zoo: the
// Opteron testbed's clock, cache and memory-bank geometry, so shapes
// differ only in node count, core count and interconnect structure.
// The aggregate interconnect bandwidth scales with the link count at
// the testbed's 10.4 GB/s per HyperTransport link.
func zooBase(nodes, coresPerNode, nLinks int) *Topology {
	t := Opteron8387()
	t.NodeCount = nodes
	t.CoresPerNode = coresPerNode
	t.HTBandwidth = 10.4e9 * float64(nLinks)
	t.Distance = nil
	return t
}

// TwoSocket returns a dual-socket machine: two 8-core nodes joined by a
// single interconnect link — the common commodity server shape, and the
// degenerate case where every remote access costs exactly one hop.
func TwoSocket() *Topology {
	t := zooBase(2, 8, 1)
	t.Distance = [][]int{{0, 1}, {1, 0}}
	return t
}

// FourSocketRing returns four quad-core sockets on a ring interconnect:
// adjacent sockets one hop apart, opposite sockets two. Unlike the
// testbed's fully linked square, a ring has no one-hop path between
// diagonal neighbours, so placement that ignores hop distance pays for
// it on every diagonal transfer.
func FourSocketRing() *Topology {
	t := zooBase(4, 4, 4)
	t.Distance = linkDistances(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	return t
}

// eightTwistedLinks is the twisted-ladder interconnect of the real
// 8-socket Opteron machines (e.g. the Sun Fire X4600 class): two rails
// of four sockets, rungs between them, and the wrap-around links crossed
// — the "twist" that cuts the network diameter from three hops to two.
// Each socket uses exactly its three coherent HyperTransport links.
var eightTwistedLinks = [][2]int{
	{0, 1}, {2, 3}, {4, 5}, {6, 7}, // rungs
	{0, 2}, {2, 4}, {4, 6}, // rail A
	{1, 3}, {3, 5}, {5, 7}, // rail B
	{6, 1}, {7, 0}, // the twist: crossed wrap-around
}

// EightSocketTwisted returns the eight-socket twisted-ladder Opteron:
// eight quad-core nodes, 3-regular interconnect, diameter two. This is
// the machine class the paper's testbed topology (a four-socket square)
// scales up to in real deployments.
func EightSocketTwisted() *Topology {
	t := zooBase(8, 4, len(eightTwistedLinks))
	t.Distance = linkDistances(8, eightTwistedLinks)
	return t
}

// EPYCLike returns a chiplet-style machine: two packages of four dies
// each, every die a NUMA node with four cores and its own memory
// controller. Intra-package distances are asymmetric in the chiplet
// sense — dies adjacent on the package substrate are one hop, dies
// across its diagonal two — and cross-package traffic pays two hops to
// the die's socket-to-socket partner, three to everything else.
func EPYCLike() *Topology {
	const nodes = 8
	t := zooBase(nodes, 4, 12)
	d := make([][]int, nodes)
	for i := range d {
		d[i] = make([]int, nodes)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case i/4 == j/4: // same package: on-substrate fabric
				if (i-j+4)%4 == 2 {
					d[i][j] = 2 // diagonal die pair
				} else {
					d[i][j] = 1
				}
			case i%4 == j%4: // cross-package: direct partner link
				d[i][j] = 2
			default:
				d[i][j] = 3
			}
		}
	}
	t.Distance = d
	return t
}

// zooEntries maps zoo names to constructors, in presentation order.
// Lookup is case-insensitive over the canonical names and their aliases.
var zooEntries = []struct {
	name    string
	aliases []string
	build   func() *Topology
}{
	{"opteron", []string{"opteron8387"}, Opteron8387},
	{"2socket", []string{"twosocket"}, TwoSocket},
	{"4ring", []string{"foursocketring"}, FourSocketRing},
	{"8twisted", []string{"eightsockettwisted"}, EightSocketTwisted},
	{"epyc", []string{"epyclike"}, EPYCLike},
}

// ZooNames returns the canonical zoo names in presentation order.
func ZooNames() []string {
	out := make([]string, len(zooEntries))
	for i, e := range zooEntries {
		out[i] = e.name
	}
	return out
}

// Zoo returns a fresh instance of every zoo topology keyed by canonical
// name.
func Zoo() map[string]*Topology {
	out := make(map[string]*Topology, len(zooEntries))
	for _, e := range zooEntries {
		out[e.name] = e.build()
	}
	return out
}

// maxParsedCores bounds ParseTopology shapes to what sched.CPUSet (a
// 64-bit core mask) can represent.
const maxParsedCores = 63

// ParseTopology resolves a machine shape from a string: either a zoo
// name (see ZooNames; case-insensitive, "opteron8387"-style aliases
// accepted) or a spec of the form
//
//	nodes x cores [@ h01 h02 ... hops of the upper triangle]
//
// e.g. "2x8" (two 8-core nodes, uniform one-hop distances) or
// "4x4 @ 1 2 1 1 2 1" (explicit hop counts for the node pairs
// (0,1) (0,2) (0,3) (1,2) (1,3) (2,3), row-major upper triangle; the
// matrix is symmetric and zero-diagonal by construction). Parsed shapes
// inherit the testbed's clock, cache and memory-bank parameters and are
// limited to 63 cores, the cpuset mask width. The returned topology is
// Validate-clean.
func ParseTopology(spec string) (*Topology, error) {
	trimmed := strings.TrimSpace(spec)
	if trimmed == "" {
		return nil, fmt.Errorf("numa: empty topology spec (want a zoo name %v or \"nodes x cores [@ hops...]\")", ZooNames())
	}
	lower := strings.ToLower(trimmed)
	for _, e := range zooEntries {
		if lower == e.name {
			return e.build(), nil
		}
		for _, a := range e.aliases {
			if lower == a {
				return e.build(), nil
			}
		}
	}

	shape, hops, hasHops := strings.Cut(trimmed, "@")
	dims := strings.Split(strings.ReplaceAll(shape, " ", ""), "x")
	if len(dims) != 2 {
		return nil, fmt.Errorf("numa: topology spec %q: shape must be \"<nodes>x<cores>\"", spec)
	}
	nodes, err := strconv.Atoi(dims[0])
	if err != nil || nodes < 1 {
		return nil, fmt.Errorf("numa: topology spec %q: bad node count %q", spec, dims[0])
	}
	cores, err := strconv.Atoi(dims[1])
	if err != nil || cores < 1 {
		return nil, fmt.Errorf("numa: topology spec %q: bad cores-per-node %q", spec, dims[1])
	}
	if nodes*cores > maxParsedCores {
		return nil, fmt.Errorf("numa: topology spec %q: %d cores exceed the %d-core cpuset limit", spec, nodes*cores, maxParsedCores)
	}

	dist := make([][]int, nodes)
	for i := range dist {
		dist[i] = make([]int, nodes)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = 1
			}
		}
	}
	if hasHops {
		fields := strings.Fields(hops)
		want := nodes * (nodes - 1) / 2
		if len(fields) != want {
			return nil, fmt.Errorf("numa: topology spec %q: %d hop entries, want %d (upper triangle of %d nodes)", spec, len(fields), want, nodes)
		}
		k := 0
		for i := 0; i < nodes; i++ {
			for j := i + 1; j < nodes; j++ {
				h, err := strconv.Atoi(fields[k])
				if err != nil || h < 1 {
					return nil, fmt.Errorf("numa: topology spec %q: bad hop count %q for nodes (%d,%d)", spec, fields[k], i, j)
				}
				dist[i][j], dist[j][i] = h, h
				k++
			}
		}
	}

	// Per-node parameters from the testbed; link count estimated as one
	// link per one-hop pair so the aggregate bandwidth tracks the shape.
	oneHop := 0
	for i := 0; i < nodes; i++ {
		for j := i + 1; j < nodes; j++ {
			if dist[i][j] == 1 {
				oneHop++
			}
		}
	}
	if oneHop == 0 {
		oneHop = 1 // single-node machines have no links but still need bandwidth
	}
	t := zooBase(nodes, cores, oneHop)
	t.Distance = dist
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("numa: topology spec %q: %w", spec, err)
	}
	return t, nil
}

// Diameter returns the largest hop distance between any two nodes.
func (t *Topology) Diameter() int {
	max := 0
	for _, row := range t.Distance {
		for _, h := range row {
			if h > max {
				max = h
			}
		}
	}
	return max
}
