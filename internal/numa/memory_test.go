package numa

import (
	"testing"
	"testing/quick"
)

func TestAllocRegionsDisjoint(t *testing.T) {
	m := NewMemory(Opteron8387())
	a := m.Alloc(10)
	b := m.Alloc(5)
	for i := 0; i < b.Blocks; i++ {
		if a.Contains(b.Block(i)) {
			t.Fatalf("regions overlap at block %d", b.Block(i))
		}
	}
}

func TestFirstTouchHomesOnLocalNode(t *testing.T) {
	topo := Opteron8387()
	m := NewMemory(topo)
	r := m.Alloc(4)
	res := m.touch(r.Block(0), 2, 42)
	if !res.firstTouch {
		t.Error("first access should be a first touch")
	}
	if res.home != 2 {
		t.Errorf("home = %d, want 2 (node-local policy)", res.home)
	}
	if m.Home(r.Block(0)) != 2 {
		t.Errorf("Home = %d after touch, want 2", m.Home(r.Block(0)))
	}
}

func TestMinorFaultSituations(t *testing.T) {
	// Section II-B.1: minor faults occur at (1) data first touch and
	// (2) the first remote access to already-touched data.
	topo := Opteron8387()
	m := NewMemory(topo)
	r := m.Alloc(1)
	ppb := uint64(topo.PagesPerBlock())

	m.touch(r.Block(0), 0, 1) // first touch on node 0
	if got := m.MinorFaults()[0]; got != ppb {
		t.Errorf("faults[0] after first touch = %d, want %d", got, ppb)
	}

	res := m.touch(r.Block(0), 3, 2) // first remote access from node 3
	if !res.remoteFault {
		t.Error("first remote access should fault")
	}
	if res.home != 0 {
		t.Errorf("remote access home = %d, want 0", res.home)
	}
	if got := m.MinorFaults()[3]; got != ppb {
		t.Errorf("faults[3] after remote access = %d, want %d", got, ppb)
	}

	res = m.touch(r.Block(0), 3, 2) // repeated remote access: mapped, no fault
	if res.remoteFault || res.firstTouch {
		t.Error("repeated access should not fault")
	}
	if got := m.MinorFaults()[3]; got != ppb {
		t.Errorf("faults[3] after repeat = %d, want %d (unchanged)", got, ppb)
	}
}

func TestResidencyTracksOwnerPID(t *testing.T) {
	topo := Opteron8387()
	m := NewMemory(topo)
	r := m.Alloc(6)
	for i := 0; i < 4; i++ {
		m.touch(r.Block(i), 1, 77)
	}
	for i := 4; i < 6; i++ {
		m.touch(r.Block(i), 3, 77)
	}
	res := m.Residency([]int{77})
	if res[1] != 4 || res[3] != 2 {
		t.Errorf("residency = %v, want node1=4 node3=2", res)
	}
	if other := m.Residency([]int{99}); other[1] != 0 {
		t.Errorf("unrelated pid residency = %v, want zeros", other)
	}
}

func TestFreeRemovesResidencyAndReusesSpace(t *testing.T) {
	topo := Opteron8387()
	m := NewMemory(topo)
	r := m.Alloc(8)
	for i := 0; i < 8; i++ {
		m.touch(r.Block(i), 0, 5)
	}
	if got := m.Residency([]int{5})[0]; got != 8 {
		t.Fatalf("residency before free = %d, want 8", got)
	}
	m.Free(r)
	if got := m.Residency([]int{5})[0]; got != 0 {
		t.Errorf("residency after free = %d, want 0", got)
	}
	r2 := m.Alloc(8)
	if r2.Start != r.Start {
		t.Errorf("allocator did not reuse freed region: got start %d, want %d", r2.Start, r.Start)
	}
	if m.Home(r2.Block(0)) != NoNode {
		t.Error("reused block should be unhomed")
	}
}

func TestAllocOnPlacesEagerly(t *testing.T) {
	topo := Opteron8387()
	m := NewMemory(topo)
	r := m.AllocOn(3, 2, 9)
	for i := 0; i < 3; i++ {
		if m.Home(r.Block(i)) != 2 {
			t.Errorf("block %d home = %d, want 2", i, m.Home(r.Block(i)))
		}
	}
	if got := m.Residency([]int{9})[2]; got != 3 {
		t.Errorf("residency = %d, want 3", got)
	}
	// Eager placement is not a fault (no demand paging modelled for it).
	if got := m.MinorFaults()[2]; got != 0 {
		t.Errorf("faults = %d, want 0 for eager placement", got)
	}
}

func TestHomedBlocksConservation(t *testing.T) {
	// Property: sum of HomedBlocks equals the number of touched, live
	// blocks regardless of the access pattern.
	topo := Opteron8387()
	f := func(seed uint32) bool {
		m := NewMemory(topo)
		r := m.Alloc(32)
		rng := seed
		touched := make(map[BlockID]bool)
		for i := 0; i < 100; i++ {
			rng = rng*1664525 + 1013904223
			b := r.Block(int(rng % 32))
			node := NodeID((rng >> 8) % uint32(topo.NodeCount))
			m.touch(b, node, 1)
			touched[b] = true
		}
		total := 0
		for _, c := range m.HomedBlocks() {
			total += c
		}
		return total == len(touched)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHomeStableAfterFirstTouch(t *testing.T) {
	// Property: the home of a block never changes after first touch, no
	// matter which nodes access it afterwards.
	topo := Opteron8387()
	f := func(firstNode, nextNodes uint8) bool {
		m := NewMemory(topo)
		r := m.Alloc(1)
		first := NodeID(int(firstNode) % topo.NodeCount)
		m.touch(r.Block(0), first, 1)
		for k := 0; k < 4; k++ {
			n := NodeID((int(nextNodes) + k) % topo.NodeCount)
			if res := m.touch(r.Block(0), n, 2); res.home != first {
				return false
			}
		}
		return m.Home(r.Block(0)) == first
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocPanicsOnNonPositive(t *testing.T) {
	m := NewMemory(Opteron8387())
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) did not panic")
		}
	}()
	m.Alloc(0)
}
