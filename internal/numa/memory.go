package numa

import "fmt"

// BlockID identifies one placement block of simulated physical memory.
// Blocks are the granularity of homing (first touch), caching and traffic
// accounting; each block spans Topology.PagesPerBlock VM pages.
type BlockID uint64

// NoNode marks a block that has not been first-touched yet.
const NoNode NodeID = -1

// Region is a contiguous run of blocks returned by Memory.Alloc. It is the
// unit handed to storage layers (a BAT segment, an intermediate result).
type Region struct {
	Start  BlockID
	Blocks int
}

// Contains reports whether b falls inside the region.
func (r Region) Contains(b BlockID) bool {
	return b >= r.Start && b < r.Start+BlockID(r.Blocks)
}

// Block returns the i-th block of the region.
func (r Region) Block(i int) BlockID { return r.Start + BlockID(i) }

// Bytes returns the region size in bytes for the given topology.
func (r Region) Bytes(t *Topology) int { return r.Blocks * t.BlockBytes }

// blockInfo tracks the placement state of one block.
type blockInfo struct {
	home NodeID // node owning the backing frame; NoNode until first touch
	// mapped is a bitmask of nodes that have established a mapping to the
	// block. The first mapping from a node other than the home produces a
	// remote minor fault (Section II-B.1 of the paper).
	mapped uint32
	owner  int // PID that first touched the block (for residency stats)
}

// Memory is the machine's physical memory: an allocator plus the per-block
// placement table implementing the node-local first-touch policy.
type Memory struct {
	topo   *Topology
	blocks []blockInfo
	free   []Region // simple free list of released regions

	// residency[pid][node] counts blocks first-touched by pid homed on
	// node. This is the information the adaptive priority mode reads
	// (Section IV-B.2: "the number of pages per NUMA node is recorded in a
	// counter").
	residency map[int][]int

	// per-node counters, owned by Machine but updated here
	minorFaults []uint64
	homedBlocks []int
}

// NewMemory creates an empty memory for the topology.
func NewMemory(t *Topology) *Memory {
	return &Memory{
		topo:        t,
		residency:   make(map[int][]int),
		minorFaults: make([]uint64, t.NodeCount),
		homedBlocks: make([]int, t.NodeCount),
	}
}

// Alloc reserves a region of n blocks. Placement is lazy: each block is
// homed at first touch on the node of the touching core (the Linux
// node-local default policy the paper assumes).
func (m *Memory) Alloc(n int) Region {
	if n <= 0 {
		panic(fmt.Sprintf("numa: Alloc(%d): size must be positive", n))
	}
	// First-fit from the free list to bound growth in long simulations.
	for i, r := range m.free {
		if r.Blocks >= n {
			got := Region{Start: r.Start, Blocks: n}
			if r.Blocks == n {
				m.free = append(m.free[:i], m.free[i+1:]...)
			} else {
				m.free[i] = Region{Start: r.Start + BlockID(n), Blocks: r.Blocks - n}
			}
			m.reset(got)
			return got
		}
	}
	start := BlockID(len(m.blocks))
	for i := 0; i < n; i++ {
		m.blocks = append(m.blocks, blockInfo{home: NoNode})
	}
	return Region{Start: start, Blocks: n}
}

// HomeRegionOn eagerly homes every block of an allocated region on the
// given node under the owner pid, modelling loader first-touch (the
// database is loaded before the mechanism runs; each column lands on the
// node its loader thread occupied). No demand-paging faults are charged.
func (m *Memory) HomeRegionOn(r Region, node NodeID, pid int) {
	for i := 0; i < r.Blocks; i++ {
		b := &m.blocks[r.Block(i)]
		if b.home != NoNode {
			continue
		}
		b.home = node
		b.mapped = 1 << uint(node)
		b.owner = pid
		m.homedBlocks[node]++
		m.addResidency(pid, node, 1)
	}
}

// AllocOn reserves a region of n blocks eagerly homed on the given node,
// modelling an explicit numactl-style placement (used by the NUMA-aware
// engine variant and by tests).
func (m *Memory) AllocOn(n int, node NodeID, pid int) Region {
	r := m.Alloc(n)
	for i := 0; i < n; i++ {
		b := &m.blocks[r.Block(i)]
		b.home = node
		b.mapped = 1 << uint(node)
		b.owner = pid
		m.homedBlocks[node]++
		m.addResidency(pid, node, 1)
	}
	return r
}

// Free returns a region to the allocator and removes its residency
// contribution. Freeing intermediates between queries keeps the adaptive
// priority queue tracking the *live* address space.
func (m *Memory) Free(r Region) {
	for i := 0; i < r.Blocks; i++ {
		b := &m.blocks[r.Block(i)]
		if b.home != NoNode {
			m.homedBlocks[b.home]--
			m.addResidency(b.owner, b.home, -1)
		}
		*b = blockInfo{home: NoNode}
	}
	m.free = append(m.free, r)
}

func (m *Memory) reset(r Region) {
	for i := 0; i < r.Blocks; i++ {
		m.blocks[r.Block(i)] = blockInfo{home: NoNode}
	}
}

// touchResult describes what the placement layer observed for one access.
type touchResult struct {
	home        NodeID
	firstTouch  bool // block was homed by this access
	remoteFault bool // first mapping from a non-home node
}

// touch implements the first-touch policy and the two minor-fault
// situations of Section II-B.1: (1) the data first touch, homing the block
// on the local node, and (2) the first remote access to data already
// touched by another thread on a different node.
func (m *Memory) touch(b BlockID, node NodeID, pid int) touchResult {
	if int(b) >= len(m.blocks) {
		panic(fmt.Sprintf("numa: touch of unallocated block %d", b))
	}
	info := &m.blocks[b]
	bit := uint32(1) << uint(node)
	if info.home == NoNode {
		info.home = node
		info.mapped = bit
		info.owner = pid
		m.homedBlocks[node]++
		m.minorFaults[node] += uint64(m.topo.PagesPerBlock())
		m.addResidency(pid, node, 1)
		return touchResult{home: node, firstTouch: true}
	}
	if info.mapped&bit == 0 {
		info.mapped |= bit
		m.minorFaults[node] += uint64(m.topo.PagesPerBlock())
		return touchResult{home: info.home, remoteFault: true}
	}
	return touchResult{home: info.home}
}

// Home returns the node owning the block, or NoNode if untouched.
func (m *Memory) Home(b BlockID) NodeID {
	if int(b) >= len(m.blocks) {
		return NoNode
	}
	return m.blocks[b].home
}

func (m *Memory) addResidency(pid int, node NodeID, delta int) {
	counts, ok := m.residency[pid]
	if !ok {
		counts = make([]int, m.topo.NodeCount)
		m.residency[pid] = counts
	}
	counts[node] += delta
}

// Residency returns, for the given set of PIDs, the number of live blocks
// homed on each node. This is the per-node page counter that feeds the
// adaptive mode's priority queue.
func (m *Memory) Residency(pids []int) []int {
	out := make([]int, m.topo.NodeCount)
	for _, pid := range pids {
		if counts, ok := m.residency[pid]; ok {
			for n, c := range counts {
				out[n] += c
			}
		}
	}
	return out
}

// HomedBlocks returns the number of live blocks homed on each node,
// regardless of owner.
func (m *Memory) HomedBlocks() []int {
	out := make([]int, len(m.homedBlocks))
	copy(out, m.homedBlocks)
	return out
}

// MinorFaults returns the cumulative minor page-fault count per node.
func (m *Memory) MinorFaults() []uint64 {
	out := make([]uint64, len(m.minorFaults))
	copy(out, m.minorFaults)
	return out
}

// TotalBlocks returns the number of blocks ever allocated (address-space
// high-water mark).
func (m *Memory) TotalBlocks() int { return len(m.blocks) }
