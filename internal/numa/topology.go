// Package numa models a cache-coherent Non-Uniform Memory Access machine:
// its topology (nodes, cores, interconnect links), its memory banks with
// page-granular first-touch placement, its per-node shared last-level
// caches, and the full hardware-counter surface (L3 misses, HyperTransport
// traffic, integrated-memory-controller traffic, minor page faults,
// invalidations) that the elastic allocation mechanism consumes.
//
// The model is deterministic and counter-accurate rather than cycle-exact:
// it reproduces the observable surface of the AMD Opteron 8387 testbed used
// by Dominico et al. (ICDE 2018) — the quantities their mechanism reads via
// likwid, mpstat and /proc — so the identical control loop can be exercised
// without physical hardware.
package numa

import (
	"fmt"
	"strings"
)

// NodeID identifies a NUMA node (socket).
type NodeID int

// CoreID identifies a physical core, numbered 0..TotalCores-1 across all
// nodes. Core c belongs to node c / CoresPerNode in the default layout
// core(i, j) = d*i + j used throughout the paper (Section IV-B.1).
type CoreID int

// Topology describes the static shape of the machine: node and core counts,
// cache geometry, memory page size, interconnect bandwidths and the
// inter-node hop-distance matrix.
type Topology struct {
	// NodeCount is the number of NUMA nodes (sockets).
	NodeCount int
	// CoresPerNode is the number of cores attached to each node.
	CoresPerNode int
	// ClockHz is the core clock used to convert cycles to seconds.
	ClockHz float64

	// CacheLineBytes is the coherence granularity (typically 64).
	CacheLineBytes int
	// PageBytes is the virtual-memory page size used for minor-fault
	// accounting (typically 4096).
	PageBytes int
	// BlockBytes is the placement and cache-modelling granularity. Memory
	// is allocated, homed and cached in blocks of this size. Must be a
	// multiple of PageBytes.
	BlockBytes int

	// L1Bytes, L2Bytes are the per-core private cache sizes.
	L1Bytes, L2Bytes int
	// L3Bytes is the per-node shared cache size.
	L3Bytes int

	// MemBandwidth is the per-node local memory (IMC) bandwidth in
	// bytes/second.
	MemBandwidth float64
	// HTBandwidth is the aggregate interconnect bandwidth in bytes/second
	// across all links (the paper's 41.6 GB/s maximum aggregate).
	HTBandwidth float64

	// Distance[i][j] is the hop count between nodes i and j (0 on the
	// diagonal). Remote access latency grows with distance.
	Distance [][]int
}

// Opteron8387 returns the topology of the paper's testbed: four NUMA nodes,
// each a Quad-Core AMD Opteron 8387 at 2.8 GHz with 64 KB L1, 512 KB L2,
// 6 MB shared L3, DDR-2 memory banks, interconnected by HyperTransport 3.x
// links with 41.6 GB/s maximum aggregate bandwidth (paper Figure 2).
func Opteron8387() *Topology {
	return &Topology{
		NodeCount:    4,
		CoresPerNode: 4,
		ClockHz:      2.8e9,

		CacheLineBytes: 64,
		PageBytes:      4096,
		BlockBytes:     16 * 1024,

		L1Bytes: 64 * 1024,
		L2Bytes: 512 * 1024,
		L3Bytes: 6 * 1024 * 1024,

		MemBandwidth: 8.0e9,
		HTBandwidth:  41.6e9,

		// Figure 2: square of sockets; adjacent sockets one hop apart,
		// diagonal sockets two hops.
		Distance: [][]int{
			{0, 1, 1, 2},
			{1, 0, 2, 1},
			{1, 2, 0, 1},
			{2, 1, 1, 0},
		},
	}
}

// Validate checks structural invariants of the topology.
func (t *Topology) Validate() error {
	switch {
	case t.NodeCount <= 0:
		return fmt.Errorf("numa: NodeCount must be positive, got %d", t.NodeCount)
	case t.CoresPerNode <= 0:
		return fmt.Errorf("numa: CoresPerNode must be positive, got %d", t.CoresPerNode)
	case t.ClockHz <= 0:
		return fmt.Errorf("numa: ClockHz must be positive, got %g", t.ClockHz)
	case t.CacheLineBytes <= 0:
		return fmt.Errorf("numa: CacheLineBytes must be positive, got %d", t.CacheLineBytes)
	case t.PageBytes <= 0:
		return fmt.Errorf("numa: PageBytes must be positive, got %d", t.PageBytes)
	case t.BlockBytes <= 0 || t.BlockBytes%t.PageBytes != 0:
		return fmt.Errorf("numa: BlockBytes (%d) must be a positive multiple of PageBytes (%d)", t.BlockBytes, t.PageBytes)
	case t.L3Bytes < t.BlockBytes:
		return fmt.Errorf("numa: L3Bytes (%d) must hold at least one block (%d)", t.L3Bytes, t.BlockBytes)
	case t.MemBandwidth <= 0 || t.HTBandwidth <= 0:
		return fmt.Errorf("numa: bandwidths must be positive")
	}
	if len(t.Distance) != t.NodeCount {
		return fmt.Errorf("numa: Distance matrix has %d rows, want %d", len(t.Distance), t.NodeCount)
	}
	for i, row := range t.Distance {
		if len(row) != t.NodeCount {
			return fmt.Errorf("numa: Distance row %d has %d entries, want %d", i, len(row), t.NodeCount)
		}
		if row[i] != 0 {
			return fmt.Errorf("numa: Distance[%d][%d] must be 0, got %d", i, i, row[i])
		}
		for j, d := range row {
			if d < 0 {
				return fmt.Errorf("numa: Distance[%d][%d] negative", i, j)
			}
			if t.Distance[j][i] != d {
				return fmt.Errorf("numa: Distance not symmetric at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// TotalCores returns the number of cores in the machine.
func (t *Topology) TotalCores() int { return t.NodeCount * t.CoresPerNode }

// NodeOf returns the node that core c belongs to.
func (t *Topology) NodeOf(c CoreID) NodeID { return NodeID(int(c) / t.CoresPerNode) }

// CoreOf returns the j-th core of node n, following the paper's allocation
// mode function core(i, j) = d*i + j (Section IV-B.1).
func (t *Topology) CoreOf(n NodeID, j int) CoreID {
	return CoreID(int(n)*t.CoresPerNode + j)
}

// Cores returns the cores belonging to node n in ascending order.
func (t *Topology) Cores(n NodeID) []CoreID {
	cs := make([]CoreID, t.CoresPerNode)
	for j := range cs {
		cs[j] = t.CoreOf(n, j)
	}
	return cs
}

// Hops returns the interconnect hop distance between two nodes.
func (t *Topology) Hops(a, b NodeID) int { return t.Distance[a][b] }

// PagesPerBlock returns how many VM pages one placement block spans.
func (t *Topology) PagesPerBlock() int { return t.BlockBytes / t.PageBytes }

// LinesPerBlock returns how many cache lines one placement block spans.
func (t *Topology) LinesPerBlock() int { return t.BlockBytes / t.CacheLineBytes }

// CyclesToSeconds converts a cycle count to wall-clock seconds at the
// machine's core frequency.
func (t *Topology) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / t.ClockHz
}

// SecondsToCycles converts seconds to cycles at the core frequency.
func (t *Topology) SecondsToCycles(s float64) uint64 {
	return uint64(s * t.ClockHz)
}

// String returns a short human-readable summary of the topology.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d nodes x %d cores @ %.1f GHz, L3 %d MiB/node, HT %.1f GB/s",
		t.NodeCount, t.CoresPerNode, t.ClockHz/1e9,
		t.L3Bytes/(1024*1024), t.HTBandwidth/1e9)
	return b.String()
}
