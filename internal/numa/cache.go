package numa

// cache.go models the cache hierarchy at block granularity: a small
// per-core private cache standing in for L1+L2, and a per-node shared L3
// implemented as an LRU over placement blocks. The model captures the
// effects the paper measures — capacity/conflict misses when many private
// working sets share one node's L3, coherence invalidations when writers
// touch blocks cached remotely, and the hit-rate benefit of co-locating
// threads that share data.

// lruCache is a fixed-capacity LRU set of BlockIDs with O(1) lookup,
// insert and eviction (intrusive doubly-linked list over a map).
type lruCache struct {
	capacity int
	entries  map[BlockID]*lruEntry
	head     *lruEntry // most recently used
	tail     *lruEntry // least recently used
}

type lruEntry struct {
	block      BlockID
	prev, next *lruEntry
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		entries:  make(map[BlockID]*lruEntry, capacity),
	}
}

// Contains reports whether the block is resident without promoting it.
func (c *lruCache) Contains(b BlockID) bool {
	_, ok := c.entries[b]
	return ok
}

// Touch promotes the block to most-recently-used, inserting it if absent.
// It returns whether the block was already resident and, when an insertion
// evicted an older block, that victim.
func (c *lruCache) Touch(b BlockID) (hit bool, evicted BlockID, didEvict bool) {
	if e, ok := c.entries[b]; ok {
		c.moveToFront(e)
		return true, 0, false
	}
	e := &lruEntry{block: b}
	c.entries[b] = e
	c.pushFront(e)
	if len(c.entries) > c.capacity {
		victim := c.tail
		c.remove(victim)
		delete(c.entries, victim.block)
		return false, victim.block, true
	}
	return false, 0, false
}

// Invalidate drops the block if resident, returning whether it was.
func (c *lruCache) Invalidate(b BlockID) bool {
	e, ok := c.entries[b]
	if !ok {
		return false
	}
	c.remove(e)
	delete(c.entries, b)
	return true
}

// Len returns the number of resident blocks.
func (c *lruCache) Len() int { return len(c.entries) }

// Clear empties the cache (used when a thread migrates away and its
// private-cache affinity is lost).
func (c *lruCache) Clear() {
	c.entries = make(map[BlockID]*lruEntry, c.capacity)
	c.head, c.tail = nil, nil
}

func (c *lruCache) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) remove(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *lruCache) moveToFront(e *lruEntry) {
	if c.head == e {
		return
	}
	c.remove(e)
	c.pushFront(e)
}

// cacheHierarchy bundles the per-core private caches and per-node shared
// L3s of the whole machine.
type cacheHierarchy struct {
	topo    *Topology
	private []*lruCache // indexed by CoreID; stands in for L1+L2
	shared  []*lruCache // indexed by NodeID; the L3
}

func newCacheHierarchy(t *Topology) *cacheHierarchy {
	h := &cacheHierarchy{
		topo:    t,
		private: make([]*lruCache, t.TotalCores()),
		shared:  make([]*lruCache, t.NodeCount),
	}
	privCap := (t.L1Bytes + t.L2Bytes) / t.BlockBytes
	if privCap < 1 {
		privCap = 1
	}
	for c := range h.private {
		h.private[c] = newLRUCache(privCap)
	}
	for n := range h.shared {
		h.shared[n] = newLRUCache(t.L3Bytes / t.BlockBytes)
	}
	return h
}

// lookupLevel identifies where an access was satisfied.
type lookupLevel int

const (
	levelPrivate lookupLevel = iota // L1/L2 hit
	levelL3                         // shared-cache hit
	levelMemory                     // L3 miss, served from DRAM
)

// access walks the hierarchy for one block access on the given core,
// filling caches on the way, and returns the level that satisfied it.
func (h *cacheHierarchy) access(core CoreID, b BlockID) lookupLevel {
	node := h.topo.NodeOf(core)
	if hit, _, _ := h.private[core].Touch(b); hit {
		// Keep L3 inclusive of private caches so shared readers on the
		// same node observe the block as resident.
		h.shared[node].Touch(b)
		return levelPrivate
	}
	if hit, _, _ := h.shared[node].Touch(b); hit {
		return levelL3
	}
	return levelMemory
}

// invalidateRemote removes the block from every cache outside writerNode,
// returning how many node-level copies were invalidated. This is the
// coherence cost a write imposes when readers on other sockets hold the
// block (the paper's "cache invalidations between the threads").
func (h *cacheHierarchy) invalidateRemote(writerCore CoreID, b BlockID) int {
	writerNode := h.topo.NodeOf(writerCore)
	invalidated := 0
	for n := 0; n < h.topo.NodeCount; n++ {
		if NodeID(n) == writerNode {
			continue
		}
		if h.shared[n].Invalidate(b) {
			invalidated++
		}
		for _, c := range h.topo.Cores(NodeID(n)) {
			h.private[c].Invalidate(b)
		}
	}
	for _, c := range h.topo.Cores(writerNode) {
		if c != writerCore {
			h.private[c].Invalidate(b)
		}
	}
	return invalidated
}

// dropCore clears a core's private cache, modelling lost affinity after a
// thread migration replaced its working set.
func (h *cacheHierarchy) dropCore(core CoreID) { h.private[core].Clear() }

// l3Resident reports whether the block is in the node's L3 (for tests).
func (h *cacheHierarchy) l3Resident(n NodeID, b BlockID) bool {
	return h.shared[n].Contains(b)
}
