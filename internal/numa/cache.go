package numa

import "elasticore/internal/hashmix"

// cache.go models the cache hierarchy at block granularity: a small
// per-core private cache standing in for L1+L2, and a per-node shared L3
// implemented as an LRU over placement blocks. The model captures the
// effects the paper measures — capacity/conflict misses when many private
// working sets share one node's L3, coherence invalidations when writers
// touch blocks cached remotely, and the hit-rate benefit of co-locating
// threads that share data.

// noEntry marks an empty link in the LRU arena.
const noEntry int32 = -1

// mix64 spreads BlockIDs over the residency table.
func mix64(x uint64) uint64 { return hashmix.Mix64(x) }

// blockTable maps BlockID → arena index with fixed-size open addressing
// (linear probing, backward-shift deletion). An lruCache holds at most
// capacity+1 entries, so the table is sized once at ≤50% load and never
// grows; every operation is a short flat-array probe, far cheaper than a
// Go map on the access hot path.
type blockTable struct {
	keys []BlockID
	vals []int32
	used []bool
	mask uint64
	n    int
}

func newBlockTable(capacity int) *blockTable {
	size := 4
	for size < 2*(capacity+1) {
		size *= 2
	}
	return &blockTable{
		keys: make([]BlockID, size),
		vals: make([]int32, size),
		used: make([]bool, size),
		mask: uint64(size - 1),
	}
}

func (t *blockTable) get(b BlockID) (int32, bool) {
	i := mix64(uint64(b)) & t.mask
	for t.used[i] {
		if t.keys[i] == b {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
	return 0, false
}

// put inserts a key that is not present.
func (t *blockTable) put(b BlockID, v int32) {
	i := mix64(uint64(b)) & t.mask
	for t.used[i] {
		i = (i + 1) & t.mask
	}
	t.used[i] = true
	t.keys[i] = b
	t.vals[i] = v
	t.n++
}

// del removes the key if present, backward-shifting the probe chain so
// lookups stay correct without tombstones.
func (t *blockTable) del(b BlockID) bool {
	i := mix64(uint64(b)) & t.mask
	for {
		if !t.used[i] {
			return false
		}
		if t.keys[i] == b {
			break
		}
		i = (i + 1) & t.mask
	}
	j := i
	for {
		j = (j + 1) & t.mask
		if !t.used[j] {
			break
		}
		h := mix64(uint64(t.keys[j])) & t.mask
		// Move j back into the hole unless it sits in its own probe
		// window between the hole (exclusive) and j.
		if (j-h)&t.mask >= (j-i)&t.mask {
			t.keys[i] = t.keys[j]
			t.vals[i] = t.vals[j]
			i = j
		}
	}
	t.used[i] = false
	t.n--
	return true
}

func (t *blockTable) clear() {
	clear(t.used)
	t.n = 0
}

// lruCache is a fixed-capacity LRU set of BlockIDs with O(1) lookup,
// insert and eviction. Entries live in a slice-backed arena linked by
// indices and recycled through a free list, indexed by a flat
// open-addressing table, so steady-state churn (every simulated memory
// access touches two caches) allocates nothing and hashes nothing heavier
// than one multiply-shift round.
type lruCache struct {
	capacity int
	idx      *blockTable
	ent      []lruEntry
	free     []int32
	head     int32 // most recently used
	tail     int32 // least recently used
}

type lruEntry struct {
	block      BlockID
	prev, next int32
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		idx:      newBlockTable(capacity),
		ent:      make([]lruEntry, 0, capacity+1),
		head:     noEntry,
		tail:     noEntry,
	}
}

// Contains reports whether the block is resident without promoting it.
func (c *lruCache) Contains(b BlockID) bool {
	_, ok := c.idx.get(b)
	return ok
}

// Touch promotes the block to most-recently-used, inserting it if absent.
// It returns whether the block was already resident and, when an insertion
// evicted an older block, that victim.
func (c *lruCache) Touch(b BlockID) (hit bool, evicted BlockID, didEvict bool) {
	if e, ok := c.idx.get(b); ok {
		c.moveToFront(e)
		return true, 0, false
	}
	e := c.alloc(b)
	c.idx.put(b, e)
	c.pushFront(e)
	if c.idx.n > c.capacity {
		victim := c.tail
		vb := c.ent[victim].block
		c.remove(victim)
		c.idx.del(vb)
		c.free = append(c.free, victim)
		return false, vb, true
	}
	return false, 0, false
}

// Invalidate drops the block if resident, returning whether it was.
func (c *lruCache) Invalidate(b BlockID) bool {
	e, ok := c.idx.get(b)
	if !ok {
		return false
	}
	c.remove(e)
	c.idx.del(b)
	c.free = append(c.free, e)
	return true
}

// Len returns the number of resident blocks.
func (c *lruCache) Len() int { return c.idx.n }

// Clear empties the cache (used when a thread migrates away and its
// working set is lost), keeping the arena and table storage.
func (c *lruCache) Clear() {
	c.idx.clear()
	c.free = c.free[:0]
	for i := range c.ent {
		c.free = append(c.free, int32(i))
	}
	c.head, c.tail = noEntry, noEntry
}

// alloc takes an entry from the free list, extending the arena when none
// is available.
func (c *lruCache) alloc(b BlockID) int32 {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free = c.free[:n-1]
		c.ent[e] = lruEntry{block: b, prev: noEntry, next: noEntry}
		return e
	}
	c.ent = append(c.ent, lruEntry{block: b, prev: noEntry, next: noEntry})
	return int32(len(c.ent) - 1)
}

func (c *lruCache) pushFront(e int32) {
	c.ent[e].prev = noEntry
	c.ent[e].next = c.head
	if c.head != noEntry {
		c.ent[c.head].prev = e
	}
	c.head = e
	if c.tail == noEntry {
		c.tail = e
	}
}

func (c *lruCache) remove(e int32) {
	prev, next := c.ent[e].prev, c.ent[e].next
	if prev != noEntry {
		c.ent[prev].next = next
	} else {
		c.head = next
	}
	if next != noEntry {
		c.ent[next].prev = prev
	} else {
		c.tail = prev
	}
	c.ent[e].prev, c.ent[e].next = noEntry, noEntry
}

func (c *lruCache) moveToFront(e int32) {
	if c.head == e {
		return
	}
	c.remove(e)
	c.pushFront(e)
}

// cacheHierarchy bundles the per-core private caches and per-node shared
// L3s of the whole machine.
type cacheHierarchy struct {
	topo    *Topology
	private []*lruCache // indexed by CoreID; stands in for L1+L2
	shared  []*lruCache // indexed by NodeID; the L3
}

func newCacheHierarchy(t *Topology) *cacheHierarchy {
	h := &cacheHierarchy{
		topo:    t,
		private: make([]*lruCache, t.TotalCores()),
		shared:  make([]*lruCache, t.NodeCount),
	}
	privCap := (t.L1Bytes + t.L2Bytes) / t.BlockBytes
	if privCap < 1 {
		privCap = 1
	}
	for c := range h.private {
		h.private[c] = newLRUCache(privCap)
	}
	for n := range h.shared {
		h.shared[n] = newLRUCache(t.L3Bytes / t.BlockBytes)
	}
	return h
}

// lookupLevel identifies where an access was satisfied.
type lookupLevel int

const (
	levelPrivate lookupLevel = iota // L1/L2 hit
	levelL3                         // shared-cache hit
	levelMemory                     // L3 miss, served from DRAM
)

// access walks the hierarchy for one block access on the given core,
// filling caches on the way, and returns the level that satisfied it.
func (h *cacheHierarchy) access(core CoreID, b BlockID) lookupLevel {
	node := h.topo.NodeOf(core)
	if hit, _, _ := h.private[core].Touch(b); hit {
		// Keep L3 inclusive of private caches so shared readers on the
		// same node observe the block as resident.
		h.shared[node].Touch(b)
		return levelPrivate
	}
	if hit, _, _ := h.shared[node].Touch(b); hit {
		return levelL3
	}
	return levelMemory
}

// invalidateRemote removes the block from every cache outside writerNode,
// returning how many node-level copies were invalidated. This is the
// coherence cost a write imposes when readers on other sockets hold the
// block (the paper's "cache invalidations between the threads").
func (h *cacheHierarchy) invalidateRemote(writerCore CoreID, b BlockID) int {
	writerNode := h.topo.NodeOf(writerCore)
	invalidated := 0
	for n := 0; n < h.topo.NodeCount; n++ {
		if NodeID(n) == writerNode {
			continue
		}
		if h.shared[n].Invalidate(b) {
			invalidated++
		}
		for _, c := range h.topo.Cores(NodeID(n)) {
			h.private[c].Invalidate(b)
		}
	}
	for _, c := range h.topo.Cores(writerNode) {
		if c != writerCore {
			h.private[c].Invalidate(b)
		}
	}
	return invalidated
}

// dropCore clears a core's private cache, modelling lost affinity after a
// thread migration replaced its working set.
func (h *cacheHierarchy) dropCore(core CoreID) { h.private[core].Clear() }

// l3Resident reports whether the block is in the node's L3 (for tests).
func (h *cacheHierarchy) l3Resident(n NodeID, b BlockID) bool {
	return h.shared[n].Contains(b)
}
