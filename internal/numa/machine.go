package numa

import (
	"fmt"
	"sync/atomic"
)

// simCycles accumulates virtual cycles advanced by every Machine in the
// process. The bench harness reads it to report simulated-cycles/second
// without threading a handle through every experiment.
var simCycles atomic.Uint64

// SimulatedCycles returns the total virtual cycles advanced by all
// machines since process start (monotonic; read deltas around a workload).
func SimulatedCycles() uint64 { return simCycles.Load() }

// CostModel holds the per-event cycle costs used to charge memory accesses.
// The defaults approximate the relative latencies of the Opteron 8387
// memory hierarchy; the mechanism's behaviour depends on the *ratios*
// (remote vs local, miss vs hit), not the absolute values.
type CostModel struct {
	// Per cache line (CacheLineBytes), in cycles.
	PrivateHit   uint64 // L1/L2 hit
	L3Hit        uint64 // shared-cache hit
	LocalMemory  uint64 // L3 miss served by the local IMC
	RemoteMemory uint64 // L3 miss served by a remote IMC, first hop
	PerHop       uint64 // additional cycles per extra interconnect hop
	Invalidation uint64 // per invalidated remote copy, charged to the writer
}

// DefaultCostModel returns latencies in line with published Opteron
// measurements: L3 ~ 40 cycles, local DRAM ~ 200 cycles, remote DRAM
// 1.9-2.6x local depending on hop count (HyperTransport 3.x probe +
// transfer), coherence invalidations ~ an L2-miss round trip.
func DefaultCostModel() CostModel {
	return CostModel{
		PrivateHit:   4,
		L3Hit:        40,
		LocalMemory:  200,
		RemoteMemory: 440,
		PerHop:       140,
		Invalidation: 80,
	}
}

// Access describes one memory operation issued by executing code: Bytes
// bytes read or written within a single placement block.
type Access struct {
	Block BlockID
	Bytes int
	Write bool
	// PID attributes first-touch residency (for the adaptive priority
	// queue); zero means anonymous.
	PID int
}

// Cost is the outcome of charging an access.
type Cost struct {
	Cycles  uint64
	HTBytes uint64 // interconnect bytes generated
}

// Machine is the complete NUMA hardware model: topology, memory with
// first-touch placement, cache hierarchy, interconnect traffic accounting
// with bandwidth-driven congestion, and the counter surface.
type Machine struct {
	topo   *Topology
	mem    *Memory
	caches *cacheHierarchy
	cost   CostModel

	now   uint64 // virtual time, cycles
	nodes []NodeCounters
	cores []CoreCounters

	// Congestion model: interconnect and per-node memory demand within the
	// current accounting window stretch subsequent access costs. factor >= 1.
	window struct {
		htBytes  uint64
		imcBytes []uint64
		cycles   uint64
	}
	htFactor  float64
	imcFactor []float64

	// naive forces AccessRange through the public per-block Access path,
	// reproducing the pre-bulk-charging cost profile for equivalence
	// benches. Results are identical either way.
	naive bool
	memo  costMemo
}

// costMemo caches the cycle cost of a full-block DRAM access per home node
// within one AccessRange call. The congestion factors are constant between
// AdvanceTime calls — and no time passes inside a range charge — so
// reusing the computed value is exact; the memo is reset at every
// AccessRange entry.
type costMemo struct {
	lines  uint64
	local  []uint64 // per home node; ^uint64(0) = unset
	remote []uint64
}

func (mm *costMemo) reset(lines uint64, nodes int) {
	if len(mm.local) != nodes {
		mm.local = make([]uint64, nodes)
		mm.remote = make([]uint64, nodes)
	}
	mm.lines = lines
	for i := range mm.local {
		mm.local[i] = ^uint64(0)
		mm.remote[i] = ^uint64(0)
	}
}

// NewMachine builds a machine for the topology with the default cost model.
// It panics if the topology is invalid, since every other subsystem depends
// on it.
func NewMachine(t *Topology) *Machine {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		topo:      t,
		mem:       NewMemory(t),
		caches:    newCacheHierarchy(t),
		cost:      DefaultCostModel(),
		nodes:     make([]NodeCounters, t.NodeCount),
		cores:     make([]CoreCounters, t.TotalCores()),
		htFactor:  1,
		imcFactor: make([]float64, t.NodeCount),
	}
	m.window.imcBytes = make([]uint64, t.NodeCount)
	for i := range m.imcFactor {
		m.imcFactor[i] = 1
	}
	return m
}

// SetCostModel overrides the access cost model (for ablation benches).
func (m *Machine) SetCostModel(c CostModel) { m.cost = c }

// Topology returns the machine's static shape.
func (m *Machine) Topology() *Topology { return m.topo }

// Memory exposes the placement layer (allocation is done through it).
func (m *Machine) Memory() *Memory { return m.mem }

// Now returns the current virtual time in cycles.
func (m *Machine) Now() uint64 { return m.now }

// NowSeconds returns the current virtual time in seconds.
func (m *Machine) NowSeconds() float64 { return m.topo.CyclesToSeconds(m.now) }

// Access charges one memory operation executed on the given core and
// returns its cost. It updates the placement table (first touch), the cache
// hierarchy, and every affected counter.
func (m *Machine) Access(core CoreID, a Access) Cost {
	if a.Bytes <= 0 {
		return Cost{}
	}
	if a.Bytes > m.topo.BlockBytes {
		panic(fmt.Sprintf("numa: access of %d bytes exceeds block size %d", a.Bytes, m.topo.BlockBytes))
	}
	return m.accessBlock(core, m.topo.NodeOf(core), a.Block, a.Bytes, a.Write, a.PID, nil)
}

// accessBlock is the shared charging body behind Access and AccessRange.
// memo, when non-nil, caches the DRAM cost for full-block accesses; the
// arithmetic is identical with or without it.
func (m *Machine) accessBlock(core CoreID, node NodeID, block BlockID, byteCount int, write bool, pid int, memo *costMemo) Cost {
	lines := uint64((byteCount + m.topo.CacheLineBytes - 1) / m.topo.CacheLineBytes)

	tr := m.mem.touch(block, node, pid)
	m.nodes[tr.home].DataTouches++
	level := m.caches.access(core, block)

	var c Cost
	switch level {
	case levelPrivate:
		m.nodes[node].L3Hits += lines
		c.Cycles = lines * m.cost.PrivateHit
	case levelL3:
		m.nodes[node].L3Hits += lines
		c.Cycles = lines * m.cost.L3Hit
	case levelMemory:
		m.nodes[node].L3Misses += lines
		bytes := lines * uint64(m.topo.CacheLineBytes)
		home := tr.home
		m.nodes[home].IMCBytes += bytes
		m.window.imcBytes[home] += bytes
		if home == node {
			if memo != nil && lines == memo.lines {
				if memo.local[home] == ^uint64(0) {
					memo.local[home] = uint64(float64(lines*m.cost.LocalMemory) * m.imcFactor[home])
				}
				c.Cycles = memo.local[home]
			} else {
				c.Cycles = uint64(float64(lines*m.cost.LocalMemory) * m.imcFactor[home])
			}
		} else {
			if memo != nil && lines == memo.lines {
				if memo.remote[home] == ^uint64(0) {
					memo.remote[home] = m.remoteCycles(node, home, lines)
				}
				c.Cycles = memo.remote[home]
			} else {
				c.Cycles = m.remoteCycles(node, home, lines)
			}
			m.nodes[node].HTBytesOut += bytes
			m.nodes[home].HTBytesIn += bytes
			m.window.htBytes += bytes
			c.HTBytes = bytes
		}
	}

	if write {
		inv := m.caches.invalidateRemote(core, block)
		if inv > 0 {
			m.nodes[node].Invalidations += uint64(inv)
			c.Cycles += uint64(inv) * m.cost.Invalidation * lines
			// Invalidation messages traverse the interconnect.
			invBytes := uint64(inv) * uint64(m.topo.CacheLineBytes)
			m.nodes[node].HTBytesOut += invBytes
			m.window.htBytes += invBytes
			c.HTBytes += invBytes
		}
	}
	return c
}

// remoteCycles computes the stretched cost of a remote DRAM access. A
// remote access crosses the interconnect AND the home node's memory
// controller; the slower pipe bounds it.
func (m *Machine) remoteCycles(node, home NodeID, lines uint64) uint64 {
	hops := m.topo.Hops(node, home)
	per := m.cost.RemoteMemory + uint64(hops-1)*m.cost.PerHop
	stretch := m.htFactor
	if m.imcFactor[home] > stretch {
		stretch = m.imcFactor[home]
	}
	return uint64(float64(lines*per) * stretch)
}

// RangeAccess describes one bulk memory operation: a sweep over a
// contiguous run of placement blocks, read or written in address order.
// The first and last blocks may be covered partially; FirstBytes and
// LastBytes of zero mean the full block, and LastBytes is ignored when the
// range is a single block.
type RangeAccess struct {
	Start      BlockID
	Blocks     int
	FirstBytes int
	LastBytes  int
	Write      bool
	// PID attributes first-touch residency; zero means anonymous.
	PID int
}

// bytesOf returns the covered byte count of the i-th block of the range.
func (r RangeAccess) bytesOf(i, blockBytes int) int {
	switch {
	case i == 0 && r.FirstBytes != 0:
		return r.FirstBytes
	case i == r.Blocks-1 && i != 0 && r.LastBytes != 0:
		return r.LastBytes
	default:
		return blockBytes
	}
}

// AccessRange charges a contiguous run of blocks in one call, equivalent
// to issuing Access block by block but with the per-call overhead hoisted
// and the DRAM cost arithmetic memoized per home node. Scans, gathers and
// materializations — anything walking consecutive rows — charge through
// here. The result is bit-identical to the per-block loop: same counters,
// same cycles, same cache-state evolution.
func (m *Machine) AccessRange(core CoreID, r RangeAccess) Cost {
	if r.Blocks <= 0 {
		return Cost{}
	}
	if r.FirstBytes > m.topo.BlockBytes || r.LastBytes > m.topo.BlockBytes {
		panic(fmt.Sprintf("numa: range access of %d/%d bytes exceeds block size %d",
			r.FirstBytes, r.LastBytes, m.topo.BlockBytes))
	}
	var total Cost
	if m.naive {
		// Equivalence mode: reproduce the historical one-Access-per-block
		// cost profile through the public entry point.
		for i := 0; i < r.Blocks; i++ {
			c := m.Access(core, Access{
				Block: r.Start + BlockID(i),
				Bytes: r.bytesOf(i, m.topo.BlockBytes),
				Write: r.Write,
				PID:   r.PID,
			})
			total.Cycles += c.Cycles
			total.HTBytes += c.HTBytes
		}
		return total
	}
	node := m.topo.NodeOf(core)
	fullLines := uint64((m.topo.BlockBytes + m.topo.CacheLineBytes - 1) / m.topo.CacheLineBytes)
	m.memo.reset(fullLines, m.topo.NodeCount)
	for i := 0; i < r.Blocks; i++ {
		byteCount := r.bytesOf(i, m.topo.BlockBytes)
		if byteCount <= 0 {
			continue
		}
		c := m.accessBlock(core, node, r.Start+BlockID(i), byteCount, r.Write, r.PID, &m.memo)
		total.Cycles += c.Cycles
		total.HTBytes += c.HTBytes
	}
	return total
}

// SetNaiveCharging forces AccessRange through the public per-block Access
// path, reproducing the pre-bulk-charging cost profile. Results are
// identical either way; only the host-CPU cost differs. Used by the
// equivalence bench.
func (m *Machine) SetNaiveCharging(naive bool) { m.naive = naive }

// NaiveCharging reports whether naive charging is active (consumers use
// it to select their own seed-faithful paths).
func (m *Machine) NaiveCharging() bool { return m.naive }

// ChargeBusy accounts cycles of useful execution on a core and advances
// nothing else; the scheduler calls it once per quantum slice.
func (m *Machine) ChargeBusy(core CoreID, cycles uint64) {
	m.cores[core].BusyCycles += cycles
}

// ChargeIdle accounts idle cycles on a core.
func (m *Machine) ChargeIdle(core CoreID, cycles uint64) {
	m.cores[core].IdleCycles += cycles
}

// AdvanceTime moves virtual time forward by the given cycles and refreshes
// the congestion factors from the demand observed in the elapsed window:
// when interconnect demand exceeds HT capacity, or a node's DRAM demand
// exceeds its IMC bandwidth, subsequent accesses are stretched
// proportionally. This is the causal chain of the paper's Figure 4: more
// concurrent clients -> more interconnect traffic -> lower throughput.
func (m *Machine) AdvanceTime(cycles uint64) {
	m.now += cycles
	simCycles.Add(cycles)
	m.window.cycles += cycles
	// Refresh factors roughly every millisecond of virtual time.
	windowCycles := m.topo.SecondsToCycles(1e-3)
	if m.window.cycles < windowCycles {
		return
	}
	seconds := m.topo.CyclesToSeconds(m.window.cycles)
	htCapacity := m.topo.HTBandwidth * seconds
	m.htFactor = smoothFactor(m.htFactor, float64(m.window.htBytes)/htCapacity)
	for n := range m.imcFactor {
		cap := m.topo.MemBandwidth * seconds
		m.imcFactor[n] = smoothFactor(m.imcFactor[n], float64(m.window.imcBytes[n])/cap)
		m.window.imcBytes[n] = 0
	}
	m.window.htBytes = 0
	m.window.cycles = 0
}

// smoothFactor updates a stretch factor from the utilization measured
// *under the previous factor*. The measured window already reflects the
// old stretch, so the physical fixed point (delivered bytes == capacity)
// is reached by multiplying the old factor by the measured utilization;
// an EMA smooths the correction. Floored at 1 — an idle link adds no
// speedup.
func smoothFactor(prev, utilization float64) float64 {
	target := prev * utilization
	if target < 1 {
		target = 1
	}
	f := 0.5*prev + 0.5*target
	if f < 1 {
		f = 1
	}
	return f
}

// AdvanceTimeIdle advances virtual time by n quanta during which no
// memory traffic occurred, replicating exactly the state n sequential
// AdvanceTime(quantum) calls would produce: the congestion-window refresh
// cadence is preserved while the factors are still decaying, and once
// every factor has reached 1 (refreshes become state-invisible) the
// remaining quanta are applied in O(1). The scheduler's idle fast-forward
// is built on this.
func (m *Machine) AdvanceTimeIdle(quantum, n uint64) {
	if quantum == 0 {
		return
	}
	for n > 0 {
		if !m.idleSteady() {
			m.AdvanceTime(quantum)
			n--
			continue
		}
		// Steady state: every refresh is a no-op beyond zeroing an
		// already-zero window, so only the clock and the window phase
		// move. Jump.
		windowCycles := m.topo.SecondsToCycles(1e-3)
		m.now += n * quantum
		simCycles.Add(n * quantum)
		c := m.window.cycles // invariant: c < windowCycles
		untilRefresh := (windowCycles - c + quantum - 1) / quantum
		if n < untilRefresh {
			m.window.cycles = c + n*quantum
		} else {
			period := (windowCycles + quantum - 1) / quantum
			m.window.cycles = ((n - untilRefresh) % period) * quantum
		}
		return
	}
}

// idleSteady reports whether an idle AdvanceTime refresh would be a
// no-op: all congestion factors have decayed to exactly 1 and the current
// window carries no traffic.
func (m *Machine) idleSteady() bool {
	if m.htFactor != 1 || m.window.htBytes != 0 {
		return false
	}
	for i, f := range m.imcFactor {
		if f != 1 || m.window.imcBytes[i] != 0 {
			return false
		}
	}
	return true
}

// HTCongestion returns the current interconnect stretch factor (>= 1).
func (m *Machine) HTCongestion() float64 { return m.htFactor }

// DropCoreAffinity clears a core's private cache, modelling the working-set
// loss after a thread migration.
func (m *Machine) DropCoreAffinity(core CoreID) { m.caches.dropCore(core) }

// L3Resident reports whether a block is resident in a node's L3 (testing
// and diagnostics).
func (m *Machine) L3Resident(n NodeID, b BlockID) bool {
	return m.caches.l3Resident(n, b)
}

// Snapshot returns a copy of all counters at the current virtual time.
func (m *Machine) Snapshot() Counters {
	c := Counters{
		Now:   m.now,
		Nodes: append([]NodeCounters(nil), m.nodes...),
		Cores: append([]CoreCounters(nil), m.cores...),
	}
	faults := m.mem.MinorFaults()
	for i := range c.Nodes {
		c.Nodes[i].MinorFaults = faults[i]
	}
	return c
}

// Residency exposes the per-node live-block counts for a set of PIDs (the
// adaptive priority queue's input).
func (m *Machine) Residency(pids []int) []int { return m.mem.Residency(pids) }
