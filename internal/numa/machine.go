package numa

import "fmt"

// CostModel holds the per-event cycle costs used to charge memory accesses.
// The defaults approximate the relative latencies of the Opteron 8387
// memory hierarchy; the mechanism's behaviour depends on the *ratios*
// (remote vs local, miss vs hit), not the absolute values.
type CostModel struct {
	// Per cache line (CacheLineBytes), in cycles.
	PrivateHit   uint64 // L1/L2 hit
	L3Hit        uint64 // shared-cache hit
	LocalMemory  uint64 // L3 miss served by the local IMC
	RemoteMemory uint64 // L3 miss served by a remote IMC, first hop
	PerHop       uint64 // additional cycles per extra interconnect hop
	Invalidation uint64 // per invalidated remote copy, charged to the writer
}

// DefaultCostModel returns latencies in line with published Opteron
// measurements: L3 ~ 40 cycles, local DRAM ~ 200 cycles, remote DRAM
// 1.9-2.6x local depending on hop count (HyperTransport 3.x probe +
// transfer), coherence invalidations ~ an L2-miss round trip.
func DefaultCostModel() CostModel {
	return CostModel{
		PrivateHit:   4,
		L3Hit:        40,
		LocalMemory:  200,
		RemoteMemory: 440,
		PerHop:       140,
		Invalidation: 80,
	}
}

// Access describes one memory operation issued by executing code: Bytes
// bytes read or written within a single placement block.
type Access struct {
	Block BlockID
	Bytes int
	Write bool
	// PID attributes first-touch residency (for the adaptive priority
	// queue); zero means anonymous.
	PID int
}

// Cost is the outcome of charging an access.
type Cost struct {
	Cycles  uint64
	HTBytes uint64 // interconnect bytes generated
}

// Machine is the complete NUMA hardware model: topology, memory with
// first-touch placement, cache hierarchy, interconnect traffic accounting
// with bandwidth-driven congestion, and the counter surface.
type Machine struct {
	topo   *Topology
	mem    *Memory
	caches *cacheHierarchy
	cost   CostModel

	now   uint64 // virtual time, cycles
	nodes []NodeCounters
	cores []CoreCounters

	// Congestion model: interconnect and per-node memory demand within the
	// current accounting window stretch subsequent access costs. factor >= 1.
	window struct {
		htBytes  uint64
		imcBytes []uint64
		cycles   uint64
	}
	htFactor  float64
	imcFactor []float64
}

// NewMachine builds a machine for the topology with the default cost model.
// It panics if the topology is invalid, since every other subsystem depends
// on it.
func NewMachine(t *Topology) *Machine {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		topo:      t,
		mem:       NewMemory(t),
		caches:    newCacheHierarchy(t),
		cost:      DefaultCostModel(),
		nodes:     make([]NodeCounters, t.NodeCount),
		cores:     make([]CoreCounters, t.TotalCores()),
		htFactor:  1,
		imcFactor: make([]float64, t.NodeCount),
	}
	m.window.imcBytes = make([]uint64, t.NodeCount)
	for i := range m.imcFactor {
		m.imcFactor[i] = 1
	}
	return m
}

// SetCostModel overrides the access cost model (for ablation benches).
func (m *Machine) SetCostModel(c CostModel) { m.cost = c }

// Topology returns the machine's static shape.
func (m *Machine) Topology() *Topology { return m.topo }

// Memory exposes the placement layer (allocation is done through it).
func (m *Machine) Memory() *Memory { return m.mem }

// Now returns the current virtual time in cycles.
func (m *Machine) Now() uint64 { return m.now }

// NowSeconds returns the current virtual time in seconds.
func (m *Machine) NowSeconds() float64 { return m.topo.CyclesToSeconds(m.now) }

// Access charges one memory operation executed on the given core and
// returns its cost. It updates the placement table (first touch), the cache
// hierarchy, and every affected counter.
func (m *Machine) Access(core CoreID, a Access) Cost {
	if a.Bytes <= 0 {
		return Cost{}
	}
	if a.Bytes > m.topo.BlockBytes {
		panic(fmt.Sprintf("numa: access of %d bytes exceeds block size %d", a.Bytes, m.topo.BlockBytes))
	}
	node := m.topo.NodeOf(core)
	lines := uint64((a.Bytes + m.topo.CacheLineBytes - 1) / m.topo.CacheLineBytes)

	tr := m.mem.touch(a.Block, node, a.PID)
	m.nodes[tr.home].DataTouches++
	level := m.caches.access(core, a.Block)

	var c Cost
	switch level {
	case levelPrivate:
		m.nodes[node].L3Hits += lines
		c.Cycles = lines * m.cost.PrivateHit
	case levelL3:
		m.nodes[node].L3Hits += lines
		c.Cycles = lines * m.cost.L3Hit
	case levelMemory:
		m.nodes[node].L3Misses += lines
		bytes := lines * uint64(m.topo.CacheLineBytes)
		home := tr.home
		m.nodes[home].IMCBytes += bytes
		m.window.imcBytes[home] += bytes
		if home == node {
			c.Cycles = uint64(float64(lines*m.cost.LocalMemory) * m.imcFactor[home])
		} else {
			hops := m.topo.Hops(node, home)
			per := m.cost.RemoteMemory + uint64(hops-1)*m.cost.PerHop
			// A remote access crosses the interconnect AND the home
			// node's memory controller; the slower pipe bounds it.
			stretch := m.htFactor
			if m.imcFactor[home] > stretch {
				stretch = m.imcFactor[home]
			}
			c.Cycles = uint64(float64(lines*per) * stretch)
			m.nodes[node].HTBytesOut += bytes
			m.nodes[home].HTBytesIn += bytes
			m.window.htBytes += bytes
			c.HTBytes = bytes
		}
	}

	if a.Write {
		inv := m.caches.invalidateRemote(core, a.Block)
		if inv > 0 {
			m.nodes[node].Invalidations += uint64(inv)
			c.Cycles += uint64(inv) * m.cost.Invalidation * lines
			// Invalidation messages traverse the interconnect.
			invBytes := uint64(inv) * uint64(m.topo.CacheLineBytes)
			m.nodes[node].HTBytesOut += invBytes
			m.window.htBytes += invBytes
			c.HTBytes += invBytes
		}
	}
	return c
}

// ChargeBusy accounts cycles of useful execution on a core and advances
// nothing else; the scheduler calls it once per quantum slice.
func (m *Machine) ChargeBusy(core CoreID, cycles uint64) {
	m.cores[core].BusyCycles += cycles
}

// ChargeIdle accounts idle cycles on a core.
func (m *Machine) ChargeIdle(core CoreID, cycles uint64) {
	m.cores[core].IdleCycles += cycles
}

// AdvanceTime moves virtual time forward by the given cycles and refreshes
// the congestion factors from the demand observed in the elapsed window:
// when interconnect demand exceeds HT capacity, or a node's DRAM demand
// exceeds its IMC bandwidth, subsequent accesses are stretched
// proportionally. This is the causal chain of the paper's Figure 4: more
// concurrent clients -> more interconnect traffic -> lower throughput.
func (m *Machine) AdvanceTime(cycles uint64) {
	m.now += cycles
	m.window.cycles += cycles
	// Refresh factors roughly every millisecond of virtual time.
	windowCycles := m.topo.SecondsToCycles(1e-3)
	if m.window.cycles < windowCycles {
		return
	}
	seconds := m.topo.CyclesToSeconds(m.window.cycles)
	htCapacity := m.topo.HTBandwidth * seconds
	m.htFactor = smoothFactor(m.htFactor, float64(m.window.htBytes)/htCapacity)
	for n := range m.imcFactor {
		cap := m.topo.MemBandwidth * seconds
		m.imcFactor[n] = smoothFactor(m.imcFactor[n], float64(m.window.imcBytes[n])/cap)
		m.window.imcBytes[n] = 0
	}
	m.window.htBytes = 0
	m.window.cycles = 0
}

// smoothFactor updates a stretch factor from the utilization measured
// *under the previous factor*. The measured window already reflects the
// old stretch, so the physical fixed point (delivered bytes == capacity)
// is reached by multiplying the old factor by the measured utilization;
// an EMA smooths the correction. Floored at 1 — an idle link adds no
// speedup.
func smoothFactor(prev, utilization float64) float64 {
	target := prev * utilization
	if target < 1 {
		target = 1
	}
	f := 0.5*prev + 0.5*target
	if f < 1 {
		f = 1
	}
	return f
}

// HTCongestion returns the current interconnect stretch factor (>= 1).
func (m *Machine) HTCongestion() float64 { return m.htFactor }

// DropCoreAffinity clears a core's private cache, modelling the working-set
// loss after a thread migration.
func (m *Machine) DropCoreAffinity(core CoreID) { m.caches.dropCore(core) }

// L3Resident reports whether a block is resident in a node's L3 (testing
// and diagnostics).
func (m *Machine) L3Resident(n NodeID, b BlockID) bool {
	return m.caches.l3Resident(n, b)
}

// Snapshot returns a copy of all counters at the current virtual time.
func (m *Machine) Snapshot() Counters {
	c := Counters{
		Now:   m.now,
		Nodes: append([]NodeCounters(nil), m.nodes...),
		Cores: append([]CoreCounters(nil), m.cores...),
	}
	faults := m.mem.MinorFaults()
	for i := range c.Nodes {
		c.Nodes[i].MinorFaults = faults[i]
	}
	return c
}

// Residency exposes the per-node live-block counts for a set of PIDs (the
// adaptive priority queue's input).
func (m *Machine) Residency(pids []int) []int { return m.mem.Residency(pids) }
