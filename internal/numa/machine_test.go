package numa

import (
	"testing"
	"testing/quick"
)

func TestAccessLocalVsRemoteCost(t *testing.T) {
	topo := Opteron8387()
	m := NewMachine(topo)
	r := m.Memory().Alloc(2)

	// Local: core 0 (node 0) first-touches block 0.
	local := m.Access(0, Access{Block: r.Block(0), Bytes: topo.BlockBytes, PID: 1})
	// Remote: core 0 touches a block homed on node 3 first.
	m.Access(topo.CoreOf(3, 0), Access{Block: r.Block(1), Bytes: topo.BlockBytes, PID: 1})
	remote := m.Access(0, Access{Block: r.Block(1), Bytes: topo.BlockBytes, PID: 1})

	if remote.Cycles <= local.Cycles {
		t.Errorf("remote access (%d cycles) should cost more than local (%d)", remote.Cycles, local.Cycles)
	}
	if remote.HTBytes == 0 {
		t.Error("remote access generated no interconnect traffic")
	}
	if local.HTBytes != 0 {
		t.Errorf("local access generated %d HT bytes, want 0", local.HTBytes)
	}
}

func TestAccessCountersWiring(t *testing.T) {
	topo := Opteron8387()
	m := NewMachine(topo)
	r := m.Memory().Alloc(1)

	m.Access(topo.CoreOf(2, 0), Access{Block: r.Block(0), Bytes: topo.BlockBytes, PID: 7})
	snap := m.Snapshot()
	lines := uint64(topo.LinesPerBlock())
	if snap.Nodes[2].L3Misses != lines {
		t.Errorf("L3Misses[2] = %d, want %d", snap.Nodes[2].L3Misses, lines)
	}
	if snap.Nodes[2].IMCBytes != uint64(topo.BlockBytes) {
		t.Errorf("IMCBytes[2] = %d, want %d", snap.Nodes[2].IMCBytes, topo.BlockBytes)
	}
	if snap.Nodes[2].MinorFaults == 0 {
		t.Error("first touch produced no minor faults")
	}

	// Remote read: requester node 0, home node 2.
	m.Access(0, Access{Block: r.Block(0), Bytes: topo.BlockBytes, PID: 7})
	snap = m.Snapshot()
	if snap.Nodes[0].HTBytesOut == 0 {
		t.Error("requester HTBytesOut not counted")
	}
	if snap.Nodes[2].HTBytesIn == 0 {
		t.Error("responder HTBytesIn not counted")
	}
	if snap.Nodes[2].IMCBytes != 2*uint64(topo.BlockBytes) {
		t.Errorf("home IMCBytes = %d, want %d (serves remote miss)", snap.Nodes[2].IMCBytes, 2*topo.BlockBytes)
	}
}

func TestRepeatAccessHitsCache(t *testing.T) {
	topo := Opteron8387()
	m := NewMachine(topo)
	r := m.Memory().Alloc(1)
	m.Access(5, Access{Block: r.Block(0), Bytes: topo.BlockBytes})
	before := m.Snapshot()
	c := m.Access(5, Access{Block: r.Block(0), Bytes: topo.BlockBytes})
	after := m.Snapshot()
	if after.Nodes[topo.NodeOf(5)].L3Misses != before.Nodes[topo.NodeOf(5)].L3Misses {
		t.Error("cached access should not add L3 misses")
	}
	if c.HTBytes != 0 {
		t.Error("cached access should not touch the interconnect")
	}
}

func TestWriteInvalidatesRemoteReaders(t *testing.T) {
	topo := Opteron8387()
	m := NewMachine(topo)
	r := m.Memory().Alloc(1)
	// Reader on node 1 caches the block (also homes it there).
	m.Access(topo.CoreOf(1, 0), Access{Block: r.Block(0), Bytes: 4096})
	// Reader on node 2 caches it too.
	m.Access(topo.CoreOf(2, 0), Access{Block: r.Block(0), Bytes: 4096})
	// Writer on node 0 invalidates both copies.
	m.Access(0, Access{Block: r.Block(0), Bytes: 4096, Write: true})
	snap := m.Snapshot()
	if snap.Nodes[0].Invalidations != 2 {
		t.Errorf("Invalidations = %d, want 2", snap.Nodes[0].Invalidations)
	}
	// Reader on node 1 must now re-fetch (miss).
	before := m.Snapshot()
	m.Access(topo.CoreOf(1, 0), Access{Block: r.Block(0), Bytes: 4096})
	after := m.Snapshot()
	if after.Nodes[1].L3Misses == before.Nodes[1].L3Misses {
		t.Error("reader after invalidation should miss")
	}
}

func TestCongestionStretchesRemoteAccesses(t *testing.T) {
	topo := Opteron8387()
	m := NewMachine(topo)
	// Home lots of blocks on node 3, then hammer them from node 0 with an
	// artificially tiny HT bandwidth so demand exceeds capacity.
	topoSlow := *topo
	topoSlow.HTBandwidth = 1e6 // 1 MB/s
	slow := NewMachine(&topoSlow)
	nBlocks := 64
	rs := slow.Memory().Alloc(nBlocks)
	for i := 0; i < nBlocks; i++ {
		slow.Access(topoSlow.CoreOf(3, 0), Access{Block: rs.Block(i), Bytes: topoSlow.BlockBytes})
	}
	first := slow.Access(0, Access{Block: rs.Block(0), Bytes: topoSlow.BlockBytes})
	// Generate demand and advance time so the congestion window closes.
	for round := 0; round < 4; round++ {
		for i := 0; i < nBlocks; i++ {
			slow.Access(0, Access{Block: rs.Block(i), Bytes: topoSlow.BlockBytes})
		}
		slow.AdvanceTime(topoSlow.SecondsToCycles(2e-3))
	}
	if slow.HTCongestion() <= 1 {
		t.Fatalf("HTCongestion = %g, want > 1 under overload", slow.HTCongestion())
	}
	// The same remote access is now more expensive. Evict from caches by
	// touching a different set first.
	spill := slow.Memory().Alloc(topoSlow.L3Bytes/topoSlow.BlockBytes + 8)
	for i := 0; i < spill.Blocks; i++ {
		slow.Access(0, Access{Block: spill.Block(i), Bytes: topoSlow.BlockBytes})
	}
	later := slow.Access(0, Access{Block: rs.Block(0), Bytes: topoSlow.BlockBytes})
	if later.Cycles <= first.Cycles {
		t.Errorf("congested remote access (%d cycles) should exceed uncongested (%d)", later.Cycles, first.Cycles)
	}
	_ = m
}

func TestSnapshotSubWindow(t *testing.T) {
	topo := Opteron8387()
	m := NewMachine(topo)
	r := m.Memory().Alloc(4)
	m.Access(0, Access{Block: r.Block(0), Bytes: topo.BlockBytes})
	s1 := m.Snapshot()
	m.Access(0, Access{Block: r.Block(1), Bytes: topo.BlockBytes})
	m.AdvanceTime(1000)
	s2 := m.Snapshot()
	d := s2.Sub(s1)
	if d.Now != 1000 {
		t.Errorf("window Now = %d, want 1000", d.Now)
	}
	if d.Nodes[0].L3Misses != uint64(topo.LinesPerBlock()) {
		t.Errorf("window misses = %d, want %d", d.Nodes[0].L3Misses, topo.LinesPerBlock())
	}
}

func TestCPULoadAccounting(t *testing.T) {
	topo := Opteron8387()
	m := NewMachine(topo)
	m.ChargeBusy(0, 750)
	m.ChargeIdle(0, 250)
	m.ChargeIdle(1, 1000)
	snap := m.Snapshot()
	if got := snap.CPULoad([]CoreID{0}); got != 75 {
		t.Errorf("CPULoad(core0) = %g, want 75", got)
	}
	if got := snap.CPULoad([]CoreID{0, 1}); got != 37.5 {
		t.Errorf("CPULoad(core0,1) = %g, want 37.5", got)
	}
	// Cores with no accounted cycles contribute nothing to the average.
	if got := snap.CPULoad(nil); got != 37.5 {
		t.Errorf("CPULoad(all) = %g, want 37.5", got)
	}
}

func TestHTIMCRatio(t *testing.T) {
	c := Counters{Nodes: []NodeCounters{
		{HTBytesOut: 100, IMCBytes: 400},
		{HTBytesOut: 100, IMCBytes: 100},
	}}
	if got := c.HTIMCRatio(); got != 0.4 {
		t.Errorf("HTIMCRatio = %g, want 0.4", got)
	}
	empty := Counters{Nodes: []NodeCounters{{}}}
	if got := empty.HTIMCRatio(); got != 0 {
		t.Errorf("empty ratio = %g, want 0", got)
	}
}

func TestAccessConservation(t *testing.T) {
	// Property: total HT requester bytes == total HT responder bytes for
	// pure reads (no invalidation messages).
	topo := Opteron8387()
	f := func(seed uint32, n uint8) bool {
		m := NewMachine(topo)
		r := m.Memory().Alloc(16)
		rng := seed
		for i := 0; i < int(n); i++ {
			rng = rng*1664525 + 1013904223
			core := CoreID(rng % uint32(topo.TotalCores()))
			m.Access(core, Access{Block: r.Block(int(rng>>8) % 16), Bytes: topo.BlockBytes})
		}
		snap := m.Snapshot()
		var out, in uint64
		for _, nc := range snap.Nodes {
			out += nc.HTBytesOut
			in += nc.HTBytesIn
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAccessPanicsOnOversized(t *testing.T) {
	topo := Opteron8387()
	m := NewMachine(topo)
	r := m.Memory().Alloc(1)
	defer func() {
		if recover() == nil {
			t.Error("oversized access did not panic")
		}
	}()
	m.Access(0, Access{Block: r.Block(0), Bytes: topo.BlockBytes + 1})
}
