package numa

import (
	"testing"
	"testing/quick"
)

func TestLRUBasicHitMiss(t *testing.T) {
	c := newLRUCache(2)
	if hit, _, _ := c.Touch(1); hit {
		t.Error("cold cache should miss")
	}
	if hit, _, _ := c.Touch(1); !hit {
		t.Error("second access should hit")
	}
	c.Touch(2)
	_, victim, evicted := c.Touch(3)
	if !evicted || victim != 1 {
		t.Errorf("expected eviction of block 1, got evicted=%v victim=%d", evicted, victim)
	}
	if c.Contains(1) {
		t.Error("evicted block still resident")
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := newLRUCache(2)
	c.Touch(1)
	c.Touch(2)
	c.Touch(1) // promote 1; 2 is now LRU
	_, victim, evicted := c.Touch(3)
	if !evicted || victim != 2 {
		t.Errorf("expected eviction of 2 (LRU), got evicted=%v victim=%d", evicted, victim)
	}
}

func TestLRUInvalidate(t *testing.T) {
	c := newLRUCache(4)
	c.Touch(10)
	if !c.Invalidate(10) {
		t.Error("Invalidate of resident block returned false")
	}
	if c.Invalidate(10) {
		t.Error("Invalidate of absent block returned true")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestLRUNeverExceedsCapacity(t *testing.T) {
	f := func(capRaw uint8, accesses []uint16) bool {
		capacity := int(capRaw%16) + 1
		c := newLRUCache(capacity)
		for _, a := range accesses {
			c.Touch(BlockID(a % 64))
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLRUClear(t *testing.T) {
	c := newLRUCache(4)
	for i := BlockID(0); i < 4; i++ {
		c.Touch(i)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Errorf("Len after Clear = %d", c.Len())
	}
	if hit, _, _ := c.Touch(0); hit {
		t.Error("cleared cache should miss")
	}
}

func TestHierarchySharedL3WithinNode(t *testing.T) {
	topo := Opteron8387()
	h := newCacheHierarchy(topo)
	// Core 0 warms a block; core 1 (same node) should find it in L3.
	if lvl := h.access(0, 100); lvl != levelMemory {
		t.Fatalf("cold access level = %v, want memory", lvl)
	}
	if lvl := h.access(1, 100); lvl != levelL3 {
		t.Errorf("same-node access level = %v, want L3 hit", lvl)
	}
	// A core on another node misses: L3s are per node.
	if lvl := h.access(topo.CoreOf(1, 0), 100); lvl != levelMemory {
		t.Errorf("cross-node access level = %v, want memory", lvl)
	}
}

func TestHierarchyPrivateHit(t *testing.T) {
	topo := Opteron8387()
	h := newCacheHierarchy(topo)
	h.access(0, 7)
	if lvl := h.access(0, 7); lvl != levelPrivate {
		t.Errorf("repeat access level = %v, want private hit", lvl)
	}
}

func TestInvalidateRemoteCountsCopies(t *testing.T) {
	topo := Opteron8387()
	h := newCacheHierarchy(topo)
	// Warm block 5 into nodes 1, 2, 3.
	h.access(topo.CoreOf(1, 0), 5)
	h.access(topo.CoreOf(2, 0), 5)
	h.access(topo.CoreOf(3, 0), 5)
	inv := h.invalidateRemote(topo.CoreOf(0, 0), 5)
	if inv != 3 {
		t.Errorf("invalidated %d node copies, want 3", inv)
	}
	for n := 1; n < 4; n++ {
		if h.l3Resident(NodeID(n), 5) {
			t.Errorf("node %d still holds invalidated block", n)
		}
	}
	// A second write invalidates nothing.
	if inv := h.invalidateRemote(topo.CoreOf(0, 0), 5); inv != 0 {
		t.Errorf("second invalidate = %d, want 0", inv)
	}
}

func TestCapacityConflictAcrossWorkingSets(t *testing.T) {
	// Two cores on one node streaming disjoint working sets larger than
	// the shared L3 must evict each other (the paper's motivation for not
	// packing unrelated threads densely).
	topo := Opteron8387()
	h := newCacheHierarchy(topo)
	l3Blocks := topo.L3Bytes / topo.BlockBytes
	setA := make([]BlockID, l3Blocks)
	setB := make([]BlockID, l3Blocks)
	for i := range setA {
		setA[i] = BlockID(i)
		setB[i] = BlockID(l3Blocks + i)
	}
	// Interleave full passes; on the second pass nothing can hit in L3.
	for _, b := range setA {
		h.access(0, b)
	}
	for _, b := range setB {
		h.access(1, b)
	}
	misses := 0
	for _, b := range setA {
		if !h.shared[0].Contains(b) {
			misses++
		}
	}
	if misses == 0 {
		t.Error("expected conflict evictions of set A after streaming set B")
	}
}
