package numa

import (
	"testing"
	"testing/quick"
)

func TestOpteron8387Valid(t *testing.T) {
	topo := Opteron8387()
	if err := topo.Validate(); err != nil {
		t.Fatalf("default topology invalid: %v", err)
	}
	if got := topo.TotalCores(); got != 16 {
		t.Errorf("TotalCores = %d, want 16", got)
	}
}

func TestNodeOfCoreOfRoundTrip(t *testing.T) {
	topo := Opteron8387()
	for n := 0; n < topo.NodeCount; n++ {
		for j := 0; j < topo.CoresPerNode; j++ {
			c := topo.CoreOf(NodeID(n), j)
			if got := topo.NodeOf(c); got != NodeID(n) {
				t.Errorf("NodeOf(CoreOf(%d,%d)) = %d, want %d", n, j, got, n)
			}
		}
	}
}

func TestCoreOfMatchesPaperFormula(t *testing.T) {
	// Section IV-B.1: core(i, j) = d*i + j with d = 4 on the 4-node
	// Opteron machine.
	topo := Opteron8387()
	d := topo.CoresPerNode
	for i := 0; i < topo.NodeCount; i++ {
		for j := 0; j < d; j++ {
			want := CoreID(d*i + j)
			if got := topo.CoreOf(NodeID(i), j); got != want {
				t.Errorf("CoreOf(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestCoresEnumeration(t *testing.T) {
	topo := Opteron8387()
	seen := make(map[CoreID]bool)
	for n := 0; n < topo.NodeCount; n++ {
		for _, c := range topo.Cores(NodeID(n)) {
			if seen[c] {
				t.Fatalf("core %d enumerated twice", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != topo.TotalCores() {
		t.Errorf("enumerated %d cores, want %d", len(seen), topo.TotalCores())
	}
}

func TestDistanceSymmetric(t *testing.T) {
	topo := Opteron8387()
	for i := 0; i < topo.NodeCount; i++ {
		for j := 0; j < topo.NodeCount; j++ {
			if topo.Hops(NodeID(i), NodeID(j)) != topo.Hops(NodeID(j), NodeID(i)) {
				t.Errorf("Hops(%d,%d) != Hops(%d,%d)", i, j, j, i)
			}
		}
		if topo.Hops(NodeID(i), NodeID(i)) != 0 {
			t.Errorf("Hops(%d,%d) != 0", i, i)
		}
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Topology)
	}{
		{"zero nodes", func(tp *Topology) { tp.NodeCount = 0 }},
		{"zero cores", func(tp *Topology) { tp.CoresPerNode = 0 }},
		{"zero clock", func(tp *Topology) { tp.ClockHz = 0 }},
		{"block not multiple of page", func(tp *Topology) { tp.BlockBytes = tp.PageBytes + 1 }},
		{"L3 smaller than block", func(tp *Topology) { tp.L3Bytes = tp.BlockBytes - 1 }},
		{"negative bandwidth", func(tp *Topology) { tp.HTBandwidth = -1 }},
		{"short distance matrix", func(tp *Topology) { tp.Distance = tp.Distance[:2] }},
		{"nonzero diagonal", func(tp *Topology) { tp.Distance[1][1] = 3 }},
		{"asymmetric distance", func(tp *Topology) { tp.Distance[0][1] = 7 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := Opteron8387()
			tc.mutate(topo)
			if err := topo.Validate(); err == nil {
				t.Error("Validate accepted an invalid topology")
			}
		})
	}
}

func TestCyclesSecondsRoundTrip(t *testing.T) {
	topo := Opteron8387()
	if err := quick.Check(func(ms uint16) bool {
		s := float64(ms) * 1e-3
		cycles := topo.SecondsToCycles(s)
		back := topo.CyclesToSeconds(cycles)
		diff := back - s
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitsDerived(t *testing.T) {
	topo := Opteron8387()
	if got := topo.PagesPerBlock(); got != topo.BlockBytes/topo.PageBytes {
		t.Errorf("PagesPerBlock = %d", got)
	}
	if got := topo.LinesPerBlock(); got != topo.BlockBytes/topo.CacheLineBytes {
		t.Errorf("LinesPerBlock = %d", got)
	}
}
