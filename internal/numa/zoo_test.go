package numa

import (
	"strings"
	"testing"
)

// zoo_test.go covers the topology zoo: every constructor must be
// Validate-clean with the structural properties its doc comment claims,
// and ParseTopology must round-trip well-formed specs while rejecting
// malformed ones with actionable errors.

func TestZooTopologiesValid(t *testing.T) {
	for name, topo := range Zoo() {
		if err := topo.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if topo.TotalCores() > 63 {
			t.Errorf("%s: %d cores exceed the cpuset mask", name, topo.TotalCores())
		}
	}
}

func TestZooShapes(t *testing.T) {
	cases := []struct {
		name         string
		build        func() *Topology
		nodes, cores int
		diameter     int
	}{
		{"TwoSocket", TwoSocket, 2, 8, 1},
		{"FourSocketRing", FourSocketRing, 4, 4, 2},
		{"EightSocketTwisted", EightSocketTwisted, 8, 4, 2},
		{"EPYCLike", EPYCLike, 8, 4, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := tc.build()
			if topo.NodeCount != tc.nodes || topo.CoresPerNode != tc.cores {
				t.Errorf("shape = %dx%d, want %dx%d",
					topo.NodeCount, topo.CoresPerNode, tc.nodes, tc.cores)
			}
			if got := topo.Diameter(); got != tc.diameter {
				t.Errorf("diameter = %d, want %d", got, tc.diameter)
			}
		})
	}
}

// TestTwistedLadderBeatsStraightLadder pins the property the twist
// exists for: crossing the wrap-around links cuts the 8-socket diameter
// from three hops to two.
func TestTwistedLadderBeatsStraightLadder(t *testing.T) {
	straight := [][2]int{
		{0, 1}, {2, 3}, {4, 5}, {6, 7},
		{0, 2}, {2, 4}, {4, 6},
		{1, 3}, {3, 5}, {5, 7},
		{6, 0}, {7, 1}, // uncrossed wrap-around
	}
	sd := linkDistances(8, straight)
	maxStraight := 0
	for _, row := range sd {
		for _, h := range row {
			if h > maxStraight {
				maxStraight = h
			}
		}
	}
	if maxStraight <= EightSocketTwisted().Diameter() {
		t.Errorf("straight-ladder diameter %d not worse than twisted %d",
			maxStraight, EightSocketTwisted().Diameter())
	}
}

// TestEPYCIntraPackageAsymmetry pins the chiplet property: distances
// within one package are not uniform (substrate neighbours vs diagonal).
func TestEPYCIntraPackageAsymmetry(t *testing.T) {
	topo := EPYCLike()
	if topo.Hops(0, 1) == topo.Hops(0, 2) {
		t.Errorf("intra-package hops uniform (%d == %d); want adjacent != diagonal",
			topo.Hops(0, 1), topo.Hops(0, 2))
	}
	if topo.Hops(0, 4) >= topo.Hops(0, 5) {
		t.Errorf("cross-package partner (%d hops) not cheaper than non-partner (%d hops)",
			topo.Hops(0, 4), topo.Hops(0, 5))
	}
}

func TestParseTopologyNames(t *testing.T) {
	for _, name := range ZooNames() {
		topo, err := ParseTopology(name)
		if err != nil {
			t.Errorf("ParseTopology(%q): %v", name, err)
			continue
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("ParseTopology(%q) invalid: %v", name, err)
		}
	}
	// Aliases and case-insensitivity.
	for _, alias := range []string{"Opteron8387", "TWOSOCKET", "EightSocketTwisted", "epyclike"} {
		if _, err := ParseTopology(alias); err != nil {
			t.Errorf("ParseTopology(%q): %v", alias, err)
		}
	}
}

func TestParseTopologySpecs(t *testing.T) {
	topo, err := ParseTopology("2x8")
	if err != nil {
		t.Fatal(err)
	}
	if topo.NodeCount != 2 || topo.CoresPerNode != 8 || topo.Hops(0, 1) != 1 {
		t.Errorf("2x8 parsed as %dx%d hops=%d", topo.NodeCount, topo.CoresPerNode, topo.Hops(0, 1))
	}

	// Explicit upper-triangle hops, whitespace-tolerant.
	topo, err = ParseTopology(" 4 x 4 @ 1 2 1 1 2 1 ")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{
		{0, 1, 2, 1},
		{1, 0, 1, 2},
		{2, 1, 0, 1},
		{1, 2, 1, 0},
	}
	for i := range want {
		for j := range want[i] {
			if topo.Distance[i][j] != want[i][j] {
				t.Errorf("Distance[%d][%d] = %d, want %d", i, j, topo.Distance[i][j], want[i][j])
			}
		}
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("spec topology invalid: %v", err)
	}
}

// TestParseTopologySingleNode: a single-node machine is a legal — if
// degenerate — shape: no interconnect, every access local.
func TestParseTopologySingleNode(t *testing.T) {
	topo, err := ParseTopology("1x4")
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("single-node topology invalid: %v", err)
	}
	if topo.Diameter() != 0 {
		t.Errorf("single-node diameter = %d", topo.Diameter())
	}
	// The machine model must accept it end to end.
	m := NewMachine(topo)
	if m.Topology().TotalCores() != 4 {
		t.Errorf("machine cores = %d, want 4", m.Topology().TotalCores())
	}
}

func TestParseTopologyRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		spec, wantSub string
	}{
		{"", "empty topology spec"},
		{"4", "shape"},
		{"4x4x4", "shape"},
		{"0x4", "bad node count"},
		{"-1x4", "bad node count"},
		{"4x0", "bad cores-per-node"},
		{"axb", "bad node count"},
		{"4xb", "bad cores-per-node"},
		{"8x8", "cpuset limit"},
		{"4x4 @ 1 2 1", "hop entries, want 6"},
		{"4x4 @ 1 2 1 1 2 1 9", "hop entries, want 6"},
		{"4x4 @ 1 2 1 1 2 x", "bad hop count"},
		{"4x4 @ 1 2 1 1 2 0", "bad hop count"},
		{"4x4 @ 1 2 1 1 2 -3", "bad hop count"},
		{"no-such-topology", "shape"},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			_, err := ParseTopology(tc.spec)
			if err == nil {
				t.Fatalf("ParseTopology(%q) accepted", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestValidateZooEdgeCases extends the Validate suite with the shapes
// the zoo exposes: single-node matrices, asymmetric and non-zero
// diagonal distance entries on larger machines.
func TestValidateZooEdgeCases(t *testing.T) {
	single, err := ParseTopology("1x2")
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Validate(); err != nil {
		t.Errorf("single-node machine rejected: %v", err)
	}

	eight := EightSocketTwisted()
	eight.Distance[3][5] = 9 // breaks symmetry with [5][3]
	if err := eight.Validate(); err == nil {
		t.Error("asymmetric 8-node distance matrix accepted")
	}

	epyc := EPYCLike()
	epyc.Distance[6][6] = 1
	if err := epyc.Validate(); err == nil {
		t.Error("non-zero diagonal accepted")
	}

	ring := FourSocketRing()
	ring.Distance[0][2] = -2
	ring.Distance[2][0] = -2
	if err := ring.Validate(); err == nil {
		t.Error("negative hop distance accepted")
	}
}
