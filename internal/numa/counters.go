package numa

// counters.go defines the hardware-counter surface of the machine: the
// per-node and per-core event counts the paper's prototype reads through
// likwid (L3CACHE, HT, MEM groups), mpstat (CPU load) and /proc (minor
// faults). The elastic mechanism consumes snapshots and windows of these
// counters; it never reaches into the machine internals.

// NodeCounters holds cumulative event counts for one NUMA node.
type NodeCounters struct {
	// L3Hits and L3Misses count shared-cache lookups at line granularity
	// (one block access contributes LinesPerBlock events).
	L3Hits   uint64
	L3Misses uint64
	// HTBytesOut / HTBytesIn count interconnect traffic crossing this
	// node's links, requester side / responder side.
	HTBytesOut uint64
	HTBytesIn  uint64
	// IMCBytes counts bytes served by this node's integrated memory
	// controller (local DRAM traffic; the likwid MEM group).
	IMCBytes uint64
	// MinorFaults counts VM minor faults attributed to this node.
	MinorFaults uint64
	// Invalidations counts coherence invalidations of this node's cached
	// copies triggered by remote writers.
	Invalidations uint64
	// DataTouches counts block accesses whose target data is homed on
	// this node, wherever the accessing core sits. Its per-window delta
	// tells the adaptive mode where the active address space lives.
	DataTouches uint64
}

// CoreCounters holds cumulative cycle accounting for one core.
type CoreCounters struct {
	BusyCycles uint64
	IdleCycles uint64
}

// Counters is a full snapshot of the machine's counter state at a point in
// virtual time.
type Counters struct {
	// Now is the virtual time of the snapshot, in cycles.
	Now uint64
	// Nodes and Cores are indexed by NodeID / CoreID.
	Nodes []NodeCounters
	Cores []CoreCounters
}

// Clone returns a deep copy of the snapshot.
func (c Counters) Clone() Counters {
	out := Counters{Now: c.Now}
	out.Nodes = append([]NodeCounters(nil), c.Nodes...)
	out.Cores = append([]CoreCounters(nil), c.Cores...)
	return out
}

// Sub returns the per-event deltas of c relative to an earlier snapshot
// prev. It is the windowing primitive the mechanism uses each control
// period.
func (c Counters) Sub(prev Counters) Counters {
	out := c.Clone()
	out.Now = c.Now - prev.Now
	for i := range out.Nodes {
		if i >= len(prev.Nodes) {
			break
		}
		out.Nodes[i].L3Hits -= prev.Nodes[i].L3Hits
		out.Nodes[i].L3Misses -= prev.Nodes[i].L3Misses
		out.Nodes[i].HTBytesOut -= prev.Nodes[i].HTBytesOut
		out.Nodes[i].HTBytesIn -= prev.Nodes[i].HTBytesIn
		out.Nodes[i].IMCBytes -= prev.Nodes[i].IMCBytes
		out.Nodes[i].MinorFaults -= prev.Nodes[i].MinorFaults
		out.Nodes[i].Invalidations -= prev.Nodes[i].Invalidations
		out.Nodes[i].DataTouches -= prev.Nodes[i].DataTouches
	}
	for i := range out.Cores {
		if i >= len(prev.Cores) {
			break
		}
		out.Cores[i].BusyCycles -= prev.Cores[i].BusyCycles
		out.Cores[i].IdleCycles -= prev.Cores[i].IdleCycles
	}
	return out
}

// TotalHTBytes returns interconnect bytes summed over nodes (requester
// side, so each transfer is counted once).
func (c Counters) TotalHTBytes() uint64 {
	var sum uint64
	for _, n := range c.Nodes {
		sum += n.HTBytesOut
	}
	return sum
}

// TotalIMCBytes returns memory-controller bytes summed over nodes.
func (c Counters) TotalIMCBytes() uint64 {
	var sum uint64
	for _, n := range c.Nodes {
		sum += n.IMCBytes
	}
	return sum
}

// TotalL3Misses returns shared-cache misses summed over nodes.
func (c Counters) TotalL3Misses() uint64 {
	var sum uint64
	for _, n := range c.Nodes {
		sum += n.L3Misses
	}
	return sum
}

// TotalMinorFaults returns minor faults summed over nodes.
func (c Counters) TotalMinorFaults() uint64 {
	var sum uint64
	for _, n := range c.Nodes {
		sum += n.MinorFaults
	}
	return sum
}

// HTIMCRatio returns the interconnect-to-memory traffic ratio, the
// NUMA-friendliness metric of Section V-B ("the system is able to process
// more data with less interconnection traffic"). Smaller is better. Returns
// 0 when no memory traffic occurred.
func (c Counters) HTIMCRatio() float64 {
	imc := c.TotalIMCBytes()
	if imc == 0 {
		return 0
	}
	return float64(c.TotalHTBytes()) / float64(imc)
}

// CPULoad returns the mean busy fraction (0..100) over the given cores. A
// nil core list averages over all cores.
func (c Counters) CPULoad(cores []CoreID) float64 {
	if len(cores) == 0 {
		cores = make([]CoreID, len(c.Cores))
		for i := range cores {
			cores[i] = CoreID(i)
		}
	}
	var busy, total uint64
	for _, id := range cores {
		cc := c.Cores[id]
		busy += cc.BusyCycles
		total += cc.BusyCycles + cc.IdleCycles
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(busy) / float64(total)
}
