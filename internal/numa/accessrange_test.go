package numa

import (
	"math/rand"
	"reflect"
	"testing"
)

// accessrange_test.go pins the bulk-charging contract: AccessRange must be
// indistinguishable from the per-block Access loop it replaces — same
// cycles, same interconnect bytes, same counter and cache evolution — for
// arbitrary interleavings of reads, writes, partial blocks and cores.

// rangeBytes mirrors the per-block byte split a caller performs when
// charging rows [startByte, endByte) of a region.
func blockLoopAccess(m *Machine, core CoreID, r RangeAccess) Cost {
	var total Cost
	for i := 0; i < r.Blocks; i++ {
		bytes := m.Topology().BlockBytes
		switch {
		case i == 0 && r.FirstBytes != 0:
			bytes = r.FirstBytes
		case i == r.Blocks-1 && i != 0 && r.LastBytes != 0:
			bytes = r.LastBytes
		}
		c := m.Access(core, Access{Block: r.Start + BlockID(i), Bytes: bytes, Write: r.Write, PID: r.PID})
		total.Cycles += c.Cycles
		total.HTBytes += c.HTBytes
	}
	return total
}

func randomRanges(seed int64, blocks int) []RangeAccess {
	rng := rand.New(rand.NewSource(seed))
	out := make([]RangeAccess, 600)
	for i := range out {
		start := rng.Intn(blocks)
		n := 1 + rng.Intn(blocks-start)
		if n > 40 {
			n = 40
		}
		ra := RangeAccess{
			Start:  BlockID(start),
			Blocks: n,
			Write:  rng.Intn(6) == 0,
			PID:    1 + rng.Intn(3),
		}
		if rng.Intn(2) == 0 {
			ra.FirstBytes = 1 + rng.Intn(16*1024)
		}
		if rng.Intn(2) == 0 {
			ra.LastBytes = 1 + rng.Intn(16*1024)
		}
		out[i] = ra
	}
	return out
}

// TestAccessRangeMatchesAccessLoop replays an identical random access
// history on two machines — one charged block by block, one in bulk — and
// requires bit-identical costs and counters, interleaved with AdvanceTime
// so the congestion factors move.
func TestAccessRangeMatchesAccessLoop(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		topo := Opteron8387()
		loopM := NewMachine(topo)
		bulkM := NewMachine(topo)
		const blocks = 256
		loopM.Memory().Alloc(blocks)
		bulkM.Memory().Alloc(blocks)

		quantum := topo.SecondsToCycles(50e-6)
		cores := topo.TotalCores()
		for i, ra := range randomRanges(seed, blocks) {
			core := CoreID(i % cores)
			a := blockLoopAccess(loopM, core, ra)
			b := bulkM.AccessRange(core, ra)
			if a != b {
				t.Fatalf("seed %d op %d (%+v): cost diverged: loop %+v, bulk %+v", seed, i, ra, a, b)
			}
			if i%3 == 0 {
				loopM.AdvanceTime(quantum)
				bulkM.AdvanceTime(quantum)
			}
		}
		if !reflect.DeepEqual(loopM.Snapshot(), bulkM.Snapshot()) {
			t.Fatalf("seed %d: counters diverged between loop and bulk charging", seed)
		}
		if loopM.HTCongestion() != bulkM.HTCongestion() {
			t.Fatalf("seed %d: congestion factors diverged", seed)
		}
	}
}

// TestAccessRangeNaiveModeMatches runs the same history through a machine
// in naive-charging mode, which must also be identical (it is the same
// arithmetic through the public per-block entry point).
func TestAccessRangeNaiveModeMatches(t *testing.T) {
	topo := Opteron8387()
	fast := NewMachine(topo)
	naive := NewMachine(topo)
	naive.SetNaiveCharging(true)
	const blocks = 128
	fast.Memory().Alloc(blocks)
	naive.Memory().Alloc(blocks)
	for i, ra := range randomRanges(99, blocks) {
		core := CoreID(i % topo.TotalCores())
		a := fast.AccessRange(core, ra)
		b := naive.AccessRange(core, ra)
		if a != b {
			t.Fatalf("op %d (%+v): fast %+v, naive %+v", i, ra, a, b)
		}
	}
	if !reflect.DeepEqual(fast.Snapshot(), naive.Snapshot()) {
		t.Fatal("counters diverged between fast and naive charging")
	}
}

// TestAdvanceTimeIdleMatchesLoop checks the idle fast-forward against the
// tick-by-tick loop, starting from a congested state so the factor decay
// and the refresh cadence are both exercised, across quantum/window
// alignments.
func TestAdvanceTimeIdleMatchesLoop(t *testing.T) {
	congest := func(m *Machine) {
		// Drive remote traffic past the interconnect capacity of several
		// whole refresh windows to push the congestion factors above 1.
		m.Memory().AllocOn(4096, 0, 1)
		window := m.Topology().SecondsToCycles(1e-3)
		for round := 0; round < 8; round++ {
			for i := 0; i < 4000; i++ {
				m.Access(CoreID(15), Access{Block: BlockID(i), Bytes: m.Topology().BlockBytes, PID: 1})
			}
			m.AdvanceTime(window)
		}
	}
	for _, quantum := range []uint64{1000, 140000, 2800001} {
		loopM := NewMachine(Opteron8387())
		bulkM := NewMachine(Opteron8387())
		congest(loopM)
		congest(bulkM)
		if loopM.HTCongestion() <= 1 {
			t.Fatal("test setup failed to congest the interconnect")
		}
		const n = 500000
		for i := 0; i < n; i++ {
			loopM.AdvanceTime(quantum)
		}
		bulkM.AdvanceTimeIdle(quantum, n)
		if loopM.Now() != bulkM.Now() {
			t.Fatalf("quantum %d: Now diverged: loop %d, bulk %d", quantum, loopM.Now(), bulkM.Now())
		}
		if loopM.HTCongestion() != bulkM.HTCongestion() {
			t.Fatalf("quantum %d: congestion diverged: loop %v, bulk %v",
				quantum, loopM.HTCongestion(), bulkM.HTCongestion())
		}
		// The window phase must match too: one more traffic burst +
		// refresh must evolve identically afterwards.
		loopM.AdvanceTime(quantum)
		bulkM.AdvanceTime(quantum)
		if !reflect.DeepEqual(loopM.Snapshot(), bulkM.Snapshot()) {
			t.Fatalf("quantum %d: post-skip state diverged", quantum)
		}
	}
}

// TestBlockTableAgainstMap cross-checks the open-addressing residency
// table (with its backward-shift deletion) against a reference map over a
// long random operation sequence at the table's worst-case load.
func TestBlockTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const capacity = 48
	bt := newBlockTable(capacity)
	ref := make(map[BlockID]int32)
	for step := 0; step < 200000; step++ {
		b := BlockID(rng.Intn(capacity * 4)) // force collisions
		switch {
		case rng.Intn(3) == 0:
			wantV, want := ref[b]
			gotV, got := bt.get(b)
			if got != want || (got && gotV != wantV) {
				t.Fatalf("step %d: get(%d) = %d,%v want %d,%v", step, b, gotV, got, wantV, want)
			}
		case rng.Intn(2) == 0 && len(ref) <= capacity:
			if _, dup := ref[b]; !dup {
				v := int32(step)
				bt.put(b, v)
				ref[b] = v
			}
		default:
			_, want := ref[b]
			if got := bt.del(b); got != want {
				t.Fatalf("step %d: del(%d) = %v, want %v", step, b, got, want)
			}
			delete(ref, b)
		}
		if bt.n != len(ref) {
			t.Fatalf("step %d: n = %d, want %d", step, bt.n, len(ref))
		}
	}
}

// TestLRUSteadyStateZeroAlloc guards the arena-backed cache: steady-state
// hit/miss/evict churn must not allocate.
func TestLRUSteadyStateZeroAlloc(t *testing.T) {
	c := newLRUCache(32)
	for b := 0; b < 64; b++ {
		c.Touch(BlockID(b))
	}
	b := 0
	allocs := testing.AllocsPerRun(500, func() {
		for i := 0; i < 64; i++ {
			c.Touch(BlockID(b % 96))
			b++
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state LRU churn allocated %v times per run, want 0", allocs)
	}
}
