package workload

import (
	"elasticore/internal/db"
	"elasticore/internal/tpch"
)

// phases.go implements the two Section V-C workloads.
//
// Stable phases: "each phase is the concurrent execution of each query at
// a time by 256 users" — query 1 by all users, then query 2, and so on.
//
// Mixed phases: "256 concurrent users continuously running a random query
// out of the 22 queries" — reproduced per query for the split-per-query
// figure: each phase runs one query number with per-client random
// parameter seeds, yielding per-query latency and HT/IMC ratio.

// QueryPhase is the outcome of one query's phase.
type QueryPhase struct {
	QueryNumber int
	PhaseResult
}

// HTIMCRatio returns the phase's interconnect-to-memory traffic ratio.
func (p QueryPhase) HTIMCRatio() float64 { return p.Window.HTIMCRatio() }

// StablePhases runs the 22 queries phase by phase with nClients concurrent
// users each, sampling timelines when sampleEvery > 0.
func StablePhases(r *Rig, nClients int, sampleEvery float64) []QueryPhase {
	out := make([]QueryPhase, 0, tpch.QueryCount)
	for qn := 1; qn <= tpch.QueryCount; qn++ {
		qn := qn
		d := &Driver{Rig: r, QueriesPerClient: 1, SampleEvery: sampleEvery}
		res := d.Run(nClients, func(c, k int) *db.Plan {
			return tpch.Build(qn, r.Opts.Seed*7919+uint64(qn)*131+uint64(c))
		})
		out = append(out, QueryPhase{QueryNumber: qn, PhaseResult: res})
	}
	return out
}

// MixedPhases runs each query number as a phase of nClients users with
// randomized per-client parameters (the per-query split of the mixed
// workload, Figure 19).
func MixedPhases(r *Rig, nClients int) []QueryPhase {
	out := make([]QueryPhase, 0, tpch.QueryCount)
	for qn := 1; qn <= tpch.QueryCount; qn++ {
		qn := qn
		d := &Driver{Rig: r, QueriesPerClient: 1}
		res := d.Run(nClients, func(c, k int) *db.Plan {
			seed := r.Opts.Seed ^ (uint64(qn) << 32) ^ uint64(c*2654435761)
			return tpch.Build(qn, seed)
		})
		out = append(out, QueryPhase{QueryNumber: qn, PhaseResult: res})
	}
	return out
}

// RandomStream drives a true mixed stream: every client runs length
// queries drawn uniformly from the 22 with a per-client deterministic
// sequence (used by the quickstart example and ablations).
func RandomStream(r *Rig, nClients, length int) PhaseResult {
	d := &Driver{Rig: r, QueriesPerClient: length}
	return d.Run(nClients, func(c, k int) *db.Plan {
		x := uint64(c)*0x9E3779B97F4A7C15 + uint64(k)*0xBF58476D1CE4E5B9 + r.Opts.Seed
		x ^= x >> 29
		qn := int(x%tpch.QueryCount) + 1
		return tpch.Build(qn, x)
	})
}
