package workload

import (
	"testing"

	"elasticore/internal/db"
	"elasticore/internal/tenant"
	"elasticore/internal/tpch"
)

func twoTenantRig(t *testing.T) *MultiRig {
	t.Helper()
	m, err := NewMultiRig(MultiOptions{
		Tenants: []TenantSpec{
			{Name: "gold", SF: 0.002, Mode: ModeDense, SLA: tenant.SLA{Weight: 4, MinCores: 2}},
			{Name: "bronze", SF: 0.002, Mode: ModeSparse, SLA: tenant.SLA{Weight: 1, MinCores: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMultiRigBuildsIsolatedTenants(t *testing.T) {
	m := twoTenantRig(t)
	if len(m.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(m.Tenants))
	}
	if m.Tenants[0].PID == m.Tenants[1].PID {
		t.Error("tenants share a PID")
	}
	if m.Tenants[0].Store == m.Tenants[1].Store {
		t.Error("tenants share a store")
	}
	if !m.Tenants[0].Allocated().Intersect(m.Tenants[1].Allocated()).IsEmpty() {
		t.Errorf("initial cpusets overlap: %v vs %v",
			m.Tenants[0].Allocated(), m.Tenants[1].Allocated())
	}
	for _, tr := range m.Tenants {
		if got := tr.Allocated().Count(); got != tr.SLA.MinCores {
			t.Errorf("tenant %s starts with %d cores, want floor %d", tr.Name, got, tr.SLA.MinCores)
		}
		if tr.Dataset == nil || tr.Engine == nil {
			t.Errorf("tenant %s missing dataset or engine", tr.Name)
		}
	}
}

func TestNewMultiRigRejectsBadSpecs(t *testing.T) {
	if _, err := NewMultiRig(MultiOptions{}); err == nil {
		t.Error("empty tenant list accepted")
	}
	_, err := NewMultiRig(MultiOptions{Tenants: []TenantSpec{{Name: "x", Mode: ModeOS}}})
	if err == nil {
		t.Error("ModeOS tenant accepted")
	}
}

func TestMultiRigRunConcurrentTenants(t *testing.T) {
	m := twoTenantRig(t)
	q6 := func(c, k int) *db.Plan { return tpch.Build(6, uint64(c*100+k+1)) }
	res, err := m.Run([]TenantLoad{
		{Clients: 8, QueriesPerClient: 2, Plan: q6},
		{Clients: 8, QueriesPerClient: 2, Plan: q6},
	}, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakTotalCores > res.MachineCores {
		t.Errorf("over-commit: peak %d cores on a %d-core machine", res.PeakTotalCores, res.MachineCores)
	}
	for i, tr := range res.Tenants {
		if tr.Completed == 0 {
			t.Errorf("tenant %s completed no queries", tr.Tenant)
		}
		if tr.MinCores < m.Tenants[i].SLA.MinCores {
			t.Errorf("tenant %s dipped to %d cores, below its floor %d",
				tr.Tenant, tr.MinCores, m.Tenants[i].SLA.MinCores)
		}
		if tr.MeanCores <= 0 || tr.MaxCores < tr.MinCores {
			t.Errorf("tenant %s has degenerate core stats: %+v", tr.Tenant, tr)
		}
	}
}

func TestMultiRigRunLoadCountMustMatch(t *testing.T) {
	m := twoTenantRig(t)
	if _, err := m.Run([]TenantLoad{{Clients: 1}}, 0, 1); err == nil {
		t.Error("mismatched load count accepted")
	}
}

func TestMultiRigAdaptiveTenants(t *testing.T) {
	m, err := NewMultiRig(MultiOptions{
		Tenants: []TenantSpec{
			{Name: "a", SF: 0.002, Mode: ModeAdaptive},
			{Name: "b", SF: 0.002, Mode: ModeAdaptive},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	q1 := func(c, k int) *db.Plan { return tpch.Build(1, uint64(c+1)) }
	res, err := m.Run([]TenantLoad{
		{Clients: 4, Plan: q1},
		{Clients: 4, Plan: q1},
	}, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakTotalCores > res.MachineCores {
		t.Errorf("over-commit: peak %d of %d", res.PeakTotalCores, res.MachineCores)
	}
}
