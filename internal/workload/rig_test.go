package workload

import (
	"testing"

	"elasticore/internal/db"
	"elasticore/internal/numa"
	"elasticore/internal/tpch"
)

func TestTouchDeltaResidencyFirstSampleAndDeltas(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	res := touchDeltaResidency(machine)

	// Home two blocks on node 2 and touch them: the touches land in node
	// 2's DataTouches counter.
	region := machine.Memory().AllocOn(2, 2, 1)
	machine.Access(0, numa.Access{Block: region.Block(0), Bytes: 64, PID: 1})
	machine.Access(0, numa.Access{Block: region.Block(1), Bytes: 64, PID: 1})

	first := res()
	if len(first) != 4 {
		t.Fatalf("residency has %d nodes, want 4", len(first))
	}
	// First sample: the delta against an all-zero baseline, i.e. the
	// cumulative touches so far.
	if first[2] != 2 {
		t.Errorf("first sample node2 = %d, want the 2 cumulative touches", first[2])
	}
	for _, n := range []int{0, 1, 3} {
		if first[n] != 0 {
			t.Errorf("first sample node%d = %d, want 0", n, first[n])
		}
	}

	// No traffic in between: the second sample must be all zero, not the
	// cumulative counts again.
	second := res()
	for n, v := range second {
		if v != 0 {
			t.Errorf("quiet window node%d = %d, want 0", n, v)
		}
	}

	// One more touch: only the delta shows.
	machine.Access(0, numa.Access{Block: region.Block(0), Bytes: 64, PID: 1})
	third := res()
	if third[2] != 1 {
		t.Errorf("third sample node2 = %d, want delta 1", third[2])
	}
}

func TestNewRigAdaptiveMode(t *testing.T) {
	r, err := NewRig(Options{SF: 0.002, Mode: ModeAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mech == nil {
		t.Fatal("adaptive rig has no mechanism")
	}
	// Drive a short burst so the adaptive allocator's residency source is
	// actually consulted under load.
	d := &Driver{Rig: r, QueriesPerClient: 1, MaxSeconds: 5}
	res := d.RunSameQuery(8, func(seed uint64) *db.Plan { return tpch.Build(6, seed) })
	if res.Completed == 0 {
		t.Error("no queries completed on the adaptive rig")
	}
	if len(r.Mech.Events()) == 0 {
		t.Error("mechanism never evaluated")
	}
}
