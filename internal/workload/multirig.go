package workload

import (
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/elastic"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/sched"
	"elasticore/internal/tenant"
	"elasticore/internal/tpch"
)

// TenantSpec configures one tenant of a MultiRig: an independent database
// with its own TPC-H dataset, engine, cgroup, allocation mode and SLA.
type TenantSpec struct {
	// Name identifies the tenant (cgroup name, report rows).
	Name string
	// SF is the tenant's TPC-H scale factor (default 0.005).
	SF float64
	// Seed varies the tenant's dataset and workload (default: tenant
	// index + 1).
	Seed uint64
	// Mode is the tenant's allocation mode; ModeOS is invalid here — a
	// consolidated tenant always runs under its own mechanism
	// (default ModeDense).
	Mode Mode
	// SLA is the tenant's agreement (defaults: weight 1, min 1 core).
	SLA tenant.SLA
	// Placement selects the tenant's engine flavour.
	Placement db.Placement
	// Strategy overrides the tenant's state-transition metric
	// (default CPU load).
	Strategy elastic.Strategy
}

// MultiOptions configures NewMultiRig.
type MultiOptions struct {
	// Tenants describes the consolidated databases (at least one).
	Tenants []TenantSpec
	// Quantum overrides the scheduler quantum in cycles.
	Quantum uint64
	// ControlPeriod overrides both the per-tenant mechanism period and
	// the arbitration period, in cycles.
	ControlPeriod uint64
	// Topology overrides the machine shape; the default scales the
	// Opteron testbed to the tenants' aggregate scale factor.
	Topology *numa.Topology
	// Naive runs the consolidated rig on the pre-optimization hot paths
	// (see Options.Naive); results are bit-identical either way.
	Naive bool
	// Bus, when set, is attached to the shared scheduler and arbiter and
	// to every tenant's engine and mechanism, labelling per-tenant events
	// with the tenant name.
	Bus *obs.Bus
}

// TenantRig is one consolidated tenant: the arbitrated Tenant plus its
// private store, dataset and engine.
type TenantRig struct {
	*tenant.Tenant
	Spec    TenantSpec
	Store   *db.Store
	Engine  *db.Engine
	Dataset *tpch.Dataset
	// PID is the tenant's simulated server process id.
	PID int
}

// MultiRig consolidates several tenant databases onto one machine under a
// core arbiter — the multi-tenant counterpart of Rig.
type MultiRig struct {
	Machine *numa.Machine
	Sched   *sched.Scheduler
	Arbiter *tenant.Arbiter
	Tenants []*TenantRig
	Opts    MultiOptions
	// Bus is the telemetry bus attached to the rig's producers; nil when
	// the rig runs dark.
	Bus *obs.Bus
}

// NewMultiRig builds the shared machine and scheduler, then one store,
// dataset, engine, cgroup and arbitrated tenant per spec.
func NewMultiRig(opts MultiOptions) (*MultiRig, error) {
	if len(opts.Tenants) == 0 {
		return nil, fmt.Errorf("workload: at least one tenant is required")
	}
	aggregateSF := 0.0
	for i := range opts.Tenants {
		if opts.Tenants[i].SF == 0 {
			opts.Tenants[i].SF = 0.005
		}
		if opts.Tenants[i].Seed == 0 {
			opts.Tenants[i].Seed = uint64(i + 1)
		}
		if opts.Tenants[i].Name == "" {
			opts.Tenants[i].Name = fmt.Sprintf("tenant%d", i)
		}
		aggregateSF += opts.Tenants[i].SF
	}
	topoIn := opts.Topology
	if topoIn == nil {
		topoIn = ScaledTopology(aggregateSF)
	}
	machine := numa.NewMachine(topoIn)
	machine.SetNaiveCharging(opts.Naive)
	topo := machine.Topology()
	quantum := opts.Quantum
	if quantum == 0 {
		quantum = topo.SecondsToCycles(50e-6)
	}
	if opts.ControlPeriod == 0 {
		opts.ControlPeriod = topo.SecondsToCycles(0.25e-3)
	}
	sc := sched.New(machine, sched.Config{Quantum: quantum, Naive: opts.Naive})
	arb, err := tenant.NewArbiter(tenant.ArbiterConfig{
		Scheduler:     sc,
		ControlPeriod: opts.ControlPeriod,
	})
	if err != nil {
		return nil, err
	}
	m := &MultiRig{Machine: machine, Sched: sc, Arbiter: arb, Opts: opts}
	if opts.Bus != nil {
		m.Bus = opts.Bus
		sc.SetBus(opts.Bus)
		arb.SetBus(opts.Bus)
	}

	for i, spec := range opts.Tenants {
		pid := DBMSPID + i
		store := db.NewStore(machine)
		store.SetLoadPID(pid)
		ds, err := tpch.Load(store, tpch.Config{SF: spec.SF, Seed: spec.Seed, NoCache: opts.Naive})
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", spec.Name, err)
		}
		group := sc.NewCGroup(spec.Name)
		group.AddPID(pid)
		eng, err := db.NewEngine(store, db.Config{
			Scheduler: sc,
			PID:       pid,
			Placement: spec.Placement,
			Naive:     opts.Naive,
		})
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", spec.Name, err)
		}
		alloc, err := allocatorFor(spec.Mode, machine, group)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", spec.Name, err)
		}
		tn, err := tenant.New(tenant.Config{
			Name:          spec.Name,
			Scheduler:     sc,
			CGroup:        group,
			Allocator:     alloc,
			Strategy:      spec.Strategy,
			SLA:           spec.SLA,
			ControlPeriod: opts.ControlPeriod,
		})
		if err != nil {
			return nil, err
		}
		if err := arb.Add(tn); err != nil {
			return nil, err
		}
		if opts.Bus != nil {
			eng.SetBus(opts.Bus, spec.Name)
			tn.Mech.SetBus(opts.Bus, spec.Name)
		}
		m.Tenants = append(m.Tenants, &TenantRig{
			Tenant:  tn,
			Spec:    spec,
			Store:   store,
			Engine:  eng,
			Dataset: ds,
			PID:     pid,
		})
	}
	return m, nil
}

// allocatorFor maps a rig Mode to a tenant's allocation mode. The adaptive
// mode follows the tenant's own page residency, so each tenant is steered
// toward the sockets holding *its* data.
func allocatorFor(mode Mode, machine *numa.Machine, group *sched.CGroup) (elastic.Allocator, error) {
	topo := machine.Topology()
	switch mode {
	case ModeDense:
		return elastic.NewDense(topo), nil
	case ModeSparse:
		return elastic.NewSparse(topo), nil
	case ModeAdaptive:
		return elastic.NewAdaptive(topo, func() []int {
			return machine.Residency(group.PIDs())
		}), nil
	default:
		return nil, fmt.Errorf("workload: mode %v is not a tenant allocation mode", mode)
	}
}

// Tick advances the rig by one scheduler quantum, running the arbitration
// loop when due.
func (m *MultiRig) Tick() {
	m.Sched.Tick()
	m.Arbiter.Maybe()
}

// NowSeconds returns the rig's virtual time.
func (m *MultiRig) NowSeconds() float64 { return m.Machine.NowSeconds() }

// TenantLoad describes one tenant's client streams for MultiRig.Run.
type TenantLoad struct {
	// Clients is the number of concurrent client streams.
	Clients int
	// QueriesPerClient is each stream's length (default 1).
	QueriesPerClient int
	// Plan supplies the k-th query of client c; nil ends the stream.
	Plan PlanFor
	// OnDone, when non-nil, observes each finished query before release
	// (per-class accounting in heterogeneous mixes).
	OnDone QueryDone
}

// TenantPhaseResult is one tenant's outcome of a consolidated phase.
type TenantPhaseResult struct {
	// Tenant is the tenant name.
	Tenant string
	PhaseResult
	// MinCores, MaxCores, MeanCores summarize the tenant's allocation
	// over the phase (sampled every tick).
	MinCores, MaxCores int
	MeanCores          float64
}

// MultiPhaseResult is the outcome of one consolidated phase.
type MultiPhaseResult struct {
	// Tenants holds per-tenant results, in rig order.
	Tenants []TenantPhaseResult
	// ElapsedSeconds is the phase's virtual wall time.
	ElapsedSeconds float64
	// PeakTotalCores is the largest number of cores held by all tenants
	// together at any tick — never above the machine size if the arbiter
	// honours its invariant.
	PeakTotalCores int
	// MachineCores is the machine size, for over-commit checks.
	MachineCores int
}

// Run drives every tenant's client streams concurrently over the shared
// machine — each client submits its next query as soon as the previous one
// finishes — and returns per-tenant summaries. sampleEvery > 0 records
// per-tenant allocation timelines at that virtual-time interval;
// maxSeconds bounds the phase (default 600 virtual seconds).
func (m *MultiRig) Run(loads []TenantLoad, sampleEvery, maxSeconds float64) (*MultiPhaseResult, error) {
	if len(loads) != len(m.Tenants) {
		return nil, fmt.Errorf("workload: %d loads for %d tenants", len(loads), len(m.Tenants))
	}
	if maxSeconds == 0 {
		maxSeconds = 600
	}
	type tenantState struct {
		streams *streamSet
		// allocation statistics, sampled every tick
		minCores, maxCores int
		coreTicks          uint64
		samples            []Sample
		sampleSnap         numa.Counters
	}
	states := make([]*tenantState, len(m.Tenants))
	for i, tr := range m.Tenants {
		ld := loads[i]
		if ld.QueriesPerClient == 0 {
			ld.QueriesPerClient = 1
		}
		n := tr.Allocated().Count()
		states[i] = &tenantState{
			streams:    newStreamSet(tr.Engine, m.Machine.Topology(), ld.Clients, ld.QueriesPerClient, ld.Plan),
			minCores:   n,
			maxCores:   n,
			sampleSnap: m.Machine.Snapshot(),
		}
		states[i].streams.onDone = ld.OnDone
	}

	startTime := m.Machine.NowSeconds()
	startSnap := m.Machine.Snapshot()
	startStats := m.Sched.Stats()
	deadline := startTime + maxSeconds
	lastSample := startTime
	ticks := uint64(0)
	peakTotal := m.Arbiter.AllocatedTotal()

	active := func() bool {
		for _, st := range states {
			if st.streams.Active() {
				return true
			}
		}
		return false
	}

	for active() && m.Machine.NowSeconds() < deadline {
		m.Tick()
		ticks++
		total := 0
		for i, tr := range m.Tenants {
			st := states[i]
			st.streams.Pump()
			n := tr.Allocated().Count()
			if n < st.minCores {
				st.minCores = n
			}
			if n > st.maxCores {
				st.maxCores = n
			}
			st.coreTicks += uint64(n)
			total += n
		}
		if total > peakTotal {
			peakTotal = total
		}
		if sampleEvery > 0 && m.Machine.NowSeconds()-lastSample >= sampleEvery {
			snap := m.Machine.Snapshot()
			for i, tr := range m.Tenants {
				st := states[i]
				st.samples = append(st.samples, Sample{
					AtSeconds: m.Machine.NowSeconds() - startTime,
					Window:    snap.Sub(st.sampleSnap),
					Allocated: tr.Allocated().Count(),
				})
				st.sampleSnap = snap
			}
			lastSample = m.Machine.NowSeconds()
		}
	}

	endSnap := m.Machine.Snapshot()
	res := &MultiPhaseResult{
		ElapsedSeconds: m.Machine.NowSeconds() - startTime,
		PeakTotalCores: peakTotal,
		MachineCores:   m.Machine.Topology().TotalCores(),
	}
	// Hardware counters and scheduler stats are machine-wide; their
	// deltas are shared by all tenants rather than attributed per tenant.
	window := endSnap.Sub(startSnap)
	stats := schedDelta(startStats, m.Sched.Stats())
	for i, tr := range m.Tenants {
		st := states[i]
		pr := PhaseResult{
			ElapsedSeconds: res.ElapsedSeconds,
			Completed:      st.streams.Completed,
			Window:         window,
			Sched:          stats,
			Samples:        st.samples,
		}
		if pr.ElapsedSeconds > 0 {
			pr.Throughput = float64(pr.Completed) / pr.ElapsedSeconds
		}
		if pr.Completed > 0 {
			pr.MeanLatencySeconds = st.streams.LatencySum / float64(pr.Completed)
		}
		tpr := TenantPhaseResult{
			Tenant:      tr.Name,
			PhaseResult: pr,
			MinCores:    st.minCores,
			MaxCores:    st.maxCores,
		}
		if ticks > 0 {
			tpr.MeanCores = float64(st.coreTicks) / float64(ticks)
		}
		res.Tenants = append(res.Tenants, tpr)
		tr.Engine.Drain()
	}
	return res, nil
}
