package workload

import (
	"testing"

	"elasticore/internal/db"
	"elasticore/internal/numa"
	"elasticore/internal/tpch"
)

func mustRig(t *testing.T, opts Options) *Rig {
	t.Helper()
	if opts.SF == 0 {
		opts.SF = 0.002
	}
	// Tiny datasets finish fast: shrink the quantum and control period so
	// the mechanism gets several control steps per phase.
	topo := numa.Opteron8387()
	if opts.Quantum == 0 {
		opts.Quantum = topo.SecondsToCycles(0.2e-3)
	}
	if opts.ControlPeriod == 0 {
		opts.ControlPeriod = topo.SecondsToCycles(1e-3)
	}
	r, err := NewRig(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDriverRunsConcurrentClients(t *testing.T) {
	r := mustRig(t, Options{Mode: ModeOS})
	d := &Driver{Rig: r, QueriesPerClient: 2}
	res := d.RunSameQuery(4, tpch.BuildQ6)
	if res.Completed != 8 {
		t.Errorf("completed %d queries, want 8", res.Completed)
	}
	if res.Throughput <= 0 || res.ElapsedSeconds <= 0 {
		t.Errorf("throughput %g over %gs", res.Throughput, res.ElapsedSeconds)
	}
	if res.MeanLatencySeconds <= 0 {
		t.Error("zero mean latency")
	}
	if res.Window.TotalIMCBytes() == 0 {
		t.Error("phase window has no memory traffic")
	}
}

func TestModesProduceDifferentAllocations(t *testing.T) {
	for _, mode := range []Mode{ModeDense, ModeSparse, ModeAdaptive} {
		r := mustRig(t, Options{Mode: mode})
		if r.Mech == nil {
			t.Fatalf("%v rig has no mechanism", mode)
		}
		if got := r.AllocatedCores(); got != 1 {
			t.Errorf("%v initial cores = %d, want 1", mode, got)
		}
		d := &Driver{Rig: r, QueriesPerClient: 1}
		d.RunSameQuery(16, tpch.BuildQ6)
		if len(r.Mech.Events()) == 0 {
			t.Errorf("%v recorded no transitions", mode)
		}
	}
	osRig := mustRig(t, Options{Mode: ModeOS})
	if osRig.Mech != nil {
		t.Error("OS rig must have no mechanism")
	}
	if got := osRig.AllocatedCores(); got != 16 {
		t.Errorf("OS rig cores = %d, want all 16", got)
	}
}

func TestDriverSampling(t *testing.T) {
	r := mustRig(t, Options{Mode: ModeAdaptive})
	d := &Driver{Rig: r, QueriesPerClient: 4, SampleEvery: 0.0005}
	res := d.RunSameQuery(16, tpch.BuildQ6)
	if len(res.Samples) == 0 {
		t.Fatal("no timeline samples recorded")
	}
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].AtSeconds <= res.Samples[i-1].AtSeconds {
			t.Error("samples not time-ordered")
		}
	}
	for _, s := range res.Samples {
		if s.Allocated < 1 || s.Allocated > 16 {
			t.Errorf("sample allocation %d out of range", s.Allocated)
		}
	}
}

func TestStablePhasesCoversAllQueries(t *testing.T) {
	r := mustRig(t, Options{Mode: ModeOS})
	phases := StablePhases(r, 2, 0)
	if len(phases) != tpch.QueryCount {
		t.Fatalf("%d phases, want %d", len(phases), tpch.QueryCount)
	}
	for _, p := range phases {
		if p.Completed != 2 {
			t.Errorf("Q%d completed %d, want 2", p.QueryNumber, p.Completed)
		}
	}
}

func TestMixedPhasesRatioComputed(t *testing.T) {
	// ModeOS scatters 16 workers across all nodes, guaranteeing remote
	// traffic on shared base columns.
	r := mustRig(t, Options{Mode: ModeOS})
	phases := MixedPhases(r, 2)
	if len(phases) != tpch.QueryCount {
		t.Fatalf("%d phases, want %d", len(phases), tpch.QueryCount)
	}
	anyTraffic := false
	for _, p := range phases {
		if p.HTIMCRatio() > 0 {
			anyTraffic = true
		}
	}
	if !anyTraffic {
		t.Error("no phase produced interconnect traffic")
	}
}

func TestRandomStreamDeterministic(t *testing.T) {
	run := func() PhaseResult {
		r := mustRig(t, Options{Mode: ModeOS, Seed: 5})
		return RandomStream(r, 3, 2)
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.ElapsedSeconds != b.ElapsedSeconds {
		t.Errorf("random stream not deterministic: %+v vs %+v", a, b)
	}
	if a.Completed != 6 {
		t.Errorf("completed %d, want 6", a.Completed)
	}
}

func TestNUMAAwareRigWorks(t *testing.T) {
	r := mustRig(t, Options{Mode: ModeAdaptive, Placement: db.PlacementNUMAAware})
	d := &Driver{Rig: r, QueriesPerClient: 1}
	res := d.RunSameQuery(4, tpch.BuildQ6)
	if res.Completed != 4 {
		t.Errorf("completed %d, want 4", res.Completed)
	}
}
