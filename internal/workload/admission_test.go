package workload

import (
	"testing"

	"elasticore/internal/db"
	"elasticore/internal/tpch"
)

// admission_test.go covers the failure-path additions to the shared
// admission layer: crash aborts (FailAll + zombie reaping), brownout
// queue tightening and the Down gate on Fill.

// admRig builds a small rig plus an Admission with tight limits.
func admRig(t *testing.T) (*Rig, *Admission) {
	t.Helper()
	r, err := NewRig(Options{SF: 0.002, Seed: 1, Mode: ModeOS})
	if err != nil {
		t.Fatal(err)
	}
	return r, &Admission{Rig: r, MaxInFlight: 2, QueueCap: 4}
}

func q6plan(k int, tag int64) *db.Plan { return tpch.BuildQ6(uint64(tag) + 1) }

func TestAdmissionFailAllAndZombies(t *testing.T) {
	r, a := admRig(t)
	var failed []int64
	a.OnFail = func(tag int64) { failed = append(failed, tag) }
	a.OnComplete = func(tag int64, q *db.Query, total, service uint64) {
		t.Errorf("aborted request %d reported completion", tag)
	}

	for tag := int64(0); tag < 2; tag++ {
		if !a.Offer(0, 0, tag) {
			t.Fatalf("offer %d dropped below the cap", tag)
		}
	}
	a.Fill(0, q6plan)
	for tag := int64(2); tag < 5; tag++ {
		if !a.Offer(0, 0, tag) {
			t.Fatalf("offer %d dropped below the cap", tag)
		}
	}
	if a.InFlight() != 2 || a.QueueLen() != 3 {
		t.Fatalf("in flight %d queued %d, want 2/3", a.InFlight(), a.QueueLen())
	}

	a.Down = true
	a.FailAll()
	if a.Failed != 5 || len(failed) != 5 {
		t.Fatalf("Failed=%d callbacks=%d, want 5", a.Failed, len(failed))
	}
	// FCFS abort order: the three queued tags first, then the flights.
	want := []int64{2, 3, 4, 0, 1}
	for i, tag := range want {
		if failed[i] != tag {
			t.Fatalf("abort order %v, want %v", failed, want)
		}
	}
	if !a.Idle() {
		t.Fatal("admission not idle after FailAll (zombies must not count)")
	}

	// While down, nothing seats even if something sneaks into the queue.
	a.Offer(0, 0, 9)
	a.Fill(0, q6plan)
	if a.InFlight() != 0 {
		t.Fatal("Fill seated a query on a down machine")
	}

	// Recovery: the zombie queries finish and are reaped silently.
	a.Down = false
	for i := 0; i < 100000 && r.Engine.ActiveQueries() > 0; i++ {
		r.Tick()
		a.Collect(r.Machine.Now())
	}
	if r.Engine.ActiveQueries() != 0 {
		t.Fatal("zombie queries never finished after recovery")
	}
	if a.Completed != 0 || a.Latency.Count() != 0 {
		t.Fatal("zombie reaping leaked into completion stats")
	}
}

func TestAdmissionBrownout(t *testing.T) {
	_, a := admRig(t)
	a.BrownoutCap = 2
	admitted := 0
	for tag := int64(0); tag < 4; tag++ {
		if a.Offer(0, 0, tag) {
			admitted++
		}
	}
	if admitted != 2 || a.Dropped != 2 {
		t.Fatalf("brownout admitted %d dropped %d, want 2/2", admitted, a.Dropped)
	}
	a.BrownoutCap = 0
	if !a.Offer(0, 0, 9) {
		t.Fatal("clearing the brownout did not restore the full queue cap")
	}
}
