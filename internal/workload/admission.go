package workload

import (
	"elasticore/internal/db"
	"elasticore/internal/deque"
	"elasticore/internal/metrics"
	"elasticore/internal/obs"
)

// admission.go is the per-machine admission layer shared by the
// single-machine OpenDriver and the cluster Coordinator: a bounded FCFS
// queue of pending requests plus a fixed pool of server sessions on one
// rig's engine. The split keeps OpenDriver a thin arrival-replay loop and
// lets a cluster driver run one Admission per fleet machine while routing
// between them. Every state change here is deterministic — FCFS pops,
// order-preserving session compaction, integer-cycle bookkeeping — so a
// refactored driver stays bit-identical to the pre-split one.

// pendingRequest is one queued arrival awaiting a server session.
type pendingRequest struct {
	// at is the arrival cycle (queue-wait accounting baseline).
	at uint64
	// tag is a caller-defined request id threaded through to OnComplete;
	// the cluster coordinator uses it to find the routed parent request.
	tag int64
}

// admFlight tracks one admitted query until completion.
type admFlight struct {
	q          *db.Query
	waitCycles uint64
	tag        int64
}

// Admission is one machine's bounded admission queue plus server-session
// pool. Zero-value fields select the OpenDriver defaults at first use via
// normalize; callers drive it with Offer (arrival), Fill (seat queued
// requests) and Collect (reap completions) from their own loop.
type Admission struct {
	// Rig is the machine whose engine executes admitted queries.
	Rig *Rig
	// MaxInFlight is the number of concurrent server sessions; zero
	// selects 64. Arrivals beyond it queue.
	MaxInFlight int
	// QueueCap bounds the admission queue; zero selects 1024. An arrival
	// finding the queue full is dropped (counted, never executed).
	QueueCap int
	// MachineID labels this machine's bus events; zero on single-machine
	// drivers, the fleet index under a cluster coordinator.
	MachineID int32

	// OnComplete, when set, observes each completion after the histograms
	// update: the request's tag, the finished query (still valid — called
	// before Release, so scatter-gather callers can read partial scalars)
	// and the total latency and service cycles.
	OnComplete func(tag int64, q *db.Query, total, service uint64)
	// OnFail, when set, observes each request aborted by FailAll (the
	// machine crashed under it); the coordinator uses it to retry or
	// fail the routed parent. Callers must not re-enter the Admission
	// from inside the callback.
	OnFail func(tag int64)

	// Down marks the machine as crashed: the coordinator stops offering
	// arrivals here until it clears. The flag is bookkeeping only —
	// Offer itself stays untouched so healthy-path behavior is
	// bit-identical with faults compiled out.
	Down bool
	// BrownoutCap, when positive and below QueueCap, temporarily
	// tightens the admission queue (health-monitor load shedding while
	// the fleet rebuilds capacity after a failure).
	BrownoutCap int

	queue   deque.Deque[pendingRequest]
	flights []admFlight
	// zombies are flights whose requester gave up (FailAll aborted
	// them) but whose queries are still executing; their sessions are
	// released silently once the engine finishes them.
	zombies []admFlight

	// Offered counts arrivals presented to Offer; Admitted those seated
	// into a session; Dropped those rejected at a full queue; Completed
	// those whose query finished; Failed those aborted by FailAll.
	// Offered - Admitted - Dropped requests are still queued.
	Offered, Admitted, Dropped, Completed, Failed int
	// PeakQueueDepth and PeakInFlight are maxima over UpdatePeaks calls.
	PeakQueueDepth, PeakInFlight int
	// QueueWait, Service and Latency accumulate per-query cycles.
	QueueWait, Service, Latency metrics.Histogram
}

// normalize applies the zero-value defaults.
func (a *Admission) normalize() {
	if a.MaxInFlight <= 0 {
		a.MaxInFlight = 64
	}
	if a.QueueCap <= 0 {
		a.QueueCap = 1024
	}
	if a.flights == nil {
		a.flights = make([]admFlight, 0, a.MaxInFlight)
	}
}

// QueueLen is the instantaneous admission-queue depth (the elastic
// mechanism's backlog signal).
func (a *Admission) QueueLen() int { return a.queue.Len() }

// InFlight is the number of occupied server sessions.
func (a *Admission) InFlight() int { return len(a.flights) }

// Idle reports whether nothing is queued or executing. Zombie flights
// don't count: their requesters already saw a failure, so no caller is
// waiting on them.
func (a *Admission) Idle() bool { return a.queue.Len() == 0 && len(a.flights) == 0 }

// FailAll aborts every queued and in-flight request (the machine under
// this admission crashed): queued requests are dropped outright,
// in-flight queries become zombies reaped silently by later Collect
// calls, and OnFail fires per aborted tag in deterministic order
// (queue FCFS, then flight seating order).
func (a *Admission) FailAll() {
	for a.queue.Len() > 0 {
		req, _ := a.queue.PopFront()
		a.Failed++
		if a.OnFail != nil {
			a.OnFail(req.tag)
		}
	}
	for _, f := range a.flights {
		a.zombies = append(a.zombies, f)
		a.Failed++
		if a.OnFail != nil {
			a.OnFail(f.tag)
		}
	}
	a.flights = a.flights[:0]
}

// Collect reaps finished queries, freeing their sessions and recording
// latency. Order-preserving compaction keeps the release order (and thus
// engine buffer reuse) deterministic.
func (a *Admission) Collect(nowC uint64) {
	bus := a.Rig.Bus
	kept := a.flights[:0]
	for _, f := range a.flights {
		if !f.q.Done() {
			kept = append(kept, f)
			continue
		}
		service := f.q.ElapsedCycles()
		total := f.waitCycles + service
		a.QueueWait.Record(f.waitCycles)
		a.Service.Record(service)
		a.Latency.Record(total)
		a.Completed++
		if bus != nil {
			bus.Publish(obs.Event{
				Kind:    obs.KindQueryDone,
				Now:     nowC,
				Core:    -1,
				Dur:     total,
				V1:      int64(service),
				Machine: a.MachineID,
			})
		}
		if a.OnComplete != nil {
			a.OnComplete(f.tag, f.q, total, service)
		}
		a.Rig.Engine.Release(f.q)
	}
	a.flights = kept
	if len(a.zombies) > 0 {
		zkept := a.zombies[:0]
		for _, f := range a.zombies {
			if !f.q.Done() {
				zkept = append(zkept, f)
				continue
			}
			// The requester already counted this a failure: no
			// histograms, no events — just recycle the session.
			a.Rig.Engine.Release(f.q)
		}
		a.zombies = zkept
	}
}

// Offer presents one arrival (arrival cycle at, caller tag) against the
// instantaneous queue depth, reporting whether it was queued or dropped.
func (a *Admission) Offer(nowC, at uint64, tag int64) bool {
	a.normalize()
	a.Offered++
	qcap := a.QueueCap
	if a.BrownoutCap > 0 && a.BrownoutCap < qcap {
		qcap = a.BrownoutCap
	}
	if a.queue.Len() >= qcap {
		a.Dropped++
		if bus := a.Rig.Bus; bus != nil {
			bus.Publish(obs.Event{
				Kind:    obs.KindShed,
				Now:     nowC,
				Core:    -1,
				V1:      int64(a.queue.Len()),
				Machine: a.MachineID,
			})
		}
		return false
	}
	a.queue.PushBack(pendingRequest{at: at, tag: tag})
	return true
}

// Fill seats queued requests into free server sessions FCFS. plan builds
// the k-th admitted query of this machine (0-based) from its tag.
func (a *Admission) Fill(nowC uint64, plan func(k int, tag int64) *db.Plan) {
	a.normalize()
	if a.Down {
		return // a crashed machine seats nothing until recovery
	}
	for len(a.flights) < a.MaxInFlight && a.queue.Len() > 0 {
		req, _ := a.queue.PopFront()
		p := plan(a.Admitted, req.tag)
		a.Admitted++
		q := a.Rig.Engine.Submit(p)
		a.flights = append(a.flights, admFlight{q: q, waitCycles: nowC - req.at, tag: req.tag})
		if bus := a.Rig.Bus; bus != nil {
			bus.Publish(obs.Event{
				Kind:    obs.KindAdmit,
				Now:     nowC,
				Core:    -1,
				Dur:     nowC - req.at,
				V1:      int64(a.queue.Len()),
				V2:      int64(len(a.flights)),
				Machine: a.MachineID,
			})
		}
	}
}

// UpdatePeaks folds the instantaneous depths into the phase maxima.
func (a *Admission) UpdatePeaks() {
	if a.queue.Len() > a.PeakQueueDepth {
		a.PeakQueueDepth = a.queue.Len()
	}
	if len(a.flights) > a.PeakInFlight {
		a.PeakInFlight = len(a.flights)
	}
}
