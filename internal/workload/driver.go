package workload

import (
	"elasticore/internal/db"
	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// PlanFor supplies the k-th query of client c (both 0-based). Returning
// nil ends the client's stream early.
type PlanFor func(client, k int) *db.Plan

// PhaseResult summarizes one driven phase.
type PhaseResult struct {
	// ElapsedSeconds is the virtual wall time of the phase.
	ElapsedSeconds float64
	// Completed counts finished queries.
	Completed int
	// Throughput is queries per virtual second.
	Throughput float64
	// MeanLatencySeconds averages per-query latency.
	MeanLatencySeconds float64
	// Window is the counter delta over the phase.
	Window numa.Counters
	// Sched is the scheduler stats delta over the phase.
	Sched sched.Stats
	// Samples are periodic sub-window snapshots (timeline plots); empty
	// unless SampleEvery was set.
	Samples []Sample
}

// Sample is one timeline point: the counter window since the previous
// sample plus the instantaneous allocation.
type Sample struct {
	AtSeconds float64
	Window    numa.Counters
	Allocated int
}

// Driver runs concurrent client streams against a rig, submitting each
// client's next query as soon as its previous one finishes — the paper's
// execution protocol with 1..256 concurrent users.
type Driver struct {
	Rig *Rig
	// QueriesPerClient is each client's stream length.
	QueriesPerClient int
	// SampleEvery, when positive, records timeline samples at this
	// virtual-time interval in seconds.
	SampleEvery float64
	// MaxSeconds bounds the phase (default 600 virtual seconds).
	MaxSeconds float64
}

// Run drives nClients streams to completion and returns the phase
// summary.
func (d *Driver) Run(nClients int, plan PlanFor) PhaseResult {
	if d.QueriesPerClient == 0 {
		d.QueriesPerClient = 1
	}
	if d.MaxSeconds == 0 {
		d.MaxSeconds = 600
	}
	r := d.Rig
	type clientState struct {
		cur  *db.Query
		next int
	}
	clients := make([]clientState, nClients)

	startSnap := r.Machine.Snapshot()
	startStats := r.Sched.Stats()
	startTime := r.Machine.NowSeconds()
	deadline := startTime + d.MaxSeconds

	var res PhaseResult
	var latencySum float64
	lastSample := startTime
	sampleSnap := startSnap

	// Prime every client.
	for c := range clients {
		if p := plan(c, 0); p != nil {
			clients[c].cur = r.Engine.Submit(p)
			clients[c].next = 1
		} else {
			clients[c].next = d.QueriesPerClient // nothing to run
		}
	}

	active := func() int {
		n := 0
		for c := range clients {
			if clients[c].cur != nil || clients[c].next < d.QueriesPerClient {
				n++
			}
		}
		return n
	}

	for active() > 0 && r.Machine.NowSeconds() < deadline {
		r.Tick()
		for c := range clients {
			cs := &clients[c]
			if cs.cur != nil && cs.cur.Done() {
				res.Completed++
				latencySum += r.Machine.Topology().CyclesToSeconds(cs.cur.ElapsedCycles())
				cs.cur = nil
			}
			if cs.cur == nil && cs.next < d.QueriesPerClient {
				if p := plan(c, cs.next); p != nil {
					cs.cur = r.Engine.Submit(p)
				}
				cs.next++
			}
		}
		if d.SampleEvery > 0 && r.Machine.NowSeconds()-lastSample >= d.SampleEvery {
			snap := r.Machine.Snapshot()
			res.Samples = append(res.Samples, Sample{
				AtSeconds: r.Machine.NowSeconds() - startTime,
				Window:    snap.Sub(sampleSnap),
				Allocated: r.AllocatedCores(),
			})
			sampleSnap = snap
			lastSample = r.Machine.NowSeconds()
		}
	}

	endSnap := r.Machine.Snapshot()
	res.ElapsedSeconds = r.Machine.NowSeconds() - startTime
	res.Window = endSnap.Sub(startSnap)
	stats := r.Sched.Stats()
	res.Sched = sched.Stats{
		Spawned:             stats.Spawned - startStats.Spawned,
		StolenTasks:         stats.StolenTasks - startStats.StolenTasks,
		Migrations:          stats.Migrations - startStats.Migrations,
		CrossNodeMigrations: stats.CrossNodeMigrations - startStats.CrossNodeMigrations,
		TicksRun:            stats.TicksRun - startStats.TicksRun,
	}
	if res.ElapsedSeconds > 0 {
		res.Throughput = float64(res.Completed) / res.ElapsedSeconds
	}
	if res.Completed > 0 {
		res.MeanLatencySeconds = latencySum / float64(res.Completed)
	}
	r.Engine.Drain()
	return res
}

// RunSameQuery drives nClients clients each executing the same query
// plan-builder once per stream slot (the Fig 4/13 protocol: N concurrent
// users running Q6).
func (d *Driver) RunSameQuery(nClients int, build func(seed uint64) *db.Plan) PhaseResult {
	return d.Run(nClients, func(c, k int) *db.Plan {
		return build(uint64(c*1000 + k + 1))
	})
}
