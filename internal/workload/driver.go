package workload

import (
	"elasticore/internal/db"
	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// PlanFor supplies the k-th query of client c (both 0-based). Returning
// nil ends the client's stream early.
type PlanFor func(client, k int) *db.Plan

// QueryDone observes the finished k-th query of client c before the
// driver releases it — the query's scalars are still readable, so
// callers can attribute results per query class (the htap-mix experiment
// splits lookups from scans this way).
type QueryDone func(client, k int, q *db.Query)

// PhaseResult summarizes one driven phase.
type PhaseResult struct {
	// ElapsedSeconds is the virtual wall time of the phase.
	ElapsedSeconds float64
	// Completed counts finished queries.
	Completed int
	// Throughput is queries per virtual second.
	Throughput float64
	// MeanLatencySeconds averages per-query latency.
	MeanLatencySeconds float64
	// Window is the counter delta over the phase.
	Window numa.Counters
	// Sched is the scheduler stats delta over the phase.
	Sched sched.Stats
	// Samples are periodic sub-window snapshots (timeline plots); empty
	// unless SampleEvery was set.
	Samples []Sample
}

// Sample is one timeline point: the counter window since the previous
// sample plus the instantaneous allocation.
type Sample struct {
	AtSeconds float64
	Window    numa.Counters
	Allocated int
}

// stream tracks one client's in-flight query and stream position.
type stream struct {
	cur  *db.Query
	next int
}

// streamSet drives a set of concurrent client streams against one
// engine, submitting each client's next query as soon as the previous
// one finishes — the paper's execution protocol. It is shared by the
// single-tenant Driver and the multi-tenant MultiRig.Run.
type streamSet struct {
	engine  *db.Engine
	topo    *numa.Topology
	plan    PlanFor
	length  int
	clients []stream
	// onDone, when non-nil, observes each finished query (with its stream
	// coordinates) before it is released back to the engine.
	onDone QueryDone

	// Completed counts finished queries; LatencySum accumulates their
	// latencies in seconds.
	Completed  int
	LatencySum float64
}

// newStreamSet primes every client with its first query. A nil plan (or
// a nil first query) leaves the client with nothing to run.
func newStreamSet(engine *db.Engine, topo *numa.Topology, nClients, length int, plan PlanFor) *streamSet {
	s := &streamSet{
		engine:  engine,
		topo:    topo,
		plan:    plan,
		length:  length,
		clients: make([]stream, nClients),
	}
	for c := range s.clients {
		if plan != nil {
			if p := plan(c, 0); p != nil {
				s.clients[c].cur = engine.Submit(p)
				s.clients[c].next = 1
				continue
			}
		}
		s.clients[c].next = length // nothing to run
	}
	return s
}

// Active reports whether any stream still has queries in flight or left
// to submit.
func (s *streamSet) Active() bool {
	for c := range s.clients {
		if s.clients[c].cur != nil || s.clients[c].next < s.length {
			return true
		}
	}
	return false
}

// Pump collects finished queries and submits each idle client's next one.
// Finished queries are released back to the engine immediately so their
// pooled buffers feed the next submissions.
func (s *streamSet) Pump() {
	for c := range s.clients {
		cs := &s.clients[c]
		if cs.cur != nil && cs.cur.Done() {
			s.Completed++
			s.LatencySum += s.topo.CyclesToSeconds(cs.cur.ElapsedCycles())
			if s.onDone != nil {
				s.onDone(c, cs.next-1, cs.cur)
			}
			s.engine.Release(cs.cur)
			cs.cur = nil
		}
		if cs.cur == nil && cs.next < s.length {
			if p := s.plan(c, cs.next); p != nil {
				cs.cur = s.engine.Submit(p)
			}
			cs.next++
		}
	}
}

// schedDelta returns the scheduler counters accumulated since start.
func schedDelta(start, end sched.Stats) sched.Stats {
	return sched.Stats{
		Spawned:             end.Spawned - start.Spawned,
		StolenTasks:         end.StolenTasks - start.StolenTasks,
		Migrations:          end.Migrations - start.Migrations,
		CrossNodeMigrations: end.CrossNodeMigrations - start.CrossNodeMigrations,
		TicksRun:            end.TicksRun - start.TicksRun,
	}
}

// Driver runs concurrent client streams against a rig.
type Driver struct {
	Rig *Rig
	// QueriesPerClient is each client's stream length.
	QueriesPerClient int
	// SampleEvery, when positive, records timeline samples at this
	// virtual-time interval in seconds.
	SampleEvery float64
	// MaxSeconds bounds the phase (default 600 virtual seconds).
	MaxSeconds float64
}

// Run drives nClients streams to completion and returns the phase
// summary.
func (d *Driver) Run(nClients int, plan PlanFor) PhaseResult {
	if d.QueriesPerClient == 0 {
		d.QueriesPerClient = 1
	}
	if d.MaxSeconds == 0 {
		d.MaxSeconds = 600
	}
	r := d.Rig
	ss := newStreamSet(r.Engine, r.Machine.Topology(), nClients, d.QueriesPerClient, plan)

	startSnap := r.Machine.Snapshot()
	startStats := r.Sched.Stats()
	startTime := r.Machine.NowSeconds()
	deadline := startTime + d.MaxSeconds

	var res PhaseResult
	lastSample := startTime
	sampleSnap := startSnap

	for ss.Active() && r.Machine.NowSeconds() < deadline {
		r.Tick()
		ss.Pump()
		if d.SampleEvery > 0 && r.Machine.NowSeconds()-lastSample >= d.SampleEvery {
			snap := r.Machine.Snapshot()
			res.Samples = append(res.Samples, Sample{
				AtSeconds: r.Machine.NowSeconds() - startTime,
				Window:    snap.Sub(sampleSnap),
				Allocated: r.AllocatedCores(),
			})
			sampleSnap = snap
			lastSample = r.Machine.NowSeconds()
		}
	}

	endSnap := r.Machine.Snapshot()
	res.Completed = ss.Completed
	res.ElapsedSeconds = r.Machine.NowSeconds() - startTime
	res.Window = endSnap.Sub(startSnap)
	res.Sched = schedDelta(startStats, r.Sched.Stats())
	if res.ElapsedSeconds > 0 {
		res.Throughput = float64(res.Completed) / res.ElapsedSeconds
	}
	if res.Completed > 0 {
		res.MeanLatencySeconds = ss.LatencySum / float64(res.Completed)
	}
	r.Engine.Drain()
	return res
}

// RunSameQuery drives nClients clients each executing the same query
// plan-builder once per stream slot (the Fig 4/13 protocol: N concurrent
// users running Q6).
func (d *Driver) RunSameQuery(nClients int, build func(seed uint64) *db.Plan) PhaseResult {
	return d.Run(nClients, func(c, k int) *db.Plan {
		return build(uint64(c*1000 + k + 1))
	})
}
