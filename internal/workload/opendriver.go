package workload

import (
	"elasticore/internal/arrivals"
	"elasticore/internal/db"
	"elasticore/internal/metrics"
	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// opendriver.go is the open-loop counterpart of Driver: queries arrive
// from an arrivals.Process on their own schedule, wait in a bounded
// admission queue, and occupy one of a fixed number of server sessions
// while executing. Unlike the closed-loop protocol, the offered load is
// independent of the service rate, so backlog, overload and tail latency
// become observable — and the admission-queue depth is fed to the rig's
// elastic mechanism as a pressure signal.

// PlanAt supplies the k-th admitted query (0-based, admission order).
type PlanAt func(k int) *db.Plan

// OpenDriver replays an arrival process against a rig.
type OpenDriver struct {
	Rig *Rig
	// Process generates the arrival timestamps, relative to the phase
	// start. A nil process offers nothing.
	Process arrivals.Process
	// MaxInFlight is the number of concurrent server sessions (queries
	// executing at once); zero selects 64. Arrivals beyond it queue.
	MaxInFlight int
	// QueueCap bounds the admission queue; zero selects 1024. An arrival
	// finding the queue full is dropped (counted, never executed).
	QueueCap int
	// MaxArrivals stops offering after this many arrivals; zero offers
	// until MaxSeconds.
	MaxArrivals int
	// MaxSeconds bounds the phase in virtual time (default 600). Queries
	// still queued or in flight at the deadline are abandoned.
	MaxSeconds float64
	// SampleEvery, when positive, records timeline samples at this
	// virtual-time interval in seconds.
	SampleEvery float64
	// DisableBacklog leaves the mechanism's queue-pressure input unwired,
	// so allocation reacts only to the counter path (A/B baselines).
	DisableBacklog bool

	// winLatency accumulates per-sample-window completions (reset each
	// sample; kept on the driver so Run's hot loop does not allocate it).
	winLatency metrics.Histogram
}

// OpenSample is one timeline point of an open-loop phase.
type OpenSample struct {
	AtSeconds float64
	// QueueDepth and InFlight are instantaneous at the sample.
	QueueDepth, InFlight int
	// Allocated is the DBMS core count at the sample.
	Allocated int
	// Completed counts queries finished within this sample window.
	Completed int
	// P99Cycles is the 99th-percentile total latency (queue wait plus
	// service) of this window's completions, in cycles; zero when none.
	P99Cycles uint64
}

// OpenResult summarizes one open-loop phase. All histograms are in
// simulated cycles; convert with Topology.CyclesToSeconds.
type OpenResult struct {
	// ElapsedSeconds is the virtual wall time of the phase.
	ElapsedSeconds float64
	// Offered counts arrivals generated; Admitted those submitted to the
	// engine; Dropped those rejected at a full queue; Abandoned those
	// still waiting in the admission queue when the phase hit its
	// deadline; Completed those that finished before the deadline.
	// Offered = Admitted + Dropped + Abandoned, and Admitted - Completed
	// queries were cut off mid-execution.
	Offered, Admitted, Dropped, Abandoned, Completed int
	// Throughput is completions per virtual second.
	Throughput float64
	// QueueWait is time spent in the admission queue, Service the
	// engine execution time, Latency their sum per query.
	QueueWait, Service, Latency metrics.Histogram
	// PeakQueueDepth and PeakInFlight are phase maxima.
	PeakQueueDepth, PeakInFlight int
	// Window is the counter delta over the phase.
	Window numa.Counters
	// Sched is the scheduler stats delta over the phase.
	Sched sched.Stats
	// Samples are periodic timeline points; empty unless SampleEvery was
	// set.
	Samples []OpenSample
}

// Run replays the arrival process to completion (or the deadline) and
// returns the phase summary. Arrivals are admitted in timestamp order;
// admission to a server session is FCFS. The queue/session machinery
// lives in the shared per-machine Admission layer — Run contributes only
// the arrival replay, termination logic and timeline sampling, so the
// cluster Coordinator can drive N Admissions from the same building
// block without duplicating this loop.
func (d *OpenDriver) Run(plan PlanAt) OpenResult {
	if d.MaxSeconds == 0 {
		d.MaxSeconds = 600
	}
	r := d.Rig
	topo := r.Machine.Topology()

	var res OpenResult
	adm := Admission{Rig: r, MaxInFlight: d.MaxInFlight, QueueCap: d.QueueCap}
	adm.normalize()

	d.winLatency.Reset()
	winCompleted := 0
	adm.OnComplete = func(_ int64, _ *db.Query, total, _ uint64) {
		d.winLatency.Record(total)
		winCompleted++
	}

	if r.Mech != nil && !d.DisableBacklog {
		r.Mech.SetBacklog(adm.QueueLen)
		defer r.Mech.SetBacklog(nil)
	}
	if r.Probe != nil {
		// Timeline samples during this phase carry the queue depth and
		// the phase's cumulative latency quantiles.
		r.Probe.SetLatency(&adm.Latency)
		defer r.Probe.SetLatency(nil)
	}

	startSnap := r.Machine.Snapshot()
	startStats := r.Sched.Stats()
	startCycle := r.Machine.Now()
	startTime := r.Machine.NowSeconds()
	deadline := startTime + d.MaxSeconds

	// Prime the first arrival. Times from the process are relative to the
	// phase start; due-ness is decided in integer cycles so the fast and
	// naive simulator paths agree bit for bit.
	var nextAt uint64
	more := d.Process != nil
	if more {
		t, ok := d.Process.Next()
		nextAt, more = startCycle+topo.SecondsToCycles(t), ok
	}

	lastSample := startTime
	planByIndex := func(k int, _ int64) *db.Plan { return plan(k) }

	for {
		nowC := r.Machine.Now()

		// Collect completions, freeing server sessions.
		adm.Collect(nowC)

		// Offer arrivals due by now: admit or drop against the
		// instantaneous queue depth.
		for more && nextAt <= nowC {
			adm.Offer(nowC, nextAt, 0)
			if d.MaxArrivals > 0 && adm.Offered >= d.MaxArrivals {
				more = false
				break
			}
			t, ok := d.Process.Next()
			nextAt, more = startCycle+topo.SecondsToCycles(t), ok
		}

		// Fill free server sessions FCFS.
		adm.Fill(nowC, planByIndex)
		adm.UpdatePeaks()

		now := r.Machine.NowSeconds()
		if d.SampleEvery > 0 && now-lastSample >= d.SampleEvery {
			res.Samples = append(res.Samples, OpenSample{
				AtSeconds:  now - startTime,
				QueueDepth: adm.QueueLen(),
				InFlight:   adm.InFlight(),
				Allocated:  r.AllocatedCores(),
				Completed:  winCompleted,
				P99Cycles:  d.winLatency.P99(),
			})
			d.winLatency.Reset()
			winCompleted = 0
			lastSample = now
		}

		if !more && adm.Idle() {
			break
		}
		if now >= deadline {
			break
		}
		r.Tick()
	}

	endSnap := r.Machine.Snapshot()
	res.Offered = adm.Offered
	res.Admitted = adm.Admitted
	res.Dropped = adm.Dropped
	res.Completed = adm.Completed
	res.Abandoned = adm.QueueLen()
	res.QueueWait = adm.QueueWait
	res.Service = adm.Service
	res.Latency = adm.Latency
	res.PeakQueueDepth = adm.PeakQueueDepth
	res.PeakInFlight = adm.PeakInFlight
	res.ElapsedSeconds = r.Machine.NowSeconds() - startTime
	res.Window = endSnap.Sub(startSnap)
	res.Sched = schedDelta(startStats, r.Sched.Stats())
	if res.ElapsedSeconds > 0 {
		res.Throughput = float64(res.Completed) / res.ElapsedSeconds
	}
	r.Engine.Drain()
	return res
}

// RunSameQuery replays the process with every admitted query running the
// same plan builder under an admission-derived seed (the open-loop
// analogue of Driver.RunSameQuery).
func (d *OpenDriver) RunSameQuery(build func(seed uint64) *db.Plan) OpenResult {
	return d.Run(func(k int) *db.Plan { return build(uint64(k + 1)) })
}
