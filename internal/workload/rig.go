// Package workload assembles complete experiment rigs — machine, OS
// scheduler, store, engine, cgroup and (optionally) the elastic mechanism
// — and drives concurrent-client query streams over them, reproducing the
// execution protocols of the paper's Section V.
package workload

import (
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/elastic"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/sched"
	"elasticore/internal/tpch"
)

// Mode selects the allocation policy of a rig: the plain OS scheduler
// (all cores, no mechanism) or the mechanism with one of its three
// allocation modes.
type Mode int

const (
	// ModeOS hands all cores to the OS (the paper's baseline).
	ModeOS Mode = iota
	// ModeDense runs the mechanism with dense allocation.
	ModeDense
	// ModeSparse runs the mechanism with sparse allocation.
	ModeSparse
	// ModeAdaptive runs the mechanism with the adaptive priority mode.
	ModeAdaptive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDense:
		return "dense"
	case ModeSparse:
		return "sparse"
	case ModeAdaptive:
		return "adaptive"
	default:
		return "os"
	}
}

// AllModes lists the four configurations of Figure 13.
var AllModes = []Mode{ModeOS, ModeDense, ModeSparse, ModeAdaptive}

// Options configures a rig.
type Options struct {
	// SF is the TPC-H scale factor (default 0.01).
	SF float64
	// Seed varies dataset and workload (default 1).
	Seed uint64
	// Mode is the allocation policy (default ModeOS).
	Mode Mode
	// Placement selects the engine flavour: MonetDB-like (PlacementOS) or
	// SQL-Server-like (PlacementNUMAAware).
	Placement db.Placement
	// Strategy overrides the mechanism's state-transition metric
	// (default CPU load).
	Strategy elastic.Strategy
	// Quantum overrides the scheduler quantum in cycles.
	Quantum uint64
	// ControlPeriod overrides the mechanism control period in cycles.
	ControlPeriod uint64
	// Topology overrides the machine shape (default Opteron8387). The
	// experiments scale cache sizes and bandwidths with SF to preserve
	// the paper's data-to-cache ratio at small scale factors.
	Topology *numa.Topology
	// CorePlacement, when set, attaches the mechanism with this
	// topology-aware core placement policy (elastic.NewPlaced) instead
	// of Mode's fixed allocation order; Mode's ModeOS semantics (no
	// mechanism) do not apply — a core placement always implies a
	// mechanism. Distinct from Placement, the engine's *data* placement
	// flavour.
	CorePlacement elastic.Placement
	// Naive runs the rig on the pre-optimization hot paths: the walk-
	// every-core scheduler tick loop, per-block memory charging and
	// uncached dataset generation. Simulated results are bit-identical to
	// the default fast paths; only host CPU time differs. Equivalence
	// tests and the bench harness use it.
	Naive bool
	// Bus, when set, is attached to every producer of the rig (scheduler,
	// engine, mechanism, open-loop driver) so one telemetry stream spans
	// the stack. Events observe, never perturb: a traced rig's simulated
	// results are bit-identical to an untraced one's.
	Bus *obs.Bus
}

// DBMSPID is the simulated server process id.
const DBMSPID = 100

// ScaledTopology shrinks the Opteron testbed's cache hierarchy and
// bandwidths proportionally to the scale factor, preserving the paper's
// operating point: a 1 GB database against 6 MB L3s is firmly DRAM- and
// interconnect-bound, and a 5 MB database against full-size caches would
// not be. Geometry floors keep the model meaningful at very small SF.
// SF 1 returns the unmodified testbed.
func ScaledTopology(sf float64) *numa.Topology {
	return ScaleTopology(numa.Opteron8387(), sf)
}

// ScaleTopology applies the same SF-proportional cache and bandwidth
// scaling to an arbitrary base topology (the zoo shapes, parsed specs),
// so experiments sweeping machine geometry keep the paper's
// data-to-cache ratio at small scale factors. The base is not modified;
// SF >= 1 returns it unchanged.
func ScaleTopology(base *numa.Topology, sf float64) *numa.Topology {
	if sf >= 1 {
		return base
	}
	c := *base
	t := &c
	t.BlockBytes = 4 * 1024
	scale := sf * 4 // slack: 4x the strictly proportional size
	clampInt := func(v, floor int) int {
		if v < floor {
			return floor
		}
		return v
	}
	t.L3Bytes = clampInt(int(float64(t.L3Bytes)*scale), 16*t.BlockBytes)
	t.L1Bytes = clampInt(int(float64(t.L1Bytes)*scale), t.BlockBytes)
	t.L2Bytes = clampInt(int(float64(t.L2Bytes)*scale), t.BlockBytes)
	clampF := func(v, floor float64) float64 {
		if v < floor {
			return floor
		}
		return v
	}
	t.MemBandwidth = clampF(t.MemBandwidth*scale, 1e8)
	// The interconnect keeps more headroom than the memory controllers:
	// the paper's testbed peaked near 8 GB/s of its 41.6 GB/s aggregate
	// (Fig 4 (c)) — loaded but not saturated.
	t.HTBandwidth = clampF(t.HTBandwidth*scale*3, 5e8)
	return t
}

// Rig is a fully wired experiment environment.
type Rig struct {
	Machine *numa.Machine
	Sched   *sched.Scheduler
	Store   *db.Store
	Engine  *db.Engine
	CGroup  *sched.CGroup
	Mech    *elastic.Mechanism // nil under ModeOS
	Dataset *tpch.Dataset
	Opts    Options
	// Bus is the telemetry bus attached to the rig's producers; nil when
	// the rig runs dark (see Options.Bus, EnsureBus).
	Bus *obs.Bus
	// Probe, when enabled, samples timeline Snapshots each Tick (see
	// EnableProbe).
	Probe *obs.Probe
}

// NewRig builds the machine, loads TPC-H, starts the engine and, unless
// ModeOS, attaches the mechanism.
func NewRig(opts Options) (*Rig, error) {
	if opts.SF == 0 {
		opts.SF = 0.01
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	topoIn := opts.Topology
	if topoIn == nil {
		topoIn = ScaledTopology(opts.SF)
	}
	machine := numa.NewMachine(topoIn)
	machine.SetNaiveCharging(opts.Naive)
	topo := machine.Topology()
	quantum := opts.Quantum
	if quantum == 0 {
		// Keep the quantum small relative to scaled query runtimes.
		quantum = topo.SecondsToCycles(50e-6)
	}
	if opts.ControlPeriod == 0 {
		opts.ControlPeriod = topo.SecondsToCycles(0.25e-3)
	}
	sc := sched.New(machine, sched.Config{Quantum: quantum, Naive: opts.Naive})
	store := db.NewStore(machine)
	store.SetLoadPID(DBMSPID)
	ds, err := tpch.Load(store, tpch.Config{SF: opts.SF, Seed: opts.Seed, NoCache: opts.Naive})
	if err != nil {
		return nil, err
	}
	group := sc.NewCGroup("dbms")
	group.AddPID(DBMSPID)
	eng, err := db.NewEngine(store, db.Config{
		Scheduler: sc,
		PID:       DBMSPID,
		Placement: opts.Placement,
		Naive:     opts.Naive,
	})
	if err != nil {
		return nil, err
	}
	r := &Rig{
		Machine: machine,
		Sched:   sc,
		Store:   store,
		Engine:  eng,
		CGroup:  group,
		Dataset: ds,
		Opts:    opts,
	}
	if opts.Mode != ModeOS || opts.CorePlacement != nil {
		var alloc elastic.Allocator
		switch {
		case opts.CorePlacement != nil:
			alloc = elastic.NewPlaced(topo, opts.CorePlacement)
		case opts.Mode == ModeDense:
			alloc = elastic.NewDense(topo)
		case opts.Mode == ModeSparse:
			alloc = elastic.NewSparse(topo)
		case opts.Mode == ModeAdaptive:
			alloc = elastic.NewAdaptive(topo, touchDeltaResidency(machine))
		default:
			return nil, fmt.Errorf("workload: unknown mode %v", opts.Mode)
		}
		mech, err := elastic.New(elastic.Config{
			Scheduler:     sc,
			CGroup:        group,
			Allocator:     alloc,
			Strategy:      opts.Strategy,
			ControlPeriod: opts.ControlPeriod,
		})
		if err != nil {
			return nil, err
		}
		r.Mech = mech
	}
	if opts.Bus != nil {
		r.attachBus(opts.Bus)
	}
	return r, nil
}

// AttachBus wires one externally owned bus into every producer of the
// rig — the fleet uses it to light all machines on one shared stream
// after construction. Attach before subscribing consumers.
func (r *Rig) AttachBus(b *obs.Bus) { r.attachBus(b) }

// attachBus wires one bus into every producer of the rig.
func (r *Rig) attachBus(b *obs.Bus) {
	r.Bus = b
	r.Sched.SetBus(b)
	r.Engine.SetBus(b, "")
	if r.Mech != nil {
		r.Mech.SetBus(b, "")
	}
}

// EnsureBus returns the rig's bus, attaching one on first use. A bus the
// scheduler already carries (a trace consumer called sched.EnsureBus
// before the rig did) is adopted rather than replaced, so earlier
// subscribers keep their stream.
func (r *Rig) EnsureBus() *obs.Bus {
	if r.Bus != nil {
		return r.Bus
	}
	b := r.Sched.Bus()
	if b == nil {
		b = obs.NewBus(0)
	}
	r.attachBus(b)
	return b
}

// EnableProbe starts periodic Snapshot sampling driven by Tick: every
// interval cycles (zero selects the mechanism's control period, or its
// 0.25 ms default under ModeOS) the probe records allocated cores, the
// strategy reading, interconnect and memory traffic, and the energy
// estimate of the window. Open-loop drivers additionally wire their
// backlog and latency sources for the duration of a phase.
func (r *Rig) EnableProbe(interval uint64) *obs.Probe {
	if r.Probe != nil {
		return r.Probe
	}
	if interval == 0 {
		interval = r.Opts.ControlPeriod
	}
	cfg := obs.ProbeConfig{
		Machine:   r.Machine,
		Every:     interval,
		Allocated: func() int { return r.CGroup.CPUs().Count() },
	}
	if r.Mech != nil {
		strategy := r.Mech.Strategy()
		machine, group := r.Machine, r.CGroup
		var last numa.Counters = machine.Snapshot()
		cfg.Reading = func() int {
			snap := machine.Snapshot()
			window := snap.Sub(last)
			last = snap
			return strategy.Reading(elastic.Sample{Window: window, Allocated: group.CPUs().Cores()})
		}
	}
	r.Probe = obs.NewProbe(cfg)
	return r.Probe
}

// touchDeltaResidency returns the adaptive mode's residency source for a
// single-tenant rig: per-node touches of homed data since the previous
// allocator decision (the paper's per-PID page accounting, restricted to
// pages the running threads actually use). The first call returns the
// cumulative touches — the delta since an all-zero baseline.
func touchDeltaResidency(machine *numa.Machine) elastic.ResidencyFunc {
	var prev []uint64
	return func() []int {
		snap := machine.Snapshot()
		if prev == nil {
			prev = make([]uint64, len(snap.Nodes))
		}
		out := make([]int, len(snap.Nodes))
		for i, n := range snap.Nodes {
			out[i] = int(n.DataTouches - prev[i])
			prev[i] = n.DataTouches
		}
		return out
	}
}

// Tick advances the rig by one scheduler quantum, running the mechanism's
// control loop when present.
func (r *Rig) Tick() {
	r.Sched.Tick()
	if r.Mech != nil {
		r.Mech.Maybe()
	}
	if r.Probe != nil {
		r.Probe.Maybe()
	}
}

// NowSeconds returns the rig's virtual time.
func (r *Rig) NowSeconds() float64 { return r.Machine.NowSeconds() }

// AllocatedCores returns how many cores the DBMS currently owns.
func (r *Rig) AllocatedCores() int { return r.CGroup.CPUs().Count() }
