// Package workload assembles complete experiment rigs — machine, OS
// scheduler, store, engine, cgroup and (optionally) the elastic mechanism
// — and drives concurrent-client query streams over them, reproducing the
// execution protocols of the paper's Section V.
package workload

import (
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/elastic"
	"elasticore/internal/numa"
	"elasticore/internal/sched"
	"elasticore/internal/tpch"
)

// Mode selects the allocation policy of a rig: the plain OS scheduler
// (all cores, no mechanism) or the mechanism with one of its three
// allocation modes.
type Mode int

const (
	// ModeOS hands all cores to the OS (the paper's baseline).
	ModeOS Mode = iota
	// ModeDense runs the mechanism with dense allocation.
	ModeDense
	// ModeSparse runs the mechanism with sparse allocation.
	ModeSparse
	// ModeAdaptive runs the mechanism with the adaptive priority mode.
	ModeAdaptive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDense:
		return "dense"
	case ModeSparse:
		return "sparse"
	case ModeAdaptive:
		return "adaptive"
	default:
		return "os"
	}
}

// AllModes lists the four configurations of Figure 13.
var AllModes = []Mode{ModeOS, ModeDense, ModeSparse, ModeAdaptive}

// Options configures a rig.
type Options struct {
	// SF is the TPC-H scale factor (default 0.01).
	SF float64
	// Seed varies dataset and workload (default 1).
	Seed uint64
	// Mode is the allocation policy (default ModeOS).
	Mode Mode
	// Placement selects the engine flavour: MonetDB-like (PlacementOS) or
	// SQL-Server-like (PlacementNUMAAware).
	Placement db.Placement
	// Strategy overrides the mechanism's state-transition metric
	// (default CPU load).
	Strategy elastic.Strategy
	// Quantum overrides the scheduler quantum in cycles.
	Quantum uint64
	// ControlPeriod overrides the mechanism control period in cycles.
	ControlPeriod uint64
	// Topology overrides the machine shape (default Opteron8387). The
	// experiments scale cache sizes and bandwidths with SF to preserve
	// the paper's data-to-cache ratio at small scale factors.
	Topology *numa.Topology
	// CorePlacement, when set, attaches the mechanism with this
	// topology-aware core placement policy (elastic.NewPlaced) instead
	// of Mode's fixed allocation order; Mode's ModeOS semantics (no
	// mechanism) do not apply — a core placement always implies a
	// mechanism. Distinct from Placement, the engine's *data* placement
	// flavour.
	CorePlacement elastic.Placement
	// Naive runs the rig on the pre-optimization hot paths: the walk-
	// every-core scheduler tick loop, per-block memory charging and
	// uncached dataset generation. Simulated results are bit-identical to
	// the default fast paths; only host CPU time differs. Equivalence
	// tests and the bench harness use it.
	Naive bool
}

// DBMSPID is the simulated server process id.
const DBMSPID = 100

// ScaledTopology shrinks the Opteron testbed's cache hierarchy and
// bandwidths proportionally to the scale factor, preserving the paper's
// operating point: a 1 GB database against 6 MB L3s is firmly DRAM- and
// interconnect-bound, and a 5 MB database against full-size caches would
// not be. Geometry floors keep the model meaningful at very small SF.
// SF 1 returns the unmodified testbed.
func ScaledTopology(sf float64) *numa.Topology {
	return ScaleTopology(numa.Opteron8387(), sf)
}

// ScaleTopology applies the same SF-proportional cache and bandwidth
// scaling to an arbitrary base topology (the zoo shapes, parsed specs),
// so experiments sweeping machine geometry keep the paper's
// data-to-cache ratio at small scale factors. The base is not modified;
// SF >= 1 returns it unchanged.
func ScaleTopology(base *numa.Topology, sf float64) *numa.Topology {
	if sf >= 1 {
		return base
	}
	c := *base
	t := &c
	t.BlockBytes = 4 * 1024
	scale := sf * 4 // slack: 4x the strictly proportional size
	clampInt := func(v, floor int) int {
		if v < floor {
			return floor
		}
		return v
	}
	t.L3Bytes = clampInt(int(float64(t.L3Bytes)*scale), 16*t.BlockBytes)
	t.L1Bytes = clampInt(int(float64(t.L1Bytes)*scale), t.BlockBytes)
	t.L2Bytes = clampInt(int(float64(t.L2Bytes)*scale), t.BlockBytes)
	clampF := func(v, floor float64) float64 {
		if v < floor {
			return floor
		}
		return v
	}
	t.MemBandwidth = clampF(t.MemBandwidth*scale, 1e8)
	// The interconnect keeps more headroom than the memory controllers:
	// the paper's testbed peaked near 8 GB/s of its 41.6 GB/s aggregate
	// (Fig 4 (c)) — loaded but not saturated.
	t.HTBandwidth = clampF(t.HTBandwidth*scale*3, 5e8)
	return t
}

// Rig is a fully wired experiment environment.
type Rig struct {
	Machine *numa.Machine
	Sched   *sched.Scheduler
	Store   *db.Store
	Engine  *db.Engine
	CGroup  *sched.CGroup
	Mech    *elastic.Mechanism // nil under ModeOS
	Dataset *tpch.Dataset
	Opts    Options
}

// NewRig builds the machine, loads TPC-H, starts the engine and, unless
// ModeOS, attaches the mechanism.
func NewRig(opts Options) (*Rig, error) {
	if opts.SF == 0 {
		opts.SF = 0.01
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	topoIn := opts.Topology
	if topoIn == nil {
		topoIn = ScaledTopology(opts.SF)
	}
	machine := numa.NewMachine(topoIn)
	machine.SetNaiveCharging(opts.Naive)
	topo := machine.Topology()
	quantum := opts.Quantum
	if quantum == 0 {
		// Keep the quantum small relative to scaled query runtimes.
		quantum = topo.SecondsToCycles(50e-6)
	}
	if opts.ControlPeriod == 0 {
		opts.ControlPeriod = topo.SecondsToCycles(0.25e-3)
	}
	sc := sched.New(machine, sched.Config{Quantum: quantum, Naive: opts.Naive})
	store := db.NewStore(machine)
	store.SetLoadPID(DBMSPID)
	ds, err := tpch.Load(store, tpch.Config{SF: opts.SF, Seed: opts.Seed, NoCache: opts.Naive})
	if err != nil {
		return nil, err
	}
	group := sc.NewCGroup("dbms")
	group.AddPID(DBMSPID)
	eng, err := db.NewEngine(store, db.Config{
		Scheduler: sc,
		PID:       DBMSPID,
		Placement: opts.Placement,
		Naive:     opts.Naive,
	})
	if err != nil {
		return nil, err
	}
	r := &Rig{
		Machine: machine,
		Sched:   sc,
		Store:   store,
		Engine:  eng,
		CGroup:  group,
		Dataset: ds,
		Opts:    opts,
	}
	if opts.Mode != ModeOS || opts.CorePlacement != nil {
		var alloc elastic.Allocator
		switch {
		case opts.CorePlacement != nil:
			alloc = elastic.NewPlaced(topo, opts.CorePlacement)
		case opts.Mode == ModeDense:
			alloc = elastic.NewDense(topo)
		case opts.Mode == ModeSparse:
			alloc = elastic.NewSparse(topo)
		case opts.Mode == ModeAdaptive:
			alloc = elastic.NewAdaptive(topo, touchDeltaResidency(machine))
		default:
			return nil, fmt.Errorf("workload: unknown mode %v", opts.Mode)
		}
		mech, err := elastic.New(elastic.Config{
			Scheduler:     sc,
			CGroup:        group,
			Allocator:     alloc,
			Strategy:      opts.Strategy,
			ControlPeriod: opts.ControlPeriod,
		})
		if err != nil {
			return nil, err
		}
		r.Mech = mech
	}
	return r, nil
}

// touchDeltaResidency returns the adaptive mode's residency source for a
// single-tenant rig: per-node touches of homed data since the previous
// allocator decision (the paper's per-PID page accounting, restricted to
// pages the running threads actually use). The first call returns the
// cumulative touches — the delta since an all-zero baseline.
func touchDeltaResidency(machine *numa.Machine) elastic.ResidencyFunc {
	var prev []uint64
	return func() []int {
		snap := machine.Snapshot()
		if prev == nil {
			prev = make([]uint64, len(snap.Nodes))
		}
		out := make([]int, len(snap.Nodes))
		for i, n := range snap.Nodes {
			out[i] = int(n.DataTouches - prev[i])
			prev[i] = n.DataTouches
		}
		return out
	}
}

// Tick advances the rig by one scheduler quantum, running the mechanism's
// control loop when present.
func (r *Rig) Tick() {
	r.Sched.Tick()
	if r.Mech != nil {
		r.Mech.Maybe()
	}
}

// NowSeconds returns the rig's virtual time.
func (r *Rig) NowSeconds() float64 { return r.Machine.NowSeconds() }

// AllocatedCores returns how many cores the DBMS currently owns.
func (r *Rig) AllocatedCores() int { return r.CGroup.CPUs().Count() }
