package workload

import (
	"reflect"
	"testing"

	"elasticore/internal/arrivals"
	"elasticore/internal/tpch"
)

// openChaosProcess picks a different arrival pattern per seed, spanning
// the three stochastic process families at rates from under- to
// over-saturation (the SF 0.002 rig saturates near 750 q/s).
func openChaosProcess(seed uint64) arrivals.Process {
	switch seed % 3 {
	case 0:
		return arrivals.NewPoisson(400+200*float64(seed%5), seed)
	case 1:
		return arrivals.NewMMPP(250, 1400, 0.05, 0.02, seed)
	default:
		return arrivals.NewDiurnal(600, 0.7, 0.1, seed)
	}
}

// runOpenChaos drives one fresh rig through a scripted open-loop arrival
// pattern and returns the complete observable outcome.
func runOpenChaos(t *testing.T, naive bool, seed uint64) OpenResult {
	t.Helper()
	r, err := NewRig(Options{SF: 0.002, Seed: 1, Mode: ModeAdaptive, Naive: naive})
	if err != nil {
		t.Fatal(err)
	}
	d := &OpenDriver{
		Rig:         r,
		Process:     openChaosProcess(seed),
		MaxInFlight: 8,
		QueueCap:    32,
		MaxArrivals: 60,
		MaxSeconds:  0.5,
		SampleEvery: 0.02,
	}
	return d.RunSameQuery(tpch.BuildQ6)
}

// TestOpenDriverFastNaiveEquivalence is the open-loop half of the
// fast-path equivalence property: random arrival patterns through the
// event-driven and naive simulator paths must end in bit-identical
// completions, queue-wait/service/latency histograms, counters and
// timeline samples.
func TestOpenDriverFastNaiveEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		naive := runOpenChaos(t, true, seed)
		fast := runOpenChaos(t, false, seed)
		if !reflect.DeepEqual(naive, fast) {
			t.Errorf("seed %d: open-loop outcome diverged between paths\nnaive: offered=%d completed=%d waitP99=%d\nfast:  offered=%d completed=%d waitP99=%d",
				seed, naive.Offered, naive.Completed, naive.QueueWait.P99(),
				fast.Offered, fast.Completed, fast.QueueWait.P99())
		}
	}
}

// TestOpenDriverDeterministic: the same (seed, process, load) must yield
// an identical OpenResult across runs.
func TestOpenDriverDeterministic(t *testing.T) {
	a := runOpenChaos(t, false, 2)
	b := runOpenChaos(t, false, 2)
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical open-loop runs produced different results")
	}
}

// TestOpenDriverAccounting pins the admission bookkeeping invariants.
func TestOpenDriverAccounting(t *testing.T) {
	res := runOpenChaos(t, false, 1)
	if res.Offered != res.Admitted+res.Dropped+res.Abandoned {
		t.Errorf("offered %d != admitted %d + dropped %d + abandoned %d",
			res.Offered, res.Admitted, res.Dropped, res.Abandoned)
	}
	if res.Completed > res.Admitted {
		t.Errorf("completed %d exceeds admitted %d", res.Completed, res.Admitted)
	}
	if got := res.Latency.Count(); got != uint64(res.Completed) {
		t.Errorf("latency histogram has %d samples, want %d completions", got, res.Completed)
	}
	if res.QueueWait.Count() != res.Service.Count() {
		t.Error("queue-wait and service histogram counts differ")
	}
	if res.Completed == 0 {
		t.Fatal("chaos run completed nothing")
	}
	// Total latency = wait + service per query, so the sums must match.
	wantMean := res.QueueWait.Mean() + res.Service.Mean()
	if got := res.Latency.Mean(); got != wantMean {
		t.Errorf("latency mean %g != wait+service mean %g", got, wantMean)
	}
}

// TestOpenDriverBoundedQueueDrops: an overload burst against a tiny
// queue must shed load instead of queueing without bound.
func TestOpenDriverBoundedQueueDrops(t *testing.T) {
	r, err := NewRig(Options{SF: 0.002, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := &OpenDriver{
		Rig:         r,
		Process:     arrivals.NewPoisson(8000, 3), // ~10x saturation
		MaxInFlight: 4,
		QueueCap:    8,
		MaxArrivals: 200,
		MaxSeconds:  0.5,
	}
	res := d.RunSameQuery(tpch.BuildQ6)
	if res.Dropped == 0 {
		t.Error("10x overload against an 8-deep queue dropped nothing")
	}
	if res.PeakQueueDepth > 8 {
		t.Errorf("queue depth %d exceeded cap 8", res.PeakQueueDepth)
	}
	if res.PeakInFlight > 4 {
		t.Errorf("in-flight %d exceeded MaxInFlight 4", res.PeakInFlight)
	}
}

// TestOpenDriverBacklogGrowsAllocation: under the adaptive mechanism, a
// saturating arrival stream must grow the core allocation via the
// queue-pressure signal; with the signal disabled the counter path alone
// must not react faster. The comparison is peak allocated cores over the
// same arrival stream.
func TestOpenDriverBacklogGrowsAllocation(t *testing.T) {
	peak := func(disable bool) int {
		r, err := NewRig(Options{SF: 0.002, Seed: 1, Mode: ModeAdaptive})
		if err != nil {
			t.Fatal(err)
		}
		d := &OpenDriver{
			Rig:            r,
			Process:        arrivals.NewPoisson(1200, 9),
			MaxInFlight:    8,
			QueueCap:       128,
			MaxArrivals:    80,
			MaxSeconds:     0.5,
			SampleEvery:    0.005,
			DisableBacklog: disable,
		}
		res := d.RunSameQuery(tpch.BuildQ6)
		p := 0
		for _, s := range res.Samples {
			if s.Allocated > p {
				p = s.Allocated
			}
		}
		return p
	}
	withSignal := peak(false)
	if withSignal < 2 {
		t.Errorf("backlog signal grew allocation to %d cores under saturation, want >= 2", withSignal)
	}
	if without := peak(true); withSignal < without {
		t.Errorf("backlog signal (%d cores) reacted slower than counters alone (%d)", withSignal, without)
	}
}

// TestOpenDriverNilProcess: no arrivals means an immediate, empty phase.
func TestOpenDriverNilProcess(t *testing.T) {
	r, err := NewRig(Options{SF: 0.002, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := &OpenDriver{Rig: r}
	res := d.RunSameQuery(tpch.BuildQ6)
	if res.Offered != 0 || res.Completed != 0 || res.Latency.Count() != 0 {
		t.Errorf("nil process produced offered=%d completed=%d", res.Offered, res.Completed)
	}
}
