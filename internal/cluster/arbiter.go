package cluster

import (
	"fmt"

	"elasticore/internal/obs"
	"elasticore/internal/tenant"
)

// arbiter.go is the fleet's second control tier, the cross-machine
// generalization of tenant.Arbiter: where that arbiter moves cores
// between tenant cgroups on ONE machine, this one moves whole cores
// between MACHINES. Every cluster control period it collects each
// machine's demand (the machine's own PrT-net desire, backlog-clamped
// by the coordinator's queue signal), apportions a fleet-wide core
// budget by weight with per-machine floors, and applies the grants
// through each mechanism's own allocator — shrinks immediately, grows
// only after an explicit migration latency, so rebalancing has a cost
// the experiments can measure instead of an assumed-free teleport.

// RebalanceEvent records one machine's outcome of a rebalance round in
// which its grant changed.
type RebalanceEvent struct {
	// Now is the virtual time of the round, in cycles.
	Now uint64
	// Machine is the fleet machine index.
	Machine int
	// Delta is the core movement: negative cores left immediately,
	// positive cores were scheduled to arrive after Latency cycles.
	Delta int
	// Target is the granted allocation the machine converges to.
	Target int
	// Latency is the migration latency charged per arriving core.
	Latency uint64
}

// ClusterArbiterConfig assembles a ClusterArbiter.
type ClusterArbiterConfig struct {
	// Fleet is the machine pool; every rig must carry a mechanism (an
	// elastic Mode), since demand is the mechanism's PrT-net desire.
	Fleet *Fleet
	// ControlPeriod is the cluster arbitration interval in cycles; zero
	// selects 50 ms — the same control-loop class as the paper's
	// single-machine mechanism, one tier up.
	ControlPeriod uint64
	// Budget is the total cores the fleet may hold; zero selects the
	// aggregate physical core count. Experiments set it below physical
	// to make machines actually contend.
	Budget int
	// MigrateLatency is the simulated cost of moving one core between
	// machines, in cycles: a grant increase only lands this many cycles
	// after the round that awarded it (shrinks are immediate — the core
	// is in transit, owned by nobody). Zero selects 1 ms.
	MigrateLatency uint64
	// Weights biases the apportionment per machine (default all 1).
	Weights []int
}

// pendingGrant is one scheduled core arrival.
type pendingGrant struct {
	machine int
	cores   int
	due     uint64
}

// ClusterArbiter apportions a core budget across the fleet's machines.
// Attach it with NewClusterArbiter and drive it from Fleet.Tick; the
// invariant it maintains is that granted cores never exceed Budget —
// cores in transit count against their destination, so migration
// latency shows up as capacity the fleet temporarily cannot use.
type ClusterArbiter struct {
	fleet    *Fleet
	period   uint64
	nextEval uint64
	budget   int
	migrate  uint64
	weights  []int
	floors   []int

	demand  []int
	grant   []int
	pending []pendingGrant

	events []RebalanceEvent
	// Rounds counts arbitration rounds executed (overhead accounting).
	Rounds uint64
	// MovedCores counts cores that traveled between machines (grant
	// increases applied through the migration queue).
	MovedCores int
	// ChargedCycles is the total migration cost: moved cores times the
	// per-core latency.
	ChargedCycles uint64
	// TransferCycles is the total shard-transfer cost the health monitor
	// charged against this budget (data movement after failures, on top
	// of core movement).
	TransferCycles uint64

	reserved int
}

// NewClusterArbiter wires the second control tier onto a fleet and
// installs it as the fleet's control loop (Fleet.Tick stops running the
// per-machine mechanisms' own apply step; they only evaluate).
func NewClusterArbiter(cfg ClusterArbiterConfig) (*ClusterArbiter, error) {
	f := cfg.Fleet
	if f == nil {
		return nil, fmt.Errorf("cluster: Fleet is required")
	}
	if f.arb != nil {
		return nil, fmt.Errorf("cluster: fleet already has an arbiter")
	}
	physical := 0
	for m, r := range f.Rigs {
		if r.Mech == nil {
			return nil, fmt.Errorf("cluster: machine %d has no mechanism (ModeOS); the arbiter needs per-machine demand", m)
		}
		physical += r.Machine.Topology().TotalCores()
	}
	if cfg.ControlPeriod == 0 {
		cfg.ControlPeriod = f.Rigs[0].Machine.Topology().SecondsToCycles(50e-3)
	}
	if cfg.Budget == 0 {
		cfg.Budget = physical
	}
	if cfg.Budget < len(f.Rigs) {
		return nil, fmt.Errorf("cluster: budget %d below the one-core-per-machine floor %d", cfg.Budget, len(f.Rigs))
	}
	if cfg.MigrateLatency == 0 {
		cfg.MigrateLatency = f.Rigs[0].Machine.Topology().SecondsToCycles(1e-3)
	}
	weights := cfg.Weights
	if weights == nil {
		weights = make([]int, len(f.Rigs))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(f.Rigs) {
		return nil, fmt.Errorf("cluster: %d weights for %d machines", len(weights), len(f.Rigs))
	}
	ca := &ClusterArbiter{
		fleet:    f,
		period:   cfg.ControlPeriod,
		nextEval: f.Now() + cfg.ControlPeriod,
		budget:   cfg.Budget,
		migrate:  cfg.MigrateLatency,
		weights:  weights,
		floors:   make([]int, len(f.Rigs)),
		demand:   make([]int, len(f.Rigs)),
		grant:    make([]int, len(f.Rigs)),
	}
	for m, r := range f.Rigs {
		// Every machine keeps at least one core (its mechanism's own
		// floor); demand and grant start at the current allocation.
		ca.floors[m] = 1
		ca.demand[m] = r.AllocatedCores()
		ca.grant[m] = r.AllocatedCores()
	}
	f.arb = ca
	return ca, nil
}

// ControlPeriod returns the cluster arbitration interval in cycles.
func (ca *ClusterArbiter) ControlPeriod() uint64 { return ca.period }

// Budget returns the fleet-wide core budget.
func (ca *ClusterArbiter) Budget() int { return ca.budget }

// MigrateLatency returns the per-core migration cost in cycles.
func (ca *ClusterArbiter) MigrateLatency() uint64 { return ca.migrate }

// Events returns the rebalance timeline recorded so far: one entry per
// machine per round in which its grant changed.
func (ca *ClusterArbiter) Events() []RebalanceEvent { return ca.events }

// Grants returns the current per-machine grants, in machine order.
func (ca *ClusterArbiter) Grants() []int {
	out := make([]int, len(ca.grant))
	copy(out, ca.grant)
	return out
}

// ChargeTransfer adds a shard-transfer cost to the arbiter's ledger; the
// health monitor calls it when a re-assignment lands.
func (ca *ClusterArbiter) ChargeTransfer(cycles uint64) {
	ca.TransferCycles += cycles
	ca.ChargedCycles += cycles
}

// SetReserved withholds n cores from the apportionable budget (the
// health monitor reserves capacity for in-flight shard transfers); the
// one-core-per-machine floors always remain grantable.
func (ca *ClusterArbiter) SetReserved(n int) {
	if n < 0 {
		n = 0
	}
	ca.reserved = n
}

// NextAt returns the next cycle at which Maybe has real work: the next
// rebalance round, or the earliest pending migration landing — applyDue
// runs every call, so an in-flight grant is as hard a deadline as the
// control period. The parallel fleet engine caps decoupled stretches at
// it.
func (ca *ClusterArbiter) NextAt() uint64 {
	at := ca.nextEval
	for _, p := range ca.pending {
		if p.due < at {
			at = p.due
		}
	}
	return at
}

// InTransit returns cores currently migrating (granted, not yet landed).
func (ca *ClusterArbiter) InTransit() int {
	n := 0
	for _, p := range ca.pending {
		n += p.cores
	}
	return n
}

// Maybe lands any due migrations and runs a rebalance round if the
// cluster control period has elapsed. Cheap to call every tick.
func (ca *ClusterArbiter) Maybe() {
	now := ca.fleet.Now()
	ca.applyDue(now)
	if now < ca.nextEval {
		return
	}
	ca.Step()
}

// applyDue lands migrations whose latency has elapsed: the destination
// machine's mechanism allocator picks the concrete cores, and the PrT
// net marking is re-synchronized with the applied allocation.
func (ca *ClusterArbiter) applyDue(now uint64) {
	kept := ca.pending[:0]
	for _, p := range ca.pending {
		if p.due > now {
			kept = append(kept, p)
			continue
		}
		r := ca.fleet.Rigs[p.machine]
		alloc := r.Mech.Allocator()
		set := r.CGroup.CPUs()
		for i := 0; i < p.cores; i++ {
			core, ok := alloc.Next(set)
			if !ok {
				break
			}
			set = set.Add(core)
		}
		r.CGroup.SetCPUs(set)
		r.Mech.Net().SetNAlloc(set.Count())
	}
	ca.pending = kept
}

// Step runs one rebalance round: collect per-machine desires, apportion
// the budget, shrink donors immediately and queue grows behind the
// migration latency.
func (ca *ClusterArbiter) Step() {
	f := ca.fleet
	now := f.Now()
	ca.nextEval = now + ca.period
	ca.Rounds++

	for m, r := range f.Rigs {
		// A machine whose own control period has not elapsed keeps its
		// previous demand — the cluster tier must not shorten the
		// mechanisms' sampling windows.
		if r.Mech.Due() {
			ca.demand[m] = r.Mech.DesiredStep().N
		}
		// A machine the health monitor believes dead demands only its
		// floor: its stalled cores are reclaimed for the survivors until
		// its beats resume.
		if f.health != nil && f.health.Dead(m) {
			ca.demand[m] = ca.floors[m]
		}
	}
	budget := ca.budget - ca.reserved
	if budget < len(f.Rigs) {
		budget = len(f.Rigs) // the floors stay grantable
	}
	grant := tenant.Apportion(ca.demand, ca.weights, ca.floors, budget)

	for m, r := range f.Rigs {
		target := grant[m]
		// Committed = what the machine holds plus what is already in
		// flight toward it; deltas are measured against that, so a slow
		// migration is not double-scheduled by the next round.
		committed := r.AllocatedCores()
		for _, p := range ca.pending {
			if p.machine == m {
				committed += p.cores
			}
		}
		delta := target - committed
		changed := grant[m] != ca.grant[m]
		ca.grant[m] = target
		switch {
		case delta < 0:
			// Shrink immediately through the machine's own victim order.
			// Over-committed in-transit cores are cancelled first — they
			// have not landed, so revoking them is free.
			cancel := -delta
			for i := range ca.pending {
				p := &ca.pending[i]
				if p.machine != m || cancel == 0 {
					continue
				}
				c := p.cores
				if c > cancel {
					c = cancel
				}
				p.cores -= c
				cancel -= c
			}
			if cancel > 0 {
				alloc := r.Mech.Allocator()
				set := r.CGroup.CPUs()
				for i := 0; i < cancel && set.Count() > ca.floors[m]; i++ {
					core, ok := alloc.Victim(set)
					if !ok {
						break
					}
					set = set.Remove(core)
				}
				r.CGroup.SetCPUs(set)
				r.Mech.Net().SetNAlloc(set.Count())
			}
		case delta > 0:
			ca.pending = append(ca.pending, pendingGrant{machine: m, cores: delta, due: now + ca.migrate})
			ca.MovedCores += delta
			ca.ChargedCycles += uint64(delta) * ca.migrate
		}
		if changed {
			ca.events = append(ca.events, RebalanceEvent{
				Now: now, Machine: m, Delta: delta, Target: target, Latency: ca.migrate,
			})
			if f.Bus != nil {
				f.Bus.Publish(obs.Event{
					Kind:    obs.KindRebalance,
					Now:     now,
					Core:    -1,
					Dur:     ca.migrate,
					V1:      int64(delta),
					V2:      int64(target),
					Machine: int32(m),
				})
			}
		}
	}
	// Drop cancelled (zero-core) pending entries, preserving order.
	kept := ca.pending[:0]
	for _, p := range ca.pending {
		if p.cores > 0 {
			kept = append(kept, p)
		}
	}
	ca.pending = kept
}
