package cluster

import (
	"fmt"

	"elasticore/internal/obs"
)

// health.go is the fleet's failure detector and repair loop. Machines
// publish heartbeats on the fleet bus (Fleet.Tick does, every
// HeartbeatEvery cycles, skipping crashed machines); the HealthMonitor
// subscribes and declares a machine dead once its beat gap exceeds
// DeadAfter. Death triggers shard re-assignment: every primary shard of
// the dead machine is re-homed onto a surviving replica (or, with R = 1,
// the healthy machine serving the fewest shards), each move charging an
// explicit TransferLatency against the ClusterArbiter's ledger — data
// does not teleport any more than cores do. While transfers are in
// flight the monitor brownout-caps the survivors' admission queues, so
// the fleet sheds load instead of queueing unboundedly while capacity is
// being rebuilt. A recovered machine (its beats resume) gets its home
// shards transferred back the same way.
//
// Everything is deterministic: detection happens at integer heartbeat
// gaps, transfers land at integer due cycles, targets break ties by
// lowest machine index, and re-assignment order is ascending shard id.

// HealthConfig assembles a HealthMonitor.
type HealthConfig struct {
	// Fleet is the monitored pool (required).
	Fleet *Fleet
	// HeartbeatEvery is the beat interval in cycles; zero selects 1 ms.
	HeartbeatEvery uint64
	// DeadAfter is the beat gap that declares a machine dead, in cycles;
	// zero selects 4 heartbeat intervals.
	DeadAfter uint64
	// TransferLatency is the simulated cost of re-homing one shard, in
	// cycles; zero selects 25 ms. Until it elapses the shard is served by
	// nobody — its requests fail over, retry or shed.
	TransferLatency uint64
	// BrownoutCap, when positive, tightens every surviving machine's
	// admission queue to this depth while transfers are in flight.
	BrownoutCap int
}

// shardTransfer is one in-flight shard move.
type shardTransfer struct {
	shard, from, to int
	due             uint64
}

// HealthMonitor watches heartbeats, re-homes shards off dead machines
// and back onto recovered ones. Build it with NewHealthMonitor; it runs
// from Fleet.Tick.
type HealthMonitor struct {
	fleet       *Fleet
	every       uint64
	deadAfter   uint64
	transferLat uint64
	brownout    int

	lastBeat  []uint64
	dead      []bool
	transfers []shardTransfer
	browned   bool
	scratch   []int
	scratch2  []int

	// Deaths and Recoveries count detection events; Reassigned counts
	// landed shard moves; TransferCycles is the total simulated
	// transfer cost charged.
	Deaths, Recoveries, Reassigned int
	TransferCycles                 uint64
}

// NewHealthMonitor wires failure detection onto a fleet and installs it
// as part of Fleet.Tick. It attaches the fleet bus (creating one if the
// fleet runs dark) because heartbeats travel over it.
func NewHealthMonitor(cfg HealthConfig) (*HealthMonitor, error) {
	f := cfg.Fleet
	if f == nil {
		return nil, fmt.Errorf("cluster: Fleet is required")
	}
	if f.health != nil {
		return nil, fmt.Errorf("cluster: fleet already has a health monitor")
	}
	topo := f.Rigs[0].Machine.Topology()
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = topo.SecondsToCycles(1e-3)
	}
	if cfg.DeadAfter == 0 {
		cfg.DeadAfter = 4 * cfg.HeartbeatEvery
	}
	if cfg.TransferLatency == 0 {
		cfg.TransferLatency = topo.SecondsToCycles(25e-3)
	}
	h := &HealthMonitor{
		fleet:       f,
		every:       cfg.HeartbeatEvery,
		deadAfter:   cfg.DeadAfter,
		transferLat: cfg.TransferLatency,
		brownout:    cfg.BrownoutCap,
		lastBeat:    make([]uint64, len(f.Rigs)),
		dead:        make([]bool, len(f.Rigs)),
	}
	now := f.Now()
	for m := range h.lastBeat {
		h.lastBeat[m] = now // grace: everyone is presumed alive at start
	}
	f.EnsureBus().Subscribe(obs.KindHeartbeat, func(e obs.Event) {
		h.beat(int(e.Machine), e.Now)
	})
	f.health = h
	f.nextBeat = now
	return h, nil
}

// HeartbeatEvery returns the beat interval in cycles.
func (h *HealthMonitor) HeartbeatEvery() uint64 { return h.every }

// Dead reports the monitor's current belief about machine m. It is a
// belief, not ground truth: a crashed machine stays presumed-alive for
// one detection gap, and that window is exactly where retries and
// failovers earn their keep.
func (h *HealthMonitor) Dead(m int) bool { return h.dead[m] }

// PendingTransfers returns the number of shard moves in flight.
func (h *HealthMonitor) PendingTransfers() int { return len(h.transfers) }

// beat records a heartbeat; a beat from a machine believed dead is the
// recovery signal and triggers re-homing its shards back.
func (h *HealthMonitor) beat(m int, now uint64) {
	h.lastBeat[m] = now
	if h.dead[m] {
		h.recover(m, now)
	}
}

// Step runs detection and lands due transfers; Fleet.Tick calls it every
// quantum after the heartbeat round.
func (h *HealthMonitor) Step(now uint64) {
	for m := range h.dead {
		if !h.dead[m] && now-h.lastBeat[m] > h.deadAfter {
			h.declareDead(m, now)
		}
	}
	if len(h.transfers) > 0 {
		kept := h.transfers[:0]
		for _, t := range h.transfers {
			if t.due > now {
				kept = append(kept, t)
				continue
			}
			h.land(t)
		}
		h.transfers = kept
	}
	if arb := h.fleet.arb; arb != nil {
		// Each in-flight transfer reserves one core of the fleet budget:
		// moving data consumes capacity the survivors cannot use yet.
		arb.SetReserved(len(h.transfers))
	}
	h.applyBrownout()
}

// declareDead marks the machine and schedules a transfer for every shard
// it was serving, ascending.
func (h *HealthMonitor) declareDead(m int, now uint64) {
	h.dead[m] = true
	h.Deaths++
	// Re-target any in-flight transfers that were headed to the machine
	// that just died; their clocks restart.
	for i := range h.transfers {
		t := &h.transfers[i]
		if t.to != m {
			continue
		}
		if to, ok := h.target(t.shard); ok {
			t.to, t.due = to, now+h.transferLat
			h.begin(t.shard, t.from, to, now)
		}
	}
	h.scratch = h.fleet.Sharder.PrimariesOf(m, h.scratch[:0])
	for _, shard := range h.scratch {
		to, ok := h.target(shard)
		if !ok {
			continue // no healthy machine anywhere; nothing to do
		}
		h.transfers = append(h.transfers, shardTransfer{shard: shard, from: m, to: to, due: now + h.transferLat})
		h.begin(shard, m, to, now)
	}
}

// recover re-homes machine m's home shards back after its beats resume.
func (h *HealthMonitor) recover(m int, now uint64) {
	h.dead[m] = false
	h.Recoveries++
	// Drop pending moves away from the recovered machine: it is back
	// before the transfer landed, so the move is moot.
	kept := h.transfers[:0]
	for _, t := range h.transfers {
		if t.from != m {
			kept = append(kept, t)
		}
	}
	h.transfers = kept
	sh := h.fleet.Sharder
	for shard := 0; shard < sh.Shards(); shard++ {
		if sh.Home(shard) != m || sh.Owner(shard) == m || h.moving(shard) {
			continue
		}
		from := sh.Owner(shard)
		h.transfers = append(h.transfers, shardTransfer{shard: shard, from: from, to: m, due: now + h.transferLat})
		h.begin(shard, from, m, now)
	}
}

// moving reports whether the shard already has a transfer in flight.
func (h *HealthMonitor) moving(shard int) bool {
	for _, t := range h.transfers {
		if t.shard == shard {
			return true
		}
	}
	return false
}

// target picks the machine a shard re-homes onto: the first healthy
// member of its replica set (it already holds the data — the transfer
// is catch-up, not a full copy), else the healthy machine serving the
// fewest shards (ties: lowest index). ok is false when every machine is
// believed dead.
func (h *HealthMonitor) target(shard int) (int, bool) {
	sh := h.fleet.Sharder
	h.scratch2 = sh.ReplicaSet(shard, h.scratch2[:0])
	for _, m := range h.scratch2 {
		if !h.dead[m] {
			return m, true
		}
	}
	best, bestLoad := -1, 0
	for m := range h.dead {
		if h.dead[m] {
			continue
		}
		load := len(sh.PrimariesOf(m, h.scratch2[:0]))
		for _, t := range h.transfers {
			if t.to == m {
				load++
			}
		}
		if best == -1 || load < bestLoad {
			best, bestLoad = m, load
		}
	}
	return best, best != -1
}

// begin publishes the start-of-transfer event.
func (h *HealthMonitor) begin(shard, from, to int, now uint64) {
	if b := h.fleet.Bus; b != nil {
		b.Publish(obs.Event{
			Kind: obs.KindReassign, Now: now, Core: -1,
			V1: int64(shard), V2: int64(from), Dur: h.transferLat,
			Label: "begin", Machine: int32(to),
		})
	}
}

// land completes a transfer: the shard's primary moves, the arbiter's
// ledger is charged, and the done event records the move.
func (h *HealthMonitor) land(t shardTransfer) {
	h.fleet.Sharder.Reassign(t.shard, t.to)
	h.Reassigned++
	h.TransferCycles += h.transferLat
	if arb := h.fleet.arb; arb != nil {
		arb.ChargeTransfer(h.transferLat)
	}
	if b := h.fleet.Bus; b != nil {
		b.Publish(obs.Event{
			Kind: obs.KindReassign, Now: t.due, Core: -1,
			V1: int64(t.shard), V2: int64(t.from), Dur: h.transferLat,
			Label: "done", Machine: int32(t.to),
		})
	}
}

// applyBrownout tightens or restores the survivors' admission queues as
// transfers start and finish.
func (h *HealthMonitor) applyBrownout() {
	if h.brownout <= 0 {
		return
	}
	active := len(h.transfers) > 0
	if active == h.browned {
		return
	}
	h.browned = active
	qcap := 0
	if active {
		qcap = h.brownout
	}
	for _, adm := range h.fleet.admissions {
		if adm != nil {
			adm.BrownoutCap = qcap
		}
	}
}
