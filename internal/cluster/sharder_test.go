package cluster

import "testing"

func TestSharderValidation(t *testing.T) {
	if _, err := NewSharder(2, 0); err == nil {
		t.Fatal("machines 0 accepted")
	}
	if _, err := NewSharder(3, 4); err == nil {
		t.Fatal("shards < machines accepted")
	}
	if _, err := NewSharder(4, 4); err != nil {
		t.Fatalf("shards == machines rejected: %v", err)
	}
}

// TestSharderPartition: ShardsOf covers [0, shards) exactly once across
// machines, every machine owns at least one shard, and Owner inverts it.
func TestSharderPartition(t *testing.T) {
	for _, tc := range []struct{ shards, machines int }{
		{1, 1}, {4, 2}, {5, 2}, {16, 8}, {17, 5}, {64, 16}, {63, 7},
	} {
		s, err := NewSharder(tc.shards, tc.machines)
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		for m := 0; m < tc.machines; m++ {
			lo, hi := s.ShardsOf(m)
			if lo != next {
				t.Fatalf("%d/%d: machine %d starts at %d, want %d", tc.shards, tc.machines, m, lo, next)
			}
			if hi <= lo {
				t.Fatalf("%d/%d: machine %d owns empty range [%d,%d)", tc.shards, tc.machines, m, lo, hi)
			}
			for sh := lo; sh < hi; sh++ {
				if got := s.Owner(sh); got != m {
					t.Fatalf("%d/%d: Owner(%d) = %d, want %d", tc.shards, tc.machines, sh, got, m)
				}
			}
			next = hi
		}
		if next != tc.shards {
			t.Fatalf("%d/%d: ranges end at %d, want %d", tc.shards, tc.machines, next, tc.shards)
		}
	}
}

// TestSharderKeyForShard: the synthesized key lands on the requested
// shard, and distinct salts explore distinct keys.
func TestSharderKeyForShard(t *testing.T) {
	s, _ := NewSharder(16, 4)
	seen := map[uint64]bool{}
	for shard := 0; shard < 16; shard++ {
		for salt := uint64(0); salt < 8; salt++ {
			k := s.KeyForShard(shard, salt)
			if got := s.Shard(k); got != shard {
				t.Fatalf("KeyForShard(%d, %d) = %d hashes to shard %d", shard, salt, k, got)
			}
			seen[k] = true
		}
	}
	if len(seen) < 64 {
		t.Fatalf("only %d distinct keys across 128 (shard, salt) pairs", len(seen))
	}
}

// FuzzSharder asserts route stability (same key always routes to the
// same shard and machine) and full coverage (the key's machine really
// owns the key's shard) for arbitrary shapes and keys.
func FuzzSharder(f *testing.F) {
	f.Add(uint64(1), 4, 2)
	f.Add(uint64(0), 1, 1)
	f.Add(uint64(0xDEADBEEF), 16, 8)
	f.Add(uint64(1<<63), 17, 5)
	f.Add(^uint64(0), 64, 16)
	f.Fuzz(func(t *testing.T, key uint64, shards, machines int) {
		if machines < 1 || machines > 64 || shards < machines || shards > 4096 {
			t.Skip()
		}
		s, err := NewSharder(shards, machines)
		if err != nil {
			t.Fatalf("valid shape rejected: %v", err)
		}
		shard := s.Shard(key)
		if shard < 0 || shard >= shards {
			t.Fatalf("Shard(%d) = %d out of [0,%d)", key, shard, shards)
		}
		if again := s.Shard(key); again != shard {
			t.Fatalf("Shard(%d) unstable: %d then %d", key, shard, again)
		}
		m := s.MachineFor(key)
		if m < 0 || m >= machines {
			t.Fatalf("MachineFor(%d) = %d out of [0,%d)", key, m, machines)
		}
		lo, hi := s.ShardsOf(m)
		if shard < lo || shard >= hi {
			t.Fatalf("machine %d serves key %d of shard %d but owns [%d,%d)", m, key, shard, lo, hi)
		}
	})
}
