package cluster

import (
	"reflect"
	"testing"

	"elasticore/internal/db"
	"elasticore/internal/faults"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// parallel_test.go pins the parallel engine's contract: a fleet run with
// Workers > 1 — and an Advance over decoupled stretches — is bit-identical
// to the sequential Tick-by-Tick engine, in every observable: coordinator
// results, machine counters, allocations, probe samples and the full bus
// event stream, healthy or faulted, fast path or Naive.

// parallelFleet builds the equivalence fleets, pinned to a worker count.
func parallelFleet(t *testing.T, machines, workers int, naive bool, plan string, bus *obs.Bus) *Fleet {
	t.Helper()
	var fp *faults.Plan
	if plan != "" {
		p, err := faults.Parse(plan)
		if err != nil {
			t.Fatal(err)
		}
		fp = p
	}
	f, err := NewFleet(Options{
		Machines: machines,
		Shards:   2 * machines,
		SF:       0.002,
		Seed:     7,
		Mode:     workload.ModeDense,
		Naive:    naive,
		Bus:      bus,
		Faults:   fp,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fleetObservables is everything a run exposes that the parallel engine
// could plausibly perturb.
type fleetObservables struct {
	Result    Result
	Now       uint64
	Allocated []int
	Machines  []numa.Counters
	Events    []obs.Event
}

// pressuredObservables runs the arbitrated pressured workload (the same
// shape as fleetRun in cluster_test.go, over three machines) at a given
// worker count and collects the observables.
func pressuredObservables(t *testing.T, workers int, naive bool, plan string) fleetObservables {
	t.Helper()
	bus := obs.NewBus(0)
	f := parallelFleet(t, 3, workers, naive, plan, bus)
	pressuredArbiter(t, f, 18)
	c := pressuredCoordinator(f)
	c.Policy = BalanceWeighted
	c.ScatterEvery = 7
	res := c.Run()
	out := fleetObservables{
		Result:    res,
		Now:       f.Now(),
		Allocated: f.AllocatedCores(),
		Events:    bus.Events(),
	}
	for _, r := range f.Rigs {
		out.Machines = append(out.Machines, r.Machine.Snapshot())
	}
	return out
}

// diffObservables fails the test at the first field that diverged, so a
// regression names the broken invariant instead of dumping two structs.
func diffObservables(t *testing.T, label string, want, got fleetObservables) {
	t.Helper()
	if want.Now != got.Now {
		t.Fatalf("%s: fleet clock %d, want %d", label, got.Now, want.Now)
	}
	if !reflect.DeepEqual(want.Allocated, got.Allocated) {
		t.Fatalf("%s: allocated cores %v, want %v", label, got.Allocated, want.Allocated)
	}
	for m := range want.Machines {
		if !reflect.DeepEqual(want.Machines[m], got.Machines[m]) {
			t.Fatalf("%s: machine %d counters diverged:\n%+v\nwant\n%+v",
				label, m, got.Machines[m], want.Machines[m])
		}
	}
	if len(want.Events) != len(got.Events) {
		t.Fatalf("%s: %d bus events, want %d", label, len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if want.Events[i] != got.Events[i] {
			t.Fatalf("%s: bus event %d = %+v, want %+v — staged replay broke the sequential order",
				label, i, got.Events[i], want.Events[i])
		}
	}
	if !reflect.DeepEqual(want.Result, got.Result) {
		t.Fatalf("%s: coordinator result diverged:\n%+v\nwant\n%+v", label, got.Result, want.Result)
	}
}

// TestFleetParallelEquivalence: the pressured arbitrated run is
// bit-identical at every worker count, including more workers than
// machines.
func TestFleetParallelEquivalence(t *testing.T) {
	want := pressuredObservables(t, 1, false, "")
	for _, workers := range []int{2, 3, 5} {
		got := pressuredObservables(t, workers, false, "")
		diffObservables(t, labelWorkers(workers), want, got)
	}
}

// TestFleetParallelEquivalenceFaulted: a crash plus a core slowdown do
// not break the contract — fault edges are barrier work and apply on the
// same quantum regardless of worker count.
func TestFleetParallelEquivalenceFaulted(t *testing.T) {
	plan := "crash m1 @5ms for 10ms; slow m0 c0-7 x4 @2ms for 50ms"
	want := pressuredObservables(t, 1, false, plan)
	got := pressuredObservables(t, 3, false, plan)
	diffObservables(t, "faulted workers=3", want, got)
	if len(want.Events) == 0 {
		t.Fatal("faulted run published no events — the plan never fired")
	}
}

// TestFleetParallelEquivalenceNaive: the Naive simulator paths hold the
// same contract — parallelism composes with the naive-equivalence suite.
func TestFleetParallelEquivalenceNaive(t *testing.T) {
	want := pressuredObservables(t, 1, true, "")
	got := pressuredObservables(t, 4, true, "")
	diffObservables(t, "naive workers=4", want, got)
	fast := pressuredObservables(t, 4, false, "")
	if !reflect.DeepEqual(want.Result, fast.Result) {
		t.Fatalf("parallel naive result diverged from parallel fast result:\n%+v\nvs\n%+v",
			want.Result, fast.Result)
	}
}

func labelWorkers(w int) string {
	return "workers=" + string(rune('0'+w))
}

// stretchFleet builds a coordinator-less fleet with probes enabled and
// per-machine admission work seeded, the configuration under which Advance
// may actually decouple machines across multi-quantum stretches.
func stretchFleet(t *testing.T, workers int) (*Fleet, *obs.Bus) {
	t.Helper()
	bus := obs.NewBus(0)
	f := parallelFleet(t, 3, workers, false, "", bus)
	for m, r := range f.Rigs {
		r.EnableProbe(0)
		adm := &workload.Admission{Rig: r, MaxInFlight: 4}
		for k := 0; k < 8; k++ {
			adm.Offer(0, 0, int64(m*100+k))
		}
		adm.Fill(0, func(k int, tag int64) *db.Plan {
			return tpch.Build(1+int(tag)%22, uint64(tag)+1)
		})
	}
	return f, bus
}

// stretchObservables snapshots a stretch fleet after it has run.
func stretchObservables(f *Fleet, bus *obs.Bus) fleetObservables {
	out := fleetObservables{
		Now:       f.Now(),
		Allocated: f.AllocatedCores(),
		Events:    bus.Events(),
	}
	for _, r := range f.Rigs {
		out.Machines = append(out.Machines, r.Machine.Snapshot())
	}
	return out
}

// TestFleetAdvanceStretchEquivalence: Advance(n) — which lets machines run
// decoupled up to each epoch barrier — matches n sequential Ticks exactly,
// at workers 1 and >1, down to every probe sample and bus event.
func TestFleetAdvanceStretchEquivalence(t *testing.T) {
	const quanta = 600
	ref, refBus := stretchFleet(t, 1)
	for i := 0; i < quanta; i++ {
		ref.Tick()
	}
	want := stretchObservables(ref, refBus)
	if len(want.Events) == 0 {
		t.Fatal("reference run published no events — probes or mechanisms never fired")
	}

	cases := []struct {
		name    string
		workers int
	}{
		{"advance sequential", 1},
		{"advance workers=4", 4},
	}
	for _, tc := range cases {
		f, bus := stretchFleet(t, tc.workers)
		f.Advance(quanta)
		got := stretchObservables(f, bus)
		diffObservables(t, tc.name, want, got)
		for m, r := range f.Rigs {
			if !reflect.DeepEqual(r.Probe.Samples(), ref.Rigs[m].Probe.Samples()) {
				t.Fatalf("%s: machine %d probe samples diverged", tc.name, m)
			}
		}
	}
}

// TestFleetAdvanceStretchesPastOne: the guard rail for the test above —
// a coordinator-less fleet must actually take multi-quantum stretches,
// otherwise the equivalence proves nothing about decoupled execution.
func TestFleetAdvanceStretchesPastOne(t *testing.T) {
	f, _ := stretchFleet(t, 1)
	f.Tick() // land just past cycle 0 so the next due times are ahead
	if s := f.safeStretch(1 << 20); s <= 1 {
		t.Fatalf("safeStretch = %d, want > 1: the stretch engine never decouples", s)
	}
	// And with nothing due at all, the stretch is unbounded up to max.
	bare, err := NewFleet(Options{Machines: 2, SF: 0.002, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := bare.safeStretch(1000); s != 1000 {
		t.Fatalf("bare fleet safeStretch = %d, want the full 1000", s)
	}
}
