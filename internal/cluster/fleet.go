package cluster

import (
	"fmt"

	"elasticore/internal/elastic"
	"elasticore/internal/hashmix"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/workload"
)

// Options configures a fleet.
type Options struct {
	// Machines is the fleet size (default 1).
	Machines int
	// Shards is the partition count (default Machines; must be >= it).
	Shards int
	// SF is the *total* TPC-H scale factor; each machine loads its owned
	// fraction (shards owned / total shards) of it.
	SF float64
	// Seed varies datasets and workload; each machine derives its own
	// dataset seed from it (default 1).
	Seed uint64
	// Mode is the per-machine allocation policy (default ModeOS: no
	// mechanism; a ClusterArbiter requires an elastic mode).
	Mode workload.Mode
	// Strategy overrides each mechanism's state-transition metric.
	Strategy elastic.Strategy
	// ControlPeriod overrides the per-machine control period in cycles.
	ControlPeriod uint64
	// Topology is the per-machine base shape (default the SF-scaled
	// Opteron testbed). Every machine gets the same shape, which makes
	// all quanta equal — the lockstep invariant Tick depends on.
	Topology *numa.Topology
	// Naive routes every rig through the pre-optimization hot paths;
	// results are bit-identical to the fast paths.
	Naive bool
	// Bus, when set, is attached to every rig and to the cluster layers
	// (Coordinator routes, ClusterArbiter rebalances).
	Bus *obs.Bus
}

// Fleet is N lockstep simulated machines behind one Sharder. All
// machines share one quantum and advance together: Tick ticks each
// machine's scheduler in index order, then runs whichever control tier
// is attached (per-machine mechanisms, or the ClusterArbiter when one
// has been installed).
type Fleet struct {
	// Sharder owns the key -> shard -> machine placement.
	Sharder *Sharder
	// Rigs are the machines in index order.
	Rigs []*workload.Rig
	// Opts echoes the construction options (post-default).
	Opts Options
	// Bus is the fleet-wide telemetry bus, nil when dark.
	Bus *obs.Bus

	arb *ClusterArbiter
}

// fleetSeed derives machine m's dataset seed: distinct per machine (a
// machine holds its own shard range, not a copy), stable across runs,
// and never zero (zero selects the rig default).
func fleetSeed(seed uint64, m int) uint64 {
	s := hashmix.Mix64(seed ^ (hashmix.Golden * uint64(m+1)))
	if s == 0 {
		s = 1
	}
	return s
}

// NewFleet builds the machines and the sharder. Each machine's dataset
// is its owned fraction of the total SF, so the fleet as a whole stores
// one database regardless of machine count.
func NewFleet(opts Options) (*Fleet, error) {
	if opts.Machines == 0 {
		opts.Machines = 1
	}
	if opts.Shards == 0 {
		opts.Shards = opts.Machines
	}
	sh, err := NewSharder(opts.Shards, opts.Machines)
	if err != nil {
		return nil, err
	}
	if opts.SF == 0 {
		opts.SF = 0.01
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	f := &Fleet{Sharder: sh, Opts: opts, Bus: opts.Bus}
	for m := 0; m < opts.Machines; m++ {
		lo, hi := sh.ShardsOf(m)
		r, err := workload.NewRig(workload.Options{
			SF:            opts.SF * float64(hi-lo) / float64(opts.Shards),
			Seed:          fleetSeed(opts.Seed, m),
			Mode:          opts.Mode,
			Strategy:      opts.Strategy,
			ControlPeriod: opts.ControlPeriod,
			Topology:      opts.Topology,
			Naive:         opts.Naive,
			Bus:           opts.Bus,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: machine %d: %w", m, err)
		}
		f.Rigs = append(f.Rigs, r)
	}
	return f, nil
}

// Machines returns the fleet size.
func (f *Fleet) Machines() int { return len(f.Rigs) }

// Now returns the fleet clock in cycles (machine 0; all machines are in
// lockstep).
func (f *Fleet) Now() uint64 { return f.Rigs[0].Machine.Now() }

// NowSeconds returns the fleet clock in virtual seconds.
func (f *Fleet) NowSeconds() float64 { return f.Rigs[0].Machine.NowSeconds() }

// Arbiter returns the attached cluster arbiter, nil when each machine's
// mechanism self-governs.
func (f *Fleet) Arbiter() *ClusterArbiter { return f.arb }

// Tick advances every machine by one scheduler quantum in index order,
// then runs the control tier: the ClusterArbiter when attached (the
// per-machine mechanisms only *evaluate*, via the arbiter), otherwise
// each machine's own mechanism.
func (f *Fleet) Tick() {
	for _, r := range f.Rigs {
		r.Sched.Tick()
	}
	if f.arb != nil {
		f.arb.Maybe()
	} else {
		for _, r := range f.Rigs {
			if r.Mech != nil {
				r.Mech.Maybe()
			}
		}
	}
	for _, r := range f.Rigs {
		if r.Probe != nil {
			r.Probe.Maybe()
		}
	}
}

// AllocatedCores returns the cores currently held by each machine's
// DBMS cgroup, in machine order.
func (f *Fleet) AllocatedCores() []int {
	out := make([]int, len(f.Rigs))
	for m, r := range f.Rigs {
		out[m] = r.AllocatedCores()
	}
	return out
}
