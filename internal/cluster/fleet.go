package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"elasticore/internal/elastic"
	"elasticore/internal/faults"
	"elasticore/internal/hashmix"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/workload"
)

// Options configures a fleet.
type Options struct {
	// Machines is the fleet size (default 1).
	Machines int
	// Shards is the partition count (default Machines; must be >= it).
	Shards int
	// SF is the *total* TPC-H scale factor; each machine loads its owned
	// fraction (shards owned / total shards) of it.
	SF float64
	// Seed varies datasets and workload; each machine derives its own
	// dataset seed from it (default 1).
	Seed uint64
	// Mode is the per-machine allocation policy (default ModeOS: no
	// mechanism; a ClusterArbiter requires an elastic mode).
	Mode workload.Mode
	// Strategy overrides each mechanism's state-transition metric.
	Strategy elastic.Strategy
	// ControlPeriod overrides the per-machine control period in cycles.
	ControlPeriod uint64
	// Topology is the per-machine base shape (default the SF-scaled
	// Opteron testbed). Every machine gets the same shape, which makes
	// all quanta equal — the lockstep invariant Tick depends on.
	Topology *numa.Topology
	// Naive routes every rig through the pre-optimization hot paths;
	// results are bit-identical to the fast paths.
	Naive bool
	// Bus, when set, is attached to every rig and to the cluster layers
	// (Coordinator routes, ClusterArbiter rebalances).
	Bus *obs.Bus
	// Replicas keeps R copies of every shard (default 1, no
	// replication); each machine's dataset grows to its share of the
	// replicated store. Must fit the fleet: 1 <= R <= Machines.
	Replicas int
	// Faults, when non-empty, is the deterministic failure plan
	// compiled against this fleet and injected as it ticks. An empty
	// or nil plan leaves every code path byte-identical to a fleet
	// built before fault injection existed.
	Faults *faults.Plan
	// Workers is the goroutine count machine construction and machine
	// ticks spread over (0 selects GOMAXPROCS, 1 forces the fully
	// sequential engine). Simulated results are bit-identical at every
	// value: machines decouple only between the epoch barriers where
	// cross-machine state is read, and staged telemetry replays onto the
	// shared bus in sequential order (see Advance).
	Workers int
}

// Fleet is N lockstep simulated machines behind one Sharder. All
// machines share one quantum and advance together: Tick ticks each
// machine's scheduler in index order, then runs whichever control tier
// is attached (per-machine mechanisms, or the ClusterArbiter when one
// has been installed).
type Fleet struct {
	// Sharder owns the key -> shard -> machine placement.
	Sharder *Sharder
	// Rigs are the machines in index order.
	Rigs []*workload.Rig
	// Opts echoes the construction options (post-default).
	Opts Options
	// Bus is the fleet-wide telemetry bus, nil when dark.
	Bus *obs.Bus

	arb    *ClusterArbiter
	health *HealthMonitor

	// views are the per-machine staging views of Bus (nil entries never
	// exist: either every rig has one, or the slice is nil). Workers > 1
	// publishes through them so concurrent machine ticks keep the bus's
	// sequential event order (see internal/obs/stage.go).
	views []*obs.Bus

	// injector is the compiled fault plan, nil for healthy fleets.
	injector *faults.Injector
	// admissions registers each machine's admission layer (set by the
	// Coordinator) so crash injection can abort queued work and the
	// health monitor can apply brownout caps; entries may be nil.
	admissions []*workload.Admission
	// nextBeat is the cycle of the next heartbeat round (health enabled).
	nextBeat uint64
}

// fleetSeed derives machine m's dataset seed: distinct per machine (a
// machine holds its own shard range, not a copy), stable across runs,
// and never zero (zero selects the rig default).
func fleetSeed(seed uint64, m int) uint64 {
	s := hashmix.Mix64(seed ^ (hashmix.Golden * uint64(m+1)))
	if s == 0 {
		s = 1
	}
	return s
}

// NewFleet builds the machines and the sharder. Each machine's dataset
// is its owned fraction of the total SF, so the fleet as a whole stores
// one database regardless of machine count.
func NewFleet(opts Options) (*Fleet, error) {
	if opts.Machines == 0 {
		opts.Machines = 1
	}
	if opts.Shards == 0 {
		opts.Shards = opts.Machines
	}
	if opts.Replicas == 0 {
		opts.Replicas = 1
	}
	sh, err := NewReplicatedSharder(opts.Shards, opts.Machines, opts.Replicas)
	if err != nil {
		return nil, err
	}
	if opts.SF == 0 {
		opts.SF = 0.01
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	f := &Fleet{Sharder: sh, Opts: opts, Bus: opts.Bus}
	f.admissions = make([]*workload.Admission, opts.Machines)
	buildRig := func(m int) (*workload.Rig, error) {
		// A machine stores every shard it replicates, so its dataset share
		// is HomesOf/Shards — identical to the owned range at R = 1. In
		// parallel mode the rig is built dark and gets a staging view of
		// the shared bus afterwards.
		bus := opts.Bus
		if opts.Workers > 1 {
			bus = nil
		}
		return workload.NewRig(workload.Options{
			SF:            opts.SF * float64(sh.HomesOf(m)) / float64(opts.Shards),
			Seed:          fleetSeed(opts.Seed, m),
			Mode:          opts.Mode,
			Strategy:      opts.Strategy,
			ControlPeriod: opts.ControlPeriod,
			Topology:      opts.Topology,
			Naive:         opts.Naive,
			Bus:           bus,
		})
	}
	f.Rigs = make([]*workload.Rig, opts.Machines)
	if w := min(opts.Workers, opts.Machines); w > 1 {
		// Build machines concurrently: dataset generation dominates rig
		// construction, distinct (SF, seed) keys generate in parallel and
		// identical ones coalesce in the tpch cache's singleflight.
		errs := make([]error, opts.Machines)
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for m := g; m < opts.Machines; m += w {
					f.Rigs[m], errs[m] = buildRig(m)
				}
			}(g)
		}
		wg.Wait()
		for m, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("cluster: machine %d: %w", m, err)
			}
		}
	} else {
		for m := 0; m < opts.Machines; m++ {
			r, err := buildRig(m)
			if err != nil {
				return nil, fmt.Errorf("cluster: machine %d: %w", m, err)
			}
			f.Rigs[m] = r
		}
	}
	if opts.Bus != nil && opts.Workers > 1 {
		f.attachViews()
	}
	if opts.Faults != nil && len(opts.Faults.Faults) > 0 {
		topo := f.Rigs[0].Machine.Topology()
		if err := opts.Faults.Validate(opts.Machines, topo.TotalCores()); err != nil {
			return nil, err
		}
		f.injector = opts.Faults.Compile(opts.Machines, topo.TotalCores(), topo.SecondsToCycles)
	}
	return f, nil
}

// Machines returns the fleet size.
func (f *Fleet) Machines() int { return len(f.Rigs) }

// Now returns the fleet clock in cycles (machine 0; all machines are in
// lockstep).
func (f *Fleet) Now() uint64 { return f.Rigs[0].Machine.Now() }

// NowSeconds returns the fleet clock in virtual seconds.
func (f *Fleet) NowSeconds() float64 { return f.Rigs[0].Machine.NowSeconds() }

// Arbiter returns the attached cluster arbiter, nil when each machine's
// mechanism self-governs.
func (f *Fleet) Arbiter() *ClusterArbiter { return f.arb }

// Health returns the attached health monitor, nil when failure detection
// is off.
func (f *Fleet) Health() *HealthMonitor { return f.health }

// Injector returns the compiled fault plan, nil for a healthy fleet.
// All its read methods are nil-safe, so callers query it unconditionally.
func (f *Fleet) Injector() *faults.Injector { return f.injector }

// Down reports whether machine m is currently crashed by the fault plan.
func (f *Fleet) Down(m int) bool { return f.injector.Down(m) }

// EnsureBus returns the fleet-wide bus, creating one and attaching it to
// every machine on first use (the health monitor needs heartbeats even
// when the caller never asked for telemetry).
func (f *Fleet) EnsureBus() *obs.Bus {
	if f.Bus == nil {
		f.Bus = obs.NewBus(0)
		if f.Opts.Workers > 1 {
			f.attachViews()
		} else {
			for _, r := range f.Rigs {
				r.AttachBus(f.Bus)
			}
		}
	}
	return f.Bus
}

// attachViews gives every rig a staging view of the fleet bus: rigs
// publish through their view, which forwards to the shared bus except
// during a parallel tick section, where events stage per machine and
// replay in deterministic order at the barrier.
func (f *Fleet) attachViews() {
	f.views = make([]*obs.Bus, len(f.Rigs))
	for m, r := range f.Rigs {
		f.views[m] = obs.NewView(f.Bus)
		r.AttachBus(f.views[m])
	}
}

// RegisterAdmission ties machine m's admission layer to the fleet so
// crash injection can abort its queued work (FailAll) and the health
// monitor can brownout-cap it. The Coordinator registers its per-machine
// admissions at the start of a run; a machine already down at
// registration starts gated.
func (f *Fleet) RegisterAdmission(m int, adm *workload.Admission) {
	f.admissions[m] = adm
	if adm != nil && f.injector.Down(m) {
		adm.Down = true
	}
}

// Tick advances every machine by one scheduler quantum, then runs the
// control tier: the ClusterArbiter when attached (the per-machine
// mechanisms only *evaluate*, via the arbiter), otherwise each machine's
// own mechanism. With a fault plan compiled in, fault edges due at the
// current cycle apply BEFORE the rigs tick — a machine crashing at cycle
// t never executes work stamped t — and heartbeats plus failure
// detection run after the control tier, so the health monitor sees the
// post-control allocation state.
//
// With Workers > 1 the machines tick on concurrent goroutines; the
// control tier, heartbeats, health and probe steps always run on the
// calling goroutine, after the barrier. Results are bit-identical to the
// sequential engine.
func (f *Fleet) Tick() { f.advanceStretch(1) }

// Advance runs n quanta through the epoch-barrier engine: machines
// advance decoupled through a stretch of quanta, then synchronize before
// anything that reads cross-machine state runs. A stretch is capped at
// the earliest due control event — mechanism evaluation, cluster
// rebalance or migration landing, probe sample, fault edge — so every
// control action fires on exactly the quantum a Tick-by-Tick run would
// have fired it on, and a health-monitored fleet (whose failure detector
// steps every quantum) degenerates to stretch 1.
func (f *Fleet) Advance(n int) {
	for n > 0 {
		s := f.safeStretch(n)
		f.advanceStretch(s)
		n -= s
	}
}

// advanceStretch runs one epoch: due fault edges, `stretch` decoupled
// quanta per machine, then the barrier work in sequential order.
func (f *Fleet) advanceStretch(stretch int) {
	if f.injector != nil {
		f.applyFaults()
	}
	f.tickRigs(stretch)
	if f.arb != nil {
		f.arb.Maybe()
	} else {
		for _, r := range f.Rigs {
			if r.Mech != nil {
				r.Mech.Maybe()
			}
		}
	}
	if f.health != nil {
		f.heartbeats()
		f.health.Step(f.Now())
	}
	for _, r := range f.Rigs {
		if r.Probe != nil {
			r.Probe.Maybe()
		}
	}
}

// safeStretch returns how many quanta the machines may advance before
// the next epoch barrier, at most max: the number of quanta until the
// earliest due control event. Mechanism and probe due times are checked
// after a quantum runs, fault edges before one runs; both give the same
// bound — ceil((due - now) / quantum) — because a barrier ends exactly
// at the due quantum's edge.
func (f *Fleet) safeStretch(max int) int {
	if max <= 1 {
		return 1
	}
	if f.health != nil {
		// The failure detector reads every machine's beat gap each
		// quantum; there is no safe decoupled stretch.
		return 1
	}
	next := ^uint64(0)
	due := func(at uint64) {
		if at < next {
			next = at
		}
	}
	if f.arb != nil {
		due(f.arb.NextAt())
	} else {
		for _, r := range f.Rigs {
			if r.Mech != nil {
				due(r.Mech.NextAt())
			}
		}
	}
	for _, r := range f.Rigs {
		if r.Probe != nil {
			due(r.Probe.NextAt())
		}
	}
	if f.injector != nil {
		due(f.injector.NextEdge())
	}
	if next == ^uint64(0) {
		// No control tier, no probes, no faults: nothing reads
		// cross-machine state until the caller does.
		return max
	}
	now := f.Now()
	if next <= now {
		return 1
	}
	q := f.Rigs[0].Sched.Quantum()
	s := (next - now + q - 1) / q
	if s < 1 {
		return 1
	}
	if s > uint64(max) {
		return max
	}
	return int(s)
}

// tickRigs advances every machine by `stretch` quanta. Workers <= 1 (or
// a single machine) runs the plain sequential loop. Otherwise machines
// spread across Workers goroutines; each machine stages its telemetry
// per quantum, and after the barrier the staged events replay onto the
// shared bus in (quantum, machine) order — the exact order the
// sequential loop publishes in.
func (f *Fleet) tickRigs(stretch int) {
	w := f.Opts.Workers
	if w > len(f.Rigs) {
		w = len(f.Rigs)
	}
	if w <= 1 {
		for q := 0; q < stretch; q++ {
			for _, r := range f.Rigs {
				r.Sched.Tick()
			}
		}
		return
	}
	staged := f.views != nil
	if staged {
		for _, v := range f.views {
			v.BeginStage()
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for m := g; m < len(f.Rigs); m += w {
				r := f.Rigs[m]
				if staged {
					v := f.views[m]
					for q := 0; q < stretch; q++ {
						r.Sched.Tick()
						v.Mark()
					}
				} else {
					for q := 0; q < stretch; q++ {
						r.Sched.Tick()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if staged {
		for q := 0; q < stretch; q++ {
			for _, v := range f.views {
				for _, e := range v.Staged(q) {
					f.Bus.Publish(e)
				}
			}
		}
		for _, v := range f.views {
			v.EndStage()
		}
	}
}

// applyFaults advances the injector to the fleet clock and applies every
// fault edge that became due, in the injector's deterministic order
// (cycle, then plan index, starts before ends).
func (f *Fleet) applyFaults() {
	now := f.Now()
	for _, ch := range f.injector.Advance(now) {
		ft := f.injector.Fault(ch.Index)
		m := ft.Machine
		r := f.Rigs[m]
		label := ft.Kind.String()
		switch ft.Kind {
		case faults.Crash:
			if ch.Start {
				// Crash: the machine keeps ticking (the fleet's lockstep
				// invariant) but every core freezes and all queued and
				// in-flight work aborts.
				for c := 0; c < r.Machine.Topology().TotalCores(); c++ {
					r.Sched.SetCoreSlowdown(numa.CoreID(c), faults.StallFactor)
				}
				if adm := f.admissions[m]; adm != nil {
					adm.Down = true
					adm.FailAll()
				}
			} else {
				label = "recover"
				// Restore whatever slow/stall faults remain active on
				// each core — the injector's combined factor, not 1.
				for c := 0; c < r.Machine.Topology().TotalCores(); c++ {
					r.Sched.SetCoreSlowdown(numa.CoreID(c), f.injector.CoreFactor(m, c))
				}
				if adm := f.admissions[m]; adm != nil {
					adm.Down = false
				}
			}
		case faults.Stall, faults.Slow:
			if !ch.Start {
				label += "-end"
			}
			// Re-apply the combined factor over the fault's core range,
			// unless a crash currently dominates the whole machine.
			if !f.injector.Down(m) {
				lo, hi := ft.Core, ft.CoreHi
				if lo < 0 {
					lo, hi = 0, r.Machine.Topology().TotalCores()-1
				}
				for c := lo; c <= hi; c++ {
					r.Sched.SetCoreSlowdown(numa.CoreID(c), f.injector.CoreFactor(m, c))
				}
			}
		case faults.Link:
			// Nothing to apply on the machine: the coordinator reads the
			// injector's link state on every send. The event is the record.
			if !ch.Start {
				label += "-end"
			}
		}
		if f.Bus != nil {
			f.Bus.Publish(obs.Event{
				Kind:    obs.KindFault,
				Now:     ch.At,
				Core:    int32(ft.Core),
				V1:      int64(ft.Factor),
				V2:      int64(ft.Drop * 1e6),
				Dur:     f.injector.LinkDelay(m),
				Label:   label,
				Machine: int32(m),
			})
		}
	}
}

// heartbeats publishes one liveness beat per non-crashed machine every
// HeartbeatEvery cycles; the health monitor listens on the bus, so a
// crashed machine's silence is what its death detection feeds on.
func (f *Fleet) heartbeats() {
	now := f.Now()
	if now < f.nextBeat {
		return
	}
	f.nextBeat = now + f.health.HeartbeatEvery()
	for m := range f.Rigs {
		if f.injector.Down(m) {
			continue
		}
		f.Bus.Publish(obs.Event{
			Kind:    obs.KindHeartbeat,
			Now:     now,
			Core:    -1,
			Machine: int32(m),
		})
	}
}

// AllocatedCores returns the cores currently held by each machine's
// DBMS cgroup, in machine order.
func (f *Fleet) AllocatedCores() []int {
	out := make([]int, len(f.Rigs))
	for m, r := range f.Rigs {
		out[m] = r.AllocatedCores()
	}
	return out
}
