package cluster

import (
	"elasticore/internal/arrivals"
	"elasticore/internal/db"
	"elasticore/internal/metrics"
	"elasticore/internal/obs"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// coordinator.go is the fleet's front door: the open-loop driver
// generalized from one machine to N. Requests arrive from an arrival
// process, are routed — keyed requests to their shard's owner, unkeyed
// ones by a load-balance policy, every ScatterEvery-th as a
// scatter-gather fan-out over all machines — and each machine runs its
// own workload.Admission (the same bounded-queue/session layer the
// single-machine OpenDriver uses). Partial results of a scatter merge
// by scalar addition; the parent request completes when its last
// sub-query does.

// Policy selects how unkeyed requests pick a machine.
type Policy int

const (
	// BalanceShortestQueue routes to the machine with the fewest queued
	// requests (ties: fewer in flight, then lowest index).
	BalanceShortestQueue Policy = iota
	// BalanceWeighted routes to the machine with the lowest queue depth
	// per allocated core, so a machine the arbiter grew absorbs
	// proportionally more traffic (ties: lowest index).
	BalanceWeighted
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == BalanceWeighted {
		return "weighted"
	}
	return "shortest-queue"
}

// parentReq tracks one routed request until every sub-query finishes.
type parentReq struct {
	at      uint64
	pending int
	merged  float64
	label   string
}

// MachineStats is one machine's share of a coordinator run.
type MachineStats struct {
	// Routed counts requests (or scatter sub-queries) sent here.
	Routed int
	// Admitted, Dropped and Completed are the machine's admission-layer
	// outcomes; PeakQueueDepth and PeakInFlight its maxima.
	Admitted, Dropped, Completed int
	PeakQueueDepth, PeakInFlight int
	// Latency is the machine-local per-query latency histogram (cycles).
	Latency metrics.Histogram
	// AllocatedEnd is the machine's core count when the run ended.
	AllocatedEnd int
}

// Result summarizes one coordinator run. Counts are parent requests
// (a scatter counts once, however many machines it fanned to).
type Result struct {
	// ElapsedSeconds is the virtual wall time of the run.
	ElapsedSeconds float64
	// Offered = Completed + Dropped + Abandoned: every generated request
	// either finished, was shed at a full queue (a scatter sheds
	// atomically: all sub-queries or none), or was still queued or in
	// flight at the deadline.
	Offered, Completed, Dropped, Abandoned int
	// RoutedKeyed, RoutedBalanced and Scattered split Offered by routing
	// kind.
	RoutedKeyed, RoutedBalanced, Scattered int
	// Throughput is parent completions per virtual second.
	Throughput float64
	// Latency is the fleet-wide parent-request latency histogram in
	// cycles (arrival to last sub-query completion).
	Latency metrics.Histogram
	// QueueWait and Service are fleet-wide per-query histograms, merged
	// bucket-wise from the per-machine admission layers.
	QueueWait, Service metrics.Histogram
	// MergedScalars sums every completed request's merged scalar — the
	// cross-check that scatter-gather merging loses nothing.
	MergedScalars float64
	// PerMachine is indexed by machine.
	PerMachine []MachineStats
}

// Coordinator replays an arrival process against a fleet.
type Coordinator struct {
	// Fleet is the machine pool (required).
	Fleet *Fleet
	// Process generates arrival timestamps relative to the run start. A
	// nil process offers nothing.
	Process arrivals.Process
	// Policy routes unkeyed requests (default BalanceShortestQueue).
	Policy Policy
	// Keys, when set, returns the routing key of the k-th offered
	// request (0-based); its shard's owner serves it. Nil leaves every
	// request unkeyed (balance-routed).
	Keys func(k int) uint64
	// ScatterEvery makes every n-th offered request (1-based: requests
	// n-1, 2n-1, ...) a scatter-gather over all machines; 0 disables.
	ScatterEvery int
	// Build builds the plan of an admitted (sub-)query from its parent
	// request id (default tpch.BuildQ6(id+1)); a scatter's sub-queries
	// share the parent id, i.e. they are the same query on every shard.
	Build func(id uint64) *db.Plan
	// MergeScalar names the scalar summed across sub-queries (default
	// "result", Q6's revenue).
	MergeScalar string
	// MaxInFlight and QueueCap bound each machine's admission layer
	// (defaults 64 and 1024, as for the single-machine OpenDriver).
	MaxInFlight, QueueCap int
	// MaxArrivals stops offering after this many requests; zero offers
	// until MaxSeconds.
	MaxArrivals int
	// MaxSeconds bounds the run in virtual time (default 600).
	MaxSeconds float64
	// DisableBacklog leaves the mechanisms' queue-pressure inputs
	// unwired (A/B baselines).
	DisableBacklog bool
}

// pick returns the balance policy's machine for an unkeyed request.
func (c *Coordinator) pick(adms []*workload.Admission) int {
	best := 0
	switch c.Policy {
	case BalanceWeighted:
		// Lowest queue depth per allocated core: compare q_i/w_i by
		// cross-multiplication to stay in integers.
		bw := c.Fleet.Rigs[0].AllocatedCores()
		bq := adms[0].QueueLen() + adms[0].InFlight()
		for m := 1; m < len(adms); m++ {
			w := c.Fleet.Rigs[m].AllocatedCores()
			q := adms[m].QueueLen() + adms[m].InFlight()
			if q*bw < bq*w {
				best, bq, bw = m, q, w
			}
		}
	default:
		for m := 1; m < len(adms); m++ {
			q, b := adms[m], adms[best]
			if q.QueueLen() < b.QueueLen() ||
				(q.QueueLen() == b.QueueLen() && q.InFlight() < b.InFlight()) {
				best = m
			}
		}
	}
	return best
}

// Run replays the arrival process to completion (or the deadline) and
// returns the fleet-wide summary.
func (c *Coordinator) Run() Result {
	f := c.Fleet
	if c.MaxSeconds == 0 {
		c.MaxSeconds = 600
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.Build == nil {
		c.Build = func(id uint64) *db.Plan { return tpch.BuildQ6(id + 1) }
	}
	if c.MergeScalar == "" {
		c.MergeScalar = "result"
	}
	topo := f.Rigs[0].Machine.Topology()
	bus := f.Bus

	var res Result
	res.PerMachine = make([]MachineStats, len(f.Rigs))
	var reqs []parentReq

	adms := make([]*workload.Admission, len(f.Rigs))
	for m, r := range f.Rigs {
		adm := &workload.Admission{
			Rig:         r,
			MaxInFlight: c.MaxInFlight,
			QueueCap:    c.QueueCap,
			MachineID:   int32(m),
		}
		adm.OnComplete = func(tag int64, q *db.Query, total, service uint64) {
			p := &reqs[tag]
			p.merged += q.Scalar(c.MergeScalar)
			p.pending--
			if p.pending == 0 {
				res.Completed++
				res.MergedScalars += p.merged
				res.Latency.Record(f.Now() - p.at)
			}
		}
		adms[m] = adm
		if r.Mech != nil && !c.DisableBacklog {
			r.Mech.SetBacklog(adm.QueueLen)
			defer r.Mech.SetBacklog(nil)
		}
	}
	plans := make([]func(k int, tag int64) *db.Plan, len(f.Rigs))
	for m := range plans {
		plans[m] = func(_ int, tag int64) *db.Plan { return c.Build(uint64(tag)) }
	}

	startCycle := f.Now()
	startTime := f.NowSeconds()
	deadline := startTime + c.MaxSeconds

	// Prime the first arrival; due-ness is decided in integer cycles so
	// the fast and naive paths agree bit for bit (OpenDriver's rule).
	var nextAt uint64
	more := c.Process != nil
	if more {
		t, ok := c.Process.Next()
		nextAt, more = startCycle+topo.SecondsToCycles(t), ok
	}

	// offer routes one request at arrival cycle at.
	offer := func(nowC, at uint64) {
		id := int64(len(reqs))
		k := res.Offered
		res.Offered++
		scatter := c.ScatterEvery > 0 && (k+1)%c.ScatterEvery == 0
		switch {
		case scatter:
			res.Scattered++
			// Atomic admission: a scatter that cannot seat every
			// sub-query is shed whole — a partial fan-out would merge a
			// partial result.
			for _, adm := range adms {
				if adm.QueueLen() >= c.QueueCap {
					res.Dropped++
					return
				}
			}
			reqs = append(reqs, parentReq{at: at, pending: len(adms), label: "scatter"})
			for m, adm := range adms {
				adm.Offer(nowC, at, id)
				res.PerMachine[m].Routed++
				if bus != nil {
					bus.Publish(obs.Event{
						Kind: obs.KindRoute, Now: nowC, Core: -1,
						V1: int64(adm.QueueLen()), V2: -1,
						Label: "scatter", Machine: int32(m),
					})
				}
			}
		default:
			m, shard, label := 0, int64(-1), "any"
			if c.Keys != nil {
				key := c.Keys(k)
				s := f.Sharder.Shard(key)
				m, shard, label = f.Sharder.Owner(s), int64(s), "keyed"
			} else {
				m = c.pick(adms)
			}
			reqs = append(reqs, parentReq{at: at, pending: 1, label: label})
			if !adms[m].Offer(nowC, at, id) {
				res.Dropped++
				reqs[id].pending = 0
				return
			}
			res.PerMachine[m].Routed++
			if label == "keyed" {
				res.RoutedKeyed++
			} else {
				res.RoutedBalanced++
			}
			if bus != nil {
				bus.Publish(obs.Event{
					Kind: obs.KindRoute, Now: nowC, Core: -1,
					V1: int64(adms[m].QueueLen()), V2: shard,
					Label: label, Machine: int32(m),
				})
			}
		}
	}

	for {
		nowC := f.Now()
		for _, adm := range adms {
			adm.Collect(nowC)
		}
		for more && nextAt <= nowC {
			offer(nowC, nextAt)
			if c.MaxArrivals > 0 && res.Offered >= c.MaxArrivals {
				more = false
				break
			}
			t, ok := c.Process.Next()
			nextAt, more = startCycle+topo.SecondsToCycles(t), ok
		}
		idle := true
		for m, adm := range adms {
			adm.Fill(nowC, plans[m])
			adm.UpdatePeaks()
			idle = idle && adm.Idle()
		}
		if !more && idle {
			break
		}
		if f.NowSeconds() >= deadline {
			break
		}
		f.Tick()
	}

	res.Abandoned = res.Offered - res.Completed - res.Dropped
	res.ElapsedSeconds = f.NowSeconds() - startTime
	if res.ElapsedSeconds > 0 {
		res.Throughput = float64(res.Completed) / res.ElapsedSeconds
	}
	for m, adm := range adms {
		st := &res.PerMachine[m]
		st.Admitted = adm.Admitted
		st.Dropped = adm.Dropped
		st.Completed = adm.Completed
		st.PeakQueueDepth = adm.PeakQueueDepth
		st.PeakInFlight = adm.PeakInFlight
		st.Latency = adm.Latency
		st.AllocatedEnd = f.Rigs[m].AllocatedCores()
		res.QueueWait.Merge(&adm.QueueWait)
		res.Service.Merge(&adm.Service)
		f.Rigs[m].Engine.Drain()
	}
	return res
}
