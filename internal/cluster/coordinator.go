package cluster

import (
	"elasticore/internal/arrivals"
	"elasticore/internal/db"
	"elasticore/internal/metrics"
	"elasticore/internal/obs"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// coordinator.go is the fleet's front door: the open-loop driver
// generalized from one machine to N. Requests arrive from an arrival
// process, are routed — keyed requests to their shard's owner, unkeyed
// ones by a load-balance policy, every ScatterEvery-th as a
// scatter-gather fan-out over all machines — and each machine runs its
// own workload.Admission (the same bounded-queue/session layer the
// single-machine OpenDriver uses). Partial results of a scatter merge
// by scalar addition; the parent request completes when its last
// sub-query does.

// Policy selects how unkeyed requests pick a machine.
type Policy int

const (
	// BalanceShortestQueue routes to the machine with the fewest queued
	// requests (ties: fewer in flight, then lowest index).
	BalanceShortestQueue Policy = iota
	// BalanceWeighted routes to the machine with the lowest queue depth
	// per allocated core, so a machine the arbiter grew absorbs
	// proportionally more traffic (ties: lowest index).
	BalanceWeighted
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == BalanceWeighted {
		return "weighted"
	}
	return "shortest-queue"
}

// parentReq tracks one routed request until every sub-query finishes.
type parentReq struct {
	at      uint64
	pending int
	merged  float64
	label   string
	// Fault-tolerance fields, used only on the FT path (see ftState):
	// the routing key (keyed requests re-route on retry), whether the
	// request resolved (completed, failed or dropped — later attempt
	// completions are ignored), whether its one hedge was spent, and how
	// many send attempts it has consumed.
	key    uint64
	keyed  bool
	done   bool
	hedged bool
	tries  int
}

// attempt is one send of a parent request to one machine: the admission
// tag on the FT path indexes this table, so retries and hedges of the
// same parent stay distinguishable.
type attempt struct {
	parent   int64
	machine  int
	sent     uint64
	deadline uint64 // 0 = no timeout
	hedge    bool
	done     bool
}

// retryEntry is one scheduled resend, due after its backoff elapses.
type retryEntry struct {
	parent int64
	due    uint64
}

// wireMsg is one request in flight on a degraded link, delivered to its
// machine's admission queue only after the link's added delay.
type wireMsg struct {
	at      uint64 // original arrival cycle (queue-wait baseline)
	deliver uint64
	machine int
	tag     int64
}

// ftState is the coordinator's fault-tolerance machinery, allocated only
// when timeouts, hedging or a compiled fault plan make it reachable — a
// coordinator without any of those runs the exact pre-FT code path, so
// healthy-fleet results stay byte-identical.
type ftState struct {
	timeoutC, hedgeC, backoffC uint64
	maxRetries                 int

	attempts    []attempt
	outstanding []int64
	retryQ      []retryEntry
	wire        []wireMsg
	dropN       []uint64 // per-machine link-drop roll counters
	buf         []int
	// dueBuf and hedges stage work found while compacting retryQ and
	// outstanding, so acting on it (which appends to those same slices)
	// never aliases an in-progress scan.
	dueBuf []int64
	hedges []int64
}

// quiet reports whether no retry, wire or timeout work is pending (the
// FT half of the run loop's idle test).
func (ft *ftState) quiet(reqs []parentReq) bool {
	if len(ft.retryQ) > 0 || len(ft.wire) > 0 {
		return false
	}
	for _, id := range ft.outstanding {
		a := &ft.attempts[id]
		if !a.done && a.deadline > 0 && !reqs[a.parent].done {
			return false
		}
	}
	return true
}

// MachineStats is one machine's share of a coordinator run.
type MachineStats struct {
	// Routed counts requests (or scatter sub-queries) sent here.
	Routed int
	// Admitted, Dropped and Completed are the machine's admission-layer
	// outcomes; PeakQueueDepth and PeakInFlight its maxima.
	Admitted, Dropped, Completed int
	PeakQueueDepth, PeakInFlight int
	// Latency is the machine-local per-query latency histogram (cycles).
	Latency metrics.Histogram
	// AllocatedEnd is the machine's core count when the run ended.
	AllocatedEnd int
}

// Result summarizes one coordinator run. Counts are parent requests
// (a scatter counts once, however many machines it fanned to).
type Result struct {
	// ElapsedSeconds is the virtual wall time of the run.
	ElapsedSeconds float64
	// Offered = Completed + Dropped + Failed + Abandoned: every generated
	// request either finished, was shed at a full queue (a scatter sheds
	// atomically: all sub-queries or none), exhausted its fault-tolerance
	// retries, or was still queued or in flight at the deadline.
	Offered, Completed, Dropped, Abandoned int
	// Failed counts parent requests that gave up — retries exhausted, or
	// a scatter sub-query aborted by a machine crash.
	Failed int
	// Retried, Hedged, Failovers and WireDropped count fault-tolerance
	// actions: scheduled resends, hedged duplicates, requests served by a
	// non-primary replica, and sends lost on a degraded link.
	Retried, Hedged, Failovers, WireDropped int
	// RoutedKeyed, RoutedBalanced and Scattered split Offered by routing
	// kind.
	RoutedKeyed, RoutedBalanced, Scattered int
	// Throughput is parent completions per virtual second.
	Throughput float64
	// Latency is the fleet-wide parent-request latency histogram in
	// cycles (arrival to last sub-query completion).
	Latency metrics.Histogram
	// QueueWait and Service are fleet-wide per-query histograms, merged
	// bucket-wise from the per-machine admission layers.
	QueueWait, Service metrics.Histogram
	// MergedScalars sums every completed request's merged scalar — the
	// cross-check that scatter-gather merging loses nothing.
	MergedScalars float64
	// PerMachine is indexed by machine.
	PerMachine []MachineStats
}

// Coordinator replays an arrival process against a fleet.
type Coordinator struct {
	// Fleet is the machine pool (required).
	Fleet *Fleet
	// Process generates arrival timestamps relative to the run start. A
	// nil process offers nothing.
	Process arrivals.Process
	// Policy routes unkeyed requests (default BalanceShortestQueue).
	Policy Policy
	// Keys, when set, returns the routing key of the k-th offered
	// request (0-based); its shard's owner serves it. Nil leaves every
	// request unkeyed (balance-routed).
	Keys func(k int) uint64
	// ScatterEvery makes every n-th offered request (1-based: requests
	// n-1, 2n-1, ...) a scatter-gather over all machines; 0 disables.
	ScatterEvery int
	// Build builds the plan of an admitted (sub-)query from its parent
	// request id (default tpch.BuildQ6(id+1)); a scatter's sub-queries
	// share the parent id, i.e. they are the same query on every shard.
	Build func(id uint64) *db.Plan
	// MergeScalar names the scalar summed across sub-queries (default
	// "result", Q6's revenue).
	MergeScalar string
	// MaxInFlight and QueueCap bound each machine's admission layer
	// (defaults 64 and 1024, as for the single-machine OpenDriver).
	MaxInFlight, QueueCap int
	// MaxArrivals stops offering after this many requests; zero offers
	// until MaxSeconds.
	MaxArrivals int
	// MaxSeconds bounds the run in virtual time (default 600).
	MaxSeconds float64
	// DisableBacklog leaves the mechanisms' queue-pressure inputs
	// unwired (A/B baselines).
	DisableBacklog bool

	// TimeoutSeconds is the per-attempt timeout: an attempt still
	// unresolved this many virtual seconds after it was sent is retried
	// with capped exponential backoff. The original is never cancelled —
	// whichever attempt completes first wins and later ones are ignored.
	// Zero disables timeouts.
	TimeoutSeconds float64
	// MaxRetries bounds resends per request after the first attempt; a
	// request that exhausts them counts as Failed. Zero selects 3 when
	// the fault machinery is active.
	MaxRetries int
	// BackoffSeconds is the base retry delay, doubled per attempt and
	// capped at 8x the base (default 5 ms).
	BackoffSeconds float64
	// HedgeAfterSeconds sends one duplicate of a still-pending keyed
	// request to the next healthy replica owner after this long; zero
	// disables. Hedges need Replicas >= 2 to have anywhere to go and do
	// not consume retry budget.
	HedgeAfterSeconds float64
	// OnOutcome, when set, observes every parent request as it resolves:
	// ok true with the total latency on completion, ok false (latency 0)
	// on a drop or failure. Experiments use it to window latency and
	// shed-rate timelines through a fault.
	OnOutcome func(nowC, latency uint64, ok bool)
}

// pick returns the balance policy's machine for an unkeyed request.
func (c *Coordinator) pick(adms []*workload.Admission) int {
	best := 0
	switch c.Policy {
	case BalanceWeighted:
		// Lowest queue depth per allocated core: compare q_i/w_i by
		// cross-multiplication to stay in integers.
		bw := c.Fleet.Rigs[0].AllocatedCores()
		bq := adms[0].QueueLen() + adms[0].InFlight()
		for m := 1; m < len(adms); m++ {
			w := c.Fleet.Rigs[m].AllocatedCores()
			q := adms[m].QueueLen() + adms[m].InFlight()
			if q*bw < bq*w {
				best, bq, bw = m, q, w
			}
		}
	default:
		for m := 1; m < len(adms); m++ {
			q, b := adms[m], adms[best]
			if q.QueueLen() < b.QueueLen() ||
				(q.QueueLen() == b.QueueLen() && q.InFlight() < b.InFlight()) {
				best = m
			}
		}
	}
	return best
}

// Run replays the arrival process to completion (or the deadline) and
// returns the fleet-wide summary.
func (c *Coordinator) Run() Result {
	f := c.Fleet
	if c.MaxSeconds == 0 {
		c.MaxSeconds = 600
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.Build == nil {
		c.Build = func(id uint64) *db.Plan { return tpch.BuildQ6(id + 1) }
	}
	if c.MergeScalar == "" {
		c.MergeScalar = "result"
	}
	topo := f.Rigs[0].Machine.Topology()
	bus := f.Bus

	// The FT machinery only exists when something can need it; without
	// it the run takes the exact pre-FT code path.
	var ft *ftState
	if c.TimeoutSeconds > 0 || c.HedgeAfterSeconds > 0 || f.Injector() != nil {
		ft = &ftState{
			timeoutC:   topo.SecondsToCycles(c.TimeoutSeconds),
			hedgeC:     topo.SecondsToCycles(c.HedgeAfterSeconds),
			maxRetries: c.MaxRetries,
			dropN:      make([]uint64, len(f.Rigs)),
		}
		if ft.maxRetries == 0 {
			ft.maxRetries = 3
		}
		backoff := c.BackoffSeconds
		if backoff == 0 {
			backoff = 5e-3
		}
		ft.backoffC = topo.SecondsToCycles(backoff)
	}

	var res Result
	res.PerMachine = make([]MachineStats, len(f.Rigs))
	var reqs []parentReq

	// resolve finishes a parent request's bookkeeping exactly once.
	resolve := func(nowC uint64, p *parentReq, ok bool) {
		p.done = true
		var lat uint64
		if ok {
			res.Completed++
			res.MergedScalars += p.merged
			lat = nowC - p.at
			res.Latency.Record(lat)
		}
		if c.OnOutcome != nil {
			c.OnOutcome(nowC, lat, ok)
		}
	}

	adms := make([]*workload.Admission, len(f.Rigs))
	for m, r := range f.Rigs {
		adm := &workload.Admission{
			Rig:         r,
			MaxInFlight: c.MaxInFlight,
			QueueCap:    c.QueueCap,
			MachineID:   int32(m),
		}
		adm.OnComplete = func(tag int64, q *db.Query, total, service uint64) {
			id := tag
			if ft != nil {
				ft.attempts[tag].done = true
				id = ft.attempts[tag].parent
			}
			p := &reqs[id]
			if p.done {
				return // a faster attempt already won; ignore the straggler
			}
			p.merged += q.Scalar(c.MergeScalar)
			p.pending--
			if p.pending == 0 {
				if ft != nil {
					resolve(f.Now(), p, true)
					return
				}
				res.Completed++
				res.MergedScalars += p.merged
				res.Latency.Record(f.Now() - p.at)
				if c.OnOutcome != nil {
					c.OnOutcome(f.Now(), f.Now()-p.at, true)
				}
			}
		}
		adms[m] = adm
		f.RegisterAdmission(m, adm)
		defer f.RegisterAdmission(m, nil)
		if r.Mech != nil && !c.DisableBacklog {
			r.Mech.SetBacklog(adm.QueueLen)
			defer r.Mech.SetBacklog(nil)
		}
	}
	plans := make([]func(k int, tag int64) *db.Plan, len(f.Rigs))
	for m := range plans {
		plans[m] = func(_ int, tag int64) *db.Plan {
			id := tag
			if ft != nil {
				id = ft.attempts[tag].parent
			}
			return c.Build(uint64(id))
		}
	}

	// --- FT helpers (no-ops when ft == nil; never called then) ---

	// healthy reports whether machine m can take traffic right now: its
	// admission connections are up (a crash resets them, so this is
	// local knowledge, not an oracle) and the health monitor does not
	// believe it dead.
	healthy := func(m int) bool {
		if adms[m].Down {
			return false
		}
		if h := f.Health(); h != nil && h.Dead(m) {
			return false
		}
		return true
	}

	var scheduleRetry func(nowC uint64, parent int64, m int, reason string)
	scheduleRetry = func(nowC uint64, parent int64, m int, reason string) {
		p := &reqs[parent]
		if p.done {
			return
		}
		if p.tries > ft.maxRetries {
			res.Failed++
			resolve(nowC, p, false)
			return
		}
		shift := uint(p.tries - 1)
		if shift > 3 {
			shift = 3 // cap the backoff at 8x the base
		}
		backoff := ft.backoffC << shift
		res.Retried++
		ft.retryQ = append(ft.retryQ, retryEntry{parent: parent, due: nowC + backoff})
		if bus != nil {
			bus.Publish(obs.Event{
				Kind: obs.KindRetry, Now: nowC, Core: -1,
				V1: parent, V2: int64(p.tries),
				Label: reason, Machine: int32(m),
			})
		}
	}

	// deliver lands one attempt in its machine's admission queue; a full
	// (or browned-out) queue sheds the attempt into the retry path.
	deliver := func(nowC, at uint64, m int, tag int64) {
		if !adms[m].Offer(nowC, at, tag) {
			scheduleRetry(nowC, ft.attempts[tag].parent, m, "shed")
			return
		}
		res.PerMachine[m].Routed++
		if bus != nil {
			p := &reqs[ft.attempts[tag].parent]
			shard := int64(-1)
			if p.keyed {
				shard = int64(f.Sharder.Shard(p.key))
			}
			bus.Publish(obs.Event{
				Kind: obs.KindRoute, Now: nowC, Core: -1,
				V1: int64(adms[m].QueueLen()), V2: shard,
				Label: p.label, Machine: int32(m),
			})
		}
	}

	// sendAttempt records one send and pushes it through the (possibly
	// degraded) link to machine m.
	sendAttempt := func(nowC uint64, parent int64, m int, hedge bool) {
		p := &reqs[parent]
		id := int64(len(ft.attempts))
		a := attempt{parent: parent, machine: m, sent: nowC, hedge: hedge}
		if ft.timeoutC > 0 {
			a.deadline = nowC + ft.timeoutC
		}
		ft.attempts = append(ft.attempts, a)
		ft.outstanding = append(ft.outstanding, id)
		inj := f.Injector()
		if inj.LinkDrop(m) > 0 {
			dropped := inj.DropRoll(m, ft.dropN[m])
			ft.dropN[m]++
			if dropped {
				res.WireDropped++
				if bus != nil {
					bus.Publish(obs.Event{
						Kind: obs.KindRetry, Now: nowC, Core: -1,
						V1: parent, V2: int64(p.tries),
						Label: "drop", Machine: int32(m),
					})
				}
				return // lost on the wire; only a timeout recovers it
			}
		}
		if delay := inj.LinkDelay(m); delay > 0 {
			ft.wire = append(ft.wire, wireMsg{at: p.at, deliver: nowC + delay, machine: m, tag: id})
			return
		}
		deliver(nowC, p.at, m, id)
	}

	// routeAndSend picks a machine for a (re)send: keyed requests go to
	// the first healthy machine in the shard's owner preference order
	// (failover when that is not the primary), unkeyed ones to the
	// balance policy's pick among healthy machines.
	routeAndSend := func(nowC uint64, parent int64) {
		p := &reqs[parent]
		m := -1
		if p.keyed {
			shard := f.Sharder.Shard(p.key)
			primary := f.Sharder.Owner(shard)
			ft.buf = f.Sharder.Owners(shard, ft.buf[:0])
			for _, o := range ft.buf {
				if healthy(o) {
					m = o
					break
				}
			}
			if m >= 0 && m != primary {
				res.Failovers++
				if bus != nil {
					bus.Publish(obs.Event{
						Kind: obs.KindFailover, Now: nowC, Core: -1,
						V1: int64(shard), V2: int64(primary),
						Machine: int32(m),
					})
				}
			}
			if m < 0 {
				p.tries++
				scheduleRetry(nowC, parent, primary, "down")
				return
			}
		} else {
			best := -1
			for o := range adms {
				if !healthy(o) {
					continue
				}
				if best < 0 {
					best = o
					continue
				}
				q, b := adms[o], adms[best]
				if q.QueueLen() < b.QueueLen() ||
					(q.QueueLen() == b.QueueLen() && q.InFlight() < b.InFlight()) {
					best = o
				}
			}
			if best < 0 {
				p.tries++
				scheduleRetry(nowC, parent, -1, "down")
				return
			}
			m = best
		}
		p.tries++
		sendAttempt(nowC, parent, m, false)
	}

	// expire times out overdue attempts and fires due hedges. Hedge
	// sends are staged and applied after the scan: sendAttempt appends
	// to outstanding, which must not grow mid-compaction.
	expire := func(nowC uint64) {
		ft.hedges = ft.hedges[:0]
		kept := ft.outstanding[:0]
		for _, id := range ft.outstanding {
			a := &ft.attempts[id]
			p := &reqs[a.parent]
			if a.done || p.done {
				continue
			}
			if a.deadline > 0 && nowC >= a.deadline {
				scheduleRetry(nowC, a.parent, a.machine, "timeout")
				continue
			}
			if ft.hedgeC > 0 && p.keyed && !p.hedged && !a.hedge &&
				f.Sharder.Replicas() > 1 && nowC >= a.sent+ft.hedgeC {
				ft.hedges = append(ft.hedges, id)
			}
			kept = append(kept, id)
		}
		ft.outstanding = kept
		for _, id := range ft.hedges {
			a := &ft.attempts[id]
			p := &reqs[a.parent]
			if p.done || p.hedged {
				continue
			}
			shard := f.Sharder.Shard(p.key)
			ft.buf = f.Sharder.Owners(shard, ft.buf[:0])
			for _, o := range ft.buf {
				if o != a.machine && healthy(o) {
					p.hedged = true
					res.Hedged++
					if bus != nil {
						bus.Publish(obs.Event{
							Kind: obs.KindFailover, Now: nowC, Core: -1,
							V1: int64(shard), V2: int64(f.Sharder.Owner(shard)),
							Label: "hedge", Machine: int32(o),
						})
					}
					sendAttempt(nowC, a.parent, o, true)
					break
				}
			}
		}
	}

	// drainRetries resends every retry whose backoff has elapsed. Due
	// parents are staged first: a failed resend re-enters retryQ, which
	// must not grow mid-compaction.
	drainRetries := func(nowC uint64) {
		ft.dueBuf = ft.dueBuf[:0]
		kept := ft.retryQ[:0]
		for _, e := range ft.retryQ {
			if e.due > nowC {
				kept = append(kept, e)
				continue
			}
			ft.dueBuf = append(ft.dueBuf, e.parent)
		}
		ft.retryQ = kept
		for _, parent := range ft.dueBuf {
			if !reqs[parent].done {
				routeAndSend(nowC, parent)
			}
		}
	}

	// deliverWire lands wire messages whose link delay has elapsed.
	deliverWire := func(nowC uint64) {
		kept := ft.wire[:0]
		for _, w := range ft.wire {
			if w.deliver > nowC {
				kept = append(kept, w)
				continue
			}
			if !reqs[ft.attempts[w.tag].parent].done {
				deliver(nowC, w.at, w.machine, w.tag)
			}
		}
		ft.wire = kept
	}

	if ft != nil {
		// A crash aborts a machine's queued and in-flight attempts:
		// scatters fail whole (a partial fan-out would merge a partial
		// result), everything else re-enters the retry path.
		for _, adm := range adms {
			adm.OnFail = func(tag int64) {
				a := &ft.attempts[tag]
				a.done = true
				p := &reqs[a.parent]
				if p.done {
					return
				}
				if p.label == "scatter" {
					res.Failed++
					resolve(f.Now(), p, false)
					return
				}
				scheduleRetry(f.Now(), a.parent, a.machine, "down")
			}
		}
	}

	startCycle := f.Now()
	startTime := f.NowSeconds()
	deadline := startTime + c.MaxSeconds

	// Prime the first arrival; due-ness is decided in integer cycles so
	// the fast and naive paths agree bit for bit (OpenDriver's rule).
	var nextAt uint64
	more := c.Process != nil
	if more {
		t, ok := c.Process.Next()
		nextAt, more = startCycle+topo.SecondsToCycles(t), ok
	}

	// offer routes one request at arrival cycle at.
	offer := func(nowC, at uint64) {
		id := int64(len(reqs))
		k := res.Offered
		res.Offered++
		scatter := c.ScatterEvery > 0 && (k+1)%c.ScatterEvery == 0
		switch {
		case scatter:
			res.Scattered++
			// Atomic admission: a scatter that cannot seat every
			// sub-query is shed whole — a partial fan-out would merge a
			// partial result. A crashed machine sheds it the same way.
			for _, adm := range adms {
				if adm.QueueLen() >= c.QueueCap || (ft != nil && adm.Down) {
					res.Dropped++
					if c.OnOutcome != nil {
						c.OnOutcome(nowC, 0, false)
					}
					return
				}
			}
			reqs = append(reqs, parentReq{at: at, pending: len(adms), label: "scatter"})
			for m, adm := range adms {
				tag := id
				if ft != nil {
					// Scatter sub-queries get attempt records (the tag
					// space is shared) but no timeout or hedge: a crash
					// fails the parent fast instead.
					tag = int64(len(ft.attempts))
					ft.attempts = append(ft.attempts, attempt{parent: id, machine: m, sent: nowC})
				}
				adm.Offer(nowC, at, tag)
				res.PerMachine[m].Routed++
				if bus != nil {
					bus.Publish(obs.Event{
						Kind: obs.KindRoute, Now: nowC, Core: -1,
						V1: int64(adm.QueueLen()), V2: -1,
						Label: "scatter", Machine: int32(m),
					})
				}
			}
		case ft != nil:
			p := parentReq{at: at, pending: 1, label: "any"}
			if c.Keys != nil {
				p.key, p.keyed, p.label = c.Keys(k), true, "keyed"
			}
			reqs = append(reqs, p)
			if p.keyed {
				res.RoutedKeyed++
			} else {
				res.RoutedBalanced++
			}
			routeAndSend(nowC, id)
		default:
			m, shard, label := 0, int64(-1), "any"
			if c.Keys != nil {
				key := c.Keys(k)
				s := f.Sharder.Shard(key)
				m, shard, label = f.Sharder.Owner(s), int64(s), "keyed"
			} else {
				m = c.pick(adms)
			}
			reqs = append(reqs, parentReq{at: at, pending: 1, label: label})
			if !adms[m].Offer(nowC, at, id) {
				res.Dropped++
				reqs[id].pending = 0
				if c.OnOutcome != nil {
					c.OnOutcome(nowC, 0, false)
				}
				return
			}
			res.PerMachine[m].Routed++
			if label == "keyed" {
				res.RoutedKeyed++
			} else {
				res.RoutedBalanced++
			}
			if bus != nil {
				bus.Publish(obs.Event{
					Kind: obs.KindRoute, Now: nowC, Core: -1,
					V1: int64(adms[m].QueueLen()), V2: shard,
					Label: label, Machine: int32(m),
				})
			}
		}
	}

	for {
		nowC := f.Now()
		for _, adm := range adms {
			adm.Collect(nowC)
		}
		if ft != nil {
			expire(nowC)
			drainRetries(nowC)
		}
		for more && nextAt <= nowC {
			offer(nowC, nextAt)
			if c.MaxArrivals > 0 && res.Offered >= c.MaxArrivals {
				more = false
				break
			}
			t, ok := c.Process.Next()
			nextAt, more = startCycle+topo.SecondsToCycles(t), ok
		}
		if ft != nil {
			deliverWire(nowC)
		}
		idle := true
		for m, adm := range adms {
			adm.Fill(nowC, plans[m])
			adm.UpdatePeaks()
			idle = idle && adm.Idle()
		}
		if ft != nil && idle {
			idle = ft.quiet(reqs)
		}
		if !more && idle {
			break
		}
		if f.NowSeconds() >= deadline {
			break
		}
		f.Tick()
	}

	res.Abandoned = res.Offered - res.Completed - res.Dropped - res.Failed
	res.ElapsedSeconds = f.NowSeconds() - startTime
	if res.ElapsedSeconds > 0 {
		res.Throughput = float64(res.Completed) / res.ElapsedSeconds
	}
	for m, adm := range adms {
		st := &res.PerMachine[m]
		st.Admitted = adm.Admitted
		st.Dropped = adm.Dropped
		st.Completed = adm.Completed
		st.PeakQueueDepth = adm.PeakQueueDepth
		st.PeakInFlight = adm.PeakInFlight
		st.Latency = adm.Latency
		st.AllocatedEnd = f.Rigs[m].AllocatedCores()
		res.QueueWait.Merge(&adm.QueueWait)
		res.Service.Merge(&adm.Service)
		f.Rigs[m].Engine.Drain()
	}
	return res
}
