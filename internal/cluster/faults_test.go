package cluster

import (
	"reflect"
	"testing"

	"elasticore/internal/arrivals"
	"elasticore/internal/faults"
	"elasticore/internal/hashmix"
	"elasticore/internal/obs"
	"elasticore/internal/workload"
)

// faults_test.go covers the fault-injection stack end to end: crash and
// recovery through the fleet, health detection and shard re-assignment,
// coordinator retry/hedge/failover, and the determinism contract under
// failures.

// faultedFleet builds a 3-machine replicated fleet with a crash window
// on machine 1 and a fast-reacting health monitor.
func faultedFleet(t *testing.T, spec string, replicas int, naive bool, bus *obs.Bus) *Fleet {
	t.Helper()
	plan, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(Options{
		Machines: 3,
		Shards:   6,
		SF:       0.002,
		Seed:     7,
		Mode:     workload.ModeDense,
		Replicas: replicas,
		Faults:   plan,
		Naive:    naive,
		Bus:      bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := f.Rigs[0].Machine.Topology()
	if _, err := NewHealthMonitor(HealthConfig{
		Fleet:           f,
		HeartbeatEvery:  topo.SecondsToCycles(1e-3),
		DeadAfter:       topo.SecondsToCycles(4e-3),
		TransferLatency: topo.SecondsToCycles(5e-3),
		BrownoutCap:     8,
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

// faultedCoordinator drives keyed traffic with the full FT kit enabled.
func faultedCoordinator(f *Fleet) *Coordinator {
	sh := f.Sharder
	return &Coordinator{
		Fleet:   f,
		Process: arrivals.NewPoisson(400, 11),
		Keys: func(k int) uint64 {
			return sh.KeyForShard(int(hashmix.Mix64(uint64(k+1))%uint64(sh.Shards())), uint64(k))
		},
		TimeoutSeconds:    5e-3,
		BackoffSeconds:    2e-3,
		MaxRetries:        5,
		HedgeAfterSeconds: 3e-3,
		MaxArrivals:       60,
		MaxSeconds:        120,
	}
}

// TestFleetCrashRecover: a crash window aborts the victim's work, the
// health monitor declares it dead and re-homes its shards onto the
// surviving replica, traffic fails over, and recovery re-homes them
// back — with every request accounted for.
func TestFleetCrashRecover(t *testing.T) {
	bus := obs.NewBus(0)
	f := faultedFleet(t, "crash m1 @0.02s for 0.06s", 2, false, bus)
	res := faultedCoordinator(f).Run()

	h := f.Health()
	if h.Deaths != 1 || h.Recoveries != 1 {
		t.Fatalf("Deaths=%d Recoveries=%d, want 1/1", h.Deaths, h.Recoveries)
	}
	if h.Reassigned == 0 {
		t.Fatal("no shard re-assignments landed")
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed through the fault")
	}
	if res.Failovers == 0 && res.Hedged == 0 && res.Retried == 0 {
		t.Fatal("the fault window triggered no fault-tolerance actions")
	}
	if got := res.Completed + res.Dropped + res.Failed + res.Abandoned; got != res.Offered {
		t.Fatalf("accounting: %d+%d+%d+%d = %d, want Offered %d",
			res.Completed, res.Dropped, res.Failed, res.Abandoned, got, res.Offered)
	}

	labels := map[string]bool{}
	for _, e := range bus.EventsOfKind(obs.KindFault) {
		labels[e.Label] = true
	}
	if !labels["crash"] || !labels["recover"] {
		t.Fatalf("fault event labels %v, want crash and recover", labels)
	}
	reassign := map[string]int{}
	for _, e := range bus.EventsOfKind(obs.KindReassign) {
		reassign[e.Label]++
	}
	if reassign["begin"] == 0 || reassign["done"] == 0 {
		t.Fatalf("reassign events %v, want begin and done", reassign)
	}
	if len(bus.EventsOfKind(obs.KindHeartbeat)) == 0 {
		t.Fatal("no heartbeats on the bus with health enabled")
	}
	// Post-recovery the primaries must be back home.
	for shard := 0; shard < f.Sharder.Shards(); shard++ {
		if f.Sharder.Owner(shard) != f.Sharder.Home(shard) {
			t.Fatalf("shard %d still re-homed on machine %d after recovery",
				shard, f.Sharder.Owner(shard))
		}
	}
}

// TestCoordinatorZeroAdmission: with every machine crashed for the whole
// run, nothing is ever admitted — every request fails or is shed, the
// latency histogram stays empty, and the run still terminates.
func TestCoordinatorZeroAdmission(t *testing.T) {
	f := faultedFleet(t, "crash m0 @0s; crash m1 @0s; crash m2 @0s", 2, false, nil)
	c := faultedCoordinator(f)
	c.MaxArrivals = 10
	c.MaxSeconds = 5
	res := c.Run()
	if res.Completed != 0 {
		t.Fatalf("%d completions on an all-crashed fleet", res.Completed)
	}
	if res.Latency.Count() != 0 {
		t.Fatalf("latency histogram has %d samples with zero admissions", res.Latency.Count())
	}
	if res.Failed+res.Dropped+res.Abandoned != res.Offered {
		t.Fatalf("zero-admission accounting: Failed %d + Dropped %d + Abandoned %d != Offered %d",
			res.Failed, res.Dropped, res.Abandoned, res.Offered)
	}
	if res.Failed == 0 {
		t.Fatal("no request exhausted its retries against a dead fleet")
	}
}

// TestFleetReplicasValidation: the replica degree must fit the fleet.
func TestFleetReplicasValidation(t *testing.T) {
	_, err := NewFleet(Options{Machines: 2, Shards: 4, SF: 0.002, Replicas: 3})
	if err == nil {
		t.Fatal("replicas > machines accepted")
	}
	if _, err := NewFleet(Options{Machines: 2, Shards: 4, SF: 0.002, Replicas: 2}); err != nil {
		t.Fatal(err)
	}
}

// TestFleetFaultValidation: a plan referencing machines or cores outside
// the fleet is rejected at construction.
func TestFleetFaultValidation(t *testing.T) {
	plan, err := faults.Parse("crash m9 @1s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFleet(Options{Machines: 3, Shards: 6, SF: 0.002, Faults: plan}); err == nil {
		t.Fatal("plan crashing machine 9 accepted by a 3-machine fleet")
	}
}

// faultedRun is one crash-and-recover coordinator run, the unit the
// faulted determinism test compares.
func faultedRun(t *testing.T, naive bool) Result {
	t.Helper()
	f := faultedFleet(t, "crash m1 @0.02s for 0.06s; slow m2 c0-3 x4 @0.01s for 0.1s", 2, naive, nil)
	return faultedCoordinator(f).Run()
}

// TestFleetFaultDeterminism: a faulted run — crash, recovery, slow
// cores, retries, hedges and re-assignment — is bit-identical across
// repeats and between the fast and Naive simulator paths.
func TestFleetFaultDeterminism(t *testing.T) {
	a := faultedRun(t, false)
	b := faultedRun(t, false)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeat faulted run diverged:\n%+v\nvs\n%+v", a, b)
	}
	n := faultedRun(t, true)
	if !reflect.DeepEqual(a, n) {
		t.Fatalf("naive faulted run diverged from fast run:\n%+v\nvs\n%+v", a, n)
	}
}
