// Package cluster scales the paper's single-machine elastic mechanism
// out to a simulated fleet: N workload rigs (each its own topology,
// scheduler, DB engine and elastic mechanism), a Sharder partitioning
// the TPC-H store across them, a Coordinator routing open-loop queries
// to shard owners (with scatter-gather and queue-aware load balancing),
// and a ClusterArbiter — a second control tier above the per-machine
// PrT nets — that moves whole cores between machines and charges an
// explicit migration latency for every core that travels.
//
// Determinism contract: machines tick in index order under one shared
// quantum, every routing and rebalance decision breaks ties by lowest
// machine index, and all randomness flows through SplitMix64 — a fleet
// run is bit-identical across repeats and between the fast and Naive
// simulator paths.
package cluster

import (
	"fmt"

	"elasticore/internal/hashmix"
)

// Sharder partitions a keyed store into shards and owns the shard ->
// machine placement. Keys hash to shards via SplitMix64 (stable under
// any machine count); shards map to machines as contiguous ranges, so
// growing the fleet re-homes whole ranges instead of rehashing keys.
//
// With R-way replication (NewReplicatedSharder) each shard's replica
// set is its home machine plus the R-1 successors modulo the fleet
// (chained declustering), and the *primary* — the machine serving the
// shard right now — is mutable: the health monitor re-homes a dead
// machine's primaries onto surviving replicas (Reassign) and restores
// them on recovery. With R = 1 the primary table reproduces the static
// Owner formula exactly, so unreplicated fleets are bit-identical to
// the pre-replication code.
type Sharder struct {
	shards   int
	machines int
	replicas int
	primary  []int
}

// NewSharder validates the partitioning shape: at least one machine,
// and at least as many shards as machines so every machine owns data.
func NewSharder(shards, machines int) (*Sharder, error) {
	return NewReplicatedSharder(shards, machines, 1)
}

// NewReplicatedSharder builds a sharder keeping R copies of every
// shard; replicas must fit the fleet (1 <= R <= machines).
func NewReplicatedSharder(shards, machines, replicas int) (*Sharder, error) {
	if machines < 1 {
		return nil, fmt.Errorf("cluster: machines %d < 1", machines)
	}
	if shards < machines {
		return nil, fmt.Errorf("cluster: shards %d < machines %d", shards, machines)
	}
	if replicas < 1 || replicas > machines {
		return nil, fmt.Errorf("cluster: replicas %d outside [1, %d machines]", replicas, machines)
	}
	s := &Sharder{shards: shards, machines: machines, replicas: replicas}
	s.primary = make([]int, shards)
	for shard := range s.primary {
		s.primary[shard] = s.Home(shard)
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Sharder) Shards() int { return s.shards }

// Machines returns the machine count.
func (s *Sharder) Machines() int { return s.machines }

// Shard hashes a key to its shard.
func (s *Sharder) Shard(key uint64) int {
	return int(hashmix.Mix64(key) % uint64(s.shards))
}

// ShardsOf returns machine m's contiguous owned range [lo, hi).
func (s *Sharder) ShardsOf(machine int) (lo, hi int) {
	lo = machine * s.shards / s.machines
	hi = (machine + 1) * s.shards / s.machines
	return lo, hi
}

// Home returns the machine a shard's contiguous range maps to (the
// inverse of ShardsOf) — the shard's original owner and the anchor of
// its replica set, independent of any re-assignment.
func (s *Sharder) Home(shard int) int {
	return ((shard+1)*s.machines - 1) / s.shards
}

// Owner returns the machine currently serving a shard: the home until
// a Reassign moves it.
func (s *Sharder) Owner(shard int) int {
	return s.primary[shard]
}

// Replicas returns the replication degree R.
func (s *Sharder) Replicas() int { return s.replicas }

// ReplicaSet appends the shard's R replica machines to buf (home
// first, then its successors modulo the fleet) and returns it.
func (s *Sharder) ReplicaSet(shard int, buf []int) []int {
	home := s.Home(shard)
	for r := 0; r < s.replicas; r++ {
		buf = append(buf, (home+r)%s.machines)
	}
	return buf
}

// Owners appends the machines that can serve the shard in preference
// order — the live primary first, then the remaining replica-set
// members in set order — and returns buf.
func (s *Sharder) Owners(shard int, buf []int) []int {
	p := s.primary[shard]
	buf = append(buf, p)
	home := s.Home(shard)
	for r := 0; r < s.replicas; r++ {
		if m := (home + r) % s.machines; m != p {
			buf = append(buf, m)
		}
	}
	return buf
}

// ReplicatedOn reports whether machine m holds a copy of the shard.
func (s *Sharder) ReplicatedOn(shard, m int) bool {
	home := s.Home(shard)
	for r := 0; r < s.replicas; r++ {
		if (home+r)%s.machines == m {
			return true
		}
	}
	return false
}

// HomesOf counts the shards machine m keeps a copy of (its storage
// share); with R = 1 this equals the ShardsOf range length.
func (s *Sharder) HomesOf(m int) int {
	n := 0
	for shard := 0; shard < s.shards; shard++ {
		if s.ReplicatedOn(shard, m) {
			n++
		}
	}
	return n
}

// Reassign re-homes a shard's primary onto machine m (the health
// monitor's shard movement, after the data transfer completes).
func (s *Sharder) Reassign(shard, m int) {
	s.primary[shard] = m
}

// PrimariesOf appends the shards machine m currently serves, ascending.
func (s *Sharder) PrimariesOf(m int, buf []int) []int {
	for shard, p := range s.primary {
		if p == m {
			buf = append(buf, shard)
		}
	}
	return buf
}

// MachineFor routes a key to the machine owning its shard.
func (s *Sharder) MachineFor(key uint64) int {
	return s.Owner(s.Shard(key))
}

// KeyForShard synthesizes a key that hashes to the given shard, varying
// with salt — the inverse mapping workload generators need to aim
// traffic at a chosen shard (Zipf-skewed heat, hot-shard shifts). It
// scans keys from a salt-derived origin; with keys uniform over shards
// the expected scan length is the shard count.
func (s *Sharder) KeyForShard(shard int, salt uint64) uint64 {
	k := hashmix.Mix64(salt)
	for s.Shard(k) != shard {
		k++
	}
	return k
}
