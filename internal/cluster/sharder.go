// Package cluster scales the paper's single-machine elastic mechanism
// out to a simulated fleet: N workload rigs (each its own topology,
// scheduler, DB engine and elastic mechanism), a Sharder partitioning
// the TPC-H store across them, a Coordinator routing open-loop queries
// to shard owners (with scatter-gather and queue-aware load balancing),
// and a ClusterArbiter — a second control tier above the per-machine
// PrT nets — that moves whole cores between machines and charges an
// explicit migration latency for every core that travels.
//
// Determinism contract: machines tick in index order under one shared
// quantum, every routing and rebalance decision breaks ties by lowest
// machine index, and all randomness flows through SplitMix64 — a fleet
// run is bit-identical across repeats and between the fast and Naive
// simulator paths.
package cluster

import (
	"fmt"

	"elasticore/internal/hashmix"
)

// Sharder partitions a keyed store into shards and owns the shard ->
// machine placement. Keys hash to shards via SplitMix64 (stable under
// any machine count); shards map to machines as contiguous ranges, so
// growing the fleet re-homes whole ranges instead of rehashing keys.
type Sharder struct {
	shards   int
	machines int
}

// NewSharder validates the partitioning shape: at least one machine,
// and at least as many shards as machines so every machine owns data.
func NewSharder(shards, machines int) (*Sharder, error) {
	if machines < 1 {
		return nil, fmt.Errorf("cluster: machines %d < 1", machines)
	}
	if shards < machines {
		return nil, fmt.Errorf("cluster: shards %d < machines %d", shards, machines)
	}
	return &Sharder{shards: shards, machines: machines}, nil
}

// Shards returns the shard count.
func (s *Sharder) Shards() int { return s.shards }

// Machines returns the machine count.
func (s *Sharder) Machines() int { return s.machines }

// Shard hashes a key to its shard.
func (s *Sharder) Shard(key uint64) int {
	return int(hashmix.Mix64(key) % uint64(s.shards))
}

// ShardsOf returns machine m's contiguous owned range [lo, hi).
func (s *Sharder) ShardsOf(machine int) (lo, hi int) {
	lo = machine * s.shards / s.machines
	hi = (machine + 1) * s.shards / s.machines
	return lo, hi
}

// Owner returns the machine owning a shard (the inverse of ShardsOf).
func (s *Sharder) Owner(shard int) int {
	return ((shard+1)*s.machines - 1) / s.shards
}

// MachineFor routes a key to the machine owning its shard.
func (s *Sharder) MachineFor(key uint64) int {
	return s.Owner(s.Shard(key))
}

// KeyForShard synthesizes a key that hashes to the given shard, varying
// with salt — the inverse mapping workload generators need to aim
// traffic at a chosen shard (Zipf-skewed heat, hot-shard shifts). It
// scans keys from a salt-derived origin; with keys uniform over shards
// the expected scan length is the shard count.
func (s *Sharder) KeyForShard(shard int, salt uint64) uint64 {
	k := hashmix.Mix64(salt)
	for s.Shard(k) != shard {
		k++
	}
	return k
}
