package cluster

import (
	"reflect"
	"testing"

	"elasticore/internal/arrivals"
	"elasticore/internal/hashmix"
	"elasticore/internal/obs"
	"elasticore/internal/workload"
)

// testFleet builds a small fleet for the behavioural tests.
func testFleet(t *testing.T, machines int, mode workload.Mode, naive bool, bus *obs.Bus) *Fleet {
	t.Helper()
	f, err := NewFleet(Options{
		Machines: machines,
		Shards:   2 * machines,
		SF:       0.002,
		Seed:     7,
		Mode:     mode,
		Naive:    naive,
		Bus:      bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// runCoordinator drives a fixed keyed workload over the fleet.
func runCoordinator(t *testing.T, f *Fleet, policy Policy) Result {
	t.Helper()
	sh := f.Sharder
	c := &Coordinator{
		Fleet:   f,
		Process: arrivals.NewPoisson(400, 11),
		Policy:  policy,
		Keys: func(k int) uint64 {
			// Uniform over shards, deterministic in k.
			return sh.KeyForShard(int(hashmix.Mix64(uint64(k+1))%uint64(sh.Shards())), uint64(k))
		},
		ScatterEvery: 5,
		MaxArrivals:  30,
		MaxSeconds:   120,
	}
	return c.Run()
}

// TestFleetLockstep: all machines share one quantum and advance
// together under Tick.
func TestFleetLockstep(t *testing.T) {
	f := testFleet(t, 3, workload.ModeOS, false, nil)
	for i := 0; i < 10; i++ {
		f.Tick()
	}
	now := f.Rigs[0].Machine.Now()
	if now == 0 {
		t.Fatal("clock did not advance")
	}
	for m, r := range f.Rigs {
		if r.Machine.Now() != now {
			t.Fatalf("machine %d at cycle %d, machine 0 at %d: fleet out of lockstep", m, r.Machine.Now(), now)
		}
	}
}

// TestCoordinatorAccounting: every offered request is accounted for,
// keyed requests land on their shard owner, scatters fan out to every
// machine, and merged scalars flow through.
func TestCoordinatorAccounting(t *testing.T) {
	f := testFleet(t, 2, workload.ModeDense, false, nil)
	res := runCoordinator(t, f, BalanceShortestQueue)
	if res.Offered != 30 {
		t.Fatalf("Offered = %d, want 30", res.Offered)
	}
	if got := res.Completed + res.Dropped + res.Abandoned; got != res.Offered {
		t.Fatalf("Completed %d + Dropped %d + Abandoned %d = %d, want Offered %d",
			res.Completed, res.Dropped, res.Abandoned, got, res.Offered)
	}
	if got := res.RoutedKeyed + res.RoutedBalanced + res.Scattered; got != res.Offered {
		t.Fatalf("routing kinds sum to %d, want %d", got, res.Offered)
	}
	if res.Scattered != 6 {
		t.Fatalf("Scattered = %d, want 6 (every 5th of 30)", res.Scattered)
	}
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if res.MergedScalars <= 0 {
		t.Fatalf("MergedScalars = %v, want > 0 (Q6 revenue)", res.MergedScalars)
	}
	if uint64(res.Completed) != res.Latency.Count() {
		t.Fatalf("latency histogram has %d samples for %d completions", res.Latency.Count(), res.Completed)
	}
	routed := 0
	for _, st := range res.PerMachine {
		routed += st.Routed
	}
	// Each scatter contributes one routed entry per machine.
	want := res.RoutedKeyed + res.RoutedBalanced + res.Scattered*f.Machines()
	if routed != want {
		t.Fatalf("per-machine Routed sums to %d, want %d", routed, want)
	}
}

// TestCoordinatorBalancePolicies: unkeyed traffic spreads across
// machines under both policies.
func TestCoordinatorBalancePolicies(t *testing.T) {
	for _, policy := range []Policy{BalanceShortestQueue, BalanceWeighted} {
		f := testFleet(t, 2, workload.ModeDense, false, nil)
		c := &Coordinator{
			Fleet:       f,
			Process:     arrivals.NewPoisson(400, 11),
			Policy:      policy,
			MaxArrivals: 24,
			MaxSeconds:  120,
		}
		res := c.Run()
		if res.RoutedBalanced != 24 {
			t.Fatalf("%v: RoutedBalanced = %d, want 24", policy, res.RoutedBalanced)
		}
		for m, st := range res.PerMachine {
			if st.Routed == 0 {
				t.Fatalf("%v: machine %d received no traffic", policy, m)
			}
		}
	}
}

// TestCoordinatorRouteEvents: the coordinator publishes KindRoute with
// the target machine stamped.
func TestCoordinatorRouteEvents(t *testing.T) {
	bus := obs.NewBus(0)
	f := testFleet(t, 2, workload.ModeDense, false, bus)
	res := runCoordinator(t, f, BalanceShortestQueue)
	routes := bus.EventsOfKind(obs.KindRoute)
	want := res.RoutedKeyed + res.RoutedBalanced + res.Scattered*f.Machines()
	if len(routes) != want {
		t.Fatalf("%d route events, want %d", len(routes), want)
	}
	machines := map[int32]bool{}
	for _, e := range routes {
		machines[e.Machine] = true
		if e.Label == "" {
			t.Fatal("route event without a kind label")
		}
	}
	if len(machines) != f.Machines() {
		t.Fatalf("route events cover %d machines, want %d", len(machines), f.Machines())
	}
}

// pressuredCoordinator drives enough keyed load, with few server
// sessions, that queues build and the mechanisms' backlog clamp pushes
// per-machine demand up — the condition under which the cluster arbiter
// actually moves cores.
func pressuredCoordinator(f *Fleet) *Coordinator {
	sh := f.Sharder
	return &Coordinator{
		Fleet:   f,
		Process: arrivals.NewPoisson(5000, 11),
		Keys: func(k int) uint64 {
			return sh.KeyForShard(int(hashmix.Mix64(uint64(k+1))%uint64(sh.Shards())), uint64(k))
		},
		MaxInFlight: 2,
		MaxArrivals: 100,
		MaxSeconds:  120,
	}
}

// pressuredArbiter attaches an arbiter with a short cluster period so
// several rounds fire within the short pressured run.
func pressuredArbiter(t *testing.T, f *Fleet, budget int) *ClusterArbiter {
	t.Helper()
	topo := f.Rigs[0].Machine.Topology()
	ca, err := NewClusterArbiter(ClusterArbiterConfig{
		Fleet:          f,
		Budget:         budget,
		ControlPeriod:  topo.SecondsToCycles(1e-3),
		MigrateLatency: topo.SecondsToCycles(0.5e-3),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

// TestClusterArbiterBudget: under a budget below physical capacity the
// arbiter keeps the fleet within budget at every tick (held plus in
// transit), moves cores, and charges the migration latency for them.
func TestClusterArbiterBudget(t *testing.T) {
	f := testFleet(t, 2, workload.ModeDense, false, nil)
	budget := 12 // physical is 2 machines x 16 cores
	ca := pressuredArbiter(t, f, budget)
	pressuredCoordinator(f).Run()
	held := 0
	for _, n := range f.AllocatedCores() {
		held += n
	}
	if held+ca.InTransit() > budget {
		t.Fatalf("fleet holds %d cores + %d in transit over budget %d", held, ca.InTransit(), budget)
	}
	if ca.Rounds == 0 {
		t.Fatal("arbiter never ran")
	}
	if ca.MovedCores == 0 {
		t.Fatal("no cores moved under load")
	}
	if ca.ChargedCycles != uint64(ca.MovedCores)*ca.MigrateLatency() {
		t.Fatalf("ChargedCycles %d != MovedCores %d x latency %d",
			ca.ChargedCycles, ca.MovedCores, ca.MigrateLatency())
	}
	if len(ca.Events()) == 0 {
		t.Fatal("no rebalance events recorded")
	}
	sum := 0
	for _, g := range ca.Grants() {
		sum += g
	}
	if sum > budget {
		t.Fatalf("grants sum to %d over budget %d", sum, budget)
	}
}

// TestClusterArbiterValidation: ModeOS fleets (no mechanism) and double
// attachment are rejected.
func TestClusterArbiterValidation(t *testing.T) {
	f := testFleet(t, 2, workload.ModeOS, false, nil)
	if _, err := NewClusterArbiter(ClusterArbiterConfig{Fleet: f}); err == nil {
		t.Fatal("ModeOS fleet accepted")
	}
	f2 := testFleet(t, 2, workload.ModeDense, false, nil)
	if _, err := NewClusterArbiter(ClusterArbiterConfig{Fleet: f2}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewClusterArbiter(ClusterArbiterConfig{Fleet: f2}); err == nil {
		t.Fatal("second arbiter accepted")
	}
	if _, err := NewClusterArbiter(ClusterArbiterConfig{Fleet: testFleet(t, 2, workload.ModeDense, false, nil), Budget: 1}); err == nil {
		t.Fatal("budget below per-machine floor accepted")
	}
}

// TestClusterRebalanceEvents: rebalances reach the bus with machine ids.
func TestClusterRebalanceEvents(t *testing.T) {
	bus := obs.NewBus(0)
	f := testFleet(t, 2, workload.ModeDense, false, bus)
	pressuredArbiter(t, f, 12)
	pressuredCoordinator(f).Run()
	evs := bus.EventsOfKind(obs.KindRebalance)
	if len(evs) == 0 {
		t.Fatal("no rebalance events on the bus")
	}
	for _, e := range evs {
		if e.Machine < 0 || int(e.Machine) >= f.Machines() {
			t.Fatalf("rebalance event for machine %d of %d", e.Machine, f.Machines())
		}
	}
}

// fleetRun is one full coordinator-over-arbitrated-fleet run, the unit
// the determinism tests compare.
func fleetRun(t *testing.T, naive bool) Result {
	t.Helper()
	f := testFleet(t, 2, workload.ModeDense, naive, nil)
	pressuredArbiter(t, f, 12)
	c := pressuredCoordinator(f)
	c.Policy = BalanceWeighted
	c.ScatterEvery = 7
	return c.Run()
}

// TestFleetDeterminism: a fleet run is bit-identical across repeats and
// between the fast and Naive simulator paths — the cluster extension of
// the repo's equivalence contract.
func TestFleetDeterminism(t *testing.T) {
	a := fleetRun(t, false)
	b := fleetRun(t, false)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeat run diverged:\n%+v\nvs\n%+v", a, b)
	}
	n := fleetRun(t, true)
	if !reflect.DeepEqual(a, n) {
		t.Fatalf("naive run diverged from fast run:\n%+v\nvs\n%+v", a, n)
	}
}
