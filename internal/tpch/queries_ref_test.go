package tpch

import (
	"math"
	"testing"
)

// queries_ref_test.go validates more query plans against independent
// straight-line reference implementations over the generated data.

func TestQ4AgainstReference(t *testing.T) {
	r := newQRig(t, 0.002)
	seed := uint64(6)
	q := r.exec(t, BuildQ4(seed))

	rr := newRNG(seed ^ 4)
	y := pYear(rr)
	m := int64(1 + 3*rr.intn(4))
	lo, hi := y*10000+m*100, y*10000+(m+3)*100

	li := r.store.Table("lineitem")
	orders := r.store.Table("orders")
	lateOrders := map[int64]bool{}
	for i := 0; i < li.Rows; i++ {
		if li.Col("l_late").I[i] == 1 {
			lateOrders[li.Col("l_orderkey").I[i]] = true
		}
	}
	want := map[int64]float64{}
	for i := 0; i < orders.Rows; i++ {
		d := orders.Col("o_orderdate").I[i]
		if d >= lo && d < hi && lateOrders[orders.Col("o_orderkey").I[i]] {
			want[orders.Col("o_orderpriority").I[i]]++
		}
	}
	gk := q.Var("gk").FlattenI64()
	gs := q.Var("gs").FlattenF64()
	if len(gk) != len(want) {
		t.Fatalf("Q4 groups = %d, want %d", len(gk), len(want))
	}
	for i, k := range gk {
		if gs[i] != want[k] {
			t.Errorf("priority %d count = %g, want %g", k, gs[i], want[k])
		}
	}
}

func TestQ12AgainstReference(t *testing.T) {
	r := newQRig(t, 0.002)
	seed := uint64(2)
	q := r.exec(t, BuildQ12(seed))

	rr := newRNG(seed ^ 12)
	y := pYear(rr)
	m1 := int64(rr.intn(NumShipModes))
	m2 := (m1 + 1) % NumShipModes

	li := r.store.Table("lineitem")
	want := map[int64]float64{}
	for i := 0; i < li.Rows; i++ {
		mode := li.Col("l_shipmode").I[i]
		if mode != m1 && mode != m2 {
			continue
		}
		rd := li.Col("l_receiptdate").I[i]
		if rd < y*10000 || rd >= (y+1)*10000 {
			continue
		}
		if li.Col("l_late").I[i] != 1 {
			continue
		}
		want[mode]++
	}
	gk := q.Var("gk").FlattenI64()
	gs := q.Var("gs").FlattenF64()
	if len(gk) != len(want) {
		t.Fatalf("Q12 groups = %d, want %d (%v)", len(gk), len(want), want)
	}
	for i, k := range gk {
		if gs[i] != want[k] {
			t.Errorf("mode %d count = %g, want %g", k, gs[i], want[k])
		}
	}
}

func TestQ17AgainstReference(t *testing.T) {
	r := newQRig(t, 0.005)
	seed := uint64(13)
	q := r.exec(t, BuildQ17(seed))

	rr := newRNG(seed ^ 17)
	brand := int64(rr.intn(NumBrands))
	container := int64(rr.intn(NumContainers))

	part := r.store.Table("part")
	pset := map[int64]bool{}
	for i := 0; i < part.Rows; i++ {
		if part.Col("p_brand").I[i] == brand && part.Col("p_container").I[i] == container {
			pset[part.Col("p_partkey").I[i]] = true
		}
	}
	li := r.store.Table("lineitem")
	var want float64
	for i := 0; i < li.Rows; i++ {
		if pset[li.Col("l_partkey").I[i]] && li.Col("l_quantity").F[i] < 10 {
			want += li.Col("l_extendedprice").F[i]
		}
	}
	got := q.Scalar("result")
	if math.Abs(got-want) > 1e-6*math.Abs(want)+1e-9 {
		t.Errorf("Q17 = %g, want %g", got, want)
	}
}

func TestQ19AgainstReference(t *testing.T) {
	r := newQRig(t, 0.005)
	seed := uint64(8)
	q := r.exec(t, BuildQ19(seed))

	rr := newRNG(seed ^ 19)
	b1 := int64(rr.intn(NumBrands))
	c1 := int64(rr.intn(NumContainers - 4))
	qlo := float64(1 + rr.intn(10))
	brands := map[int64]bool{b1: true, (b1 + 5) % NumBrands: true, (b1 + 10) % NumBrands: true}
	containers := map[int64]bool{c1: true, c1 + 1: true, c1 + 2: true, c1 + 3: true}

	part := r.store.Table("part")
	pset := map[int64]bool{}
	for i := 0; i < part.Rows; i++ {
		if brands[part.Col("p_brand").I[i]] && containers[part.Col("p_container").I[i]] {
			pset[part.Col("p_partkey").I[i]] = true
		}
	}
	li := r.store.Table("lineitem")
	var want float64
	for i := 0; i < li.Rows; i++ {
		mode := li.Col("l_shipmode").I[i]
		if mode != 0 && mode != 1 {
			continue
		}
		if li.Col("l_shipinstruct").I[i] != 0 {
			continue
		}
		if !pset[li.Col("l_partkey").I[i]] {
			continue
		}
		qty := li.Col("l_quantity").F[i]
		if qty < qlo || qty > qlo+30 {
			continue
		}
		want += li.Col("l_extendedprice").F[i] * (1 - li.Col("l_discount").F[i])
	}
	got := q.Scalar("result")
	if math.Abs(got-want) > 1e-6*math.Abs(want)+1e-9 {
		t.Errorf("Q19 = %g, want %g", got, want)
	}
}

func TestQ22AgainstReference(t *testing.T) {
	r := newQRig(t, 0.002)
	seed := uint64(4)
	q := r.exec(t, BuildQ22(seed))

	rr := newRNG(seed ^ 22)
	n1 := int64(rr.intn(NumNations - 7))
	nations := map[int64]bool{}
	for k := int64(0); k < 7; k++ {
		nations[n1+k] = true
	}
	cust := r.store.Table("customer")
	orders := r.store.Table("orders")
	has := map[int64]bool{}
	for _, ck := range orders.Col("o_custkey").I {
		has[ck] = true
	}
	want := map[int64]float64{}
	for i := 0; i < cust.Rows; i++ {
		nk := cust.Col("c_nationkey").I[i]
		if !nations[nk] || has[cust.Col("c_custkey").I[i]] {
			continue
		}
		want[nk] += cust.Col("c_acctbal").F[i]
	}
	gk := q.Var("gk").FlattenI64()
	gs := q.Var("gs").FlattenF64()
	if len(gk) != len(want) {
		t.Fatalf("Q22 groups = %d, want %d", len(gk), len(want))
	}
	for i, k := range gk {
		if math.Abs(gs[i]-want[k]) > 1e-6*math.Abs(want[k])+1e-9 {
			t.Errorf("nation %d balance = %g, want %g", k, gs[i], want[k])
		}
	}
}

func TestQ20AgainstReference(t *testing.T) {
	r := newQRig(t, 0.005)
	seed := uint64(15)
	q := r.exec(t, BuildQ20(seed))

	rr := newRNG(seed ^ 20)
	nation := int64(rr.intn(NumNations))
	typ := int64(rr.intn(NumTypes / 2))

	part := r.store.Table("part")
	pset := map[int64]bool{}
	for i := 0; i < part.Rows; i++ {
		tp := part.Col("p_type").I[i]
		if tp >= typ && tp < typ+15 {
			pset[part.Col("p_partkey").I[i]] = true
		}
	}
	ps := r.store.Table("partsupp")
	surplus := map[int64]bool{}
	for i := 0; i < ps.Rows; i++ {
		if pset[ps.Col("ps_partkey").I[i]] && ps.Col("ps_availqty").F[i] > 5000 {
			surplus[ps.Col("ps_suppkey").I[i]] = true
		}
	}
	sup := r.store.Table("supplier")
	want := 0.0
	for i := 0; i < sup.Rows; i++ {
		if sup.Col("s_nationkey").I[i] == nation && surplus[sup.Col("s_suppkey").I[i]] {
			want++
		}
	}
	if got := q.Scalar("result"); got != want {
		t.Errorf("Q20 = %g, want %g", got, want)
	}
}
