package tpch

import (
	"math"
	"testing"

	"elasticore/internal/db"
	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// qrig is a full execution rig: machine, scheduler, loaded store, engine.
type qrig struct {
	machine *numa.Machine
	sched   *sched.Scheduler
	store   *db.Store
	eng     *db.Engine
}

func newQRig(t *testing.T, sf float64) *qrig {
	t.Helper()
	m := numa.NewMachine(numa.Opteron8387())
	sc := sched.New(m, sched.Config{})
	store := db.NewStore(m)
	if _, err := Load(store, Config{SF: sf}); err != nil {
		t.Fatal(err)
	}
	eng, err := db.NewEngine(store, db.Config{Scheduler: sc, PID: 100})
	if err != nil {
		t.Fatal(err)
	}
	return &qrig{machine: m, sched: sc, store: store, eng: eng}
}

func (r *qrig) exec(t *testing.T, p *db.Plan) *db.Query {
	t.Helper()
	q := r.eng.Submit(p)
	if !r.sched.RunUntil(q.Done, r.machine.Topology().SecondsToCycles(600)) {
		t.Fatalf("%s did not finish", p.Name)
	}
	return q
}

func TestAllQueriesComplete(t *testing.T) {
	r := newQRig(t, 0.002)
	for n := 1; n <= QueryCount; n++ {
		q := r.exec(t, Build(n, 7))
		hasGroups := q.Done() && func() bool {
			defer func() { recover() }()
			return q.Var("gk") != nil
		}()
		hasScalar := q.Scalar("result") != 0
		if !hasGroups && !hasScalar && n != 20 {
			// Q20 may legitimately count zero suppliers at tiny SF; any
			// other query must produce groups or a scalar.
			t.Errorf("Q%d produced no observable result", n)
		}
	}
}

func TestAllQueriesDeterministic(t *testing.T) {
	run := func() []float64 {
		r := newQRig(t, 0.002)
		var out []float64
		for n := 1; n <= QueryCount; n++ {
			q := r.exec(t, Build(n, 11))
			out = append(out, q.Scalar("result"), q.Scalar("total"))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs across identical runs: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestQ6AgainstReference(t *testing.T) {
	r := newQRig(t, 0.005)
	p := Q6ParamsFromSeed(3)
	q := r.exec(t, BuildQ6With(p))

	li := r.store.Table("lineitem")
	sd, qty := li.Col("l_shipdate").I, li.Col("l_quantity").F
	dis, pr := li.Col("l_discount").F, li.Col("l_extendedprice").F
	var want float64
	lo, hi := p.Year*10000+101, (p.Year+1)*10000+101
	for i := 0; i < li.Rows; i++ {
		if sd[i] >= lo && sd[i] < hi &&
			dis[i] >= p.Discount-0.01 && dis[i] <= p.Discount+0.01 &&
			qty[i] < p.Quantity {
			want += pr[i] * dis[i]
		}
	}
	if want == 0 {
		t.Fatal("reference is zero; selectivity knobs broken")
	}
	got := q.Scalar("result")
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Errorf("Q6 = %g, want %g", got, want)
	}
}

func TestQ1AgainstReference(t *testing.T) {
	r := newQRig(t, 0.002)
	q := r.exec(t, BuildQ1(5))

	// Recompute the grouped sums directly.
	rr := newRNG(uint64(5) ^ 1)
	cutoff := EncodeDate(1998, 9, 1) - int64(rr.intn(60))
	li := r.store.Table("lineitem")
	want := map[int64]float64{}
	for i := 0; i < li.Rows; i++ {
		if li.Col("l_shipdate").I[i] <= cutoff {
			want[li.Col("l_rfls").I[i]] += li.Col("l_extendedprice").F[i]
		}
	}
	gk := q.Var("gk").FlattenI64()
	gs := q.Var("gs").FlattenF64()
	if len(gk) != len(want) {
		t.Fatalf("Q1 groups = %d, want %d", len(gk), len(want))
	}
	for i, k := range gk {
		if math.Abs(gs[i]-want[k]) > 1e-6*math.Abs(want[k]) {
			t.Errorf("group %d sum = %g, want %g", k, gs[i], want[k])
		}
	}
}

func TestQ14AgainstReference(t *testing.T) {
	r := newQRig(t, 0.005)
	seed := uint64(9)
	q := r.exec(t, BuildQ14(seed))

	rr := newRNG(seed ^ 14)
	y := pYear(rr)
	m := int64(1 + rr.intn(12))
	lo, hi := y*10000+m*100, y*10000+(m+1)*100

	li := r.store.Table("lineitem")
	part := r.store.Table("part")
	promo := map[int64]bool{}
	for i := 0; i < part.Rows; i++ {
		if part.Col("p_type").I[i] < 25 {
			promo[part.Col("p_partkey").I[i]] = true
		}
	}
	var wantTotal, wantPromo float64
	for i := 0; i < li.Rows; i++ {
		sdv := li.Col("l_shipdate").I[i]
		if sdv < lo || sdv >= hi {
			continue
		}
		rev := li.Col("l_extendedprice").F[i] * (1 - li.Col("l_discount").F[i])
		wantTotal += rev
		if promo[li.Col("l_partkey").I[i]] {
			wantPromo += rev
		}
	}
	if math.Abs(q.Scalar("total")-wantTotal) > 1e-6*math.Abs(wantTotal)+1e-9 {
		t.Errorf("Q14 total = %g, want %g", q.Scalar("total"), wantTotal)
	}
	if math.Abs(q.Scalar("result")-wantPromo) > 1e-6*math.Abs(wantPromo)+1e-9 {
		t.Errorf("Q14 promo = %g, want %g", q.Scalar("result"), wantPromo)
	}
}

func TestQ13AgainstReference(t *testing.T) {
	r := newQRig(t, 0.002)
	q := r.exec(t, BuildQ13(1))

	cust := r.store.Table("customer")
	orders := r.store.Table("orders")
	has := map[int64]bool{}
	for _, ck := range orders.Col("o_custkey").I {
		has[ck] = true
	}
	want := map[int64]float64{}
	for i := 0; i < cust.Rows; i++ {
		if !has[cust.Col("c_custkey").I[i]] {
			want[cust.Col("c_nationkey").I[i]]++
		}
	}
	gk := q.Var("gk").FlattenI64()
	gs := q.Var("gs").FlattenF64()
	if len(gk) != len(want) {
		t.Fatalf("Q13 groups = %d, want %d", len(gk), len(want))
	}
	for i, k := range gk {
		if gs[i] != want[k] {
			t.Errorf("nation %d count = %g, want %g", k, gs[i], want[k])
		}
	}
}

func TestQ18HavingFilter(t *testing.T) {
	r := newQRig(t, 0.002)
	seed := uint64(4)
	q := r.exec(t, BuildQ18(seed))
	rr := newRNG(seed ^ 18)
	threshold := float64(120 + rr.intn(60))
	for i, s := range q.Var("gs").FlattenF64() {
		if s <= threshold {
			t.Errorf("group %d sum %g violates HAVING > %g", i, s, threshold)
		}
	}
}

func TestTopNOrdering(t *testing.T) {
	r := newQRig(t, 0.002)
	q := r.exec(t, BuildQ3(2))
	gs := q.Var("gs").FlattenF64()
	if len(gs) > 10 {
		t.Errorf("Q3 TopN returned %d rows, want <= 10", len(gs))
	}
	for i := 1; i < len(gs); i++ {
		if gs[i] > gs[i-1] {
			t.Errorf("TopN not descending at %d: %g > %g", i, gs[i], gs[i-1])
		}
	}
}

func TestBuildPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build(0) did not panic")
		}
	}()
	Build(0, 1)
}

func TestMixedSeedsChangeParameters(t *testing.T) {
	// The mixed-phases workload relies on seed-varied constants.
	a := Q6ParamsFromSeed(1)
	different := false
	for s := uint64(2); s < 20; s++ {
		if Q6ParamsFromSeed(s) != a {
			different = true
			break
		}
	}
	if !different {
		t.Error("Q6 parameters identical across 19 seeds")
	}
}
