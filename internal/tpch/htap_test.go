package tpch

import (
	"math"
	"testing"
)

func TestQ6SpecMatchesHandwritten(t *testing.T) {
	r := newQRig(t, 0.005)
	p := Q6ParamsFromSeed(3)
	plan, err := Q6Spec(p).Compile(r.store)
	if err != nil {
		t.Fatal(err)
	}
	spec := r.exec(t, plan)
	hand := r.exec(t, BuildQ6With(p))
	want := hand.Scalar("result")
	if want == 0 {
		t.Fatal("handwritten Q6 returned zero; selectivity knobs broken")
	}
	if got := spec.Scalar("result"); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("declarative Q6 = %g, handwritten = %g", got, want)
	}
}

func TestPointLookupFindsEveryKey(t *testing.T) {
	r := newQRig(t, 0.002)
	orders := r.store.Table("orders")
	total := orders.Col("o_totalprice").F
	for seed := uint64(1); seed <= 8; seed++ {
		plan := BuildPointLookup(seed, orders.Rows)
		q := r.exec(t, plan)
		if q.Scalar("result.found") != 1 {
			t.Fatalf("seed %d: lookup missed (keys are dense 0..%d)", seed, orders.Rows-1)
		}
		got := q.Scalar("result")
		found := false
		for _, v := range total {
			if v == got {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("seed %d: result %g is not any order's total price", seed, got)
		}
	}
}

func TestAdHocSpecsAlwaysCompile(t *testing.T) {
	// HTAPMixer.Plan treats an AdHocSpec compile error as unreachable;
	// this is the test backing that claim across many seeds (all shapes
	// rotate through well before 64 draws).
	r := newQRig(t, 0.002)
	for seed := uint64(0); seed < 64; seed++ {
		if _, err := AdHocSpec(seed).Compile(r.store); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// Each shape both compiles and executes.
	seen := map[string]bool{}
	for seed := uint64(0); seed < 64 && len(seen) < AdHocShapes; seed++ {
		spec := AdHocSpec(seed)
		if seen[spec.Name] {
			continue
		}
		seen[spec.Name] = true
		plan, err := spec.Compile(r.store)
		if err != nil {
			t.Fatal(err)
		}
		r.exec(t, plan)
	}
	if len(seen) < AdHocShapes {
		t.Errorf("only %d of %d ad-hoc shapes appeared in 64 seeds", len(seen), AdHocShapes)
	}
}

func TestHTAPMixerDeterministicAndRatioed(t *testing.T) {
	r := newQRig(t, 0.002)
	mk := func(ratio float64) HTAPMixer {
		return HTAPMixer{
			Store:       r.store,
			OrderRows:   r.store.Table("orders").Rows,
			Seed:        7,
			LookupRatio: ratio,
		}
	}
	// Extremes: ratio 0 submits no lookups, ratio 1 only lookups.
	for k := 0; k < 32; k++ {
		if mk(0).IsLookup(0, k) {
			t.Fatalf("ratio 0 classified slot %d as lookup", k)
		}
		if !mk(1).IsLookup(0, k) {
			t.Fatalf("ratio 1 classified slot %d as scan", k)
		}
	}
	// A middling ratio lands in a plausible band over many slots.
	m := mk(0.5)
	lookups := 0
	const slots = 400
	for c := 0; c < 4; c++ {
		for k := 0; k < slots/4; k++ {
			if m.IsLookup(c, k) {
				lookups++
			}
		}
	}
	if lookups < slots/4 || lookups > 3*slots/4 {
		t.Errorf("ratio 0.5 produced %d/%d lookups", lookups, slots)
	}
	// Plan names are reproducible slot by slot, and classification agrees
	// with the built plan.
	for k := 0; k < 24; k++ {
		a, b := m.Plan(1, k), m.Plan(1, k)
		if a.Name != b.Name {
			t.Fatalf("slot %d not deterministic: %q vs %q", k, a.Name, b.Name)
		}
		if (a.Name == "PointLookup") != m.IsLookup(1, k) {
			t.Fatalf("slot %d: plan %q disagrees with IsLookup", k, a.Name)
		}
	}
	// Mixed streams execute end to end.
	for k := 0; k < 6; k++ {
		q := r.exec(t, m.Plan(2, k))
		if !q.Done() {
			t.Fatalf("slot %d did not finish", k)
		}
	}
}
