package tpch

import (
	"sync"
	"testing"
)

// resetDatasetCache empties the process-wide cache so each test observes
// its own generation counts.
func resetDatasetCache() {
	datasetCache.Lock()
	datasetCache.m = make(map[cacheKey]*cachedDataset)
	datasetCache.order = nil
	datasetCache.generations = 0
	datasetCache.Unlock()
}

func cacheGenerations() uint64 {
	datasetCache.Lock()
	defer datasetCache.Unlock()
	return datasetCache.generations
}

// TestDatasetCacheSingleflight: N concurrent requesters of one key cost
// exactly one generation, and all of them receive the shared dataset.
func TestDatasetCacheSingleflight(t *testing.T) {
	resetDatasetCache()
	defer resetDatasetCache()
	cfg := Config{SF: 0.0005, Seed: 42}
	const callers = 16
	results := make([][]genTable, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = datasetFor(cfg)
		}(i)
	}
	wg.Wait()
	if got := cacheGenerations(); got != 1 {
		t.Fatalf("%d concurrent same-key requests cost %d generations, want 1", callers, got)
	}
	for i, tables := range results {
		if len(tables) == 0 {
			t.Fatalf("caller %d got an empty dataset", i)
		}
		// Singleflight shares the one generated value, not copies.
		if &tables[0] != &results[0][0] {
			t.Fatalf("caller %d got a private dataset copy — generation was not shared", i)
		}
	}
}

// TestDatasetCacheDistinctKeysConcurrent: distinct keys do not serialize
// on one another and each generates exactly once under concurrent demand.
func TestDatasetCacheDistinctKeysConcurrent(t *testing.T) {
	resetDatasetCache()
	defer resetDatasetCache()
	const keys = 4
	const callersPerKey = 8
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for i := 0; i < callersPerKey; i++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				datasetFor(Config{SF: 0.0005, Seed: uint64(100 + k)})
			}(k)
		}
	}
	wg.Wait()
	if got := cacheGenerations(); got != keys {
		t.Fatalf("%d keys x %d callers cost %d generations, want %d", keys, callersPerKey, got, keys)
	}
}

// TestDatasetCacheDeterministicEviction: a full cache evicts the oldest
// insertion, never a map-iteration-random victim.
func TestDatasetCacheDeterministicEviction(t *testing.T) {
	resetDatasetCache()
	defer resetDatasetCache()
	for k := 0; k < cacheEntries; k++ {
		datasetFor(Config{SF: 0.0005, Seed: uint64(k + 1)})
	}
	datasetCache.Lock()
	if n := len(datasetCache.m); n != cacheEntries {
		datasetCache.Unlock()
		t.Fatalf("cache holds %d entries after filling, want %d", n, cacheEntries)
	}
	datasetCache.Unlock()

	// One more insertion must evict exactly the oldest key (seed 1).
	datasetFor(Config{SF: 0.0005, Seed: uint64(cacheEntries + 1)})
	datasetCache.Lock()
	defer datasetCache.Unlock()
	if n := len(datasetCache.m); n != cacheEntries {
		t.Fatalf("cache holds %d entries after eviction, want %d", n, cacheEntries)
	}
	if _, ok := datasetCache.m[cacheKey{sf: 0.0005, seed: 1}]; ok {
		t.Fatal("oldest entry (seed 1) survived eviction")
	}
	for k := 1; k <= cacheEntries; k++ {
		if _, ok := datasetCache.m[cacheKey{sf: 0.0005, seed: uint64(k + 1)}]; !ok {
			t.Fatalf("entry seed %d missing after eviction of the oldest", k+1)
		}
	}
	if got := datasetCache.order[0]; got != (cacheKey{sf: 0.0005, seed: 2}) {
		t.Fatalf("eviction order head = %+v, want seed 2", got)
	}
}
