package tpch

import "elasticore/internal/db"

// queries2.go: TPC-H queries 12..22 (see queries.go for conventions).

// BuildQ12 is the shipping-modes query: late lineitems of two ship modes
// received in one year, counted per mode.
func BuildQ12(seed uint64) *db.Plan {
	r := newRNG(seed ^ 12)
	y := pYear(r)
	m1 := int64(r.intn(NumShipModes))
	m2 := (m1 + 1) % NumShipModes
	return &db.Plan{Name: "Q12", Stages: []db.StageFn{
		db.ThetaSelect("lineitem", "l_shipmode", "cl", db.PredIIn(m1, m2)),
		db.SubSelect("cl", "lineitem", "l_receiptdate", "cl2",
			db.PredIRange(y*10000, (y+1)*10000)),
		db.SubSelect("cl2", "lineitem", "l_late", "cl3", db.PredIEq(1)),
		db.Projection("cl3", "lineitem", "l_shipmode", "mk"),
		db.GroupSum("mk", "", "p12"),
		db.GroupMerge("p12", "gk", "gs"),
	}}
}

// BuildQ13 is customer distribution: customers without any order, counted
// per nation (an anti-join).
func BuildQ13(seed uint64) *db.Plan {
	return &db.Plan{Name: "Q13", Stages: []db.StageFn{
		db.ScanAll("orders", "o_custkey", "co"),
		db.Projection("co", "orders", "o_custkey", "ock"),
		db.BuildMap("ock", "", "hasorders"),
		db.ScanAll("customer", "c_custkey", "cc"),
		db.ProbeAnti("cc", "customer", "c_custkey", "hasorders", "cc2"),
		db.Projection("cc2", "customer", "c_nationkey", "nk"),
		db.GroupSum("nk", "", "p13"),
		db.GroupMerge("p13", "gk", "gs"),
	}}
}

// BuildQ14 is promotion effect: revenue of promo parts over one month,
// with the total revenue in scalar "total" and promo revenue in "result".
func BuildQ14(seed uint64) *db.Plan {
	r := newRNG(seed ^ 14)
	y := pYear(r)
	m := int64(1 + r.intn(12))
	return &db.Plan{Name: "Q14", Stages: []db.StageFn{
		db.ThetaSelect("part", "p_type", "cp",
			db.Pred{I: func(v int64) bool { return v < 25 }}), // PROMO% family
		db.Projection("cp", "part", "p_partkey", "pkeys"),
		db.BuildMap("pkeys", "", "promoset"),
		db.ThetaSelect("lineitem", "l_shipdate", "cl",
			db.PredIRange(y*10000+m*100, y*10000+(m+1)*100)),
		db.Projection("cl", "lineitem", "l_extendedprice", "priceAll"),
		db.Projection("cl", "lineitem", "l_discount", "discAll"),
		db.MapF2("priceAll", "discAll", "revAll", func(p, d float64) float64 { return p * (1 - d) }),
		db.SumF("revAll", "total"),
		db.ProbeSemi("cl", "lineitem", "l_partkey", "promoset", "cl2"),
		db.Projection("cl2", "lineitem", "l_extendedprice", "price"),
		db.Projection("cl2", "lineitem", "l_discount", "disc"),
		db.MapF2("price", "disc", "rev", func(p, d float64) float64 { return p * (1 - d) }),
		db.SumF("rev", "result"),
	}}
}

// BuildQ15 is top supplier: one quarter's revenue grouped by supplier,
// keeping the best one.
func BuildQ15(seed uint64) *db.Plan {
	r := newRNG(seed ^ 15)
	y := pYear(r)
	m := int64(1 + 3*r.intn(4))
	return &db.Plan{Name: "Q15", Stages: []db.StageFn{
		db.ThetaSelect("lineitem", "l_shipdate", "cl",
			db.PredIRange(y*10000+m*100, y*10000+(m+3)*100)),
		db.Projection("cl", "lineitem", "l_extendedprice", "price"),
		db.Projection("cl", "lineitem", "l_discount", "disc"),
		db.MapF2("price", "disc", "rev", func(p, d float64) float64 { return p * (1 - d) }),
		db.Projection("cl", "lineitem", "l_suppkey", "sk"),
		db.GroupSum("sk", "rev", "p15"),
		db.GroupMerge("p15", "gk", "gs"),
		db.TopN("gk", "gs", 1),
	}}
}

// BuildQ16 is the parts/supplier relationship: parts outside one brand in
// a size list, their suppliers counted, excluding suppliers with customer
// complaints (negative balance).
func BuildQ16(seed uint64) *db.Plan {
	r := newRNG(seed ^ 16)
	brand := int64(r.intn(NumBrands))
	s1 := int64(1 + r.intn(45))
	return &db.Plan{Name: "Q16", Stages: []db.StageFn{
		db.ThetaSelect("part", "p_brand", "cp",
			db.Pred{I: func(v int64) bool { return v != brand }}),
		db.SubSelect("cp", "part", "p_size", "cp2",
			db.PredIIn(s1, s1+1, s1+2, s1+3, s1+4)),
		db.Projection("cp2", "part", "p_partkey", "pkeys"),
		db.BuildMap("pkeys", "", "pset"),
		db.ThetaSelect("supplier", "s_acctbal", "csupp",
			db.Pred{F: func(v float64) bool { return v < 0 }}),
		db.Projection("csupp", "supplier", "s_suppkey", "badkeys"),
		db.BuildMap("badkeys", "", "badset"),
		db.ScanAll("partsupp", "ps_partkey", "cps"),
		db.ProbeSemi("cps", "partsupp", "ps_partkey", "pset", "c2"),
		db.ProbeAnti("c2", "partsupp", "ps_suppkey", "badset", "c3"),
		db.Projection("c3", "partsupp", "ps_suppkey", "sk"),
		db.GroupSum("sk", "", "p16"),
		db.GroupMerge("p16", "gk", "gs"),
		db.TopN("gk", "gs", 100),
	}}
}

// BuildQ17 is small-quantity-order revenue: lineitems of one brand and
// container below a quantity threshold, summed.
func BuildQ17(seed uint64) *db.Plan {
	r := newRNG(seed ^ 17)
	brand := int64(r.intn(NumBrands))
	container := int64(r.intn(NumContainers))
	return &db.Plan{Name: "Q17", Stages: []db.StageFn{
		db.ThetaSelect("part", "p_brand", "cp", db.PredIEq(brand)),
		db.SubSelect("cp", "part", "p_container", "cp2", db.PredIEq(container)),
		db.Projection("cp2", "part", "p_partkey", "pkeys"),
		db.BuildMap("pkeys", "", "pset"),
		db.ScanAll("lineitem", "l_partkey", "cl"),
		db.ProbeSemi("cl", "lineitem", "l_partkey", "pset", "cl2"),
		db.SubSelect("cl2", "lineitem", "l_quantity", "cl3",
			db.Pred{F: func(v float64) bool { return v < 10 }}),
		db.Projection("cl3", "lineitem", "l_extendedprice", "price"),
		db.SumF("price", "result"),
	}}
}

// BuildQ18 is large-volume customers: orders whose lineitem quantity sum
// exceeds a threshold (a grouped HAVING), top 100 by quantity.
func BuildQ18(seed uint64) *db.Plan {
	r := newRNG(seed ^ 18)
	threshold := float64(120 + r.intn(60))
	return &db.Plan{Name: "Q18", Stages: []db.StageFn{
		db.ScanAll("lineitem", "l_orderkey", "cl"),
		db.Projection("cl", "lineitem", "l_orderkey", "lok"),
		db.Projection("cl", "lineitem", "l_quantity", "qty"),
		db.GroupSum("lok", "qty", "p18"),
		db.GroupMerge("p18", "gk", "gs"),
		db.GroupFilter("gk", "gs", func(sum float64) bool { return sum > threshold }),
		db.TopN("gk", "gs", 100),
	}}
}

// BuildQ19 is discounted revenue: the IN-predicate query the paper calls
// out ("a series of constant values shared in a list") — ship modes and
// instructions, brand and container lists, a quantity window, summed.
func BuildQ19(seed uint64) *db.Plan {
	r := newRNG(seed ^ 19)
	b1 := int64(r.intn(NumBrands))
	c1 := int64(r.intn(NumContainers - 4))
	qlo := float64(1 + r.intn(10))
	return &db.Plan{Name: "Q19", Stages: []db.StageFn{
		db.ThetaSelect("part", "p_brand", "cp", db.PredIIn(b1, (b1+5)%NumBrands, (b1+10)%NumBrands)),
		db.SubSelect("cp", "part", "p_container", "cp2", db.PredIIn(c1, c1+1, c1+2, c1+3)),
		db.Projection("cp2", "part", "p_partkey", "pkeys"),
		db.BuildMap("pkeys", "", "pset"),
		db.ThetaSelect("lineitem", "l_shipmode", "cl", db.PredIIn(0, 1)), // AIR, AIR REG
		db.SubSelect("cl", "lineitem", "l_shipinstruct", "cl2", db.PredIEq(0)),
		db.ProbeSemi("cl2", "lineitem", "l_partkey", "pset", "cl3"),
		db.SubSelect("cl3", "lineitem", "l_quantity", "cl4", db.PredFRange(qlo, qlo+30)),
		db.Projection("cl4", "lineitem", "l_extendedprice", "price"),
		db.Projection("cl4", "lineitem", "l_discount", "disc"),
		db.MapF2("price", "disc", "rev", func(p, d float64) float64 { return p * (1 - d) }),
		db.SumF("rev", "result"),
	}}
}

// BuildQ20 is potential part promotion: suppliers with surplus stock of
// one part family in one nation, counted.
func BuildQ20(seed uint64) *db.Plan {
	r := newRNG(seed ^ 20)
	nation := int64(r.intn(NumNations))
	typ := int64(r.intn(NumTypes / 2))
	return &db.Plan{Name: "Q20", Stages: []db.StageFn{
		db.ThetaSelect("part", "p_type", "cp",
			db.Pred{I: func(v int64) bool { return v >= typ && v < typ+15 }}),
		db.Projection("cp", "part", "p_partkey", "pkeys"),
		db.BuildMap("pkeys", "", "pset"),
		db.ScanAll("partsupp", "ps_partkey", "cps"),
		db.ProbeSemi("cps", "partsupp", "ps_partkey", "pset", "c2"),
		db.SubSelect("c2", "partsupp", "ps_availqty", "c3",
			db.Pred{F: func(v float64) bool { return v > 5000 }}),
		db.Projection("c3", "partsupp", "ps_suppkey", "surplus"),
		db.BuildMap("surplus", "", "surplusset"),
		db.ThetaSelect("supplier", "s_nationkey", "cs", db.PredIEq(nation)),
		db.ProbeSemi("cs", "supplier", "s_suppkey", "surplusset", "cs2"),
		db.Count("cs2", "result"),
	}}
}

// BuildQ21 is suppliers who kept orders waiting: late lineitems of one
// nation's suppliers on finalized orders, counted per supplier, top 100.
func BuildQ21(seed uint64) *db.Plan {
	r := newRNG(seed ^ 21)
	nation := int64(r.intn(NumNations))
	return &db.Plan{Name: "Q21", Stages: []db.StageFn{
		db.ThetaSelect("supplier", "s_nationkey", "cs", db.PredIEq(nation)),
		db.Projection("cs", "supplier", "s_suppkey", "skeys"),
		db.BuildMap("skeys", "", "sset"),
		db.ThetaSelect("orders", "o_orderstatus", "co", db.PredIEq(1)), // 'F'
		db.Projection("co", "orders", "o_orderkey", "okeys"),
		db.BuildMap("okeys", "", "oset"),
		db.ThetaSelect("lineitem", "l_late", "cl", db.PredIEq(1)),
		db.ProbeSemi("cl", "lineitem", "l_suppkey", "sset", "cl2"),
		db.ProbeSemi("cl2", "lineitem", "l_orderkey", "oset", "cl3"),
		db.Projection("cl3", "lineitem", "l_suppkey", "sk"),
		db.GroupSum("sk", "", "p21"),
		db.GroupMerge("p21", "gk", "gs"),
		db.TopN("gk", "gs", 100),
	}}
}

// BuildQ22 is the global sales opportunity query: customers from an IN
// list of country codes with no orders, their balances summed per nation
// (the other IN-predicate query the paper highlights).
func BuildQ22(seed uint64) *db.Plan {
	r := newRNG(seed ^ 22)
	n1 := int64(r.intn(NumNations - 7))
	return &db.Plan{Name: "Q22", Stages: []db.StageFn{
		db.ThetaSelect("customer", "c_nationkey", "cc",
			db.PredIIn(n1, n1+1, n1+2, n1+3, n1+4, n1+5, n1+6)),
		db.ScanAll("orders", "o_custkey", "co"),
		db.Projection("co", "orders", "o_custkey", "ock"),
		db.BuildMap("ock", "", "hasorders"),
		db.ProbeAnti("cc", "customer", "c_custkey", "hasorders", "cc2"),
		db.Projection("cc2", "customer", "c_acctbal", "bal"),
		db.Projection("cc2", "customer", "c_nationkey", "nk"),
		db.GroupSum("nk", "bal", "p22"),
		db.GroupMerge("p22", "gk", "gs"),
	}}
}
