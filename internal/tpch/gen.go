// Package tpch generates a deterministic TPC-H-shaped dataset directly
// into the simulated columnar store and provides simplified but
// structurally faithful plans for all 22 benchmark queries. String
// attributes are dictionary-encoded as small integers (the engine stores
// 8-byte tails, like MonetDB BAT codes); dates are yyyymmdd integers.
//
// Row counts scale with the configured scale factor from the official
// cardinalities (lineitem ~ 6,000,000 x SF). Distributions preserve the
// properties the paper's evaluation relies on: Q6's selectivity knobs,
// uniform l_quantity, FK correlations between orders and lineitem, and
// the skewless uniform keys of dbgen.
package tpch

import (
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/hashmix"
)

// Dictionary sizes for encoded string attributes.
const (
	NumReturnFlags     = 3 // A, N, R
	NumLineStatus      = 2 // O, F
	NumShipModes       = 7
	NumShipInstructs   = 4
	NumOrderPriorities = 5
	NumMktSegments     = 5
	NumBrands          = 25
	NumTypes           = 150
	NumContainers      = 40
	NumNations         = 25
	NumRegions         = 5
)

// Config controls generation.
type Config struct {
	// SF is the scale factor; 1.0 is the paper's 1 GB database.
	SF float64
	// Seed makes independent datasets; zero selects a fixed default.
	Seed uint64
	// NoCache bypasses the process-wide dataset value cache, forcing a
	// full regeneration (the pre-cache cost profile). Used by equivalence
	// benches; the generated values are identical either way.
	NoCache bool
}

// Sizes holds the generated row counts.
type Sizes struct {
	Lineitem, Orders, Customer, Part, PartSupp, Supplier, Nation, Region int
}

// Dataset records what was loaded.
type Dataset struct {
	Config Config
	Sizes  Sizes
}

// rng is a SplitMix64 generator (hashmix.Stream): deterministic,
// seedable, stdlib-free.
type rng struct{ hashmix.Stream }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = hashmix.Golden
	}
	return &rng{hashmix.Stream{State: seed}}
}

func (r *rng) next() uint64 { return r.Next() }

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// f64 returns a uniform value in [0, 1).
func (r *rng) f64() float64 { return float64(r.next()>>11) / float64(1<<53) }

// Date handling: dates are yyyymmdd integers over 1992-01-01..1998-12-01,
// like dbgen's order-date window.

// EncodeDate packs a (year, month, day) triple.
func EncodeDate(y, m, d int) int64 { return int64(y*10000 + m*100 + d) }

// dayNumber maps a date ordinal (0-based from 1992-01-01, 30-day months)
// to yyyymmdd. The simplified calendar keeps comparisons and windows
// correct (all comparisons are on the encoded integers).
func dayNumber(ord int) int64 {
	y := 1992 + ord/360
	m := (ord%360)/30 + 1
	d := ord%30 + 1
	return EncodeDate(y, m, d)
}

// totalOrderDays is the generation window in day ordinals.
const totalOrderDays = 7 * 360 // 1992..1998

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// Load registers every TPC-H table into the store and returns the dataset
// summary. Tables must not already exist.
//
// Generation is the host-CPU-expensive part of building a rig, and
// experiments build many rigs over the identical (SF, Seed) dataset, so
// the generated column vectors are memoized process-wide (see cache.go).
// Each store still gets fresh BAT headers with their own simulated
// regions; only the immutable Go-side value slices are shared. Base-table
// values are never mutated by query execution, so sharing is safe across
// stores and across concurrently running rigs.
func Load(store *db.Store, cfg Config) (*Dataset, error) {
	if cfg.SF <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive, got %g", cfg.SF)
	}
	sz, tables := datasetFor(cfg)
	for _, tbl := range tables {
		cols := make(map[string]*db.BAT, len(tbl.cols))
		for name, c := range tbl.cols {
			// Fresh headers per store: placement state is per machine.
			if c.Kind == db.KindI64 {
				cols[name] = db.NewI64(name, c.I)
			} else {
				cols[name] = db.NewF64(name, c.F)
			}
		}
		if _, err := store.CreateTable(tbl.name, cols); err != nil {
			return nil, err
		}
	}
	return &Dataset{Config: cfg, Sizes: sz}, nil
}

// genTable is one generated table: template column BATs whose value
// slices are shared with every store the dataset is loaded into.
type genTable struct {
	name string
	cols map[string]*db.BAT
}

// generate builds the full dataset for the config in registration order.
func generate(cfg Config) (Sizes, []genTable) {
	sz := Sizes{
		Orders:   scaled(1500000, cfg.SF),
		Customer: scaled(150000, cfg.SF),
		Part:     scaled(200000, cfg.SF),
		Supplier: scaled(10000, cfg.SF),
		Nation:   NumNations,
		Region:   NumRegions,
	}
	sz.PartSupp = 4 * sz.Part

	region, nation := genRegionNation()
	orders, orderDates := genOrders(cfg, sz)
	lineitem, n := genLineitem(cfg, sz, orderDates)
	sz.Lineitem = n
	tables := []genTable{
		{"region", region},
		{"nation", nation},
		{"supplier", genSupplier(cfg, sz)},
		{"customer", genCustomer(cfg, sz)},
		{"part", genPart(cfg, sz)},
		{"partsupp", genPartSupp(cfg, sz)},
		{"orders", orders},
		{"lineitem", lineitem},
	}
	return sz, tables
}

func genRegionNation() (region, nation map[string]*db.BAT) {
	rk := make([]int64, NumRegions)
	rn := make([]int64, NumRegions)
	for i := range rk {
		rk[i], rn[i] = int64(i), int64(i)
	}
	region = map[string]*db.BAT{
		"r_regionkey": db.NewI64("r_regionkey", rk),
		"r_name":      db.NewI64("r_name", rn),
	}
	nk := make([]int64, NumNations)
	nn := make([]int64, NumNations)
	nr := make([]int64, NumNations)
	for i := range nk {
		nk[i], nn[i], nr[i] = int64(i), int64(i), int64(i%NumRegions)
	}
	nation = map[string]*db.BAT{
		"n_nationkey": db.NewI64("n_nationkey", nk),
		"n_name":      db.NewI64("n_name", nn),
		"n_regionkey": db.NewI64("n_regionkey", nr),
	}
	return region, nation
}

func genSupplier(cfg Config, sz Sizes) map[string]*db.BAT {
	r := newRNG(cfg.Seed ^ 0x05)
	n := sz.Supplier
	key := make([]int64, n)
	nat := make([]int64, n)
	bal := make([]float64, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i)
		nat[i] = int64(r.intn(NumNations))
		bal[i] = -999.99 + r.f64()*10998.98
	}
	return map[string]*db.BAT{
		"s_suppkey":   db.NewI64("s_suppkey", key),
		"s_nationkey": db.NewI64("s_nationkey", nat),
		"s_acctbal":   db.NewF64("s_acctbal", bal),
	}
}

func genCustomer(cfg Config, sz Sizes) map[string]*db.BAT {
	r := newRNG(cfg.Seed ^ 0x0C)
	n := sz.Customer
	key := make([]int64, n)
	nat := make([]int64, n)
	seg := make([]int64, n)
	bal := make([]float64, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i)
		nat[i] = int64(r.intn(NumNations))
		seg[i] = int64(r.intn(NumMktSegments))
		bal[i] = -999.99 + r.f64()*10998.98
	}
	return map[string]*db.BAT{
		"c_custkey":    db.NewI64("c_custkey", key),
		"c_nationkey":  db.NewI64("c_nationkey", nat),
		"c_mktsegment": db.NewI64("c_mktsegment", seg),
		"c_acctbal":    db.NewF64("c_acctbal", bal),
	}
}

func genPart(cfg Config, sz Sizes) map[string]*db.BAT {
	r := newRNG(cfg.Seed ^ 0x70)
	n := sz.Part
	key := make([]int64, n)
	brand := make([]int64, n)
	typ := make([]int64, n)
	size := make([]int64, n)
	container := make([]int64, n)
	price := make([]float64, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i)
		brand[i] = int64(r.intn(NumBrands))
		typ[i] = int64(r.intn(NumTypes))
		size[i] = int64(1 + r.intn(50))
		container[i] = int64(r.intn(NumContainers))
		price[i] = 900 + float64((i%200000)+1)/10
	}
	return map[string]*db.BAT{
		"p_partkey":     db.NewI64("p_partkey", key),
		"p_brand":       db.NewI64("p_brand", brand),
		"p_type":        db.NewI64("p_type", typ),
		"p_size":        db.NewI64("p_size", size),
		"p_container":   db.NewI64("p_container", container),
		"p_retailprice": db.NewF64("p_retailprice", price),
	}
}

func genPartSupp(cfg Config, sz Sizes) map[string]*db.BAT {
	r := newRNG(cfg.Seed ^ 0x75)
	n := sz.PartSupp
	pk := make([]int64, n)
	sk := make([]int64, n)
	cost := make([]float64, n)
	avail := make([]float64, n)
	for i := 0; i < n; i++ {
		pk[i] = int64(i / 4)
		sk[i] = int64((i/4 + (i%4)*(sz.Supplier/4+1)) % sz.Supplier)
		cost[i] = 1 + r.f64()*999
		avail[i] = float64(1 + r.intn(9999))
	}
	return map[string]*db.BAT{
		"ps_partkey":    db.NewI64("ps_partkey", pk),
		"ps_suppkey":    db.NewI64("ps_suppkey", sk),
		"ps_supplycost": db.NewF64("ps_supplycost", cost),
		"ps_availqty":   db.NewF64("ps_availqty", avail),
	}
}

func genOrders(cfg Config, sz Sizes) (map[string]*db.BAT, []int) {
	r := newRNG(cfg.Seed ^ 0x0F)
	n := sz.Orders
	key := make([]int64, n)
	cust := make([]int64, n)
	date := make([]int64, n)
	prio := make([]int64, n)
	status := make([]int64, n)
	total := make([]float64, n)
	ship := make([]int64, n)
	dateOrds := make([]int, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i)
		cust[i] = int64(r.intn(sz.Customer))
		ord := r.intn(totalOrderDays - 151) // leave room for ship dates
		dateOrds[i] = ord
		date[i] = dayNumber(ord)
		prio[i] = int64(r.intn(NumOrderPriorities))
		status[i] = int64(r.intn(3))
		total[i] = 1000 + r.f64()*450000
		ship[i] = int64(r.intn(2))
	}
	return map[string]*db.BAT{
		"o_orderkey":      db.NewI64("o_orderkey", key),
		"o_custkey":       db.NewI64("o_custkey", cust),
		"o_orderdate":     db.NewI64("o_orderdate", date),
		"o_orderpriority": db.NewI64("o_orderpriority", prio),
		"o_orderstatus":   db.NewI64("o_orderstatus", status),
		"o_totalprice":    db.NewF64("o_totalprice", total),
		"o_shippriority":  db.NewI64("o_shippriority", ship),
	}, dateOrds
}

func genLineitem(cfg Config, sz Sizes, orderDates []int) (map[string]*db.BAT, int) {
	r := newRNG(cfg.Seed ^ 0x11)
	est := sz.Orders * 4
	ok := make([]int64, 0, est)
	pk := make([]int64, 0, est)
	sk := make([]int64, 0, est)
	qty := make([]float64, 0, est)
	price := make([]float64, 0, est)
	disc := make([]float64, 0, est)
	tax := make([]float64, 0, est)
	rf := make([]int64, 0, est)
	ls := make([]int64, 0, est)
	rfls := make([]int64, 0, est)
	shipd := make([]int64, 0, est)
	commitd := make([]int64, 0, est)
	receiptd := make([]int64, 0, est)
	mode := make([]int64, 0, est)
	instr := make([]int64, 0, est)
	late := make([]int64, 0, est)     // derived: l_commitdate < l_receiptdate
	shipyear := make([]int64, 0, est) // derived: year(l_shipdate)

	for o := 0; o < sz.Orders; o++ {
		lines := 1 + r.intn(7)
		for l := 0; l < lines; l++ {
			ok = append(ok, int64(o))
			pk = append(pk, int64(r.intn(sz.Part)))
			sk = append(sk, int64(r.intn(sz.Supplier)))
			q := float64(1 + r.intn(50))
			qty = append(qty, q)
			price = append(price, q*(900+r.f64()*1000))
			disc = append(disc, float64(r.intn(11))/100)
			tax = append(tax, float64(r.intn(9))/100)
			f := int64(r.intn(NumReturnFlags))
			s := int64(r.intn(NumLineStatus))
			rf = append(rf, f)
			ls = append(ls, s)
			rfls = append(rfls, f*int64(NumLineStatus)+s)
			sd := orderDates[o] + 1 + r.intn(121)
			cd := dayNumber(sd + r.intn(30))
			rd := dayNumber(sd + 1 + r.intn(30))
			shipd = append(shipd, dayNumber(sd))
			commitd = append(commitd, cd)
			receiptd = append(receiptd, rd)
			mode = append(mode, int64(r.intn(NumShipModes)))
			instr = append(instr, int64(r.intn(NumShipInstructs)))
			if cd < rd {
				late = append(late, 1)
			} else {
				late = append(late, 0)
			}
			shipyear = append(shipyear, dayNumber(sd)/10000)
		}
	}
	return map[string]*db.BAT{
		"l_orderkey":      db.NewI64("l_orderkey", ok),
		"l_partkey":       db.NewI64("l_partkey", pk),
		"l_suppkey":       db.NewI64("l_suppkey", sk),
		"l_quantity":      db.NewF64("l_quantity", qty),
		"l_extendedprice": db.NewF64("l_extendedprice", price),
		"l_discount":      db.NewF64("l_discount", disc),
		"l_tax":           db.NewF64("l_tax", tax),
		"l_returnflag":    db.NewI64("l_returnflag", rf),
		"l_linestatus":    db.NewI64("l_linestatus", ls),
		"l_rfls":          db.NewI64("l_rfls", rfls),
		"l_shipdate":      db.NewI64("l_shipdate", shipd),
		"l_commitdate":    db.NewI64("l_commitdate", commitd),
		"l_receiptdate":   db.NewI64("l_receiptdate", receiptd),
		"l_shipmode":      db.NewI64("l_shipmode", mode),
		"l_shipinstruct":  db.NewI64("l_shipinstruct", instr),
		"l_late":          db.NewI64("l_late", late),
		"l_shipyear":      db.NewI64("l_shipyear", shipyear),
	}, len(ok)
}
