package tpch

import (
	"elasticore/internal/db"
	"elasticore/internal/hashmix"
)

// htap.go builds the heterogeneous query mixes of the htap experiments:
// OLTP-style point lookups against the orders table interleaved with
// scan- and join-heavy analytic pipelines, plus declarative (PlanSpec)
// equivalents of the hand-written plans. The mix is seed-deterministic
// per (client, stream position), so two runs of the same configuration
// submit byte-identical query streams.

// Q6Spec is BuildQ6With expressed declaratively: the same stages lower
// out of PlanSpec.Compile, so a compiled Q6Spec and BuildQ6With produce
// identical results (asserted by the equivalence tests).
func Q6Spec(p Q6Params) db.PlanSpec {
	return db.NewPlanSpec("Q6").
		Scan("lineitem", "l_quantity", "X_1",
			db.Pred{F: func(v float64) bool { return v < p.Quantity }}).
		Refine("X_1", "lineitem", "l_shipdate", "X_2",
			db.PredIRange(p.Year*10000+101, (p.Year+1)*10000+101)).
		Refine("X_2", "lineitem", "l_discount", "X_3",
			db.PredFRange(p.Discount-0.01, p.Discount+0.01)).
		Project("X_3", "lineitem", "l_extendedprice", "X_4").
		Project("X_3", "lineitem", "l_discount", "X_5").
		Map2("X_4", "X_5", "X_6", func(x, y float64) float64 { return x * y }).
		Sum("X_6", "result").
		Spec()
}

// BuildPointLookup is the OLTP side of the HTAP mix: a single-row read
// of one order's total price by primary key. o_orderkey is generated
// 0..rows-1 ascending, so the lookup binary-searches it; the key is
// seed-derived and always present. The scalar "result" receives the
// price and "result.found" the hit count (1).
func BuildPointLookup(seed uint64, orderRows int) *db.Plan {
	if orderRows < 1 {
		orderRows = 1
	}
	key := int64(hashmix.Mix64(seed^0xB10C) % uint64(orderRows))
	return &db.Plan{Name: "PointLookup", Stages: []db.StageFn{
		db.PointLookup("orders", "o_orderkey", "o_totalprice", key, "result"),
	}}
}

// AdHocShapes is the number of distinct ad-hoc analytic pipeline shapes.
const AdHocShapes = 3

// AdHocSpec returns a seed-derived declarative filter/join/aggregate
// pipeline — the "ad-hoc analytics" third of the HTAP mix. Three shapes
// rotate by seed: a filter+aggregate over lineitem, a semi-join from
// filtered orders into lineitem grouped by supplier, and an anti-join
// from one part size class counted over lineitem. Every shape compiles
// against any store loaded by Load (asserted by tests), so callers may
// treat Compile errors as bugs.
func AdHocSpec(seed uint64) db.PlanSpec {
	r := newRNG(seed ^ 0xAD0C)
	switch r.intn(AdHocShapes) {
	case 0:
		// Filter + aggregate: discounted revenue of one quantity band in
		// one ship year.
		lo := float64(r.intn(40))
		y := pYear(r)
		return db.NewPlanSpec("AdHoc-filter").
			Scan("lineitem", "l_quantity", "c1", db.PredFRange(lo, lo+10)).
			Refine("c1", "lineitem", "l_shipdate", "c2",
				db.PredIRange(y*10000, (y+1)*10000)).
			Project("c2", "lineitem", "l_extendedprice", "price").
			Project("c2", "lineitem", "l_discount", "disc").
			Map2("price", "disc", "rev", func(p, d float64) float64 { return p * d }).
			Sum("rev", "result").
			Spec()
	case 1:
		// Semi-join + group: revenue of one order-priority class, grouped
		// by supplier, top 10.
		prio := int64(r.intn(NumOrderPriorities))
		return db.NewPlanSpec("AdHoc-join").
			Scan("orders", "o_orderpriority", "co", db.PredIEq(prio)).
			Project("co", "orders", "o_orderkey", "okeys").
			Build("okeys", "", "oset").
			ScanAll("lineitem", "l_orderkey", "cl").
			ProbeSemi("cl", "lineitem", "l_orderkey", "oset", "cl2").
			Project("cl2", "lineitem", "l_extendedprice", "price").
			Project("cl2", "lineitem", "l_suppkey", "sk").
			GroupSum("sk", "price", "p1").
			GroupMerge("p1", "gk", "gs").
			TopN("gk", "gs", 10).
			Spec()
	default:
		// Anti-join + count: lineitems whose part is not in one size class.
		size := int64(1 + r.intn(50))
		return db.NewPlanSpec("AdHoc-anti").
			Scan("part", "p_size", "cp", db.PredIEq(size)).
			Project("cp", "part", "p_partkey", "pkeys").
			Build("pkeys", "", "pset").
			ScanAll("lineitem", "l_partkey", "cl").
			ProbeAnti("cl", "lineitem", "l_partkey", "pset", "c2").
			Count("c2", "result").
			Spec()
	}
}

// HTAPMixer generates one tenant's heterogeneous query stream: each
// (client, k) slot is hashed to a point lookup with probability
// LookupRatio, otherwise to an analytic query alternating between the
// hand-written TPC-H plans and compiled ad-hoc pipelines. Its Plan
// method is a workload.PlanFor.
type HTAPMixer struct {
	// Store compiles the declarative ad-hoc pipelines; it must hold the
	// TPC-H tables.
	Store *db.Store
	// OrderRows bounds the point-lookup key space (Dataset.Sizes.Orders).
	OrderRows int
	// Seed varies the stream; the same seed reproduces it exactly.
	Seed uint64
	// LookupRatio is the point-lookup fraction in [0, 1].
	LookupRatio float64
}

// scanHeavy rotates the hand-written analytic plans of the mix: the Q6
// selectivity scan, the Q1 grouped scan and the Q3 join chain.
var scanHeavy = []int{6, 1, 3}

// slotHash mixes the stream coordinates into one deterministic word.
func (m HTAPMixer) slotHash(client, k int) uint64 {
	return hashmix.Mix64(m.Seed ^ hashmix.Mix64(uint64(client)*2654435761+uint64(k)+1))
}

// IsLookup reports whether stream slot (client, k) is a point lookup —
// exposed so drivers can attribute finished queries to a class without
// rebuilding the plan.
func (m HTAPMixer) IsLookup(client, k int) bool {
	h := m.slotHash(client, k)
	return float64(h>>11)/float64(1<<53) < m.LookupRatio
}

// Plan supplies the k-th query of client c (a workload.PlanFor).
func (m HTAPMixer) Plan(client, k int) *db.Plan {
	h := m.slotHash(client, k)
	if m.IsLookup(client, k) {
		return BuildPointLookup(h, m.OrderRows)
	}
	// Alternate hand-written and declarative analytics by hash bit.
	if h&(1<<60) == 0 {
		return Build(scanHeavy[int(h>>32)%len(scanHeavy)], h)
	}
	plan, err := AdHocSpec(h).Compile(m.Store)
	if err != nil {
		// Unreachable for stores loaded by Load (tested); keep the stream
		// alive rather than ending it on a nil plan.
		return BuildQ6(h)
	}
	return plan
}
