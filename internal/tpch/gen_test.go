package tpch

import (
	"testing"
	"testing/quick"

	"elasticore/internal/db"
	"elasticore/internal/numa"
)

func loadSmall(t *testing.T, sf float64) (*db.Store, *Dataset) {
	t.Helper()
	store := db.NewStore(numa.NewMachine(numa.Opteron8387()))
	ds, err := Load(store, Config{SF: sf})
	if err != nil {
		t.Fatal(err)
	}
	return store, ds
}

func TestLoadCreatesAllTables(t *testing.T) {
	store, ds := loadSmall(t, 0.002)
	for _, name := range []string{"lineitem", "orders", "customer", "part", "partsupp", "supplier", "nation", "region"} {
		if !store.HasTable(name) {
			t.Errorf("table %s missing", name)
		}
	}
	if ds.Sizes.Lineitem == 0 || ds.Sizes.Orders == 0 {
		t.Error("empty fact tables")
	}
}

func TestRowCountsScale(t *testing.T) {
	_, small := loadSmall(t, 0.002)
	_, big := loadSmall(t, 0.004)
	if big.Sizes.Orders <= small.Sizes.Orders {
		t.Errorf("orders did not scale: %d vs %d", big.Sizes.Orders, small.Sizes.Orders)
	}
	// Lineitem averages ~4 lines per order.
	ratio := float64(small.Sizes.Lineitem) / float64(small.Sizes.Orders)
	if ratio < 2.5 || ratio > 5.5 {
		t.Errorf("lines per order = %.2f, want ~4", ratio)
	}
}

func TestGenerationDeterministic(t *testing.T) {
	s1, _ := loadSmall(t, 0.002)
	s2, _ := loadSmall(t, 0.002)
	a := s1.Table("lineitem").Col("l_extendedprice").F
	b := s2.Table("lineitem").Col("l_extendedprice").F
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("value %d differs: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	store1 := db.NewStore(numa.NewMachine(numa.Opteron8387()))
	store2 := db.NewStore(numa.NewMachine(numa.Opteron8387()))
	if _, err := Load(store1, Config{SF: 0.002, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(store2, Config{SF: 0.002, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	a := store1.Table("orders").Col("o_totalprice").F
	b := store2.Table("orders").Col("o_totalprice").F
	same := true
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestValueDomains(t *testing.T) {
	store, _ := loadSmall(t, 0.002)
	li := store.Table("lineitem")
	for i, q := range li.Col("l_quantity").F {
		if q < 1 || q > 50 {
			t.Fatalf("l_quantity[%d] = %g out of [1,50]", i, q)
		}
	}
	for i, d := range li.Col("l_discount").F {
		if d < 0 || d > 0.10 {
			t.Fatalf("l_discount[%d] = %g out of [0,0.10]", i, d)
		}
	}
	for i, rf := range li.Col("l_returnflag").I {
		if rf < 0 || rf >= NumReturnFlags {
			t.Fatalf("l_returnflag[%d] = %d out of domain", i, rf)
		}
	}
	for i, sd := range li.Col("l_shipdate").I {
		if sd < 19920101 || sd > 19991231 {
			t.Fatalf("l_shipdate[%d] = %d out of window", i, sd)
		}
	}
}

func TestForeignKeysValid(t *testing.T) {
	store, ds := loadSmall(t, 0.002)
	li := store.Table("lineitem")
	for i, ok := range li.Col("l_orderkey").I {
		if ok < 0 || int(ok) >= ds.Sizes.Orders {
			t.Fatalf("l_orderkey[%d] = %d out of range", i, ok)
		}
	}
	for i, pk := range li.Col("l_partkey").I {
		if pk < 0 || int(pk) >= ds.Sizes.Part {
			t.Fatalf("l_partkey[%d] = %d out of range", i, pk)
		}
	}
	for i, ck := range store.Table("orders").Col("o_custkey").I {
		if ck < 0 || int(ck) >= ds.Sizes.Customer {
			t.Fatalf("o_custkey[%d] = %d out of range", i, ck)
		}
	}
}

func TestShipDateFollowsOrderDate(t *testing.T) {
	store, _ := loadSmall(t, 0.002)
	li := store.Table("lineitem")
	odates := store.Table("orders").Col("o_orderdate").I
	for i, ok := range li.Col("l_orderkey").I {
		if li.Col("l_shipdate").I[i] <= odates[ok] {
			t.Fatalf("lineitem %d ships (%d) before its order (%d)", i, li.Col("l_shipdate").I[i], odates[ok])
		}
	}
}

func TestLateFlagConsistent(t *testing.T) {
	store, _ := loadSmall(t, 0.002)
	li := store.Table("lineitem")
	commit, receipt, late := li.Col("l_commitdate").I, li.Col("l_receiptdate").I, li.Col("l_late").I
	for i := range late {
		want := int64(0)
		if commit[i] < receipt[i] {
			want = 1
		}
		if late[i] != want {
			t.Fatalf("l_late[%d] = %d, want %d", i, late[i], want)
		}
	}
}

func TestDayNumberMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a)%totalOrderDays, int(b)%totalOrderDays
		if x > y {
			x, y = y, x
		}
		return dayNumber(x) <= dayNumber(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGUniformish(t *testing.T) {
	r := newRNG(42)
	buckets := make([]int, 10)
	for i := 0; i < 10000; i++ {
		buckets[r.intn(10)]++
	}
	for b, c := range buckets {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d = %d, want ~1000", b, c)
		}
	}
}

func TestLoadRejectsBadSF(t *testing.T) {
	store := db.NewStore(numa.NewMachine(numa.Opteron8387()))
	if _, err := Load(store, Config{SF: 0}); err == nil {
		t.Error("SF=0 accepted")
	}
}
