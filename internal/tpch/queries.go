package tpch

import (
	"fmt"

	"elasticore/internal/db"
)

// queries.go provides simplified but structurally faithful plans for all
// 22 TPC-H queries, expressed over the engine's MAL-like operator set.
// Simplifications are documented per query; the properties the paper's
// evaluation exploits are preserved: Q6's tunable-selectivity scan, the
// join-heavy shapes of Q8/Q9 ("largest number of join operations"), the
// IN-predicate lists of Q19/Q22, grouped aggregations, and anti-joins.
//
// Conventions: every plan ends with either a scalar bound to "result"
// (SumF/Count) or merged groups in variables "gk"/"gs". Parameters vary
// deterministically with the seed (the mixed-phases workload submits each
// query with a per-client seed).

// QueryCount is the number of TPC-H queries.
const QueryCount = 22

// Build returns the plan for query number n (1-based) with seed-derived
// parameters. It panics on out-of-range n (caller bug).
func Build(n int, seed uint64) *db.Plan {
	builders := [QueryCount]func(uint64) *db.Plan{
		BuildQ1, BuildQ2, BuildQ3, BuildQ4, BuildQ5, BuildQ6, BuildQ7,
		BuildQ8, BuildQ9, BuildQ10, BuildQ11, BuildQ12, BuildQ13, BuildQ14,
		BuildQ15, BuildQ16, BuildQ17, BuildQ18, BuildQ19, BuildQ20,
		BuildQ21, BuildQ22,
	}
	if n < 1 || n > QueryCount {
		panic(fmt.Sprintf("tpch: query %d out of range 1..%d", n, QueryCount))
	}
	return builders[n-1](seed)
}

// pYear picks a parameter year in 1993..1997.
func pYear(r *rng) int64 { return int64(1993 + r.intn(5)) }

// BuildQ1 is the pricing summary report: scan lineitem up to a date,
// group by (returnflag, linestatus) — the combined l_rfls code — and sum
// extended price. (Simplified: one aggregate instead of eight.)
func BuildQ1(seed uint64) *db.Plan {
	r := newRNG(seed ^ 1)
	cutoff := EncodeDate(1998, 9, 1) - int64(r.intn(60))
	return &db.Plan{Name: "Q1", Stages: []db.StageFn{
		db.ThetaSelect("lineitem", "l_shipdate", "c1", db.Pred{I: func(v int64) bool { return v <= cutoff }}),
		db.Projection("c1", "lineitem", "l_rfls", "k"),
		db.Projection("c1", "lineitem", "l_extendedprice", "v"),
		db.GroupSum("k", "v", "p1"),
		db.GroupMerge("p1", "gk", "gs"),
	}}
}

// BuildQ2 is the minimum-cost supplier: parts of one size drive a join
// into partsupp, grouping supply cost per supplier. (Simplified: sum
// instead of min, no region correlation subquery.)
func BuildQ2(seed uint64) *db.Plan {
	r := newRNG(seed ^ 2)
	size := int64(1 + r.intn(50))
	return &db.Plan{Name: "Q2", Stages: []db.StageFn{
		db.ThetaSelect("part", "p_size", "cp", db.PredIEq(size)),
		db.Projection("cp", "part", "p_partkey", "pkeys"),
		db.BuildMap("pkeys", "", "pset"),
		db.ScanAll("partsupp", "ps_partkey", "cps"),
		db.ProbeSemi("cps", "partsupp", "ps_partkey", "pset", "c2"),
		db.Projection("c2", "partsupp", "ps_supplycost", "costs"),
		db.Projection("c2", "partsupp", "ps_suppkey", "skeys"),
		db.GroupSum("skeys", "costs", "p2"),
		db.GroupMerge("p2", "gk", "gs"),
		db.TopN("gk", "gs", 100),
	}}
}

// BuildQ3 is the shipping priority query: customers of one market
// segment, their orders before a date, the lineitems shipped after it,
// revenue grouped by order, top 10.
func BuildQ3(seed uint64) *db.Plan {
	r := newRNG(seed ^ 3)
	seg := int64(r.intn(NumMktSegments))
	cut := EncodeDate(1995, 3, 1) + int64(r.intn(28))
	return &db.Plan{Name: "Q3", Stages: []db.StageFn{
		db.ThetaSelect("customer", "c_mktsegment", "cc", db.PredIEq(seg)),
		db.Projection("cc", "customer", "c_custkey", "ckeys"),
		db.BuildMap("ckeys", "", "cset"),
		db.ThetaSelect("orders", "o_orderdate", "co", db.Pred{I: func(v int64) bool { return v < cut }}),
		db.ProbeSemi("co", "orders", "o_custkey", "cset", "co2"),
		db.Projection("co2", "orders", "o_orderkey", "okeys"),
		db.BuildMap("okeys", "", "oset"),
		db.ThetaSelect("lineitem", "l_shipdate", "cl", db.Pred{I: func(v int64) bool { return v > cut }}),
		db.ProbeSemi("cl", "lineitem", "l_orderkey", "oset", "cl2"),
		db.Projection("cl2", "lineitem", "l_extendedprice", "price"),
		db.Projection("cl2", "lineitem", "l_discount", "disc"),
		db.MapF2("price", "disc", "rev", func(p, d float64) float64 { return p * (1 - d) }),
		db.Projection("cl2", "lineitem", "l_orderkey", "lok"),
		db.GroupSum("lok", "rev", "p3"),
		db.GroupMerge("p3", "gk", "gs"),
		db.TopN("gk", "gs", 10),
	}}
}

// BuildQ4 is order priority checking: orders of one quarter having at
// least one late lineitem, counted per priority.
func BuildQ4(seed uint64) *db.Plan {
	r := newRNG(seed ^ 4)
	y := pYear(r)
	m := int64(1 + 3*r.intn(4))
	lo, hi := y*10000+m*100, y*10000+(m+3)*100
	return &db.Plan{Name: "Q4", Stages: []db.StageFn{
		db.ThetaSelect("lineitem", "l_late", "cl", db.PredIEq(1)),
		db.Projection("cl", "lineitem", "l_orderkey", "lok"),
		db.BuildMap("lok", "", "lateset"),
		db.ThetaSelect("orders", "o_orderdate", "co", db.PredIRange(lo, hi)),
		db.ProbeSemi("co", "orders", "o_orderkey", "lateset", "co2"),
		db.Projection("co2", "orders", "o_orderpriority", "prio"),
		db.GroupSum("prio", "", "p4"),
		db.GroupMerge("p4", "gk", "gs"),
	}}
}

// BuildQ5 is local supplier volume: customers and orders of one year
// drive lineitem revenue grouped by supplier. (Simplified: the
// nation-region equijoin chain is collapsed into the customer filter.)
func BuildQ5(seed uint64) *db.Plan {
	r := newRNG(seed ^ 5)
	region := int64(r.intn(NumRegions))
	y := pYear(r)
	return &db.Plan{Name: "Q5", Stages: []db.StageFn{
		db.ThetaSelect("customer", "c_nationkey", "cc",
			db.Pred{I: func(v int64) bool { return v%NumRegions == region }}),
		db.Projection("cc", "customer", "c_custkey", "ckeys"),
		db.BuildMap("ckeys", "", "cset"),
		db.ThetaSelect("orders", "o_orderdate", "co", db.PredIRange(y*10000, (y+1)*10000)),
		db.ProbeSemi("co", "orders", "o_custkey", "cset", "co2"),
		db.Projection("co2", "orders", "o_orderkey", "okeys"),
		db.BuildMap("okeys", "", "oset"),
		db.ScanAll("lineitem", "l_orderkey", "cl"),
		db.ProbeSemi("cl", "lineitem", "l_orderkey", "oset", "cl2"),
		db.Projection("cl2", "lineitem", "l_extendedprice", "price"),
		db.Projection("cl2", "lineitem", "l_discount", "disc"),
		db.MapF2("price", "disc", "rev", func(p, d float64) float64 { return p * (1 - d) }),
		db.Projection("cl2", "lineitem", "l_suppkey", "sk"),
		db.GroupSum("sk", "rev", "p5"),
		db.GroupMerge("p5", "gk", "gs"),
		db.TopN("gk", "gs", 10),
	}}
}

// Q6Params are the forecasting revenue change parameters.
type Q6Params struct {
	Year     int64
	Discount float64
	Quantity float64
}

// Q6ParamsFromSeed derives the paper's parameter ranges: year 1993..1997,
// discount 0.02..0.09, quantity 24 or 25.
func Q6ParamsFromSeed(seed uint64) Q6Params {
	r := newRNG(seed ^ 6)
	return Q6Params{
		Year:     pYear(r),
		Discount: float64(2+r.intn(8)) / 100,
		Quantity: float64(24 + r.intn(2)),
	}
}

// BuildQ6 is the forecasting revenue change query of Figure 3, exactly as
// listed: three-predicate scan, two projections, a multiply and a sum.
func BuildQ6(seed uint64) *db.Plan {
	p := Q6ParamsFromSeed(seed)
	return BuildQ6With(p)
}

// BuildQ6With builds Q6 with explicit parameters (microbenchmarks sweep
// selectivity through these).
func BuildQ6With(p Q6Params) *db.Plan {
	return &db.Plan{Name: "Q6", Stages: []db.StageFn{
		db.ThetaSelect("lineitem", "l_quantity", "X_1",
			db.Pred{F: func(v float64) bool { return v < p.Quantity }}),
		db.SubSelect("X_1", "lineitem", "l_shipdate", "X_2",
			db.PredIRange(p.Year*10000+101, (p.Year+1)*10000+101)),
		db.SubSelect("X_2", "lineitem", "l_discount", "X_3",
			db.PredFRange(p.Discount-0.01, p.Discount+0.01)),
		db.Projection("X_3", "lineitem", "l_extendedprice", "X_4"),
		db.Projection("X_3", "lineitem", "l_discount", "X_5"),
		db.MapF2("X_4", "X_5", "X_6", func(x, y float64) float64 { return x * y }),
		db.SumF("X_6", "result"),
	}}
}

// BuildQ7 is volume shipping: lineitems of two ship-years from suppliers
// of one nation, revenue grouped by ship year.
func BuildQ7(seed uint64) *db.Plan {
	r := newRNG(seed ^ 7)
	nation := int64(r.intn(NumNations))
	return &db.Plan{Name: "Q7", Stages: []db.StageFn{
		db.ThetaSelect("supplier", "s_nationkey", "cs", db.PredIEq(nation)),
		db.Projection("cs", "supplier", "s_suppkey", "skeys"),
		db.BuildMap("skeys", "", "sset"),
		db.ThetaSelect("lineitem", "l_shipdate", "cl",
			db.PredIRange(EncodeDate(1995, 1, 1), EncodeDate(1997, 1, 1))),
		db.ProbeSemi("cl", "lineitem", "l_suppkey", "sset", "cl2"),
		db.Projection("cl2", "lineitem", "l_extendedprice", "price"),
		db.Projection("cl2", "lineitem", "l_discount", "disc"),
		db.MapF2("price", "disc", "rev", func(p, d float64) float64 { return p * (1 - d) }),
		db.Projection("cl2", "lineitem", "l_shipyear", "yr"),
		db.GroupSum("yr", "rev", "p7"),
		db.GroupMerge("p7", "gk", "gs"),
	}}
}

// BuildQ8 is national market share: three joins narrow lineitem by part
// type, supplier region and order window; revenue grouped by ship year.
// The paper singles Q8 out for its join count and parallelism degree.
func BuildQ8(seed uint64) *db.Plan {
	r := newRNG(seed ^ 8)
	typ := int64(r.intn(NumTypes))
	region := int64(r.intn(NumRegions))
	return &db.Plan{Name: "Q8", Stages: []db.StageFn{
		db.ThetaSelect("part", "p_type", "cp", db.PredIEq(typ)),
		db.Projection("cp", "part", "p_partkey", "pkeys"),
		db.BuildMap("pkeys", "", "pset"),
		db.ThetaSelect("supplier", "s_nationkey", "cs",
			db.Pred{I: func(v int64) bool { return v%NumRegions == region }}),
		db.Projection("cs", "supplier", "s_suppkey", "skeys"),
		db.BuildMap("skeys", "", "sset"),
		db.ThetaSelect("orders", "o_orderdate", "co",
			db.PredIRange(EncodeDate(1995, 1, 1), EncodeDate(1997, 1, 1))),
		db.Projection("co", "orders", "o_orderkey", "okeys"),
		db.BuildMap("okeys", "", "oset"),
		db.ScanAll("lineitem", "l_partkey", "cl"),
		db.ProbeSemi("cl", "lineitem", "l_partkey", "pset", "cl2"),
		db.ProbeSemi("cl2", "lineitem", "l_suppkey", "sset", "cl3"),
		db.ProbeSemi("cl3", "lineitem", "l_orderkey", "oset", "cl4"),
		db.Projection("cl4", "lineitem", "l_extendedprice", "price"),
		db.Projection("cl4", "lineitem", "l_discount", "disc"),
		db.MapF2("price", "disc", "rev", func(p, d float64) float64 { return p * (1 - d) }),
		db.Projection("cl4", "lineitem", "l_shipyear", "yr"),
		db.GroupSum("yr", "rev", "p8"),
		db.GroupMerge("p8", "gk", "gs"),
	}}
}

// BuildQ9 is product type profit: parts of one brand family joined into
// lineitem, supplier nation fetched as the group key — a fetch join plus
// grouped aggregation (the other join-heavy query the paper highlights).
func BuildQ9(seed uint64) *db.Plan {
	r := newRNG(seed ^ 9)
	brand := int64(r.intn(NumBrands))
	return &db.Plan{Name: "Q9", Stages: []db.StageFn{
		db.ThetaSelect("part", "p_brand", "cp", db.PredIEq(brand)),
		db.Projection("cp", "part", "p_partkey", "pkeys"),
		db.BuildMap("pkeys", "", "pset"),
		db.ScanAll("supplier", "s_suppkey", "cs"),
		db.Projection("cs", "supplier", "s_suppkey", "allsk"),
		db.Projection("cs", "supplier", "s_nationkey", "allsn"),
		db.BuildMap("allsk", "allsn", "s2n"),
		db.ScanAll("lineitem", "l_partkey", "cl"),
		db.ProbeSemi("cl", "lineitem", "l_partkey", "pset", "cl2"),
		db.ProbeFetch("cl2", "lineitem", "l_suppkey", "s2n", "cl3", "nat"),
		db.Projection("cl3", "lineitem", "l_extendedprice", "price"),
		db.Projection("cl3", "lineitem", "l_discount", "disc"),
		db.MapF2("price", "disc", "profit", func(p, d float64) float64 { return p * (1 - d) }),
		db.GroupSum("nat", "profit", "p9"),
		db.GroupMerge("p9", "gk", "gs"),
	}}
}

// BuildQ10 is returned item reporting: returned lineitems within an order
// window, revenue grouped by customer, top 20.
func BuildQ10(seed uint64) *db.Plan {
	r := newRNG(seed ^ 10)
	y := pYear(r)
	m := int64(1 + 3*r.intn(4))
	return &db.Plan{Name: "Q10", Stages: []db.StageFn{
		db.ThetaSelect("orders", "o_orderdate", "co",
			db.PredIRange(y*10000+m*100, y*10000+(m+3)*100)),
		db.Projection("co", "orders", "o_orderkey", "okeys"),
		db.Projection("co", "orders", "o_custkey", "ocust"),
		db.BuildMap("okeys", "ocust", "o2c"),
		db.ThetaSelect("lineitem", "l_returnflag", "cl", db.PredIEq(0)), // 0 encodes 'A'
		db.ProbeFetch("cl", "lineitem", "l_orderkey", "o2c", "cl2", "cust"),
		db.Projection("cl2", "lineitem", "l_extendedprice", "price"),
		db.Projection("cl2", "lineitem", "l_discount", "disc"),
		db.MapF2("price", "disc", "rev", func(p, d float64) float64 { return p * (1 - d) }),
		db.GroupSum("cust", "rev", "p10"),
		db.GroupMerge("p10", "gk", "gs"),
		db.TopN("gk", "gs", 20),
	}}
}

// BuildQ11 is important stock identification: partsupp value of one
// nation's suppliers grouped by part, top 50.
func BuildQ11(seed uint64) *db.Plan {
	r := newRNG(seed ^ 11)
	nation := int64(r.intn(NumNations))
	return &db.Plan{Name: "Q11", Stages: []db.StageFn{
		db.ThetaSelect("supplier", "s_nationkey", "cs", db.PredIEq(nation)),
		db.Projection("cs", "supplier", "s_suppkey", "skeys"),
		db.BuildMap("skeys", "", "sset"),
		db.ScanAll("partsupp", "ps_suppkey", "cps"),
		db.ProbeSemi("cps", "partsupp", "ps_suppkey", "sset", "c2"),
		db.Projection("c2", "partsupp", "ps_supplycost", "cost"),
		db.Projection("c2", "partsupp", "ps_availqty", "avail"),
		db.MapF2("cost", "avail", "value", func(c, a float64) float64 { return c * a }),
		db.Projection("c2", "partsupp", "ps_partkey", "pk"),
		db.GroupSum("pk", "value", "p11"),
		db.GroupMerge("p11", "gk", "gs"),
		db.TopN("gk", "gs", 50),
	}}
}
