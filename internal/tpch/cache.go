package tpch

import "sync"

// cache.go memoizes generated datasets process-wide. Experiments build a
// fresh rig — machine, store, engine — for every configuration point, but
// the TPC-H data for a given (SF, Seed) is identical every time, and its
// generation (SplitMix64 streams over millions of rows) dominates rig
// construction. The cache shares the immutable value slices across rigs;
// every store still receives its own BAT headers and simulated regions,
// so placement, residency and all simulated behaviour are unaffected.

// cacheKey identifies one generated dataset.
type cacheKey struct {
	sf   float64
	seed uint64
}

// cacheEntries bounds the cache; experiments cycle through a handful of
// (SF, Seed) points, so a small bound holds everything that recurs.
const cacheEntries = 16

var datasetCache = struct {
	sync.Mutex
	m map[cacheKey]*cachedDataset
}{m: make(map[cacheKey]*cachedDataset)}

type cachedDataset struct {
	sizes  Sizes
	tables []genTable
}

// datasetFor returns the generated dataset for the config, from the cache
// when possible. Config.NoCache forces regeneration and leaves the cache
// untouched.
func datasetFor(cfg Config) (Sizes, []genTable) {
	if cfg.NoCache {
		return generate(cfg)
	}
	key := cacheKey{sf: cfg.SF, seed: cfg.Seed}
	datasetCache.Lock()
	if e, ok := datasetCache.m[key]; ok {
		datasetCache.Unlock()
		return e.sizes, e.tables
	}
	datasetCache.Unlock()
	// Generate outside the lock: concurrent rigs for different keys
	// should not serialize on each other. A racing duplicate for the same
	// key costs one redundant generation and is then deduplicated.
	sizes, tables := generate(cfg)
	datasetCache.Lock()
	defer datasetCache.Unlock()
	if e, ok := datasetCache.m[key]; ok {
		return e.sizes, e.tables
	}
	if len(datasetCache.m) >= cacheEntries {
		for k := range datasetCache.m {
			delete(datasetCache.m, k)
			break
		}
	}
	datasetCache.m[key] = &cachedDataset{sizes: sizes, tables: tables}
	return sizes, tables
}
