package tpch

import "sync"

// cache.go memoizes generated datasets process-wide. Experiments build a
// fresh rig — machine, store, engine — for every configuration point, but
// the TPC-H data for a given (SF, Seed) is identical every time, and its
// generation (SplitMix64 streams over millions of rows) dominates rig
// construction. The cache shares the immutable value slices across rigs;
// every store still receives its own BAT headers and simulated regions,
// so placement, residency and all simulated behaviour are unaffected.
//
// The cache is a per-key singleflight: the first requester of a key
// inserts a pending entry under the lock and generates outside it;
// later requesters of the same key block on that entry's ready channel
// instead of generating redundantly, while distinct keys generate
// concurrently. Eviction is deterministic — insertion order, oldest
// first — so a bounded cache never picks a map-iteration-random victim
// (which could evict the entry a concurrent caller just inserted and
// is about to wait on; an evicted in-flight entry still completes for
// the waiters holding it, it just stops being findable).

// cacheKey identifies one generated dataset.
type cacheKey struct {
	sf   float64
	seed uint64
}

// cacheEntries bounds the cache; experiments cycle through a handful of
// (SF, Seed) points, so a small bound holds everything that recurs.
const cacheEntries = 16

// cachedDataset is one cache slot. Readers wait on ready (closed by the
// generating goroutine after sizes and tables are set), so the fields
// are immutable once visible.
type cachedDataset struct {
	ready  chan struct{}
	sizes  Sizes
	tables []genTable
}

var datasetCache = struct {
	sync.Mutex
	m map[cacheKey]*cachedDataset
	// order lists live keys oldest-insertion-first: the eviction order.
	order []cacheKey
	// generations counts datasets actually generated through the cache
	// (the singleflight tests assert on it).
	generations uint64
}{m: make(map[cacheKey]*cachedDataset)}

// datasetFor returns the generated dataset for the config, from the cache
// when possible. Config.NoCache forces regeneration and leaves the cache
// untouched.
func datasetFor(cfg Config) (Sizes, []genTable) {
	if cfg.NoCache {
		return generate(cfg)
	}
	key := cacheKey{sf: cfg.SF, seed: cfg.Seed}
	datasetCache.Lock()
	if e, ok := datasetCache.m[key]; ok {
		datasetCache.Unlock()
		<-e.ready
		return e.sizes, e.tables
	}
	e := &cachedDataset{ready: make(chan struct{})}
	if len(datasetCache.m) >= cacheEntries {
		victim := datasetCache.order[0]
		datasetCache.order = datasetCache.order[1:]
		delete(datasetCache.m, victim)
	}
	datasetCache.m[key] = e
	datasetCache.order = append(datasetCache.order, key)
	datasetCache.generations++
	datasetCache.Unlock()
	// Generate outside the lock: concurrent rigs for different keys must
	// not serialize on each other. Same-key followers are parked on
	// e.ready above, so this generation happens exactly once per key.
	e.sizes, e.tables = generate(cfg)
	close(e.ready)
	return e.sizes, e.tables
}
