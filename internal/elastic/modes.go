package elastic

import (
	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// Allocator decides *where* the next core is allocated or released once
// the PrT net decides *whether* (Section IV-B). Implementations are the
// paper's three allocation modes.
type Allocator interface {
	// Name identifies the mode ("dense", "sparse", "adaptive").
	Name() string
	// Next returns the core to add given the currently allocated set, or
	// false when every core is already allocated.
	Next(current sched.CPUSet) (numa.CoreID, bool)
	// Victim returns the core to release given the currently allocated
	// set, or false when no core can be released.
	Victim(current sched.CPUSet) (numa.CoreID, bool)
}

// denseOrder returns the allocation sequence of the dense mode: iterate
// over j within i — fill a node completely before moving to the next
// (Figure 12 (b)).
func denseOrder(t *numa.Topology) []numa.CoreID {
	out := make([]numa.CoreID, 0, t.TotalCores())
	for i := 0; i < t.NodeCount; i++ {
		for j := 0; j < t.CoresPerNode; j++ {
			out = append(out, t.CoreOf(numa.NodeID(i), j))
		}
	}
	return out
}

// sparseOrder returns the allocation sequence of the sparse mode: iterate
// over i within j — one core at a time on a different NUMA node
// (Figure 12 (a)).
func sparseOrder(t *numa.Topology) []numa.CoreID {
	out := make([]numa.CoreID, 0, t.TotalCores())
	for j := 0; j < t.CoresPerNode; j++ {
		for i := 0; i < t.NodeCount; i++ {
			out = append(out, t.CoreOf(numa.NodeID(i), j))
		}
	}
	return out
}

// sequenceAllocator allocates along a fixed core order and releases in the
// reverse order (incremental allocation as in Porobic et al. and the
// paper's Figure 12).
type sequenceAllocator struct {
	name  string
	order []numa.CoreID
}

// NewDense returns the dense allocation mode: cores are handed out within
// one NUMA node before the next node is opened, maximizing cache sharing
// for threads over shared data.
func NewDense(t *numa.Topology) Allocator {
	return &sequenceAllocator{name: "dense", order: denseOrder(t)}
}

// NewSparse returns the sparse allocation mode: consecutive cores land on
// different NUMA nodes, spreading threads over private data apart to avoid
// cache competition.
func NewSparse(t *numa.Topology) Allocator {
	return &sequenceAllocator{name: "sparse", order: sparseOrder(t)}
}

func (a *sequenceAllocator) Name() string { return a.name }

func (a *sequenceAllocator) Next(current sched.CPUSet) (numa.CoreID, bool) {
	for _, c := range a.order {
		if !current.Contains(c) {
			return c, true
		}
	}
	return 0, false
}

func (a *sequenceAllocator) Victim(current sched.CPUSet) (numa.CoreID, bool) {
	if current.Count() <= 1 {
		return 0, false
	}
	for i := len(a.order) - 1; i >= 0; i-- {
		if current.Contains(a.order[i]) {
			return a.order[i], true
		}
	}
	return 0, false
}

// ResidencyFunc reports, per NUMA node, the number of live memory blocks
// owned by the tracked process group (numa.Machine.Residency over the
// cgroup's PIDs).
type ResidencyFunc func() []int

// adaptiveAllocator is the adaptive priority mode (Section IV-B.2): the
// next core is allocated on the node where the database threads hold the
// most memory; the released core comes from the node where they hold the
// least.
type adaptiveAllocator struct {
	topo      *numa.Topology
	queue     *NodePriorityQueue
	residency ResidencyFunc
}

// NewAdaptive returns the adaptive priority allocation mode backed by the
// given residency source.
func NewAdaptive(t *numa.Topology, residency ResidencyFunc) Allocator {
	return &adaptiveAllocator{
		topo:      t,
		queue:     NewNodePriorityQueue(t.NodeCount),
		residency: residency,
	}
}

func (a *adaptiveAllocator) Name() string { return "adaptive" }

func (a *adaptiveAllocator) refresh() {
	a.queue.Update(a.residency())
}

// Next allocates in the highest-priority node that still has a free core;
// within a node, lower core indices first.
func (a *adaptiveAllocator) Next(current sched.CPUSet) (numa.CoreID, bool) {
	a.refresh()
	for _, e := range a.queue.Ranked() {
		for _, c := range a.topo.Cores(e.Node) {
			if !current.Contains(c) {
				return c, true
			}
		}
	}
	return 0, false
}

// Victim releases from the lowest-priority node that has an allocated
// core; within a node, higher core indices first.
func (a *adaptiveAllocator) Victim(current sched.CPUSet) (numa.CoreID, bool) {
	if current.Count() <= 1 {
		return 0, false
	}
	a.refresh()
	ranked := a.queue.Ranked()
	for i := len(ranked) - 1; i >= 0; i-- {
		cores := current.CoresOnNode(a.topo, ranked[i].Node)
		if len(cores) == 0 {
			continue
		}
		return cores[len(cores)-1], true
	}
	return 0, false
}
