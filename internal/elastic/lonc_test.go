package elastic

import "testing"

// lonc_test.go covers FindLONC (the paper's Equation 1) directly: the
// degenerate machine, the no-satisfying-allocation fallback, and the
// guarantee that the *smallest* satisfying allocation wins.

func TestFindLONCDegenerateTotal(t *testing.T) {
	probe := func(n int) (float64, float64) { return 50, float64(n) }
	for _, nTotal := range []int{0, -1, -7} {
		n, ok := FindLONC(probe, nTotal, 10, 70)
		if ok || n != 0 {
			t.Errorf("FindLONC(nTotal=%d) = (%d, %v), want (0, false)", nTotal, n, ok)
		}
	}
}

func TestFindLONCNoSatisfyingAllocationFallsBackToTotal(t *testing.T) {
	// Load pinned at saturation: no candidate is inside (thmin, thmax),
	// so the workload must run on the full machine.
	probe := func(n int) (float64, float64) { return 100, float64(n) }
	n, ok := FindLONC(probe, 8, 10, 70)
	if ok || n != 8 {
		t.Errorf("FindLONC = (%d, %v), want fallback (8, false)", n, ok)
	}

	// Smaller allocations read inside the band but never reach p(nTotal),
	// and the full machine reads outside the band: the perf condition
	// alone must force the fallback.
	probe = func(n int) (float64, float64) {
		if n == 12 {
			return 100, 100
		}
		return 50, 1
	}
	n, ok = FindLONC(probe, 12, 10, 70)
	if ok || n != 12 {
		t.Errorf("FindLONC = (%d, %v), want (12, false) when only nTotal performs", n, ok)
	}
}

func TestFindLONCSelectsSmallestSatisfyingN(t *testing.T) {
	// Load spreads inversely with cores: u(4)=85 is above the band,
	// u(5)=68 and everything after is inside it, performance is flat.
	// Candidates 5..12 all satisfy Equation 1; the smallest must win.
	probe := func(n int) (float64, float64) {
		u := 340.0 / float64(n)
		if u > 100 {
			u = 100
		}
		return u, 10
	}
	n, ok := FindLONC(probe, 12, 10, 70)
	if !ok || n != 5 {
		t.Errorf("FindLONC = (%d, %v), want the smallest satisfying (5, true)", n, ok)
	}
}

func TestFindLONCThresholdsAreExclusive(t *testing.T) {
	// A reading exactly at a threshold does not satisfy thmin < u < thmax.
	probe := func(n int) (float64, float64) {
		switch n {
		case 1:
			return 70, 5 // == thmax: excluded
		case 2:
			return 10, 5 // == thmin: excluded
		}
		return 40, 5
	}
	n, ok := FindLONC(probe, 4, 10, 70)
	if !ok || n != 3 {
		t.Errorf("FindLONC = (%d, %v), want (3, true): boundary readings excluded", n, ok)
	}
}

func TestFindLONCProbeCallBudget(t *testing.T) {
	// The documented contract: one probe call per candidate plus one for
	// nTotal, even when the search succeeds early... the early return
	// stops at the first satisfying candidate.
	calls := 0
	probe := func(n int) (float64, float64) {
		calls++
		return 40, 5
	}
	n, ok := FindLONC(probe, 16, 10, 70)
	if !ok || n != 1 {
		t.Fatalf("FindLONC = (%d, %v), want (1, true)", n, ok)
	}
	if calls != 2 { // probe(16) for the reference + probe(1)
		t.Errorf("probe called %d times, want 2 (reference + first hit)", calls)
	}
}
