package elastic

import (
	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// placement.go makes *where* a core is granted a pluggable,
// topology-aware decision. The paper's dense/sparse orders are fixed
// index sequences derived from the testbed's core numbering; on machines
// whose interconnect is not a fully linked square (a ring, a twisted
// ladder, a chiplet package) the lowest-index node is not in general the
// cheapest one. A Placement ranks candidate cores by the topology's hop
// matrix instead, and the occupancy-aware entry point lets the
// multi-tenant arbiter keep each tenant's cores mutually close while
// skipping cores other tenants hold.

// Placement decides which core to add or release given the machine
// topology, the caller's own current set and (for growth) the set of
// cores occupied machine-wide — current plus every other tenant's
// holdings in the consolidated setting; identical to current for a
// single tenant. Implementations must be deterministic: equal inputs
// yield equal picks.
type Placement interface {
	// Name identifies the policy ("node-fill", "hop-min", "scatter").
	Name() string
	// Next returns the core to grant: a core outside occupied, chosen
	// relative to the caller's current set. ok is false when every core
	// is occupied.
	Next(t *numa.Topology, current, occupied sched.CPUSet) (numa.CoreID, bool)
	// Victim returns the core to release from current, or false when
	// current holds at most one core.
	Victim(t *numa.Topology, current sched.CPUSet) (numa.CoreID, bool)
}

// hopSum returns the total hop distance from node n to every core in
// the set — the placement cost of putting the next core on n.
func hopSum(t *numa.Topology, n numa.NodeID, set sched.CPUSet) int {
	sum := 0
	for _, c := range set.Cores() {
		sum += t.Hops(n, t.NodeOf(c))
	}
	return sum
}

// heldPerNode counts the set's cores on each node.
func heldPerNode(t *numa.Topology, set sched.CPUSet) []int {
	held := make([]int, t.NodeCount)
	for _, c := range set.Cores() {
		held[t.NodeOf(c)]++
	}
	return held
}

// lowestFreeCore returns node n's lowest-index core outside occupied.
func lowestFreeCore(t *numa.Topology, n numa.NodeID, occupied sched.CPUSet) (numa.CoreID, bool) {
	for _, c := range t.Cores(n) {
		if !occupied.Contains(c) {
			return c, true
		}
	}
	return 0, false
}

// highestHeldCore returns node n's highest-index core inside current.
func highestHeldCore(t *numa.Topology, n numa.NodeID, current sched.CPUSet) (numa.CoreID, bool) {
	cores := t.Cores(n)
	for i := len(cores) - 1; i >= 0; i-- {
		if current.Contains(cores[i]) {
			return cores[i], true
		}
	}
	return 0, false
}

// NodeFill packs cores socket by socket, like the dense mode, but picks
// each *new* socket by hop distance instead of index order: it keeps
// filling the node where the caller already holds cores, and when every
// held node is full it opens the free node closest (smallest total hop
// distance) to the cores already held. Shrinking retreats from the
// emptiest held node first, so the surviving allocation stays packed.
type NodeFill struct{}

// Name implements Placement.
func (NodeFill) Name() string { return "node-fill" }

// Next implements Placement.
func (NodeFill) Next(t *numa.Topology, current, occupied sched.CPUSet) (numa.CoreID, bool) {
	held := heldPerNode(t, current)
	// Keep filling the most-populated held node with free capacity.
	bestNode, bestHeld := numa.NodeID(-1), 0
	for n := 0; n < t.NodeCount; n++ {
		if held[n] == 0 {
			continue
		}
		if _, free := lowestFreeCore(t, numa.NodeID(n), occupied); !free {
			continue
		}
		if held[n] > bestHeld {
			bestNode, bestHeld = numa.NodeID(n), held[n]
		}
	}
	if bestNode >= 0 {
		return lowestFreeCore(t, bestNode, occupied)
	}
	// Open the free node nearest to the held cores (ties: lowest index).
	// With nothing held every hop sum is zero and node order decides.
	bestNode, bestCost := numa.NodeID(-1), 0
	for n := 0; n < t.NodeCount; n++ {
		if _, free := lowestFreeCore(t, numa.NodeID(n), occupied); !free {
			continue
		}
		cost := hopSum(t, numa.NodeID(n), current)
		if bestNode < 0 || cost < bestCost {
			bestNode, bestCost = numa.NodeID(n), cost
		}
	}
	if bestNode < 0 {
		return 0, false
	}
	return lowestFreeCore(t, bestNode, occupied)
}

// Victim implements Placement.
func (NodeFill) Victim(t *numa.Topology, current sched.CPUSet) (numa.CoreID, bool) {
	if current.Count() <= 1 {
		return 0, false
	}
	held := heldPerNode(t, current)
	// Release from the least-populated held node; among equals, the one
	// farthest from the rest of the allocation, then the highest index —
	// the surviving cores end packed and mutually close.
	bestNode, bestHeld, bestCost := numa.NodeID(-1), 0, 0
	for n := 0; n < t.NodeCount; n++ {
		if held[n] == 0 {
			continue
		}
		cost := hopSum(t, numa.NodeID(n), current)
		better := bestNode < 0 || held[n] < bestHeld ||
			(held[n] == bestHeld && cost > bestCost) ||
			(held[n] == bestHeld && cost == bestCost && numa.NodeID(n) > bestNode)
		if better {
			bestNode, bestHeld, bestCost = numa.NodeID(n), held[n], cost
		}
	}
	return highestHeldCore(t, bestNode, current)
}

// HopMin grows and shrinks core by core on pure hop distance: the next
// grant is the free core whose node is closest to everything already
// held (regardless of how full its node is), and the next victim is the
// held core farthest from the rest. On uniform-distance machines it
// degenerates to lowest-index selection; on rings, ladders and chiplet
// fabrics it is the transfer policy that keeps a tenant's cores mutually
// close.
type HopMin struct{}

// Name implements Placement.
func (HopMin) Name() string { return "hop-min" }

// Next implements Placement.
func (HopMin) Next(t *numa.Topology, current, occupied sched.CPUSet) (numa.CoreID, bool) {
	bestCore, bestCost := numa.CoreID(-1), 0
	for n := 0; n < t.NodeCount; n++ {
		c, free := lowestFreeCore(t, numa.NodeID(n), occupied)
		if !free {
			continue
		}
		cost := hopSum(t, numa.NodeID(n), current)
		if bestCore < 0 || cost < bestCost {
			bestCore, bestCost = c, cost
		}
	}
	if bestCore < 0 {
		return 0, false
	}
	return bestCore, true
}

// Victim implements Placement.
func (HopMin) Victim(t *numa.Topology, current sched.CPUSet) (numa.CoreID, bool) {
	if current.Count() <= 1 {
		return 0, false
	}
	bestCore, bestCost := numa.CoreID(-1), -1
	for _, c := range current.Cores() {
		cost := hopSum(t, t.NodeOf(c), current.Remove(c))
		// Strict > keeps the earliest core among equals; within a node
		// later cores see the same cost, so ties release the highest
		// index of the worst node by scanning descending instead.
		if cost > bestCost {
			bestCore, bestCost = c, cost
		}
	}
	// Prefer the highest-index held core on the chosen core's node, so
	// node-internal release order matches the other policies.
	return highestHeldCore(t, t.NodeOf(bestCore), current)
}

// Scatter is the topology-blind baseline: it round-robins grants across
// nodes in index order (like the sparse mode) without consulting the hop
// matrix, and releases from the fullest node. Its gap to NodeFill and
// HopMin on a given machine measures what hop-aware placement is worth
// there.
type Scatter struct{}

// Name implements Placement.
func (Scatter) Name() string { return "scatter" }

// Next implements Placement.
func (Scatter) Next(t *numa.Topology, current, occupied sched.CPUSet) (numa.CoreID, bool) {
	held := heldPerNode(t, current)
	bestNode, bestHeld := numa.NodeID(-1), 0
	for n := 0; n < t.NodeCount; n++ {
		if _, free := lowestFreeCore(t, numa.NodeID(n), occupied); !free {
			continue
		}
		if bestNode < 0 || held[n] < bestHeld {
			bestNode, bestHeld = numa.NodeID(n), held[n]
		}
	}
	if bestNode < 0 {
		return 0, false
	}
	return lowestFreeCore(t, bestNode, occupied)
}

// Victim implements Placement.
func (Scatter) Victim(t *numa.Topology, current sched.CPUSet) (numa.CoreID, bool) {
	if current.Count() <= 1 {
		return 0, false
	}
	held := heldPerNode(t, current)
	bestNode, bestHeld := numa.NodeID(-1), 0
	for n := 0; n < t.NodeCount; n++ {
		if held[n] > bestHeld {
			bestNode, bestHeld = numa.NodeID(n), held[n]
		}
	}
	return highestHeldCore(t, bestNode, current)
}

// Placements lists the built-in policies in presentation order.
func Placements() []Placement {
	return []Placement{NodeFill{}, HopMin{}, Scatter{}}
}

// PlacementByName resolves a built-in policy by its Name.
func PlacementByName(name string) (Placement, bool) {
	for _, p := range Placements() {
		if p.Name() == name {
			return p, true
		}
	}
	return nil, false
}

// OccupancyAllocator is an Allocator that distinguishes the caller's own
// cores from cores occupied machine-wide. The tenant arbiter prefers
// this interface when transferring cores between cgroups: NextFree keeps
// a tenant's allocation hop-compact relative to its *own* cores while
// skipping cores its neighbours hold — information the plain
// Next(occupied) signature cannot express.
type OccupancyAllocator interface {
	Allocator
	// NextFree returns the next core to grant: outside occupied, placed
	// relative to current.
	NextFree(current, occupied sched.CPUSet) (numa.CoreID, bool)
}

// placedAllocator adapts a Placement to the Allocator interface the
// mechanism and tenants consume. In the single-tenant mechanism the
// occupied set equals the caller's own set.
type placedAllocator struct {
	topo *numa.Topology
	p    Placement
}

// NewPlaced adapts a topology-aware Placement into an allocation mode.
func NewPlaced(t *numa.Topology, p Placement) Allocator {
	return &placedAllocator{topo: t, p: p}
}

func (a *placedAllocator) Name() string { return a.p.Name() }

func (a *placedAllocator) Next(current sched.CPUSet) (numa.CoreID, bool) {
	return a.p.Next(a.topo, current, current)
}

func (a *placedAllocator) Victim(current sched.CPUSet) (numa.CoreID, bool) {
	return a.p.Victim(a.topo, current)
}

func (a *placedAllocator) NextFree(current, occupied sched.CPUSet) (numa.CoreID, bool) {
	return a.p.Next(a.topo, current, occupied)
}
