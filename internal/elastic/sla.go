package elastic

// sla.go implements the paper's future-work sketch (Section VII): driving
// the elastic allocation from a service-level objective — an energy or
// data-traffic budget — "like meeting service level agreements (e.g.,
// energy or data traffic)" in a cloud setting where cores are paid for as
// allocated. The abstract PrT model is unchanged; only the reading and
// its thresholds differ, demonstrating the model's claimed portability to
// new metrics.

// TrafficBudgetStrategy classifies the database by its interconnect
// traffic rate against a budget: the state is Overloaded (needs more
// local cores near the data) while the rate exceeds the budget, Idle
// (cores can be returned to the provider) when traffic falls below the
// floor fraction of the budget, and Stable in between.
//
// The reading is the traffic rate as a percentage of the budget, so the
// net thresholds live in the same 0..100+ domain as CPU load.
type TrafficBudgetStrategy struct {
	// BudgetBytesPerSec is the agreed interconnect traffic budget.
	BudgetBytesPerSec float64
	// ClockHz converts window cycles to seconds (machine clock).
	ClockHz float64
	// FloorPct and CeilPct override the default 10/100 band when
	// non-zero: below FloorPct of budget release, above CeilPct allocate.
	FloorPct, CeilPct int
}

// Name implements Strategy.
func (TrafficBudgetStrategy) Name() string { return "traffic-budget" }

// Reading implements Strategy: the window's HT byte rate as a percentage
// of the budget.
func (s TrafficBudgetStrategy) Reading(sm Sample) int {
	if s.BudgetBytesPerSec <= 0 || s.ClockHz <= 0 || sm.Window.Now == 0 {
		return 0
	}
	seconds := float64(sm.Window.Now) / s.ClockHz
	rate := float64(sm.Window.TotalHTBytes()) / seconds
	return int(100 * rate / s.BudgetBytesPerSec)
}

// Thresholds implements Strategy.
func (s TrafficBudgetStrategy) Thresholds() (int, int) {
	min, max := s.FloorPct, s.CeilPct
	if min == 0 {
		min = 10
	}
	if max == 0 {
		max = 100
	}
	return min, max
}
