package elastic

import (
	"testing"

	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

func TestTrafficBudgetReading(t *testing.T) {
	clock := 1e9
	s := TrafficBudgetStrategy{BudgetBytesPerSec: 1000, ClockHz: clock}
	mk := func(bytes uint64, seconds float64) Sample {
		return Sample{Window: numa.Counters{
			Now:   uint64(seconds * clock),
			Nodes: []numa.NodeCounters{{HTBytesOut: bytes}},
		}}
	}
	// 500 B over 1 s against a 1000 B/s budget = 50%.
	if got := s.Reading(mk(500, 1)); got != 50 {
		t.Errorf("Reading = %d, want 50", got)
	}
	// 3000 B over 1 s = 300% — deep overload.
	if got := s.Reading(mk(3000, 1)); got != 300 {
		t.Errorf("Reading = %d, want 300", got)
	}
	// Degenerate inputs read as zero, never panicking.
	if got := s.Reading(mk(500, 0)); got != 0 {
		t.Errorf("zero-window Reading = %d", got)
	}
	if got := (TrafficBudgetStrategy{}).Reading(mk(500, 1)); got != 0 {
		t.Errorf("zero-budget Reading = %d", got)
	}
}

func TestTrafficBudgetThresholds(t *testing.T) {
	min, max := TrafficBudgetStrategy{}.Thresholds()
	if min != 10 || max != 100 {
		t.Errorf("default thresholds = (%d,%d), want (10,100)", min, max)
	}
	min, max = TrafficBudgetStrategy{FloorPct: 20, CeilPct: 80}.Thresholds()
	if min != 20 || max != 80 {
		t.Errorf("override thresholds = (%d,%d)", min, max)
	}
}

// TestTrafficBudgetDrivesMechanism wires the SLA strategy into a full
// mechanism: heavy remote traffic must trigger allocations through the
// unchanged PrT net.
func TestTrafficBudgetDrivesMechanism(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	topo := machine.Topology()
	sc := sched.New(machine, sched.Config{})
	g := sc.NewCGroup("dbms")
	g.AddPID(1)
	m, err := New(Config{
		Scheduler: sc,
		CGroup:    g,
		Allocator: NewDense(topo),
		Strategy: TrafficBudgetStrategy{
			BudgetBytesPerSec: 1e6, // tiny budget: any remote traffic overloads
			ClockHz:           topo.ClockHz,
		},
		ControlPeriod: sc.Quantum() * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Home data remotely and stream a region larger than the L3 so every
	// pass keeps crossing the interconnect.
	blocks := topo.L3Bytes/topo.BlockBytes + 128
	region := machine.Memory().AllocOn(blocks, 3, 1)
	i := 0
	reader := sched.RunnerFunc(func(ctx *sched.ExecContext, budget uint64) (uint64, bool, bool) {
		var used uint64
		for used < budget {
			used += ctx.Access(numa.Access{
				Block: region.Block(i % region.Blocks),
				Bytes: topo.BlockBytes,
			})
			i++
		}
		return used, false, false
	})
	sc.Spawn(1, "w", reader)
	for j := 0; j < 40; j++ {
		sc.Tick()
		m.Maybe()
	}
	if got := m.Allocated().Count(); got < 2 {
		t.Errorf("SLA strategy allocated %d cores under budget overrun, want growth", got)
	}
}
