package elastic

import (
	"math"

	"elasticore/internal/numa"
)

// Sample is the monitoring window handed to a Strategy each control
// period: counter deltas since the previous period plus the set of cores
// currently allocated to the database cgroup.
type Sample struct {
	Window    numa.Counters
	Allocated []numa.CoreID
}

// Strategy turns a monitoring window into the scalar reading u the PrT net
// classifies, together with its thresholds. The paper demonstrates two:
// CPU load (Section III) and the HT/IMC traffic ratio (Section V-B),
// showing the abstract model fits different metrics.
type Strategy interface {
	Name() string
	// Reading returns u as an integer in the net's token domain.
	Reading(s Sample) int
	// Thresholds returns (thmin, thmax) in the same domain.
	Thresholds() (min, max int)
}

// CPULoadStrategy reads the average CPU load of the allocated cores, in
// percent. Thresholds follow the literature's rules of thumb the paper
// adopts: thmin = 10, thmax = 70.
type CPULoadStrategy struct {
	// ThMin, ThMax override the defaults when non-zero.
	ThMin, ThMax int
}

// Name implements Strategy.
func (CPULoadStrategy) Name() string { return "cpu-load" }

// Reading implements Strategy: the arithmetic CPU-load average of the
// allocated cores.
func (CPULoadStrategy) Reading(s Sample) int {
	return int(math.Round(s.Window.CPULoad(s.Allocated)))
}

// Thresholds implements Strategy.
func (c CPULoadStrategy) Thresholds() (int, int) {
	min, max := c.ThMin, c.ThMax
	if min == 0 {
		min = 10
	}
	if max == 0 {
		max = 70
	}
	return min, max
}

// HTIMCStrategy reads the ratio of interconnect traffic to
// memory-controller traffic, scaled by 1000 to fit the integer token
// domain (0.1 -> 100). The paper sets thmin = 0.1 and thmax = 0.4
// empirically. A *high* ratio means the system is NUMA-unfriendly — data
// crosses sockets instead of being served locally — so it is treated as
// overload (more local cores needed near the data); a low ratio with low
// utility releases cores.
type HTIMCStrategy struct {
	// ThMinMilli, ThMaxMilli override the defaults (100, 400) when
	// non-zero.
	ThMinMilli, ThMaxMilli int
}

// Name implements Strategy.
func (HTIMCStrategy) Name() string { return "ht-imc" }

// Reading implements Strategy: 1000 * HTbytes / IMCbytes over the window.
func (HTIMCStrategy) Reading(s Sample) int {
	return int(math.Round(1000 * s.Window.HTIMCRatio()))
}

// Thresholds implements Strategy.
func (h HTIMCStrategy) Thresholds() (int, int) {
	min, max := h.ThMinMilli, h.ThMaxMilli
	if min == 0 {
		min = 100
	}
	if max == 0 {
		max = 400
	}
	return min, max
}
