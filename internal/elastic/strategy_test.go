package elastic

import (
	"testing"

	"elasticore/internal/numa"
)

func sampleWith(busy, idle uint64, ht, imc uint64) Sample {
	c := numa.Counters{
		Nodes: []numa.NodeCounters{{HTBytesOut: ht, IMCBytes: imc}},
		Cores: make([]numa.CoreCounters, 16),
	}
	c.Cores[0] = numa.CoreCounters{BusyCycles: busy, IdleCycles: idle}
	return Sample{Window: c, Allocated: []numa.CoreID{0}}
}

func TestCPULoadReading(t *testing.T) {
	s := CPULoadStrategy{}
	if got := s.Reading(sampleWith(75, 25, 0, 0)); got != 75 {
		t.Errorf("Reading = %d, want 75", got)
	}
	if got := s.Reading(sampleWith(0, 0, 0, 0)); got != 0 {
		t.Errorf("empty Reading = %d, want 0", got)
	}
}

func TestCPULoadAveragesOnlyAllocatedCores(t *testing.T) {
	c := numa.Counters{Cores: make([]numa.CoreCounters, 16)}
	c.Cores[0] = numa.CoreCounters{BusyCycles: 100} // 100% busy
	c.Cores[5] = numa.CoreCounters{IdleCycles: 100} // 0% busy, not allocated
	s := CPULoadStrategy{}
	got := s.Reading(Sample{Window: c, Allocated: []numa.CoreID{0}})
	if got != 100 {
		t.Errorf("Reading over allocated core = %d, want 100", got)
	}
	got = s.Reading(Sample{Window: c, Allocated: []numa.CoreID{0, 5}})
	if got != 50 {
		t.Errorf("Reading over two cores = %d, want 50", got)
	}
}

func TestCPULoadThresholds(t *testing.T) {
	min, max := CPULoadStrategy{}.Thresholds()
	if min != 10 || max != 70 {
		t.Errorf("default thresholds = (%d,%d), want (10,70)", min, max)
	}
	min, max = CPULoadStrategy{ThMin: 5, ThMax: 95}.Thresholds()
	if min != 5 || max != 95 {
		t.Errorf("override thresholds = (%d,%d)", min, max)
	}
}

func TestHTIMCReadingScaled(t *testing.T) {
	s := HTIMCStrategy{}
	// ratio 0.25 -> 250 in the milli domain.
	if got := s.Reading(sampleWith(0, 0, 250, 1000)); got != 250 {
		t.Errorf("Reading = %d, want 250", got)
	}
	if got := s.Reading(sampleWith(0, 0, 100, 0)); got != 0 {
		t.Errorf("Reading with zero IMC = %d, want 0", got)
	}
}

func TestHTIMCThresholds(t *testing.T) {
	min, max := HTIMCStrategy{}.Thresholds()
	if min != 100 || max != 400 {
		t.Errorf("default thresholds = (%d,%d), want (100,400) — the paper's 0.1/0.4", min, max)
	}
}

func TestStrategyNames(t *testing.T) {
	var cpu CPULoadStrategy
	var ht HTIMCStrategy
	if cpu.Name() != "cpu-load" || ht.Name() != "ht-imc" {
		t.Error("strategy names changed; figure labels depend on them")
	}
}
