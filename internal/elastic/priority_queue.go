// Package elastic implements the paper's core contribution: the elastic
// multi-core allocation mechanism (Sections III-IV). It samples hardware
// counters each control period, classifies the database's performance
// state through the PrT net, and allocates or releases one core at the
// NUMA node chosen by the active allocation mode — handing the OS only the
// local optimum number of cores (LONC) for the current workload.
package elastic

import (
	"container/heap"

	"elasticore/internal/numa"
)

// NodePages is one priority-queue entry: a NUMA node and the number of
// live pages (placement blocks) the tracked threads hold there.
type NodePages struct {
	Node  numa.NodeID
	Pages int
}

// NodePriorityQueue tracks the memory address space used by the database
// threads per NUMA node (Section IV-B.2): "a priority queue is used to
// indicate the node with the largest/smallest amount of allocated memory
// (on top/bottom priority)". The top node receives the next allocated
// core; the bottom node gives up a core on release.
type NodePriorityQueue struct {
	entries maxHeap
	pos     []int // node -> index in entries
}

// NewNodePriorityQueue creates a queue over nodeCount nodes, all starting
// at zero pages.
func NewNodePriorityQueue(nodeCount int) *NodePriorityQueue {
	q := &NodePriorityQueue{
		entries: make(maxHeap, nodeCount),
		pos:     make([]int, nodeCount),
	}
	for i := 0; i < nodeCount; i++ {
		q.entries[i] = NodePages{Node: numa.NodeID(i)}
		q.pos[i] = i
	}
	heap.Init(&q.entries)
	q.reindex()
	return q
}

// Update replaces the page counts from a fresh residency reading (pages
// indexed by node).
func (q *NodePriorityQueue) Update(pages []int) {
	for node, count := range pages {
		idx := q.pos[node]
		if q.entries[idx].Pages == count {
			continue
		}
		q.entries[idx].Pages = count
		heap.Fix(&q.entries, idx)
		q.reindex()
	}
}

// Top returns the highest-priority entry: the node with the most pages.
// Ties break toward the lower node ID for determinism.
func (q *NodePriorityQueue) Top() NodePages { return q.entries[0] }

// Bottom returns the lowest-priority entry: the node with the fewest
// pages. Ties break toward the higher node ID so Top and Bottom differ
// whenever possible.
func (q *NodePriorityQueue) Bottom() NodePages {
	best := q.entries[0]
	for _, e := range q.entries[1:] {
		if e.Pages < best.Pages || (e.Pages == best.Pages && e.Node > best.Node) {
			best = e
		}
	}
	return best
}

// Ranked returns all entries ordered from highest to lowest priority.
func (q *NodePriorityQueue) Ranked() []NodePages {
	out := append([]NodePages(nil), q.entries...)
	// Insertion sort: node count is small and determinism matters.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j-1], out[j]); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// less orders a below b in priority (fewer pages, or same pages and higher
// node ID).
func less(a, b NodePages) bool {
	if a.Pages != b.Pages {
		return a.Pages < b.Pages
	}
	return a.Node > b.Node
}

func (q *NodePriorityQueue) reindex() {
	for i, e := range q.entries {
		q.pos[e.Node] = i
	}
}

// maxHeap implements heap.Interface ordered by descending page count.
type maxHeap []NodePages

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return less(h[j], h[i]) }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(NodePages)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
