package elastic

import (
	"testing"

	"elasticore/internal/numa"
	"elasticore/internal/petrinet"
	"elasticore/internal/sched"
)

// busyWork keeps a thread 100% busy forever.
type busyWork struct{}

func (busyWork) Run(_ *sched.ExecContext, budget uint64) (uint64, bool, bool) {
	return budget, false, false
}

func newRig(t *testing.T, alloc func(*numa.Topology) Allocator) (*sched.Scheduler, *Mechanism) {
	t.Helper()
	machine := numa.NewMachine(numa.Opteron8387())
	s := sched.New(machine, sched.Config{})
	g := s.NewCGroup("dbms")
	g.AddPID(1)
	var a Allocator
	if alloc != nil {
		a = alloc(machine.Topology())
	} else {
		a = NewDense(machine.Topology())
	}
	m, err := New(Config{
		Scheduler:     s,
		CGroup:        g,
		Allocator:     a,
		Strategy:      CPULoadStrategy{},
		ControlPeriod: s.Quantum() * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestMechanismStartsWithOneCore(t *testing.T) {
	_, m := newRig(t, nil)
	if got := m.Allocated().Count(); got != 1 {
		t.Errorf("initial allocation = %d cores, want 1", got)
	}
	if m.Net().NAlloc() != 1 {
		t.Errorf("net nalloc = %d, want 1", m.Net().NAlloc())
	}
}

func TestMechanismAllocatesUnderLoad(t *testing.T) {
	s, m := newRig(t, nil)
	for i := 0; i < 8; i++ {
		s.Spawn(1, "w", busyWork{})
	}
	for i := 0; i < 40; i++ {
		s.Tick()
		m.Maybe()
	}
	if got := m.Allocated().Count(); got < 2 {
		t.Errorf("allocated %d cores under saturation, want growth", got)
	}
	// Every event label must be a recognized path.
	for _, e := range m.Events() {
		switch e.Label {
		case "t0-Idle-t4", "t0-Idle-t7", "t1-Overload-t5", "t1-Overload-t6", "t2-Stable-t3":
		default:
			t.Errorf("unexpected transition label %q", e.Label)
		}
	}
}

// finiteWork runs for a fixed number of cycles, then exits.
type finiteWork struct{ remaining uint64 }

func (w *finiteWork) Run(_ *sched.ExecContext, budget uint64) (uint64, bool, bool) {
	if w.remaining <= budget {
		used := w.remaining
		w.remaining = 0
		return used, false, true
	}
	w.remaining -= budget
	return budget, false, false
}

func TestMechanismReleasesWhenIdle(t *testing.T) {
	s, m := newRig(t, nil)
	for i := 0; i < 8; i++ {
		s.Spawn(1, "w", &finiteWork{remaining: 40 * s.Quantum()})
	}
	grown := 1
	for i := 0; i < 120; i++ {
		s.Tick()
		m.Maybe()
		if c := m.Allocated().Count(); c > grown {
			grown = c
		}
	}
	if grown < 2 {
		t.Fatalf("precondition: expected growth under load, peak was %d cores", grown)
	}
	// All work has finished by now; the idle sub-net must shrink the
	// allocation back to one core.
	for i := 0; i < 300 && m.Allocated().Count() > 1; i++ {
		s.Tick()
		m.Maybe()
	}
	if got := m.Allocated().Count(); got != 1 {
		t.Errorf("allocation after idling = %d cores, want 1", got)
	}
}

func TestMechanismEventsRecordCoresAndTime(t *testing.T) {
	s, m := newRig(t, nil)
	for i := 0; i < 8; i++ {
		s.Spawn(1, "w", busyWork{})
	}
	for i := 0; i < 20; i++ {
		s.Tick()
		m.Maybe()
	}
	events := m.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	var lastNow uint64
	for _, e := range events {
		if e.Now < lastNow {
			t.Error("events not in time order")
		}
		lastNow = e.Now
		if e.NAlloc < 1 || e.NAlloc > 16 {
			t.Errorf("event nalloc = %d out of bounds", e.NAlloc)
		}
	}
}

func TestMechanismRespectsControlPeriod(t *testing.T) {
	s, m := newRig(t, nil)
	// Control period is 2 quanta; 10 ticks should yield about 5 steps.
	for i := 0; i < 10; i++ {
		s.Tick()
		m.Maybe()
	}
	if got := m.TokenFlows; got < 4 || got > 6 {
		t.Errorf("token flows = %d over 10 ticks with period 2, want ~5", got)
	}
}

func TestMechanismAdaptiveFollowsResidency(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	s := sched.New(machine, sched.Config{})
	g := s.NewCGroup("dbms")
	g.AddPID(1)
	adaptive := NewAdaptive(machine.Topology(), func() []int {
		return machine.Residency(g.PIDs())
	})
	m, err := New(Config{
		Scheduler:     s,
		CGroup:        g,
		Allocator:     adaptive,
		ControlPeriod: s.Quantum() * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Home data on node 2 under PID 1, then saturate: allocations must
	// prefer node 2's cores.
	machine.Memory().AllocOn(64, 2, 1)
	for i := 0; i < 8; i++ {
		s.Spawn(1, "w", busyWork{})
	}
	for i := 0; i < 30; i++ {
		s.Tick()
		m.Maybe()
	}
	set := m.Allocated()
	topo := machine.Topology()
	onNode2 := len(set.CoresOnNode(topo, 2))
	for n := 0; n < topo.NodeCount; n++ {
		if n != 2 && len(set.CoresOnNode(topo, numa.NodeID(n))) > onNode2 {
			t.Errorf("node %d has more cores than hot node 2: set=%v", n, set)
		}
	}
	if onNode2 == 0 && set.Count() > 1 {
		t.Errorf("no cores on the residency-hot node: set=%v", set)
	}
}

func TestMechanismNetSyncAfterFailedAction(t *testing.T) {
	// With all cores allocated, an allocate decision cannot be honoured;
	// net nalloc must stay equal to the cgroup count.
	s, m := newRig(t, nil)
	for i := 0; i < 32; i++ {
		s.Spawn(1, "w", busyWork{})
	}
	for i := 0; i < 300; i++ {
		s.Tick()
		m.Maybe()
		if m.Net().NAlloc() != m.Allocated().Count() {
			t.Fatalf("net nalloc %d != allocated %d", m.Net().NAlloc(), m.Allocated().Count())
		}
	}
	if m.Allocated().Count() != 16 {
		t.Errorf("sustained saturation allocated %d cores, want all 16", m.Allocated().Count())
	}
}

func TestDesiredStepReportsWithoutTouchingCGroup(t *testing.T) {
	s, m := newRig(t, nil)
	for i := 0; i < 8; i++ {
		s.Spawn(1, "w", busyWork{})
	}
	for i := 0; i < 10; i++ {
		s.Tick()
	}
	before := m.Allocated()
	d := m.DesiredStep()
	if m.Allocated() != before {
		t.Errorf("DesiredStep changed the cpuset: %v -> %v", before, m.Allocated())
	}
	if d.Decision != petrinet.DecisionAllocate || d.N != before.Count()+1 {
		t.Errorf("saturated desire = (%v, %d), want (allocate, %d)", d.Decision, d.N, before.Count()+1)
	}
	if d.Window.Now == 0 {
		t.Error("desire carries no counter window")
	}
	if m.Due() {
		t.Error("mechanism still due right after an evaluation")
	}
}

// TestMechanismBacklogForcesAllocation is the queue-pressure path: an
// idle machine (reading far below thmax) with a deep admission queue must
// still grow the allocation, and stop reacting once the backlog source is
// unwired.
func TestMechanismBacklogForcesAllocation(t *testing.T) {
	s, m := newRig(t, nil)
	backlog := 100
	m.SetBacklog(func() int { return backlog })
	for i := 0; i < 40; i++ {
		s.Tick()
		m.Maybe()
	}
	if got := m.Allocated().Count(); got < 4 {
		t.Errorf("deep backlog on an idle machine grew allocation to %d cores, want >= 4", got)
	}
	for _, e := range m.Events() {
		if e.U < 70 {
			t.Errorf("backlog-clamped reading %d below thmax 70 in event %q", e.U, e.Label)
		}
	}
	// Drain the queue and unwire: the idle sub-net must shrink again.
	backlog = 0
	m.SetBacklog(nil)
	for i := 0; i < 400 && m.Allocated().Count() > 1; i++ {
		s.Tick()
		m.Maybe()
	}
	if got := m.Allocated().Count(); got != 1 {
		t.Errorf("allocation after unwiring backlog = %d cores, want 1", got)
	}
}

// TestMechanismBacklogBelowThresholdIsInert pins the per-core tolerance:
// a shallow queue (at most BacklogPerCore per allocated core) must not
// perturb the strategy reading.
func TestMechanismBacklogBelowThresholdIsInert(t *testing.T) {
	s, m := newRig(t, nil)
	m.SetBacklog(func() int { return 4 }) // == default BacklogPerCore * 1 core
	for i := 0; i < 40; i++ {
		s.Tick()
		m.Maybe()
	}
	if got := m.Allocated().Count(); got != 1 {
		t.Errorf("shallow backlog on an idle machine allocated %d cores, want 1", got)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	s := sched.New(machine, sched.Config{})
	g := s.NewCGroup("g")
	if _, err := New(Config{CGroup: g, Allocator: NewDense(machine.Topology())}); err == nil {
		t.Error("missing scheduler accepted")
	}
	if _, err := New(Config{Scheduler: s, CGroup: g}); err == nil {
		t.Error("missing allocator accepted")
	}
}

func TestFindLONC(t *testing.T) {
	// Synthetic probe: load halves as cores double; performance saturates
	// at 4 cores and degrades slightly at 16 (NUMA overhead).
	probe := func(n int) (float64, float64) {
		u := 200.0 / float64(n)
		if u > 100 {
			u = 100
		}
		perf := float64(n)
		if n > 4 {
			perf = 4.5 - 0.02*float64(n)
		}
		return u, perf
	}
	n, ok := FindLONC(probe, 16, 10, 70)
	if !ok {
		t.Fatal("no LONC found")
	}
	// u(4)=50 within (10,70); perf(4)=4 >= perf(16)=4.18? perf(16)=4.5-0.32=4.18.
	// perf(4)=4 < 4.18 so n=4 fails; n=5: u=40, perf=4.4 >= 4.18 -> LONC=5.
	if n != 5 {
		t.Errorf("LONC = %d, want 5", n)
	}
	// Decision label sanity for petrinet import.
	if petrinet.DecisionAllocate.String() != "allocate" {
		t.Error("decision string broken")
	}
}

func TestFindLONCNoSolution(t *testing.T) {
	probe := func(n int) (float64, float64) { return 100, float64(n) }
	n, ok := FindLONC(probe, 8, 10, 70)
	if ok || n != 8 {
		t.Errorf("FindLONC = %d,%v, want 8,false", n, ok)
	}
	if _, ok := FindLONC(probe, 0, 10, 70); ok {
		t.Error("FindLONC with 0 cores must fail")
	}
}
