package elastic

import (
	"testing"

	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// placement_test.go covers the topology-aware placement policies on the
// zoo shapes where hop distance actually differentiates nodes: the ring
// (diagonal = 2 hops) and the chiplet machine (cross-package up to 3).

// grow allocates n cores through the placement on an otherwise empty
// machine and returns the resulting set.
func grow(t *numa.Topology, p Placement, n int) sched.CPUSet {
	set := sched.CPUSet(0)
	for i := 0; i < n; i++ {
		c, ok := p.Next(t, set, set)
		if !ok {
			break
		}
		set = set.Add(c)
	}
	return set
}

func TestNodeFillPacksBeforeOpening(t *testing.T) {
	topo := numa.FourSocketRing()
	set := grow(topo, NodeFill{}, topo.CoresPerNode+1)
	// The first node must be completely full before a second opens.
	nodes := set.NodesTouched(topo)
	if len(nodes) != 2 {
		t.Fatalf("nodes touched = %v, want exactly 2", nodes)
	}
	if got := len(set.CoresOnNode(topo, nodes[0])); got != topo.CoresPerNode {
		t.Errorf("first node holds %d cores, want %d", got, topo.CoresPerNode)
	}
}

// TestNodeFillOpensNearestNode is the property the index-ordered dense
// mode lacks: on a ring, after filling node 0, the next node must be an
// adjacent one (1 hop), never the diagonal (2 hops).
func TestNodeFillOpensNearestNode(t *testing.T) {
	topo := numa.FourSocketRing()
	set := grow(topo, NodeFill{}, topo.CoresPerNode+1)
	nodes := set.NodesTouched(topo)
	second := nodes[1]
	if second == 0 {
		second = nodes[0]
	}
	if topo.Hops(0, second) != 1 {
		t.Errorf("second node %d is %d hops from node 0, want 1", second, topo.Hops(0, second))
	}

	// On the chiplet machine the second node must stay on-package and
	// substrate-adjacent (1 hop), not the package diagonal or the other
	// package.
	epyc := numa.EPYCLike()
	set = grow(epyc, NodeFill{}, epyc.CoresPerNode+1)
	nodes = set.NodesTouched(epyc)
	if len(nodes) != 2 || epyc.Hops(nodes[0], nodes[1]) != 1 {
		t.Errorf("EPYC second node %v, want a 1-hop neighbour of the first", nodes)
	}
}

func TestNodeFillVictimRetreatsFromEmptiestNode(t *testing.T) {
	topo := numa.FourSocketRing()
	// Node 0 full, node 1 holds one core.
	set := sched.NewCPUSet(0, 1, 2, 3, topo.CoreOf(1, 0))
	v, ok := NodeFill{}.Victim(topo, set)
	if !ok {
		t.Fatal("no victim")
	}
	if topo.NodeOf(v) != 1 {
		t.Errorf("victim %d on node %d, want the lone core on node 1", v, topo.NodeOf(v))
	}
}

func TestHopMinPrefersCloseCores(t *testing.T) {
	topo := numa.FourSocketRing()
	// Hold one core on node 0 and one on node 1; nodes 2 and 3 are free.
	// Node 3 is 1 hop from node 0 and 2 from node 1 (sum 3); node 2 is
	// 2+1 (sum 3); but adding on the held nodes themselves costs 1 and 1.
	set := sched.NewCPUSet(topo.CoreOf(0, 0), topo.CoreOf(1, 0))
	c, ok := HopMin{}.Next(topo, set, set)
	if !ok {
		t.Fatal("no core")
	}
	if n := topo.NodeOf(c); n != 0 && n != 1 {
		t.Errorf("grant on node %d, want a held node (hop sum 1)", n)
	}

	// With node 0 fully occupied by someone else and one core held on
	// node 1, the grant must avoid the diagonal node 3 (2 hops away).
	occupied := sched.NewCPUSet(0, 1, 2, 3).Union(sched.NewCPUSet(topo.CoreOf(1, 0)))
	cur := sched.NewCPUSet(topo.CoreOf(1, 0))
	c, ok = HopMin{}.Next(topo, cur, occupied.Union(cur))
	if !ok {
		t.Fatal("no core")
	}
	if n := topo.NodeOf(c); n != 1 {
		t.Errorf("grant on node %d, want node 1 (own node still free)", n)
	}
}

func TestHopMinVictimDropsFarthestCore(t *testing.T) {
	topo := numa.FourSocketRing()
	// Two cores on node 0, one on the diagonal node 2: the diagonal core
	// is 2+2 hops from the rest, each node-0 core at most 0+2.
	set := sched.NewCPUSet(topo.CoreOf(0, 0), topo.CoreOf(0, 1), topo.CoreOf(2, 0))
	v, ok := HopMin{}.Victim(topo, set)
	if !ok {
		t.Fatal("no victim")
	}
	if topo.NodeOf(v) != 2 {
		t.Errorf("victim on node %d, want the diagonal node 2", topo.NodeOf(v))
	}
}

func TestScatterSpreadsAcrossNodes(t *testing.T) {
	topo := numa.EightSocketTwisted()
	set := grow(topo, Scatter{}, topo.NodeCount)
	if got := len(set.NodesTouched(topo)); got != topo.NodeCount {
		t.Errorf("%d cores touched %d nodes, want one core per node", set.Count(), got)
	}
}

func TestPlacementsExhaustAndStop(t *testing.T) {
	topo := numa.TwoSocket()
	full := sched.FullSet(topo)
	for _, p := range Placements() {
		if _, ok := p.Next(topo, full, full); ok {
			t.Errorf("%s granted a core on a full machine", p.Name())
		}
		if _, ok := p.Victim(topo, sched.NewCPUSet(0)); ok {
			t.Errorf("%s released the last core", p.Name())
		}
		if set := grow(topo, p, topo.TotalCores()); set != full {
			t.Errorf("%s grew to %v, want the full machine", p.Name(), set)
		}
	}
}

func TestPlacementsDeterministic(t *testing.T) {
	topo := numa.EPYCLike()
	for _, p := range Placements() {
		a := grow(topo, p, 13)
		b := grow(topo, p, 13)
		if a != b {
			t.Errorf("%s: identical grows diverged (%v vs %v)", p.Name(), a, b)
		}
	}
}

func TestPlacementByName(t *testing.T) {
	for _, p := range Placements() {
		got, ok := PlacementByName(p.Name())
		if !ok || got.Name() != p.Name() {
			t.Errorf("PlacementByName(%q) = %v, %v", p.Name(), got, ok)
		}
	}
	if _, ok := PlacementByName("no-such-policy"); ok {
		t.Error("unknown placement resolved")
	}
}

// TestPlacedAllocatorAdapts: the adapter must satisfy both Allocator and
// OccupancyAllocator, and NextFree must skip occupied cores while
// placing relative to the caller's own set.
func TestPlacedAllocatorAdapts(t *testing.T) {
	topo := numa.FourSocketRing()
	alloc := NewPlaced(topo, HopMin{})
	oa, ok := alloc.(OccupancyAllocator)
	if !ok {
		t.Fatal("placed allocator does not implement OccupancyAllocator")
	}
	// Another tenant holds all of node 0; we hold one core on node 1.
	neighbour := sched.NewCPUSet(0, 1, 2, 3)
	cur := sched.NewCPUSet(topo.CoreOf(1, 0))
	c, ok := oa.NextFree(cur, neighbour.Union(cur))
	if !ok {
		t.Fatal("no core")
	}
	if neighbour.Contains(c) {
		t.Fatalf("granted occupied core %d", c)
	}
	if topo.NodeOf(c) != 1 {
		t.Errorf("grant on node %d, want node 1 next to our core", topo.NodeOf(c))
	}
	if alloc.Name() != "hop-min" {
		t.Errorf("Name = %q", alloc.Name())
	}
}
