package elastic

import (
	"fmt"

	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/petrinet"
	"elasticore/internal/sched"
)

// TransitionEvent records one control-period evaluation for the state
// transition timeline (paper Figure 7).
type TransitionEvent struct {
	Now    uint64 // virtual time, cycles
	Label  string // e.g. "t1-Overload-t5"
	U      int    // the reading fed to the net
	NAlloc int    // allocated cores after the action
	Core   numa.CoreID
	Action petrinet.Decision
}

// BacklogFunc reports the instantaneous depth of the workload's
// admission queue: requests that have arrived but have not yet been
// submitted to the engine. Closed-loop drivers have no such queue; the
// open-loop driver (workload.OpenDriver) wires its own.
type BacklogFunc func() int

// Config assembles a Mechanism.
type Config struct {
	// Scheduler and CGroup identify the OS facilities the mechanism acts
	// through; CGroup must already contain the DBMS PIDs.
	Scheduler *sched.Scheduler
	CGroup    *sched.CGroup
	// Allocator is the allocation mode (dense, sparse, adaptive).
	Allocator Allocator
	// Strategy is the state-transition metric (CPU load or HT/IMC ratio).
	Strategy Strategy
	// ControlPeriod is the sampling interval in cycles; zero selects 50 ms
	// at the machine clock.
	ControlPeriod uint64
	// InitialCores is how many cores to hand out at start; zero selects 1
	// (the paper's default marking m0(Provision) = {1}).
	InitialCores int
	// Backlog, when set, feeds admission-queue pressure into the control
	// loop (see SetBacklog).
	Backlog BacklogFunc
	// BacklogPerCore is the queued-request depth per allocated core the
	// mechanism tolerates before treating the window as overload
	// regardless of the strategy reading; zero selects 4.
	BacklogPerCore int
}

// Mechanism is the elastic multi-core allocation mechanism: a single
// instance supports all DBMS clients (Section V). Call Maybe from the
// simulation loop; it self-schedules on the control period.
type Mechanism struct {
	cfg   Config
	net   *petrinet.ElasticNet
	topo  *numa.Topology
	total int
	thMax int

	last     numa.Counters
	nextEval uint64

	events []TransitionEvent
	// TokenFlows counts net evaluations (overhead accounting).
	TokenFlows uint64

	// bus, when attached, receives KindTransition events stamped with
	// busTenant; nil keeps the control loop dark.
	bus       *obs.Bus
	busTenant string
}

// New wires a mechanism. It immediately shrinks the cgroup to the initial
// allocation, so the OS starts with the minimum core set.
func New(cfg Config) (*Mechanism, error) {
	if cfg.Scheduler == nil || cfg.CGroup == nil {
		return nil, fmt.Errorf("elastic: Scheduler and CGroup are required")
	}
	if cfg.Allocator == nil {
		return nil, fmt.Errorf("elastic: Allocator is required")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = CPULoadStrategy{}
	}
	machine := cfg.Scheduler.Machine()
	topo := machine.Topology()
	if cfg.ControlPeriod == 0 {
		cfg.ControlPeriod = topo.SecondsToCycles(50e-3)
	}
	if cfg.InitialCores <= 0 {
		cfg.InitialCores = 1
	}
	if cfg.BacklogPerCore <= 0 {
		cfg.BacklogPerCore = 4
	}

	min, max := cfg.Strategy.Thresholds()
	m := &Mechanism{
		cfg:   cfg,
		net:   petrinet.NewElasticNet(min, max, topo.TotalCores()),
		topo:  topo,
		total: topo.TotalCores(),
		thMax: max,
		last:  machine.Snapshot(),
	}

	// Start from an empty set and allocate the initial cores through the
	// mode, so even the first cores follow its placement order.
	set := sched.CPUSet(0)
	for i := 0; i < cfg.InitialCores; i++ {
		core, ok := cfg.Allocator.Next(set)
		if !ok {
			break
		}
		set = set.Add(core)
	}
	cfg.CGroup.SetCPUs(set)
	m.net.SetNAlloc(set.Count())
	m.nextEval = machine.Now() + cfg.ControlPeriod
	return m, nil
}

// SetBus attaches the telemetry bus the mechanism publishes its
// control-period transition firings onto (nil detaches); tenant labels
// the events under consolidation ("" for a single-tenant rig).
func (m *Mechanism) SetBus(b *obs.Bus, tenant string) { m.bus, m.busTenant = b, tenant }

// Bus returns the attached telemetry bus, nil when dark.
func (m *Mechanism) Bus() *obs.Bus { return m.bus }

// Net exposes the underlying PrT net (matrices, marking inspection).
func (m *Mechanism) Net() *petrinet.ElasticNet { return m.net }

// Allocated returns the cpuset currently handed to the OS.
func (m *Mechanism) Allocated() sched.CPUSet { return m.cfg.CGroup.CPUs() }

// Events returns the state-transition timeline recorded so far.
func (m *Mechanism) Events() []TransitionEvent { return m.events }

// ControlPeriod returns the sampling interval in cycles.
func (m *Mechanism) ControlPeriod() uint64 { return m.cfg.ControlPeriod }

// NextAt returns the cycle of the next control evaluation. The parallel
// fleet engine caps decoupled stretches at it so Maybe fires on exactly
// the quantum a sequential run would have fired on.
func (m *Mechanism) NextAt() uint64 { return m.nextEval }

// Maybe runs one control step if the control period has elapsed. It is
// cheap to call every scheduler tick.
func (m *Mechanism) Maybe() {
	if m.cfg.Scheduler.Machine().Now() < m.nextEval {
		return
	}
	m.Step()
}

// Desire is the outcome of one control evaluation: what the net asked
// for, the reading that produced it, and the counter window it judged. It
// is the unit of demand a machine-level arbiter collects from each
// tenant's mechanism.
type Desire struct {
	// N is the allocation size the net asks for (current ±1, floored at 1).
	N int
	// U is the strategy reading fed to the net.
	U int
	// Label is the fired transition path (e.g. "t1-Overload-t5").
	Label string
	// Decision is the net's verdict for this window.
	Decision petrinet.Decision
	// Window is the counter delta the reading was computed over.
	Window numa.Counters
	// Backlog is the admission-queue depth observed this evaluation
	// (zero when no backlog source is wired).
	Backlog int
}

// evaluate runs the shared control-evaluation prologue: sample the
// counter window, read the strategy and fire the PrT net. The net's
// Provision marking is synchronized with the cgroup before evaluating (an
// earlier decision may not have been honoured).
func (m *Mechanism) evaluate() Desire {
	machine := m.cfg.Scheduler.Machine()
	snap := machine.Snapshot()
	window := snap.Sub(m.last)
	m.last = snap
	m.nextEval = machine.Now() + m.cfg.ControlPeriod

	current := m.cfg.CGroup.CPUs()
	sample := Sample{Window: window, Allocated: current.Cores()}
	u := m.cfg.Strategy.Reading(sample)
	backlog := 0
	if m.cfg.Backlog != nil {
		backlog = m.cfg.Backlog()
		// A deep admission queue means cores are the bottleneck even when
		// the counter-based reading sits mid-range (e.g. a short window
		// that sampled mostly queueing, not execution): clamp the reading
		// to the overload threshold so the net fires t1.
		if backlog > m.cfg.BacklogPerCore*current.Count() && u < m.thMax {
			u = m.thMax
		}
	}
	m.net.SetNAlloc(current.Count())
	ev := m.net.Evaluate(u)
	m.TokenFlows++

	desired := current.Count()
	switch ev.Decision {
	case petrinet.DecisionAllocate:
		if desired < m.total {
			desired++
		}
	case petrinet.DecisionRelease:
		if desired > 1 {
			desired--
		}
	}
	return Desire{N: desired, U: u, Label: ev.Label, Decision: ev.Decision, Window: window, Backlog: backlog}
}

// Step samples the counter window, evaluates the PrT net and applies the
// resulting action to the cgroup cpuset — the complete
// rule-condition-action pipeline of Section III.
func (m *Mechanism) Step() {
	d := m.evaluate()
	current := m.cfg.CGroup.CPUs()
	before := current.Count()
	event := TransitionEvent{
		Now:    m.cfg.Scheduler.Machine().Now(),
		Label:  d.Label,
		U:      d.U,
		Action: d.Decision,
	}
	switch d.Decision {
	case petrinet.DecisionAllocate:
		if core, ok := m.cfg.Allocator.Next(current); ok {
			current = current.Add(core)
			m.cfg.CGroup.SetCPUs(current)
			event.Core = core
		}
	case petrinet.DecisionRelease:
		if core, ok := m.cfg.Allocator.Victim(current); ok && current.Count() > 1 {
			current = current.Remove(core)
			m.cfg.CGroup.SetCPUs(current)
			event.Core = core
		}
	}
	m.net.SetNAlloc(current.Count())
	event.NAlloc = current.Count()
	m.events = append(m.events, event)
	if m.bus != nil {
		core := int32(-1)
		if d.Decision != petrinet.DecisionNone && event.NAlloc != before {
			core = int32(event.Core)
		}
		m.bus.Publish(obs.Event{
			Kind:   obs.KindTransition,
			Now:    event.Now,
			Core:   core,
			V1:     int64(d.U),
			V2:     int64(event.NAlloc),
			Set:    uint64(current),
			Label:  d.Label,
			Tenant: m.busTenant,
		})
	}
}

// DesiredStep runs one control evaluation — sampling the counter window,
// reading the strategy and firing the PrT net — but does NOT touch the
// cgroup. It returns the allocation size the net asks for, leaving the
// grant decision to a machine-level arbiter that weighs the desires of
// several tenant mechanisms against each other (internal/tenant). No
// TransitionEvent is recorded: the allocation applied is the arbiter's
// call, and its AllocationEvent timeline is the record under
// arbitration. The caller is responsible for re-synchronizing the net
// marking with the allocation it actually applies, via Net().SetNAlloc.
func (m *Mechanism) DesiredStep() Desire {
	d := m.evaluate()
	if m.bus != nil {
		// Under arbitration the mechanism applies nothing itself: V2 is
		// the allocation the net *asks* for; the arbiter's KindGrant
		// events record what was applied.
		m.bus.Publish(obs.Event{
			Kind:   obs.KindTransition,
			Now:    m.cfg.Scheduler.Machine().Now(),
			Core:   -1,
			V1:     int64(d.U),
			V2:     int64(d.N),
			Set:    uint64(m.cfg.CGroup.CPUs()),
			Label:  d.Label,
			Tenant: m.busTenant,
		})
	}
	return d
}

// Due reports whether the control period has elapsed since the last
// evaluation (Step or DesiredStep).
func (m *Mechanism) Due() bool {
	return m.cfg.Scheduler.Machine().Now() >= m.nextEval
}

// Strategy returns the mechanism's state-transition strategy.
func (m *Mechanism) Strategy() Strategy { return m.cfg.Strategy }

// Allocator returns the mechanism's allocation mode, letting an external
// arbiter apply grants through the same placement order the mechanism
// itself would use (Next to grow, Victim to shrink).
func (m *Mechanism) Allocator() Allocator { return m.cfg.Allocator }

// SetBacklog wires (or, with nil, unwires) the admission-queue pressure
// source after construction. Rigs build the mechanism before any driver
// exists, so the open-loop driver attaches its queue here for the
// duration of a phase: when the queued-request count exceeds
// BacklogPerCore times the allocated cores, the control loop treats the
// window as overload regardless of the strategy reading — allocation
// reacts to the backlog users experience, not only to the counters the
// already-admitted queries generate.
func (m *Mechanism) SetBacklog(f BacklogFunc) { m.cfg.Backlog = f }
