package elastic

import (
	"fmt"

	"elasticore/internal/numa"
	"elasticore/internal/petrinet"
	"elasticore/internal/sched"
)

// TransitionEvent records one control-period evaluation for the state
// transition timeline (paper Figure 7).
type TransitionEvent struct {
	Now    uint64 // virtual time, cycles
	Label  string // e.g. "t1-Overload-t5"
	U      int    // the reading fed to the net
	NAlloc int    // allocated cores after the action
	Core   numa.CoreID
	Action petrinet.Decision
}

// Config assembles a Mechanism.
type Config struct {
	// Scheduler and CGroup identify the OS facilities the mechanism acts
	// through; CGroup must already contain the DBMS PIDs.
	Scheduler *sched.Scheduler
	CGroup    *sched.CGroup
	// Allocator is the allocation mode (dense, sparse, adaptive).
	Allocator Allocator
	// Strategy is the state-transition metric (CPU load or HT/IMC ratio).
	Strategy Strategy
	// ControlPeriod is the sampling interval in cycles; zero selects 50 ms
	// at the machine clock.
	ControlPeriod uint64
	// InitialCores is how many cores to hand out at start; zero selects 1
	// (the paper's default marking m0(Provision) = {1}).
	InitialCores int
}

// Mechanism is the elastic multi-core allocation mechanism: a single
// instance supports all DBMS clients (Section V). Call Maybe from the
// simulation loop; it self-schedules on the control period.
type Mechanism struct {
	cfg   Config
	net   *petrinet.ElasticNet
	topo  *numa.Topology
	total int

	last     numa.Counters
	nextEval uint64

	events []TransitionEvent
	// TokenFlows counts net evaluations (overhead accounting).
	TokenFlows uint64
}

// New wires a mechanism. It immediately shrinks the cgroup to the initial
// allocation, so the OS starts with the minimum core set.
func New(cfg Config) (*Mechanism, error) {
	if cfg.Scheduler == nil || cfg.CGroup == nil {
		return nil, fmt.Errorf("elastic: Scheduler and CGroup are required")
	}
	if cfg.Allocator == nil {
		return nil, fmt.Errorf("elastic: Allocator is required")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = CPULoadStrategy{}
	}
	machine := cfg.Scheduler.Machine()
	topo := machine.Topology()
	if cfg.ControlPeriod == 0 {
		cfg.ControlPeriod = topo.SecondsToCycles(50e-3)
	}
	if cfg.InitialCores <= 0 {
		cfg.InitialCores = 1
	}

	min, max := cfg.Strategy.Thresholds()
	m := &Mechanism{
		cfg:   cfg,
		net:   petrinet.NewElasticNet(min, max, topo.TotalCores()),
		topo:  topo,
		total: topo.TotalCores(),
		last:  machine.Snapshot(),
	}

	// Start from an empty set and allocate the initial cores through the
	// mode, so even the first cores follow its placement order.
	set := sched.CPUSet(0)
	for i := 0; i < cfg.InitialCores; i++ {
		core, ok := cfg.Allocator.Next(set)
		if !ok {
			break
		}
		set = set.Add(core)
	}
	cfg.CGroup.SetCPUs(set)
	m.net.SetNAlloc(set.Count())
	m.nextEval = machine.Now() + cfg.ControlPeriod
	return m, nil
}

// Net exposes the underlying PrT net (matrices, marking inspection).
func (m *Mechanism) Net() *petrinet.ElasticNet { return m.net }

// Allocated returns the cpuset currently handed to the OS.
func (m *Mechanism) Allocated() sched.CPUSet { return m.cfg.CGroup.CPUs() }

// Events returns the state-transition timeline recorded so far.
func (m *Mechanism) Events() []TransitionEvent { return m.events }

// ControlPeriod returns the sampling interval in cycles.
func (m *Mechanism) ControlPeriod() uint64 { return m.cfg.ControlPeriod }

// Maybe runs one control step if the control period has elapsed. It is
// cheap to call every scheduler tick.
func (m *Mechanism) Maybe() {
	if m.cfg.Scheduler.Machine().Now() < m.nextEval {
		return
	}
	m.Step()
}

// Step samples the counter window, evaluates the PrT net and applies the
// resulting action to the cgroup cpuset — the complete
// rule-condition-action pipeline of Section III.
func (m *Mechanism) Step() {
	machine := m.cfg.Scheduler.Machine()
	snap := machine.Snapshot()
	window := snap.Sub(m.last)
	m.last = snap
	m.nextEval = machine.Now() + m.cfg.ControlPeriod

	current := m.cfg.CGroup.CPUs()
	sample := Sample{Window: window, Allocated: current.Cores()}
	u := m.cfg.Strategy.Reading(sample)

	// Keep the net's Provision marking synchronized with reality before
	// evaluating (an earlier decision may not have been honoured).
	m.net.SetNAlloc(current.Count())
	ev := m.net.Evaluate(u)
	m.TokenFlows++

	event := TransitionEvent{
		Now:    machine.Now(),
		Label:  ev.Label,
		U:      u,
		Action: ev.Decision,
	}
	switch ev.Decision {
	case petrinet.DecisionAllocate:
		if core, ok := m.cfg.Allocator.Next(current); ok {
			current = current.Add(core)
			m.cfg.CGroup.SetCPUs(current)
			event.Core = core
		}
	case petrinet.DecisionRelease:
		if core, ok := m.cfg.Allocator.Victim(current); ok && current.Count() > 1 {
			current = current.Remove(core)
			m.cfg.CGroup.SetCPUs(current)
			event.Core = core
		}
	}
	m.net.SetNAlloc(current.Count())
	event.NAlloc = current.Count()
	m.events = append(m.events, event)
}
