package elastic

import (
	"testing"

	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

func topo() *numa.Topology { return numa.Opteron8387() }

func TestDenseOrderFillsNodeFirst(t *testing.T) {
	// Figure 12 (b): dense iterates over j within i.
	order := denseOrder(topo())
	want := []numa.CoreID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("denseOrder = %v, want %v", order, want)
		}
	}
}

func TestSparseOrderRotatesNodes(t *testing.T) {
	// Figure 12 (a): sparse iterates over i within j.
	order := sparseOrder(topo())
	want := []numa.CoreID{0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("sparseOrder = %v, want %v", order, want)
		}
	}
}

func TestSequenceAllocatorNextSkipsAllocated(t *testing.T) {
	a := NewDense(topo())
	set := sched.NewCPUSet(0, 1)
	c, ok := a.Next(set)
	if !ok || c != 2 {
		t.Errorf("Next = %d,%v, want 2,true", c, ok)
	}
	full := sched.FullSet(topo())
	if _, ok := a.Next(full); ok {
		t.Error("Next on full set should fail")
	}
}

func TestSequenceAllocatorVictimReverse(t *testing.T) {
	a := NewDense(topo())
	set := sched.NewCPUSet(0, 1, 5)
	c, ok := a.Victim(set)
	if !ok || c != 5 {
		t.Errorf("Victim = %d,%v, want 5,true (last in dense order)", c, ok)
	}
	if _, ok := a.Victim(sched.NewCPUSet(0)); ok {
		t.Error("Victim must refuse to release the last core")
	}
}

func TestSparseAllocatorSpreads(t *testing.T) {
	a := NewSparse(topo())
	tp := topo()
	set := sched.CPUSet(0)
	seenNodes := map[numa.NodeID]bool{}
	for i := 0; i < tp.NodeCount; i++ {
		c, ok := a.Next(set)
		if !ok {
			t.Fatal("Next failed")
		}
		set = set.Add(c)
		seenNodes[tp.NodeOf(c)] = true
	}
	if len(seenNodes) != tp.NodeCount {
		t.Errorf("first %d sparse allocations touched %d nodes, want all", tp.NodeCount, len(seenNodes))
	}
}

func TestAdaptiveAllocatesAtHottestNode(t *testing.T) {
	tp := topo()
	pages := []int{0, 50, 10, 5}
	a := NewAdaptive(tp, func() []int { return pages })
	c, ok := a.Next(sched.CPUSet(0))
	if !ok || tp.NodeOf(c) != 1 {
		t.Errorf("Next = core %d (node %d), want a node-1 core", c, tp.NodeOf(c))
	}
	// When node 1 is fully allocated, the next-hottest node (2) follows.
	set := sched.NewCPUSet(tp.Cores(1)...)
	c, ok = a.Next(set)
	if !ok || tp.NodeOf(c) != 2 {
		t.Errorf("Next with node 1 full = node %d, want 2", tp.NodeOf(c))
	}
}

func TestAdaptiveReleasesAtColdestNode(t *testing.T) {
	tp := topo()
	pages := []int{100, 50, 10, 5}
	a := NewAdaptive(tp, func() []int { return pages })
	set := sched.NewCPUSet(0, 4, 8, 12) // one core per node
	c, ok := a.Victim(set)
	if !ok || tp.NodeOf(c) != 3 {
		t.Errorf("Victim = core %d (node %d), want node 3 (fewest pages)", c, tp.NodeOf(c))
	}
	// If the coldest node has no allocated core, the next-coldest gives up
	// a core.
	set = sched.NewCPUSet(0, 4, 8)
	c, ok = a.Victim(set)
	if !ok || tp.NodeOf(c) != 2 {
		t.Errorf("Victim = node %d, want 2", tp.NodeOf(c))
	}
	if _, ok := a.Victim(sched.NewCPUSet(0)); ok {
		t.Error("Victim must keep at least one core")
	}
}

func TestAdaptiveTracksResidencyChanges(t *testing.T) {
	tp := topo()
	pages := []int{100, 0, 0, 0}
	a := NewAdaptive(tp, func() []int { return pages })
	if c, _ := a.Next(sched.CPUSet(0)); tp.NodeOf(c) != 0 {
		t.Fatalf("initial Next on node %d, want 0", tp.NodeOf(c))
	}
	pages = []int{0, 0, 0, 100} // address space moved
	if c, _ := a.Next(sched.CPUSet(0)); tp.NodeOf(c) != 3 {
		t.Errorf("Next after shift on node %d, want 3", tp.NodeOf(c))
	}
}
