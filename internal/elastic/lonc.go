package elastic

// lonc.go implements the paper's Equation 1, the Local Optimum Number of
// Cores: for any workload w there exists an allocation nalloc such that
// the per-core load stays between the thresholds and performance with
// nalloc cores is at least the performance with all ntotal cores.

// LONCProbe evaluates a candidate allocation size: it returns the average
// resource usage u of the database threads (same domain as the strategy
// thresholds) and the performance function p(n) (higher is better, e.g.
// queries per second).
type LONCProbe func(n int) (u float64, perf float64)

// FindLONC searches allocation sizes 1..nTotal for the smallest n
// satisfying Equation 1:
//
//	(thmin < u < thmax) && p(n) >= p(nTotal)
//
// It returns the found n and true, or nTotal and false when no allocation
// satisfies both conditions (the workload then runs on the full machine).
// The probe is called once per candidate plus once for nTotal.
func FindLONC(probe LONCProbe, nTotal int, thMin, thMax float64) (int, bool) {
	if nTotal < 1 {
		return 0, false
	}
	_, perfAll := probe(nTotal)
	for n := 1; n <= nTotal; n++ {
		u, perf := probe(n)
		if u > thMin && u < thMax && perf >= perfAll {
			return n, true
		}
	}
	return nTotal, false
}
