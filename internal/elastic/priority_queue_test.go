package elastic

import (
	"testing"
	"testing/quick"

	"elasticore/internal/numa"
)

func TestQueueTopBottom(t *testing.T) {
	q := NewNodePriorityQueue(4)
	q.Update([]int{5, 100, 20, 1})
	if top := q.Top(); top.Node != 1 || top.Pages != 100 {
		t.Errorf("Top = %+v, want node 1 / 100 pages", top)
	}
	if bot := q.Bottom(); bot.Node != 3 || bot.Pages != 1 {
		t.Errorf("Bottom = %+v, want node 3 / 1 page", bot)
	}
}

func TestQueueUpdateReorders(t *testing.T) {
	q := NewNodePriorityQueue(4)
	q.Update([]int{10, 20, 30, 40})
	if q.Top().Node != 3 {
		t.Fatalf("Top = %+v, want node 3", q.Top())
	}
	q.Update([]int{100, 20, 30, 40})
	if q.Top().Node != 0 {
		t.Errorf("Top after update = %+v, want node 0", q.Top())
	}
	if q.Bottom().Node != 1 {
		t.Errorf("Bottom after update = %+v, want node 1", q.Bottom())
	}
}

func TestQueueRankedOrder(t *testing.T) {
	q := NewNodePriorityQueue(4)
	q.Update([]int{7, 3, 9, 3})
	ranked := q.Ranked()
	wantNodes := []numa.NodeID{2, 0, 1, 3} // ties (1,3) break toward lower ID first
	for i, e := range ranked {
		if e.Node != wantNodes[i] {
			t.Fatalf("Ranked = %v, want node order %v", ranked, wantNodes)
		}
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Pages > ranked[i-1].Pages {
			t.Fatalf("Ranked not descending: %v", ranked)
		}
	}
}

func TestQueueTopIsMaxProperty(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		q := NewNodePriorityQueue(4)
		pages := []int{int(a), int(b), int(c), int(d)}
		q.Update(pages)
		top, bot := q.Top(), q.Bottom()
		for _, p := range pages {
			if p > top.Pages || p < bot.Pages {
				return false
			}
		}
		return pages[top.Node] == top.Pages && pages[bot.Node] == bot.Pages
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueRepeatedUpdatesConsistent(t *testing.T) {
	// Property: after any sequence of updates, Ranked is a permutation of
	// all nodes and descending by priority.
	f := func(updates [][4]uint8) bool {
		q := NewNodePriorityQueue(4)
		for _, u := range updates {
			q.Update([]int{int(u[0]), int(u[1]), int(u[2]), int(u[3])})
			ranked := q.Ranked()
			if len(ranked) != 4 {
				return false
			}
			seen := map[numa.NodeID]bool{}
			for i, e := range ranked {
				if seen[e.Node] {
					return false
				}
				seen[e.Node] = true
				if i > 0 && less(ranked[i-1], ranked[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
