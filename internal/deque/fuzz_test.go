package deque

import (
	"testing"
)

// FuzzDeque cross-checks the ring deque against a plain-slice model under
// arbitrary operation sequences. The fuzz input is a byte program: each
// byte's low bits select an operation, its high bits parametrize the
// index for the positional ones. CI runs this as a short -fuzztime smoke
// job; `go test` alone replays the seed corpus and any checked-in crash
// reproducers.
func FuzzDeque(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 0, 0, 0, 2, 2, 2, 2, 1, 1, 1, 1, 3, 3, 3, 3})
	f.Add([]byte{4, 0, 4, 1, 5, 0, 5, 1, 6, 7, 6, 7})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 4, 200, 5, 200, 6})

	f.Fuzz(func(t *testing.T, program []byte) {
		var d Deque[int]
		var model []int
		next := 0 // distinct values make misplacements visible

		for pc, op := range program {
			switch op & 7 {
			case 0: // PushBack
				d.PushBack(next)
				model = append(model, next)
				next++
			case 1: // PushFront
				d.PushFront(next)
				model = append([]int{next}, model...)
				next++
			case 2: // PopFront
				v, ok := d.PopFront()
				if ok != (len(model) > 0) {
					t.Fatalf("pc %d: PopFront ok=%v with model size %d", pc, ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("pc %d: PopFront = %d, model front %d", pc, v, model[0])
					}
					model = model[1:]
				}
			case 3: // Front
				v, ok := d.Front()
				if ok != (len(model) > 0) {
					t.Fatalf("pc %d: Front ok=%v with model size %d", pc, ok, len(model))
				}
				if ok && v != model[0] {
					t.Fatalf("pc %d: Front = %d, model front %d", pc, v, model[0])
				}
			case 4: // InsertAt
				i := 0
				if n := d.Len() + 1; n > 0 {
					i = int(op>>3) % n
				}
				d.InsertAt(i, next)
				model = append(model, 0)
				copy(model[i+1:], model[i:])
				model[i] = next
				next++
			case 5: // RemoveAt
				if len(model) == 0 {
					continue
				}
				i := int(op>>3) % len(model)
				v := d.RemoveAt(i)
				if v != model[i] {
					t.Fatalf("pc %d: RemoveAt(%d) = %d, model %d", pc, i, v, model[i])
				}
				model = append(model[:i], model[i+1:]...)
			case 6: // Clear
				d.Clear()
				model = model[:0]
			case 7: // full scan via At
				for i := range model {
					if d.At(i) != model[i] {
						t.Fatalf("pc %d: At(%d) = %d, model %d", pc, i, d.At(i), model[i])
					}
				}
			}
			if d.Len() != len(model) {
				t.Fatalf("pc %d: Len = %d, model size %d", pc, d.Len(), len(model))
			}
		}
	})
}
