package deque

import (
	"math/rand"
	"testing"
)

func TestFIFO(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := d.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := d.PopFront(); ok {
		t.Fatal("PopFront on empty deque reported ok")
	}
}

func TestPushFront(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 50; i++ {
		d.PushFront(i)
	}
	for i := 49; i >= 0; i-- {
		v, _ := d.PopFront()
		if v != i {
			t.Fatalf("PopFront = %d, want %d", v, i)
		}
	}
}

func TestAtAndFront(t *testing.T) {
	var d Deque[string]
	if _, ok := d.Front(); ok {
		t.Fatal("Front on empty deque reported ok")
	}
	d.PushBack("a")
	d.PushBack("b")
	d.PushFront("z")
	want := []string{"z", "a", "b"}
	for i, w := range want {
		if got := d.At(i); got != w {
			t.Fatalf("At(%d) = %q, want %q", i, got, w)
		}
	}
	if v, _ := d.Front(); v != "z" {
		t.Fatalf("Front = %q, want z", v)
	}
}

// TestRemoveAtAgainstSlice cross-checks a long random operation sequence
// against a reference slice implementation.
func TestRemoveAtAgainstSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var d Deque[int]
	var ref []int
	next := 0
	for step := 0; step < 20000; step++ {
		if d.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, d.Len(), len(ref))
		}
		switch op := rng.Intn(6); {
		case op == 0 || len(ref) == 0:
			d.PushBack(next)
			ref = append(ref, next)
			next++
		case op == 1:
			d.PushFront(next)
			ref = append([]int{next}, ref...)
			next++
		case op == 2:
			v, _ := d.PopFront()
			if v != ref[0] {
				t.Fatalf("step %d: PopFront = %d, want %d", step, v, ref[0])
			}
			ref = ref[1:]
		case op == 3:
			i := rng.Intn(len(ref) + 1)
			d.InsertAt(i, next)
			ref = append(ref[:i], append([]int{next}, ref[i:]...)...)
			next++
		default:
			i := rng.Intn(len(ref))
			v := d.RemoveAt(i)
			if v != ref[i] {
				t.Fatalf("step %d: RemoveAt(%d) = %d, want %d", step, i, v, ref[i])
			}
			ref = append(ref[:i], ref[i+1:]...)
		}
	}
	for i, w := range ref {
		if got := d.At(i); got != w {
			t.Fatalf("final At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestClear(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 10; i++ {
		d.PushBack(i)
	}
	d.Clear()
	if d.Len() != 0 {
		t.Fatalf("Len after Clear = %d", d.Len())
	}
	d.PushBack(7)
	if v, _ := d.PopFront(); v != 7 {
		t.Fatalf("PopFront after Clear = %d, want 7", v)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	var d Deque[int]
	d.PushBack(1)
	for _, f := range []func(){
		func() { d.At(1) },
		func() { d.At(-1) },
		func() { d.RemoveAt(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestSteadyStateNoAlloc guards the hot-path property the scheduler relies
// on: once grown, push/pop cycles do not allocate.
func TestSteadyStateNoAlloc(t *testing.T) {
	var d Deque[*int]
	x := new(int)
	for i := 0; i < 16; i++ {
		d.PushBack(x)
	}
	for d.Len() > 0 {
		d.PopFront()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			d.PushBack(x)
		}
		for d.Len() > 0 {
			d.PopFront()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %v times per run", allocs)
	}
}
