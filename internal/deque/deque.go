// Package deque provides a growable ring-buffer double-ended queue.
//
// It replaces the two O(n) queue idioms the simulator's hot paths grew up
// with: the `q = q[1:]` slice-shift FIFO (which strands backing capacity
// and forces reallocating appends) and the `append([]*T{x}, q...)`
// front-insert (which copies the whole queue per wake-up). All deque
// operations except RemoveAt are O(1) amortized and allocation-free once
// the ring has grown to its steady-state capacity.
package deque

// Deque is a double-ended queue over a power-of-two ring buffer. The zero
// value is an empty deque ready for use.
type Deque[T any] struct {
	buf  []T // len(buf) is always zero or a power of two
	head int // index of the front element when n > 0
	n    int
}

// Len returns the number of queued elements.
func (d *Deque[T]) Len() int { return d.n }

// PushBack appends v at the back.
func (d *Deque[T]) PushBack(v T) {
	d.ensure()
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = v
	d.n++
}

// PushFront inserts v at the front.
func (d *Deque[T]) PushFront(v T) {
	d.ensure()
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.n++
}

// PopFront removes and returns the front element; ok is false on an empty
// deque.
func (d *Deque[T]) PopFront() (v T, ok bool) {
	if d.n == 0 {
		return v, false
	}
	v = d.buf[d.head]
	var zero T
	d.buf[d.head] = zero // release references for GC
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return v, true
}

// Front returns the front element without removing it; ok is false on an
// empty deque.
func (d *Deque[T]) Front() (v T, ok bool) {
	if d.n == 0 {
		return v, false
	}
	return d.buf[d.head], true
}

// At returns the i-th element from the front. It panics when i is out of
// range, mirroring slice indexing.
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.n {
		panic("deque: index out of range")
	}
	return d.buf[(d.head+i)&(len(d.buf)-1)]
}

// shiftRightRaw moves count ring elements starting at raw index s one
// slot toward higher raw indices (mod len), using bulk copies: the moved
// range is at most two contiguous segments plus one wrapping element.
func (d *Deque[T]) shiftRightRaw(s, count int) {
	if count <= 0 {
		return
	}
	buf := d.buf
	n := len(buf)
	if s+count <= n {
		if s+count < n {
			copy(buf[s+1:s+count+1], buf[s:s+count])
		} else {
			buf[0] = buf[n-1]
			copy(buf[s+1:], buf[s:n-1])
		}
		return
	}
	e := s + count - n
	copy(buf[1:e+1], buf[:e])
	buf[0] = buf[n-1]
	copy(buf[s+1:], buf[s:n-1])
}

// shiftLeftRaw moves count ring elements starting at raw index s one slot
// toward lower raw indices (mod len).
func (d *Deque[T]) shiftLeftRaw(s, count int) {
	if count <= 0 {
		return
	}
	buf := d.buf
	n := len(buf)
	if s == 0 {
		buf[n-1] = buf[0]
		copy(buf[:count-1], buf[1:count])
		return
	}
	if s+count <= n {
		copy(buf[s-1:s+count-1], buf[s:s+count])
		return
	}
	e := s + count - n
	copy(buf[s-1:], buf[s:])
	buf[n-1] = buf[0]
	copy(buf[:e-1], buf[1:e])
}

// InsertAt inserts v so it becomes the i-th element from the front,
// preserving the order of the others. It shifts the shorter side, so the
// cost is O(min(i, n-i)). It panics when i is outside [0, Len()].
func (d *Deque[T]) InsertAt(i int, v T) {
	if i < 0 || i > d.n {
		panic("deque: index out of range")
	}
	d.ensure()
	mask := len(d.buf) - 1
	if i < d.n-i {
		// Shift the front half back by one.
		d.head = (d.head - 1) & mask
		d.shiftLeftRaw((d.head+1)&mask, i)
	} else {
		// Shift the back half forward by one.
		d.shiftRightRaw((d.head+i)&mask, d.n-i)
	}
	d.buf[(d.head+i)&mask] = v
	d.n++
}

// RemoveAt removes and returns the i-th element from the front, preserving
// the order of the remaining elements. It shifts the shorter side, so the
// cost is O(min(i, n-i)). It panics when i is out of range.
func (d *Deque[T]) RemoveAt(i int) T {
	if i < 0 || i >= d.n {
		panic("deque: index out of range")
	}
	mask := len(d.buf) - 1
	v := d.buf[(d.head+i)&mask]
	var zero T
	if i < d.n-i-1 {
		// Shift the front half back by one.
		d.shiftRightRaw(d.head, i)
		d.buf[d.head] = zero
		d.head = (d.head + 1) & mask
	} else {
		// Shift the back half forward by one.
		d.shiftLeftRaw((d.head+i+1)&mask, d.n-i-1)
		d.buf[(d.head+d.n-1)&mask] = zero
	}
	d.n--
	return v
}

// Clear empties the deque, keeping its capacity.
func (d *Deque[T]) Clear() {
	var zero T
	mask := len(d.buf) - 1
	for i := 0; i < d.n; i++ {
		d.buf[(d.head+i)&mask] = zero
	}
	d.head, d.n = 0, 0
}

// ensure grows the ring when full, unwrapping the elements into the new
// buffer.
func (d *Deque[T]) ensure() {
	if d.n < len(d.buf) {
		return
	}
	size := len(d.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	mask := len(d.buf) - 1
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)&mask]
	}
	d.buf, d.head = buf, 0
}
