package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// runner.go executes a set of experiments concurrently. The simulation rigs
// are independent (each experiment builds its own machine, store and
// engine), so a batch like `elasticbench run fig4 fig19 consolidation
// -parallel 4` parallelizes perfectly across host cores.

// Report is the outcome of one experiment in a batch: exactly one of
// Result and Err is set.
type Report struct {
	Name    string
	Result  *Result
	Err     error
	Elapsed time.Duration
}

// Runner executes experiments with a bounded worker pool.
type Runner struct {
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
	// Config scales every experiment of the batch.
	Config Config
	// Observe, when non-nil, supplies a per-experiment Observer (the CLI
	// uses it to prefix status lines with the experiment name).
	Observe func(experiment string) Observer
}

// Run executes the experiments and returns one Report per input, in input
// order. A failing experiment contributes its error to its own Report
// instead of aborting the batch; cancelling ctx stops unstarted
// experiments immediately (their reports carry ctx.Err()) and running ones
// at their next phase boundary.
func (r *Runner) Run(ctx context.Context, exps ...Experiment) []Report {
	reports := make([]Report, len(exps))
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				reports[i] = r.runOne(ctx, exps[i])
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return reports
}

func (r *Runner) runOne(ctx context.Context, e Experiment) Report {
	rep := Report{Name: e.Name()}
	if err := ctx.Err(); err != nil {
		rep.Err = err
		return rep
	}
	var obs Observer
	if r.Observe != nil {
		obs = r.Observe(e.Name())
	}
	start := time.Now()
	rep.Result, rep.Err = e.Run(ctx, r.Config, obs)
	rep.Elapsed = time.Since(start)
	return rep
}

// RunNames resolves names in the default registry and runs them. Every
// name is validated before any experiment starts, so a typo in a batch
// fails fast instead of surfacing after minutes of work.
func (r *Runner) RunNames(ctx context.Context, names ...string) ([]Report, error) {
	exps, err := Resolve(names...)
	if err != nil {
		return nil, err
	}
	return r.Run(ctx, exps...), nil
}

// Resolve maps names to registered experiments, rejecting unknown names
// up front. The special name "all" expands to the whole registry.
func Resolve(names ...string) ([]Experiment, error) {
	var exps []Experiment
	var unknown []string
	for _, name := range names {
		if name == "all" {
			exps = append(exps, All()...)
			continue
		}
		if e, ok := Lookup(name); ok {
			exps = append(exps, e)
		} else {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("experiments: unknown experiment(s) %v; known: %v", unknown, Names())
	}
	return exps, nil
}
