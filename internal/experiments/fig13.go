package experiments

import (
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/workload"
)

// fig13.go reproduces Figure 13: the thetasubselect workload (45%
// selectivity over l_quantity) under increasing concurrency across the
// four configurations {OS, Dense, Sparse, Adaptive}, reporting
// (a) throughput, (b) CPU load, (c) tasks, (d) stolen tasks.

// Fig13Row is one (mode, users) measurement.
type Fig13Row struct {
	Mode        workload.Mode
	Users       int
	Throughput  float64
	CPULoad     float64
	Tasks       uint64
	StolenTasks uint64
}

// Fig13Result is the full sweep.
type Fig13Result struct {
	Rows []Fig13Row
}

// Row returns the measurement for (mode, users), or nil.
func (r *Fig13Result) Row(mode workload.Mode, users int) *Fig13Row {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode && r.Rows[i].Users == users {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the four panels as one table.
func (r *Fig13Result) String() string {
	t := &table{header: []string{"mode", "users", "q/s", "cpu%", "tasks", "stolen"}}
	for _, row := range r.Rows {
		t.add(row.Mode.String(), fmt.Sprint(row.Users), f3(row.Throughput),
			f2(row.CPULoad), fmt.Sprint(row.Tasks), fmt.Sprint(row.StolenTasks))
	}
	return "Figure 13: thetasubselect under increasing concurrency\n" + t.String()
}

// RunFig13 executes the sweep.
func RunFig13(c Config) (*Fig13Result, error) {
	c = c.withDefaults()
	res := &Fig13Result{}
	for _, users := range c.Users {
		for _, mode := range workload.AllModes {
			r, err := newRig(c, mode, nil)
			if err != nil {
				return nil, err
			}
			tasksBefore := r.Engine.TasksExecuted
			d := &workload.Driver{Rig: r, QueriesPerClient: 1}
			phase := d.Run(users, func(cl, k int) *db.Plan { return thetaPlan(0.45) })
			row := Fig13Row{
				Mode:        mode,
				Users:       users,
				Throughput:  phase.Throughput,
				CPULoad:     phase.Window.CPULoad(nil),
				Tasks:       r.Engine.TasksExecuted - tasksBefore,
				StolenTasks: phase.Sched.StolenTasks,
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}
