package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/workload"
)

// fig13.go reproduces Figure 13: the thetasubselect workload (45%
// selectivity over l_quantity) under increasing concurrency across the
// four configurations {OS, Dense, Sparse, Adaptive}, reporting
// (a) throughput, (b) CPU load, (c) tasks, (d) stolen tasks.

// Fig13Row is one (mode, users) measurement.
type Fig13Row struct {
	Mode        workload.Mode
	Users       int
	Throughput  float64
	CPULoad     float64
	Tasks       uint64
	StolenTasks uint64
}

// Fig13Result is the typed view of the fig13 Result.
type Fig13Result struct {
	*Result
	Rows []Fig13Row
}

// Row returns the measurement for (mode, users), or nil.
func (r *Fig13Result) Row(mode workload.Mode, users int) *Fig13Row {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode && r.Rows[i].Users == users {
			return &r.Rows[i]
		}
	}
	return nil
}

// runFig13 executes the sweep.
func runFig13(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	sweep := res.AddTable("sweep",
		colS("mode"), colI("users"), colF("q/s", 3), colF("cpu%", 2), colI("tasks"), colI("stolen"))
	for i, users := range c.Users {
		users := users
		err := phase(ctx, obs, fmt.Sprintf("users=%d", users), func() error {
			for _, mode := range workload.AllModes {
				r, err := newRig(c, mode, nil)
				if err != nil {
					return err
				}
				tasksBefore := r.Engine.TasksExecuted
				d := &workload.Driver{Rig: r, QueriesPerClient: 1}
				ph := d.Run(users, func(cl, k int) *db.Plan { return thetaPlan(0.45) })
				sweep.AddRow(mode.String(), users, ph.Throughput, ph.Window.CPULoad(nil),
					r.Engine.TasksExecuted-tasksBefore, ph.Sched.StolenTasks)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(c.Users))
	}
	return res, nil
}

// fig13ResultFrom decodes the generic Result into the typed view.
func fig13ResultFrom(res *Result) (*Fig13Result, error) {
	sweep := res.Table("sweep")
	if sweep == nil {
		return nil, fmt.Errorf("experiments: fig13 result missing sweep table")
	}
	out := &Fig13Result{Result: res}
	for i := range sweep.Rows {
		name, _ := sweep.Str(i, 0)
		mode, ok := modeByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: fig13 unknown mode %q", name)
		}
		users, _ := sweep.Int(i, 1)
		tput, _ := sweep.Float(i, 2)
		load, _ := sweep.Float(i, 3)
		tasks, _ := sweep.Int(i, 4)
		stolen, _ := sweep.Int(i, 5)
		out.Rows = append(out.Rows, Fig13Row{
			Mode: mode, Users: int(users), Throughput: tput, CPULoad: load,
			Tasks: uint64(tasks), StolenTasks: uint64(stolen),
		})
	}
	return out, nil
}

// RunFig13 executes the sweep through the registry and returns the typed
// view.
func RunFig13(c Config) (*Fig13Result, error) {
	res, err := run("fig13", c)
	if err != nil {
		return nil, err
	}
	return fig13ResultFrom(res)
}
