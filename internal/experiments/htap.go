package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/tenant"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// htap.go sweeps a heterogeneous HTAP mix across the point-lookup:scan
// ratio: every tenant of a consolidated rig submits a seed-deterministic
// blend of single-row order lookups (OLTP) and scan/join/aggregate
// pipelines (OLAP, hand-written TPC-H plans alternating with compiled
// declarative ad-hoc shapes — see tpch.HTAPMixer). Per-query completion
// hooks split throughput and latency by class, exposing how the short
// transactional tail behaves as analytic pressure grows.

// htapQueriesPerClient is each client stream's length per sweep point —
// long enough that both classes appear at middling ratios, short enough
// that a full sweep stays in the golden-test time budget.
const htapQueriesPerClient = 4

// htapClass accumulates one query class's completions within a tenant.
type htapClass struct {
	n          int
	latencySum float64 // seconds
}

func (c htapClass) meanMS() float64 {
	if c.n == 0 {
		return 0
	}
	return c.latencySum / float64(c.n) * 1e3
}

// runHTAPMix executes the sweep: one consolidated multi-tenant rig per
// ratio, every tenant running the mixed stream against its own dataset.
func runHTAPMix(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	tb := res.AddTable("mix",
		colF("ratio", 2), colS("tenant"), colI("lookups"), colI("scans"),
		colF("q/s", 3), colF("lookup-ms", 3), colF("scan-ms", 3),
		colF("mean-cores", 2))

	machineCores := 0
	for ri, ratio := range c.LookupRatios {
		specs := make([]workload.TenantSpec, c.Tenants)
		for i := range specs {
			specs[i] = workload.TenantSpec{
				Name:      fmt.Sprintf("tenant%d", i),
				SF:        c.SF,
				Seed:      c.Seed + uint64(i),
				Mode:      workload.ModeDense,
				SLA:       tenant.SLA{Weight: 1, MinCores: 1},
				Placement: c.Placement,
			}
		}
		var rig *workload.MultiRig
		var phaseRes *workload.MultiPhaseResult
		lookups := make([]htapClass, c.Tenants)
		scans := make([]htapClass, c.Tenants)
		err := phase(ctx, obs, fmt.Sprintf("ratio %.2f", ratio), func() error {
			aggregateSF := float64(c.Tenants) * c.SF
			topo, err := c.machineTopology(aggregateSF)
			if err != nil {
				return err
			}
			rig, err = workload.NewMultiRig(workload.MultiOptions{
				Tenants:  specs,
				Topology: topo,
				Naive:    c.Naive,
				Bus:      c.Bus,
			})
			if err != nil {
				return err
			}
			loads := make([]workload.TenantLoad, c.Tenants)
			for i, tr := range rig.Tenants {
				mixer := tpch.HTAPMixer{
					Store:       tr.Store,
					OrderRows:   tr.Dataset.Sizes.Orders,
					Seed:        c.Seed*131 + uint64(i),
					LookupRatio: ratio,
				}
				cyclesToSeconds := rig.Machine.Topology().CyclesToSeconds
				i := i
				loads[i] = workload.TenantLoad{
					Clients:          c.Clients,
					QueriesPerClient: htapQueriesPerClient,
					Plan:             mixer.Plan,
					OnDone: func(client, k int, q *db.Query) {
						cls := &scans[i]
						if mixer.IsLookup(client, k) {
							cls = &lookups[i]
						}
						cls.n++
						cls.latencySum += cyclesToSeconds(q.ElapsedCycles())
					},
				}
			}
			phaseRes, err = rig.Run(loads, 0, 0)
			return err
		})
		if err != nil {
			return nil, err
		}
		machineCores = phaseRes.MachineCores
		for i, tr := range phaseRes.Tenants {
			if got := lookups[i].n + scans[i].n; got != tr.Completed {
				return nil, fmt.Errorf("experiments: htap-mix class counts %d != %d completions (tenant %s)",
					got, tr.Completed, tr.Tenant)
			}
			tb.AddRow(ratio, tr.Tenant, lookups[i].n, scans[i].n,
				tr.Throughput, lookups[i].meanMS(), scans[i].meanMS(),
				tr.MeanCores)
		}
		obs.Progress(ri+1, len(c.LookupRatios))
	}
	res.AddMetric("machine_cores", float64(machineCores), "cores")
	res.AddMetric("ratio_points", float64(len(c.LookupRatios)), "")
	res.AddMetric("queries_per_point", float64(c.Tenants*c.Clients*htapQueriesPerClient), "")
	return res, nil
}
