package experiments

import (
	"testing"

	"elasticore/internal/elastic"
)

// topology_test.go covers the topology-sweep experiment: golden
// renderings, fast-vs-naive bit-equivalence across machine shapes (the
// acceptance bar names 2socket, 4ring and 8twisted; the sweep covers
// those plus opteron and epyc in one run), structural completeness and
// the Config.Topology plumbing that lets any rig experiment swap shapes.

// TestGoldenTopologySweep pins the sweep's text, JSON and CSV renderings.
func TestGoldenTopologySweep(t *testing.T) {
	res := goldenRun(t, "topology-sweep")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestNaiveTopologySweepMatchesGolden is the equivalence half: the
// pre-optimization simulator paths must reproduce the golden renderings
// bit for bit on every swept topology — including the non-testbed
// shapes, whose distance matrices exercise the memoized DRAM-cost path
// with hop counts the Opteron never produces.
func TestNaiveTopologySweepMatchesGolden(t *testing.T) {
	res := naiveGoldenRun(t, "topology-sweep")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestTopologySweepCoversZooTimesPlacements: one row per (topology,
// placement), positive throughput and memory traffic everywhere.
func TestTopologySweepCoversZooTimesPlacements(t *testing.T) {
	res, err := RunTopologySweep(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(sweepZoo) * len(elastic.Placements())
	if len(res.Rows) != wantRows {
		t.Fatalf("%d rows, want %d (topologies x placements)", len(res.Rows), wantRows)
	}
	for _, zt := range sweepZoo {
		for _, p := range elastic.Placements() {
			row := res.Row(zt.name, p.Name())
			if row == nil {
				t.Errorf("no row for %s x %s", zt.name, p.Name())
				continue
			}
			if row.Throughput <= 0 || row.IMCMB <= 0 {
				t.Errorf("%s x %s: throughput %.3f, IMC %.2f MB; want positive",
					zt.name, p.Name(), row.Throughput, row.IMCMB)
			}
			if row.AllocCores < 1 || row.AllocCores > row.Cores {
				t.Errorf("%s x %s: allocation %d outside 1..%d",
					zt.name, p.Name(), row.AllocCores, row.Cores)
			}
		}
	}
}

// TestTopologySweepHopAwareBeatsScatter pins the sweep's reason to
// exist: on every machine shape, hop-aware placement must be at least
// as NUMA-friendly (HT/IMC, smaller is better) as the topology-blind
// scatter baseline.
func TestTopologySweepHopAwareBeatsScatter(t *testing.T) {
	res, err := RunTopologySweep(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, zt := range sweepZoo {
		scatter := res.Row(zt.name, "scatter")
		for _, name := range []string{"node-fill", "hop-min"} {
			aware := res.Row(zt.name, name)
			if aware == nil || scatter == nil {
				t.Fatalf("%s: missing rows", zt.name)
			}
			if aware.HTIMC > scatter.HTIMC {
				t.Errorf("%s: %s ht/imc %.3f worse than scatter %.3f",
					zt.name, name, aware.HTIMC, scatter.HTIMC)
			}
		}
	}
}

// TestConfigTopologySwapsShape: Config.Topology must put any rig
// experiment on the named machine; fig4 on the two-socket machine must
// report a run (and the meta echoes the config unchanged).
func TestConfigTopologySwapsShape(t *testing.T) {
	cfg := goldenConfig()
	cfg.Users = []int{2}
	cfg.Topology = "2socket"
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("fig4 on 2socket produced no rows")
	}
	for _, row := range res.Rows {
		if row.Throughput <= 0 {
			t.Errorf("%s users=%d: throughput %.3f", row.Config, row.Users, row.Throughput)
		}
	}
}

// TestConfigRejectsBadTopology: validation is central, so a bad shape
// fails before any rig is built.
func TestConfigRejectsBadTopology(t *testing.T) {
	cfg := goldenConfig()
	cfg.Topology = "9x9"
	if _, err := RunFig4(cfg); err == nil {
		t.Error("9x9 (81 cores) accepted")
	}
	cfg.Topology = "not-a-shape"
	if _, err := RunFig4(cfg); err == nil {
		t.Error("malformed topology accepted")
	}
}
