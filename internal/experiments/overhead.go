package experiments

import (
	"context"
	"fmt"
	"time"

	"elasticore/internal/numa"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// overhead.go reproduces the mechanism-overhead measurement of Section V:
// "the flow of tokens in a 5x8 matrix to trigger a transition" — the cost
// of one control step (sample counters, evaluate the net, act) for each
// allocation mode. The paper measured dense 0.017 s < sparse 0.021 s <
// adaptive 0.031 s; the shape target is the same ordering with the
// adaptive mode the most expensive (it maintains the priority queue).

// OverheadResult is the typed view of the overhead Result.
type OverheadResult struct {
	*Result
	// PerStep is the mean wall-clock cost of one Mechanism.Step.
	PerStep map[workload.Mode]time.Duration
	Steps   int
}

// overheadModes are the modes whose control step is timed.
var overheadModes = []workload.Mode{workload.ModeDense, workload.ModeSparse, workload.ModeAdaptive}

// mustTopo returns the default topology (shared helper).
func mustTopo() *numa.Topology { return numa.Opteron8387() }

// runOverhead times steps Mechanism.Step calls per mode on a loaded rig
// with background work, in host wall-clock time.
func runOverhead(ctx context.Context, c Config, obs Observer, steps int) (*Result, error) {
	if steps <= 0 {
		steps = 1000
	}
	res := &Result{}
	tb := res.AddTable("steps", colS("mode"), colD("per-step"))
	for i, mode := range overheadModes {
		mode := mode
		err := phase(ctx, obs, "mode="+mode.String(), func() error {
			r, err := newRig(c, mode, nil)
			if err != nil {
				return err
			}
			// Background load so counters and residency are non-trivial.
			for i := 0; i < 8; i++ {
				r.Engine.Submit(tpch.BuildQ6(uint64(i)))
			}
			for i := 0; i < 20; i++ {
				r.Sched.Tick()
			}
			start := time.Now()
			for i := 0; i < steps; i++ {
				r.Mech.Step()
				r.Sched.Tick()
			}
			tb.AddRow(mode.String(), time.Since(start)/time.Duration(steps))
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(overheadModes))
	}
	res.AddMetric("steps", float64(steps), "")
	return res, nil
}

// overheadResultFrom decodes the generic Result into the typed view.
func overheadResultFrom(res *Result) (*OverheadResult, error) {
	tb := res.Table("steps")
	if tb == nil {
		return nil, fmt.Errorf("experiments: overhead result missing steps table")
	}
	out := &OverheadResult{Result: res, PerStep: map[workload.Mode]time.Duration{}}
	steps, _ := res.Metric("steps")
	out.Steps = int(steps)
	for i := range tb.Rows {
		name, _ := tb.Str(i, 0)
		mode, ok := modeByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: overhead unknown mode %q", name)
		}
		d, _ := tb.Dur(i, 1)
		out.PerStep[mode] = d
	}
	return out, nil
}

// MeasureOverhead times the control step through the Experiment machinery
// with a caller-chosen step count and returns the typed view.
func MeasureOverhead(c Config, steps int) (*OverheadResult, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	e, ok := Lookup("overhead")
	if !ok {
		return nil, fmt.Errorf("experiments: overhead not registered")
	}
	// Run through the wrapper for meta stamping, but with the custom step
	// count threaded through a dedicated experiment instance.
	custom := New("overhead", e.Describe(), func(ctx context.Context, c Config, obs Observer) (*Result, error) {
		return runOverhead(ctx, c, obs, steps)
	})
	res, err := custom.Run(context.Background(), c, nil)
	if err != nil {
		return nil, err
	}
	return overheadResultFrom(res)
}
