package experiments

import (
	"fmt"
	"time"

	"elasticore/internal/numa"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// overhead.go reproduces the mechanism-overhead measurement of Section V:
// "the flow of tokens in a 5x8 matrix to trigger a transition" — the cost
// of one control step (sample counters, evaluate the net, act) for each
// allocation mode. The paper measured dense 0.017 s < sparse 0.021 s <
// adaptive 0.031 s; the shape target is the same ordering with the
// adaptive mode the most expensive (it maintains the priority queue).

// OverheadResult is the per-mode control-step cost.
type OverheadResult struct {
	// PerStep is the mean wall-clock cost of one Mechanism.Step.
	PerStep map[workload.Mode]time.Duration
	Steps   int
}

// String renders the comparison.
func (r *OverheadResult) String() string {
	t := &table{header: []string{"mode", "per-step"}}
	for _, m := range []workload.Mode{workload.ModeDense, workload.ModeSparse, workload.ModeAdaptive} {
		t.add(m.String(), r.PerStep[m].String())
	}
	return fmt.Sprintf("Mechanism overhead (token flow, %d steps averaged)\n%s", r.Steps, t.String())
}

// mustTopo returns the default topology (shared helper).
func mustTopo() *numa.Topology { return numa.Opteron8387() }

// MeasureOverhead times steps Mechanism.Step calls per mode on a loaded
// rig with background work, in host wall-clock time.
func MeasureOverhead(c Config, steps int) (*OverheadResult, error) {
	c = c.withDefaults()
	if steps <= 0 {
		steps = 1000
	}
	res := &OverheadResult{PerStep: map[workload.Mode]time.Duration{}, Steps: steps}
	for _, mode := range []workload.Mode{workload.ModeDense, workload.ModeSparse, workload.ModeAdaptive} {
		r, err := newRig(c, mode, nil)
		if err != nil {
			return nil, err
		}
		// Background load so counters and residency are non-trivial.
		for i := 0; i < 8; i++ {
			r.Engine.Submit(tpch.BuildQ6(uint64(i)))
		}
		for i := 0; i < 20; i++ {
			r.Sched.Tick()
		}
		start := time.Now()
		for i := 0; i < steps; i++ {
			r.Mech.Step()
			r.Sched.Tick()
		}
		res.PerStep[mode] = time.Since(start) / time.Duration(steps)
	}
	return res, nil
}
