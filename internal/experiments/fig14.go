package experiments

import (
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/workload"
)

// fig14.go reproduces Figure 14: per-socket memory-access metrics at the
// highest concurrency of the thetasubselect workload — (a) L3 load
// misses, (b) memory throughput, (c) HT traffic — across the four modes.

// Fig14Row is one mode's per-socket measurements.
type Fig14Row struct {
	Mode workload.Mode
	// L3MissesPerSocket and MemTPPerSocket are indexed by NodeID.
	L3MissesPerSocket []uint64
	MemTPPerSocket    []float64 // GB/s
	HTGBPerS          float64
	TotalL3Misses     uint64
}

// Fig14Result is the four-mode comparison.
type Fig14Result struct {
	Clients int
	Rows    []Fig14Row
}

// Row returns the measurement for the mode, or nil.
func (r *Fig14Result) Row(mode workload.Mode) *Fig14Row {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the three panels.
func (r *Fig14Result) String() string {
	t := &table{header: []string{"mode", "L3miss S0", "S1", "S2", "S3", "memTP GB/s S0", "S1", "S2", "S3", "HT GB/s"}}
	for _, row := range r.Rows {
		cells := []string{row.Mode.String()}
		for _, m := range row.L3MissesPerSocket {
			cells = append(cells, fmt.Sprint(m))
		}
		for _, tp := range row.MemTPPerSocket {
			cells = append(cells, f3(tp))
		}
		cells = append(cells, f3(row.HTGBPerS))
		t.add(cells...)
	}
	return fmt.Sprintf("Figure 14: memory access metrics with %d clients\n%s", r.Clients, t.String())
}

// RunFig14 executes the comparison.
func RunFig14(c Config) (*Fig14Result, error) {
	c = c.withDefaults()
	res := &Fig14Result{Clients: c.Clients}
	for _, mode := range workload.AllModes {
		r, err := newRig(c, mode, nil)
		if err != nil {
			return nil, err
		}
		d := &workload.Driver{Rig: r, QueriesPerClient: 1}
		phase := d.Run(c.Clients, func(cl, k int) *db.Plan { return thetaPlan(0.45) })
		row := Fig14Row{Mode: mode}
		for _, n := range phase.Window.Nodes {
			row.L3MissesPerSocket = append(row.L3MissesPerSocket, n.L3Misses)
			row.TotalL3Misses += n.L3Misses
		}
		row.MemTPPerSocket = perNodeIMCThroughput(r.Machine.Topology(), phase.Window)
		if phase.ElapsedSeconds > 0 {
			row.HTGBPerS = float64(phase.Window.TotalHTBytes()) / phase.ElapsedSeconds / 1e9
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
