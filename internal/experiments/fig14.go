package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/workload"
)

// fig14.go reproduces Figure 14: per-socket memory-access metrics at the
// highest concurrency of the thetasubselect workload — (a) L3 load
// misses, (b) memory throughput, (c) HT traffic — across the four modes.

// Fig14Row is one mode's per-socket measurements.
type Fig14Row struct {
	Mode workload.Mode
	// L3MissesPerSocket and MemTPPerSocket are indexed by NodeID.
	L3MissesPerSocket []uint64
	MemTPPerSocket    []float64 // GB/s
	HTGBPerS          float64
	TotalL3Misses     uint64
}

// Fig14Result is the typed view of the fig14 Result.
type Fig14Result struct {
	*Result
	Clients int
	Rows    []Fig14Row
}

// Row returns the measurement for the mode, or nil.
func (r *Fig14Result) Row(mode workload.Mode) *Fig14Row {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// runFig14 executes the comparison.
func runFig14(ctx context.Context, c Config, obs Observer) (*Result, error) {
	var rows []Fig14Row
	for i, mode := range workload.AllModes {
		mode := mode
		err := phase(ctx, obs, "mode="+mode.String(), func() error {
			r, err := newRig(c, mode, nil)
			if err != nil {
				return err
			}
			d := &workload.Driver{Rig: r, QueriesPerClient: 1}
			ph := d.Run(c.Clients, func(cl, k int) *db.Plan { return thetaPlan(0.45) })
			row := Fig14Row{Mode: mode}
			for _, n := range ph.Window.Nodes {
				row.L3MissesPerSocket = append(row.L3MissesPerSocket, n.L3Misses)
				row.TotalL3Misses += n.L3Misses
			}
			row.MemTPPerSocket = perNodeIMCThroughput(r.Machine.Topology(), ph.Window)
			if ph.ElapsedSeconds > 0 {
				row.HTGBPerS = float64(ph.Window.TotalHTBytes()) / ph.ElapsedSeconds / 1e9
			}
			rows = append(rows, row)
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(workload.AllModes))
	}

	// The socket count is a property of the machine model, so the table
	// schema is built from the measurements.
	sockets := 0
	if len(rows) > 0 {
		sockets = len(rows[0].L3MissesPerSocket)
	}
	cols := []Column{colS("mode")}
	for s := 0; s < sockets; s++ {
		cols = append(cols, colI(fmt.Sprintf("L3miss S%d", s)))
	}
	for s := 0; s < sockets; s++ {
		cols = append(cols, colF(fmt.Sprintf("memTP GB/s S%d", s), 3))
	}
	cols = append(cols, colF("HT GB/s", 3), colI("L3 total"))
	res := &Result{}
	tb := res.AddTable("sockets", cols...)
	for _, row := range rows {
		cells := []any{row.Mode.String()}
		for _, m := range row.L3MissesPerSocket {
			cells = append(cells, m)
		}
		for _, tp := range row.MemTPPerSocket {
			cells = append(cells, tp)
		}
		cells = append(cells, row.HTGBPerS, row.TotalL3Misses)
		tb.AddRow(cells...)
	}
	res.AddMetric("sockets", float64(sockets), "")
	return res, nil
}

// fig14ResultFrom decodes the generic Result into the typed view.
func fig14ResultFrom(res *Result) (*Fig14Result, error) {
	tb := res.Table("sockets")
	if tb == nil {
		return nil, fmt.Errorf("experiments: fig14 result missing sockets table")
	}
	socketsF, _ := res.Metric("sockets")
	sockets := int(socketsF)
	out := &Fig14Result{Result: res, Clients: res.Meta.Clients}
	for i := range tb.Rows {
		name, _ := tb.Str(i, 0)
		mode, ok := modeByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: fig14 unknown mode %q", name)
		}
		row := Fig14Row{Mode: mode}
		col := 1
		for s := 0; s < sockets; s++ {
			m, _ := tb.Int(i, col)
			row.L3MissesPerSocket = append(row.L3MissesPerSocket, uint64(m))
			row.TotalL3Misses += uint64(m)
			col++
		}
		for s := 0; s < sockets; s++ {
			tp, _ := tb.Float(i, col)
			row.MemTPPerSocket = append(row.MemTPPerSocket, tp)
			col++
		}
		row.HTGBPerS, _ = tb.Float(i, col)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// RunFig14 executes the comparison through the registry and returns the
// typed view.
func RunFig14(c Config) (*Fig14Result, error) {
	res, err := run("fig14", c)
	if err != nil {
		return nil, err
	}
	return fig14ResultFrom(res)
}
