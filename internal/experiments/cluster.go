package experiments

import (
	"context"
	"fmt"
	"math"

	"elasticore/internal/arrivals"
	"elasticore/internal/cluster"
	"elasticore/internal/faults"
	"elasticore/internal/hashmix"
	"elasticore/internal/workload"
)

// cluster.go hosts the fleet experiments: the paper's single-machine
// mechanism scaled out behind internal/cluster's Coordinator.
//
//   - scale-out: one fixed offered stream against fleets of 1..Machines
//     machines sharing one sharded dataset — the speedup curve.
//   - shard-skew: Zipf-skewed shard heat at fixed fleet size — what
//     hash-partitioning costs when the keys stop being uniform.
//   - rebalance-cost: a hot shard that shifts machines mid-run under a
//     contended cluster core budget — what the second control tier pays
//     (migration latency per moved core) to follow the heat.

// scaleOutPoints returns the machine-count sweep: powers of two up to
// max, plus max itself when it is not a power of two.
func scaleOutPoints(max int) []int {
	var pts []int
	for m := 1; m <= max; m *= 2 {
		pts = append(pts, m)
	}
	if last := pts[len(pts)-1]; last != max {
		pts = append(pts, max)
	}
	return pts
}

// uniformKeys returns a deterministic uniform-over-shards key stream
// for a coordinator (the k-th request's routing key).
func uniformKeys(sh *cluster.Sharder, seed uint64) func(k int) uint64 {
	return func(k int) uint64 {
		shard := int(hashmix.Mix64(seed^uint64(k+1)) % uint64(sh.Shards()))
		return sh.KeyForShard(shard, seed+uint64(k))
	}
}

// zipfShards returns a deterministic Zipf sampler over shards: shard r
// carries weight 1/(r+1)^theta (shard 0 hottest), sampled by inverse
// CDF from SplitMix64. theta 0 is uniform.
func zipfShards(shards int, theta float64, seed uint64) func(k int) int {
	cdf := make([]float64, shards)
	sum := 0.0
	for r := 0; r < shards; r++ {
		sum += math.Pow(float64(r+1), -theta)
		cdf[r] = sum
	}
	return func(k int) int {
		u := float64(hashmix.Mix64(seed^uint64(k+1)*hashmix.Golden)) / float64(^uint64(0)) * sum
		for r, c := range cdf {
			if u <= c {
				return r
			}
		}
		return shards - 1
	}
}

// newFleet builds a fleet from the experiment config at a given machine
// count (the per-machine dataset is the owned share of the total SF).
// Config.Replicas and Config.Faults flow into every fleet built here, so
// any cluster experiment can run replicated or under a failure plan.
func newFleet(c Config, machines int, mode workload.Mode) (*cluster.Fleet, error) {
	topo, err := c.machineTopology(c.SF)
	if err != nil {
		return nil, err
	}
	plan, err := faults.Parse(c.Faults) // validated in withDefaults
	if err != nil {
		return nil, err
	}
	return cluster.NewFleet(cluster.Options{
		Machines: machines,
		Shards:   c.Shards,
		SF:       c.SF,
		Seed:     c.Seed,
		Mode:     mode,
		Topology: topo,
		Naive:    c.Naive,
		Bus:      c.Bus,
		Replicas: c.Replicas,
		Faults:   plan,
		Workers:  c.Workers,
	})
}

// runScaleOut replays one fixed offered stream — rate and arrival count
// independent of fleet size — against growing fleets and reports the
// throughput speedup over one machine.
func runScaleOut(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	tbl := res.AddTable("scale_out",
		colI("machines"), colI("shards"), colI("offered"), colI("completed"),
		colI("dropped"), colF("tput(q/s)", 1), colF("speedup", 2),
		colF("p50(ms)", 3), colF("p99(ms)", 3))

	var sat float64
	err := phase(ctx, obs, "calibrate", func() (err error) {
		sat, err = calibrateSaturation(c)
		return err
	})
	if err != nil {
		return nil, err
	}
	// The offered load is fixed across the sweep at twice what the
	// largest fleet could serve if every machine ran at the one-machine
	// saturation rate: every point is saturated, so throughput measures
	// capacity and the curve is the speedup.
	rate := 2 * sat * float64(c.Machines)
	total := c.OpenArrivals * c.Machines
	horizon := 1.3 * float64(total) * (1/rate + 1/sat)

	points := scaleOutPoints(c.Machines)
	base := 0.0
	for i, m := range points {
		err := phase(ctx, obs, fmt.Sprintf("machines=%d", m), func() error {
			f, err := newFleet(c, m, workload.ModeDense)
			if err != nil {
				return err
			}
			coord := &cluster.Coordinator{
				Fleet:       f,
				Process:     arrivals.NewPoisson(rate, c.Seed+101),
				Keys:        uniformKeys(f.Sharder, c.Seed),
				MaxInFlight: openSessions(c),
				QueueCap:    8 * openSessions(c),
				MaxArrivals: total,
				MaxSeconds:  horizon,
			}
			r := coord.Run()
			if base == 0 {
				base = r.Throughput
			}
			speedup := 0.0
			if base > 0 {
				speedup = r.Throughput / base
			}
			topo := f.Rigs[0].Machine.Topology()
			ms := func(cyc uint64) float64 { return topo.CyclesToSeconds(cyc) * 1e3 }
			tbl.AddRow(m, f.Sharder.Shards(), r.Offered, r.Completed, r.Dropped,
				r.Throughput, speedup, ms(r.Latency.P50()), ms(r.Latency.P99()))
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(points))
	}
	res.AddMetric("saturation_tput_1", sat, "q/s")
	if n := len(tbl.Rows); n > 0 {
		s, _ := tbl.Float(n-1, 6)
		res.AddMetric("speedup_max", s, "x")
	}
	return res, nil
}

// runShardSkew routes Zipf-skewed shard heat at fixed fleet size and
// reports the imbalance and its throughput/latency cost.
func runShardSkew(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	tbl := res.AddTable("shard_skew",
		colF("theta", 1), colI("offered"), colI("completed"), colI("dropped"),
		colF("tput(q/s)", 1), colF("p50(ms)", 3), colF("p99(ms)", 3),
		colF("imbalance", 2), colI("hottest"))

	var sat float64
	err := phase(ctx, obs, "calibrate", func() (err error) {
		sat, err = calibrateSaturation(c)
		return err
	})
	if err != nil {
		return nil, err
	}
	// Moderate aggregate load: a uniform key stream spreads it
	// comfortably, a skewed one overloads the hot shard's owner — the
	// imbalance, not the total rate, is what hurts.
	rate := 0.6 * sat * float64(c.Machines)
	total := c.OpenArrivals * c.Machines
	horizon := 1.3 * float64(total) * (1/rate + 1/sat)

	thetas := []float64{0, 1, 2}
	for i, theta := range thetas {
		err := phase(ctx, obs, fmt.Sprintf("theta=%.1f", theta), func() error {
			f, err := newFleet(c, c.Machines, workload.ModeDense)
			if err != nil {
				return err
			}
			sh := f.Sharder
			pick := zipfShards(sh.Shards(), theta, c.Seed)
			coord := &cluster.Coordinator{
				Fleet:   f,
				Process: arrivals.NewPoisson(rate, c.Seed+211),
				Keys: func(k int) uint64 {
					return sh.KeyForShard(pick(k), c.Seed+uint64(k))
				},
				MaxInFlight: openSessions(c),
				QueueCap:    8 * openSessions(c),
				MaxArrivals: total,
				MaxSeconds:  horizon,
			}
			r := coord.Run()
			routedMax, routedSum, hottest := 0, 0, 0
			for m, st := range r.PerMachine {
				routedSum += st.Routed
				if st.Routed > routedMax {
					routedMax, hottest = st.Routed, m
				}
			}
			imbalance := 0.0
			if routedSum > 0 {
				imbalance = float64(routedMax) * float64(f.Machines()) / float64(routedSum)
			}
			topo := f.Rigs[0].Machine.Topology()
			ms := func(cyc uint64) float64 { return topo.CyclesToSeconds(cyc) * 1e3 }
			tbl.AddRow(theta, r.Offered, r.Completed, r.Dropped, r.Throughput,
				ms(r.Latency.P50()), ms(r.Latency.P99()), imbalance, hottest)
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(thetas))
	}
	res.AddMetric("saturation_tput_1", sat, "q/s")
	if n := len(tbl.Rows); n > 0 {
		uni, _ := tbl.Float(0, 7)
		worst, _ := tbl.Float(n-1, 7)
		res.AddMetric("imbalance_uniform", uni, "x")
		res.AddMetric("imbalance_max_skew", worst, "x")
	}
	return res, nil
}

// runRebalanceCost shifts a hot shard between machines mid-run under a
// contended cluster core budget and sweeps the migration latency the
// arbiter charges per moved core.
func runRebalanceCost(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	tbl := res.AddTable("rebalance_cost",
		colF("migrate(ms)", 1), colI("moved"), colF("charged(Mcyc)", 2),
		colI("rebalances"), colI("offered"), colI("completed"), colI("dropped"),
		colF("tput(q/s)", 1), colF("p99(ms)", 3))

	latencies := []float64{0.1e-3, 1e-3, 10e-3}
	total := c.OpenArrivals * c.Machines
	for i, lat := range latencies {
		err := phase(ctx, obs, fmt.Sprintf("migrate=%.1fms", lat*1e3), func() error {
			f, err := newFleet(c, c.Machines, workload.ModeDense)
			if err != nil {
				return err
			}
			topo := f.Rigs[0].Machine.Topology()
			// A budget of half the physical cores makes machines contend:
			// growing one means shrinking another, so following the heat
			// requires actual migration.
			budget := c.Machines * topo.TotalCores() / 2
			ca, err := cluster.NewClusterArbiter(cluster.ClusterArbiterConfig{
				Fleet:          f,
				Budget:         budget,
				ControlPeriod:  topo.SecondsToCycles(1e-3),
				MigrateLatency: topo.SecondsToCycles(lat),
			})
			if err != nil {
				return err
			}
			sh := f.Sharder
			// The first half of the stream hammers machine 0's first
			// shard, the second half the last machine's — the heat moves,
			// and the arbiter must move cores after it.
			hotA, _ := sh.ShardsOf(0)
			hotB, _ := sh.ShardsOf(f.Machines() - 1)
			coord := &cluster.Coordinator{
				Fleet: f,
				// Rate chosen against sessions, not saturation: with 2
				// sessions per machine the hot machine's queue builds
				// whatever the service rate, driving the backlog signal.
				Process: arrivals.NewPoisson(5000, c.Seed+307),
				Keys: func(k int) uint64 {
					hot := hotA
					if k >= total/2 {
						hot = hotB
					}
					return sh.KeyForShard(hot, c.Seed+uint64(k))
				},
				MaxInFlight: 2,
				MaxArrivals: total,
				MaxSeconds:  600,
			}
			r := coord.Run()
			ms := func(cyc uint64) float64 { return topo.CyclesToSeconds(cyc) * 1e3 }
			tbl.AddRow(lat*1e3, ca.MovedCores, float64(ca.ChargedCycles)/1e6,
				len(ca.Events()), r.Offered, r.Completed, r.Dropped,
				r.Throughput, ms(r.Latency.P99()))
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(latencies))
	}
	if n := len(tbl.Rows); n > 0 {
		cheap, _ := tbl.Float(0, 7)
		dear, _ := tbl.Float(n-1, 7)
		res.AddMetric("tput_cheapest_migration", cheap, "q/s")
		res.AddMetric("tput_dearest_migration", dear, "q/s")
	}
	return res, nil
}
