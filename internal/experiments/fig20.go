package experiments

import (
	"fmt"

	"elasticore/internal/metrics"
	"elasticore/internal/workload"
)

// fig20.go reproduces Figure 20: per-query CPU and HT energy estimates
// for the OS scheduler versus the adaptive mode, using the paper's model
// (Average CPU Power per socket, per-bit HT transfer energy).

// Fig20Query is one query's energy comparison.
type Fig20Query struct {
	QueryNumber     int
	OS, Adaptive    metrics.Energy
	CPUSavingsPct   float64
	HTSavingsPct    float64
	TotalSavingsPct float64
}

// Fig20Result is the full benchmark.
type Fig20Result struct {
	Clients int
	Queries []Fig20Query
	// Aggregates as the paper reports them: geometric-mean per-component
	// savings and the total system saving.
	GeoCPUSavingsPct, GeoHTSavingsPct, TotalSavingsPct float64
}

// String renders the per-query bars.
func (r *Fig20Result) String() string {
	t := &table{header: []string{"query", "OS cpu(J)", "OS ht(J)", "adp cpu(J)", "adp ht(J)", "cpu save%", "ht save%"}}
	for _, q := range r.Queries {
		t.add(fmt.Sprintf("Q%d", q.QueryNumber),
			f3(q.OS.CPUJoules), f3(q.OS.HTJoules),
			f3(q.Adaptive.CPUJoules), f3(q.Adaptive.HTJoules),
			f2(q.CPUSavingsPct), f2(q.HTSavingsPct))
	}
	return fmt.Sprintf(
		"Figure 20: energy estimates, %d clients — CPU geo-save %.2f%%, HT geo-save %.2f%%, total saving %.2f%%\n%s",
		r.Clients, r.GeoCPUSavingsPct, r.GeoHTSavingsPct, r.TotalSavingsPct, t.String())
}

// RunFig20 executes the per-query energy comparison.
func RunFig20(c Config) (*Fig20Result, error) {
	c = c.withDefaults()
	model := metrics.DefaultEnergyModel()
	res := &Fig20Result{Clients: c.Clients}

	run := func(mode workload.Mode) ([]workload.QueryPhase, error) {
		r, err := newRig(c, mode, nil)
		if err != nil {
			return nil, err
		}
		return workload.MixedPhases(r, c.Clients), nil
	}
	osPhases, err := run(workload.ModeOS)
	if err != nil {
		return nil, err
	}
	adPhases, err := run(workload.ModeAdaptive)
	if err != nil {
		return nil, err
	}

	topo := mustTopo()
	var cpuSav, htSav []float64
	var osTotal, adTotal float64
	for i := range osPhases {
		q := Fig20Query{QueryNumber: osPhases[i].QueryNumber}
		q.OS = model.Estimate(topo, osPhases[i].Window)
		q.Adaptive = model.Estimate(topo, adPhases[i].Window)
		q.CPUSavingsPct = metrics.Savings(q.OS.CPUJoules, q.Adaptive.CPUJoules)
		q.HTSavingsPct = metrics.Savings(q.OS.HTJoules, q.Adaptive.HTJoules)
		q.TotalSavingsPct = metrics.Savings(q.OS.Total(), q.Adaptive.Total())
		osTotal += q.OS.Total()
		adTotal += q.Adaptive.Total()
		if q.CPUSavingsPct > 0 {
			cpuSav = append(cpuSav, q.CPUSavingsPct)
		}
		if q.HTSavingsPct > 0 {
			htSav = append(htSav, q.HTSavingsPct)
		}
		res.Queries = append(res.Queries, q)
	}
	res.GeoCPUSavingsPct = metrics.GeoMean(cpuSav)
	res.GeoHTSavingsPct = metrics.GeoMean(htSav)
	res.TotalSavingsPct = metrics.Savings(osTotal, adTotal)
	return res, nil
}
