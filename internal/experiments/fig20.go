package experiments

import (
	"context"

	"fmt"

	"elasticore/internal/metrics"
	"elasticore/internal/workload"
)

// fig20.go reproduces Figure 20: per-query CPU and HT energy estimates
// for the OS scheduler versus the adaptive mode, using the paper's model
// (Average CPU Power per socket, per-bit HT transfer energy).

// Fig20Query is one query's energy comparison.
type Fig20Query struct {
	QueryNumber     int
	OS, Adaptive    metrics.Energy
	CPUSavingsPct   float64
	HTSavingsPct    float64
	TotalSavingsPct float64
}

// Fig20Result is the typed view of the fig20 Result.
type Fig20Result struct {
	*Result
	Clients int
	Queries []Fig20Query
	// Aggregates as the paper reports them: geometric-mean per-component
	// savings and the total system saving.
	GeoCPUSavingsPct, GeoHTSavingsPct, TotalSavingsPct float64
}

// runFig20 executes the per-query energy comparison.
func runFig20(ctx context.Context, c Config, obs Observer) (*Result, error) {
	model := metrics.DefaultEnergyModel()
	var osPhases, adPhases []workload.QueryPhase
	for i, mode := range []workload.Mode{workload.ModeOS, workload.ModeAdaptive} {
		mode := mode
		err := phase(ctx, obs, "mode="+mode.String(), func() error {
			r, err := newRig(c, mode, nil)
			if err != nil {
				return err
			}
			phases := workload.MixedPhases(r, c.Clients)
			if mode == workload.ModeOS {
				osPhases = phases
			} else {
				adPhases = phases
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, 2)
	}

	res := &Result{}
	tb := res.AddTable("queries",
		colI("query"), colF("OS cpu(J)", 3), colF("OS ht(J)", 3),
		colF("adp cpu(J)", 3), colF("adp ht(J)", 3),
		colF("cpu save%", 2), colF("ht save%", 2), colF("total save%", 2))
	topo := mustTopo()
	var cpuSav, htSav []float64
	var osTotal, adTotal float64
	for i := range osPhases {
		osE := model.Estimate(topo, osPhases[i].Window)
		adE := model.Estimate(topo, adPhases[i].Window)
		cpuSave := metrics.Savings(osE.CPUJoules, adE.CPUJoules)
		htSave := metrics.Savings(osE.HTJoules, adE.HTJoules)
		totalSave := metrics.Savings(osE.Total(), adE.Total())
		tb.AddRow(osPhases[i].QueryNumber, osE.CPUJoules, osE.HTJoules,
			adE.CPUJoules, adE.HTJoules, cpuSave, htSave, totalSave)
		osTotal += osE.Total()
		adTotal += adE.Total()
		if cpuSave > 0 {
			cpuSav = append(cpuSav, cpuSave)
		}
		if htSave > 0 {
			htSav = append(htSav, htSave)
		}
	}
	res.AddMetric("geo_cpu_savings_pct", metrics.GeoMean(cpuSav), "%")
	res.AddMetric("geo_ht_savings_pct", metrics.GeoMean(htSav), "%")
	res.AddMetric("total_savings_pct", metrics.Savings(osTotal, adTotal), "%")
	return res, nil
}

// fig20ResultFrom decodes the generic Result into the typed view.
func fig20ResultFrom(res *Result) (*Fig20Result, error) {
	tb := res.Table("queries")
	if tb == nil {
		return nil, fmt.Errorf("experiments: fig20 result missing queries table")
	}
	out := &Fig20Result{Result: res, Clients: res.Meta.Clients}
	for i := range tb.Rows {
		qn, _ := tb.Int(i, 0)
		q := Fig20Query{QueryNumber: int(qn)}
		q.OS.CPUJoules, _ = tb.Float(i, 1)
		q.OS.HTJoules, _ = tb.Float(i, 2)
		q.Adaptive.CPUJoules, _ = tb.Float(i, 3)
		q.Adaptive.HTJoules, _ = tb.Float(i, 4)
		q.CPUSavingsPct, _ = tb.Float(i, 5)
		q.HTSavingsPct, _ = tb.Float(i, 6)
		q.TotalSavingsPct, _ = tb.Float(i, 7)
		out.Queries = append(out.Queries, q)
	}
	out.GeoCPUSavingsPct, _ = res.Metric("geo_cpu_savings_pct")
	out.GeoHTSavingsPct, _ = res.Metric("geo_ht_savings_pct")
	out.TotalSavingsPct, _ = res.Metric("total_savings_pct")
	return out, nil
}

// RunFig20 executes the energy comparison through the registry and
// returns the typed view.
func RunFig20(c Config) (*Fig20Result, error) {
	res, err := run("fig20", c)
	if err != nil {
		return nil, err
	}
	return fig20ResultFrom(res)
}
