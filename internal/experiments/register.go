package experiments

import "context"

// register.go catalogues the paper's 13 evaluation artifacts — the first
// 13 registrations of the experiment platform. A new scenario adds one
// entry here (or calls Register from its own package init).

func init() {
	Register(New("fig4", Description{
		Title:   "Figure 4: Q6 under increasing concurrency",
		Summary: "Hand-coded C kernel under preset affinities vs the Volcano engine under the OS: throughput, minor faults/s, HT MB/s per user count.",
		Tags:    []string{"microbench", "scheduling"},
	}, runFig4))

	Register(New("fig5", Description{
		Title:   "Figure 5: single-client Q6 thread scheduling under the OS",
		Summary: "Lifespan/core-migration map and operator tomograph of one Q6 under the plain OS scheduler (Figures 5 and 6).",
		Tags:    []string{"microbench", "trace"},
	}, runFig5))

	Register(New("fig7", Description{
		Title:   "Figure 7: PrT state transitions under a Q6 burst",
		Summary: "Transitions fired by the elastic net with CPU usage and allocated cores at every control period.",
		Tags:    []string{"elastic", "petrinet"},
	}, runFig7))

	Register(New("fig13", Description{
		Title:   "Figure 13: thetasubselect under increasing concurrency",
		Summary: "Throughput, CPU load, tasks and stolen tasks for OS/dense/sparse/adaptive across a user sweep.",
		Tags:    []string{"microbench", "elastic"},
	}, runFig13))

	Register(New("fig14", Description{
		Title:   "Figure 14: per-socket memory access metrics",
		Summary: "L3 misses, memory throughput and HT traffic per socket at the highest thetasubselect concurrency, per mode.",
		Tags:    []string{"microbench", "memory"},
	}, runFig14))

	Register(New("fig15", Description{
		Title:   "Figure 15: L3 misses vs selectivity",
		Summary: "L3 load misses of thetasubselect across selectivities 2..100% for the four modes.",
		Tags:    []string{"microbench", "memory"},
	}, runFig15))

	Register(New("fig16", Description{
		Title:   "Figure 16: single-client Q6 thread migration per mode",
		Summary: "Lifespan/migration maps under all four configurations; dense and adaptive keep threads on one node.",
		Tags:    []string{"elastic", "trace"},
	}, runFig16))

	Register(New("fig17", Description{
		Title:   "Figure 17: CPU-load vs HT/IMC state-transition strategies, Q6, 1 client",
		Summary: "Response time, HT traffic and L3 misses of the mechanism's two strategies against the OS baseline.",
		Tags:    []string{"elastic", "strategy"},
	}, runFig17))

	Register(New("fig18", Description{
		Title:   "Figure 18: stable phases workload",
		Summary: "All 22 queries one at a time under {OS, adaptive} x {MonetDB-like, SQL-Server-like} with per-socket memory-throughput timelines.",
		Tags:    []string{"elastic", "workload"},
	}, runFig18))

	Register(New("fig19", Description{
		Title:   "Figure 19: mixed phases workload, per-query split",
		Summary: "Per-query speedup of each mechanism mode over the OS and the per-query HT/IMC ratio, per engine flavour.",
		Tags:    []string{"elastic", "workload"},
	}, runFig19))

	Register(New("fig20", Description{
		Title:   "Figure 20: per-query CPU and HT energy estimates",
		Summary: "The paper's energy model applied to the mixed workload: OS vs adaptive, with geometric-mean savings.",
		Tags:    []string{"elastic", "energy"},
	}, runFig20))

	Register(New("overhead", Description{
		Title:   "Mechanism overhead: one token flow through the 5x8 net",
		Summary: "Host wall-clock cost of one control step (sample, evaluate, act) per allocation mode, 1000 steps averaged.",
		Tags:    []string{"elastic", "microbench"},
	}, func(ctx context.Context, c Config, obs Observer) (*Result, error) {
		return runOverhead(ctx, c, obs, 1000)
	}))

	Register(New("consolidation", Description{
		Title:   "Consolidation: SLA-weighted multi-tenant core arbitration",
		Summary: "N saturated tenant databases on one machine: weighted apportionment vs an equal-weight baseline, with over-commit and starvation checks.",
		Tags:    []string{"tenancy", "elastic"},
	}, runConsolidation))

	Register(New("htap-mix", Description{
		Title:   "HTAP mix: point-lookup vs scan ratio sweep per tenant",
		Summary: "Consolidated tenants each submitting a deterministic blend of single-row order lookups and scan/join/aggregate pipelines across the lookup:scan ratio sweep, with per-class throughput and latency split by completion hooks.",
		Tags:    []string{"tenancy", "workload", "htap"},
	}, runHTAPMix))

	Register(New("latency-load", Description{
		Title:   "Open loop: throughput and latency percentiles vs offered load",
		Summary: "Seeded arrival streams from 0.25x to 2x the closed-loop saturation throughput: completions, load shedding and p50/p90/p99/max latency per point.",
		Tags:    []string{"openloop", "traffic"},
	}, runLatencyLoad))

	Register(New("burst-response", Description{
		Title:   "Open loop: elastic reaction to an MMPP traffic burst",
		Summary: "Core-allocation and p99 timelines around bursty arrivals: static all-cores baseline vs the adaptive mechanism with and without the admission-queue pressure signal.",
		Tags:    []string{"openloop", "traffic", "elastic"},
	}, runBurstResponse))

	Register(New("topology-sweep", Description{
		Title:   "Topology zoo: Q6 concurrency across machine shapes x placement policies",
		Summary: "The fig4-style workload on every zoo topology (opteron, 2socket, 4ring, 8twisted, epyc) under node-fill, hop-min and scatter core placement: throughput, HT/IMC bytes and the Section V-B NUMA-friendliness ratio.",
		Tags:    []string{"topology", "numa", "elastic"},
	}, runTopologySweep))

	Register(New("scale-out", Description{
		Title:   "Cluster: throughput speedup across fleet sizes",
		Summary: "One fixed saturating arrival stream over a sharded TPC-H dataset against fleets of 1..N machines: throughput, speedup over one machine and latency percentiles per fleet size.",
		Tags:    []string{"cluster", "openloop"},
	}, runScaleOut))

	Register(New("shard-skew", Description{
		Title:   "Cluster: Zipf shard heat at fixed fleet size",
		Summary: "Keyed routing under Zipf-skewed shard popularity (theta 0/1/2): throughput, tail latency and the per-machine routing imbalance the hash partitioning cannot absorb.",
		Tags:    []string{"cluster", "openloop"},
	}, runShardSkew))

	Register(New("rebalance-cost", Description{
		Title:   "Cluster: migration-latency cost of chasing a moving hot shard",
		Summary: "A hot shard that shifts machines mid-run under a contended cluster core budget: moved cores, charged migration cycles and throughput per migration latency.",
		Tags:    []string{"cluster", "elastic"},
	}, runRebalanceCost))

	Register(New("fault-tolerance", Description{
		Title:   "Cluster: crash-and-recover window, static vs elastic vs replicated+hedged",
		Summary: "One deterministic crash plan against three fleet configurations: per-phase shed rate and latency percentiles, retry/hedge/failover counts and the resolution timeline through the failure window.",
		Tags:    []string{"cluster", "faults"},
	}, runFaultTolerance))

	Register(New("partial-degradation", Description{
		Title:   "Cluster: impaired-not-dead machines — slow cores and lossy links",
		Summary: "A slow-core factor sweep and a lossy-link delay/drop sweep on one machine of the fleet: throughput, shed and tail latency per impairment level, with timeout-driven retry recovery for dropped messages.",
		Tags:    []string{"cluster", "faults"},
	}, runPartialDegradation))
}
