package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/arrivals"
	"elasticore/internal/cluster"
	"elasticore/internal/faults"
	"elasticore/internal/metrics"
	"elasticore/internal/numa"
	"elasticore/internal/workload"
)

// faults.go hosts the failure experiments: the cluster tier driven
// through internal/faults' deterministic failure plans.
//
//   - fault-tolerance: one crash-and-recover window against three fleet
//     configurations — a static baseline with nowhere to fail over to,
//     an elastic fleet whose health monitor re-homes the dead machine's
//     shards, and a replicated fleet that also hedges and fails over —
//     with the latency and shed-rate timeline through the window.
//   - partial-degradation: machines that are impaired rather than dead —
//     a slow-core factor sweep and a lossy-link delay/drop sweep.

// msOrDash renders a latency quantile in milliseconds, or "-" when the
// histogram holds no samples: an all-shed window has no latency to
// report, and printing the empty histogram's zero quantiles would
// claim a 0.000 ms tail instead of admitting there was no service at
// all. Result tables render string cells verbatim in float columns.
func msOrDash(topo *numa.Topology, h *metrics.Histogram, q float64) any {
	if h.Count() == 0 {
		return "-"
	}
	return topo.CyclesToSeconds(h.Quantile(q)) * 1e3
}

// ftVariant is one fleet configuration of the fault-tolerance matchup.
type ftVariant struct {
	name     string
	mode     workload.Mode
	replicas int
	health   bool
	arbiter  bool
	hedge    bool
}

// ftPhaseStats accumulates request outcomes inside one phase of the
// crash timeline (pre-fault, fault, recovery), bucketed by resolve time.
type ftPhaseStats struct {
	ok, shed int
	lat      metrics.Histogram
}

// ftPhaseNames label the crash timeline's three phases.
var ftPhaseNames = [3]string{"pre-fault", "fault", "recovery"}

// runFaultTolerance replays one offered stream through a crash-and-
// recover window against three fleet configurations and reports how
// much of the failure each one absorbs.
func runFaultTolerance(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	var sat float64
	err := phase(ctx, obs, "calibrate", func() (err error) {
		sat, err = calibrateSaturation(c)
		return err
	})
	if err != nil {
		return nil, err
	}

	// Moderate aggregate load: the fleet has headroom, so what the crash
	// costs is attributable to the crash, not to pre-existing overload.
	rate := 0.7 * sat * float64(c.Machines)
	total := c.OpenArrivals * c.Machines
	span := float64(total) / rate

	// The default plan crashes machine 1 for the middle third of the
	// arrival stream: long enough for detection (heartbeat gap) plus
	// shard re-assignment to land and earn their keep, short enough
	// that a recovery phase remains. A Config.Faults spec replaces the
	// plan; its first fault's window then frames the phase boundaries.
	crashAt, crashFor := 0.25*span, 0.35*span
	spec := c.Faults
	if plan, _ := faults.Parse(spec); plan.Empty() {
		victim := 0
		if c.Machines > 1 {
			victim = 1
		}
		spec = fmt.Sprintf("crash m%d @%.6fs for %.6fs", victim, crashAt, crashFor)
	} else {
		f0 := plan.Faults[0]
		crashAt = f0.At
		if f0.For > 0 {
			crashFor = f0.For
		} else {
			crashFor = 1.4*span - crashAt
		}
	}
	horizon := 1.3*float64(total)*(1/rate+1/sat) + crashFor + 0.05

	rep := c.Replicas
	if rep < 2 {
		rep = 2
	}
	if rep > c.Machines {
		rep = c.Machines
	}
	variants := []ftVariant{
		{name: "static", mode: workload.ModeOS, replicas: 1},
		{name: "elastic", mode: workload.ModeDense, replicas: 1, health: true, arbiter: true},
		{name: "replicated", mode: workload.ModeDense, replicas: rep, health: true, arbiter: true, hedge: true},
	}

	summary := res.AddTable("fault_tolerance",
		colS("config"), colI("offered"), colI("completed"), colI("dropped"),
		colI("failed"), colI("retried"), colI("hedged"), colI("failover"),
		colI("reassign"), colF("tput(q/s)", 1))
	phases := res.AddTable("phases",
		colS("config"), colS("phase"), colI("resolved"), colI("ok"),
		colI("shed"), colF("shed_rate", 3), colF("p50(ms)", 3),
		colF("p99(ms)", 3), colF("p999(ms)", 3))

	// The shared timeline: request resolutions bucketed into fixed
	// windows, identical across variants because all three replay the
	// same arrival stream on the same clock.
	const nWin = 12
	winSpan := 1.4 * span
	// winCounts is indexed [variant][window][ok|shed].
	var winCounts [3][nWin][2]int

	for vi, v := range variants {
		vi, v := vi, v
		err := phase(ctx, obs, v.name, func() error {
			cc := c
			cc.Faults = spec
			cc.Replicas = v.replicas
			f, err := newFleet(cc, c.Machines, v.mode)
			if err != nil {
				return err
			}
			topo := f.Rigs[0].Machine.Topology()
			if v.arbiter {
				// A contended budget makes the elastic story visible: the
				// arbiter reclaims a dead machine's grant for the survivors.
				if _, err := cluster.NewClusterArbiter(cluster.ClusterArbiterConfig{
					Fleet:         f,
					Budget:        c.Machines * topo.TotalCores() * 3 / 4,
					ControlPeriod: topo.SecondsToCycles(1e-3),
				}); err != nil {
					return err
				}
			}
			if v.health {
				if _, err := cluster.NewHealthMonitor(cluster.HealthConfig{
					Fleet:           f,
					HeartbeatEvery:  topo.SecondsToCycles(1e-3),
					TransferLatency: topo.SecondsToCycles(8e-3),
					BrownoutCap:     4 * openSessions(c),
				}); err != nil {
					return err
				}
			}
			crashC := topo.SecondsToCycles(crashAt)
			recoverC := topo.SecondsToCycles(crashAt + crashFor)
			winC := topo.SecondsToCycles(winSpan / nWin)
			hedge := 0.0
			if v.hedge {
				hedge = 3e-3
			}
			var ph [3]ftPhaseStats
			coord := &cluster.Coordinator{
				Fleet:             f,
				Process:           arrivals.NewPoisson(rate, c.Seed+401),
				Keys:              uniformKeys(f.Sharder, c.Seed),
				MaxInFlight:       openSessions(c),
				QueueCap:          8 * openSessions(c),
				MaxArrivals:       total,
				MaxSeconds:        horizon,
				TimeoutSeconds:    6e-3,
				BackoffSeconds:    1.5e-3,
				MaxRetries:        4,
				HedgeAfterSeconds: hedge,
				OnOutcome: func(nowC, lat uint64, ok bool) {
					pi := 0
					switch {
					case nowC >= recoverC:
						pi = 2
					case nowC >= crashC:
						pi = 1
					}
					w := int(nowC / winC)
					if w >= nWin {
						w = nWin - 1
					}
					if ok {
						ph[pi].ok++
						ph[pi].lat.Record(lat)
						winCounts[vi][w][0]++
					} else {
						ph[pi].shed++
						winCounts[vi][w][1]++
					}
				},
			}
			r := coord.Run()
			reassigned, recoveries := 0, 0
			if h := f.Health(); h != nil {
				reassigned, recoveries = h.Reassigned, h.Recoveries
			}
			summary.AddRow(v.name, r.Offered, r.Completed, r.Dropped, r.Failed,
				r.Retried, r.Hedged, r.Failovers, reassigned, r.Throughput)
			for pi, pn := range ftPhaseNames {
				s := &ph[pi]
				n := s.ok + s.shed
				shedRate := 0.0
				if n > 0 {
					shedRate = float64(s.shed) / float64(n)
				}
				phases.AddRow(v.name, pn, n, s.ok, s.shed, shedRate,
					msOrDash(topo, &s.lat, 0.50), msOrDash(topo, &s.lat, 0.99),
					msOrDash(topo, &s.lat, 0.999))
			}
			res.AddMetric("shed_fault_"+v.name, float64(ph[1].shed), "req")
			if ph[0].lat.Count() > 0 && ph[1].lat.Count() > 0 {
				pre := topo.CyclesToSeconds(ph[0].lat.Quantile(0.99))
				dur := topo.CyclesToSeconds(ph[1].lat.Quantile(0.99))
				if pre > 0 {
					res.AddMetric("p99_fault_over_pre_"+v.name, dur/pre, "x")
				}
			}
			if v.name == "replicated" {
				res.AddMetric("recoveries_replicated", float64(recoveries), "")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(vi+1, len(variants))
	}

	tl := res.AddTable("timeline",
		colF("t(ms)", 1), colI("static_ok"), colI("static_shed"),
		colI("elastic_ok"), colI("elastic_shed"),
		colI("replicated_ok"), colI("replicated_shed"))
	for w := 0; w < nWin; w++ {
		tl.AddRow(winSpan/nWin*float64(w)*1e3,
			winCounts[0][w][0], winCounts[0][w][1],
			winCounts[1][w][0], winCounts[1][w][1],
			winCounts[2][w][0], winCounts[2][w][1])
	}
	res.AddMetric("saturation_tput_1", sat, "q/s")
	res.AddMetric("crash_at", crashAt, "s")
	res.AddMetric("crash_for", crashFor, "s")
	return res, nil
}

// runPartialDegradation sweeps machines that are impaired rather than
// dead: a slow-core factor sweep (one machine's cores cost more cycles)
// and a lossy-link sweep (one machine's requests pay delay and drops).
func runPartialDegradation(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	var sat float64
	err := phase(ctx, obs, "calibrate", func() (err error) {
		sat, err = calibrateSaturation(c)
		return err
	})
	if err != nil {
		return nil, err
	}
	rate := 0.6 * sat * float64(c.Machines)
	total := c.OpenArrivals * c.Machines
	horizon := 1.3*float64(total)*(1/rate+1/sat) + 0.05

	run := func(spec string, timeout bool) (*cluster.Result, *numa.Topology, error) {
		cc := c
		cc.Faults = spec
		f, err := newFleet(cc, c.Machines, workload.ModeDense)
		if err != nil {
			return nil, nil, err
		}
		coord := &cluster.Coordinator{
			Fleet:       f,
			Process:     arrivals.NewPoisson(rate, c.Seed+501),
			Keys:        uniformKeys(f.Sharder, c.Seed),
			MaxInFlight: openSessions(c),
			QueueCap:    8 * openSessions(c),
			MaxArrivals: total,
			MaxSeconds:  horizon,
		}
		if timeout {
			coord.TimeoutSeconds = 6e-3
			coord.BackoffSeconds = 1.5e-3
			coord.MaxRetries = 4
		}
		r := coord.Run()
		return &r, f.Rigs[0].Machine.Topology(), nil
	}

	slow := res.AddTable("slow_cores",
		colI("factor"), colI("offered"), colI("completed"), colI("shed"),
		colF("tput(q/s)", 1), colF("p50(ms)", 3), colF("p99(ms)", 3))
	factors := []int{1, 4, 16}
	points := []struct{ delayMs, drop float64 }{{0, 0}, {0.2, 0.1}, {0.5, 0.3}}
	steps := len(factors) + len(points)
	step := 0
	for _, factor := range factors {
		factor := factor
		err := phase(ctx, obs, fmt.Sprintf("slow-x%d", factor), func() error {
			spec := ""
			if factor > 1 {
				// Every core of machine 0 costs factor-x cycles; no timeout,
				// so the table shows the pure degradation (queueing on the
				// slow machine until its admission queue sheds).
				spec = fmt.Sprintf("slow m0 c* x%d @0s", factor)
			}
			r, topo, err := run(spec, false)
			if err != nil {
				return err
			}
			slow.AddRow(factor, r.Offered, r.Completed, r.Dropped+r.Failed,
				r.Throughput, msOrDash(topo, &r.Latency, 0.50), msOrDash(topo, &r.Latency, 0.99))
			return nil
		})
		if err != nil {
			return nil, err
		}
		step++
		obs.Progress(step, steps)
	}

	lossy := res.AddTable("lossy_link",
		colF("delay(ms)", 1), colF("drop", 2), colI("offered"), colI("completed"),
		colI("failed"), colI("retried"), colI("wire_drop"),
		colF("tput(q/s)", 1), colF("p99(ms)", 3))
	for _, pt := range points {
		pt := pt
		err := phase(ctx, obs, fmt.Sprintf("link+%.1fms/%.0f%%", pt.delayMs, pt.drop*100), func() error {
			spec := ""
			if pt.delayMs > 0 || pt.drop > 0 {
				spec = fmt.Sprintf("link m0 +%.1fms drop %.2f @0s", pt.delayMs, pt.drop)
			}
			// Timeout and retries on: a dropped message is invisible until
			// its attempt deadline expires, so recovery needs the clock.
			r, topo, err := run(spec, true)
			if err != nil {
				return err
			}
			lossy.AddRow(pt.delayMs, pt.drop, r.Offered, r.Completed, r.Failed,
				r.Retried, r.WireDropped, r.Throughput, msOrDash(topo, &r.Latency, 0.99))
			return nil
		})
		if err != nil {
			return nil, err
		}
		step++
		obs.Progress(step, steps)
	}

	if n := len(slow.Rows); n > 0 {
		base, _ := slow.Float(0, 4)
		worst, _ := slow.Float(n-1, 4)
		res.AddMetric("tput_slow_x1", base, "q/s")
		res.AddMetric("tput_slow_max", worst, "q/s")
	}
	if n := len(lossy.Rows); n > 0 {
		clean, _ := lossy.Float(0, 8)
		worst, _ := lossy.Float(n-1, 8)
		retried, _ := lossy.Float(n-1, 5)
		res.AddMetric("p99_link_clean", clean, "ms")
		res.AddMetric("p99_link_lossy", worst, "ms")
		res.AddMetric("retried_link_lossy", retried, "req")
	}
	res.AddMetric("saturation_tput_1", sat, "q/s")
	return res, nil
}
