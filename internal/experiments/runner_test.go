package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryCataloguesThirteenArtifacts pins the platform's content:
// the 13 paper artifacts in registration order, followed by the
// open-loop traffic scenarios, the topology sweep, the cluster tier
// and the failure experiments.
func TestRegistryCataloguesThirteenArtifacts(t *testing.T) {
	want := []string{
		"fig4", "fig5", "fig7", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "overhead", "consolidation",
		"htap-mix", "latency-load", "burst-response", "topology-sweep",
		"scale-out", "shard-skew", "rebalance-cost",
		"fault-tolerance", "partial-degradation",
	}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d experiments %v, want %d", len(names), names, len(want))
	}
	for i, name := range want {
		if names[i] != name {
			t.Errorf("registry[%d] = %q, want %q", i, names[i], name)
		}
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		d := e.Describe()
		if d.Title == "" || d.Summary == "" || len(d.Tags) == 0 {
			t.Errorf("%s has incomplete description: %+v", name, d)
		}
	}
	// Tag selection finds the consolidated-tenant scenarios.
	tenancy := WithTag("tenancy")
	if len(tenancy) != 2 || tenancy[0].Name() != "consolidation" || tenancy[1].Name() != "htap-mix" {
		t.Errorf("WithTag(tenancy) = %v", tenancy)
	}
}

func TestResolveRejectsUnknownNamesUpFront(t *testing.T) {
	if _, err := Resolve("fig4", "nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("Resolve with typo: err = %v, want mention of the unknown name", err)
	}
	exps, err := Resolve("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != len(Names()) {
		t.Errorf("Resolve(all) = %d experiments, want the whole registry (%d)", len(exps), len(Names()))
	}
}

// TestRunnerExecutesConcurrently proves two experiments overlap in time:
// each blocks until it has seen the other start, which only completes when
// the worker pool truly runs them in parallel.
func TestRunnerExecutesConcurrently(t *testing.T) {
	a, b := make(chan struct{}), make(chan struct{})
	mk := func(name string, mine, other chan struct{}) Experiment {
		return New(name, Description{Title: name}, func(ctx context.Context, c Config, obs Observer) (*Result, error) {
			close(mine)
			select {
			case <-other:
				return &Result{}, nil
			case <-time.After(10 * time.Second):
				return nil, fmt.Errorf("%s never saw its peer start", name)
			}
		})
	}
	r := &Runner{Parallel: 2}
	reports := r.Run(context.Background(), mk("left", a, b), mk("right", b, a))
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Errorf("%s: %v", rep.Name, rep.Err)
		}
		if rep.Result == nil {
			t.Errorf("%s: missing result", rep.Name)
		}
	}
}

// TestRunnerContextCancellation covers both halves of cancellation: a
// running experiment observes ctx.Done, and a queued experiment is never
// started.
func TestRunnerContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	blocker := New("blocker", Description{}, func(ctx context.Context, c Config, obs Observer) (*Result, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	var mu sync.Mutex
	ran := false
	second := New("second", Description{}, func(ctx context.Context, c Config, obs Observer) (*Result, error) {
		mu.Lock()
		ran = true
		mu.Unlock()
		return &Result{}, nil
	})
	go func() {
		<-started
		cancel()
	}()
	r := &Runner{Parallel: 1}
	reports := r.Run(ctx, blocker, second)
	if reports[0].Err != context.Canceled {
		t.Errorf("blocker err = %v, want context.Canceled", reports[0].Err)
	}
	if reports[1].Err != context.Canceled {
		t.Errorf("second err = %v, want context.Canceled", reports[1].Err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran {
		t.Error("second experiment body ran despite cancellation")
	}
}

// TestRunnerCollectsPerExperimentErrors: one failure does not abort the
// batch.
func TestRunnerCollectsPerExperimentErrors(t *testing.T) {
	boom := New("boom", Description{}, func(ctx context.Context, c Config, obs Observer) (*Result, error) {
		return nil, fmt.Errorf("synthetic failure")
	})
	fine := New("fine", Description{}, func(ctx context.Context, c Config, obs Observer) (*Result, error) {
		return &Result{}, nil
	})
	r := &Runner{Parallel: 2}
	reports := r.Run(context.Background(), boom, fine)
	if reports[0].Err == nil || !strings.Contains(reports[0].Err.Error(), "synthetic") {
		t.Errorf("boom err = %v", reports[0].Err)
	}
	if reports[1].Err != nil || reports[1].Result == nil {
		t.Errorf("fine report = %+v", reports[1])
	}
}

// TestRegisteredExperimentHonorsCancelledContext: a real experiment run
// through the registry returns promptly on a dead context.
func TestRegisteredExperimentHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, ok := Lookup("fig4")
	if !ok {
		t.Fatal("fig4 not registered")
	}
	if _, err := e.Run(ctx, tiny(), nil); err == nil {
		t.Error("cancelled context accepted")
	}
}

// TestRunnerObserverSeesPhases: the Observe factory receives per-experiment
// observers and phases flow through them.
func TestRunnerObserverSeesPhases(t *testing.T) {
	type event struct{ exp, phase string }
	var mu sync.Mutex
	var events []event
	r := &Runner{
		Parallel: 2,
		Config:   tiny(),
		Observe: func(name string) Observer {
			return observerFunc(func(phase string) {
				mu.Lock()
				events = append(events, event{name, phase})
				mu.Unlock()
			})
		},
	}
	reports, err := r.RunNames(context.Background(), "fig5", "overhead")
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("%s: %v", rep.Name, rep.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	seen := map[string]bool{}
	for _, e := range events {
		seen[e.exp] = true
	}
	if !seen["fig5"] || !seen["overhead"] {
		t.Errorf("observer events missing experiments: %v", events)
	}
}

// observerFunc adapts a phase callback into an Observer.
type observerFunc func(phase string)

func (f observerFunc) PhaseStart(phase string) { f(phase) }
func (f observerFunc) PhaseDone(phase string)  {}
func (f observerFunc) Progress(int, int)       {}
