package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/tenant"
	"elasticore/internal/workload"
)

// consolidation.go implements the paper's Section VII future-work setting
// as an experiment: several tenant databases, each running the elastic
// mechanism, consolidated onto one machine by the core arbiter
// (internal/tenant). Every tenant is saturated so the aggregate demand
// races past the machine, and the arbiter must divide cores by SLA weight
// without over-committing or starving anyone. A second, equal-weight run
// of the same workload provides the baseline against which the SLA effect
// is measured.

// ConsolidationRow is one tenant's outcome under contention.
type ConsolidationRow struct {
	Tenant   string
	Weight   int
	MinCores int
	// Weighted-run measurements.
	Throughput   float64
	MeanCores    float64
	MaxCores     int
	MinCoresSeen int
	// Equal-weight baseline measurements of the same tenant and load.
	BaselineThroughput float64
	BaselineMeanCores  float64
}

// ConsolidationResult is the typed view of the consolidation Result.
type ConsolidationResult struct {
	*Result
	Rows []ConsolidationRow
	// MachineCores is the machine size.
	MachineCores int
	// PeakTotalCores is the largest simultaneous total allocation seen in
	// either run (over-commit check: must stay <= MachineCores).
	PeakTotalCores int
	// PeakAggregateDemand is the largest per-round demand sum of the
	// weighted run (contention check: must exceed MachineCores).
	PeakAggregateDemand int
	// ElapsedSeconds is the weighted run's virtual duration.
	ElapsedSeconds float64
}

// Row returns the measurement for a tenant, or nil.
func (r *ConsolidationResult) Row(name string) *ConsolidationRow {
	for i := range r.Rows {
		if r.Rows[i].Tenant == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// consolidationSpecs builds n tenant specs in descending priority: the
// first tenant is "gold" (weight 4, floor 2), the second "silver"
// (weight 2), the rest "bronze" (weight 1). Weights are overridden to 1
// for the equal-weight baseline.
func consolidationSpecs(c Config, n int, equalWeights bool) []workload.TenantSpec {
	specs := make([]workload.TenantSpec, n)
	for i := range specs {
		name, weight, floor := fmt.Sprintf("bronze%d", i), 1, 1
		switch i {
		case 0:
			name, weight, floor = "gold", 4, 2
		case 1:
			name, weight = "silver", 2
		}
		if equalWeights {
			weight = 1
		}
		specs[i] = workload.TenantSpec{
			Name:      name,
			SF:        c.SF,
			Seed:      c.Seed + uint64(i),
			Mode:      workload.ModeDense,
			SLA:       tenant.SLA{Weight: weight, MinCores: floor},
			Placement: c.Placement,
		}
	}
	return specs
}

// consolidationSeconds is the fixed virtual duration of one consolidation
// phase. The phase is time-bounded — every client resubmits for the whole
// window — so per-tenant throughput reflects the cores each tenant was
// granted, not the size of a finite work list.
const consolidationSeconds = 0.25

// runConsolidationOnce builds a multi-tenant rig from the specs and
// saturates every tenant with a continuous theta-scan stream for the
// fixed phase window.
func runConsolidationOnce(c Config, specs []workload.TenantSpec) (*workload.MultiRig, *workload.MultiPhaseResult, error) {
	aggregateSF := 0.0
	for _, s := range specs {
		aggregateSF += s.SF
	}
	topo, err := c.machineTopology(aggregateSF)
	if err != nil {
		return nil, nil, err
	}
	rig, err := workload.NewMultiRig(workload.MultiOptions{Tenants: specs, Topology: topo, Naive: c.Naive, Bus: c.Bus})
	if err != nil {
		return nil, nil, err
	}
	loads := make([]workload.TenantLoad, len(specs))
	for i := range loads {
		loads[i] = workload.TenantLoad{
			Clients:          c.Clients,
			QueriesPerClient: 1 << 20, // never drains; the window bounds the phase
			Plan:             func(cl, k int) *db.Plan { return thetaPlan(0.45) },
		}
	}
	res, err := rig.Run(loads, 0, consolidationSeconds)
	if err != nil {
		return nil, nil, err
	}
	return rig, res, nil
}

// runConsolidation executes the experiment: a weighted run and an
// equal-weight baseline of the same tenants and load. Config.Tenants
// selects the tenant count (validated centrally to 2..4, default 3);
// Clients is the per-tenant concurrency.
func runConsolidation(ctx context.Context, c Config, obs Observer) (*Result, error) {
	n := c.Tenants

	var weightedRig *workload.MultiRig
	var weighted, baseline *workload.MultiPhaseResult
	err := phase(ctx, obs, fmt.Sprintf("weighted tenants=%d", n), func() (err error) {
		weightedRig, weighted, err = runConsolidationOnce(c, consolidationSpecs(c, n, false))
		return err
	})
	if err != nil {
		return nil, err
	}
	obs.Progress(1, 2)
	err = phase(ctx, obs, "equal-weight baseline", func() (err error) {
		_, baseline, err = runConsolidationOnce(c, consolidationSpecs(c, n, true))
		return err
	})
	if err != nil {
		return nil, err
	}
	obs.Progress(2, 2)

	peakTotal := weighted.PeakTotalCores
	if baseline.PeakTotalCores > peakTotal {
		peakTotal = baseline.PeakTotalCores
	}

	res := &Result{}
	tb := res.AddTable("tenants",
		colS("tenant"), colI("weight"), colI("floor"), colF("q/s", 3),
		colF("mean-cores", 2), colI("max"), colI("min-seen"),
		colF("base-q/s", 3), colF("base-cores", 2))
	for i, tr := range weighted.Tenants {
		spec := weightedRig.Tenants[i]
		tb.AddRow(tr.Tenant, spec.SLA.Weight, spec.SLA.MinCores,
			tr.Throughput, tr.MeanCores, tr.MaxCores, tr.MinCores,
			baseline.Tenants[i].Throughput, baseline.Tenants[i].MeanCores)
	}
	res.AddMetric("machine_cores", float64(weighted.MachineCores), "cores")
	res.AddMetric("peak_total_cores", float64(peakTotal), "cores")
	res.AddMetric("peak_aggregate_demand", float64(weightedRig.Arbiter.PeakAggregateDemand()), "cores")
	res.AddMetric("elapsed_s", weighted.ElapsedSeconds, "s")
	return res, nil
}

// consolidationResultFrom decodes the generic Result into the typed view.
func consolidationResultFrom(res *Result) (*ConsolidationResult, error) {
	tb := res.Table("tenants")
	if tb == nil {
		return nil, fmt.Errorf("experiments: consolidation result missing tenants table")
	}
	out := &ConsolidationResult{Result: res}
	for i := range tb.Rows {
		name, _ := tb.Str(i, 0)
		weight, _ := tb.Int(i, 1)
		floor, _ := tb.Int(i, 2)
		tput, _ := tb.Float(i, 3)
		mean, _ := tb.Float(i, 4)
		max, _ := tb.Int(i, 5)
		minSeen, _ := tb.Int(i, 6)
		baseTput, _ := tb.Float(i, 7)
		baseCores, _ := tb.Float(i, 8)
		out.Rows = append(out.Rows, ConsolidationRow{
			Tenant: name, Weight: int(weight), MinCores: int(floor),
			Throughput: tput, MeanCores: mean, MaxCores: int(max),
			MinCoresSeen:       int(minSeen),
			BaselineThroughput: baseTput, BaselineMeanCores: baseCores,
		})
	}
	machine, _ := res.Metric("machine_cores")
	peakTotal, _ := res.Metric("peak_total_cores")
	peakDemand, _ := res.Metric("peak_aggregate_demand")
	elapsed, _ := res.Metric("elapsed_s")
	out.MachineCores = int(machine)
	out.PeakTotalCores = int(peakTotal)
	out.PeakAggregateDemand = int(peakDemand)
	out.ElapsedSeconds = elapsed
	return out, nil
}

// RunConsolidation executes the experiment through the registry and
// returns the typed view.
func RunConsolidation(c Config) (*ConsolidationResult, error) {
	res, err := run("consolidation", c)
	if err != nil {
		return nil, err
	}
	return consolidationResultFrom(res)
}
