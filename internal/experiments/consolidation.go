package experiments

import (
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/tenant"
	"elasticore/internal/workload"
)

// consolidation.go implements the paper's Section VII future-work setting
// as an experiment: several tenant databases, each running the elastic
// mechanism, consolidated onto one machine by the core arbiter
// (internal/tenant). Every tenant is saturated so the aggregate demand
// races past the machine, and the arbiter must divide cores by SLA weight
// without over-committing or starving anyone. A second, equal-weight run
// of the same workload provides the baseline against which the SLA effect
// is measured.

// ConsolidationRow is one tenant's outcome under contention.
type ConsolidationRow struct {
	Tenant   string
	Weight   int
	MinCores int
	// Weighted-run measurements.
	Throughput   float64
	MeanCores    float64
	MaxCores     int
	MinCoresSeen int
	// Equal-weight baseline measurements of the same tenant and load.
	BaselineThroughput float64
	BaselineMeanCores  float64
}

// ConsolidationResult is the full consolidation experiment.
type ConsolidationResult struct {
	Rows []ConsolidationRow
	// MachineCores is the machine size.
	MachineCores int
	// PeakTotalCores is the largest simultaneous total allocation seen in
	// either run (over-commit check: must stay <= MachineCores).
	PeakTotalCores int
	// PeakAggregateDemand is the largest per-round demand sum of the
	// weighted run (contention check: must exceed MachineCores).
	PeakAggregateDemand int
	// ElapsedSeconds is the weighted run's virtual duration.
	ElapsedSeconds float64
}

// Row returns the measurement for a tenant, or nil.
func (r *ConsolidationResult) Row(name string) *ConsolidationRow {
	for i := range r.Rows {
		if r.Rows[i].Tenant == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the per-tenant table plus the machine-level checks.
func (r *ConsolidationResult) String() string {
	t := &table{header: []string{"tenant", "weight", "floor", "q/s", "mean-cores", "max", "min-seen", "base-q/s", "base-cores"}}
	for _, row := range r.Rows {
		t.add(row.Tenant, fmt.Sprint(row.Weight), fmt.Sprint(row.MinCores),
			f3(row.Throughput), f2(row.MeanCores), fmt.Sprint(row.MaxCores),
			fmt.Sprint(row.MinCoresSeen), f3(row.BaselineThroughput), f2(row.BaselineMeanCores))
	}
	return fmt.Sprintf("Consolidation: %d tenants on %d cores (peak demand %d, peak allocated %d)\n",
		len(r.Rows), r.MachineCores, r.PeakAggregateDemand, r.PeakTotalCores) + t.String()
}

// consolidationSpecs builds n tenant specs in descending priority: the
// first tenant is "gold" (weight 4, floor 2), the second "silver"
// (weight 2), the rest "bronze" (weight 1). Weights are overridden to 1
// for the equal-weight baseline.
func consolidationSpecs(c Config, n int, equalWeights bool) []workload.TenantSpec {
	specs := make([]workload.TenantSpec, n)
	for i := range specs {
		name, weight, floor := fmt.Sprintf("bronze%d", i), 1, 1
		switch i {
		case 0:
			name, weight, floor = "gold", 4, 2
		case 1:
			name, weight = "silver", 2
		}
		if equalWeights {
			weight = 1
		}
		specs[i] = workload.TenantSpec{
			Name:      name,
			SF:        c.SF,
			Seed:      c.Seed + uint64(i),
			Mode:      workload.ModeDense,
			SLA:       tenant.SLA{Weight: weight, MinCores: floor},
			Placement: c.Placement,
		}
	}
	return specs
}

// consolidationSeconds is the fixed virtual duration of one consolidation
// phase. The phase is time-bounded — every client resubmits for the whole
// window — so per-tenant throughput reflects the cores each tenant was
// granted, not the size of a finite work list.
const consolidationSeconds = 0.25

// runConsolidationOnce builds a multi-tenant rig from the specs and
// saturates every tenant with a continuous theta-scan stream for the
// fixed phase window.
func runConsolidationOnce(c Config, specs []workload.TenantSpec) (*workload.MultiRig, *workload.MultiPhaseResult, error) {
	rig, err := workload.NewMultiRig(workload.MultiOptions{Tenants: specs})
	if err != nil {
		return nil, nil, err
	}
	loads := make([]workload.TenantLoad, len(specs))
	for i := range loads {
		loads[i] = workload.TenantLoad{
			Clients:          c.Clients,
			QueriesPerClient: 1 << 20, // never drains; the window bounds the phase
			Plan:             func(cl, k int) *db.Plan { return thetaPlan(0.45) },
		}
	}
	res, err := rig.Run(loads, 0, consolidationSeconds)
	if err != nil {
		return nil, nil, err
	}
	return rig, res, nil
}

// RunConsolidation executes the experiment: a weighted run and an
// equal-weight baseline of the same tenants and load. Config.Tenants
// selects the tenant count (2..4, default 3); Clients is the per-tenant
// concurrency.
func RunConsolidation(c Config) (*ConsolidationResult, error) {
	c = c.withDefaults()
	n := c.Tenants
	if n == 0 {
		n = 3
	}
	if n < 2 || n > 4 {
		return nil, fmt.Errorf("consolidation: tenant count %d outside 2..4", n)
	}

	weightedRig, weighted, err := runConsolidationOnce(c, consolidationSpecs(c, n, false))
	if err != nil {
		return nil, err
	}
	_, baseline, err := runConsolidationOnce(c, consolidationSpecs(c, n, true))
	if err != nil {
		return nil, err
	}

	res := &ConsolidationResult{
		MachineCores:        weighted.MachineCores,
		PeakAggregateDemand: weightedRig.Arbiter.PeakAggregateDemand(),
		ElapsedSeconds:      weighted.ElapsedSeconds,
	}
	res.PeakTotalCores = weighted.PeakTotalCores
	if baseline.PeakTotalCores > res.PeakTotalCores {
		res.PeakTotalCores = baseline.PeakTotalCores
	}
	for i, tr := range weighted.Tenants {
		spec := weightedRig.Tenants[i]
		res.Rows = append(res.Rows, ConsolidationRow{
			Tenant:             tr.Tenant,
			Weight:             spec.SLA.Weight,
			MinCores:           spec.SLA.MinCores,
			Throughput:         tr.Throughput,
			MeanCores:          tr.MeanCores,
			MaxCores:           tr.MaxCores,
			MinCoresSeen:       tr.MinCores,
			BaselineThroughput: baseline.Tenants[i].Throughput,
			BaselineMeanCores:  baseline.Tenants[i].MeanCores,
		})
	}
	return res, nil
}
