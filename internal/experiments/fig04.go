package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// fig04.go reproduces Figure 4: TPC-H Q6 with an increasing number of
// concurrent clients, comparing the hand-coded C kernel under preset
// affinities (Dense/C, Sparse/C, OS/C) against the Volcano engine under
// the plain OS scheduler (OS/MonetDB). Reported per user count:
// (a) throughput, (b) minor page faults/s, (c) HT traffic MB/s.

// Fig4Row is one (configuration, users) measurement.
type Fig4Row struct {
	Config     string
	Users      int
	Throughput float64 // queries (kernel runs) per second
	FaultsPerS float64
	HTMBPerS   float64
}

// Fig4Result is the typed view of the fig4 Result: the embedded generic
// Result renders; Rows and Row are decoded from its "sweep" table.
type Fig4Result struct {
	*Result
	Rows []Fig4Row
}

// Row returns the measurement for a configuration and user count, or nil.
func (r *Fig4Result) Row(config string, users int) *Fig4Row {
	for i := range r.Rows {
		if r.Rows[i].Config == config && r.Rows[i].Users == users {
			return &r.Rows[i]
		}
	}
	return nil
}

// runFig4 executes the sweep and encodes the generic result.
func runFig4(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	sweep := res.AddTable("sweep",
		colS("config"), colI("users"), colF("q/s", 3), colF("faults/s", 2), colF("HT MB/s", 2))
	for i, users := range c.Users {
		users := users
		err := phase(ctx, obs, fmt.Sprintf("users=%d", users), func() error {
			// OS/MonetDB: Volcano engine, no mechanism.
			r, err := newRig(c, workload.ModeOS, nil)
			if err != nil {
				return err
			}
			d := &workload.Driver{Rig: r, QueriesPerClient: 1}
			p := q6Fixed()
			ph := d.Run(users, func(cl, k int) *db.Plan { return tpch.BuildQ6With(p) })
			row := fig4Row("OS/MonetDB", users, ph)
			sweep.AddRow(row.Config, row.Users, row.Throughput, row.FaultsPerS, row.HTMBPerS)

			// The C kernel under its three affinity policies.
			for _, aff := range []db.RawAffinity{db.RawOS, db.RawDense, db.RawSparse} {
				row, err := runFig4Raw(c, users, aff)
				if err != nil {
					return err
				}
				sweep.AddRow(row.Config, row.Users, row.Throughput, row.FaultsPerS, row.HTMBPerS)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(c.Users))
	}
	return res, nil
}

// fig4ResultFrom decodes the generic Result into the typed accessor view.
func fig4ResultFrom(res *Result) (*Fig4Result, error) {
	sweep := res.Table("sweep")
	if sweep == nil {
		return nil, fmt.Errorf("experiments: fig4 result missing sweep table")
	}
	out := &Fig4Result{Result: res}
	for i := range sweep.Rows {
		cfg, _ := sweep.Str(i, 0)
		users, _ := sweep.Int(i, 1)
		tput, _ := sweep.Float(i, 2)
		faults, _ := sweep.Float(i, 3)
		ht, _ := sweep.Float(i, 4)
		out.Rows = append(out.Rows, Fig4Row{
			Config: cfg, Users: int(users), Throughput: tput,
			FaultsPerS: faults, HTMBPerS: ht,
		})
	}
	return out, nil
}

// RunFig4 executes the sweep through the registry and returns the typed
// view (compatibility wrapper over the Experiment API).
func RunFig4(c Config) (*Fig4Result, error) {
	res, err := run("fig4", c)
	if err != nil {
		return nil, err
	}
	return fig4ResultFrom(res)
}

func fig4Row(config string, users int, phase workload.PhaseResult) Fig4Row {
	row := Fig4Row{Config: config, Users: users, Throughput: phase.Throughput}
	if phase.ElapsedSeconds > 0 {
		row.FaultsPerS = float64(phase.Window.TotalMinorFaults()) / phase.ElapsedSeconds
		row.HTMBPerS = mb(phase.Window.TotalHTBytes()) / phase.ElapsedSeconds
	}
	return row
}

// runFig4Raw launches one raw-kernel run per user (each user is its own
// process of 4 fused-scan threads, Section II-B) and measures the window.
func runFig4Raw(c Config, users int, aff db.RawAffinity) (Fig4Row, error) {
	r, err := newRig(c, workload.ModeOS, nil)
	if err != nil {
		return Fig4Row{}, err
	}
	start := r.Machine.Snapshot()
	startT := r.Machine.NowSeconds()
	kernels := make([]*db.RawQ6, users)
	for u := 0; u < users; u++ {
		k, err := db.SpawnRawQ6(r.Store, r.Sched, 1000+u, 4, aff)
		if err != nil {
			return Fig4Row{}, err
		}
		kernels[u] = k
	}
	done := func() bool {
		for _, k := range kernels {
			if !k.Done() {
				return false
			}
		}
		return true
	}
	if !r.Sched.RunUntil(done, r.Machine.Topology().SecondsToCycles(600)) {
		return Fig4Row{}, fmt.Errorf("experiments: raw kernels (%v, %d users) timed out", aff, users)
	}
	elapsed := r.Machine.NowSeconds() - startT
	w := r.Machine.Snapshot().Sub(start)
	var name string
	switch aff {
	case db.RawDense:
		name = "Dense/C"
	case db.RawSparse:
		name = "Sparse/C"
	default:
		name = "OS/C"
	}
	row := Fig4Row{Config: name, Users: users}
	if elapsed > 0 {
		row.Throughput = float64(users) / elapsed
		row.FaultsPerS = float64(w.TotalMinorFaults()) / elapsed
		row.HTMBPerS = mb(w.TotalHTBytes()) / elapsed
	}
	return row, nil
}
