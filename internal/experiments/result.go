package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// result.go is the structured result model every experiment returns: named
// tables of typed columns plus scalar metrics, free-form text artifacts and
// run metadata. One model, three renderings — text, JSON, CSV — so tooling
// downstream of the Registry never needs per-experiment result types.

// Kind is the value type of a table column.
type Kind int

const (
	// KindString cells hold free text (configuration labels, modes).
	KindString Kind = iota
	// KindInt cells hold integral counters (users, tasks, misses).
	KindInt
	// KindFloat cells hold measurements (throughput, seconds, GB/s).
	KindFloat
	// KindDuration cells hold host wall-clock durations.
	KindDuration
)

// String names the kind for the JSON schema.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindDuration:
		return "duration"
	default:
		return "string"
	}
}

// Column describes one typed table column.
type Column struct {
	Name string
	Kind Kind
	// Prec is the decimal precision of KindFloat cells in text and CSV
	// renderings (zero means 3, the package-wide default).
	Prec int
}

// Column constructors keep table schemas terse at call sites.
func colS(name string) Column           { return Column{Name: name, Kind: KindString} }
func colI(name string) Column           { return Column{Name: name, Kind: KindInt} }
func colF(name string, prec int) Column { return Column{Name: name, Kind: KindFloat, Prec: prec} }
func colD(name string) Column           { return Column{Name: name, Kind: KindDuration} }

// Table is one named relation of a Result.
type Table struct {
	Name    string
	Columns []Column
	// Rows holds normalized cells: string, int64, float64 or
	// time.Duration, matching the column kinds.
	Rows [][]any
}

// AddRow appends a row, normalizing numeric cell types. Extra or missing
// cells are kept as-is; the renderers tolerate ragged rows (see
// table.String).
func (t *Table) AddRow(cells ...any) {
	row := make([]any, len(cells))
	for i, c := range cells {
		row[i] = normalizeCell(c)
	}
	t.Rows = append(t.Rows, row)
}

func normalizeCell(c any) any {
	switch v := c.(type) {
	case string, int64, float64, time.Duration:
		return v
	case int:
		return int64(v)
	case int32:
		return int64(v)
	case uint:
		return int64(v)
	case uint32:
		return int64(v)
	case uint64:
		return int64(v)
	case float32:
		return float64(v)
	case fmt.Stringer:
		return v.String()
	default:
		return fmt.Sprint(v)
	}
}

// prec returns the rendering precision of column i.
func (t *Table) prec(i int) int {
	if i < len(t.Columns) && t.Columns[i].Prec > 0 {
		return t.Columns[i].Prec
	}
	return 3
}

// formatCell renders one cell for the text and CSV outputs.
func (t *Table) formatCell(i int, c any) string {
	switch v := c.(type) {
	case string:
		return v
	case int64:
		return strconv.FormatInt(v, 10)
	case float64:
		return strconv.FormatFloat(v, 'f', t.prec(i), 64)
	case time.Duration:
		return v.String()
	default:
		return fmt.Sprint(v)
	}
}

// Float reads cell (row, col) as a float64 (ints widen); ok reports whether
// the cell exists and is numeric.
func (t *Table) Float(row, col int) (float64, bool) {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return 0, false
	}
	switch v := t.Rows[row][col].(type) {
	case float64:
		return v, true
	case int64:
		return float64(v), true
	case time.Duration:
		return float64(v), true
	}
	return 0, false
}

// Int reads cell (row, col) as an int64.
func (t *Table) Int(row, col int) (int64, bool) {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return 0, false
	}
	switch v := t.Rows[row][col].(type) {
	case int64:
		return v, true
	case float64:
		return int64(v), true
	case time.Duration:
		return int64(v), true
	}
	return 0, false
}

// Str reads cell (row, col) as a string.
func (t *Table) Str(row, col int) (string, bool) {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return "", false
	}
	s, ok := t.Rows[row][col].(string)
	return s, ok
}

// Dur reads cell (row, col) as a duration.
func (t *Table) Dur(row, col int) (time.Duration, bool) {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return 0, false
	}
	d, ok := t.Rows[row][col].(time.Duration)
	return d, ok
}

// MarshalJSON emits the table as a schema-bearing object:
// {"name":..., "columns":[{"name","kind"}...], "rows":[[...]...]}.
// Duration cells become integer nanoseconds.
func (t *Table) MarshalJSON() ([]byte, error) {
	type jsonColumn struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	cols := make([]jsonColumn, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = jsonColumn{Name: c.Name, Kind: c.Kind.String()}
	}
	rows := make([][]any, len(t.Rows))
	for i, r := range t.Rows {
		row := make([]any, len(r))
		for j, c := range r {
			if d, ok := c.(time.Duration); ok {
				row[j] = int64(d)
			} else {
				row[j] = c
			}
		}
		rows[i] = row
	}
	return json.Marshal(struct {
		Name    string       `json:"name"`
		Columns []jsonColumn `json:"columns"`
		Rows    [][]any      `json:"rows"`
	}{t.Name, cols, rows})
}

// Metric is one named scalar measurement of a run.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// Artifact is one named free-form text output (lifespan maps, tomographs).
type Artifact struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// Meta records how and when a Result was produced.
type Meta struct {
	// SF, Clients, Users, Seed and Tenants echo the effective Config.
	SF      float64 `json:"sf"`
	Clients int     `json:"clients"`
	Users   []int   `json:"users,omitempty"`
	Seed    uint64  `json:"seed"`
	Tenants int     `json:"tenants,omitempty"`
	// Engine is the engine flavour ("monetdb" or "sqlserver").
	Engine string `json:"engine"`
	// WallTime is the host wall-clock cost of the run.
	WallTime time.Duration `json:"wall_time_ns"`
	// Version identifies the build, git-describe style (VCS revision plus
	// a -dirty suffix), or "devel" outside a stamped build.
	Version string `json:"version"`
}

// Result is the structured outcome of one experiment run.
type Result struct {
	// Name is the registry name ("fig4", "consolidation", ...).
	Name string `json:"name"`
	// Title is the human headline ("Figure 4: Q6 under increasing
	// concurrency").
	Title string `json:"title"`
	Meta  Meta   `json:"meta"`
	// Metrics are scalar measurements in insertion order.
	Metrics []Metric `json:"metrics"`
	// Tables are the named relations in insertion order.
	Tables []*Table `json:"tables"`
	// Artifacts are free-form text outputs (omitted from CSV).
	Artifacts []Artifact `json:"artifacts,omitempty"`
}

// AddTable appends a named table with the given schema and returns it for
// row population.
func (r *Result) AddTable(name string, cols ...Column) *Table {
	t := &Table{Name: name, Columns: cols}
	r.Tables = append(r.Tables, t)
	return t
}

// Table returns the named table, or nil.
func (r *Result) Table(name string) *Table {
	for _, t := range r.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// AddMetric appends a scalar metric.
func (r *Result) AddMetric(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// Metric returns the named scalar, with ok reporting presence.
func (r *Result) Metric(name string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// AddArtifact appends a named text artifact.
func (r *Result) AddArtifact(name, text string) {
	r.Artifacts = append(r.Artifacts, Artifact{Name: name, Text: text})
}

// Artifact returns the named text artifact, or "".
func (r *Result) Artifact(name string) string {
	for _, a := range r.Artifacts {
		if a.Name == name {
			return a.Text
		}
	}
	return ""
}

// String renders the text form (WriteText).
func (r *Result) String() string {
	var b strings.Builder
	r.WriteText(&b) // strings.Builder writes cannot fail
	return b.String()
}

// errWriter forwards writes and remembers the first error, so the text
// renderer's many small writes need one check at the end.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

// WriteText renders the result for humans: title, meta line, metrics,
// aligned tables, then artifacts. It returns the first write error, so a
// full disk surfaces instead of leaving a silently truncated file.
func (r *Result) WriteText(dst io.Writer) error {
	w := &errWriter{w: dst}
	fmt.Fprintln(w, r.Title)
	fmt.Fprintf(w, "%s: seed=%d sf=%g clients=%d engine=%s version=%s wall=%s\n",
		r.Name, r.Meta.Seed, r.Meta.SF, r.Meta.Clients, r.Meta.Engine,
		r.Meta.Version, r.Meta.WallTime)
	for _, m := range r.Metrics {
		if m.Unit != "" {
			fmt.Fprintf(w, "  %s = %g %s\n", m.Name, m.Value, m.Unit)
		} else {
			fmt.Fprintf(w, "  %s = %g\n", m.Name, m.Value)
		}
	}
	for _, tb := range r.Tables {
		if tb.Name != "" {
			fmt.Fprintf(w, "[%s]\n", tb.Name)
		}
		txt := &table{header: make([]string, len(tb.Columns))}
		for i, c := range tb.Columns {
			txt.header[i] = c.Name
		}
		for _, row := range tb.Rows {
			cells := make([]string, len(row))
			for i, c := range row {
				cells[i] = tb.formatCell(i, c)
			}
			txt.add(cells...)
		}
		io.WriteString(w, txt.String())
	}
	for _, a := range r.Artifacts {
		fmt.Fprintf(w, "[%s]\n%s\n", a.Name, a.Text)
	}
	return w.err
}

// WriteJSON renders the result as one indented JSON document.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV renders the result as CSV blocks: one block per table — a
// "#table,<name>" marker record, the column header, then the rows — and a
// final "#metrics" block. Duration cells become integer nanoseconds so
// every data cell stays machine-parseable. Artifacts are omitted.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, tb := range r.Tables {
		if err := cw.Write([]string{"#table", tb.Name}); err != nil {
			return err
		}
		header := make([]string, len(tb.Columns))
		for i, c := range tb.Columns {
			header[i] = c.Name
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		for _, row := range tb.Rows {
			cells := make([]string, len(row))
			for i, c := range row {
				if d, ok := c.(time.Duration); ok {
					cells[i] = strconv.FormatInt(int64(d), 10)
				} else {
					cells[i] = tb.formatCell(i, c)
				}
			}
			if err := cw.Write(cells); err != nil {
				return err
			}
		}
	}
	if len(r.Metrics) > 0 {
		if err := cw.Write([]string{"#metrics", r.Name}); err != nil {
			return err
		}
		if err := cw.Write([]string{"name", "value", "unit"}); err != nil {
			return err
		}
		for _, m := range r.Metrics {
			if err := cw.Write([]string{m.Name, strconv.FormatFloat(m.Value, 'g', -1, 64), m.Unit}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render writes the result in the named format: "text", "json" or "csv".
func (r *Result) Render(w io.Writer, format string) error {
	switch format {
	case "", "text":
		return r.WriteText(w)
	case "json":
		return r.WriteJSON(w)
	case "csv":
		return r.WriteCSV(w)
	default:
		return fmt.Errorf("experiments: unknown format %q (want text, json or csv)", format)
	}
}

// buildVersion returns a git-describe-style identifier of the running
// binary: the stamped VCS revision (truncated, with -dirty when the tree
// was modified), the module version, or "devel".
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	var rev, suffix string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				suffix = "-dirty"
			}
		}
	}
	if rev == "" {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + suffix
}
