package experiments

import (
	"bytes"
	"context"
	"testing"
)

// equivalence_test.go is the experiment-level half of the fast-path
// equivalence guarantee: entire figures run under Config.Naive (the
// original tick loop, per-block charging and uncached datasets) must
// render byte-identically to the event-driven fast path — which the
// golden files already pin.

// naiveGoldenRun executes a registered experiment with every fast path
// disabled, normalizing the host-dependent metadata like goldenRun.
func naiveGoldenRun(t *testing.T, name string) *Result {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	cfg := goldenConfig()
	cfg.Naive = true
	res, err := e.Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Meta.WallTime = 0
	res.Meta.Version = "golden"
	return res
}

// TestNaiveFig4MatchesGolden: the naive path must reproduce the checked-in
// fig4 goldens bit for bit — throughput, fault and interconnect numbers
// all reflect scheduler stats and machine counters, so any drift between
// the two tick loops would surface here.
func TestNaiveFig4MatchesGolden(t *testing.T) {
	res := naiveGoldenRun(t, "fig4")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestNaiveConsolidationMatchesGolden covers the multi-tenant rig: shared
// scheduler, arbiter and several engines on the naive path.
func TestNaiveConsolidationMatchesGolden(t *testing.T) {
	res := naiveGoldenRun(t, "consolidation")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestNaiveHTAPMixMatchesGolden covers the heterogeneous mix: point
// lookups (funcTask binary search), compiled declarative pipelines and
// the hand-written analytics must all charge identically on the naive
// path, down to the per-class latency splits.
func TestNaiveHTAPMixMatchesGolden(t *testing.T) {
	res := naiveGoldenRun(t, "htap-mix")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestNaiveLatencyLoadMatchesGolden extends the equivalence guarantee to
// the open-loop path: arrival admission, queue waits and histogram
// percentiles must be bit-identical between the two tick loops.
func TestNaiveLatencyLoadMatchesGolden(t *testing.T) {
	res := naiveGoldenRun(t, "latency-load")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestNaiveBurstResponseMatchesGolden covers the open-loop burst
// timelines, including the mechanism's backlog-clamped control path.
func TestNaiveBurstResponseMatchesGolden(t *testing.T) {
	res := naiveGoldenRun(t, "burst-response")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestNaiveScaleOutMatchesGolden extends the equivalence guarantee to
// the cluster tier: fleets of every sweep size, coordinator routing and
// per-machine admission must be bit-identical between the tick loops.
func TestNaiveScaleOutMatchesGolden(t *testing.T) {
	res := naiveGoldenRun(t, "scale-out")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestNaiveRebalanceCostMatchesGolden covers the cluster arbiter on the
// naive path: demand collection, apportionment and delayed grant landing
// must not depend on which tick loop ran the machines.
func TestNaiveRebalanceCostMatchesGolden(t *testing.T) {
	res := naiveGoldenRun(t, "rebalance-cost")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestNaiveAndFastRenderIdentically compares the two paths directly on a
// figure without golden coverage (fig13 reports stolen-task and tick
// statistics, the counters most sensitive to scheduler divergence).
func TestNaiveAndFastRenderIdentically(t *testing.T) {
	e, ok := Lookup("fig13")
	if !ok {
		t.Fatal("fig13 not registered")
	}
	run := func(naive bool) []byte {
		cfg := Config{SF: 0.002, Clients: 8, Users: []int{1, 4}, Seed: 3}
		cfg.Naive = naive
		res, err := e.Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res.Meta.WallTime = 0
		res.Meta.Version = "equiv"
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fast, naive := run(false), run(true)
	if !bytes.Equal(fast, naive) {
		t.Errorf("fig13 diverged between fast and naive paths\n--- fast ---\n%s\n--- naive ---\n%s", fast, naive)
	}
}
