// Package experiments is the repository's experiment platform: a registry
// of named, tagged, runnable scenarios behind one small interface.
//
// Every evaluation artifact of the paper (Sections II and V: figures 4-20,
// the mechanism-overhead measurement, the multi-tenant consolidation) is
// an Experiment — Name, Describe, Run(ctx, Config, Observer) — registered
// in the package Registry (see register.go). A run produces a structured
// Result: named tables of typed columns, scalar metrics, free-form text
// artifacts and run metadata, rendering uniformly to text, JSON and CSV.
// The Runner executes a batch of experiments concurrently with a worker
// pool, honoring context cancellation and collecting per-experiment errors.
// cmd/elasticbench (list/run), the root benchmarks and the typed RunFigN
// compatibility wrappers all sit on this surface; a new scenario is one
// run function plus one Register call (~30 lines), not a new bespoke API.
//
// Scaling note: the paper ran a 1 GB database (SF 1) with 256 clients and
// a 50 ms-class control loop on real hardware. The simulation defaults to
// SF 0.005-0.02 with proportionally shorter quanta and control periods so
// a full figure regenerates in seconds; Config lets callers raise SF and
// client counts toward the paper's operating point.
package experiments

import (
	"fmt"
	"strings"

	"elasticore/internal/db"
	"elasticore/internal/elastic"
	"elasticore/internal/faults"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// Config scales an experiment.
type Config struct {
	// SF is the TPC-H scale factor (default 0.005; negative rejected).
	SF float64
	// Clients is the concurrency for single-point experiments
	// (default 64; the paper uses 256; negative rejected).
	Clients int
	// Users is the concurrency sweep for Fig 4/13 (default 1,4,16,64;
	// every entry must be >= 1).
	Users []int
	// Seed varies data and parameters (default 1).
	Seed uint64
	// Placement selects the engine flavour (MonetDB-like by default).
	Placement db.Placement
	// Tenants is the tenant count of the consolidation experiment
	// (2..4; zero defaults to 3; anything else is rejected).
	Tenants int
	// Loads is the offered-load sweep of the latency-load experiment, as
	// fractions of the measured closed-loop saturation throughput
	// (default 0.25, 0.5, 0.75, 1, 1.5, 2; every entry must be > 0).
	Loads []float64
	// OpenArrivals bounds the arrivals offered per open-loop sweep point
	// (default 120; negative rejected).
	OpenArrivals int
	// Arrival selects the latency-load arrival-process family: "poisson"
	// (default), "mmpp" or "diurnal".
	Arrival string
	// Machines is the fleet size for the cluster experiments (default 4;
	// must be >= 1; scale-out sweeps 1..Machines in powers of two).
	Machines int
	// Shards is the fleet's partition count (default 2x Machines; must
	// be >= Machines so every machine owns data).
	Shards int
	// Topology selects the machine shape for rig-backed experiments: a
	// zoo name (numa.ZooNames: opteron, 2socket, 4ring, 8twisted, epyc)
	// or a "nodes x cores [@ hops...]" spec (numa.ParseTopology). Empty
	// selects the SF-scaled Opteron testbed. The topology-sweep
	// experiment ignores it — it sweeps the whole zoo.
	Topology string
	// Replicas keeps R copies of every shard in the fleets the cluster
	// experiments build (0 picks each experiment's own default; must fit
	// the fleet: Replicas <= Machines). The fault-tolerance experiment
	// uses it for its replicated variant and defaults that variant to 2.
	Replicas int
	// Faults is a deterministic failure-plan spec (internal/faults
	// grammar or JSON, e.g. "crash m1 @0.02s for 0.06s") injected into
	// every fleet the cluster experiments build. Empty disables
	// injection and leaves every experiment byte-identical to a build
	// without the fault subsystem; the fault-tolerance experiment
	// synthesizes its own crash window when this is empty.
	Faults string
	// Workers is the goroutine count every fleet the cluster experiments
	// build spreads machine construction and machine ticks over (0
	// selects GOMAXPROCS, 1 forces the sequential engine; negative
	// rejected). Results are bit-identical at every value — the parallel
	// engine synchronizes at control-period epoch barriers and replays
	// staged telemetry in sequential order.
	Workers int
	// LookupRatios is the point-lookup fraction sweep of the htap-mix
	// experiment (default 0, 0.25, 0.5, 0.75, 1; every entry must lie in
	// [0, 1]).
	LookupRatios []float64
	// Naive runs every rig on the pre-optimization simulator hot paths:
	// the walk-every-core tick loop, per-block memory charging, unpooled
	// Go-map operator execution and uncached dataset generation. Results
	// are bit-identical to the default fast paths; only wall-clock time
	// differs. Used by the equivalence tests and `elasticbench bench`.
	Naive bool
	// Bus, when set, is attached to every rig the experiment builds, so
	// one telemetry stream spans the run (`elasticbench run -trace`).
	// Pure observation: results are bit-identical with or without it,
	// and it takes no part in config validation or metadata.
	Bus *obs.Bus
}

// withDefaults validates the config and fills zero values. All validation
// is central here — experiment bodies receive a config that is already
// known good.
func (c Config) withDefaults() (Config, error) {
	if c.SF < 0 {
		return c, fmt.Errorf("experiments: negative scale factor %g", c.SF)
	}
	if c.SF == 0 {
		c.SF = 0.005
	}
	if c.Clients < 0 {
		return c, fmt.Errorf("experiments: client count %d below 1", c.Clients)
	}
	if c.Clients == 0 {
		c.Clients = 64
	}
	if len(c.Users) == 0 {
		c.Users = []int{1, 4, 16, 64}
	}
	for _, u := range c.Users {
		if u < 1 {
			return c, fmt.Errorf("experiments: user count %d below 1", u)
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tenants == 0 {
		c.Tenants = 3
	}
	if c.Tenants < 2 || c.Tenants > 4 {
		return c, fmt.Errorf("experiments: tenant count %d outside 2..4", c.Tenants)
	}
	if len(c.Loads) == 0 {
		c.Loads = []float64{0.25, 0.5, 0.75, 1, 1.5, 2}
	}
	for _, l := range c.Loads {
		if l <= 0 {
			return c, fmt.Errorf("experiments: offered load %g not positive", l)
		}
	}
	if c.OpenArrivals < 0 {
		return c, fmt.Errorf("experiments: negative open-loop arrival count %d", c.OpenArrivals)
	}
	if c.Machines < 0 {
		return c, fmt.Errorf("experiments: machine count %d below 1", c.Machines)
	}
	if c.Machines == 0 {
		c.Machines = 4
	}
	if c.Shards == 0 {
		c.Shards = 2 * c.Machines
	}
	if c.Shards < c.Machines {
		return c, fmt.Errorf("experiments: %d shards below %d machines (every machine must own data)", c.Shards, c.Machines)
	}
	if c.OpenArrivals == 0 {
		c.OpenArrivals = 120
	}
	if c.Replicas < 0 {
		return c, fmt.Errorf("experiments: negative replica count %d", c.Replicas)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("experiments: negative worker count %d", c.Workers)
	}
	if c.Replicas > c.Machines {
		return c, fmt.Errorf("experiments: %d replicas exceed %d machines", c.Replicas, c.Machines)
	}
	if len(c.LookupRatios) == 0 {
		c.LookupRatios = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	for _, r := range c.LookupRatios {
		if r < 0 || r > 1 {
			return c, fmt.Errorf("experiments: lookup ratio %g outside [0, 1]", r)
		}
	}
	if c.Faults != "" {
		if _, err := faults.Parse(c.Faults); err != nil {
			return c, err
		}
	}
	switch c.Arrival {
	case "":
		c.Arrival = "poisson"
	case "poisson", "mmpp", "diurnal":
	default:
		return c, fmt.Errorf("experiments: unknown arrival process %q (want poisson, mmpp or diurnal)", c.Arrival)
	}
	if c.Topology != "" {
		if _, err := numa.ParseTopology(c.Topology); err != nil {
			return c, err
		}
	}
	return c, nil
}

// machineTopology resolves Config.Topology into a machine shape scaled
// to the given total scale factor, or nil when the config keeps the
// default testbed. Validation already ran in withDefaults, so a parse
// failure here is impossible for configs that came through Run.
func (c Config) machineTopology(sf float64) (*numa.Topology, error) {
	if c.Topology == "" {
		return nil, nil
	}
	t, err := numa.ParseTopology(c.Topology)
	if err != nil {
		return nil, err
	}
	return workload.ScaleTopology(t, sf), nil
}

// engineName labels the engine flavour for metadata and listings.
func (c Config) engineName() string {
	if c.Placement == db.PlacementNUMAAware {
		return "sqlserver"
	}
	return "monetdb"
}

// modeByName is the inverse of workload.Mode.String, used when decoding
// generic Result tables back into typed rows.
func modeByName(name string) (workload.Mode, bool) {
	for _, m := range workload.AllModes {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// newRig builds a workload rig with simulation timing and machine
// geometry scaled to the dataset (workload.ScaledTopology): 50 us
// quantum, 0.25 ms control period, SF-proportional caches and
// bandwidths. Config.Topology, when set, swaps the machine shape.
func newRig(c Config, mode workload.Mode, strategy elastic.Strategy) (*workload.Rig, error) {
	topo, err := c.machineTopology(c.SF)
	if err != nil {
		return nil, err
	}
	return workload.NewRig(workload.Options{
		SF:        c.SF,
		Seed:      c.Seed,
		Mode:      mode,
		Placement: c.Placement,
		Strategy:  strategy,
		Topology:  topo,
		Naive:     c.Naive,
		Bus:       c.Bus,
	})
}

// q6Fixed returns the canonical Q6 parameters used by the
// microbenchmarks: year 1997, discount 0.07, quantity 24 (Figure 3).
func q6Fixed() tpch.Q6Params {
	return tpch.Q6Params{Year: 1997, Discount: 0.07, Quantity: 24}
}

// thetaPlan builds the isolated thetasubselect workload of Figures 13-15:
// a partitioned scan of l_quantity at the given selectivity (0..1) whose
// candidate list is materialized and counted.
func thetaPlan(selectivity float64) *db.Plan {
	cut := 1 + selectivity*50
	return &db.Plan{Name: "thetasubselect", Stages: []db.StageFn{
		db.ThetaSelect("lineitem", "l_quantity", "c1", db.PredFLess(cut)),
		db.Count("c1", "result"),
	}}
}

// table renders aligned rows: header plus formatted cells. It is the text
// renderer behind Result.WriteText.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Cells beyond the header are printed unpadded instead of
			// indexing widths out of range.
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// mb converts bytes to megabytes.
func mb(bytes uint64) float64 { return float64(bytes) / 1e6 }

// addTimelineTable renders probe samples as a Result table: one row per
// control-period snapshot with the allocation, load reading, backlog,
// window traffic and energy, and (when a latency source was attached)
// the cumulative latency quantiles.
func addTimelineTable(res *Result, topo *numa.Topology, samples []obs.Snapshot) {
	tl := res.AddTable("timeline",
		colF("t(s)", 4), colI("cores"), colI("load"), colI("backlog"),
		colF("ht(MB)", 2), colF("imc(MB)", 2), colF("energy(J)", 3),
		colF("p50(ms)", 3), colF("p99(ms)", 3))
	for _, s := range samples {
		tl.AddRow(topo.CyclesToSeconds(s.Now), s.Allocated, s.Load, s.Backlog,
			mb(s.HTBytes), mb(s.IMCBytes), s.EnergyJoules,
			topo.CyclesToSeconds(s.P50)*1e3, topo.CyclesToSeconds(s.P99)*1e3)
	}
}

// perNodeIMCThroughput returns GB/s served by each node's memory
// controller over a window.
func perNodeIMCThroughput(topo *numa.Topology, w numa.Counters) []float64 {
	secs := topo.CyclesToSeconds(w.Now)
	out := make([]float64, len(w.Nodes))
	if secs == 0 {
		return out
	}
	for i, n := range w.Nodes {
		out[i] = float64(n.IMCBytes) / secs / 1e9
	}
	return out
}
