// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections II and V): one Run function per artifact, each
// returning a typed result whose String method prints the same rows or
// series the paper reports. The benchmarks in the repository root and the
// cmd/elasticbench tool both delegate here.
//
// Scaling note: the paper ran a 1 GB database (SF 1) with 256 clients and
// a 50 ms-class control loop on real hardware. The simulation defaults to
// SF 0.005-0.02 with proportionally shorter quanta and control periods so
// a full figure regenerates in seconds; Config lets callers raise SF and
// client counts toward the paper's operating point.
package experiments

import (
	"fmt"
	"strings"

	"elasticore/internal/db"
	"elasticore/internal/elastic"
	"elasticore/internal/numa"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// Config scales an experiment.
type Config struct {
	// SF is the TPC-H scale factor (default 0.005).
	SF float64
	// Clients is the concurrency for single-point experiments
	// (default 64; the paper uses 256).
	Clients int
	// Users is the concurrency sweep for Fig 4/13 (default 1,4,16,64).
	Users []int
	// Seed varies data and parameters (default 1).
	Seed uint64
	// Placement selects the engine flavour (MonetDB-like by default).
	Placement db.Placement
	// Tenants is the tenant count of the consolidation experiment
	// (2..4; the experiment defaults to 3 when zero).
	Tenants int
}

func (c Config) withDefaults() Config {
	if c.SF == 0 {
		c.SF = 0.005
	}
	if c.Clients == 0 {
		c.Clients = 64
	}
	if len(c.Users) == 0 {
		c.Users = []int{1, 4, 16, 64}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// newRig builds a workload rig with simulation timing and machine
// geometry scaled to the dataset (workload.ScaledTopology): 50 us
// quantum, 0.25 ms control period, SF-proportional caches and
// bandwidths.
func newRig(c Config, mode workload.Mode, strategy elastic.Strategy) (*workload.Rig, error) {
	return workload.NewRig(workload.Options{
		SF:        c.SF,
		Seed:      c.Seed,
		Mode:      mode,
		Placement: c.Placement,
		Strategy:  strategy,
	})
}

// q6Fixed returns the canonical Q6 parameters used by the
// microbenchmarks: year 1997, discount 0.07, quantity 24 (Figure 3).
func q6Fixed() tpch.Q6Params {
	return tpch.Q6Params{Year: 1997, Discount: 0.07, Quantity: 24}
}

// thetaPlan builds the isolated thetasubselect workload of Figures 13-15:
// a partitioned scan of l_quantity at the given selectivity (0..1) whose
// candidate list is materialized and counted.
func thetaPlan(selectivity float64) *db.Plan {
	cut := 1 + selectivity*50
	return &db.Plan{Name: "thetasubselect", Stages: []db.StageFn{
		db.ThetaSelect("lineitem", "l_quantity", "c1",
			db.Pred{F: func(v float64) bool { return v < cut }}),
		db.Count("c1", "result"),
	}}
}

// table renders aligned rows: header plus formatted cells.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// mb converts bytes to megabytes.
func mb(bytes uint64) float64 { return float64(bytes) / 1e6 }

// perNodeIMCThroughput returns GB/s served by each node's memory
// controller over a window.
func perNodeIMCThroughput(topo *numa.Topology, w numa.Counters) []float64 {
	secs := topo.CyclesToSeconds(w.Now)
	out := make([]float64, len(w.Nodes))
	if secs == 0 {
		return out
	}
	for i, n := range w.Nodes {
		out[i] = float64(n.IMCBytes) / secs / 1e9
	}
	return out
}
