package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/petrinet"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// fig07.go reproduces Figure 7: the PrT state transitions fired while the
// mechanism supports Q6, with the CPU usage and the allocated core count
// at every control period.

// Fig7Point is one control-period evaluation.
type Fig7Point struct {
	AtSeconds float64
	Label     string
	CPULoad   int
	Cores     int
}

// Fig7Result is the typed view of the fig7 Result: the transition timeline
// decoded from its "transitions" table plus the summary metrics.
type Fig7Result struct {
	*Result
	Points []Fig7Point
	// PeakCores and FinalCores summarize the ramp-up/release behaviour.
	PeakCores, FinalCores int
	// Allocations and Releases count fired actions.
	Allocations, Releases int
}

// runFig7 drives a burst of concurrent Q6 clients under the adaptive
// mechanism and records the fired transitions.
func runFig7(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	tl := res.AddTable("transitions",
		colF("t(s)", 3), colS("transition"), colI("cpu%"), colI("cores"))
	var peak, final, allocations, releases int
	err := phase(ctx, obs, fmt.Sprintf("q6 burst clients=%d", c.Clients), func() error {
		r, err := newRig(c, workload.ModeAdaptive, nil)
		if err != nil {
			return err
		}
		pr := r.EnableProbe(0)
		d := &workload.Driver{Rig: r, QueriesPerClient: 2}
		d.RunSameQuery(c.Clients, tpch.BuildQ6)
		// Let the system idle so the release transitions fire too.
		idleTicks := 50
		for i := 0; i < idleTicks; i++ {
			r.Tick()
		}

		topo := r.Machine.Topology()
		events := r.Mech.Events()
		for _, e := range events {
			tl.AddRow(topo.CyclesToSeconds(e.Now), e.Label, e.U, e.NAlloc)
			if e.NAlloc > peak {
				peak = e.NAlloc
			}
			switch e.Action {
			case petrinet.DecisionAllocate:
				allocations++
			case petrinet.DecisionRelease:
				releases++
			}
		}
		if n := len(events); n > 0 {
			final = events[n-1].NAlloc
		}
		addTimelineTable(res, topo, pr.Samples())
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.AddMetric("peak_cores", float64(peak), "cores")
	res.AddMetric("final_cores", float64(final), "cores")
	res.AddMetric("allocations", float64(allocations), "")
	res.AddMetric("releases", float64(releases), "")
	obs.Progress(1, 1)
	return res, nil
}

// fig7ResultFrom decodes the generic Result into the typed view.
func fig7ResultFrom(res *Result) (*Fig7Result, error) {
	tl := res.Table("transitions")
	if tl == nil {
		return nil, fmt.Errorf("experiments: fig7 result missing transitions table")
	}
	out := &Fig7Result{Result: res}
	for i := range tl.Rows {
		at, _ := tl.Float(i, 0)
		label, _ := tl.Str(i, 1)
		load, _ := tl.Int(i, 2)
		cores, _ := tl.Int(i, 3)
		out.Points = append(out.Points, Fig7Point{
			AtSeconds: at, Label: label, CPULoad: int(load), Cores: int(cores),
		})
	}
	peak, _ := res.Metric("peak_cores")
	final, _ := res.Metric("final_cores")
	allocs, _ := res.Metric("allocations")
	rels, _ := res.Metric("releases")
	out.PeakCores, out.FinalCores = int(peak), int(final)
	out.Allocations, out.Releases = int(allocs), int(rels)
	return out, nil
}

// RunFig7 executes the burst through the registry and returns the typed
// view.
func RunFig7(c Config) (*Fig7Result, error) {
	res, err := run("fig7", c)
	if err != nil {
		return nil, err
	}
	return fig7ResultFrom(res)
}
