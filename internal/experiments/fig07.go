package experiments

import (
	"fmt"

	"elasticore/internal/petrinet"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// fig07.go reproduces Figure 7: the PrT state transitions fired while the
// mechanism supports Q6, with the CPU usage and the allocated core count
// at every control period.

// Fig7Point is one control-period evaluation.
type Fig7Point struct {
	AtSeconds float64
	Label     string
	CPULoad   int
	Cores     int
}

// Fig7Result is the transition timeline.
type Fig7Result struct {
	Points []Fig7Point
	// PeakCores and FinalCores summarize the ramp-up/release behaviour.
	PeakCores, FinalCores int
	// Allocations and Releases count fired actions.
	Allocations, Releases int
}

// String renders the timeline like the Figure 7 x-axis.
func (r *Fig7Result) String() string {
	t := &table{header: []string{"t(s)", "transition", "cpu%", "cores"}}
	for _, p := range r.Points {
		t.add(f3(p.AtSeconds), p.Label, fmt.Sprint(p.CPULoad), fmt.Sprint(p.Cores))
	}
	return fmt.Sprintf("Figure 7: state transitions (peak=%d cores, final=%d, +%d/-%d)\n%s",
		r.PeakCores, r.FinalCores, r.Allocations, r.Releases, t.String())
}

// RunFig7 drives a burst of concurrent Q6 clients under the adaptive
// mechanism and returns the recorded transitions.
func RunFig7(c Config) (*Fig7Result, error) {
	c = c.withDefaults()
	r, err := newRig(c, workload.ModeAdaptive, nil)
	if err != nil {
		return nil, err
	}
	d := &workload.Driver{Rig: r, QueriesPerClient: 2}
	d.RunSameQuery(c.Clients, tpch.BuildQ6)
	// Let the system idle so the release transitions fire too.
	idleTicks := 50
	for i := 0; i < idleTicks; i++ {
		r.Tick()
	}

	res := &Fig7Result{}
	topo := r.Machine.Topology()
	for _, e := range r.Mech.Events() {
		res.Points = append(res.Points, Fig7Point{
			AtSeconds: topo.CyclesToSeconds(e.Now),
			Label:     e.Label,
			CPULoad:   e.U,
			Cores:     e.NAlloc,
		})
		if e.NAlloc > res.PeakCores {
			res.PeakCores = e.NAlloc
		}
		switch e.Action {
		case petrinet.DecisionAllocate:
			res.Allocations++
		case petrinet.DecisionRelease:
			res.Releases++
		}
	}
	if n := len(res.Points); n > 0 {
		res.FinalCores = res.Points[n-1].Cores
	}
	return res, nil
}
