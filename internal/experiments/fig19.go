package experiments

import (
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/metrics"
	"elasticore/internal/workload"
)

// fig19.go reproduces Figure 19: the mixed-phases workload split per
// query — per-query speedup of each mechanism mode over the OS scheduler,
// and the per-query HT/IMC ratio (smaller is more NUMA-friendly) — for
// both the MonetDB-like and the SQL-Server-like engine.

// Fig19Query is one query's cross-mode measurement.
type Fig19Query struct {
	QueryNumber int
	// LatencySecs and Ratio are indexed by mode.
	LatencySecs map[workload.Mode]float64
	Ratio       map[workload.Mode]float64
	// Speedup is latency(OS) / latency(mode) for the mechanism modes.
	Speedup map[workload.Mode]float64
}

// Fig19Result is one engine flavour's full run.
type Fig19Result struct {
	Engine  string
	Clients int
	Queries []Fig19Query
	// MaxSpeedup, MeanSpeedup and MaxRatioImprovement summarize the
	// adaptive mode like the paper's headline numbers.
	MaxSpeedup, MeanSpeedup, MaxRatioImprovement, MeanRatioImprovement float64
}

// String renders the per-query split.
func (r *Fig19Result) String() string {
	t := &table{header: []string{"query", "OS lat(s)", "adaptive lat(s)", "speedup", "OS ratio", "adaptive ratio", "ratio x-smaller"}}
	for _, q := range r.Queries {
		osr, ar := q.Ratio[workload.ModeOS], q.Ratio[workload.ModeAdaptive]
		imp := 0.0
		if ar > 0 {
			imp = osr / ar
		}
		t.add(fmt.Sprintf("Q%d", q.QueryNumber),
			f3(q.LatencySecs[workload.ModeOS]), f3(q.LatencySecs[workload.ModeAdaptive]),
			f2(q.Speedup[workload.ModeAdaptive]), f3(osr), f3(ar), f2(imp))
	}
	return fmt.Sprintf(
		"Figure 19 (%s): mixed phases, %d clients — adaptive max speedup %.2fx (mean %.2fx), ratio up to %.2fx smaller (mean %.2fx)\n%s",
		r.Engine, r.Clients, r.MaxSpeedup, r.MeanSpeedup, r.MaxRatioImprovement, r.MeanRatioImprovement, t.String())
}

// RunFig19 executes the per-query mixed workload for one engine flavour
// across all four modes.
func RunFig19(c Config) (*Fig19Result, error) {
	c = c.withDefaults()
	engine := "MonetDB"
	if c.Placement == db.PlacementNUMAAware {
		engine = "SQLServer"
	}
	res := &Fig19Result{Engine: engine, Clients: c.Clients}

	perMode := make(map[workload.Mode][]workload.QueryPhase)
	for _, mode := range workload.AllModes {
		r, err := newRig(c, mode, nil)
		if err != nil {
			return nil, err
		}
		perMode[mode] = workload.MixedPhases(r, c.Clients)
	}

	n := len(perMode[workload.ModeOS])
	var speedups, improvements []float64
	for i := 0; i < n; i++ {
		q := Fig19Query{
			QueryNumber: perMode[workload.ModeOS][i].QueryNumber,
			LatencySecs: map[workload.Mode]float64{},
			Ratio:       map[workload.Mode]float64{},
			Speedup:     map[workload.Mode]float64{},
		}
		for mode, phases := range perMode {
			q.LatencySecs[mode] = phases[i].MeanLatencySeconds
			q.Ratio[mode] = phases[i].HTIMCRatio()
		}
		osLat := q.LatencySecs[workload.ModeOS]
		for _, mode := range []workload.Mode{workload.ModeDense, workload.ModeSparse, workload.ModeAdaptive} {
			if lat := q.LatencySecs[mode]; lat > 0 {
				q.Speedup[mode] = osLat / lat
			}
		}
		speedups = append(speedups, q.Speedup[workload.ModeAdaptive])
		if ar := q.Ratio[workload.ModeAdaptive]; ar > 0 {
			improvements = append(improvements, q.Ratio[workload.ModeOS]/ar)
		}
		res.Queries = append(res.Queries, q)
	}
	res.MaxSpeedup = metrics.Max(speedups)
	res.MeanSpeedup = metrics.Mean(speedups)
	res.MaxRatioImprovement = metrics.Max(improvements)
	res.MeanRatioImprovement = metrics.Mean(improvements)
	return res, nil
}
