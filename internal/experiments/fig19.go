package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/metrics"
	"elasticore/internal/workload"
)

// fig19.go reproduces Figure 19: the mixed-phases workload split per
// query — per-query speedup of each mechanism mode over the OS scheduler,
// and the per-query HT/IMC ratio (smaller is more NUMA-friendly) — for
// both the MonetDB-like and the SQL-Server-like engine.

// Fig19Query is one query's cross-mode measurement.
type Fig19Query struct {
	QueryNumber int
	// LatencySecs and Ratio are indexed by mode.
	LatencySecs map[workload.Mode]float64
	Ratio       map[workload.Mode]float64
	// Speedup is latency(OS) / latency(mode) for the mechanism modes.
	Speedup map[workload.Mode]float64
}

// Fig19Result is the typed view of the fig19 Result.
type Fig19Result struct {
	*Result
	Engine  string
	Clients int
	Queries []Fig19Query
	// MaxSpeedup, MeanSpeedup and MaxRatioImprovement summarize the
	// adaptive mode like the paper's headline numbers.
	MaxSpeedup, MeanSpeedup, MaxRatioImprovement, MeanRatioImprovement float64
}

// mechModes are the three mechanism modes compared against the OS.
var mechModes = []workload.Mode{workload.ModeDense, workload.ModeSparse, workload.ModeAdaptive}

// runFig19 executes the per-query mixed workload for one engine flavour
// across all four modes.
func runFig19(ctx context.Context, c Config, obs Observer) (*Result, error) {
	perMode := make(map[workload.Mode][]workload.QueryPhase)
	for i, mode := range workload.AllModes {
		mode := mode
		err := phase(ctx, obs, "mode="+mode.String(), func() error {
			r, err := newRig(c, mode, nil)
			if err != nil {
				return err
			}
			perMode[mode] = workload.MixedPhases(r, c.Clients)
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(workload.AllModes))
	}

	res := &Result{}
	cols := []Column{colI("query")}
	for _, mode := range workload.AllModes {
		cols = append(cols, colF("lat(s) "+mode.String(), 3))
	}
	for _, mode := range workload.AllModes {
		cols = append(cols, colF("ratio "+mode.String(), 3))
	}
	for _, mode := range mechModes {
		cols = append(cols, colF("speedup "+mode.String(), 2))
	}
	tb := res.AddTable("queries", cols...)

	n := len(perMode[workload.ModeOS])
	var speedups, improvements []float64
	for i := 0; i < n; i++ {
		osLat := perMode[workload.ModeOS][i].MeanLatencySeconds
		cells := []any{perMode[workload.ModeOS][i].QueryNumber}
		for _, mode := range workload.AllModes {
			cells = append(cells, perMode[mode][i].MeanLatencySeconds)
		}
		for _, mode := range workload.AllModes {
			cells = append(cells, perMode[mode][i].HTIMCRatio())
		}
		var adaptiveSpeedup float64
		for _, mode := range mechModes {
			speedup := 0.0
			if lat := perMode[mode][i].MeanLatencySeconds; lat > 0 {
				speedup = osLat / lat
			}
			if mode == workload.ModeAdaptive {
				adaptiveSpeedup = speedup
			}
			cells = append(cells, speedup)
		}
		tb.AddRow(cells...)
		speedups = append(speedups, adaptiveSpeedup)
		if ar := perMode[workload.ModeAdaptive][i].HTIMCRatio(); ar > 0 {
			improvements = append(improvements, perMode[workload.ModeOS][i].HTIMCRatio()/ar)
		}
	}
	res.AddMetric("max_speedup", metrics.Max(speedups), "x")
	res.AddMetric("mean_speedup", metrics.Mean(speedups), "x")
	res.AddMetric("max_ratio_improvement", metrics.Max(improvements), "x")
	res.AddMetric("mean_ratio_improvement", metrics.Mean(improvements), "x")
	return res, nil
}

// fig19ResultFrom decodes the generic Result into the typed view.
func fig19ResultFrom(res *Result) (*Fig19Result, error) {
	tb := res.Table("queries")
	if tb == nil {
		return nil, fmt.Errorf("experiments: fig19 result missing queries table")
	}
	out := &Fig19Result{Result: res, Clients: res.Meta.Clients, Engine: "MonetDB"}
	if res.Meta.Engine == "sqlserver" {
		out.Engine = "SQLServer"
	}
	nModes := len(workload.AllModes)
	for i := range tb.Rows {
		qn, _ := tb.Int(i, 0)
		q := Fig19Query{
			QueryNumber: int(qn),
			LatencySecs: map[workload.Mode]float64{},
			Ratio:       map[workload.Mode]float64{},
			Speedup:     map[workload.Mode]float64{},
		}
		for j, mode := range workload.AllModes {
			q.LatencySecs[mode], _ = tb.Float(i, 1+j)
			q.Ratio[mode], _ = tb.Float(i, 1+nModes+j)
		}
		for j, mode := range mechModes {
			q.Speedup[mode], _ = tb.Float(i, 1+2*nModes+j)
		}
		out.Queries = append(out.Queries, q)
	}
	out.MaxSpeedup, _ = res.Metric("max_speedup")
	out.MeanSpeedup, _ = res.Metric("mean_speedup")
	out.MaxRatioImprovement, _ = res.Metric("max_ratio_improvement")
	out.MeanRatioImprovement, _ = res.Metric("mean_ratio_improvement")
	return out, nil
}

// RunFig19 executes the mixed workload through the registry and returns
// the typed view.
func RunFig19(c Config) (*Fig19Result, error) {
	res, err := run("fig19", c)
	if err != nil {
		return nil, err
	}
	return fig19ResultFrom(res)
}
