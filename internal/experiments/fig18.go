package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/workload"
)

// fig18.go reproduces Figure 18: the stable-phases workload — each of the
// 22 queries executed concurrently by all clients, one query at a time —
// comparing {OS, Adaptive} x {MonetDB-like, SQL-Server-like}, with
// per-socket memory-throughput timelines.

// Fig18Run is one configuration's outcome.
type Fig18Run struct {
	Label        string
	Mode         workload.Mode
	Placement    db.Placement
	TotalSeconds float64
	// Timeline is per-sample per-socket memory throughput (GB/s).
	Timeline []Fig18Sample
	// MeanMemTP is the time-averaged total memory throughput.
	MeanMemTP float64
}

// Fig18Sample is one timeline point.
type Fig18Sample struct {
	AtSeconds float64
	PerSocket []float64
	Allocated int
}

// Fig18Result is the typed view of the fig18 Result.
type Fig18Result struct {
	*Result
	Clients int
	Runs    []Fig18Run
}

// Run returns the outcome for a label, or nil.
func (r *Fig18Result) Run(label string) *Fig18Run {
	for i := range r.Runs {
		if r.Runs[i].Label == label {
			return &r.Runs[i]
		}
	}
	return nil
}

// fig18Configs is the four-way {scheduler} x {engine flavour} grid.
var fig18Configs = []struct {
	label     string
	mode      workload.Mode
	placement db.Placement
}{
	{"OS/MonetDB", workload.ModeOS, db.PlacementOS},
	{"Adaptive/MonetDB", workload.ModeAdaptive, db.PlacementOS},
	{"OS/SQLServer", workload.ModeOS, db.PlacementNUMAAware},
	{"Adaptive/SQLServer", workload.ModeAdaptive, db.PlacementNUMAAware},
}

// runFig18 executes the four configurations.
func runFig18(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	summary := res.AddTable("runs",
		colS("config"), colF("total (s)", 3), colF("mean memTP GB/s", 3), colI("samples"))
	var timeline *Table
	for i, cfg := range fig18Configs {
		cfg := cfg
		err := phase(ctx, obs, cfg.label, func() error {
			cc := c
			cc.Placement = cfg.placement
			r, err := newRig(cc, cfg.mode, nil)
			if err != nil {
				return err
			}
			topo := r.Machine.Topology()
			if timeline == nil {
				cols := []Column{colS("config"), colF("t(s)", 4), colI("allocated")}
				for s := 0; s < topo.NodeCount; s++ {
					cols = append(cols, colF(fmt.Sprintf("memTP GB/s S%d", s), 3))
				}
				timeline = res.AddTable("timeline", cols...)
			}
			sampleEvery := 0.002
			phases := workload.StablePhases(r, c.Clients, sampleEvery)
			var offset, totalSeconds, tpSum float64
			var tpN, samples int
			for _, ph := range phases {
				for _, s := range ph.Samples {
					perSocket := perNodeIMCThroughput(topo, s.Window)
					var total float64
					cells := []any{cfg.label, offset + s.AtSeconds, s.Allocated}
					for _, v := range perSocket {
						total += v
						cells = append(cells, v)
					}
					tpSum += total
					tpN++
					samples++
					timeline.AddRow(cells...)
				}
				offset += ph.ElapsedSeconds
				totalSeconds += ph.ElapsedSeconds
			}
			meanTP := 0.0
			if tpN > 0 {
				meanTP = tpSum / float64(tpN)
			}
			summary.AddRow(cfg.label, totalSeconds, meanTP, samples)
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(fig18Configs))
	}
	return res, nil
}

// fig18ResultFrom decodes the generic Result into the typed view.
func fig18ResultFrom(res *Result) (*Fig18Result, error) {
	summary := res.Table("runs")
	if summary == nil {
		return nil, fmt.Errorf("experiments: fig18 result missing runs table")
	}
	out := &Fig18Result{Result: res, Clients: res.Meta.Clients}
	for i := range summary.Rows {
		label, _ := summary.Str(i, 0)
		total, _ := summary.Float(i, 1)
		mean, _ := summary.Float(i, 2)
		run := Fig18Run{Label: label, TotalSeconds: total, MeanMemTP: mean}
		for _, cfg := range fig18Configs {
			if cfg.label == label {
				run.Mode, run.Placement = cfg.mode, cfg.placement
			}
		}
		out.Runs = append(out.Runs, run)
	}
	if timeline := res.Table("timeline"); timeline != nil {
		sockets := len(timeline.Columns) - 3
		for i := range timeline.Rows {
			label, _ := timeline.Str(i, 0)
			run := out.Run(label)
			if run == nil {
				continue
			}
			at, _ := timeline.Float(i, 1)
			alloc, _ := timeline.Int(i, 2)
			sample := Fig18Sample{AtSeconds: at, Allocated: int(alloc)}
			for s := 0; s < sockets; s++ {
				v, _ := timeline.Float(i, 3+s)
				sample.PerSocket = append(sample.PerSocket, v)
			}
			run.Timeline = append(run.Timeline, sample)
		}
	}
	return out, nil
}

// RunFig18 executes the four configurations through the registry and
// returns the typed view.
func RunFig18(c Config) (*Fig18Result, error) {
	res, err := run("fig18", c)
	if err != nil {
		return nil, err
	}
	return fig18ResultFrom(res)
}
