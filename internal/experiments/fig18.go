package experiments

import (
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/workload"
)

// fig18.go reproduces Figure 18: the stable-phases workload — each of the
// 22 queries executed concurrently by all clients, one query at a time —
// comparing {OS, Adaptive} x {MonetDB-like, SQL-Server-like}, with
// per-socket memory-throughput timelines.

// Fig18Run is one configuration's outcome.
type Fig18Run struct {
	Label        string
	Mode         workload.Mode
	Placement    db.Placement
	TotalSeconds float64
	// Timeline is per-sample per-socket memory throughput (GB/s).
	Timeline []Fig18Sample
	// MeanMemTP is the time-averaged total memory throughput.
	MeanMemTP float64
}

// Fig18Sample is one timeline point.
type Fig18Sample struct {
	AtSeconds float64
	PerSocket []float64
	Allocated int
}

// Fig18Result is the four-configuration comparison.
type Fig18Result struct {
	Clients int
	Runs    []Fig18Run
}

// Run returns the outcome for a label, or nil.
func (r *Fig18Result) Run(label string) *Fig18Run {
	for i := range r.Runs {
		if r.Runs[i].Label == label {
			return &r.Runs[i]
		}
	}
	return nil
}

// String renders run summaries and timelines.
func (r *Fig18Result) String() string {
	t := &table{header: []string{"config", "total (s)", "mean memTP GB/s", "samples"}}
	for _, run := range r.Runs {
		t.add(run.Label, f3(run.TotalSeconds), f3(run.MeanMemTP), fmt.Sprint(len(run.Timeline)))
	}
	return fmt.Sprintf("Figure 18: stable phases workload, %d clients\n%s", r.Clients, t.String())
}

// RunFig18 executes the four configurations.
func RunFig18(c Config) (*Fig18Result, error) {
	c = c.withDefaults()
	res := &Fig18Result{Clients: c.Clients}
	configs := []struct {
		label     string
		mode      workload.Mode
		placement db.Placement
	}{
		{"OS/MonetDB", workload.ModeOS, db.PlacementOS},
		{"Adaptive/MonetDB", workload.ModeAdaptive, db.PlacementOS},
		{"OS/SQLServer", workload.ModeOS, db.PlacementNUMAAware},
		{"Adaptive/SQLServer", workload.ModeAdaptive, db.PlacementNUMAAware},
	}
	for _, cfg := range configs {
		cc := c
		cc.Placement = cfg.placement
		r, err := newRig(cc, cfg.mode, nil)
		if err != nil {
			return nil, err
		}
		topo := r.Machine.Topology()
		sampleEvery := 0.002
		phases := workload.StablePhases(r, c.Clients, sampleEvery)
		run := Fig18Run{Label: cfg.label, Mode: cfg.mode, Placement: cfg.placement}
		var offset float64
		var tpSum float64
		var tpN int
		for _, ph := range phases {
			for _, s := range ph.Samples {
				perSocket := perNodeIMCThroughput(topo, s.Window)
				var total float64
				for _, v := range perSocket {
					total += v
				}
				tpSum += total
				tpN++
				run.Timeline = append(run.Timeline, Fig18Sample{
					AtSeconds: offset + s.AtSeconds,
					PerSocket: perSocket,
					Allocated: s.Allocated,
				})
			}
			offset += ph.ElapsedSeconds
			run.TotalSeconds += ph.ElapsedSeconds
		}
		if tpN > 0 {
			run.MeanMemTP = tpSum / float64(tpN)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}
