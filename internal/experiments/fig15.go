package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/workload"
)

// fig15.go reproduces Figure 15: L3 load misses of the thetasubselect
// workload across selectivities {2,4,8,16,32,64,100}% for the four modes.

// Fig15Selectivities is the paper's sweep.
var Fig15Selectivities = []float64{0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0}

// Fig15Row is one (mode, selectivity) measurement.
type Fig15Row struct {
	Mode        workload.Mode
	Selectivity float64
	L3Misses    uint64
}

// Fig15Result is the typed view of the fig15 Result.
type Fig15Result struct {
	*Result
	Clients int
	Rows    []Fig15Row
}

// Row returns the measurement for (mode, selectivity), or nil.
func (r *Fig15Result) Row(mode workload.Mode, sel float64) *Fig15Row {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode && r.Rows[i].Selectivity == sel {
			return &r.Rows[i]
		}
	}
	return nil
}

// runFig15 executes the sweep.
func runFig15(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	sweep := res.AddTable("sweep",
		colS("mode"), colF("selectivity", 2), colI("L3 misses"))
	for i, sel := range Fig15Selectivities {
		sel := sel
		err := phase(ctx, obs, fmt.Sprintf("selectivity=%.0f%%", sel*100), func() error {
			for _, mode := range workload.AllModes {
				r, err := newRig(c, mode, nil)
				if err != nil {
					return err
				}
				d := &workload.Driver{Rig: r, QueriesPerClient: 1}
				ph := d.Run(c.Clients, func(cl, k int) *db.Plan { return thetaPlan(sel) })
				sweep.AddRow(mode.String(), sel, ph.Window.TotalL3Misses())
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(Fig15Selectivities))
	}
	return res, nil
}

// fig15ResultFrom decodes the generic Result into the typed view.
func fig15ResultFrom(res *Result) (*Fig15Result, error) {
	sweep := res.Table("sweep")
	if sweep == nil {
		return nil, fmt.Errorf("experiments: fig15 result missing sweep table")
	}
	out := &Fig15Result{Result: res, Clients: res.Meta.Clients}
	for i := range sweep.Rows {
		name, _ := sweep.Str(i, 0)
		mode, ok := modeByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: fig15 unknown mode %q", name)
		}
		sel, _ := sweep.Float(i, 1)
		misses, _ := sweep.Int(i, 2)
		out.Rows = append(out.Rows, Fig15Row{Mode: mode, Selectivity: sel, L3Misses: uint64(misses)})
	}
	return out, nil
}

// RunFig15 executes the sweep through the registry and returns the typed
// view.
func RunFig15(c Config) (*Fig15Result, error) {
	res, err := run("fig15", c)
	if err != nil {
		return nil, err
	}
	return fig15ResultFrom(res)
}
