package experiments

import (
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/workload"
)

// fig15.go reproduces Figure 15: L3 load misses of the thetasubselect
// workload across selectivities {2,4,8,16,32,64,100}% for the four modes.

// Fig15Selectivities is the paper's sweep.
var Fig15Selectivities = []float64{0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0}

// Fig15Row is one (mode, selectivity) measurement.
type Fig15Row struct {
	Mode        workload.Mode
	Selectivity float64
	L3Misses    uint64
}

// Fig15Result is the sweep.
type Fig15Result struct {
	Clients int
	Rows    []Fig15Row
}

// Row returns the measurement for (mode, selectivity), or nil.
func (r *Fig15Result) Row(mode workload.Mode, sel float64) *Fig15Row {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode && r.Rows[i].Selectivity == sel {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the panel grid.
func (r *Fig15Result) String() string {
	t := &table{header: []string{"mode", "selectivity", "L3 misses"}}
	for _, row := range r.Rows {
		t.add(row.Mode.String(), fmt.Sprintf("%.0f%%", row.Selectivity*100), fmt.Sprint(row.L3Misses))
	}
	return fmt.Sprintf("Figure 15: L3 misses vs selectivity, %d clients\n%s", r.Clients, t.String())
}

// RunFig15 executes the sweep.
func RunFig15(c Config) (*Fig15Result, error) {
	c = c.withDefaults()
	res := &Fig15Result{Clients: c.Clients}
	for _, sel := range Fig15Selectivities {
		for _, mode := range workload.AllModes {
			r, err := newRig(c, mode, nil)
			if err != nil {
				return nil, err
			}
			sel := sel
			d := &workload.Driver{Rig: r, QueriesPerClient: 1}
			phase := d.Run(c.Clients, func(cl, k int) *db.Plan { return thetaPlan(sel) })
			res.Rows = append(res.Rows, Fig15Row{
				Mode:        mode,
				Selectivity: sel,
				L3Misses:    phase.Window.TotalL3Misses(),
			})
		}
	}
	return res, nil
}
