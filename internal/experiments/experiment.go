package experiments

import (
	"context"
	"time"
)

// experiment.go defines the uniform interface every evaluation artifact
// implements. The 13 paper artifacts are the first 13 registrations; a new
// scenario only needs a run function and a Register call (see register.go).

// Description documents a registered experiment for listings and tooling.
type Description struct {
	// Title is the result headline ("Figure 4: Q6 under increasing
	// concurrency").
	Title string
	// Summary is a sentence on what the experiment measures.
	Summary string
	// Tags group experiments for selection: "microbench", "elastic",
	// "tenancy", "energy", "trace", ...
	Tags []string
}

// Experiment is one runnable evaluation artifact.
type Experiment interface {
	// Name is the stable registry key ("fig4", "overhead", ...).
	Name() string
	// Describe returns the static documentation.
	Describe() Description
	// Run executes the experiment. The Config is validated and defaulted
	// centrally before the body runs; a nil Observer is replaced with
	// NopObserver. Run honors ctx cancellation between phases.
	Run(ctx context.Context, cfg Config, obs Observer) (*Result, error)
}

// RunFunc is an experiment body: it receives a validated Config and a
// non-nil Observer and returns the structured result. The wrapper stamps
// Name, Title and Meta afterwards, so bodies only fill tables, metrics and
// artifacts.
type RunFunc func(ctx context.Context, cfg Config, obs Observer) (*Result, error)

// New builds an Experiment from a name, a description and a run function.
func New(name string, desc Description, run RunFunc) Experiment {
	return &funcExperiment{name: name, desc: desc, run: run}
}

type funcExperiment struct {
	name string
	desc Description
	run  RunFunc
}

func (e *funcExperiment) Name() string          { return e.name }
func (e *funcExperiment) Describe() Description { return e.desc }

func (e *funcExperiment) Run(ctx context.Context, cfg Config, obs Observer) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if obs == nil {
		obs = NopObserver{}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := e.run(ctx, cfg, obs)
	if err != nil {
		return nil, err
	}
	res.Name = e.name
	if res.Title == "" {
		res.Title = e.desc.Title
	}
	if res.Metrics == nil {
		res.Metrics = []Metric{} // render as [] in JSON, not null
	}
	if res.Tables == nil {
		res.Tables = []*Table{}
	}
	res.Meta = cfg.meta()
	res.Meta.WallTime = time.Since(start)
	res.Meta.Version = buildVersion()
	return res, nil
}

// meta derives the run metadata from an already-defaulted Config.
func (c Config) meta() Meta {
	return Meta{
		SF:      c.SF,
		Clients: c.Clients,
		Users:   c.Users,
		Seed:    c.Seed,
		Tenants: c.Tenants,
		Engine:  c.engineName(),
	}
}
