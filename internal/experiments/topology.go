package experiments

import (
	"context"
	"fmt"
	"strings"

	"elasticore/internal/db"
	"elasticore/internal/elastic"
	"elasticore/internal/numa"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// topology.go implements the topology-sweep experiment: the fig4-style
// Q6 concurrency workload executed on every machine shape in the
// topology zoo under every topology-aware placement policy. The paper
// evaluated its mechanism on exactly one machine — the four-socket
// Opteron square — but its central claim (counter-driven elastic
// allocation keeps the system NUMA-friendly) is about NUMA machines in
// general. This sweep makes the machine shape an experimental axis and
// reports, per topology x placement, the throughput, interconnect (HT)
// and memory-controller (IMC) traffic, and the Section V-B
// NUMA-friendliness ratio HT/IMC (smaller = friendlier).

// sweepTopology is one zoo entry of the sweep, in fixed presentation
// order (map iteration would break golden determinism).
type sweepTopology struct {
	name  string
	build func() *numa.Topology
}

// sweepZoo lists the swept shapes: the paper's testbed plus the four
// zoo machines. Order is the golden-file order.
var sweepZoo = []sweepTopology{
	{"opteron", numa.Opteron8387},
	{"2socket", numa.TwoSocket},
	{"4ring", numa.FourSocketRing},
	{"8twisted", numa.EightSocketTwisted},
	{"epyc", numa.EPYCLike},
}

// TopologySweepRow is one (topology, placement) measurement.
type TopologySweepRow struct {
	Topology  string
	Placement string
	Nodes     int
	Cores     int
	// Throughput is Q6 completions per virtual second at Config.Clients
	// concurrent users.
	Throughput float64
	// HTMB and IMCMB are interconnect and memory-controller megabytes
	// moved over the phase.
	HTMB, IMCMB float64
	// HTIMC is the NUMA-friendliness ratio (Section V-B), smaller is
	// friendlier.
	HTIMC float64
	// AllocCores is the mechanism's allocation when the phase ended.
	AllocCores int
}

// runTopologySweep executes the sweep: one rig per topology x placement,
// each driving Config.Clients concurrent users through one TPC-H Q6.
func runTopologySweep(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	sweep := res.AddTable("sweep",
		colS("topology"), colS("placement"), colI("nodes"), colI("cores"),
		colF("q/s", 3), colF("HT MB", 2), colF("IMC MB", 2), colF("ht/imc", 3), colI("alloc"))

	var friendliest strings.Builder
	for ti, zt := range sweepZoo {
		base := zt.build()
		err := phase(ctx, obs, zt.name, func() error {
			bestName, bestRatio := "", 0.0
			for _, p := range elastic.Placements() {
				row, err := runTopologyPoint(c, zt.name, base, p)
				if err != nil {
					return err
				}
				sweep.AddRow(row.Topology, row.Placement, row.Nodes, row.Cores,
					row.Throughput, row.HTMB, row.IMCMB, row.HTIMC, row.AllocCores)
				if bestName == "" || row.HTIMC < bestRatio {
					bestName, bestRatio = row.Placement, row.HTIMC
				}
			}
			fmt.Fprintf(&friendliest, "%-8s  %s (ht/imc %.3f)\n", zt.name, bestName, bestRatio)
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(ti+1, len(sweepZoo))
	}
	res.AddMetric("topologies", float64(len(sweepZoo)), "")
	res.AddMetric("placements", float64(len(elastic.Placements())), "")
	res.AddArtifact("numa-friendliest placement per topology", friendliest.String())
	return res, nil
}

// runTopologyPoint builds one rig on the SF-scaled shape and drives the
// fig4-style phase: Clients concurrent users, each one Q6 with the
// canonical parameters.
func runTopologyPoint(c Config, name string, base *numa.Topology, p elastic.Placement) (TopologySweepRow, error) {
	rig, err := workload.NewRig(workload.Options{
		SF:            c.SF,
		Seed:          c.Seed,
		Placement:     c.Placement,
		CorePlacement: p,
		Topology:      workload.ScaleTopology(base, c.SF),
		Naive:         c.Naive,
	})
	if err != nil {
		return TopologySweepRow{}, fmt.Errorf("topology %s, placement %s: %w", name, p.Name(), err)
	}
	d := &workload.Driver{Rig: rig, QueriesPerClient: 1}
	params := q6Fixed()
	ph := d.Run(c.Clients, func(cl, k int) *db.Plan { return tpch.BuildQ6With(params) })
	topo := rig.Machine.Topology()
	return TopologySweepRow{
		Topology:   name,
		Placement:  p.Name(),
		Nodes:      topo.NodeCount,
		Cores:      topo.TotalCores(),
		Throughput: ph.Throughput,
		HTMB:       mb(ph.Window.TotalHTBytes()),
		IMCMB:      mb(ph.Window.TotalIMCBytes()),
		HTIMC:      ph.Window.HTIMCRatio(),
		AllocCores: rig.AllocatedCores(),
	}, nil
}

// TopologySweepResult is the typed view of the topology-sweep Result.
type TopologySweepResult struct {
	*Result
	Rows []TopologySweepRow
}

// Row returns the measurement for a topology and placement, or nil.
func (r *TopologySweepResult) Row(topology, placement string) *TopologySweepRow {
	for i := range r.Rows {
		if r.Rows[i].Topology == topology && r.Rows[i].Placement == placement {
			return &r.Rows[i]
		}
	}
	return nil
}

// topologySweepResultFrom decodes the generic Result into the typed
// view.
func topologySweepResultFrom(res *Result) (*TopologySweepResult, error) {
	sweep := res.Table("sweep")
	if sweep == nil {
		return nil, fmt.Errorf("experiments: topology-sweep result missing sweep table")
	}
	out := &TopologySweepResult{Result: res}
	for i := range sweep.Rows {
		topology, _ := sweep.Str(i, 0)
		placement, _ := sweep.Str(i, 1)
		nodes, _ := sweep.Int(i, 2)
		cores, _ := sweep.Int(i, 3)
		tput, _ := sweep.Float(i, 4)
		ht, _ := sweep.Float(i, 5)
		imc, _ := sweep.Float(i, 6)
		ratio, _ := sweep.Float(i, 7)
		alloc, _ := sweep.Int(i, 8)
		out.Rows = append(out.Rows, TopologySweepRow{
			Topology: topology, Placement: placement,
			Nodes: int(nodes), Cores: int(cores),
			Throughput: tput, HTMB: ht, IMCMB: imc, HTIMC: ratio,
			AllocCores: int(alloc),
		})
	}
	return out, nil
}

// RunTopologySweep executes the sweep through the registry and returns
// the typed view.
func RunTopologySweep(c Config) (*TopologySweepResult, error) {
	res, err := run("topology-sweep", c)
	if err != nil {
		return nil, err
	}
	return topologySweepResultFrom(res)
}
