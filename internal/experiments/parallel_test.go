package experiments

import (
	"bytes"
	"context"
	"testing"
)

// parallel_test.go extends the golden contract to the worker knob: a
// cluster experiment must render byte-identical text, JSON and CSV whether
// the fleet engine runs sequentially (Workers 1) or spread over goroutines
// (Workers > 1), healthy, faulted or Naive.

// workersConfig is a scale-out config small enough to run several times
// per test; Workers is the knob under test, everything else is pinned.
func workersConfig() Config {
	return Config{
		SF: 0.002, Clients: 8, Seed: 7, OpenArrivals: 20,
		Machines: 4, Shards: 8,
	}
}

// renderedRun executes a registered experiment and returns its normalized
// text+json+csv rendering as one byte stream.
func renderedRun(t *testing.T, name string, cfg Config) []byte {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	res, err := e.Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Meta.WallTime = 0
	res.Meta.Version = "workers"
	var buf bytes.Buffer
	for _, format := range []string{"text", "json", "csv"} {
		if err := res.Render(&buf, format); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func checkWorkerEquivalence(t *testing.T, cfg Config) {
	t.Helper()
	seq := cfg
	seq.Workers = 1
	want := renderedRun(t, "scale-out", seq)
	par := cfg
	par.Workers = 3
	got := renderedRun(t, "scale-out", par)
	if !bytes.Equal(want, got) {
		t.Errorf("scale-out renders differently at Workers 1 vs 3\n--- workers=1 ---\n%s\n--- workers=3 ---\n%s",
			want, got)
	}
}

// TestScaleOutWorkerEquivalence: the healthy speedup sweep is byte-stable
// across worker counts.
func TestScaleOutWorkerEquivalence(t *testing.T) {
	checkWorkerEquivalence(t, workersConfig())
}

// TestScaleOutWorkerEquivalenceFaulted: the contract holds under a fault
// plan (machine 0, so the plan stays valid at every sweep point down to a
// one-machine fleet).
func TestScaleOutWorkerEquivalenceFaulted(t *testing.T) {
	cfg := workersConfig()
	cfg.Faults = "crash m0 @5ms for 10ms"
	checkWorkerEquivalence(t, cfg)
}

// TestScaleOutWorkerEquivalenceNaive: the contract holds on the Naive
// simulator paths.
func TestScaleOutWorkerEquivalenceNaive(t *testing.T) {
	cfg := workersConfig()
	cfg.Naive = true
	checkWorkerEquivalence(t, cfg)
}
