package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/arrivals"
	"elasticore/internal/elastic"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// openloop.go hosts the open-loop traffic experiments. The paper's
// protocol is closed-loop (each client waits for its previous query), so
// the offered load can never exceed capacity; these scenarios instead
// replay independent arrival streams (internal/arrivals) through
// workload.OpenDriver, making queueing, load shedding and tail latency
// measurable:
//
//   - latency-load: throughput and latency percentiles across an
//     offered-load sweep from well under to well over saturation — the
//     classic open-loop hockey-stick curve.
//   - burst-response: core allocation and p99 timelines around an MMPP
//     burst, comparing a static all-cores baseline against the elastic
//     mechanism with and without the admission-queue pressure signal.

// openSessions is the server-session count (concurrent queries) used by
// the open-loop experiments; the admission queue bounds at 8x that.
func openSessions(c Config) int { return c.Clients }

// calibrateSaturation measures the rig's closed-loop saturation
// throughput: the offered-load sweep and the burst rates are expressed
// relative to it, so the experiments keep their operating points across
// scale factors.
func calibrateSaturation(c Config) (float64, error) {
	r, err := newRig(c, workload.ModeOS, nil)
	if err != nil {
		return 0, err
	}
	d := &workload.Driver{Rig: r, QueriesPerClient: 3}
	pr := d.RunSameQuery(openSessions(c), tpch.BuildQ6)
	if pr.Throughput <= 0 {
		return 0, fmt.Errorf("experiments: calibration produced zero throughput")
	}
	return pr.Throughput, nil
}

// loadProcess builds the configured arrival-process family around a mean
// rate. The mmpp and diurnal variants keep the same long-run mean as the
// plain Poisson stream, so the sweep's load axis stays comparable.
func loadProcess(kind string, rate, horizon float64, seed uint64) arrivals.Process {
	switch kind {
	case "mmpp":
		// Equal mean dwells at 0.5x and 1.5x the target rate average out
		// to the target.
		return arrivals.NewMMPP(0.5*rate, 1.5*rate, 10/rate, 10/rate, seed)
	case "diurnal":
		return arrivals.NewDiurnal(rate, 0.6, horizon/2, seed)
	default:
		return arrivals.NewPoisson(rate, seed)
	}
}

// runLatencyLoad sweeps offered load across the saturation point.
func runLatencyLoad(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	tl := res.AddTable("latency_load",
		colF("load", 2), colF("rate(q/s)", 1), colI("offered"), colI("admitted"),
		colI("dropped"), colI("completed"), colF("tput(q/s)", 1),
		colF("p50(ms)", 3), colF("p90(ms)", 3), colF("p99(ms)", 3),
		colF("max(ms)", 3), colF("wait p99(ms)", 3))

	var sat float64
	err := phase(ctx, obs, "calibrate", func() (err error) {
		sat, err = calibrateSaturation(c)
		return err
	})
	if err != nil {
		return nil, err
	}

	for i, load := range c.Loads {
		rate := load * sat
		// Horizon covers offering every arrival plus draining the whole
		// backlog at the saturation rate: a deadline tight enough to cut
		// off the deepest-queued queries would censor exactly the tail the
		// sweep exists to measure, inverting the latency curve past
		// saturation. The run ends early once everything drains.
		horizon := 1.2 * float64(c.OpenArrivals) * (1/rate + 1/sat)
		err := phase(ctx, obs, fmt.Sprintf("load=%.2f (%s)", load, c.Arrival), func() error {
			r, err := newRig(c, workload.ModeOS, nil)
			if err != nil {
				return err
			}
			d := &workload.OpenDriver{
				Rig:         r,
				Process:     loadProcess(c.Arrival, rate, horizon, c.Seed+uint64(i)*7919),
				MaxInFlight: openSessions(c),
				QueueCap:    8 * openSessions(c),
				MaxArrivals: c.OpenArrivals,
				MaxSeconds:  horizon,
			}
			or := d.RunSameQuery(tpch.BuildQ6)
			topo := r.Machine.Topology()
			ms := func(cyc uint64) float64 { return topo.CyclesToSeconds(cyc) * 1e3 }
			tl.AddRow(load, rate, or.Offered, or.Admitted, or.Dropped, or.Completed,
				or.Throughput, ms(or.Latency.P50()), ms(or.Latency.P90()),
				ms(or.Latency.P99()), ms(or.Latency.Max()), ms(or.QueueWait.P99()))
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(c.Loads))
	}
	res.AddMetric("saturation_tput", sat, "q/s")
	// The tail-divergence signature: at the lightest load p99 sits within
	// a bucket or two of p50; past the saturation knee queueing stretches
	// the tail, so the absolute p99-p50 gap grows by orders of magnitude.
	if n := len(tl.Rows); n > 0 {
		firstP50, _ := tl.Float(0, 7)
		firstP99, _ := tl.Float(0, 9)
		res.AddMetric("p99_p50_gap_min_load", firstP99-firstP50, "ms")
		peak := 0.0
		for i := 0; i < n; i++ {
			p50, _ := tl.Float(i, 7)
			p99, _ := tl.Float(i, 9)
			if p99-p50 > peak {
				peak = p99 - p50
			}
		}
		res.AddMetric("p99_p50_gap_peak", peak, "ms")
	}
	return res, nil
}

// burstConfig is one burst-response contender.
type burstConfig struct {
	name            string
	mode            workload.Mode
	strategy        elastic.Strategy
	disablePressure bool
}

// runBurstResponse replays one MMPP stream under three allocation
// policies and records allocation/latency timelines around the bursts.
func runBurstResponse(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	timeline := res.AddTable("timeline",
		colS("config"), colF("t(s)", 4), colI("queue"), colI("inflight"),
		colI("cores"), colI("done"), colF("p99(ms)", 3))
	summary := res.AddTable("summary",
		colS("config"), colI("offered"), colI("completed"), colI("dropped"),
		colF("tput(q/s)", 1), colF("p50(ms)", 3), colF("p99(ms)", 3),
		colF("wait p99(ms)", 3), colI("peak queue"), colI("peak cores"))

	var sat float64
	err := phase(ctx, obs, "calibrate", func() (err error) {
		sat, err = calibrateSaturation(c)
		return err
	})
	if err != nil {
		return nil, err
	}

	// One quiet/burst cycle spans ~50 mean service times: long stretches
	// at 30% of capacity punctuated by 1.8x overload episodes. The
	// horizon allows offering every arrival (long-run MMPP rate ~0.9x
	// saturation) plus a full drain, so no config's tail is censored and
	// a slow-to-react policy pays in elapsed time, not in unmeasured
	// queries.
	arrivalsTotal := 2 * c.OpenArrivals
	horizon := 1.3*float64(arrivalsTotal)/(0.9*sat) + 1.5*float64(arrivalsTotal)/sat
	process := func() arrivals.Process {
		return arrivals.NewMMPP(0.3*sat, 1.8*sat, 30/sat, 20/sat, c.Seed)
	}

	// The elastic pair runs the HT/IMC strategy: its reading tracks
	// NUMA-friendliness, not demand, so without the admission-queue
	// pressure signal a burst can back up the queue while the counters
	// report nothing wrong — exactly the gap the signal closes. (The
	// CPU-load strategy saturates its reading the moment any backlog
	// exists, masking the A/B.)
	configs := []burstConfig{
		{"static", workload.ModeOS, nil, false},
		{"elastic", workload.ModeAdaptive, elastic.HTIMCStrategy{}, false},
		{"elastic-nopressure", workload.ModeAdaptive, elastic.HTIMCStrategy{}, true},
	}
	p99ByConfig := map[string]float64{}
	for i, bc := range configs {
		err := phase(ctx, obs, "config="+bc.name, func() error {
			r, err := newRig(c, bc.mode, bc.strategy)
			if err != nil {
				return err
			}
			d := &workload.OpenDriver{
				Rig:            r,
				Process:        process(),
				MaxInFlight:    openSessions(c),
				QueueCap:       8 * openSessions(c),
				MaxArrivals:    arrivalsTotal,
				MaxSeconds:     horizon,
				SampleEvery:    horizon / 48,
				DisableBacklog: bc.disablePressure,
			}
			or := d.RunSameQuery(tpch.BuildQ6)
			topo := r.Machine.Topology()
			ms := func(cyc uint64) float64 { return topo.CyclesToSeconds(cyc) * 1e3 }
			for _, s := range or.Samples {
				timeline.AddRow(bc.name, s.AtSeconds, s.QueueDepth, s.InFlight,
					s.Allocated, s.Completed, ms(s.P99Cycles))
			}
			peakCores := 0
			for _, s := range or.Samples {
				if s.Allocated > peakCores {
					peakCores = s.Allocated
				}
			}
			summary.AddRow(bc.name, or.Offered, or.Completed, or.Dropped,
				or.Throughput, ms(or.Latency.P50()), ms(or.Latency.P99()),
				ms(or.QueueWait.P99()), or.PeakQueueDepth, peakCores)
			p99ByConfig[bc.name] = ms(or.Latency.P99())
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(configs))
	}
	res.AddMetric("saturation_tput", sat, "q/s")
	res.AddMetric("static_p99_ms", p99ByConfig["static"], "ms")
	res.AddMetric("elastic_p99_ms", p99ByConfig["elastic"], "ms")
	res.AddMetric("elastic_nopressure_p99_ms", p99ByConfig["elastic-nopressure"], "ms")
	return res, nil
}
