package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
)

// observer.go is the hook surface experiments report through while they
// run. Experiments used to run silently for seconds; an Observer sees each
// phase open and close and coarse progress, which the CLI turns into live
// status lines and tests turn into assertions.

// Observer receives progress callbacks from a running experiment. Methods
// may be called from the goroutine running the experiment only; the Runner
// gives each experiment its own Observer.
type Observer interface {
	// PhaseStart announces a named phase ("users=16", "mode=adaptive").
	PhaseStart(phase string)
	// PhaseDone closes the named phase.
	PhaseDone(phase string)
	// Progress reports completed work units out of a known total.
	Progress(done, total int)
}

// NopObserver ignores every callback.
type NopObserver struct{}

func (NopObserver) PhaseStart(string) {}
func (NopObserver) PhaseDone(string)  {}
func (NopObserver) Progress(int, int) {}

// WriterObserver prints one line per callback, optionally prefixed (the
// CLI prefixes the experiment name when running a batch). It is safe for
// use by concurrent experiments sharing one writer.
type WriterObserver struct {
	W      io.Writer
	Prefix string
	mu     sync.Mutex
}

func (o *WriterObserver) PhaseStart(phase string) { o.linef("phase %s ...", phase) }
func (o *WriterObserver) PhaseDone(phase string)  { o.linef("phase %s done", phase) }
func (o *WriterObserver) Progress(done, total int) {
	o.linef("progress %d/%d", done, total)
}

func (o *WriterObserver) linef(format string, args ...any) {
	// Build the whole line first and emit it as one Write, so observers of
	// concurrent experiments sharing a writer (e.g. several prefixed
	// instances over os.Stderr) never interleave partial lines.
	var b strings.Builder
	if o.Prefix != "" {
		fmt.Fprintf(&b, "%s: ", o.Prefix)
	}
	fmt.Fprintf(&b, format+"\n", args...)
	o.mu.Lock()
	defer o.mu.Unlock()
	o.W.Write([]byte(b.String()))
}

// phase wraps one experiment phase: a ctx check, the start/done callbacks
// and progress accounting. It is the idiom experiment bodies use for their
// sweep loops.
func phase(ctx context.Context, obs Observer, name string, f func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	obs.PhaseStart(name)
	if err := f(); err != nil {
		return err
	}
	obs.PhaseDone(name)
	return nil
}
