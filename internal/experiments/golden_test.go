package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// golden_test.go locks the Result rendering formats across refactors: a
// small fixed-seed fig4 and consolidation run must render byte-identical
// text, JSON and CSV. Regenerate with `go test ./internal/experiments
// -run TestGolden -update` after an intentional format change.

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenConfig is deliberately tiny so the golden runs stay fast, and
// fully pinned so they stay deterministic.
func goldenConfig() Config {
	return Config{SF: 0.002, Clients: 8, Users: []int{1, 2}, Seed: 7, Tenants: 2}
}

// goldenRun executes a registered experiment and strips the
// host-dependent metadata (wall time, build version).
func goldenRun(t *testing.T, name string) *Result {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	res, err := e.Run(context.Background(), goldenConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Meta.WallTime = 0
	res.Meta.Version = "golden"
	return res
}

func checkGolden(t *testing.T, res *Result, format string) {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Render(&buf, format); err != nil {
		t.Fatal(err)
	}
	ext := format
	if ext == "text" {
		ext = "txt"
	}
	path := filepath.Join("testdata", res.Name+"."+ext+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s %s rendering drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			res.Name, format, path, buf.String(), want)
	}
}

func TestGoldenFig4(t *testing.T) {
	res := goldenRun(t, "fig4")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

func TestGoldenConsolidation(t *testing.T) {
	res := goldenRun(t, "consolidation")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestGoldenRunsAreDeterministic guards the premise of the golden files:
// two runs at the same seed render identically.
func TestGoldenRunsAreDeterministic(t *testing.T) {
	a, b := goldenRun(t, "fig4"), goldenRun(t, "fig4")
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("fig4 runs with identical seeds rendered differently")
	}
}
