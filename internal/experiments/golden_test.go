package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// golden_test.go locks the Result rendering formats across refactors: a
// small fixed-seed fig4 and consolidation run must render byte-identical
// text, JSON and CSV. Regenerate with `go test ./internal/experiments
// -run TestGolden -update` after an intentional format change.

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenConfig is deliberately tiny so the golden runs stay fast, and
// fully pinned so they stay deterministic. The open-loop fields span the
// saturation knee with few arrivals per point.
func goldenConfig() Config {
	return Config{
		SF: 0.002, Clients: 8, Users: []int{1, 2}, Seed: 7, Tenants: 2,
		Loads: []float64{0.25, 1, 2}, OpenArrivals: 60,
		Machines: 8, Shards: 16,
	}
}

// goldenRun executes a registered experiment and strips the
// host-dependent metadata (wall time, build version).
func goldenRun(t *testing.T, name string) *Result {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	res, err := e.Run(context.Background(), goldenConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Meta.WallTime = 0
	res.Meta.Version = "golden"
	return res
}

func checkGolden(t *testing.T, res *Result, format string) {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Render(&buf, format); err != nil {
		t.Fatal(err)
	}
	ext := format
	if ext == "text" {
		ext = "txt"
	}
	path := filepath.Join("testdata", res.Name+"."+ext+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s %s rendering drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			res.Name, format, path, buf.String(), want)
	}
}

func TestGoldenFig4(t *testing.T) {
	res := goldenRun(t, "fig4")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

func TestGoldenConsolidation(t *testing.T) {
	res := goldenRun(t, "consolidation")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestGoldenLatencyLoad pins the open-loop sweep: same (seed, process,
// load) must render byte-identical histogram percentiles across runs.
func TestGoldenLatencyLoad(t *testing.T) {
	res := goldenRun(t, "latency-load")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestGoldenBurstResponse pins the MMPP burst timelines of all three
// allocation policies.
func TestGoldenBurstResponse(t *testing.T) {
	res := goldenRun(t, "burst-response")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestLatencyLoadTailDiverges asserts the open-loop signature on the
// pinned golden run: past saturation the p99/p50 ratio must far exceed
// its light-load value, while light-load latency stays queue-free.
func TestLatencyLoadTailDiverges(t *testing.T) {
	res := goldenRun(t, "latency-load")
	minGap, ok1 := res.Metric("p99_p50_gap_min_load")
	peakGap, ok2 := res.Metric("p99_p50_gap_peak")
	if !ok1 || !ok2 {
		t.Fatal("latency-load result missing tail-divergence metrics")
	}
	if peakGap < 10*minGap {
		t.Errorf("p99-p50 gap peaked at %.3fms vs %.3fms at the lightest load; no tail divergence past saturation",
			peakGap, minGap)
	}
	tl := res.Table("latency_load")
	if tl == nil || len(tl.Rows) == 0 {
		t.Fatal("latency-load result missing sweep table")
	}
	firstWait, _ := tl.Float(0, 11)
	lastWait, _ := tl.Float(len(tl.Rows)-1, 11)
	if lastWait <= firstWait {
		t.Errorf("queue wait p99 did not grow across the sweep (%.3fms -> %.3fms)", firstWait, lastWait)
	}
}

// TestGoldenScaleOut pins the fleet speedup curve: same seed, same
// shards, same arrival stream must render byte-identically.
func TestGoldenScaleOut(t *testing.T) {
	res := goldenRun(t, "scale-out")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestGoldenShardSkew pins the Zipf shard-heat sweep.
func TestGoldenShardSkew(t *testing.T) {
	res := goldenRun(t, "shard-skew")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestGoldenRebalanceCost pins the cluster-arbiter migration sweep.
func TestGoldenRebalanceCost(t *testing.T) {
	res := goldenRun(t, "rebalance-cost")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestScaleOutSpeedupMonotonic asserts the acceptance criterion on the
// pinned golden run: at fixed offered load, throughput speedup must be
// monotonically non-decreasing from 1 to 8 machines, and 8 machines
// must beat 1 by a real margin.
func TestScaleOutSpeedupMonotonic(t *testing.T) {
	res := goldenRun(t, "scale-out")
	tbl := res.Table("scale_out")
	if tbl == nil || len(tbl.Rows) < 4 {
		t.Fatalf("scale-out table missing or short (%v rows)", tbl)
	}
	prev := 0.0
	for i := range tbl.Rows {
		m, _ := tbl.Float(i, 0)
		s, ok := tbl.Float(i, 6)
		if !ok {
			t.Fatalf("row %d: no speedup cell", i)
		}
		if s < prev {
			t.Errorf("speedup fell from %.2f to %.2f at %d machines", prev, s, int(m))
		}
		prev = s
	}
	if last, _ := tbl.Float(len(tbl.Rows)-1, 6); last < 2 {
		t.Errorf("8-machine speedup is %.2fx; scaling out bought almost nothing", last)
	}
}

// TestShardSkewImbalanceGrows asserts the skew signature on the golden
// run: routing imbalance must grow with theta.
func TestShardSkewImbalanceGrows(t *testing.T) {
	res := goldenRun(t, "shard-skew")
	uni, ok1 := res.Metric("imbalance_uniform")
	worst, ok2 := res.Metric("imbalance_max_skew")
	if !ok1 || !ok2 {
		t.Fatal("shard-skew result missing imbalance metrics")
	}
	if worst <= uni {
		t.Errorf("imbalance did not grow with skew: theta=0 %.2fx vs theta=2 %.2fx", uni, worst)
	}
}

// TestRebalanceCostCharges asserts the migration cost model on the
// golden run: cores moved, and dearer migration charged more cycles.
func TestRebalanceCostCharges(t *testing.T) {
	res := goldenRun(t, "rebalance-cost")
	tbl := res.Table("rebalance_cost")
	if tbl == nil || len(tbl.Rows) < 2 {
		t.Fatal("rebalance-cost table missing or short")
	}
	first, _ := tbl.Float(0, 2)
	last, _ := tbl.Float(len(tbl.Rows)-1, 2)
	moved, _ := tbl.Float(len(tbl.Rows)-1, 1)
	if moved == 0 {
		t.Error("no cores moved under the shifting hot shard")
	}
	if last <= first {
		t.Errorf("charged cycles did not grow with migration latency (%.2f -> %.2f Mcyc)", first, last)
	}
}

// TestGoldenRunsAreDeterministic guards the premise of the golden files:
// two runs at the same seed render identically.
func TestGoldenRunsAreDeterministic(t *testing.T) {
	a, b := goldenRun(t, "fig4"), goldenRun(t, "fig4")
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("fig4 runs with identical seeds rendered differently")
	}
}
