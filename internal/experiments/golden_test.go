package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// golden_test.go locks the Result rendering formats across refactors: a
// small fixed-seed fig4 and consolidation run must render byte-identical
// text, JSON and CSV. Regenerate with `go test ./internal/experiments
// -run TestGolden -update` after an intentional format change.

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenConfig is deliberately tiny so the golden runs stay fast, and
// fully pinned so they stay deterministic. The open-loop fields span the
// saturation knee with few arrivals per point.
func goldenConfig() Config {
	return Config{
		SF: 0.002, Clients: 8, Users: []int{1, 2}, Seed: 7, Tenants: 2,
		Loads: []float64{0.25, 1, 2}, OpenArrivals: 60,
		Machines: 8, Shards: 16,
	}
}

// goldenRun executes a registered experiment and strips the
// host-dependent metadata (wall time, build version).
func goldenRun(t *testing.T, name string) *Result {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	res, err := e.Run(context.Background(), goldenConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Meta.WallTime = 0
	res.Meta.Version = "golden"
	return res
}

func checkGolden(t *testing.T, res *Result, format string) {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Render(&buf, format); err != nil {
		t.Fatal(err)
	}
	ext := format
	if ext == "text" {
		ext = "txt"
	}
	path := filepath.Join("testdata", res.Name+"."+ext+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s %s rendering drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			res.Name, format, path, buf.String(), want)
	}
}

func TestGoldenFig4(t *testing.T) {
	res := goldenRun(t, "fig4")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

func TestGoldenConsolidation(t *testing.T) {
	res := goldenRun(t, "consolidation")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestGoldenHTAPMix pins the heterogeneous point-lookup:scan sweep: the
// same seed must submit the same per-slot query classes and render
// byte-identically across all three formats.
func TestGoldenHTAPMix(t *testing.T) {
	res := goldenRun(t, "htap-mix")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestHTAPMixSignature asserts the sweep's class structure on the pinned
// golden run: the ratio-0 rows contain no lookups, the ratio-1 rows
// nothing but lookups, and wherever both classes completed, the mean
// point-lookup latency is far below the mean scan latency.
func TestHTAPMixSignature(t *testing.T) {
	res := goldenRun(t, "htap-mix")
	tbl := res.Table("mix")
	if tbl == nil || len(tbl.Rows) == 0 {
		t.Fatal("htap-mix result missing mix table")
	}
	for i := range tbl.Rows {
		ratio, _ := tbl.Float(i, 0)
		lookups, _ := tbl.Int(i, 2)
		scans, _ := tbl.Int(i, 3)
		if lookups+scans == 0 {
			t.Errorf("row %d: tenant completed nothing", i)
		}
		if ratio == 0 && lookups != 0 {
			t.Errorf("row %d: ratio 0 completed %d lookups", i, lookups)
		}
		if ratio == 1 && scans != 0 {
			t.Errorf("row %d: ratio 1 completed %d scans", i, scans)
		}
		if lookups > 0 && scans > 0 {
			lkMS, _ := tbl.Float(i, 5)
			scMS, _ := tbl.Float(i, 6)
			if lkMS >= scMS {
				t.Errorf("row %d: point lookups (%.3fms) not faster than scans (%.3fms)", i, lkMS, scMS)
			}
		}
	}
}

// TestGoldenLatencyLoad pins the open-loop sweep: same (seed, process,
// load) must render byte-identical histogram percentiles across runs.
func TestGoldenLatencyLoad(t *testing.T) {
	res := goldenRun(t, "latency-load")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestGoldenBurstResponse pins the MMPP burst timelines of all three
// allocation policies.
func TestGoldenBurstResponse(t *testing.T) {
	res := goldenRun(t, "burst-response")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestLatencyLoadTailDiverges asserts the open-loop signature on the
// pinned golden run: past saturation the p99/p50 ratio must far exceed
// its light-load value, while light-load latency stays queue-free.
func TestLatencyLoadTailDiverges(t *testing.T) {
	res := goldenRun(t, "latency-load")
	minGap, ok1 := res.Metric("p99_p50_gap_min_load")
	peakGap, ok2 := res.Metric("p99_p50_gap_peak")
	if !ok1 || !ok2 {
		t.Fatal("latency-load result missing tail-divergence metrics")
	}
	if peakGap < 10*minGap {
		t.Errorf("p99-p50 gap peaked at %.3fms vs %.3fms at the lightest load; no tail divergence past saturation",
			peakGap, minGap)
	}
	tl := res.Table("latency_load")
	if tl == nil || len(tl.Rows) == 0 {
		t.Fatal("latency-load result missing sweep table")
	}
	firstWait, _ := tl.Float(0, 11)
	lastWait, _ := tl.Float(len(tl.Rows)-1, 11)
	if lastWait <= firstWait {
		t.Errorf("queue wait p99 did not grow across the sweep (%.3fms -> %.3fms)", firstWait, lastWait)
	}
}

// TestGoldenScaleOut pins the fleet speedup curve: same seed, same
// shards, same arrival stream must render byte-identically.
func TestGoldenScaleOut(t *testing.T) {
	res := goldenRun(t, "scale-out")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestGoldenShardSkew pins the Zipf shard-heat sweep.
func TestGoldenShardSkew(t *testing.T) {
	res := goldenRun(t, "shard-skew")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestGoldenRebalanceCost pins the cluster-arbiter migration sweep.
func TestGoldenRebalanceCost(t *testing.T) {
	res := goldenRun(t, "rebalance-cost")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestScaleOutSpeedupMonotonic asserts the acceptance criterion on the
// pinned golden run: at fixed offered load, throughput speedup must be
// monotonically non-decreasing from 1 to 8 machines, and 8 machines
// must beat 1 by a real margin.
func TestScaleOutSpeedupMonotonic(t *testing.T) {
	res := goldenRun(t, "scale-out")
	tbl := res.Table("scale_out")
	if tbl == nil || len(tbl.Rows) < 4 {
		t.Fatalf("scale-out table missing or short (%v rows)", tbl)
	}
	prev := 0.0
	for i := range tbl.Rows {
		m, _ := tbl.Float(i, 0)
		s, ok := tbl.Float(i, 6)
		if !ok {
			t.Fatalf("row %d: no speedup cell", i)
		}
		if s < prev {
			t.Errorf("speedup fell from %.2f to %.2f at %d machines", prev, s, int(m))
		}
		prev = s
	}
	if last, _ := tbl.Float(len(tbl.Rows)-1, 6); last < 2 {
		t.Errorf("8-machine speedup is %.2fx; scaling out bought almost nothing", last)
	}
}

// TestShardSkewImbalanceGrows asserts the skew signature on the golden
// run: routing imbalance must grow with theta.
func TestShardSkewImbalanceGrows(t *testing.T) {
	res := goldenRun(t, "shard-skew")
	uni, ok1 := res.Metric("imbalance_uniform")
	worst, ok2 := res.Metric("imbalance_max_skew")
	if !ok1 || !ok2 {
		t.Fatal("shard-skew result missing imbalance metrics")
	}
	if worst <= uni {
		t.Errorf("imbalance did not grow with skew: theta=0 %.2fx vs theta=2 %.2fx", uni, worst)
	}
}

// TestRebalanceCostCharges asserts the migration cost model on the
// golden run: cores moved, and dearer migration charged more cycles.
func TestRebalanceCostCharges(t *testing.T) {
	res := goldenRun(t, "rebalance-cost")
	tbl := res.Table("rebalance_cost")
	if tbl == nil || len(tbl.Rows) < 2 {
		t.Fatal("rebalance-cost table missing or short")
	}
	first, _ := tbl.Float(0, 2)
	last, _ := tbl.Float(len(tbl.Rows)-1, 2)
	moved, _ := tbl.Float(len(tbl.Rows)-1, 1)
	if moved == 0 {
		t.Error("no cores moved under the shifting hot shard")
	}
	if last <= first {
		t.Errorf("charged cycles did not grow with migration latency (%.2f -> %.2f Mcyc)", first, last)
	}
}

// TestGoldenFaultTolerance pins the crash-and-recover matchup: same
// seed, same synthesized crash plan, same arrival stream must render
// byte-identically across the three fleet configurations.
func TestGoldenFaultTolerance(t *testing.T) {
	res := goldenRun(t, "fault-tolerance")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestGoldenPartialDegradation pins the slow-core and lossy-link sweeps.
func TestGoldenPartialDegradation(t *testing.T) {
	res := goldenRun(t, "partial-degradation")
	for _, format := range []string{"text", "json", "csv"} {
		checkGolden(t, res, format)
	}
}

// TestFaultToleranceSignature asserts the acceptance criteria on the
// pinned golden run: the no-replica baseline sheds during the crash
// window, the replicated+hedged fleet holds its fault-window p99 within
// 3x of pre-fault while shedding less than the baseline, and the fleet
// detects the recovery.
func TestFaultToleranceSignature(t *testing.T) {
	res := goldenRun(t, "fault-tolerance")
	shedStatic, ok := res.Metric("shed_fault_static")
	if !ok || shedStatic == 0 {
		t.Errorf("static baseline shed nothing through the crash window (metric present: %v)", ok)
	}
	shedRep, ok := res.Metric("shed_fault_replicated")
	if !ok {
		t.Fatal("fault-tolerance result missing shed_fault_replicated")
	}
	if shedRep >= shedStatic {
		t.Errorf("replication did not reduce shedding: replicated %v vs static %v", shedRep, shedStatic)
	}
	ratio, ok := res.Metric("p99_fault_over_pre_replicated")
	if !ok {
		t.Fatal("fault-tolerance result missing p99_fault_over_pre_replicated (a phase histogram was empty)")
	}
	if ratio > 3 {
		t.Errorf("replicated+hedged fault-window p99 is %.2fx pre-fault, want <= 3x", ratio)
	}
	if rec, ok := res.Metric("recoveries_replicated"); !ok || rec < 1 {
		t.Errorf("health monitor saw no recovery (metric present: %v, value %v)", ok, rec)
	}
	// Full recovery: the post-window phase completes work again for
	// every configuration.
	tbl := res.Table("phases")
	if tbl == nil || len(tbl.Rows) != 9 {
		t.Fatalf("phases table missing or short: %v", tbl)
	}
	for i := 2; i < len(tbl.Rows); i += 3 {
		if okd, _ := tbl.Float(i, 3); okd == 0 {
			t.Errorf("phase row %d: nothing completed in the recovery phase", i)
		}
	}
}

// TestPartialDegradationSignature asserts the impairment signatures on
// the pinned golden run: a 16x slow machine costs tail latency or
// throughput, and a lossy link forces retries.
func TestPartialDegradationSignature(t *testing.T) {
	res := goldenRun(t, "partial-degradation")
	base, ok1 := res.Metric("tput_slow_x1")
	worst, ok2 := res.Metric("tput_slow_max")
	if !ok1 || !ok2 {
		t.Fatal("partial-degradation result missing slow-core throughput metrics")
	}
	slow := res.Table("slow_cores")
	if slow == nil || len(slow.Rows) < 2 {
		t.Fatal("slow_cores table missing or short")
	}
	shedWorst, _ := slow.Float(len(slow.Rows)-1, 3)
	if worst >= base && shedWorst == 0 {
		t.Errorf("a 16x slow machine cost nothing: tput %.1f vs %.1f q/s, shed %v", worst, base, shedWorst)
	}
	if retried, ok := res.Metric("retried_link_lossy"); !ok || retried == 0 {
		t.Errorf("lossy link forced no retries (metric present: %v, value %v)", ok, retried)
	}
	lossy := res.Table("lossy_link")
	if lossy == nil || len(lossy.Rows) < 2 {
		t.Fatal("lossy_link table missing or short")
	}
	wd, _ := lossy.Float(len(lossy.Rows)-1, 6)
	if wd == 0 {
		t.Error("lossy link dropped no messages on the wire")
	}
}

// TestGoldenRunsAreDeterministic guards the premise of the golden files:
// two runs at the same seed render identically.
func TestGoldenRunsAreDeterministic(t *testing.T) {
	a, b := goldenRun(t, "fig4"), goldenRun(t, "fig4")
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("fig4 runs with identical seeds rendered differently")
	}
}
