package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/elastic"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// fig17.go reproduces Figure 17: Q6 with a single client comparing the
// mechanism's two state-transition strategies — CPU load and the HT/IMC
// traffic ratio — against the OS baseline, reporting response time, HT
// traffic and L3 misses.

// Fig17Row is one (mode, strategy) measurement.
type Fig17Row struct {
	Mode         workload.Mode
	Strategy     string
	ResponseSecs float64
	HTMBPerS     float64
	L3Misses     uint64
}

// Fig17Result is the typed view of the fig17 Result.
type Fig17Result struct {
	*Result
	Rows []Fig17Row
}

// Row returns the measurement for (mode, strategy), or nil.
func (r *Fig17Result) Row(mode workload.Mode, strategy string) *Fig17Row {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode && r.Rows[i].Strategy == strategy {
			return &r.Rows[i]
		}
	}
	return nil
}

// runFig17 executes the comparison. The OS baseline appears once under
// strategy "-"; each mechanism mode appears under both strategies.
func runFig17(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	tb := res.AddTable("strategies",
		colS("mode"), colS("strategy"), colF("resp (s)", 3), colF("HT MB/s", 2), colI("L3 misses"))
	type combo struct {
		mode     workload.Mode
		strategy elastic.Strategy
		name     string
	}
	combos := []combo{{workload.ModeOS, nil, "-"}}
	for _, mode := range []workload.Mode{workload.ModeDense, workload.ModeSparse, workload.ModeAdaptive} {
		combos = append(combos,
			combo{mode, elastic.CPULoadStrategy{}, "cpu-load"},
			combo{mode, elastic.HTIMCStrategy{}, "ht-imc"},
		)
	}
	for i, cb := range combos {
		cb := cb
		err := phase(ctx, obs, fmt.Sprintf("mode=%s strategy=%s", cb.mode, cb.name), func() error {
			r, err := newRig(c, cb.mode, cb.strategy)
			if err != nil {
				return err
			}
			d := &workload.Driver{Rig: r, QueriesPerClient: 1}
			p := q6Fixed()
			ph := d.Run(1, func(cl, k int) *db.Plan { return tpch.BuildQ6With(p) })
			htMBPerS := 0.0
			if ph.ElapsedSeconds > 0 {
				htMBPerS = mb(ph.Window.TotalHTBytes()) / ph.ElapsedSeconds
			}
			tb.AddRow(cb.mode.String(), cb.name, ph.MeanLatencySeconds, htMBPerS,
				ph.Window.TotalL3Misses())
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(combos))
	}
	return res, nil
}

// fig17ResultFrom decodes the generic Result into the typed view.
func fig17ResultFrom(res *Result) (*Fig17Result, error) {
	tb := res.Table("strategies")
	if tb == nil {
		return nil, fmt.Errorf("experiments: fig17 result missing strategies table")
	}
	out := &Fig17Result{Result: res}
	for i := range tb.Rows {
		name, _ := tb.Str(i, 0)
		mode, ok := modeByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: fig17 unknown mode %q", name)
		}
		strategy, _ := tb.Str(i, 1)
		resp, _ := tb.Float(i, 2)
		ht, _ := tb.Float(i, 3)
		misses, _ := tb.Int(i, 4)
		out.Rows = append(out.Rows, Fig17Row{
			Mode: mode, Strategy: strategy, ResponseSecs: resp,
			HTMBPerS: ht, L3Misses: uint64(misses),
		})
	}
	return out, nil
}

// RunFig17 executes the comparison through the registry and returns the
// typed view.
func RunFig17(c Config) (*Fig17Result, error) {
	res, err := run("fig17", c)
	if err != nil {
		return nil, err
	}
	return fig17ResultFrom(res)
}
