package experiments

import (
	"fmt"

	"elasticore/internal/db"
	"elasticore/internal/elastic"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// fig17.go reproduces Figure 17: Q6 with a single client comparing the
// mechanism's two state-transition strategies — CPU load and the HT/IMC
// traffic ratio — against the OS baseline, reporting response time, HT
// traffic and L3 misses.

// Fig17Row is one (mode, strategy) measurement.
type Fig17Row struct {
	Mode         workload.Mode
	Strategy     string
	ResponseSecs float64
	HTMBPerS     float64
	L3Misses     uint64
}

// Fig17Result is the strategy comparison.
type Fig17Result struct {
	Rows []Fig17Row
}

// Row returns the measurement for (mode, strategy), or nil.
func (r *Fig17Result) Row(mode workload.Mode, strategy string) *Fig17Row {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode && r.Rows[i].Strategy == strategy {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the panels.
func (r *Fig17Result) String() string {
	t := &table{header: []string{"mode", "strategy", "resp (s)", "HT MB/s", "L3 misses"}}
	for _, row := range r.Rows {
		t.add(row.Mode.String(), row.Strategy, f3(row.ResponseSecs),
			f2(row.HTMBPerS), fmt.Sprint(row.L3Misses))
	}
	return "Figure 17: CPU-load vs HT/IMC state-transition strategies, Q6, 1 client\n" + t.String()
}

// RunFig17 executes the comparison. The OS baseline appears once under
// strategy "-"; each mechanism mode appears under both strategies.
func RunFig17(c Config) (*Fig17Result, error) {
	c = c.withDefaults()
	res := &Fig17Result{}
	type combo struct {
		mode     workload.Mode
		strategy elastic.Strategy
		name     string
	}
	combos := []combo{{workload.ModeOS, nil, "-"}}
	for _, mode := range []workload.Mode{workload.ModeDense, workload.ModeSparse, workload.ModeAdaptive} {
		combos = append(combos,
			combo{mode, elastic.CPULoadStrategy{}, "cpu-load"},
			combo{mode, elastic.HTIMCStrategy{}, "ht-imc"},
		)
	}
	for _, cb := range combos {
		r, err := newRig(c, cb.mode, cb.strategy)
		if err != nil {
			return nil, err
		}
		d := &workload.Driver{Rig: r, QueriesPerClient: 1}
		p := q6Fixed()
		phase := d.Run(1, func(cl, k int) *db.Plan { return tpch.BuildQ6With(p) })
		row := Fig17Row{
			Mode:         cb.mode,
			Strategy:     cb.name,
			ResponseSecs: phase.MeanLatencySeconds,
			L3Misses:     phase.Window.TotalL3Misses(),
		}
		if phase.ElapsedSeconds > 0 {
			row.HTMBPerS = mb(phase.Window.TotalHTBytes()) / phase.ElapsedSeconds
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
