package experiments

import (
	"bytes"
	"strings"
	"testing"

	"elasticore/internal/metrics"
	"elasticore/internal/numa"
)

// faults_test.go covers the failure-experiment plumbing that the golden
// files cannot: zero-sample quantile rendering and the Config-level
// validation of fault plans and replica degrees.

// TestMsOrDashZeroSamples: an empty histogram must render "-", not the
// empty histogram's zero quantiles — an all-shed window had no service,
// and a 0.000 ms tail would claim the opposite.
func TestMsOrDashZeroSamples(t *testing.T) {
	topo, err := numa.ParseTopology("2x4")
	if err != nil {
		t.Fatal(err)
	}
	var empty, one metrics.Histogram
	one.Record(topo.SecondsToCycles(1e-3))
	if got := msOrDash(topo, &empty, 0.99); got != "-" {
		t.Fatalf("empty histogram rendered %v, want -", got)
	}
	v, ok := msOrDash(topo, &one, 0.99).(float64)
	if !ok || v <= 0 {
		t.Fatalf("non-empty histogram rendered %v, want a positive float", v)
	}

	// End to end: the dash must survive the table renderer inside a
	// float column, and zero must not appear in its place.
	res := &Result{Name: "dash"}
	tbl := res.AddTable("phases", colS("phase"), colF("p99(ms)", 3))
	tbl.AddRow("fault", msOrDash(topo, &empty, 0.99))
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Fatalf("rendered table lost the dash:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "0.000") {
		t.Fatalf("rendered table shows a zero quantile for an empty window:\n%s", buf.String())
	}
}

// TestConfigFaultValidation: a malformed fault spec and an oversized
// replica degree are rejected centrally in withDefaults, before any
// experiment body runs.
func TestConfigFaultValidation(t *testing.T) {
	if _, err := (Config{Faults: "explode m0 @1s"}).withDefaults(); err == nil {
		t.Error("unknown fault kind accepted")
	}
	if _, err := (Config{Faults: "crash m1 @nope"}).withDefaults(); err == nil {
		t.Error("malformed fault time accepted")
	}
	if _, err := (Config{Replicas: -1}).withDefaults(); err == nil {
		t.Error("negative replica count accepted")
	}
	if _, err := (Config{Machines: 2, Replicas: 3}).withDefaults(); err == nil {
		t.Error("replicas > machines accepted")
	}
	c, err := (Config{Machines: 4, Replicas: 2, Faults: "crash m1 @0.02s for 0.06s"}).withDefaults()
	if err != nil {
		t.Fatalf("valid faulted config rejected: %v", err)
	}
	if c.Replicas != 2 || c.Faults == "" {
		t.Fatalf("valid faulted config mangled: %+v", c)
	}
}
