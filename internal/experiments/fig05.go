package experiments

import (
	"fmt"

	"elasticore/internal/tpch"
	"elasticore/internal/trace"
	"elasticore/internal/workload"
)

// fig05.go reproduces Figures 5 and 6: the lifespan/core-migration map of
// the threads spawned for a single-client Q6 under the plain OS scheduler,
// and the tomograph of its worker-thread operator calls.

// Fig5Result captures the single-client scheduling behaviour.
type Fig5Result struct {
	// Migrations and CrossNode are total thread reassignments during the
	// query and the subset that changed NUMA node.
	Migrations, CrossNode int
	// ThreadsObserved counts worker threads that executed slices.
	ThreadsObserved int
	// MultiNodeThreads counts threads that ran on more than one node
	// (the Figure 5 pathology).
	MultiNodeThreads int
	// LifespanMap is the rendered ASCII map.
	LifespanMap string
	// Tomograph is the rendered per-operator table (Figure 6).
	Tomograph string
	// ParallelTheta is the number of tasks the first thetasubselect
	// fanned out to (the paper observes ~15 on 16 cores).
	ParallelTheta int
}

// String renders both artifacts.
func (r *Fig5Result) String() string {
	return fmt.Sprintf(
		"Figure 5: single-client Q6 thread scheduling under the OS\n"+
			"threads=%d migrations=%d cross-node=%d multi-node-threads=%d\n%s\n"+
			"Figure 6: tomograph of worker threads\n%s",
		r.ThreadsObserved, r.Migrations, r.CrossNode, r.MultiNodeThreads,
		r.LifespanMap, r.Tomograph)
}

// RunFig5 executes a single-client Q6 on the OS-scheduled engine and
// collects the traces.
func RunFig5(c Config) (*Fig5Result, error) {
	c = c.withDefaults()
	r, err := newRig(c, workload.ModeOS, nil)
	if err != nil {
		return nil, err
	}
	mt := trace.NewMigrationTrace(r.Sched)
	tg := trace.NewTomograph(r.Engine, r.Machine.Topology())

	q := r.Engine.Submit(tpch.BuildQ6With(q6Fixed()))
	if !r.Sched.RunUntil(q.Done, r.Machine.Topology().SecondsToCycles(600)) {
		return nil, fmt.Errorf("experiments: fig5 query timed out")
	}

	res := &Fig5Result{}
	res.Migrations, res.CrossNode = mt.MigrationCount()
	nodes := mt.NodesUsed()
	res.ThreadsObserved = len(nodes)
	for _, n := range nodes {
		if n > 1 {
			res.MultiNodeThreads++
		}
	}
	res.LifespanMap = mt.Render(24, 16)
	res.Tomograph = tg.Render()
	for _, s := range tg.Stats() {
		if s.Op == "algebra.thetasubselect" {
			res.ParallelTheta = s.Calls
		}
	}
	return res, nil
}
