package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/tpch"
	"elasticore/internal/trace"
	"elasticore/internal/workload"
)

// fig05.go reproduces Figures 5 and 6: the lifespan/core-migration map of
// the threads spawned for a single-client Q6 under the plain OS scheduler,
// and the tomograph of its worker-thread operator calls.

// Fig5Result is the typed view of the fig5 Result: scalar counters come
// from its metrics, the rendered maps from its artifacts.
type Fig5Result struct {
	*Result
	// Migrations and CrossNode are total thread reassignments during the
	// query and the subset that changed NUMA node.
	Migrations, CrossNode int
	// ThreadsObserved counts worker threads that executed slices.
	ThreadsObserved int
	// MultiNodeThreads counts threads that ran on more than one node
	// (the Figure 5 pathology).
	MultiNodeThreads int
	// LifespanMap is the rendered ASCII map.
	LifespanMap string
	// Tomograph is the rendered per-operator table (Figure 6).
	Tomograph string
	// ParallelTheta is the number of tasks the first thetasubselect
	// fanned out to (the paper observes ~15 on 16 cores).
	ParallelTheta int
}

// runFig5 executes a single-client Q6 on the OS-scheduled engine and
// collects the traces.
func runFig5(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	err := phase(ctx, obs, "q6 single client", func() error {
		r, err := newRig(c, workload.ModeOS, nil)
		if err != nil {
			return err
		}
		// Both traces ride the rig's shared telemetry bus — with
		// Config.Bus set they coexist with the exporter on one stream.
		b := r.EnsureBus()
		mt := trace.NewMigrationTraceOn(b, r.Machine.Topology())
		tg := trace.NewTomographOn(b, r.Machine.Topology())

		q := r.Engine.Submit(tpch.BuildQ6With(q6Fixed()))
		if !r.Sched.RunUntil(q.Done, r.Machine.Topology().SecondsToCycles(600)) {
			return fmt.Errorf("experiments: fig5 query timed out")
		}

		migrations, crossNode := mt.MigrationCount()
		nodes := mt.NodesUsed()
		multiNode := 0
		for _, n := range nodes {
			if n > 1 {
				multiNode++
			}
		}
		parallelTheta := 0
		for _, s := range tg.Stats() {
			if s.Op == "algebra.thetasubselect" {
				parallelTheta = s.Calls
			}
		}
		res.AddMetric("migrations", float64(migrations), "")
		res.AddMetric("cross_node", float64(crossNode), "")
		res.AddMetric("threads_observed", float64(len(nodes)), "")
		res.AddMetric("multi_node_threads", float64(multiNode), "")
		res.AddMetric("parallel_theta", float64(parallelTheta), "tasks")
		res.AddArtifact("lifespan_map", mt.Render(24, 16))
		res.AddArtifact("tomograph", tg.Render())
		return nil
	})
	if err != nil {
		return nil, err
	}
	obs.Progress(1, 1)
	return res, nil
}

// fig5ResultFrom decodes the generic Result into the typed view.
func fig5ResultFrom(res *Result) (*Fig5Result, error) {
	out := &Fig5Result{Result: res}
	for _, f := range []struct {
		name string
		dst  *int
	}{
		{"migrations", &out.Migrations},
		{"cross_node", &out.CrossNode},
		{"threads_observed", &out.ThreadsObserved},
		{"multi_node_threads", &out.MultiNodeThreads},
		{"parallel_theta", &out.ParallelTheta},
	} {
		v, ok := res.Metric(f.name)
		if !ok {
			return nil, fmt.Errorf("experiments: fig5 result missing metric %s", f.name)
		}
		*f.dst = int(v)
	}
	out.LifespanMap = res.Artifact("lifespan_map")
	out.Tomograph = res.Artifact("tomograph")
	return out, nil
}

// RunFig5 executes the trace collection through the registry and returns
// the typed view.
func RunFig5(c Config) (*Fig5Result, error) {
	res, err := run("fig5", c)
	if err != nil {
		return nil, err
	}
	return fig5ResultFrom(res)
}
