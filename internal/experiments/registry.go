package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// registry.go is the experiment catalogue. The paper's 13 artifacts are
// registered in register.go; future scenarios add themselves with Register
// instead of growing a switch table in cmd/elasticbench.

// Registry is a named, ordered collection of experiments.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Experiment
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Experiment{}}
}

// Register adds an experiment; duplicate or empty names error.
func (r *Registry) Register(e Experiment) error {
	name := e.Name()
	if name == "" {
		return fmt.Errorf("experiments: experiment with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("experiments: duplicate experiment %q", name)
	}
	r.byName[name] = e
	r.order = append(r.order, name)
	return nil
}

// MustRegister is Register for init-time catalogues; it panics on error.
func (r *Registry) MustRegister(e Experiment) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Lookup returns the named experiment.
func (r *Registry) Lookup(name string) (Experiment, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byName[name]
	return e, ok
}

// All returns every experiment in registration order.
func (r *Registry) All() []Experiment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Experiment, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name])
	}
	return out
}

// Names returns every registered name in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// WithTag returns the experiments carrying the tag, in registration order.
func (r *Registry) WithTag(tag string) []Experiment {
	var out []Experiment
	for _, e := range r.All() {
		for _, t := range e.Describe().Tags {
			if t == tag {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// Tags returns the sorted union of all registered tags.
func (r *Registry) Tags() []string {
	seen := map[string]bool{}
	for _, e := range r.All() {
		for _, t := range e.Describe().Tags {
			seen[t] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// defaultRegistry holds the package-level catalogue.
var defaultRegistry = NewRegistry()

// Register adds an experiment to the default registry, panicking on
// duplicates (registration is an init-time act).
func Register(e Experiment) { defaultRegistry.MustRegister(e) }

// Lookup finds an experiment in the default registry.
func Lookup(name string) (Experiment, bool) { return defaultRegistry.Lookup(name) }

// All lists the default registry in registration order.
func All() []Experiment { return defaultRegistry.All() }

// Names lists the default registry's names in registration order.
func Names() []string { return defaultRegistry.Names() }

// WithTag filters the default registry by tag.
func WithTag(tag string) []Experiment { return defaultRegistry.WithTag(tag) }

// Tags returns the sorted union of the default registry's tags.
func Tags() []string { return defaultRegistry.Tags() }

// run executes a registered experiment with background context and no
// observer — the compatibility path behind the typed RunFigN wrappers.
func run(name string, cfg Config) (*Result, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", name)
	}
	return e.Run(context.Background(), cfg, nil)
}
