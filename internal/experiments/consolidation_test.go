package experiments

import (
	"strings"
	"testing"
)

func TestConsolidationAcceptance(t *testing.T) {
	c := tiny()
	c.Tenants = 3
	res, err := RunConsolidation(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}

	// Contention: the tenants' aggregate demand must exceed the machine,
	// otherwise the arbitration below is not being exercised.
	if res.PeakAggregateDemand <= res.MachineCores {
		t.Fatalf("peak aggregate demand %d never exceeded the %d-core machine; no contention",
			res.PeakAggregateDemand, res.MachineCores)
	}
	// Never over-commit: the sum of tenant cgroup cores stays within the
	// machine at every tick of both runs.
	if res.PeakTotalCores > res.MachineCores {
		t.Errorf("over-commit: peak total allocation %d > %d machine cores",
			res.PeakTotalCores, res.MachineCores)
	}
	// Starvation floors: every tenant keeps its SLA minimum throughout.
	for _, row := range res.Rows {
		if row.MinCoresSeen < row.MinCores {
			t.Errorf("tenant %s dipped to %d cores, below its SLA floor %d",
				row.Tenant, row.MinCoresSeen, row.MinCores)
		}
	}
	// SLA weight effect: the gold tenant (weight 4) must receive
	// measurably more cores and more throughput than the same tenant in
	// the equal-weight baseline run.
	gold := res.Row("gold")
	if gold == nil {
		t.Fatal("missing gold tenant")
	}
	if gold.MeanCores <= gold.BaselineMeanCores {
		t.Errorf("gold mean cores %.2f not above equal-weight baseline %.2f",
			gold.MeanCores, gold.BaselineMeanCores)
	}
	if gold.Throughput <= gold.BaselineThroughput {
		t.Errorf("gold throughput %.3f q/s not above equal-weight baseline %.3f q/s",
			gold.Throughput, gold.BaselineThroughput)
	}
	// And within the weighted run, gold outranks the weight-1 tenant.
	bronze := res.Row("bronze2")
	if bronze == nil {
		t.Fatal("missing bronze tenant")
	}
	if gold.MeanCores <= bronze.MeanCores {
		t.Errorf("gold mean cores %.2f not above bronze %.2f", gold.MeanCores, bronze.MeanCores)
	}
	if !strings.Contains(res.String(), "Consolidation") {
		t.Error("rendering broken")
	}
}

func TestConsolidationTenantCountValidation(t *testing.T) {
	c := tiny()
	c.Tenants = 5
	if _, err := RunConsolidation(c); err == nil {
		t.Error("5 tenants accepted, want 2..4")
	}
	c.Tenants = 1
	if _, err := RunConsolidation(c); err == nil {
		t.Error("1 tenant accepted, want 2..4")
	}
}

func TestConsolidationTwoTenants(t *testing.T) {
	c := tiny()
	c.Tenants = 2
	c.Clients = 8
	res, err := RunConsolidation(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.PeakTotalCores > res.MachineCores {
		t.Errorf("over-commit: %d > %d", res.PeakTotalCores, res.MachineCores)
	}
}
