package experiments

import (
	"strings"
	"testing"

	"elasticore/internal/db"
	"elasticore/internal/workload"
)

// Tiny config keeps each experiment fast in unit tests; the benches run
// larger ones.
func tiny() Config {
	return Config{SF: 0.005, Clients: 16, Users: []int{1, 8}, Seed: 1}
}

func TestFig4ShapeTargets(t *testing.T) {
	res, err := RunFig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Every configuration measured at every user count.
	for _, cfg := range []string{"OS/MonetDB", "OS/C", "Dense/C", "Sparse/C"} {
		for _, u := range []int{1, 8} {
			if res.Row(cfg, u) == nil {
				t.Fatalf("missing row %s/%d", cfg, u)
			}
		}
	}
	// Shape: the Volcano engine's thread storm moves more interconnect
	// data than the fused C kernel at every concurrency, with the gap
	// narrowing as users grow (the paper's 100x at 1 user vs 8x at 256).
	for _, u := range []int{1, 8} {
		if res.Row("OS/MonetDB", u).HTMBPerS <= res.Row("OS/C", u).HTMBPerS {
			t.Errorf("OS/MonetDB HT (%g MB/s) should exceed OS/C (%g MB/s) at %d users",
				res.Row("OS/MonetDB", u).HTMBPerS, res.Row("OS/C", u).HTMBPerS, u)
		}
	}
	gap1 := res.Row("OS/MonetDB", 1).HTMBPerS / res.Row("OS/C", 1).HTMBPerS
	gap8 := res.Row("OS/MonetDB", 8).HTMBPerS / res.Row("OS/C", 8).HTMBPerS
	if gap8 >= gap1 {
		t.Errorf("MonetDB/C HT gap should narrow with users: %gx -> %gx", gap1, gap8)
	}
	// Shape: dense-pinned C threads produce the least interconnect use.
	if res.Row("Dense/C", 8).HTMBPerS > res.Row("Sparse/C", 8).HTMBPerS {
		t.Errorf("Dense/C HT (%g) should not exceed Sparse/C (%g)",
			res.Row("Dense/C", 8).HTMBPerS, res.Row("Sparse/C", 8).HTMBPerS)
	}
	if !strings.Contains(res.String(), "Figure 4") {
		t.Error("rendering broken")
	}
}

func TestFig5ShapeTargets(t *testing.T) {
	res, err := RunFig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.ThreadsObserved == 0 {
		t.Fatal("no worker threads observed")
	}
	if res.ParallelTheta < 2 {
		t.Errorf("thetasubselect fan-out = %d, want parallel execution", res.ParallelTheta)
	}
	if !strings.Contains(res.Tomograph, "algebra.thetasubselect") {
		t.Error("tomograph missing the scan operator")
	}
}

func TestFig7ShapeTargets(t *testing.T) {
	res, err := RunFig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no transitions recorded")
	}
	// Shape: the mechanism must ramp up under load and release after it.
	if res.PeakCores < 2 {
		t.Errorf("peak cores = %d, want ramp-up under 16 concurrent clients", res.PeakCores)
	}
	if res.Allocations == 0 {
		t.Error("no t1-Overload-t5 allocations fired")
	}
	if res.Releases == 0 {
		t.Error("no t0-Idle-t4 releases fired after the load ended")
	}
	for _, p := range res.Points {
		switch p.Label {
		case "t0-Idle-t4", "t0-Idle-t7", "t1-Overload-t5", "t1-Overload-t6", "t2-Stable-t3":
		default:
			t.Errorf("unexpected label %q", p.Label)
		}
	}
}

func TestFig13ShapeTargets(t *testing.T) {
	res, err := RunFig13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range workload.AllModes {
		for _, u := range []int{1, 8} {
			if res.Row(mode, u) == nil {
				t.Fatalf("missing row %v/%d", mode, u)
			}
		}
	}
	// Shape: stolen tasks stay comparable, with the adaptive mode not
	// stealing substantially more than the OS (the paper's OS stole 46%
	// more; at our scale the two are near parity — see EXPERIMENTS.md).
	osRow, adRow := res.Row(workload.ModeOS, 8), res.Row(workload.ModeAdaptive, 8)
	if float64(adRow.StolenTasks) > 1.25*float64(osRow.StolenTasks) {
		t.Errorf("adaptive stolen tasks (%d) far exceed OS (%d)", adRow.StolenTasks, osRow.StolenTasks)
	}
	if osRow.Tasks == 0 || adRow.Tasks == 0 {
		t.Error("task counts missing")
	}
}

func TestFig14ShapeTargets(t *testing.T) {
	res, err := RunFig14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	osRow, adRow := res.Row(workload.ModeOS), res.Row(workload.ModeAdaptive)
	if osRow == nil || adRow == nil {
		t.Fatal("missing rows")
	}
	// Shape: the adaptive mode does not miss substantially more than the
	// OS baseline (the paper's -43% does not fully reproduce at scaled
	// cache geometry; see EXPERIMENTS.md).
	if float64(adRow.TotalL3Misses) > 1.15*float64(osRow.TotalL3Misses) {
		t.Errorf("adaptive L3 misses (%d) far exceed OS (%d)", adRow.TotalL3Misses, osRow.TotalL3Misses)
	}
	// Shape: the OS baseline has the highest HT traffic rate.
	for _, mode := range []workload.Mode{workload.ModeDense, workload.ModeAdaptive} {
		if row := res.Row(mode); row.HTGBPerS > osRow.HTGBPerS {
			t.Errorf("%v HT rate (%g) exceeds OS (%g)", mode, row.HTGBPerS, osRow.HTGBPerS)
		}
	}
}

func TestFig15ShapeTargets(t *testing.T) {
	c := tiny()
	res, err := RunFig15(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Fig15Selectivities)*len(workload.AllModes) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Shape: misses grow with selectivity for the OS (more data
	// materialized).
	if res.Row(workload.ModeOS, 1.0).L3Misses <= res.Row(workload.ModeOS, 0.02).L3Misses {
		t.Error("OS misses did not grow with selectivity")
	}
}

func TestFig16ShapeTargets(t *testing.T) {
	res, err := RunFig16(tiny())
	if err != nil {
		t.Fatal(err)
	}
	osRow := res.Row(workload.ModeOS)
	adRow := res.Row(workload.ModeAdaptive)
	denseRow := res.Row(workload.ModeDense)
	if osRow == nil || adRow == nil || denseRow == nil {
		t.Fatal("missing rows")
	}
	// Shape: dense and adaptive keep execution on fewer nodes than the
	// OS's all-node spread (paper Fig 16 b/d vs a).
	if denseRow.NodesTouched > osRow.NodesTouched {
		t.Errorf("dense touched %d nodes, OS %d", denseRow.NodesTouched, osRow.NodesTouched)
	}
	if adRow.NodesTouched > osRow.NodesTouched {
		t.Errorf("adaptive touched %d nodes, OS %d", adRow.NodesTouched, osRow.NodesTouched)
	}
}

func TestFig17ShapeTargets(t *testing.T) {
	res, err := RunFig17(tiny())
	if err != nil {
		t.Fatal(err)
	}
	os := res.Row(workload.ModeOS, "-")
	if os == nil {
		t.Fatal("missing OS row")
	}
	for _, strat := range []string{"cpu-load", "ht-imc"} {
		if res.Row(workload.ModeAdaptive, strat) == nil {
			t.Fatalf("missing adaptive/%s row", strat)
		}
	}
	// Shape (paper Fig 17 b): the OS moves far more interconnect data
	// than the adaptive mode with the CPU-load strategy (paper: ~9x).
	ad := res.Row(workload.ModeAdaptive, "cpu-load")
	if ad.HTMBPerS >= os.HTMBPerS {
		t.Errorf("adaptive HT rate %.2f not below OS %.2f", ad.HTMBPerS, os.HTMBPerS)
	}
	// Shape (paper Fig 17 a/c): the HT/IMC strategy reacts more slowly
	// than CPU load, costing response time.
	if res.Row(workload.ModeAdaptive, "ht-imc").ResponseSecs < ad.ResponseSecs {
		t.Error("ht-imc strategy faster than cpu-load, contradicting the paper's Fig 17")
	}
	// L3 misses: near parity at scaled cache geometry (the paper's 2x
	// improvement does not fully reproduce; see EXPERIMENTS.md).
	for _, strat := range []string{"cpu-load", "ht-imc"} {
		if row := res.Row(workload.ModeAdaptive, strat); float64(row.L3Misses) > 1.15*float64(os.L3Misses) {
			t.Errorf("adaptive/%s misses %d far exceed OS %d", strat, row.L3Misses, os.L3Misses)
		}
	}
}

func TestFig18ShapeTargets(t *testing.T) {
	c := tiny()
	c.Clients = 8
	res, err := RunFig18(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"OS/MonetDB", "Adaptive/MonetDB", "OS/SQLServer", "Adaptive/SQLServer"} {
		run := res.Run(label)
		if run == nil {
			t.Fatalf("missing run %s", label)
		}
		if run.TotalSeconds <= 0 {
			t.Errorf("%s total time %g", label, run.TotalSeconds)
		}
	}
	// Shape: the adaptive mechanism does not slow MonetDB down.
	osRun, adRun := res.Run("OS/MonetDB"), res.Run("Adaptive/MonetDB")
	if adRun.TotalSeconds > osRun.TotalSeconds*1.3 {
		t.Errorf("Adaptive/MonetDB %.3fs much slower than OS %.3fs", adRun.TotalSeconds, osRun.TotalSeconds)
	}
}

func TestFig19ShapeTargets(t *testing.T) {
	c := tiny()
	c.Clients = 8
	res, err := RunFig19(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 22 {
		t.Fatalf("queries = %d, want 22", len(res.Queries))
	}
	if res.MaxSpeedup <= 0 {
		t.Error("no speedup computed")
	}
	// SQL Server flavour runs too.
	c.Placement = db.PlacementNUMAAware
	res2, err := RunFig19(c)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Engine != "SQLServer" {
		t.Errorf("engine label %q", res2.Engine)
	}
}

func TestFig20ShapeTargets(t *testing.T) {
	c := tiny()
	c.Clients = 8
	res, err := RunFig20(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 22 {
		t.Fatalf("queries = %d, want 22", len(res.Queries))
	}
	// Shape: the adaptive mode is at worst energy-neutral at this tiny
	// scale (the paper's 26% saving emerges with scale; the bench config
	// reports the measured value — see EXPERIMENTS.md).
	if res.TotalSavingsPct < -5 {
		t.Errorf("total savings %.2f%%, want >= -5%%", res.TotalSavingsPct)
	}
	if res.GeoHTSavingsPct <= 0 {
		t.Error("no HT energy savings at all")
	}
}

func TestOverheadOrdering(t *testing.T) {
	res, err := MeasureOverhead(tiny(), 200)
	if err != nil {
		t.Fatal(err)
	}
	// Shape: the adaptive mode's control step costs at least as much as
	// dense (it maintains the residency priority queue).
	if res.PerStep[workload.ModeAdaptive] < res.PerStep[workload.ModeDense]/2 {
		t.Errorf("adaptive step (%v) implausibly cheaper than dense (%v)",
			res.PerStep[workload.ModeAdaptive], res.PerStep[workload.ModeDense])
	}
	if !strings.Contains(res.String(), "adaptive") {
		t.Error("rendering broken")
	}
}
