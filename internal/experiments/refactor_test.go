package experiments

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// refactor_test.go pins the complete rendered output of every registered
// experiment across refactors of the execution engine. Where the golden
// files in testdata/ pin a handful of full renderings, this test pins a
// 64-bit FNV-1a hash of the text, JSON and CSV renderings of the whole
// registry (minus the host-clock-dependent "overhead" experiment), both
// on the default fast paths and under Config.Naive — so a refactor of the
// operator layer (the vectorized pipeline, the plan compiler) must leave
// every experiment byte-identical, not just the ones with full goldens.
//
// The signature files were generated BEFORE the vectorized-operator
// refactor; the test iterates the names recorded in the file, so newly
// registered experiments don't silently self-bless — they get pinned by
// their own golden files and a signature entry on the next -update.
// Regenerate with `go test ./internal/experiments -run TestOperatorRefactor
// -update` only after an intentional output change.

// signatureExcluded lists experiments whose output depends on the host
// clock and therefore cannot be byte-pinned.
var signatureExcluded = map[string]bool{"overhead": true}

// renderSignature hashes one rendering of a metadata-normalized result.
func renderSignature(t *testing.T, res *Result, format string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Render(&buf, format); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return fmt.Sprintf("%016x", h.Sum64())
}

// collectSignatures runs every non-excluded registered experiment at the
// golden config and returns "name<TAB>format<TAB>hash" lines.
func collectSignatures(t *testing.T, naive bool) []string {
	t.Helper()
	var lines []string
	for _, e := range All() {
		if signatureExcluded[e.Name()] {
			continue
		}
		cfg := goldenConfig()
		cfg.Naive = naive
		res, err := e.Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		res.Meta.WallTime = 0
		res.Meta.Version = "golden"
		for _, format := range []string{"text", "json", "csv"} {
			lines = append(lines, fmt.Sprintf("%s\t%s\t%s",
				e.Name(), format, renderSignature(t, res, format)))
		}
	}
	sort.Strings(lines)
	return lines
}

// checkSignatures compares freshly computed signatures against the
// recorded file: every recorded entry must still be produced bit-for-bit.
// Entries for experiments no longer registered fail (a silently dropped
// experiment is a regression too); new experiments are only pinned once
// recorded via -update.
func checkSignatures(t *testing.T, path string, naive bool) {
	t.Helper()
	got := map[string]string{}
	for _, line := range collectSignatures(t, naive) {
		key := line[:strings.LastIndexByte(line, '\t')]
		got[key] = line
	}
	if *updateGolden {
		var lines []string
		for _, l := range got {
			lines = append(lines, l)
		}
		sort.Strings(lines)
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing signature file (run with -update): %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	checked := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		key := line[:strings.LastIndexByte(line, '\t')]
		if g, ok := got[key]; !ok {
			t.Errorf("recorded experiment rendering %q no longer produced", key)
		} else if g != line {
			t.Errorf("output drifted for %s:\n  recorded %s\n  got      %s", key, line, g)
		}
		checked++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatalf("signature file %s is empty", path)
	}
}

// TestOperatorRefactorSignatures: the whole registry on the default fast
// paths must render byte-identically to the pre-refactor recording.
func TestOperatorRefactorSignatures(t *testing.T) {
	checkSignatures(t, filepath.Join("testdata", "signatures.golden"), false)
}

// TestOperatorRefactorSignaturesNaive: the same recording must hold with
// every engine optimization disabled — Config.Naive shares the recorded
// signatures with the fast path, so this additionally proves fast/naive
// equivalence for every experiment at once.
func TestOperatorRefactorSignaturesNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("naive sweep is slow; run without -short")
	}
	checkSignatures(t, filepath.Join("testdata", "signatures.golden"), true)
}
