package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTableStringClampsRaggedRows is the regression test for the latent
// panic: a row with more cells than the header used to index widths out
// of range.
func TestTableStringClampsRaggedRows(t *testing.T) {
	tb := &table{header: []string{"a", "b"}}
	tb.add("1", "2", "3", "4")
	tb.add("5")
	out := tb.String()
	for _, cell := range []string{"1", "2", "3", "4", "5"} {
		if !strings.Contains(out, cell) {
			t.Errorf("ragged render dropped cell %q:\n%s", cell, out)
		}
	}
}

// TestResultRaggedTableRenders pushes a ragged row through every Result
// renderer.
func TestResultRaggedTableRenders(t *testing.T) {
	res := &Result{Name: "ragged", Title: "Ragged"}
	tb := res.AddTable("t", colS("a"), colI("b"))
	tb.AddRow("x", 1, "extra", 2.5)
	if s := res.String(); !strings.Contains(s, "extra") {
		t.Errorf("text render lost the extra cell:\n%s", s)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("json: %v", err)
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatalf("csv: %v", err)
	}
}

func sampleResult() *Result {
	res := &Result{Name: "sample", Title: "Sample experiment"}
	res.Meta = Meta{SF: 0.01, Clients: 4, Seed: 2, Engine: "monetdb", Version: "test"}
	tb := res.AddTable("points",
		colS("label"), colI("count"), colF("rate", 2), colD("cost"))
	tb.AddRow("alpha", 3, 1.5, 250*time.Microsecond)
	tb.AddRow("beta", uint64(7), float32(2.25), time.Millisecond)
	res.AddMetric("total", 10, "points")
	res.AddArtifact("map", "##\n##")
	return res
}

func TestResultTextRendering(t *testing.T) {
	out := sampleResult().String()
	for _, want := range []string{
		"Sample experiment", "sample:", "seed=2", "total = 10 points",
		"[points]", "alpha", "1.50", "250µs", "[map]", "##",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text rendering missing %q:\n%s", want, out)
		}
	}
}

func TestResultJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name    string `json:"name"`
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
		Tables []struct {
			Name    string `json:"name"`
			Columns []struct {
				Name string `json:"name"`
				Kind string `json:"kind"`
			} `json:"columns"`
			Rows [][]any `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Name != "sample" || len(doc.Tables) != 1 || len(doc.Tables[0].Rows) != 2 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	if doc.Tables[0].Columns[3].Kind != "duration" {
		t.Errorf("duration column kind = %q", doc.Tables[0].Columns[3].Kind)
	}
	// Duration cells serialize as integer nanoseconds.
	if ns, ok := doc.Tables[0].Rows[0][3].(float64); !ok || ns != 250000 {
		t.Errorf("duration cell = %v, want 250000 ns", doc.Tables[0].Rows[0][3])
	}
	if doc.Metrics[0].Value != 10 {
		t.Errorf("metric value = %v", doc.Metrics[0].Value)
	}
}

func TestResultCSVParses(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	r.FieldsPerRecord = -1
	records, err := r.ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	// #table marker, header, 2 rows, #metrics marker, header, 1 metric.
	if len(records) != 7 {
		t.Fatalf("records = %d: %v", len(records), records)
	}
	if records[0][0] != "#table" || records[0][1] != "points" {
		t.Errorf("table marker = %v", records[0])
	}
	if records[2][0] != "alpha" || records[2][2] != "1.50" {
		t.Errorf("data row = %v", records[2])
	}
	// Durations are integer nanoseconds in CSV.
	if records[2][3] != "250000" {
		t.Errorf("duration cell = %q, want 250000", records[2][3])
	}
	if records[4][0] != "#metrics" {
		t.Errorf("metrics marker = %v", records[4])
	}
}

func TestRenderUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().Render(&buf, "xml"); err == nil {
		t.Error("xml accepted")
	}
	if err := sampleResult().Render(&buf, ""); err != nil {
		t.Errorf("empty format should default to text: %v", err)
	}
}

// TestConfigValidation covers the central withDefaults checks.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value defaults", Config{}, true},
		{"negative SF", Config{SF: -0.5}, false},
		{"negative clients", Config{Clients: -1}, false},
		{"zero user entry", Config{Users: []int{1, 0}}, false},
		{"tenants too many", Config{Tenants: 5}, false},
		{"tenants too few", Config{Tenants: 1}, false},
		{"tenants in range", Config{Tenants: 4}, true},
	}
	for _, tc := range cases {
		got, err := tc.cfg.withDefaults()
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if got.SF <= 0 || got.Clients < 1 || got.Seed == 0 || len(got.Users) == 0 {
			t.Errorf("%s: defaults not applied: %+v", tc.name, got)
		}
		if got.Tenants < 2 || got.Tenants > 4 {
			t.Errorf("%s: tenants = %d outside 2..4", tc.name, got.Tenants)
		}
	}
}

// TestInvalidConfigRejectedBeforeWork: the Experiment wrapper surfaces
// validation errors without running the body.
func TestInvalidConfigRejectedBeforeWork(t *testing.T) {
	if _, err := RunFig4(Config{SF: -1}); err == nil {
		t.Error("negative SF accepted by RunFig4")
	}
	if _, err := RunConsolidation(Config{Tenants: 9}); err == nil {
		t.Error("9 tenants accepted by RunConsolidation")
	}
}

// TestMetaStamped: the wrapper fills Name, Title and Meta on every run.
func TestMetaStamped(t *testing.T) {
	res, err := run("fig5", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "fig5" {
		t.Errorf("name = %q", res.Name)
	}
	if res.Title == "" {
		t.Error("title empty")
	}
	if res.Meta.SF != 0.005 || res.Meta.Clients != 16 || res.Meta.Seed != 1 {
		t.Errorf("meta not stamped from config: %+v", res.Meta)
	}
	if res.Meta.Engine != "monetdb" {
		t.Errorf("engine = %q", res.Meta.Engine)
	}
	if res.Meta.Version == "" {
		t.Error("version empty")
	}
	if res.Meta.WallTime <= 0 {
		t.Error("wall time not recorded")
	}
}
