package experiments

import (
	"fmt"

	"elasticore/internal/tpch"
	"elasticore/internal/trace"
	"elasticore/internal/workload"
)

// fig16.go reproduces Figure 16: the lifespan/migration maps of a
// single-client Q6 under all four configurations, showing that dense and
// adaptive keep threads on one node while the OS scatters them.

// Fig16Row is one mode's scheduling summary.
type Fig16Row struct {
	Mode             workload.Mode
	Migrations       int
	CrossNode        int
	MultiNodeThreads int
	NodesTouched     int // distinct nodes used across all threads
	LifespanMap      string
}

// Fig16Result is the four-mode comparison.
type Fig16Result struct {
	Rows []Fig16Row
}

// Row returns the summary for the mode, or nil.
func (r *Fig16Result) Row(mode workload.Mode) *Fig16Row {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the comparison and the maps.
func (r *Fig16Result) String() string {
	t := &table{header: []string{"mode", "migrations", "cross-node", "multi-node threads", "nodes touched"}}
	for _, row := range r.Rows {
		t.add(row.Mode.String(), fmt.Sprint(row.Migrations), fmt.Sprint(row.CrossNode),
			fmt.Sprint(row.MultiNodeThreads), fmt.Sprint(row.NodesTouched))
	}
	out := "Figure 16: single-client Q6 thread migration per mode\n" + t.String()
	for _, row := range r.Rows {
		out += fmt.Sprintf("\n[%s]\n%s", row.Mode, row.LifespanMap)
	}
	return out
}

// RunFig16 executes the comparison.
func RunFig16(c Config) (*Fig16Result, error) {
	c = c.withDefaults()
	res := &Fig16Result{}
	for _, mode := range workload.AllModes {
		r, err := newRig(c, mode, nil)
		if err != nil {
			return nil, err
		}
		mt := trace.NewMigrationTrace(r.Sched)
		q := r.Engine.Submit(tpch.BuildQ6With(q6Fixed()))
		deadline := r.Machine.Topology().SecondsToCycles(600)
		ok := r.Sched.RunUntil(func() bool {
			if r.Mech != nil {
				r.Mech.Maybe()
			}
			return q.Done()
		}, deadline)
		if !ok {
			return nil, fmt.Errorf("experiments: fig16 %v timed out", mode)
		}
		row := Fig16Row{Mode: mode}
		row.Migrations, row.CrossNode = mt.MigrationCount()
		nodesSeen := map[int]bool{}
		for _, n := range mt.NodesUsed() {
			if n > 1 {
				row.MultiNodeThreads++
			}
		}
		topo := r.Machine.Topology()
		for _, cores := range mt.CoresUsed() {
			for _, core := range cores {
				nodesSeen[int(topo.NodeOf(core))] = true
			}
		}
		row.NodesTouched = len(nodesSeen)
		row.LifespanMap = mt.Render(16, 16)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
