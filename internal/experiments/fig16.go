package experiments

import (
	"context"
	"fmt"

	"elasticore/internal/tpch"
	"elasticore/internal/trace"
	"elasticore/internal/workload"
)

// fig16.go reproduces Figure 16: the lifespan/migration maps of a
// single-client Q6 under all four configurations, showing that dense and
// adaptive keep threads on one node while the OS scatters them.

// Fig16Row is one mode's scheduling summary.
type Fig16Row struct {
	Mode             workload.Mode
	Migrations       int
	CrossNode        int
	MultiNodeThreads int
	NodesTouched     int // distinct nodes used across all threads
	LifespanMap      string
}

// Fig16Result is the typed view of the fig16 Result.
type Fig16Result struct {
	*Result
	Rows []Fig16Row
}

// Row returns the summary for the mode, or nil.
func (r *Fig16Result) Row(mode workload.Mode) *Fig16Row {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// runFig16 executes the comparison.
func runFig16(ctx context.Context, c Config, obs Observer) (*Result, error) {
	res := &Result{}
	tb := res.AddTable("modes",
		colS("mode"), colI("migrations"), colI("cross-node"),
		colI("multi-node threads"), colI("nodes touched"))
	for i, mode := range workload.AllModes {
		mode := mode
		err := phase(ctx, obs, "mode="+mode.String(), func() error {
			r, err := newRig(c, mode, nil)
			if err != nil {
				return err
			}
			mt := trace.NewMigrationTrace(r.Sched)
			q := r.Engine.Submit(tpch.BuildQ6With(q6Fixed()))
			// Explicit drive loop rather than RunUntil: the mechanism's
			// control step is a side effect, which RunUntil predicates
			// must not have (its idle fast-forward would skip them).
			deadline := r.Machine.Now() + r.Machine.Topology().SecondsToCycles(600)
			ok := false
			for {
				if r.Mech != nil {
					r.Mech.Maybe()
				}
				if q.Done() {
					ok = true
					break
				}
				if r.Machine.Now() >= deadline {
					break
				}
				r.Sched.Tick()
			}
			if !ok {
				return fmt.Errorf("experiments: fig16 %v timed out", mode)
			}
			migrations, crossNode := mt.MigrationCount()
			multiNode := 0
			for _, n := range mt.NodesUsed() {
				if n > 1 {
					multiNode++
				}
			}
			topo := r.Machine.Topology()
			nodesSeen := map[int]bool{}
			for _, cores := range mt.CoresUsed() {
				for _, core := range cores {
					nodesSeen[int(topo.NodeOf(core))] = true
				}
			}
			tb.AddRow(mode.String(), migrations, crossNode, multiNode, len(nodesSeen))
			res.AddArtifact("lifespan "+mode.String(), mt.Render(16, 16))
			return nil
		})
		if err != nil {
			return nil, err
		}
		obs.Progress(i+1, len(workload.AllModes))
	}
	return res, nil
}

// fig16ResultFrom decodes the generic Result into the typed view.
func fig16ResultFrom(res *Result) (*Fig16Result, error) {
	tb := res.Table("modes")
	if tb == nil {
		return nil, fmt.Errorf("experiments: fig16 result missing modes table")
	}
	out := &Fig16Result{Result: res}
	for i := range tb.Rows {
		name, _ := tb.Str(i, 0)
		mode, ok := modeByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: fig16 unknown mode %q", name)
		}
		migrations, _ := tb.Int(i, 1)
		crossNode, _ := tb.Int(i, 2)
		multiNode, _ := tb.Int(i, 3)
		touched, _ := tb.Int(i, 4)
		out.Rows = append(out.Rows, Fig16Row{
			Mode:             mode,
			Migrations:       int(migrations),
			CrossNode:        int(crossNode),
			MultiNodeThreads: int(multiNode),
			NodesTouched:     int(touched),
			LifespanMap:      res.Artifact("lifespan " + name),
		})
	}
	return out, nil
}

// RunFig16 executes the comparison through the registry and returns the
// typed view.
func RunFig16(c Config) (*Fig16Result, error) {
	res, err := run("fig16", c)
	if err != nil {
		return nil, err
	}
	return fig16ResultFrom(res)
}
