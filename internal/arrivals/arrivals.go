// Package arrivals provides deterministic, seeded arrival processes for
// open-loop workload generation.
//
// The paper's execution protocol (and workload.Driver) is closed-loop:
// each client submits its next query only when the previous one
// completes, so the offered load can never exceed the service capacity
// and the system never queues. Real traffic is open-loop — requests
// arrive from independent users regardless of how the server is doing —
// which is the only regime where backlog, overload and tail latency
// exist. A Process generates such an arrival stream as a monotone
// sequence of timestamps; workload.OpenDriver replays it against a rig.
//
// Every process is driven by its own SplitMix64 stream (internal/hashmix
// finalizer), so the same (parameters, seed) pair yields a bit-identical
// arrival sequence on every run and platform.
package arrivals

import (
	"fmt"
	"math"
	"sort"

	"elasticore/internal/hashmix"
)

// Process generates one arrival stream. Next returns the absolute time
// of the next arrival in seconds from the stream's origin; times are
// non-decreasing. ok is false once the stream is exhausted (stochastic
// processes are unbounded and never exhaust; drivers bound them by
// arrival count or horizon).
type Process interface {
	// Name labels the process family ("poisson", "mmpp", ...).
	Name() string
	// Next returns the next arrival time in seconds, or ok=false at the
	// end of a finite stream.
	Next() (t float64, ok bool)
}

// rng wraps the shared SplitMix64 stream (hashmix.Stream) with the
// continuous draws the processes need. It is the package's only
// randomness source, keeping arrival streams reproducible bit for bit.
type rng struct{ hashmix.Stream }

// newRNG scrambles the user seed so adjacent seeds yield uncorrelated
// streams.
func newRNG(seed uint64) rng {
	return rng{hashmix.Stream{State: hashmix.Mix64(seed ^ 0xA5A5A5A5DEADBEEF)}}
}

// uniform returns a float in (0, 1): 53 random mantissa bits offset by
// half an ulp so the endpoints are never produced (safe under math.Log).
func (r *rng) uniform() float64 {
	return (float64(r.Next()>>11) + 0.5) / (1 << 53)
}

// exp draws an exponential gap with the given rate (mean 1/rate).
func (r *rng) exp(rate float64) float64 {
	return -math.Log(r.uniform()) / rate
}

// Poisson is a homogeneous Poisson process: independent exponential
// inter-arrival gaps at a constant rate (arrivals per second).
type Poisson struct {
	rate float64
	t    float64
	r    rng
}

// NewPoisson builds a Poisson process with the given rate (> 0).
func NewPoisson(rate float64, seed uint64) *Poisson {
	if rate <= 0 {
		panic(fmt.Sprintf("arrivals: poisson rate %g must be positive", rate))
	}
	return &Poisson{rate: rate, r: newRNG(seed)}
}

// Name implements Process.
func (p *Poisson) Name() string { return "poisson" }

// Rate returns the configured arrival rate.
func (p *Poisson) Rate() float64 { return p.rate }

// Next implements Process.
func (p *Poisson) Next() (float64, bool) {
	p.t += p.r.exp(p.rate)
	return p.t, true
}

// MMPP is a two-state Markov-modulated Poisson process: the arrival rate
// alternates between a base and a burst level, dwelling in each state for
// an exponentially distributed time. It is the canonical bursty-traffic
// model: long quiet stretches punctuated by overload episodes whose onset
// an elastic mechanism must react to.
type MMPP struct {
	rates    [2]float64 // [base, burst] arrivals per second
	dwell    [2]float64 // mean dwell seconds per state
	state    int
	t        float64
	stateEnd float64
	r        rng
}

// NewMMPP builds the two-state process. All rates and mean dwell times
// must be positive; the process starts in the base state.
func NewMMPP(baseRate, burstRate, baseDwell, burstDwell float64, seed uint64) *MMPP {
	if baseRate <= 0 || burstRate <= 0 {
		panic(fmt.Sprintf("arrivals: mmpp rates (%g, %g) must be positive", baseRate, burstRate))
	}
	if baseDwell <= 0 || burstDwell <= 0 {
		panic(fmt.Sprintf("arrivals: mmpp dwell times (%g, %g) must be positive", baseDwell, burstDwell))
	}
	m := &MMPP{
		rates: [2]float64{baseRate, burstRate},
		dwell: [2]float64{baseDwell, burstDwell},
		r:     newRNG(seed),
	}
	m.stateEnd = m.r.exp(1 / m.dwell[0])
	return m
}

// Name implements Process.
func (m *MMPP) Name() string { return "mmpp" }

// State reports which rate is active at the time of the last arrival
// returned (0 = base, 1 = burst).
func (m *MMPP) State() int { return m.state }

// Next implements Process. Exponential gaps are memoryless, so crossing a
// state boundary simply redraws the gap at the new state's rate from the
// boundary.
func (m *MMPP) Next() (float64, bool) {
	for {
		gap := m.r.exp(m.rates[m.state])
		if m.t+gap <= m.stateEnd {
			m.t += gap
			return m.t, true
		}
		m.t = m.stateEnd
		m.state ^= 1
		m.stateEnd = m.t + m.r.exp(1/m.dwell[m.state])
	}
}

// Diurnal is a non-homogeneous Poisson process whose rate follows a
// sinusoidal day/night ramp: rate(t) = base * (1 + amp*sin(2πt/period)).
// Arrivals are generated by thinning against the peak rate, which keeps
// the stream exact and deterministic.
type Diurnal struct {
	base, amp, period float64
	t                 float64
	r                 rng
}

// NewDiurnal builds the ramp process. base and period must be positive;
// amp must lie in [0, 1) so the instantaneous rate never reaches zero.
func NewDiurnal(base, amp, period float64, seed uint64) *Diurnal {
	if base <= 0 || period <= 0 {
		panic(fmt.Sprintf("arrivals: diurnal base %g and period %g must be positive", base, period))
	}
	if amp < 0 || amp >= 1 {
		panic(fmt.Sprintf("arrivals: diurnal amplitude %g outside [0, 1)", amp))
	}
	return &Diurnal{base: base, amp: amp, period: period, r: newRNG(seed)}
}

// Name implements Process.
func (d *Diurnal) Name() string { return "diurnal" }

// RateAt returns the instantaneous rate at time t.
func (d *Diurnal) RateAt(t float64) float64 {
	return d.base * (1 + d.amp*math.Sin(2*math.Pi*t/d.period))
}

// Next implements Process.
func (d *Diurnal) Next() (float64, bool) {
	peak := d.base * (1 + d.amp)
	for {
		d.t += d.r.exp(peak)
		if d.r.uniform()*peak <= d.RateAt(d.t) {
			return d.t, true
		}
	}
}

// Trace replays a fixed list of arrival times (seconds). It is the
// escape hatch for recorded workloads and for tests that need arrivals
// at exact instants.
type Trace struct {
	times []float64
	i     int
}

// NewTrace copies and sorts the given times into a finite process.
func NewTrace(times []float64) *Trace {
	ts := make([]float64, len(times))
	copy(ts, times)
	sort.Float64s(ts)
	return &Trace{times: ts}
}

// Name implements Process.
func (tr *Trace) Name() string { return "trace" }

// Len returns the number of arrivals in the trace.
func (tr *Trace) Len() int { return len(tr.times) }

// Next implements Process.
func (tr *Trace) Next() (float64, bool) {
	if tr.i >= len(tr.times) {
		return 0, false
	}
	t := tr.times[tr.i]
	tr.i++
	return t, true
}

// Take materializes the first n arrivals of a process (fewer if the
// stream ends early) — handy for building traces and for tests.
func Take(p Process, n int) []float64 {
	out := make([]float64, 0, n)
	for len(out) < n {
		t, ok := p.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out
}
