package arrivals

import (
	"math"
	"testing"
)

// checkStream pulls n arrivals and verifies the sequence is positive and
// non-decreasing.
func checkStream(t *testing.T, p Process, n int) []float64 {
	t.Helper()
	ts := Take(p, n)
	if len(ts) != n {
		t.Fatalf("%s: got %d arrivals, want %d", p.Name(), len(ts), n)
	}
	prev := 0.0
	for i, at := range ts {
		if at <= 0 || at < prev {
			t.Fatalf("%s: arrival %d at %g not monotone after %g", p.Name(), i, at, prev)
		}
		prev = at
	}
	return ts
}

func TestPoissonIsDeterministicAndMonotone(t *testing.T) {
	a := checkStream(t, NewPoisson(100, 7), 500)
	b := Take(NewPoisson(100, 7), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := Take(NewPoisson(100, 8), 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	const rate, n = 200.0, 20000
	ts := Take(NewPoisson(rate, 3), n)
	got := float64(n) / ts[n-1]
	if math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("empirical rate %.1f, want %.1f ±5%%", got, rate)
	}
}

func TestMMPPSwitchesStatesAndKeepsOrder(t *testing.T) {
	m := NewMMPP(50, 500, 0.1, 0.05, 11)
	sawBase, sawBurst := false, false
	prev := 0.0
	for i := 0; i < 5000; i++ {
		at, ok := m.Next()
		if !ok || at < prev {
			t.Fatalf("arrival %d at %g not monotone after %g", i, at, prev)
		}
		prev = at
		if m.State() == 0 {
			sawBase = true
		} else {
			sawBurst = true
		}
	}
	if !sawBase || !sawBurst {
		t.Errorf("5000 arrivals visited base=%v burst=%v, want both states", sawBase, sawBurst)
	}
}

func TestMMPPRateBetweenLevels(t *testing.T) {
	// Long-run rate must sit between the base and burst levels, weighted
	// by dwell: here dwell is equal so the mean is near (50+500)/2.
	m := NewMMPP(50, 500, 0.2, 0.2, 5)
	const n = 30000
	ts := Take(m, n)
	got := float64(n) / ts[n-1]
	if got < 50 || got > 500 {
		t.Errorf("long-run rate %.1f outside [base, burst] = [50, 500]", got)
	}
	if math.Abs(got-275)/275 > 0.2 {
		t.Errorf("long-run rate %.1f far from dwell-weighted mean 275", got)
	}
}

func TestDiurnalTracksRamp(t *testing.T) {
	// Count arrivals in the peak half-period vs the trough half-period of
	// the first cycle: the ramp must show through.
	d := NewDiurnal(400, 0.8, 2.0, 9)
	peak, trough := 0, 0
	for {
		at, _ := d.Next()
		if at >= 2.0 {
			break
		}
		if at < 1.0 {
			peak++ // sin positive on the first half-period
		} else {
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("peak half had %d arrivals, trough half %d; ramp not visible", peak, trough)
	}
}

func TestTraceReplaysSortedAndEnds(t *testing.T) {
	tr := NewTrace([]float64{0.3, 0.1, 0.2})
	want := []float64{0.1, 0.2, 0.3}
	for i, w := range want {
		at, ok := tr.Next()
		if !ok || at != w {
			t.Fatalf("arrival %d = (%g, %v), want (%g, true)", i, at, ok, w)
		}
	}
	if _, ok := tr.Next(); ok {
		t.Error("trace did not end after its last arrival")
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
}

func TestConstructorsValidate(t *testing.T) {
	cases := []func(){
		func() { NewPoisson(0, 1) },
		func() { NewPoisson(-5, 1) },
		func() { NewMMPP(0, 10, 1, 1, 1) },
		func() { NewMMPP(10, 10, 0, 1, 1) },
		func() { NewDiurnal(0, 0.5, 1, 1) },
		func() { NewDiurnal(10, 1.0, 1, 1) },
		func() { NewDiurnal(10, 0.5, 0, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid parameters did not panic", i)
				}
			}()
			f()
		}()
	}
}
