// Package hashmix provides the SplitMix64 finalizer, the 64→64 bit mixer
// shared by the simulator's hash tables (operator join/aggregation tables
// in internal/db, the cache residency tables in internal/numa) and the
// TPC-H generator's random stream. Keeping one copy keeps every consumer's
// probe behaviour in lockstep if the constants are ever tuned.
package hashmix

// Mix64 applies the SplitMix64 finalizer to x.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
