// Package hashmix provides the SplitMix64 finalizer, the 64→64 bit mixer
// shared by the simulator's hash tables (operator join/aggregation tables
// in internal/db, the cache residency tables in internal/numa) and the
// TPC-H generator's random stream. Keeping one copy keeps every consumer's
// probe behaviour in lockstep if the constants are ever tuned.
package hashmix

// Mix64 applies the SplitMix64 finalizer to x.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Golden is the 64-bit golden-ratio constant, SplitMix64's Weyl
// increment.
const Golden = 0x9E3779B97F4A7C15

// Stream is a full SplitMix64 generator: a Weyl sequence through the
// Mix64 finalizer. It is the one deterministic, stdlib-free randomness
// source shared by the TPC-H generator and the arrival processes; State
// is exported so callers control their own seeding discipline.
type Stream struct{ State uint64 }

// Next returns the stream's next 64-bit value.
func (s *Stream) Next() uint64 {
	s.State += Golden
	return Mix64(s.State)
}
