package db

import "math/bits"

// pool.go recycles the per-query heap churn of steady-state operator
// execution: candidate lists and value buffers (the tails of intermediate
// BATs), aggregation partial maps, hash-join build tables and dispatch
// envelopes. A query draws buffers from its engine's pool while planning
// and executing, registers the final buffers it kept, and hands everything
// back when the finished query is drained — so a warmed-up engine runs
// repeated queries without allocating on the operator hot path.
//
// Only Go-heap storage is recycled. Simulated memory regions are NOT: a
// reused buffer still gets a fresh region at materialization time, keeping
// the simulated address-space layout, first-touch placement and residency
// accounting identical to the unpooled engine.

// poolClasses is the number of power-of-two size classes tracked for
// slice buffers (class = bits.Len(capacity)).
const poolClasses = 32

// poolClassCap bounds how many buffers one size class retains; beyond it,
// returned buffers are left to the garbage collector.
const poolClassCap = 4096

// bufPool is an engine's recycling store. It is single-threaded, like the
// simulation that owns the engine.
type bufPool struct {
	i64  [poolClasses][][]int64
	f64  [poolClasses][][]float64
	mif  []*i64fMap
	mii  []*i64Map
	disp []*dispatched
}

// class files a buffer under the power-of-two bucket of its capacity:
// bucket c holds caps in [2^(c-1), 2^c).
func class(capacity int) int {
	c := bits.Len(uint(capacity))
	if c >= poolClasses {
		c = poolClasses - 1
	}
	return c
}

// startClass is the first bucket whose every member satisfies a request:
// the smallest c with 2^(c-1) >= capacity. Only the clamped top bucket can
// still hold undersized buffers.
func startClass(capacity int) int {
	if capacity < 2 {
		return 1
	}
	c := bits.Len(uint(capacity-1)) + 1
	if c >= poolClasses {
		c = poolClasses - 1
	}
	return c
}

// getI64 returns a zero-length buffer with at least the given capacity.
func (p *bufPool) getI64(capacity int) []int64 {
	for c := startClass(capacity); c < poolClasses; c++ {
		stack := p.i64[c]
		if n := len(stack); n > 0 {
			buf := stack[n-1]
			stack[n-1] = nil
			p.i64[c] = stack[:n-1]
			if cap(buf) >= capacity {
				return buf[:0]
			}
			// Only possible in the clamped top bucket: refile and give up.
			p.putI64(buf)
			break
		}
	}
	return make([]int64, 0, capacity)
}

func (p *bufPool) putI64(buf []int64) {
	if cap(buf) == 0 {
		return
	}
	c := class(cap(buf))
	if len(p.i64[c]) < poolClassCap {
		p.i64[c] = append(p.i64[c], buf[:0])
	}
}

// getF64 returns a zero-length buffer with at least the given capacity.
func (p *bufPool) getF64(capacity int) []float64 {
	for c := startClass(capacity); c < poolClasses; c++ {
		stack := p.f64[c]
		if n := len(stack); n > 0 {
			buf := stack[n-1]
			stack[n-1] = nil
			p.f64[c] = stack[:n-1]
			if cap(buf) >= capacity {
				return buf[:0]
			}
			p.putF64(buf)
			break
		}
	}
	return make([]float64, 0, capacity)
}

func (p *bufPool) putF64(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	c := class(cap(buf))
	if len(p.f64[c]) < poolClassCap {
		p.f64[c] = append(p.f64[c], buf[:0])
	}
}

func (p *bufPool) getMapIF() *i64fMap {
	if n := len(p.mif); n > 0 {
		m := p.mif[n-1]
		p.mif[n-1] = nil
		p.mif = p.mif[:n-1]
		return m
	}
	return &i64fMap{}
}

func (p *bufPool) putMapIF(m *i64fMap) {
	if m == nil || len(p.mif) >= poolClassCap {
		return
	}
	m.Reset()
	p.mif = append(p.mif, m)
}

func (p *bufPool) getMapII() *i64Map {
	if n := len(p.mii); n > 0 {
		m := p.mii[n-1]
		p.mii[n-1] = nil
		p.mii = p.mii[:n-1]
		return m
	}
	return &i64Map{}
}

func (p *bufPool) putMapII(m *i64Map) {
	if m == nil || len(p.mii) >= poolClassCap {
		return
	}
	m.Reset()
	p.mii = append(p.mii, m)
}

func (p *bufPool) getDispatched() *dispatched {
	if n := len(p.disp); n > 0 {
		d := p.disp[n-1]
		p.disp[n-1] = nil
		p.disp = p.disp[:n-1]
		return d
	}
	return &dispatched{}
}

func (p *bufPool) putDispatched(d *dispatched) {
	*d = dispatched{}
	if len(p.disp) < poolClassCap {
		p.disp = append(p.disp, d)
	}
}

// ownedBuffers is a query's registry of pooled storage to return at drain
// time. Each buffer must be registered exactly once — registering an alias
// twice would hand the same backing array to two future queries.
type ownedBuffers struct {
	i64 [][]int64
	f64 [][]float64
	mif []*i64fMap
	mii []*i64Map
}

// scratchI64 draws a zero-length int64 buffer with at least the given
// capacity from the engine pool. The caller must register the final
// (possibly append-grown) buffer with ownI64 once it stops growing. Under
// Config.Naive buffers come straight from the heap, like the seed
// implementation.
func (q *Query) scratchI64(capacity int) []int64 {
	if capacity < 0 {
		capacity = 0
	}
	if q.eng.cfg.Naive {
		return make([]int64, 0, capacity)
	}
	return q.eng.pool.getI64(capacity)
}

// scratchF64 is scratchI64 for float64 buffers.
func (q *Query) scratchF64(capacity int) []float64 {
	if capacity < 0 {
		capacity = 0
	}
	if q.eng.cfg.Naive {
		return make([]float64, 0, capacity)
	}
	return q.eng.pool.getF64(capacity)
}

// ownI64 registers the final value of a scratch buffer for reclamation
// when the query is drained.
func (q *Query) ownI64(buf []int64) {
	if cap(buf) > 0 && !q.eng.cfg.Naive {
		q.owned.i64 = append(q.owned.i64, buf)
	}
}

// ownF64 registers the final value of a scratch buffer for reclamation
// when the query is drained.
func (q *Query) ownF64(buf []float64) {
	if cap(buf) > 0 && !q.eng.cfg.Naive {
		q.owned.f64 = append(q.owned.f64, buf)
	}
}

// scratchMapIF draws an empty int64→float64 table (aggregation partials)
// from the pool; it is registered for reclamation immediately since
// tables keep their identity as they grow. Under Config.Naive the table
// is a fresh Go map, like the seed implementation.
func (q *Query) scratchMapIF() *i64fMap {
	if q.eng.cfg.Naive {
		return &i64fMap{std: make(map[int64]float64)}
	}
	m := q.eng.pool.getMapIF()
	q.owned.mif = append(q.owned.mif, m)
	return m
}

// scratchMapII draws an empty int64→int64 table (hash-join build sides)
// from the pool, registered like scratchMapIF.
func (q *Query) scratchMapII() *i64Map {
	if q.eng.cfg.Naive {
		return &i64Map{std: make(map[int64]int64)}
	}
	m := q.eng.pool.getMapII()
	q.owned.mii = append(q.owned.mii, m)
	return m
}

// releaseTo returns every registered buffer to the pool. Called by
// Engine.Drain once the query's results have been consumed.
func (q *Query) releaseTo(p *bufPool) {
	for i, buf := range q.owned.i64 {
		p.putI64(buf)
		q.owned.i64[i] = nil
	}
	for i, buf := range q.owned.f64 {
		p.putF64(buf)
		q.owned.f64[i] = nil
	}
	for i, m := range q.owned.mif {
		p.putMapIF(m)
		q.owned.mif[i] = nil
	}
	for i, m := range q.owned.mii {
		p.putMapII(m)
		q.owned.mii[i] = nil
	}
	q.owned = ownedBuffers{}
}
