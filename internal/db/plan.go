package db

import (
	"fmt"

	"elasticore/internal/deque"
	"elasticore/internal/numa"
)

// PartSet is a partitioned intermediate: one BAT fragment per task of the
// producing stage (MonetDB's partitioned BATs). Fragments stay partitioned
// so the next operator fans out over them — the horizontal parallelism of
// the Volcano model.
type PartSet struct {
	Parts []*BAT
}

// Rows returns the total row count across fragments.
func (ps *PartSet) Rows() int {
	n := 0
	for _, p := range ps.Parts {
		n += p.Len()
	}
	return n
}

// FlattenI64 concatenates integer fragments (result extraction).
func (ps *PartSet) FlattenI64() []int64 {
	out := make([]int64, 0, ps.Rows())
	for _, p := range ps.Parts {
		out = append(out, p.I...)
	}
	return out
}

// FlattenF64 concatenates float fragments (result extraction).
func (ps *PartSet) FlattenF64() []float64 {
	out := make([]float64, 0, ps.Rows())
	for _, p := range ps.Parts {
		out = append(out, p.F...)
	}
	return out
}

// StageFn plans one operator of a query: given the query context it
// returns the partition tasks to dispatch. A stage with zero tasks
// completes immediately.
type StageFn func(q *Query) []Task

// Plan is an ordered pipeline of operator stages (the MAL program of
// Figure 3, operator-at-a-time).
type Plan struct {
	Name   string
	Stages []StageFn
}

// Query is one executing instance of a plan, owned by a client session.
type Query struct {
	ID   int
	Plan *Plan

	eng      *Engine
	vars     map[string]*PartSet
	sets     map[string]*i64Map // hash-join build sides
	scalars  map[string]float64
	partials map[string][]*i64fMap // grouped-aggregation partials

	stage     int
	pending   int
	done      bool
	released  bool
	taskQueue deque.Deque[*dispatched] // per-query dataflow queue (PlacementOS)

	// owned registers pooled buffers backing this query's intermediates,
	// reclaimed when the finished query is drained (see pool.go).
	owned ownedBuffers

	startCycles, endCycles uint64
}

// Done reports whether the query has finished all stages.
func (q *Query) Done() bool { return q.done }

// Var returns a named intermediate, panicking on absent names (plan bugs).
func (q *Query) Var(name string) *PartSet {
	ps, ok := q.vars[name]
	if !ok {
		panic(fmt.Sprintf("db: query %s: undefined variable %s", q.Plan.Name, name))
	}
	return ps
}

// SetVar binds a named intermediate.
func (q *Query) SetVar(name string, ps *PartSet) { q.vars[name] = ps }

// Set returns a named hash-join build table.
func (q *Query) Set(name string) *i64Map {
	s, ok := q.sets[name]
	if !ok {
		panic(fmt.Sprintf("db: query %s: undefined set %s", q.Plan.Name, name))
	}
	return s
}

// SetSet binds a named hash-join build table.
func (q *Query) SetSet(name string, s *i64Map) { q.sets[name] = s }

// Scalar returns a named scalar result (0 when absent).
func (q *Query) Scalar(name string) float64 { return q.scalars[name] }

// SetScalar binds a named scalar result.
func (q *Query) SetScalar(name string, v float64) { q.scalars[name] = v }

// AddScalar accumulates into a named scalar (partial aggregation).
func (q *Query) AddScalar(name string, v float64) { q.scalars[name] += v }

func (q *Query) setPartials(name string, p []*i64fMap) {
	q.partials[name] = p
}

func (q *Query) partialsOf(name string) []*i64fMap {
	p, ok := q.partials[name]
	if !ok {
		panic(fmt.Sprintf("db: query %s: undefined partials %s", q.Plan.Name, name))
	}
	return p
}

// Engine returns the executing engine.
func (q *Query) Engine() *Engine { return q.eng }

// Machine returns the hardware model (convenience for stage builders).
func (q *Query) Machine() *numa.Machine { return q.eng.machine }

// Fanout returns the partition count for full-table scans.
func (q *Query) Fanout() int { return q.eng.cfg.Fanout }

// ElapsedCycles returns the query latency once done.
func (q *Query) ElapsedCycles() uint64 {
	if !q.done {
		return 0
	}
	return q.endCycles - q.startCycles
}
