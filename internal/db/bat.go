// Package db is a Volcano-style columnar database engine modelled on the
// systems the paper evaluates. Like MonetDB, it stores each column as a
// Binary Association Table (BAT), executes one operator at a time with
// horizontal parallelism (every operator fans out one task per worker over
// disjoint partitions), and runs a fixed pool of worker threads, one per
// hardware core. A NUMA-aware placement mode reproduces SQL Server's
// behaviour: workers pinned to cores and tasks dispatched toward the node
// holding their data.
//
// All column data is real (queries compute true results); simultaneously,
// every scan, materialization and probe charges block-granular accesses to
// the simulated NUMA machine, which is what the elastic mechanism observes.
package db

import (
	"fmt"
	"sort"

	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// Kind is the storage type of a BAT's tail column.
type Kind int

const (
	// KindI64 stores 64-bit integers (also OIDs, dates as yyyymmdd, and
	// dictionary codes for strings).
	KindI64 Kind = iota
	// KindF64 stores 64-bit floats (prices, discounts, quantities).
	KindF64
)

// valueBytes is the storage width of every value (MonetDB-style fixed
// 8-byte tails).
const valueBytes = 8

// BAT is a Binary Association Table: a head of virtual OIDs (0..n-1) and a
// typed tail vector. Base-table BATs are backed by a region of simulated
// NUMA memory homed lazily at first touch during scans; intermediate BATs
// are homed by the task that materializes them.
type BAT struct {
	Name string
	Kind Kind
	I    []int64
	F    []float64

	region numa.Region
	placed bool
}

// NewI64 builds an integer BAT over the given values.
func NewI64(name string, vals []int64) *BAT { return &BAT{Name: name, Kind: KindI64, I: vals} }

// NewF64 builds a float BAT over the given values.
func NewF64(name string, vals []float64) *BAT { return &BAT{Name: name, Kind: KindF64, F: vals} }

// Len returns the number of values.
func (b *BAT) Len() int {
	if b.Kind == KindI64 {
		return len(b.I)
	}
	return len(b.F)
}

// Bytes returns the simulated storage footprint.
func (b *BAT) Bytes() int { return b.Len() * valueBytes }

// Region returns the simulated memory region backing the BAT (zero Region
// if not yet placed).
func (b *BAT) Region() numa.Region { return b.region }

// ensureRegion allocates backing blocks for the BAT if needed.
func (b *BAT) ensureRegion(mem *numa.Memory, blockBytes int) {
	if b.placed || b.Len() == 0 {
		return
	}
	blocks := (b.Bytes() + blockBytes - 1) / blockBytes
	b.region = mem.Alloc(blocks)
	b.placed = true
}

// chargeRange issues the simulated memory accesses for rows [lo, hi) of
// the BAT on the executing core, returning the cycle cost. write marks the
// accesses as stores (materialization), triggering coherence traffic. The
// whole contiguous run is charged through one bulk AccessRange call.
func (b *BAT) chargeRange(ctx *sched.ExecContext, lo, hi int, write bool) uint64 {
	if b.Len() == 0 || hi <= lo {
		return 0
	}
	topo := ctx.Machine.Topology()
	b.ensureRegion(ctx.Machine.Memory(), topo.BlockBytes)
	startByte := lo * valueBytes
	endByte := hi * valueBytes
	firstBlock := startByte / topo.BlockBytes
	lastBlock := (endByte - 1) / topo.BlockBytes
	firstEnd := (firstBlock + 1) * topo.BlockBytes
	if firstEnd > endByte {
		firstEnd = endByte
	}
	lastStart := lastBlock * topo.BlockBytes
	if lastStart < startByte {
		lastStart = startByte
	}
	return ctx.AccessRange(numa.RangeAccess{
		Start:      b.region.Block(firstBlock),
		Blocks:     lastBlock - firstBlock + 1,
		FirstBytes: firstEnd - startByte,
		LastBytes:  endByte - lastStart,
		Write:      write,
		PID:        ctx.PID,
	})
}

// HomeOfRow returns the NUMA node owning the block that holds the given
// row, or numa.NoNode when unplaced (used for NUMA-aware dispatch).
func (b *BAT) HomeOfRow(mem *numa.Memory, blockBytes, row int) numa.NodeID {
	if !b.placed {
		return numa.NoNode
	}
	blk := row * valueBytes / blockBytes
	if blk >= b.region.Blocks {
		return numa.NoNode
	}
	return mem.Home(b.region.Block(blk))
}

// Table is a named collection of equal-length BATs.
type Table struct {
	Name string
	Rows int
	cols map[string]*BAT
}

// Col returns the named column, panicking on unknown names (schema errors
// are programming errors in plan builders).
func (t *Table) Col(name string) *BAT {
	c, ok := t.cols[name]
	if !ok {
		panic(fmt.Sprintf("db: table %s has no column %s", t.Name, name))
	}
	return c
}

// HasCol reports whether the column exists.
func (t *Table) HasCol(name string) bool {
	_, ok := t.cols[name]
	return ok
}

// Columns returns the column names (unordered).
func (t *Table) Columns() []string {
	out := make([]string, 0, len(t.cols))
	for n := range t.cols {
		out = append(out, n)
	}
	return out
}

// Store is the database catalog bound to a simulated machine.
type Store struct {
	machine *numa.Machine
	tables  map[string]*Table
	// loadPID owns base-column pages for residency accounting; loadNode
	// rotates per created column, modelling a sequential loader whose
	// first-touch lands each column on the node it happened to occupy
	// (the per-socket column placement visible in the paper's Fig 18).
	loadPID  int
	loadNode int
}

// NewStore creates an empty catalog over the machine. Base columns are
// homed at load time under the given owner pid, one node per column in
// rotation.
func NewStore(m *numa.Machine) *Store {
	return &Store{machine: m, tables: make(map[string]*Table), loadPID: 1}
}

// SetLoadPID sets the process id that owns base-table pages (usually the
// DBMS server pid, so the adaptive mode's residency sees them).
func (s *Store) SetLoadPID(pid int) { s.loadPID = pid }

// Machine returns the backing hardware model.
func (s *Store) Machine() *numa.Machine { return s.machine }

// CreateTable registers a table from its columns; all columns must share
// one length. Backing regions are allocated immediately but homed lazily
// at first touch, matching memory-mapped base columns.
func (s *Store) CreateTable(name string, cols map[string]*BAT) (*Table, error) {
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("db: table %s already exists", name)
	}
	rows := -1
	for cname, c := range cols {
		if rows == -1 {
			rows = c.Len()
		} else if c.Len() != rows {
			return nil, fmt.Errorf("db: table %s column %s has %d rows, want %d", name, cname, c.Len(), rows)
		}
	}
	if rows < 0 {
		rows = 0
	}
	t := &Table{Name: name, Rows: rows, cols: cols}
	// Allocate regions in name order: map iteration order must never
	// influence the address-space layout (simulation determinism).
	names := make([]string, 0, len(cols))
	for n := range cols {
		names = append(names, n)
	}
	sort.Strings(names)
	topo := s.machine.Topology()
	for _, n := range names {
		c := cols[n]
		c.ensureRegion(s.machine.Memory(), topo.BlockBytes)
		if c.placed {
			node := numa.NodeID(s.loadNode % topo.NodeCount)
			s.machine.Memory().HomeRegionOn(c.region, node, s.loadPID)
			s.loadNode++
		}
	}
	s.tables[name] = t
	return t, nil
}

// Table returns the named table, panicking on unknown names.
func (s *Store) Table(name string) *Table {
	t, ok := s.tables[name]
	if !ok {
		panic(fmt.Sprintf("db: unknown table %s", name))
	}
	return t
}

// HasTable reports whether the table exists.
func (s *Store) HasTable(name string) bool {
	_, ok := s.tables[name]
	return ok
}
