package db

import "sort"

// vops.go is the pluggable vectorized operator layer. Each operator of
// the MAL-like set — leaf filter scans, candidate refinement, gather
// projection, binary maps, aggregates, hash build/probe, group
// aggregation, sort/limit and point lookup — is an object wrapping the
// form-specialized kernel loops, drivable two ways:
//
//   - Inside the engine, stage builders (operators.go) construct the
//     operator and hand its runRange method to a chunkTask, which walks
//     the input in block-sized chunks and charges BOTH the per-tuple
//     compute cycles and the simulated NUMA memory accesses itself. This
//     is the only drive mode queries use, so the refactor leaves every
//     engine-visible byte identical.
//
//   - Standalone, Next(n) consumes up to n input units (base rows for
//     leaf scans, candidate positions for refinements/probes/gathers,
//     value rows for maps and aggregates) and returns the batch those
//     units produced: an empty BAT when nothing survived, nil once the
//     input is exhausted. Aggregating operators emit their result as one
//     final batch after the last input unit, then return nil. Next
//     charges the operator's Meter with the same per-tuple compute
//     constants the engine charges (cyclesScan, cyclesGather, ...);
//     simulated memory accesses need an ExecContext and remain the
//     driving task's job. The differential harness (diff_test.go) drives
//     this mode against row-at-a-time references and asserts identical
//     outputs and identical charged cycles.
//
// Because both modes run the same kernel closures over the same state,
// agreement in one mode is agreement in the other.

// Operator is the pluggable batch-iterator contract of the vectorized
// execution layer.
type Operator interface {
	// Next consumes up to n input units and returns the produced batch;
	// nil reports exhaustion. n <= 0 consumes nothing and returns an
	// empty batch (still non-nil before exhaustion).
	Next(n int) *BAT
	// Op returns the operator's MAL-ish label (matches the engine's task
	// labels, e.g. "algebra.thetasubselect").
	Op() string
	// Charged returns the compute cycles charged by Next calls so far.
	Charged() uint64
}

// meter accumulates the per-tuple compute cycles of standalone Next
// drives.
type meter struct{ cycles uint64 }

func (m *meter) add(units int, perTuple uint64) {
	if units > 0 {
		m.cycles += uint64(units) * perTuple
	}
}

// span clamps a Next request to the remaining input [cursor, hi).
func span(cursor, n, hi int) int {
	if n < 0 {
		n = 0
	}
	if rem := hi - cursor; n > rem {
		n = rem
	}
	return n
}

// tailView returns a BAT over the values appended beyond mark, capped so
// later in-place growth cannot leak into the returned batch.
func tailViewI64(name string, buf []int64, mark int) *BAT {
	return NewI64(name, buf[mark:len(buf):len(buf)])
}

func tailViewF64(name string, buf []float64, mark int) *BAT {
	return NewF64(name, buf[mark:len(buf):len(buf)])
}

// FilterScan is the leaf selection operator (algebra.thetasubselect): it
// scans base rows [lo, hi) of a column and accumulates matching row OIDs.
// One input unit is one base row; one output value is one surviving OID.
type FilterScan struct {
	col    *BAT
	ids    []int64
	loop   func(a, b int)
	lo, hi int

	cursor int
	m      meter
}

// NewFilterScan builds the operator over rows [lo, hi) of col. buf seeds
// the OID accumulator (pass a pooled scratch buffer inside the engine,
// nil standalone).
func NewFilterScan(col *BAT, p Pred, lo, hi int, buf []int64) *FilterScan {
	fs := &FilterScan{col: col, ids: buf, lo: lo, hi: hi, cursor: lo}
	fs.loop = selectScanLoop(col, p, &fs.ids)
	return fs
}

// runRange runs the kernel over base rows [a, b) (engine drive).
func (fs *FilterScan) runRange(a, b int) { fs.loop(a, b) }

// Op implements Operator.
func (fs *FilterScan) Op() string { return "algebra.thetasubselect" }

// Charged implements Operator.
func (fs *FilterScan) Charged() uint64 { return fs.m.cycles }

// Next implements Operator: scans up to n base rows.
func (fs *FilterScan) Next(n int) *BAT {
	if fs.cursor >= fs.hi {
		return nil
	}
	n = span(fs.cursor, n, fs.hi)
	mark := len(fs.ids)
	fs.loop(fs.cursor, fs.cursor+n)
	fs.cursor += n
	fs.m.add(n, cyclesScan)
	return tailViewI64(fs.col.Name+".sel", fs.ids, mark)
}

// FilterRefine is the candidate refinement operator (algebra.subselect):
// it tests the base column at each candidate OID and keeps survivors. One
// input unit is one candidate position.
type FilterRefine struct {
	col, cand *BAT
	ids       []int64
	loop      func(a, b int)

	cursor int
	m      meter
}

// NewFilterRefine builds the operator over the candidate list cand.
func NewFilterRefine(col *BAT, p Pred, cand *BAT, buf []int64) *FilterRefine {
	fr := &FilterRefine{col: col, cand: cand, ids: buf}
	fr.loop = gatherScanLoop(col, p, cand, &fr.ids)
	return fr
}

func (fr *FilterRefine) runRange(a, b int) { fr.loop(a, b) }

// Op implements Operator.
func (fr *FilterRefine) Op() string { return "algebra.subselect" }

// Charged implements Operator.
func (fr *FilterRefine) Charged() uint64 { return fr.m.cycles }

// Next implements Operator: tests up to n candidate positions.
func (fr *FilterRefine) Next(n int) *BAT {
	if fr.cursor >= fr.cand.Len() {
		return nil
	}
	n = span(fr.cursor, n, fr.cand.Len())
	mark := len(fr.ids)
	fr.loop(fr.cursor, fr.cursor+n)
	fr.cursor += n
	fr.m.add(n, cyclesGather)
	return tailViewI64(fr.col.Name+".sel", fr.ids, mark)
}

// Gather is the projection operator (algebra.projection): it fetches the
// base column's value at each candidate OID, producing a value vector
// aligned with the candidate list. One input unit is one candidate.
type Gather struct {
	col, cand *BAT
	out       *BAT

	cursor int
	m      meter
}

// NewGather builds the operator; out receives the gathered values and
// must match col's kind (its tail may be a pooled scratch buffer).
func NewGather(col, cand, out *BAT) *Gather {
	return &Gather{col: col, cand: cand, out: out}
}

func (g *Gather) runRange(a, b int) {
	cand, c, outB := g.cand, g.col, g.out
	for k := a; k < b && k < len(cand.I); k++ {
		row := int(cand.I[k])
		if c.Kind == KindI64 {
			outB.I = append(outB.I, c.I[row])
		} else {
			outB.F = append(outB.F, c.F[row])
		}
	}
}

// Op implements Operator.
func (g *Gather) Op() string { return "algebra.projection" }

// Charged implements Operator.
func (g *Gather) Charged() uint64 { return g.m.cycles }

// Next implements Operator: gathers up to n candidate positions.
func (g *Gather) Next(n int) *BAT {
	if g.cursor >= g.cand.Len() {
		return nil
	}
	n = span(g.cursor, n, g.cand.Len())
	markI, markF := len(g.out.I), len(g.out.F)
	g.runRange(g.cursor, g.cursor+n)
	g.cursor += n
	g.m.add(n, cyclesGather)
	if g.col.Kind == KindI64 {
		return tailViewI64(g.out.Name, g.out.I, markI)
	}
	return tailViewF64(g.out.Name, g.out.F, markF)
}

// MapBinary is the batcalc binary arithmetic operator: out[k] =
// f(a[k], b[k]) over two aligned float vectors. One input unit is one
// aligned row.
type MapBinary struct {
	a, b *BAT
	f    func(x, y float64) float64
	res  []float64

	cursor int
	m      meter
}

// NewMapBinary builds the operator over aligned float BATs a and b.
func NewMapBinary(a, b *BAT, f func(x, y float64) float64, buf []float64) *MapBinary {
	return &MapBinary{a: a, b: b, f: f, res: buf}
}

func (mb *MapBinary) runRange(lo, hi int) {
	fa, fb := mb.a, mb.b
	for k := lo; k < hi && k < len(fa.F); k++ {
		mb.res = append(mb.res, mb.f(fa.F[k], fb.F[k]))
	}
}

// Op implements Operator.
func (mb *MapBinary) Op() string { return "batcalc.*" }

// Charged implements Operator.
func (mb *MapBinary) Charged() uint64 { return mb.m.cycles }

// Next implements Operator: maps up to n aligned rows.
func (mb *MapBinary) Next(n int) *BAT {
	if mb.cursor >= mb.a.Len() {
		return nil
	}
	n = span(mb.cursor, n, mb.a.Len())
	mark := len(mb.res)
	mb.runRange(mb.cursor, mb.cursor+n)
	mb.cursor += n
	mb.m.add(n, cyclesMap)
	return tailViewF64(mb.a.Name+".map", mb.res, mark)
}

// SumAgg is the aggr.sum operator: it folds a float vector into one
// scalar, emitted as a single-row batch once the input is exhausted.
type SumAgg struct {
	in      *BAT
	partial float64

	cursor  int
	emitted bool
	m       meter
}

// NewSumAgg builds the operator over the float BAT in.
func NewSumAgg(in *BAT) *SumAgg { return &SumAgg{in: in} }

func (s *SumAgg) runRange(a, b int) {
	frag := s.in
	for k := a; k < b && k < len(frag.F); k++ {
		s.partial += frag.F[k]
	}
}

// Op implements Operator.
func (s *SumAgg) Op() string { return "aggr.sum" }

// Charged implements Operator.
func (s *SumAgg) Charged() uint64 { return s.m.cycles }

// Next implements Operator: consumes up to n rows; the sum arrives as a
// one-row batch after the last row.
func (s *SumAgg) Next(n int) *BAT {
	if s.cursor < s.in.Len() {
		n = span(s.cursor, n, s.in.Len())
		s.runRange(s.cursor, s.cursor+n)
		s.cursor += n
		s.m.add(n, cyclesSum)
		if s.cursor < s.in.Len() {
			return NewF64(s.in.Name+".sum", nil)
		}
	}
	if s.emitted {
		return nil
	}
	s.emitted = true
	return NewF64(s.in.Name+".sum", []float64{s.partial})
}

// HashBuild is the hash-join build-side operator: it inserts key →
// payload pairs into an i64Map (payload 1 when vals is nil, the semijoin
// membership case). One input unit is one key row; the build side itself
// is the product, exposed by Result.
type HashBuild struct {
	keys, vals *BAT
	set        *i64Map

	cursor  int
	emitted bool
	m       meter
}

// NewHashBuild builds the operator inserting into set (pass a pooled
// scratch map inside the engine).
func NewHashBuild(keys, vals *BAT, set *i64Map) *HashBuild {
	return &HashBuild{keys: keys, vals: vals, set: set}
}

func (hb *HashBuild) runRange(a, b int) {
	keys, vals := hb.keys, hb.vals
	for k := a; k < b && k < len(keys.I); k++ {
		payload := int64(1)
		if vals != nil {
			if vals.Kind == KindI64 {
				payload = vals.I[k]
			} else {
				payload = int64(vals.F[k])
			}
		}
		hb.set.Put(keys.I[k], payload)
	}
}

// Result returns the build table.
func (hb *HashBuild) Result() *i64Map { return hb.set }

// Op implements Operator.
func (hb *HashBuild) Op() string { return "hash.build" }

// Charged implements Operator.
func (hb *HashBuild) Charged() uint64 { return hb.m.cycles }

// Next implements Operator: inserts up to n key rows; the final batch
// carries the table's size.
func (hb *HashBuild) Next(n int) *BAT {
	if hb.cursor < hb.keys.Len() {
		n = span(hb.cursor, n, hb.keys.Len())
		hb.runRange(hb.cursor, hb.cursor+n)
		hb.cursor += n
		hb.m.add(n, cyclesBuild)
		if hb.cursor < hb.keys.Len() {
			return NewI64(hb.keys.Name+".build", nil)
		}
	}
	if hb.emitted {
		return nil
	}
	hb.emitted = true
	return NewI64(hb.keys.Name+".build", []int64{int64(hb.set.Len())})
}

// HashProbe is the probe-side operator of semi, fetch and anti joins: it
// looks the base column's value at each candidate OID up in the build
// table and keeps survivors (hits, or misses when anti). Fetch mode
// additionally gathers the build side's payloads, exposed by Payloads.
// One input unit is one candidate position.
type HashProbe struct {
	col, cand *BAT
	set       *i64Map
	anti      bool
	fetch     bool

	ids, payloads []int64

	cursor int
	m      meter
}

// NewHashProbe builds the operator; idBuf and payloadBuf seed the output
// accumulators (payloadBuf is only used in fetch mode).
func NewHashProbe(col, cand *BAT, set *i64Map, anti, fetch bool, idBuf, payloadBuf []int64) *HashProbe {
	return &HashProbe{col: col, cand: cand, set: set, anti: anti, fetch: fetch, ids: idBuf, payloads: payloadBuf}
}

func (hp *HashProbe) runRange(a, b int) {
	cand, c := hp.cand, hp.col
	for k := a; k < b && k < len(cand.I); k++ {
		row := int(cand.I[k])
		payload, hit := hp.set.Get(c.I[row])
		if hit == hp.anti {
			continue
		}
		hp.ids = append(hp.ids, cand.I[k])
		if hp.fetch {
			hp.payloads = append(hp.payloads, payload)
		}
	}
}

// Payloads returns the gathered build-side payloads (fetch mode).
func (hp *HashProbe) Payloads() []int64 { return hp.payloads }

// Op implements Operator.
func (hp *HashProbe) Op() string { return "join.probe" }

// Charged implements Operator.
func (hp *HashProbe) Charged() uint64 { return hp.m.cycles }

// Next implements Operator: probes up to n candidate positions.
func (hp *HashProbe) Next(n int) *BAT {
	if hp.cursor >= hp.cand.Len() {
		return nil
	}
	n = span(hp.cursor, n, hp.cand.Len())
	mark := len(hp.ids)
	hp.runRange(hp.cursor, hp.cursor+n)
	hp.cursor += n
	hp.m.add(n, cyclesProbe)
	return tailViewI64(hp.col.Name+".probe", hp.ids, mark)
}

// GroupAgg is the partial phase of grouped aggregation (group.sum): it
// accumulates sum(vals) per key into an i64fMap (count per key when vals
// is nil). One input unit is one key row. Finalize merges and sorts the
// table into aligned key/sum vectors, mirroring the engine's mat.pack
// phase for a single partition.
type GroupAgg struct {
	keys, vals *BAT
	agg        *i64fMap

	cursor  int
	emitted bool
	m       meter
}

// NewGroupAgg builds the operator accumulating into agg (pass a pooled
// scratch map inside the engine; vals nil counts rows per key).
func NewGroupAgg(keys, vals *BAT, agg *i64fMap) *GroupAgg {
	return &GroupAgg{keys: keys, vals: vals, agg: agg}
}

func (ga *GroupAgg) runRange(a, b int) {
	kf, vf := ga.keys, ga.vals
	for k := a; k < b && k < len(kf.I); k++ {
		v := 1.0
		if vf != nil && vf.Len() > k {
			if vf.Kind == KindF64 {
				v = vf.F[k]
			} else {
				v = float64(vf.I[k])
			}
		}
		ga.agg.Add(kf.I[k], v)
	}
}

// Result returns the partial table.
func (ga *GroupAgg) Result() *i64fMap { return ga.agg }

// Finalize sorts the accumulated groups by key ascending and returns the
// aligned key and sum vectors, charging the engine's merge cost formula
// (cyclesGroup per merged entry plus cyclesSort per group).
func (ga *GroupAgg) Finalize() (keys []int64, sums []float64) {
	keys = make([]int64, 0, ga.agg.Len())
	ga.agg.Range(func(k int64, _ float64) { keys = append(keys, k) })
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	sums = make([]float64, len(keys))
	for i, k := range keys {
		v, _ := ga.agg.Get(k)
		sums[i] = v
	}
	ga.m.add(ga.agg.Len(), cyclesGroup)
	ga.m.add(len(keys), cyclesSort)
	return keys, sums
}

// Op implements Operator.
func (ga *GroupAgg) Op() string { return "group.sum" }

// Charged implements Operator.
func (ga *GroupAgg) Charged() uint64 { return ga.m.cycles }

// Next implements Operator: accumulates up to n key rows; the final batch
// carries the sorted group keys.
func (ga *GroupAgg) Next(n int) *BAT {
	if ga.cursor < ga.keys.Len() {
		n = span(ga.cursor, n, ga.keys.Len())
		ga.runRange(ga.cursor, ga.cursor+n)
		ga.cursor += n
		ga.m.add(n, cyclesGroup)
		if ga.cursor < ga.keys.Len() {
			return NewI64(ga.keys.Name+".group", nil)
		}
	}
	if ga.emitted {
		return nil
	}
	ga.emitted = true
	ks := make([]int64, 0, ga.agg.Len())
	ga.agg.Range(func(k int64, _ float64) { ks = append(ks, k) })
	sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	return NewI64(ga.keys.Name+".group", ks)
}

// topNIndex stable-sorts row indices of sums descending and returns the
// first n (all rows when n exceeds the input). Shared by the engine's
// TopN stage and the SortLimit operator, so both rank ties identically.
func topNIndex(sums []float64, n int) []int {
	idx := make([]int, len(sums))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return sums[idx[a]] > sums[idx[b]] })
	if n > len(idx) {
		n = len(idx)
	}
	if n < 0 {
		n = 0
	}
	return idx[:n]
}

// SortLimit is the algebra.topn operator: it consumes aligned key/sum
// rows and, once exhausted, emits the keys of the n largest sums
// (stable descending order). One input unit is one aligned row; the
// matching sums are exposed by Sums after the final batch.
type SortLimit struct {
	keys, sums *BAT
	n          int

	outSums []float64
	cursor  int
	emitted bool
	m       meter
}

// NewSortLimit builds the operator keeping the top n of the aligned
// key/sum vectors.
func NewSortLimit(keys, sums *BAT, n int) *SortLimit {
	return &SortLimit{keys: keys, sums: sums, n: n}
}

// Sums returns the sums aligned with the emitted top-n keys.
func (sl *SortLimit) Sums() []float64 { return sl.outSums }

// Op implements Operator.
func (sl *SortLimit) Op() string { return "algebra.topn" }

// Charged implements Operator.
func (sl *SortLimit) Charged() uint64 { return sl.m.cycles }

// Next implements Operator: consumes up to n aligned rows; the ranked
// keys arrive as one final batch.
func (sl *SortLimit) Next(n int) *BAT {
	if sl.cursor < sl.keys.Len() {
		n = span(sl.cursor, n, sl.keys.Len())
		sl.cursor += n
		sl.m.add(n, cyclesSort)
		if sl.cursor < sl.keys.Len() {
			return NewI64(sl.keys.Name+".topn", nil)
		}
	}
	if sl.emitted {
		return nil
	}
	sl.emitted = true
	idx := topNIndex(sl.sums.F, sl.n)
	ks := make([]int64, len(idx))
	sl.outSums = make([]float64, len(idx))
	for i, j := range idx {
		ks[i] = sl.keys.I[j]
		sl.outSums[i] = sl.sums.F[j]
	}
	return NewI64(sl.keys.Name+".topn", ks)
}

// lookupVisit binary-searches the sorted key vector for key, invoking
// visit for every probed position, and returns the insertion row, the
// probe count and whether the key is present. Shared by the PointLookup
// stage and the Lookup operator so both charge the same probe count.
func lookupVisit(keys []int64, key int64, visit func(mid int)) (row, probes int, ok bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if visit != nil {
			visit(mid)
		}
		probes++
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, probes, lo < len(keys) && keys[lo] == key
}

// Lookup is the point-read operator (algebra.find): it binary-searches a
// sorted key column for each probe key and gathers the aligned value
// column at hits (misses produce nothing). One input unit is one probe
// key; each costs (probes+1) * cyclesProbe — the bisection steps plus
// the final fetch — the same formula the PointLookup stage charges.
type Lookup struct {
	key, val *BAT
	probes   []int64

	// Found counts probe keys that hit.
	Found int

	cursor int
	m      meter
}

// NewLookup builds the operator probing the sorted key column for each
// key in probes.
func NewLookup(key, val *BAT, probes []int64) *Lookup {
	return &Lookup{key: key, val: val, probes: probes}
}

// Op implements Operator.
func (l *Lookup) Op() string { return "algebra.find" }

// Charged implements Operator.
func (l *Lookup) Charged() uint64 { return l.m.cycles }

// Next implements Operator: resolves up to n probe keys.
func (l *Lookup) Next(n int) *BAT {
	if l.cursor >= len(l.probes) {
		return nil
	}
	n = span(l.cursor, n, len(l.probes))
	var outI []int64
	var outF []float64
	for _, key := range l.probes[l.cursor : l.cursor+n] {
		row, probes, ok := lookupVisit(l.key.I, key, nil)
		l.m.add(probes+1, cyclesProbe)
		if !ok {
			continue
		}
		l.Found++
		if l.val.Kind == KindI64 {
			outI = append(outI, l.val.I[row])
		} else {
			outF = append(outF, l.val.F[row])
		}
	}
	l.cursor += n
	if l.val.Kind == KindI64 {
		return NewI64(l.val.Name+".find", outI)
	}
	return NewF64(l.val.Name+".find", outF)
}

// FusedQ6 is the raw kernel's fused Q6 scan as a vectorized operator: one
// pass over aligned shipdate/quantity/discount/price slices accumulating
// revenue, emitted as a one-row batch at exhaustion. One input unit is
// one base row.
type FusedQ6 struct {
	shipdate, quantity *BAT
	discount, price    *BAT
	partial            float64
	lo, hi             int

	cursor  int
	emitted bool
	m       meter
}

// NewFusedQ6 builds the operator over rows [lo, hi) of the four aligned
// columns.
func NewFusedQ6(shipdate, quantity, discount, price *BAT, lo, hi int) *FusedQ6 {
	return &FusedQ6{
		shipdate: shipdate, quantity: quantity, discount: discount, price: price,
		lo: lo, hi: hi, cursor: lo,
	}
}

func (fq *FusedQ6) runRange(a, b int) {
	sd, qty := fq.shipdate.I, fq.quantity.F
	dis, pr := fq.discount.F, fq.price.F
	for i := a; i < b; i++ {
		if sd[i] >= 19970101 && sd[i] < 19980101 &&
			dis[i] >= 0.06 && dis[i] <= 0.08 && qty[i] < 24 {
			fq.partial += pr[i] * dis[i]
		}
	}
}

// Revenue returns the accumulated revenue so far.
func (fq *FusedQ6) Revenue() float64 { return fq.partial }

// Op implements Operator.
func (fq *FusedQ6) Op() string { return "raw.q6" }

// Charged implements Operator.
func (fq *FusedQ6) Charged() uint64 { return fq.m.cycles }

// Next implements Operator: scans up to n rows; revenue arrives as a
// one-row batch after the last row.
func (fq *FusedQ6) Next(n int) *BAT {
	if fq.cursor < fq.hi {
		n = span(fq.cursor, n, fq.hi)
		fq.runRange(fq.cursor, fq.cursor+n)
		fq.cursor += n
		fq.m.add(n, cyclesScan)
		if fq.cursor < fq.hi {
			return NewF64("raw.q6", nil)
		}
	}
	if fq.emitted {
		return nil
	}
	fq.emitted = true
	return NewF64("raw.q6", []float64{fq.partial})
}

// Compile-time interface checks: every vectorized operator satisfies the
// pluggable contract.
var (
	_ Operator = (*FilterScan)(nil)
	_ Operator = (*FilterRefine)(nil)
	_ Operator = (*Gather)(nil)
	_ Operator = (*MapBinary)(nil)
	_ Operator = (*SumAgg)(nil)
	_ Operator = (*HashBuild)(nil)
	_ Operator = (*HashProbe)(nil)
	_ Operator = (*GroupAgg)(nil)
	_ Operator = (*SortLimit)(nil)
	_ Operator = (*Lookup)(nil)
	_ Operator = (*FusedQ6)(nil)
)
