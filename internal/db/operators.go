package db

import (
	"fmt"
	"slices"

	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// operators.go defines the stage builders of the MAL-like operator set:
// selections producing candidate lists, gather-style projections, value
// maps, aggregates, hash joins and group-bys. Every builder returns a
// StageFn; plans are ordered lists of them (Figure 3's query plan).
//
// All per-query mutable state lives in the Query (vars, sets, scalars,
// partials), so a Plan value itself is immutable and reusable.

// Per-tuple compute costs in cycles, by operator class.
const (
	cyclesScan   = 3
	cyclesGather = 4
	cyclesMap    = 2
	cyclesSum    = 2
	cyclesGroup  = 10
	cyclesBuild  = 12
	cyclesProbe  = 8
	cyclesSort   = 40
)

// predForm identifies a predicate shape the scan loops can inline,
// avoiding an indirect call per row. predGeneric falls back to the
// closures.
type predForm int

const (
	predGeneric predForm = iota
	predAll              // matches every row (ScanAll)
	predIRange           // iLo <= v < iHi
	predIEq              // v == iLo
	predIIn              // v in iList
	predFRange           // fLo <= v <= fHi
	predFLess            // v < fHi
	predNaive            // force the seed's eval-per-row path (naive mode)
)

// Pred is a typed predicate over column values. Closure-built predicates
// work on any matching column; the constructors below additionally record
// the comparison form so selection loops can inline it.
type Pred struct {
	I func(int64) bool
	F func(float64) bool

	form     predForm
	iLo, iHi int64
	iList    []int64
	fLo, fHi float64
}

// PredIRange matches lo <= v < hi on integer columns.
func PredIRange(lo, hi int64) Pred {
	return Pred{
		I:    func(v int64) bool { return v >= lo && v < hi },
		form: predIRange, iLo: lo, iHi: hi,
	}
}

// PredFRange matches lo <= v <= hi on float columns.
func PredFRange(lo, hi float64) Pred {
	return Pred{
		F:    func(v float64) bool { return v >= lo && v <= hi },
		form: predFRange, fLo: lo, fHi: hi,
	}
}

// PredFLess matches v < hi on float columns.
func PredFLess(hi float64) Pred {
	return Pred{
		F:    func(v float64) bool { return v < hi },
		form: predFLess, fHi: hi,
	}
}

// PredIEq matches v == x.
func PredIEq(x int64) Pred {
	return Pred{
		I:    func(v int64) bool { return v == x },
		form: predIEq, iLo: x,
	}
}

// PredIIn matches v in the given list (the paper's Q19/Q22 "IN" predicates
// over a series of constant values shared in a list). IN lists are a
// handful of constants, so a linear scan over a flat slice beats hashing.
func PredIIn(list ...int64) Pred {
	set := append([]int64(nil), list...)
	return Pred{
		I: func(v int64) bool {
			for _, x := range set {
				if x == v {
					return true
				}
			}
			return false
		},
		form: predIIn, iList: set,
	}
}

// predFor strips the predicate's inlinable form under the engine's naive
// mode, so scans fall back to the seed's closure-per-row evaluation.
func predFor(q *Query, p Pred) Pred {
	if q.eng.cfg.Naive {
		p.form = predNaive
	}
	return p
}

// b2i converts a comparison result to 0/1; the compiler lowers it to a
// branch-free SETcc, which is what makes the selection loops below immune
// to branch misprediction at mid selectivities.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// growFor makes room to blind-write n more elements into ids, returning
// the slice and the write window.
func growFor(ids []int64, n int) ([]int64, []int64) {
	ids = slices.Grow(ids, n)
	return ids, ids[len(ids) : len(ids)+n]
}

// selectScanLoop builds the per-chunk filter loop scanning base rows
// [a, b) of c and appending matching row OIDs to *out. Constructor-built
// predicates get their comparison inlined into the loop; closure
// predicates pay one indirect call per row; the mismatch case falls back
// to eval for its diagnostics.
func selectScanLoop(c *BAT, p Pred, out *[]int64) func(a, b int) {
	switch {
	case p.form == predAll:
		return func(a, b int) {
			ids := *out
			for row := a; row < b; row++ {
				ids = append(ids, int64(row))
			}
			*out = ids
		}
	case p.form == predIRange && c.Kind == KindI64:
		lo, hi, vals := p.iLo, p.iHi, c.I
		return func(a, b int) {
			ids, buf := growFor(*out, b-a)
			k := 0
			for row := a; row < b; row++ {
				buf[k] = int64(row)
				v := vals[row]
				k += b2i(v >= lo && v < hi)
			}
			*out = ids[:len(ids)+k]
		}
	case p.form == predIEq && c.Kind == KindI64:
		x, vals := p.iLo, c.I
		return func(a, b int) {
			ids, buf := growFor(*out, b-a)
			k := 0
			for row := a; row < b; row++ {
				buf[k] = int64(row)
				k += b2i(vals[row] == x)
			}
			*out = ids[:len(ids)+k]
		}
	case p.form == predIIn && c.Kind == KindI64:
		list, vals := p.iList, c.I
		return func(a, b int) {
			ids := *out
			for row := a; row < b; row++ {
				v := vals[row]
				for _, x := range list {
					if x == v {
						ids = append(ids, int64(row))
						break
					}
				}
			}
			*out = ids
		}
	case p.form == predFRange && c.Kind == KindF64:
		lo, hi, vals := p.fLo, p.fHi, c.F
		return func(a, b int) {
			ids, buf := growFor(*out, b-a)
			k := 0
			for row := a; row < b; row++ {
				buf[k] = int64(row)
				v := vals[row]
				k += b2i(v >= lo && v <= hi)
			}
			*out = ids[:len(ids)+k]
		}
	case p.form == predFLess && c.Kind == KindF64:
		hi, vals := p.fHi, c.F
		return func(a, b int) {
			ids, buf := growFor(*out, b-a)
			k := 0
			for row := a; row < b; row++ {
				buf[k] = int64(row)
				k += b2i(vals[row] < hi)
			}
			*out = ids[:len(ids)+k]
		}
	case p.form != predNaive && c.Kind == KindI64 && p.I != nil:
		fi, vals := p.I, c.I
		return func(a, b int) {
			ids := *out
			for row := a; row < b; row++ {
				if fi(vals[row]) {
					ids = append(ids, int64(row))
				}
			}
			*out = ids
		}
	case p.form != predNaive && c.Kind == KindF64 && p.F != nil:
		ff, vals := p.F, c.F
		return func(a, b int) {
			ids := *out
			for row := a; row < b; row++ {
				if ff(vals[row]) {
					ids = append(ids, int64(row))
				}
			}
			*out = ids
		}
	default:
		return func(a, b int) {
			ids := *out
			for row := a; row < b; row++ {
				if p.eval(c, row) {
					ids = append(ids, int64(row))
				}
			}
			*out = ids
		}
	}
}

// gatherScanLoop is selectScanLoop's sibling for candidate refinement: it
// scans positions [a, b) of the candidate list cand, testing the base
// column c at each candidate row and appending surviving candidates to
// *out.
func gatherScanLoop(c *BAT, p Pred, cand *BAT, out *[]int64) func(a, b int) {
	switch {
	case p.form == predAll:
		return func(a, b int) {
			ids, cids := *out, cand.I
			for k := a; k < b && k < len(cids); k++ {
				ids = append(ids, cids[k])
			}
			*out = ids
		}
	case p.form == predIRange && c.Kind == KindI64:
		lo, hi, vals := p.iLo, p.iHi, c.I
		return func(a, b int) {
			cids := cand.I
			if b > len(cids) {
				b = len(cids)
			}
			if b <= a {
				return
			}
			ids, buf := growFor(*out, b-a)
			k := 0
			for _, cid := range cids[a:b] {
				buf[k] = cid
				v := vals[cid]
				k += b2i(v >= lo && v < hi)
			}
			*out = ids[:len(ids)+k]
		}
	case p.form == predIEq && c.Kind == KindI64:
		x, vals := p.iLo, c.I
		return func(a, b int) {
			cids := cand.I
			if b > len(cids) {
				b = len(cids)
			}
			if b <= a {
				return
			}
			ids, buf := growFor(*out, b-a)
			k := 0
			for _, cid := range cids[a:b] {
				buf[k] = cid
				k += b2i(vals[cid] == x)
			}
			*out = ids[:len(ids)+k]
		}
	case p.form == predIIn && c.Kind == KindI64:
		list, vals := p.iList, c.I
		return func(a, b int) {
			ids, cids := *out, cand.I
			for k := a; k < b && k < len(cids); k++ {
				v := vals[cids[k]]
				for _, x := range list {
					if x == v {
						ids = append(ids, cids[k])
						break
					}
				}
			}
			*out = ids
		}
	case p.form == predFRange && c.Kind == KindF64:
		lo, hi, vals := p.fLo, p.fHi, c.F
		return func(a, b int) {
			cids := cand.I
			if b > len(cids) {
				b = len(cids)
			}
			if b <= a {
				return
			}
			ids, buf := growFor(*out, b-a)
			k := 0
			for _, cid := range cids[a:b] {
				buf[k] = cid
				v := vals[cid]
				k += b2i(v >= lo && v <= hi)
			}
			*out = ids[:len(ids)+k]
		}
	case p.form == predFLess && c.Kind == KindF64:
		hi, vals := p.fHi, c.F
		return func(a, b int) {
			cids := cand.I
			if b > len(cids) {
				b = len(cids)
			}
			if b <= a {
				return
			}
			ids, buf := growFor(*out, b-a)
			k := 0
			for _, cid := range cids[a:b] {
				buf[k] = cid
				k += b2i(vals[cid] < hi)
			}
			*out = ids[:len(ids)+k]
		}
	case p.form != predNaive && c.Kind == KindI64 && p.I != nil:
		fi, vals := p.I, c.I
		return func(a, b int) {
			ids, cids := *out, cand.I
			for k := a; k < b && k < len(cids); k++ {
				if fi(vals[cids[k]]) {
					ids = append(ids, cids[k])
				}
			}
			*out = ids
		}
	case p.form != predNaive && c.Kind == KindF64 && p.F != nil:
		ff, vals := p.F, c.F
		return func(a, b int) {
			ids, cids := *out, cand.I
			for k := a; k < b && k < len(cids); k++ {
				if ff(vals[cids[k]]) {
					ids = append(ids, cids[k])
				}
			}
			*out = ids
		}
	default:
		return func(a, b int) {
			ids, cids := *out, cand.I
			for k := a; k < b && k < len(cids); k++ {
				if p.eval(c, int(cids[k])) {
					ids = append(ids, cids[k])
				}
			}
			*out = ids
		}
	}
}

func (p Pred) eval(b *BAT, row int) bool {
	if b.Kind == KindI64 {
		if p.I == nil {
			panic(fmt.Sprintf("db: integer column %s filtered with non-integer predicate", b.Name))
		}
		return p.I(b.I[row])
	}
	if p.F == nil {
		panic(fmt.Sprintf("db: float column %s filtered with non-float predicate", b.Name))
	}
	return p.F(b.F[row])
}

// ThetaSelect plans algebra.thetasubselect: a full partitioned scan of a
// base-table column producing per-partition candidate lists (row OIDs) in
// variable out.
func ThetaSelect(table, col, out string, p Pred) StageFn {
	return func(q *Query) []Task {
		base := q.eng.store.Table(table)
		c := base.Col(col)
		ranges := partitionRanges(base.Rows, q.Fanout(), q.eng.cfg.MinPartRows)
		ps := &PartSet{Parts: make([]*BAT, len(ranges))}
		q.SetVar(out, ps)
		tasks := make([]Task, len(ranges))
		for i, r := range ranges {
			i, r := i, r
			t := newChunkTask("algebra.thetasubselect", q.Machine(), []*BAT{c}, r[0], r[1], cyclesScan)
			op := NewFilterScan(c, predFor(q, p), r[0], r[1], q.scratchI64((r[1]-r[0])/2))
			t.process = op.runRange
			t.finish = func(*sched.ExecContext) []*BAT {
				q.ownI64(op.ids)
				frag := NewI64(out, op.ids)
				ps.Parts[i] = frag
				return []*BAT{frag}
			}
			tasks[i] = t
		}
		return tasks
	}
}

// gatherCharge returns an extraCharge hook charging the underlying column
// for the id range covered by each chunk of an (ascending) candidate
// fragment.
func gatherCharge(cand *BAT, col *BAT) func(*sched.ExecContext, int, int) uint64 {
	return func(ctx *sched.ExecContext, a, b int) uint64 {
		if b <= a || len(cand.I) == 0 {
			return 0
		}
		if b > len(cand.I) {
			b = len(cand.I)
		}
		if a >= b {
			return 0
		}
		lo := int(cand.I[a])
		hi := int(cand.I[b-1]) + 1
		return col.chargeRange(ctx, lo, hi, false)
	}
}

// SubSelect plans algebra.subselect: it refines candidate lists in
// variable in against a further predicate on a base column, producing out.
func SubSelect(in, table, col, out string, p Pred) StageFn {
	return func(q *Query) []Task {
		c := q.eng.store.Table(table).Col(col)
		inPS := q.Var(in)
		ps := &PartSet{Parts: make([]*BAT, len(inPS.Parts))}
		q.SetVar(out, ps)
		var tasks []Task
		for i, cand := range inPS.Parts {
			i, cand := i, cand
			if cand == nil || cand.Len() == 0 {
				ps.Parts[i] = NewI64(out, nil)
				continue
			}
			t := newChunkTask("algebra.subselect", q.Machine(), []*BAT{cand}, 0, cand.Len(), cyclesGather)
			t.extraCharge = gatherCharge(cand, c)
			op := NewFilterRefine(c, predFor(q, p), cand, q.scratchI64(cand.Len()/2))
			t.process = op.runRange
			t.finish = func(*sched.ExecContext) []*BAT {
				q.ownI64(op.ids)
				frag := NewI64(out, op.ids)
				ps.Parts[i] = frag
				return []*BAT{frag}
			}
			tasks = append(tasks, t)
		}
		return tasks
	}
}

// Projection plans algebra.projection: it gathers base-column values at
// the candidate positions in variable in, producing aligned value
// fragments in out.
func Projection(in, table, col, out string) StageFn {
	return func(q *Query) []Task {
		c := q.eng.store.Table(table).Col(col)
		inPS := q.Var(in)
		ps := &PartSet{Parts: make([]*BAT, len(inPS.Parts))}
		q.SetVar(out, ps)
		var tasks []Task
		for i, cand := range inPS.Parts {
			i, cand := i, cand
			if cand == nil || cand.Len() == 0 {
				ps.Parts[i] = emptyLike(c, out)
				continue
			}
			t := newChunkTask("algebra.projection", q.Machine(), []*BAT{cand}, 0, cand.Len(), cyclesGather)
			t.extraCharge = gatherCharge(cand, c)
			outB := emptyLike(c, out)
			if c.Kind == KindI64 {
				outB.I = q.scratchI64(cand.Len())
			} else {
				outB.F = q.scratchF64(cand.Len())
			}
			op := NewGather(c, cand, outB)
			t.process = op.runRange
			t.finish = func(*sched.ExecContext) []*BAT {
				q.ownI64(outB.I)
				q.ownF64(outB.F)
				ps.Parts[i] = outB
				return []*BAT{outB}
			}
			tasks = append(tasks, t)
		}
		return tasks
	}
}

func emptyLike(c *BAT, name string) *BAT {
	if c.Kind == KindI64 {
		return NewI64(name, nil)
	}
	return NewF64(name, nil)
}

// MapF2 plans batcalc binary arithmetic over two aligned float variables
// (e.g. [*](extendedprice, discount)).
func MapF2(a, b, out string, f func(x, y float64) float64) StageFn {
	return func(q *Query) []Task {
		pa, pb := q.Var(a), q.Var(b)
		if len(pa.Parts) != len(pb.Parts) {
			panic(fmt.Sprintf("db: MapF2 over misaligned vars %s (%d parts) and %s (%d parts)", a, len(pa.Parts), b, len(pb.Parts)))
		}
		ps := &PartSet{Parts: make([]*BAT, len(pa.Parts))}
		q.SetVar(out, ps)
		var tasks []Task
		for i := range pa.Parts {
			i := i
			fa, fb := pa.Parts[i], pb.Parts[i]
			if fa == nil || fa.Len() == 0 {
				ps.Parts[i] = NewF64(out, nil)
				continue
			}
			t := newChunkTask("batcalc.*", q.Machine(), []*BAT{fa, fb}, 0, fa.Len(), cyclesMap)
			op := NewMapBinary(fa, fb, f, q.scratchF64(fa.Len()))
			t.process = op.runRange
			t.finish = func(*sched.ExecContext) []*BAT {
				q.ownF64(op.res)
				frag := NewF64(out, op.res)
				ps.Parts[i] = frag
				return []*BAT{frag}
			}
			tasks = append(tasks, t)
		}
		return tasks
	}
}

// SumF plans aggr.sum over a float variable: per-partition partials
// accumulate into the named scalar.
func SumF(in, scalar string) StageFn {
	return func(q *Query) []Task {
		ps := q.Var(in)
		var tasks []Task
		for _, frag := range ps.Parts {
			frag := frag
			if frag == nil || frag.Len() == 0 {
				continue
			}
			t := newChunkTask("aggr.sum", q.Machine(), []*BAT{frag}, 0, frag.Len(), cyclesSum)
			op := NewSumAgg(frag)
			t.process = op.runRange
			t.finish = func(*sched.ExecContext) []*BAT {
				q.AddScalar(scalar, op.partial)
				return nil
			}
			tasks = append(tasks, t)
		}
		return tasks
	}
}

// Count plans aggr.count over a variable, storing the row count in the
// named scalar.
func Count(in, scalar string) StageFn {
	return func(q *Query) []Task {
		q.SetScalar(scalar, float64(q.Var(in).Rows()))
		return nil
	}
}

// funcTask runs a closure once, then pays its computed cycle cost down
// across quanta (single-task combine operators: hash build, merges,
// sorts).
type funcTask struct {
	op   string
	pref numa.NodeID
	work func(ctx *sched.ExecContext) uint64

	started   bool
	remaining uint64
}

func (t *funcTask) Op() string                 { return t.op }
func (t *funcTask) PreferredNode() numa.NodeID { return t.pref }

func (t *funcTask) Step(ctx *sched.ExecContext, budget uint64) (uint64, bool) {
	if !t.started {
		t.started = true
		t.remaining = t.work(ctx)
	}
	if t.remaining <= budget {
		used := t.remaining
		t.remaining = 0
		return used, true
	}
	t.remaining -= budget
	return budget, false
}

// BuildMap plans a hash-join build side: a single task hashing keysVar to
// payloads from valsVar (or to 1 when valsVar is empty), bound to setName.
func BuildMap(keysVar, valsVar, setName string) StageFn {
	return func(q *Query) []Task {
		keys := q.Var(keysVar)
		var vals *PartSet
		if valsVar != "" {
			vals = q.Var(valsVar)
		}
		t := &funcTask{op: "hash.build", pref: numa.NoNode}
		t.work = func(ctx *sched.ExecContext) uint64 {
			m := q.scratchMapII()
			var cost uint64
			for pi, frag := range keys.Parts {
				if frag == nil || frag.Len() == 0 {
					continue
				}
				cost += frag.chargeRange(ctx, 0, frag.Len(), false)
				var vf *BAT
				if vals != nil {
					vf = vals.Parts[pi]
				}
				op := NewHashBuild(frag, vf, m)
				op.runRange(0, frag.Len())
				cost += uint64(frag.Len()) * cyclesBuild
			}
			q.SetSet(setName, m)
			return cost
		}
		return []Task{t}
	}
}

// ProbeSemi plans the probe side of a semijoin: candidate rows of inCand
// whose base-column value hits setName survive into outCand.
func ProbeSemi(inCand, table, col, setName, outCand string) StageFn {
	return probe(inCand, table, col, setName, outCand, "", false)
}

// ProbeFetch plans a fetch join: surviving candidates also gather the
// build side's payload into outVals (aligned with outCand).
func ProbeFetch(inCand, table, col, setName, outCand, outVals string) StageFn {
	return probe(inCand, table, col, setName, outCand, outVals, false)
}

// ProbeAnti plans an anti-join: candidates whose value does NOT hit the
// set survive (NOT EXISTS / NOT IN shapes).
func ProbeAnti(inCand, table, col, setName, outCand string) StageFn {
	return probe(inCand, table, col, setName, outCand, "", true)
}

func probe(inCand, table, col, setName, outCand, outVals string, anti bool) StageFn {
	return func(q *Query) []Task {
		c := q.eng.store.Table(table).Col(col)
		inPS := q.Var(inCand)
		set := q.Set(setName)
		ps := &PartSet{Parts: make([]*BAT, len(inPS.Parts))}
		q.SetVar(outCand, ps)
		var vps *PartSet
		if outVals != "" {
			vps = &PartSet{Parts: make([]*BAT, len(inPS.Parts))}
			q.SetVar(outVals, vps)
		}
		var tasks []Task
		for i, cand := range inPS.Parts {
			i, cand := i, cand
			if cand == nil || cand.Len() == 0 {
				ps.Parts[i] = NewI64(outCand, nil)
				if vps != nil {
					vps.Parts[i] = NewI64(outVals, nil)
				}
				continue
			}
			t := newChunkTask("join.probe", q.Machine(), []*BAT{cand}, 0, cand.Len(), cyclesProbe)
			t.extraCharge = gatherCharge(cand, c)
			var payloads []int64
			ids := q.scratchI64(cand.Len() / 2)
			if vps != nil {
				payloads = q.scratchI64(cand.Len() / 2)
			}
			op := NewHashProbe(c, cand, set, anti, vps != nil, ids, payloads)
			t.process = op.runRange
			t.finish = func(*sched.ExecContext) []*BAT {
				q.ownI64(op.ids)
				frag := NewI64(outCand, op.ids)
				ps.Parts[i] = frag
				outs := []*BAT{frag}
				if vps != nil {
					q.ownI64(op.payloads)
					vf := NewI64(outVals, op.payloads)
					vps.Parts[i] = vf
					outs = append(outs, vf)
				}
				return outs
			}
			tasks = append(tasks, t)
		}
		return tasks
	}
}

// PredAll matches every row of either kind (full scans).
func PredAll() Pred {
	return Pred{
		I:    func(int64) bool { return true },
		F:    func(float64) bool { return true },
		form: predAll,
	}
}

// ScanAll plans a full scan over a base column producing all row OIDs
// (the sql.tid pattern: a candidate list covering the table).
func ScanAll(table, col, out string) StageFn {
	return ThetaSelect(table, col, out, PredAll())
}

// PointLookup plans an index-style point read (algebra.find): one short
// task binary-searches the sorted key column of table for key and, on a
// hit, projects the value column at that row into the named scalar
// (misses leave it at zero; outScalar+".found" counts hits). Against the
// fan-out scans above this is the core-scalability extreme: a handful of
// probes in a single task, with nothing for additional cores to do —
// the OLTP half of a heterogeneous tenant mix.
func PointLookup(table, keyCol, valCol string, key int64, outScalar string) StageFn {
	return func(q *Query) []Task {
		tb := q.eng.store.Table(table)
		kc, vc := tb.Col(keyCol), tb.Col(valCol)
		t := &funcTask{op: "algebra.find", pref: numa.NoNode}
		t.work = func(ctx *sched.ExecContext) uint64 {
			var cost uint64
			row, probes, ok := lookupVisit(kc.I, key, func(mid int) {
				cost += kc.chargeRange(ctx, mid, mid+1, false)
			})
			cost += uint64(probes+1) * cyclesProbe
			q.SetScalar(outScalar, 0)
			if ok {
				cost += vc.chargeRange(ctx, row, row+1, false)
				var v float64
				if vc.Kind == KindI64 {
					v = float64(vc.I[row])
				} else {
					v = vc.F[row]
				}
				q.SetScalar(outScalar, v)
				q.AddScalar(outScalar+".found", 1)
			}
			return cost
		}
		return []Task{t}
	}
}

// GroupSum plans the partial phase of a grouped aggregation: per-partition
// hash maps of keysVar -> sum(valsVar), stored on the query under
// partialsName. An empty valsVar counts rows per group instead. Pair it
// with GroupMerge as the following stage — the two-phase grouping the
// paper credits HyPer/BLU with (local build, then merge).
func GroupSum(keysVar, valsVar, partialsName string) StageFn {
	return func(q *Query) []Task {
		keys := q.Var(keysVar)
		vals := keys // count mode: alignment only
		if valsVar != "" {
			vals = q.Var(valsVar)
		}
		if len(keys.Parts) != len(vals.Parts) {
			panic(fmt.Sprintf("db: GroupSum misaligned %s/%s", keysVar, valsVar))
		}
		countMode := valsVar == ""
		partials := make([]*i64fMap, len(keys.Parts))
		q.setPartials(partialsName, partials)
		var tasks []Task
		for i := range keys.Parts {
			i := i
			kf, vf := keys.Parts[i], vals.Parts[i]
			if kf == nil || kf.Len() == 0 {
				continue
			}
			inputs := []*BAT{kf}
			if !countMode {
				inputs = append(inputs, vf)
			}
			t := newChunkTask("group.sum", q.Machine(), inputs, 0, kf.Len(), cyclesGroup)
			aggIn := vf
			if countMode {
				aggIn = nil
			}
			op := NewGroupAgg(kf, aggIn, q.scratchMapIF())
			t.process = op.runRange
			t.finish = func(*sched.ExecContext) []*BAT {
				partials[i] = op.agg
				return nil
			}
			tasks = append(tasks, t)
		}
		return tasks
	}
}

// GroupMerge plans the merge phase after GroupSum: a single mat.pack-style
// task combining the partial maps into outKeys/outSums (single-fragment
// PartSets, keys ascending).
func GroupMerge(partialsName, outKeys, outSums string) StageFn {
	return func(q *Query) []Task {
		partials := q.partialsOf(partialsName)
		merge := &funcTask{op: "mat.pack", pref: numa.NoNode}
		merge.work = func(ctx *sched.ExecContext) uint64 {
			total := q.scratchMapIF()
			n := 0
			for _, m := range partials {
				if m == nil {
					continue
				}
				m.Range(func(k int64, v float64) {
					total.Add(k, v)
					n++
				})
			}
			ks := q.scratchI64(total.Len())
			total.Range(func(k int64, _ float64) { ks = append(ks, k) })
			slices.Sort(ks)
			sums := q.scratchF64(len(ks))[:len(ks)]
			for i, k := range ks {
				v, _ := total.Get(k)
				sums[i] = v
			}
			q.ownI64(ks)
			q.ownF64(sums)
			kb, sb := NewI64(outKeys, ks), NewF64(outSums, sums)
			q.SetVar(outKeys, &PartSet{Parts: []*BAT{kb}})
			q.SetVar(outSums, &PartSet{Parts: []*BAT{sb}})
			cost := uint64(n)*cyclesGroup + uint64(len(ks))*cyclesSort
			cost += kb.chargeRange(ctx, 0, kb.Len(), true)
			cost += sb.chargeRange(ctx, 0, sb.Len(), true)
			return cost
		}
		return []Task{merge}
	}
}

// GroupFilter plans a single task dropping merged groups whose sum fails
// the predicate (HAVING clauses); outKeys/outSums are filtered in place.
func GroupFilter(outKeys, outSums string, keep func(sum float64) bool) StageFn {
	return func(q *Query) []Task {
		t := &funcTask{op: "group.filter", pref: numa.NoNode}
		t.work = func(ctx *sched.ExecContext) uint64 {
			keys := q.Var(outKeys).FlattenI64()
			sums := q.Var(outSums).FlattenF64()
			ks := q.scratchI64(len(keys))
			ss := q.scratchF64(len(sums))
			for i, s := range sums {
				if keep(s) {
					ks = append(ks, keys[i])
					ss = append(ss, s)
				}
			}
			q.ownI64(ks)
			q.ownF64(ss)
			q.SetVar(outKeys, &PartSet{Parts: []*BAT{NewI64(outKeys, ks)}})
			q.SetVar(outSums, &PartSet{Parts: []*BAT{NewF64(outSums, ss)}})
			return uint64(len(keys)) * cyclesMap
		}
		return []Task{t}
	}
}

// TopN plans a final single-task sort of the merged outSums descending,
// keeping n groups; results replace outKeys/outSums.
func TopN(outKeys, outSums string, n int) StageFn {
	return func(q *Query) []Task {
		t := &funcTask{op: "algebra.topn", pref: numa.NoNode}
		t.work = func(ctx *sched.ExecContext) uint64 {
			keys := q.Var(outKeys).FlattenI64()
			sums := q.Var(outSums).FlattenF64()
			idx := topNIndex(sums, n)
			ks := q.scratchI64(len(idx))[:len(idx)]
			ss := q.scratchF64(len(idx))[:len(idx)]
			for i, j := range idx {
				ks[i] = keys[j]
				ss[i] = sums[j]
			}
			q.ownI64(ks)
			q.ownF64(ss)
			q.SetVar(outKeys, &PartSet{Parts: []*BAT{NewI64(outKeys, ks)}})
			q.SetVar(outSums, &PartSet{Parts: []*BAT{NewF64(outSums, ss)}})
			return uint64(len(keys)) * cyclesSort
		}
		return []Task{t}
	}
}
