package db

import "elasticore/internal/hashmix"

// hashmap.go provides the open-addressing hash tables behind the
// operator hot path: hash-join build/probe sides (i64Map) and grouped-
// aggregation partials (i64fMap). They replace Go maps on the per-tuple
// path for three reasons: linear probing over flat arrays is materially
// faster for int64 keys, Reset keeps capacity so the query pool can
// recycle them allocation-free, and slot iteration is deterministic —
// though no operator depends on iteration order for its results (merged
// group keys are sorted, probe results follow candidate order).

// hash64 spreads int64 keys over the tables.
func hash64(x uint64) uint64 { return hashmix.Mix64(x) }

const minMapSlots = 16

// i64Map is an int64→int64 linear-probe table (hash-join payloads). When
// std is set the table delegates to a plain Go map instead — the naive
// mode's seed-faithful fallback; results are identical either way.
type i64Map struct {
	ctrl []uint8 // 0 empty, 1 occupied; len is a power of two
	keys []int64
	vals []int64
	n    int
	std  map[int64]int64
}

// Len returns the number of stored keys.
func (m *i64Map) Len() int {
	if m.std != nil {
		return len(m.std)
	}
	return m.n
}

// Reset empties the table, keeping its capacity for reuse.
func (m *i64Map) Reset() {
	if m.std != nil {
		clear(m.std)
		return
	}
	clear(m.ctrl)
	m.n = 0
}

// Put stores v under k, overwriting any previous value.
func (m *i64Map) Put(k, v int64) {
	if m.std != nil {
		m.std[k] = v
		return
	}
	if 4*(m.n+1) > 3*len(m.ctrl) {
		m.grow()
	}
	mask := uint64(len(m.ctrl) - 1)
	i := hash64(uint64(k)) & mask
	for m.ctrl[i] == 1 {
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
		i = (i + 1) & mask
	}
	m.ctrl[i] = 1
	m.keys[i] = k
	m.vals[i] = v
	m.n++
}

// Get returns the value stored under k.
func (m *i64Map) Get(k int64) (int64, bool) {
	if m.std != nil {
		v, ok := m.std[k]
		return v, ok
	}
	if m.n == 0 {
		return 0, false
	}
	mask := uint64(len(m.ctrl) - 1)
	i := hash64(uint64(k)) & mask
	for m.ctrl[i] == 1 {
		if m.keys[i] == k {
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
	return 0, false
}

// Range calls f for every entry, in slot order (map order under std). No
// caller's results depend on the order.
func (m *i64Map) Range(f func(k, v int64)) {
	if m.std != nil {
		for k, v := range m.std {
			f(k, v)
		}
		return
	}
	for i, c := range m.ctrl {
		if c == 1 {
			f(m.keys[i], m.vals[i])
		}
	}
}

func (m *i64Map) grow() {
	size := 2 * len(m.ctrl)
	if size < minMapSlots {
		size = minMapSlots
	}
	oc, ok, ov := m.ctrl, m.keys, m.vals
	m.ctrl = make([]uint8, size)
	m.keys = make([]int64, size)
	m.vals = make([]int64, size)
	mask := uint64(size - 1)
	for i, c := range oc {
		if c != 1 {
			continue
		}
		j := hash64(uint64(ok[i])) & mask
		for m.ctrl[j] == 1 {
			j = (j + 1) & mask
		}
		m.ctrl[j] = 1
		m.keys[j] = ok[i]
		m.vals[j] = ov[i]
	}
}

// i64fMap is an int64→float64 linear-probe table (aggregation partials),
// with the same std fallback as i64Map.
type i64fMap struct {
	ctrl []uint8
	keys []int64
	vals []float64
	n    int
	std  map[int64]float64
}

// Len returns the number of stored keys.
func (m *i64fMap) Len() int {
	if m.std != nil {
		return len(m.std)
	}
	return m.n
}

// Reset empties the table, keeping its capacity for reuse.
func (m *i64fMap) Reset() {
	if m.std != nil {
		clear(m.std)
		return
	}
	clear(m.ctrl)
	m.n = 0
}

// Add accumulates delta into the sum stored under k.
func (m *i64fMap) Add(k int64, delta float64) {
	if m.std != nil {
		m.std[k] += delta
		return
	}
	if 4*(m.n+1) > 3*len(m.ctrl) {
		m.grow()
	}
	mask := uint64(len(m.ctrl) - 1)
	i := hash64(uint64(k)) & mask
	for m.ctrl[i] == 1 {
		if m.keys[i] == k {
			m.vals[i] += delta
			return
		}
		i = (i + 1) & mask
	}
	m.ctrl[i] = 1
	m.keys[i] = k
	m.vals[i] = delta
	m.n++
}

// Get returns the sum stored under k.
func (m *i64fMap) Get(k int64) (float64, bool) {
	if m.std != nil {
		v, ok := m.std[k]
		return v, ok
	}
	if m.n == 0 {
		return 0, false
	}
	mask := uint64(len(m.ctrl) - 1)
	i := hash64(uint64(k)) & mask
	for m.ctrl[i] == 1 {
		if m.keys[i] == k {
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
	return 0, false
}

// Range calls f for every entry, in slot order (map order under std). No
// caller's results depend on the order.
func (m *i64fMap) Range(f func(k int64, v float64)) {
	if m.std != nil {
		for k, v := range m.std {
			f(k, v)
		}
		return
	}
	for i, c := range m.ctrl {
		if c == 1 {
			f(m.keys[i], m.vals[i])
		}
	}
}

func (m *i64fMap) grow() {
	size := 2 * len(m.ctrl)
	if size < minMapSlots {
		size = minMapSlots
	}
	oc, ok, ov := m.ctrl, m.keys, m.vals
	m.ctrl = make([]uint8, size)
	m.keys = make([]int64, size)
	m.vals = make([]float64, size)
	mask := uint64(size - 1)
	for i, c := range oc {
		if c != 1 {
			continue
		}
		j := hash64(uint64(ok[i])) & mask
		for m.ctrl[j] == 1 {
			j = (j + 1) & mask
		}
		m.ctrl[j] = 1
		m.keys[j] = ok[i]
		m.vals[j] = ov[i]
	}
}
